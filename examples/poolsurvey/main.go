// poolsurvey: a miniature end-to-end reproduction — DNS pool discovery,
// a multi-vantage measurement campaign, and the full analysis pipeline,
// printing the paper's tables and figures for the generated world.
//
//	go run ./examples/poolsurvey
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/traceroute"
)

func main() {
	sim := netsim.NewSim(2015)
	world, err := topology.Build(sim, topology.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Stage 1+2: discovery then the campaign (three traces from each of
	// the 13 vantage points, batches included).
	plan := map[string]int{}
	for _, v := range world.Vantages {
		plan[v.Name] = 3
	}
	campaign := core.NewCampaign(world, core.CampaignConfig{
		TracesPerVantage: plan,
		DiscoverServers:  true,
		DiscoveryRounds:  15,
	})
	var d *dataset.Dataset
	campaign.Run(func(got *dataset.Dataset) { d = got })
	sim.Run()
	fmt.Printf("discovered %d servers; collected %d traces\n\n", len(campaign.Servers), len(d.Traces))

	// Stage 3: the paper's analyses.
	fmt.Println(analysis.RenderTable1(analysis.ComputeTable1(campaign.Servers, world.Geo)))
	fmt.Println(analysis.RenderFigure2(analysis.ComputeFigure2a(d),
		"Figure 2a: % of not-ECT-reachable servers also reachable with ECT(0)"))
	fmt.Println(analysis.RenderFigure3(analysis.ComputeFigure3a(d),
		"Figure 3a: differential reachability"))
	f5 := analysis.ComputeFigure5(d)
	fmt.Println(analysis.RenderFigure5(f5))
	fmt.Println(analysis.RenderTable2(analysis.ComputeTable2(d)))

	// Stage 4: path transparency (Figure 4) on a sample of paths.
	var obs []core.PathObservation
	core.RunTracerouteCampaign(world, core.TracerouteCampaignConfig{
		TargetStride: 2,
		Config:       traceroute.Config{ProbesPerHop: 1, StopAfterSilent: 2},
	}, func(o []core.PathObservation) { obs = o })
	sim.Run()
	fmt.Println(analysis.RenderFigure4(analysis.ComputeFigure4(obs, world.ASN)))
}
