// poolsurvey: a miniature end-to-end reproduction — DNS pool discovery,
// a multi-vantage measurement campaign run on the sharded parallel
// engine, and the full analysis pipeline, printing the paper's tables
// and figures for the generated world.
//
//	go run ./examples/poolsurvey
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/campaign"
	"repro/internal/traceroute"
)

func main() {
	// One engine call replaces world building, per-vantage trace
	// scheduling and the traceroute sweep: thirteen shards (one per
	// vantage, three traces each) run in parallel, each discovering the
	// pool over DNS in its own simulated Internet, and merge
	// deterministically.
	res, err := campaign.Run(campaign.Config{
		Scale:           "small",
		Traces:          3,
		Discover:        true,
		DiscoveryRounds: 15,
		Stride:          2,
		Traceroute:      traceroute.Config{ProbesPerHop: 1, StopAfterSilent: 2},
		Seed:            2015,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered %d servers; collected %d traces in %d shards\n\n",
		len(res.Servers), len(res.Dataset.Traces), len(res.Shards))

	// The paper's analyses over the merged dataset.
	d := res.Dataset
	fmt.Println(analysis.RenderTable1(analysis.ComputeTable1(res.Servers, res.World.Geo)))
	fmt.Println(analysis.RenderFigure2(analysis.ComputeFigure2a(d),
		"Figure 2a: % of not-ECT-reachable servers also reachable with ECT(0)"))
	fmt.Println(analysis.RenderFigure3(analysis.ComputeFigure3a(d),
		"Figure 3a: differential reachability"))
	f5 := analysis.ComputeFigure5(d)
	fmt.Println(analysis.RenderFigure5(f5))
	fmt.Println(analysis.RenderTable2(analysis.ComputeTable2(d)))

	// Path transparency (Figure 4) from the merged traceroute sweep.
	fmt.Println(analysis.RenderFigure4(analysis.ComputeFigure4(res.PathObs, res.World.ASN)))
}
