// rtp-ecn: the paper's closing question, made executable. The study
// ends: "Whether the use of ECN with UDP offers any benefit has not
// been determined, but it seems to cause no significant harm." This
// example runs the same interactive-media session (RTP over UDP with a
// NADA-flavoured rate controller) across a congested-edge bottleneck —
// a bandwidth-limited access link whose RED queue contends with bursty
// cross traffic, exactly the congestion substrate the campaign's
// congested-edge scenario places — and compares what the application
// experiences with ECN, without it, and when a middlebox bleaches the
// marks.
//
//	go run ./examples/rtp-ecn
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/aqm"
	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/rtp"
)

// Bottleneck shape: a 1 Mbit/s access link at 90% background load —
// the same operating point as the campaign's congested-edge scenario.
const (
	bottleneckRate = 125_000 // bytes/sec
	bottleneckUtil = 0.9
	queueLen       = 50
)

// buildPath wires sender — r1 — r2 — receiver, with the receiver's
// access link bottlenecked by a RED queue in the r2→receiver direction.
func buildPath(seed int64) (*netsim.Sim, *netsim.Host, *netsim.Host, *netsim.Router, *netsim.Router, *netsim.Link) {
	sim := netsim.NewSim(seed)
	n := netsim.NewNetwork(sim)
	r1 := n.AddRouter("r1", packet.AddrFrom4(10, 255, 0, 1), 64500)
	r2 := n.AddRouter("r2", packet.AddrFrom4(10, 255, 1, 1), 64501)
	n.Connect(r1, r2, 10*time.Millisecond, 0)
	a, _ := n.AddHost("sender", packet.AddrFrom4(10, 0, 0, 1))
	b, _ := n.AddHost("receiver", packet.AddrFrom4(10, 0, 1, 1))
	n.Attach(a, r1, 2*time.Millisecond, 0)
	access, _ := n.Attach(b, r2, 2*time.Millisecond, 0)
	access.SetBottleneck(r2, bottleneckRate, bottleneckUtil, aqm.NewRED(queueLen, sim.RNG()))
	if err := n.ComputeRoutes(); err != nil {
		log.Fatal(err)
	}
	return sim, a, b, r1, r2, access
}

func main() {
	fmt.Println("30s interactive media session across a congested-edge bottleneck")
	fmt.Printf("(1 Mbit/s access, RED queue of %d packets, %.0f%% cross-traffic load), three ways:\n\n",
		queueLen, 100*bottleneckUtil)

	sims := []struct {
		name   string
		useECN bool
		setup  func(sim *netsim.Sim, r1 *netsim.Router)
	}{
		{"ECN: congestion arrives as CE", true, func(sim *netsim.Sim, r1 *netsim.Router) {}},
		{"no ECN: congestion arrives as loss", false, func(sim *netsim.Sim, r1 *netsim.Router) {}},
		{"ECN requested, path bleaches", true, func(sim *netsim.Sim, r1 *netsim.Router) {
			r1.AddPolicy(&middlebox.ECNBleacher{Probability: 1})
		}},
	}
	for _, sc := range sims {
		sim, senderHost, receiverHost, r1, r2, access := buildPath(7)
		sc.setup(sim, r1)
		recv, _ := rtp.NewReceiver(receiverHost, 5004, 42)
		snd, _ := rtp.NewSender(senderHost, receiverHost.Addr(), 5004, rtp.SenderConfig{
			SSRC: 42, PayloadType: 96, UseECN: sc.useECN,
		})
		var stats rtp.SenderStats
		snd.Start(30*time.Second, func(s rtp.SenderStats) { stats = s })
		sim.Run()
		rs := recv.Stats()
		lossPct := 0.0
		if stats.PacketsSent > 0 {
			lossPct = 100 * float64(stats.PacketsSent-rs.PacketsReceived) / float64(stats.PacketsSent)
		}
		// Observed CE fraction: the verbose-mode estimator input — CE
		// among delivered ECN-capable media — next to the bottleneck
		// queue's own marking ratio as ground truth.
		ceFrac := 0.0
		if capable := rs.CE + rs.ECT0 + rs.ECT1; capable > 0 {
			ceFrac = 100 * float64(rs.CE) / float64(capable)
		}
		groundTruth := 100 * access.BottleneckQueue(r2).Stats().WireMarkRatio()
		fmt.Printf("%-36s sent %4d  delivered %4d  lost %5.1f%%  CE obs %5.1f%% / queue %5.1f%%  final rate %6.0f B/s  decreases %2d\n",
			sc.name, stats.PacketsSent, rs.PacketsReceived, lossPct, ceFrac, groundTruth, stats.FinalRate, stats.RateDecreases)
	}

	fmt.Println()
	fmt.Println("reading: with ECN the bottleneck's RED queue turns congestion into CE marks —")
	fmt.Println("the sender adapts with little loss and the observed CE fraction estimates the")
	fmt.Println("path's congestion (Diana & Lochin's \"verbose mode\"). Without ECN the same")
	fmt.Println("queue can only drop. When a middlebox bleaches ECT(0), the marks vanish and")
	fmt.Println("the session silently degrades to loss-based behaviour — which is why the")
	fmt.Println("paper's reachability and §4.2 transparency results matter.")
}
