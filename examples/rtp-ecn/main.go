// rtp-ecn: the paper's closing question, made executable. The study
// ends: "Whether the use of ECN with UDP offers any benefit has not
// been determined, but it seems to cause no significant harm." This
// example runs the same interactive-media session (RTP over UDP with a
// NADA-flavoured rate controller) across a congested hop expressed two
// ways — as ECN CE-marking and as packet loss — and compares what the
// application experiences.
//
//	go run ./examples/rtp-ecn
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/rtp"
)

// buildPath wires sender — r1 — r2 — receiver and returns the pieces.
func buildPath(seed int64) (*netsim.Sim, *netsim.Host, *netsim.Host, *netsim.Router, *netsim.Router) {
	sim := netsim.NewSim(seed)
	n := netsim.NewNetwork(sim)
	r1 := n.AddRouter("r1", packet.AddrFrom4(10, 255, 0, 1), 64500)
	r2 := n.AddRouter("r2", packet.AddrFrom4(10, 255, 1, 1), 64501)
	n.Connect(r1, r2, 10*time.Millisecond, 0)
	a, _ := n.AddHost("sender", packet.AddrFrom4(10, 0, 0, 1))
	b, _ := n.AddHost("receiver", packet.AddrFrom4(10, 0, 1, 1))
	n.Attach(a, r1, 2*time.Millisecond, 0)
	n.Attach(b, r2, 2*time.Millisecond, 0)
	if err := n.ComputeRoutes(); err != nil {
		log.Fatal(err)
	}
	return sim, a, b, r1, r2
}

func main() {
	fmt.Println("30s interactive media session across a congested hop, three ways:")
	fmt.Println()

	sims := []struct {
		name   string
		useECN bool
		setup  func(sim *netsim.Sim, r1, r2 *netsim.Router, recv *netsim.Host)
	}{
		{"ECN + AQM: CE-marked, no drops", true, func(sim *netsim.Sim, r1, r2 *netsim.Router, recv *netsim.Host) {
			r2.AddPolicy(&middlebox.CEMarker{Probability: 0.08, RNG: sim.RNG()})
		}},
		{"no ECN: congestion = 8% loss", false, func(sim *netsim.Sim, r1, r2 *netsim.Router, recv *netsim.Host) {
			recv.Uplink().SetLoss(r2, 0.08)
		}},
		{"ECN requested, path bleaches", true, func(sim *netsim.Sim, r1, r2 *netsim.Router, recv *netsim.Host) {
			r1.AddPolicy(&middlebox.ECNBleacher{Probability: 1})
			recv.Uplink().SetLoss(r2, 0.08) // congestion falls back to loss
		}},
	}
	for _, sc := range sims {
		sim, senderHost, receiverHost, r1, r2 := buildPath(7)
		sc.setup(sim, r1, r2, receiverHost)
		recv, _ := rtp.NewReceiver(receiverHost, 5004, 42)
		snd, _ := rtp.NewSender(senderHost, receiverHost.Addr(), 5004, rtp.SenderConfig{
			SSRC: 42, PayloadType: 96, UseECN: sc.useECN,
		})
		var stats rtp.SenderStats
		snd.Start(30*time.Second, func(s rtp.SenderStats) { stats = s })
		sim.Run()
		rs := recv.Stats()
		lossPct := 0.0
		if stats.PacketsSent > 0 {
			lossPct = 100 * float64(stats.PacketsSent-rs.PacketsReceived) / float64(stats.PacketsSent)
		}
		fmt.Printf("%-34s sent %4d  delivered %4d  lost %5.1f%%  CE %3d  final rate %6.0f B/s  decreases %2d\n",
			sc.name, stats.PacketsSent, rs.PacketsReceived, lossPct, rs.CE, stats.FinalRate, stats.RateDecreases)
	}

	fmt.Println()
	fmt.Println("reading: with ECN + AQM the sender adapts with zero loss (no visible glitches);")
	fmt.Println("without ECN the same congestion costs ~8% of the media; when a middlebox")
	fmt.Println("bleaches ECT(0), the session silently degrades to the loss-based behaviour —")
	fmt.Println("which is why the paper's reachability and §4.2 transparency results matter.")
}
