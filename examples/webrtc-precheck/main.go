// webrtc-precheck: the paper's motivating use case. A WebRTC-style
// application wants to enable ECN for its RTP-over-UDP media flow (as
// RFC 6679 and the NADA congestion controller assume), but only if the
// path actually delivers ECT-marked UDP. This example probes candidate
// peers both ways — exactly the paper's methodology — and decides per
// peer whether enabling ECN is safe.
//
//	go run ./examples/webrtc-precheck
package main

import (
	"fmt"
	"log"

	"repro/internal/ecn"
	"repro/internal/netsim"
	"repro/internal/ntp"
	"repro/internal/packet"
	"repro/internal/topology"
)

// precheckResult is the per-peer decision.
type precheckResult struct {
	peer       packet.Addr
	plainOK    bool
	ectOK      bool
	enableECN  bool
	confidence string
}

func main() {
	sim := netsim.NewSim(7)
	world, err := topology.Build(sim, topology.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	vantage, _ := world.VantageByName("Perkins home")

	// Candidate "peers": a handful of pool servers standing in for the
	// remote media endpoints (they answer UDP, which is all the
	// precheck needs).
	peers := world.ServerAddrs()[:12]

	var results []precheckResult
	var probe func(i int)
	probe = func(i int) {
		if i == len(peers) {
			return
		}
		peer := peers[i]
		// Probe not-ECT first (baseline reachability), then ECT(0):
		// enabling ECN is only safe if both succeed.
		ntp.Probe(vantage.Host, peer, ntp.ProbeConfig{ECN: ecn.NotECT}, func(plain ntp.ProbeResult) {
			ntp.Probe(vantage.Host, peer, ntp.ProbeConfig{ECN: ecn.ECT0}, func(ect ntp.ProbeResult) {
				r := precheckResult{peer: peer, plainOK: plain.Reachable, ectOK: ect.Reachable}
				switch {
				case plain.Reachable && ect.Reachable:
					r.enableECN = true
					r.confidence = "path passes ECT(0): enable ECN for media"
				case plain.Reachable && !ect.Reachable:
					r.confidence = "middlebox drops ECT UDP: stay not-ECT"
				case !plain.Reachable:
					r.confidence = "peer unreachable: nothing to decide"
				}
				results = append(results, r)
				probe(i + 1)
			})
		})
	}
	probe(0)
	sim.Run()

	fmt.Println("WebRTC ECN pre-check (paper §1: NADA/RFC 6679 want ECN for low-latency media)")
	enabled := 0
	for _, r := range results {
		status := "SKIP"
		if r.enableECN {
			status = "ECN "
			enabled++
		}
		fmt.Printf("  [%s] %-14s plain=%-5v ect0=%-5v  %s\n",
			status, r.peer, r.plainOK, r.ectOK, r.confidence)
	}
	fmt.Printf("verdict: ECN enabled for %d/%d peers\n", enabled, len(results))
}
