// pathprobe: traceroute-based ECN transparency probing of individual
// paths (the paper's Section 4.2 technique as a standalone tool). It
// sends TTL-limited ECT(0)-marked UDP probes, reads the IP header quoted
// in each ICMP time-exceeded reply, and prints hop-by-hop whether the
// mark survived — with AS attribution of any strip point.
//
//	go run ./examples/pathprobe
package main

import (
	"fmt"
	"log"

	"repro/internal/ecn"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/traceroute"
)

func main() {
	sim := netsim.NewSim(11)
	world, err := topology.Build(sim, topology.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	vantage, _ := world.VantageByName("EC2 Tokyo")
	mux := traceroute.NewMux(vantage.Host)

	// Pick one clean server and one behind a bleaching stub, so the
	// output shows both a green path and a red run.
	var targets []packet.Addr
	var bleached, clean packet.Addr
	for _, s := range world.Servers {
		if s.BleachedPath && bleached.IsZero() {
			bleached = s.Addr
		}
		if !s.BleachedPath && !s.ECTUDPFirewalled && clean.IsZero() {
			clean = s.Addr
		}
	}
	targets = append(targets, clean, bleached)

	for _, target := range targets {
		target := target
		mux.Run(target, traceroute.Config{ProbesPerHop: 2}, func(r traceroute.Result) {
			fmt.Printf("\ntraceroute to %s from %s, ECT(0)-marked UDP probes:\n", r.Target, vantage.Name)
			for _, hop := range r.Hops() {
				if !hop.Responded {
					fmt.Printf("  %2d  *\n", hop.TTL)
					continue
				}
				asname := "?"
				if info, ok := world.ASN.Lookup(hop.Hop); ok {
					asname = fmt.Sprintf("AS%d(%s)", info.ASN, info.Name)
				}
				verdict := "mark intact"
				if hop.Transition != ecn.Preserved {
					verdict = fmt.Sprintf("mark %s (quoted %s)", hop.Transition, hop.QuotedECN)
				}
				fmt.Printf("  %2d  %-14s %-26s rtt=%-8v %s\n",
					hop.TTL, hop.Hop, asname, hop.RTT, verdict)
			}
		})
	}
	sim.Run()
	fmt.Println("\n(strip points at AS boundaries match the paper's 59.1% observation; see cmd/tracemap for the full campaign)")
}
