// Quickstart: build a small simulated Internet, run one measurement
// trace from one vantage point, and print the headline numbers — a
// 60-second tour of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/netsim"
	"repro/internal/topology"
)

func main() {
	// 1. A deterministic world: same seed, same Internet.
	sim := netsim.NewSim(42)
	world, err := topology.Build(sim, topology.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("built:", world)

	// 2. Pick a vantage point and apply trace conditions (pool churn,
	// access-link weather).
	vantage, _ := world.VantageByName("EC2 Ireland")
	world.ApplyTraceConditions(vantage, topology.Batch1, sim.RNG())

	// 3. Run one trace: the paper's four measurements against every
	// server — NTP over not-ECT and ECT(0) UDP, HTTP without and with
	// an ECN-setup SYN.
	var trace dataset.Trace
	core.RunTrace(vantage, world.ServerAddrs(), topology.Batch1, 0, func(t dataset.Trace) {
		trace = t
	})
	sim.Run() // drive the virtual clock until everything completes

	// 4. The paper's headline comparison.
	udp, udpECT, tcp, tcpECN := trace.CountReachable()
	fmt.Printf("servers probed:              %d\n", len(trace.Observations))
	fmt.Printf("reachable, not-ECT UDP:      %d\n", udp)
	fmt.Printf("reachable, ECT(0) UDP:       %d (%.2f%% of not-ECT)\n",
		udpECT, 100*float64(udpECT)/float64(udp))
	fmt.Printf("reachable over TCP:          %d\n", tcp)
	fmt.Printf("negotiated ECN over TCP:     %d (%.1f%% of TCP)\n",
		tcpECN, 100*float64(tcpECN)/float64(tcp))
	fmt.Printf("virtual time elapsed:        %v\n", sim.Now())
}
