// Command ecnspider runs the full measurement campaign of McQuistin &
// Perkins, "Is Explicit Congestion Notification usable with UDP?" (IMC
// 2015) over a generated Internet: pool discovery via DNS, then the
// four-measurement trace (UDP ±ECT(0), TCP ±ECN) from each vantage
// point, writing the dataset as JSON lines.
//
// Usage:
//
//	ecnspider [-seed N] [-scale paper|small] [-traces N] [-discover] [-o dataset.jsonl]
//
// -traces N overrides the per-vantage trace count (0 = the paper's
// 210-trace plan at paper scale, 2 per vantage at small scale).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/netsim"
	"repro/internal/topology"
)

func main() {
	var (
		seed     = flag.Int64("seed", 2015, "simulation seed (same seed → identical dataset)")
		scale    = flag.String("scale", "small", "world scale: paper (2500 servers) or small (120)")
		traces   = flag.Int("traces", 0, "traces per vantage (0 = scale default)")
		discover = flag.Bool("discover", false, "enumerate servers via pool DNS before probing")
		out      = flag.String("o", "dataset.jsonl", "output dataset path (- for stdout)")
		pcapPath = flag.String("pcap", "", "capture the first vantage's traffic to this pcap file (last 100k packets)")
	)
	flag.Parse()

	cfg := topology.SmallConfig()
	perVantage := 2
	if *scale == "paper" {
		cfg = topology.DefaultConfig()
		perVantage = 0 // use the paper plan
	}

	start := time.Now()
	sim := netsim.NewSim(*seed)
	world, err := topology.Build(sim, cfg)
	if err != nil {
		fatal("build world: %v", err)
	}
	fmt.Fprintf(os.Stderr, "world: %s (%.2fs)\n", world, time.Since(start).Seconds())

	plan := core.PaperTracePlan()
	if perVantage > 0 || *traces > 0 {
		n := perVantage
		if *traces > 0 {
			n = *traces
		}
		plan = map[string]int{}
		for _, v := range world.Vantages {
			plan[v.Name] = n
		}
	}

	// Optional tcpdump-style capture on the first vantage, like the
	// parallel capture sessions the paper ran beside its prober.
	var recorder *capture.Recorder
	if *pcapPath != "" {
		recorder = capture.NewRecorder(100_000)
		world.Vantages[0].Host.AddTap(recorder.Tap)
	}

	campaign := core.NewCampaign(world, core.CampaignConfig{
		TracesPerVantage: plan,
		DiscoverServers:  *discover,
	})

	var result *dataset.Dataset
	campaign.Run(func(d *dataset.Dataset) { result = d })
	sim.Run()
	if result == nil {
		fatal("campaign did not complete")
	}
	fmt.Fprintf(os.Stderr, "campaign: %d traces over %d servers, %d events, %v virtual, %.2fs real\n",
		len(result.Traces), len(campaign.Servers), sim.Executed(), sim.Now().Round(time.Second), time.Since(start).Seconds())

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("create %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}
	if err := dataset.Write(w, result); err != nil {
		fatal("write dataset: %v", err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "dataset written to %s\n", *out)
	}

	if recorder != nil {
		f, err := os.Create(*pcapPath)
		if err != nil {
			fatal("create %s: %v", *pcapPath, err)
		}
		defer f.Close()
		if err := capture.WritePcap(f, recorder.Records()); err != nil {
			fatal("write pcap: %v", err)
		}
		fmt.Fprintf(os.Stderr, "pcap: %d packets written to %s (%d displaced by ring)\n",
			recorder.Len(), *pcapPath, recorder.Overwritten())
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ecnspider: "+format+"\n", args...)
	os.Exit(1)
}
