// Command ecnspider runs the full measurement campaign of McQuistin &
// Perkins, "Is Explicit Congestion Notification usable with UDP?" (IMC
// 2015) over a generated Internet: pool discovery via DNS, then the
// four-measurement trace (UDP ±ECT(0), TCP ±ECN) from each vantage
// point, writing the dataset as JSON lines.
//
// The campaign is sharded into (vantage, slice) units — each vantage's
// trace quota split into -slices contiguous blocks — and runs shards in
// parallel on -workers goroutines; the merged dataset is byte-identical
// for any worker count and any slice count.
//
// Usage:
//
//	ecnspider [-seed N] [-scale paper|small] [-scenario name] [-traces N] [-workers N] [-slices N] [-discover] [-o dataset.jsonl]
//
// Campaign knobs come from the shared campaign flag surface
// (campaign.BindSpecFlags): explicit flags override the REPRO_*
// environment, which overrides the tool defaults (small scale, 2 traces
// per vantage; -scale paper without -traces runs the paper's 210-trace
// plan). -scenario selects the congestion scenario (uncongested, the
// default; congested-edge; congested-transit) — congested runs append a
// CE-mark report to stderr. -slices N lifts campaign parallelism past
// the 13 vantage points (13×N shards); -sched heap selects the
// simulator's binary-heap fallback instead of the default timing wheel,
// and -xtraffic events the legacy event-per-phantom-boundary
// cross-traffic drive instead of the default lazy catch-up replay, both
// for differential runs. -cpuprofile/-memprofile write pprof profiles
// of the campaign for hot-path work.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/analysis"
	"repro/internal/campaign"
	"repro/internal/capture"
	"repro/internal/dataset"
	"repro/internal/topology"
)

func main() {
	base := campaign.DefaultSpec()
	base.Scale = "small"
	base.Traces = 2
	base.Stride = 0 // ecnspider reproduces the dataset; no traceroute sweep
	spec := campaign.BindSpecFlags(flag.CommandLine, campaign.FlagOptions{Base: base})
	var (
		out      = flag.String("o", "dataset.jsonl", "output dataset path (- for stdout)")
		pcapPath = flag.String("pcap", "", "capture the first shard's vantage traffic to this pcap file (last 100k packets)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
		memProf  = flag.String("memprofile", "", "write a post-campaign heap profile to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal("create %s: %v", *cpuProf, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("start cpu profile: %v", err)
		}
		// fatal exits via os.Exit, which skips defers — register the
		// flush with it too, so a profile of a failing run is readable.
		stopProfile = pprof.StopCPUProfile
		defer pprof.StopCPUProfile()
	}

	s, err := spec.Resolve()
	if err != nil {
		fatal("%v", err)
	}
	// The 2-traces default belongs to the small world; at paper scale an
	// untouched -traces means the full 210-trace plan, as it always has.
	if spec.Source("traces") == campaign.SourceDefault && s.Scale == "paper" {
		s.Traces = 0
	}
	cfg, err := s.Config()
	if err != nil {
		fatal("%v", err)
	}

	// Optional tcpdump-style capture, like the parallel capture sessions
	// the paper ran beside its prober. With the campaign sharded per
	// vantage, the tap attaches to the first shard's probing host.
	var recorder *capture.Recorder
	if *pcapPath != "" {
		recorder = capture.NewRecorder(100_000)
		first := true
		cfg.ShardHook = func(shard int, vantage string, w *topology.World) {
			if !first {
				return
			}
			first = false
			if v, ok := w.VantageByName(vantage); ok {
				v.Host.AddTap(recorder.Tap)
			}
		}
		// A single worker keeps the tapped shard's packet order exactly
		// reproducible; the dataset itself never depends on workers.
		if cfg.Workers != 1 {
			fmt.Fprintln(os.Stderr, "ecnspider: -pcap forces -workers=1 for a reproducible capture")
		}
		cfg.Workers = 1
	}

	start := time.Now()
	res, err := campaign.Run(cfg)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "world: %s\n", res.World)
	var virtual time.Duration
	for _, s := range res.Shards {
		if s.VirtualTime > virtual {
			virtual = s.VirtualTime
		}
	}
	fmt.Fprintf(os.Stderr, "campaign: %d traces over %d servers in %d shards, %d events, %v virtual, %.2fs real\n",
		len(res.Dataset.Traces), len(res.Servers), len(res.Shards), res.Events,
		virtual.Round(time.Second), time.Since(start).Seconds())
	if res.PhantomEvents > 0 || res.ReplayedBoundaries > 0 {
		fmt.Fprintf(os.Stderr, "cross-traffic: %d phantom boundary events, %d boundaries replayed without events\n",
			res.PhantomEvents, res.ReplayedBoundaries)
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatal("create %s: %v", *memProf, err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal("write heap profile: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("close %s: %v", *memProf, err)
		}
	}
	if len(res.Congestion) > 0 {
		fmt.Fprint(os.Stderr, analysis.RenderCEMarkReport(analysis.ComputeCEMarkReport(res.Congestion)))
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("create %s: %v", *out, err)
		}
		w = f
	}
	if err := dataset.Write(w, res.Dataset); err != nil {
		fatal("write dataset: %v", err)
	}
	if *out != "-" {
		if err := w.Close(); err != nil {
			fatal("close %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr, "dataset written to %s\n", *out)
	}

	if recorder != nil {
		f, err := os.Create(*pcapPath)
		if err != nil {
			fatal("create %s: %v", *pcapPath, err)
		}
		if err := capture.WritePcap(f, recorder.Records()); err != nil {
			fatal("write pcap: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("close %s: %v", *pcapPath, err)
		}
		fmt.Fprintf(os.Stderr, "pcap: %d packets written to %s (%d displaced by ring)\n",
			recorder.Len(), *pcapPath, recorder.Overwritten())
	}
}

// stopProfile flushes an active CPU profile before a fatal exit.
var stopProfile func()

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ecnspider: "+format+"\n", args...)
	if stopProfile != nil {
		stopProfile()
	}
	os.Exit(1)
}
