// Command ecnreport reads an ecnspider dataset and regenerates the
// paper's figures and tables (Figures 2a/2b/3a/3b/5/6, Table 2). Table 1
// and Figures 1/4 need world context (geo database, traceroutes), so
// ecnreport can also regenerate the world from the same seed and produce
// them too.
//
// Usage:
//
//	ecnreport [-i dataset.jsonl] [-seed N] [-scale small|paper] [-only fig2a,table2,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/traceroute"
)

func main() {
	var (
		in     = flag.String("i", "dataset.jsonl", "input dataset (- for stdin)")
		seed   = flag.Int64("seed", 2015, "seed used to build the world (for table1/fig1/fig4)")
		scale  = flag.String("scale", "small", "world scale used by the campaign")
		only   = flag.String("only", "", "comma-separated subset: table1,fig1,fig2a,fig2b,fig3a,fig3b,fig4,fig5,fig6,table2,prose")
		csvDir = flag.String("csv", "", "also write <artefact>.csv files into this directory")
	)
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal("open %s: %v", *in, err)
		}
		defer func() { _ = f.Close() }() // read-only; close errors carry no data
		r = f
	}
	d, err := dataset.Read(r)
	if err != nil {
		fatal("read dataset: %v", err)
	}

	// World-dependent artefacts share the generation seed.
	needWorld := sel("table1") || sel("fig1") || sel("fig4")
	var world *topology.World
	if needWorld {
		cfg := topology.SmallConfig()
		if *scale == "paper" {
			cfg = topology.DefaultConfig()
		}
		sim := netsim.NewSim(*seed)
		world, err = topology.Build(sim, cfg)
		if err != nil {
			fatal("rebuild world: %v", err)
		}
	}

	// writeCSV emits an artefact's CSV beside the textual rendering.
	writeCSV := func(name string, emit func(w *os.File) error) {
		if *csvDir == "" {
			return
		}
		path := *csvDir + string(os.PathSeparator) + name + ".csv"
		f, err := os.Create(path)
		if err != nil {
			fatal("create %s: %v", path, err)
		}
		if err := emit(f); err != nil {
			fatal("write %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			fatal("close %s: %v", path, err)
		}
	}

	if sel("table1") {
		t1 := analysis.ComputeTable1(world.ServerAddrs(), world.Geo)
		fmt.Println(analysis.RenderTable1(t1))
		writeCSV("table1", func(w *os.File) error { return analysis.WriteTable1CSV(w, t1) })
	}
	if sel("fig1") {
		fmt.Println(analysis.RenderFigure1(analysis.ComputeFigure1(world.ServerAddrs(), world.Geo)))
	}
	if sel("fig2a") {
		f2 := analysis.ComputeFigure2a(d)
		fmt.Println(analysis.RenderFigure2(f2,
			"Figure 2a: % of servers reachable by not-ECT UDP also reachable by ECT(0) UDP"))
		writeCSV("figure2a", func(w *os.File) error { return analysis.WriteFigure2CSV(w, f2) })
	}
	if sel("fig2b") {
		f2 := analysis.ComputeFigure2b(d)
		fmt.Println(analysis.RenderFigure2(f2,
			"Figure 2b: % of servers reachable by ECT(0) UDP also reachable by not-ECT UDP"))
		writeCSV("figure2b", func(w *os.File) error { return analysis.WriteFigure2CSV(w, f2) })
	}
	if sel("fig3a") {
		f3 := analysis.ComputeFigure3a(d)
		fmt.Println(analysis.RenderFigure3(f3,
			"Figure 3a: differential reachability (not-ECT yes, ECT(0) no)"))
		writeCSV("figure3a", func(w *os.File) error { return analysis.WriteFigure3CSV(w, f3) })
	}
	if sel("fig3b") {
		f3 := analysis.ComputeFigure3b(d)
		fmt.Println(analysis.RenderFigure3(f3,
			"Figure 3b: differential reachability (ECT(0) yes, not-ECT no)"))
		writeCSV("figure3b", func(w *os.File) error { return analysis.WriteFigure3CSV(w, f3) })
	}
	if sel("fig4") {
		var obs []core.PathObservation
		core.RunTracerouteCampaign(world, core.TracerouteCampaignConfig{
			Config: traceroute.Config{ProbesPerHop: 1, StopAfterSilent: 2},
		}, func(o []core.PathObservation) { obs = o })
		world.Sim.Run()
		f4 := analysis.ComputeFigure4(obs, world.ASN)
		fmt.Println(analysis.RenderFigure4(f4))
		writeCSV("figure4", func(w *os.File) error { return analysis.WriteFigure4CSV(w, f4) })
	}
	f5 := analysis.ComputeFigure5(d)
	if sel("fig5") {
		fmt.Println(analysis.RenderFigure5(f5))
		writeCSV("figure5", func(w *os.File) error { return analysis.WriteFigure5CSV(w, f5) })
	}
	if sel("fig6") {
		f6 := analysis.ComputeFigure6(f5)
		fmt.Println(analysis.RenderFigure6(f6))
		writeCSV("figure6", func(w *os.File) error { return analysis.WriteFigure6CSV(w, f6) })
	}
	if sel("table2") {
		t2 := analysis.ComputeTable2(d)
		fmt.Println(analysis.RenderTable2(t2))
		writeCSV("table2", func(w *os.File) error { return analysis.WriteTable2CSV(w, t2) })
	}
	if sel("prose") {
		fmt.Println(analysis.RenderProse(analysis.ComputeProse(d)))
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ecnreport: "+format+"\n", args...)
	os.Exit(1)
}
