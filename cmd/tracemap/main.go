// Command tracemap runs the Section 4.2 traceroute campaign: TTL-limited
// ECT(0)-marked UDP probes from every vantage point toward the pool
// servers, comparing the ECN field quoted in ICMP time-exceeded errors
// with what was sent, and reporting where marks are stripped.
//
// Usage:
//
//	tracemap [-seed N] [-scale small|paper] [-stride N] [-vantage name] [-paths N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/traceroute"
)

func main() {
	var (
		seed    = flag.Int64("seed", 2015, "simulation seed")
		scale   = flag.String("scale", "small", "world scale: small or paper")
		stride  = flag.Int("stride", 1, "trace every Nth server")
		vantage = flag.String("vantage", "", "single vantage to trace from (default: all 13)")
	)
	flag.Parse()

	cfg := topology.SmallConfig()
	if *scale == "paper" {
		cfg = topology.DefaultConfig()
	}
	start := time.Now()
	sim := netsim.NewSim(*seed)
	world, err := topology.Build(sim, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracemap: %v\n", err)
		os.Exit(1)
	}

	var names []string
	if *vantage != "" {
		names = []string{*vantage}
	}
	var obs []core.PathObservation
	core.RunTracerouteCampaign(world, core.TracerouteCampaignConfig{
		Vantages:     names,
		TargetStride: *stride,
		Config:       traceroute.Config{ProbesPerHop: 1, StopAfterSilent: 2},
	}, func(o []core.PathObservation) { obs = o })
	sim.Run()

	f4 := analysis.ComputeFigure4(obs, world.ASN)
	fmt.Println(analysis.RenderFigure4(f4))
	fmt.Fprintf(os.Stderr, "tracemap: %d observations, %d events, %.2fs\n",
		len(obs), sim.Executed(), time.Since(start).Seconds())
}
