// Command determinism promotes the campaign engine's headline invariant
// — the merged dataset is byte-identical for any parallelism shape —
// from a test assertion to an explicit pipeline check. For every
// scenario it runs the same small-scale campaign across the full
// slices × workers grid, hashes each merged dataset (SHA-256 over the
// canonical JSON-lines encoding), and exits non-zero on any divergence.
//
// CI runs it as the `determinism` job; locally `make determinism` does
// the same. The grid comes from the shared campaign flag surface
// (campaign.BindSpecFlags in grid mode): -workers/-slices/-sched/
// -xtraffic/-scenario accept comma-separated axis values, a REPRO_*
// variable narrows its axis to one value, and the defaults — slices ∈
// {1, 2, 8} × workers ∈ {1, 4, 13} × schedulers {wheel, heap} ×
// cross-traffic drives {lazy, events} × all scenarios — span
// one-shard-per-vantage through more-slices-than-traces, sequential
// through one-goroutine-per-vantage, and both differential oracles
// (the heap scheduler and the event-per-boundary cross-traffic drive),
// whose hashes must all be equal.
//
// The hash this command prints for a spec is the control plane's
// correctness contract: a dataset served by cmd/reprod for the same
// spec must have the same SHA-256 (the service-smoke CI job asserts
// exactly that).
//
// Every grid cell runs with a full telemetry set attached
// (campaign.NewMetrics), so the grid doubles as the out-of-band proof
// for the flight recorder: if instrumentation ever perturbed an event
// order or a PRNG draw, the cell's hash would diverge here before
// anything else caught it.
//
// Usage:
//
//	determinism [-seed N] [-traces N] [-workers 1,4,13] [-slices 1,2,8] [-scenario a,b] [-sched wheel,heap] [-xtraffic lazy,events]
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"

	"repro/internal/campaign"
	"repro/internal/dataset"
	"repro/internal/telemetry"
)

func main() {
	base := campaign.DefaultSpec()
	base.Scale = "small"
	base.Traces = 2
	base.Stride = 0
	spec := campaign.BindSpecFlags(flag.CommandLine, campaign.FlagOptions{
		Base: base,
		Grid: &campaign.GridDefaults{
			Scenarios:  campaign.Scenarios(),
			Schedulers: []string{"wheel", "heap"},
			XTraffics:  []string{"lazy", "events"},
			Workers:    []int{1, 4, 13},
			Slices:     []int{1, 2, 8},
		},
	})
	flag.Parse()

	cells, err := spec.ResolveGrid()
	if err != nil {
		fatal("%v", err)
	}

	// Cells arrive scenario-outermost; each scenario's first cell sets
	// the reference hash the rest of its block must match.
	failed := false
	scenario, ref := "", ""
	for _, cell := range cells {
		if cell.Scenario != scenario {
			scenario, ref = cell.Scenario, ""
		}
		sum, err := runHash(cell)
		if err != nil {
			fatal("scenario %s sched=%s xtraffic=%s slices=%d workers=%d: %v",
				cell.Scenario, cell.Scheduler, cell.XTraffic, cell.SlicesPerVantage, cell.Workers, err)
		}
		fmt.Printf("%s  scenario=%s sched=%s xtraffic=%s slices=%d workers=%d\n",
			sum, cell.Scenario, cell.Scheduler, cell.XTraffic, cell.SlicesPerVantage, cell.Workers)
		if ref == "" {
			ref = sum
		} else if sum != ref {
			fmt.Fprintf(os.Stderr,
				"determinism: FAIL: scenario %s diverges at sched=%s xtraffic=%s slices=%d workers=%d\n",
				cell.Scenario, cell.Scheduler, cell.XTraffic, cell.SlicesPerVantage, cell.Workers)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("determinism: OK — %d merged datasets identical across the slices × workers × scheduler × cross-traffic grid\n", len(cells))
}

// runHash executes one grid cell's campaign — telemetry attached — and
// returns the SHA-256 of its merged dataset in canonical JSON-lines
// form.
func runHash(spec campaign.Spec) (string, error) {
	cfg, err := spec.Config()
	if err != nil {
		return "", err
	}
	cfg.Metrics = campaign.NewMetrics(telemetry.NewRegistry())
	res, err := campaign.Run(cfg)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	if err := dataset.Write(h, res.Dataset); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "determinism: "+format+"\n", args...)
	os.Exit(1)
}
