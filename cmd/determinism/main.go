// Command determinism promotes the campaign engine's headline invariant
// — the merged dataset is byte-identical for any parallelism shape —
// from a test assertion to an explicit pipeline check. For every
// scenario it runs the same small-scale campaign across the full
// slices × workers grid, hashes each merged dataset (SHA-256 over the
// canonical JSON-lines encoding), and exits non-zero on any divergence.
//
// CI runs it as the `determinism` job; locally `make determinism` does
// the same. The default grid — slices ∈ {1, 2, 8} × workers ∈ {1, 4,
// 13} — spans one-shard-per-vantage through more-slices-than-traces,
// and sequential through one-goroutine-per-vantage, matching the
// TestSliceCountInvariance and TestWorkerCountInvariance tiers. The
// -sched flag reruns the grid on the heap scheduler fallback, whose
// hashes must equal the timing wheel's; the -xtraffic flag reruns it
// with the congestion substrate's cross-traffic driven lazily (the
// default arithmetic catch-up replay) and event-per-boundary (the
// legacy differential oracle) — the two drives must also hash equal.
//
// Usage:
//
//	determinism [-seed N] [-traces N] [-workers 1,4,13] [-slices 1,2,8] [-scenarios a,b] [-sched wheel,heap] [-xtraffic lazy,events]
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/campaign"
	"repro/internal/dataset"
)

func main() {
	var (
		seed      = flag.Int64("seed", 2015, "campaign seed")
		traces    = flag.Int("traces", 2, "traces per vantage")
		workers   = flag.String("workers", "1,4,13", "comma-separated worker counts")
		slices    = flag.String("slices", "1,2,8", "comma-separated sub-vantage slice counts")
		scenarios = flag.String("scenarios", strings.Join(campaign.Scenarios(), ","), "comma-separated scenarios")
		scheds    = flag.String("sched", "wheel,heap", "comma-separated simulator schedulers")
		xtraffics = flag.String("xtraffic", "lazy,events", "comma-separated cross-traffic drives")
	)
	flag.Parse()

	workerCounts, err := parseCounts("worker", *workers)
	if err != nil {
		fatal("%v", err)
	}
	sliceCounts, err := parseCounts("slice", *slices)
	if err != nil {
		fatal("%v", err)
	}

	failed := false
	runs := 0
	for _, scenario := range strings.Split(*scenarios, ",") {
		scenario = strings.TrimSpace(scenario)
		var ref string
		for _, xtraffic := range strings.Split(*xtraffics, ",") {
			xtraffic = strings.TrimSpace(xtraffic)
			for _, sched := range strings.Split(*scheds, ",") {
				sched = strings.TrimSpace(sched)
				for _, sl := range sliceCounts {
					for _, w := range workerCounts {
						sum, err := runHash(*seed, *traces, scenario, w, sl, sched, xtraffic)
						if err != nil {
							fatal("scenario %s sched=%s xtraffic=%s slices=%d workers=%d: %v", scenario, sched, xtraffic, sl, w, err)
						}
						fmt.Printf("%s  scenario=%s sched=%s xtraffic=%s slices=%d workers=%d\n", sum, scenario, sched, xtraffic, sl, w)
						runs++
						if ref == "" {
							ref = sum
						} else if sum != ref {
							fmt.Fprintf(os.Stderr,
								"determinism: FAIL: scenario %s diverges at sched=%s xtraffic=%s slices=%d workers=%d\n",
								scenario, sched, xtraffic, sl, w)
							failed = true
						}
					}
				}
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("determinism: OK — %d merged datasets identical across the slices × workers × scheduler × cross-traffic grid\n", runs)
}

// runHash executes one campaign and returns the SHA-256 of its merged
// dataset in canonical JSON-lines form.
func runHash(seed int64, traces int, scenario string, workers, slices int, sched, xtraffic string) (string, error) {
	cfg := campaign.Config{
		Scale:            "small",
		Scenario:         scenario,
		Traces:           traces,
		Seed:             seed,
		Workers:          workers,
		SlicesPerVantage: slices,
		Scheduler:        sched,
		XTraffic:         xtraffic,
	}
	res, err := campaign.Run(cfg)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	if err := dataset.Write(h, res.Dataset); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

func parseCounts(what, s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("determinism: bad %s count %q", what, part)
		}
		counts = append(counts, n)
	}
	if len(counts) < 1 {
		return nil, fmt.Errorf("determinism: need at least one %s count", what)
	}
	return counts, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "determinism: "+format+"\n", args...)
	os.Exit(1)
}
