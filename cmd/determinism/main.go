// Command determinism promotes the campaign engine's headline invariant
// — the merged dataset is byte-identical for any worker count — from a
// test assertion to an explicit pipeline check. For every scenario it
// runs the same small-scale campaign at several worker counts, hashes
// the merged dataset (SHA-256 over the canonical JSON-lines encoding),
// and exits non-zero on any divergence.
//
// CI runs it as the `determinism` job; locally `make determinism` does
// the same. The default worker counts 1, 4 and 13 match the
// TestWorkerCountInvariance tiers: sequential, a small pool, and one
// goroutine per vantage.
//
// Usage:
//
//	determinism [-seed N] [-traces N] [-workers 1,4,13] [-scenarios a,b]
package main

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/campaign"
	"repro/internal/dataset"
)

func main() {
	var (
		seed      = flag.Int64("seed", 2015, "campaign seed")
		traces    = flag.Int("traces", 2, "traces per vantage")
		workers   = flag.String("workers", "1,4,13", "comma-separated worker counts")
		scenarios = flag.String("scenarios", strings.Join(campaign.Scenarios(), ","), "comma-separated scenarios")
	)
	flag.Parse()

	counts, err := parseCounts(*workers)
	if err != nil {
		fatal("%v", err)
	}

	failed := false
	for _, scenario := range strings.Split(*scenarios, ",") {
		scenario = strings.TrimSpace(scenario)
		var ref []byte
		for i, w := range counts {
			sum, err := runHash(*seed, *traces, scenario, w)
			if err != nil {
				fatal("scenario %s workers=%d: %v", scenario, w, err)
			}
			fmt.Printf("%s  scenario=%s workers=%d\n", sum, scenario, w)
			if i == 0 {
				ref = []byte(sum)
			} else if !bytes.Equal(ref, []byte(sum)) {
				fmt.Fprintf(os.Stderr, "determinism: FAIL: scenario %s diverges at workers=%d\n", scenario, w)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("determinism: OK — merged datasets identical across worker counts")
}

// runHash executes one campaign and returns the SHA-256 of its merged
// dataset in canonical JSON-lines form.
func runHash(seed int64, traces int, scenario string, workers int) (string, error) {
	cfg := campaign.Config{
		Scale:    "small",
		Scenario: scenario,
		Traces:   traces,
		Seed:     seed,
		Workers:  workers,
	}
	res, err := campaign.Run(cfg)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	if err := dataset.Write(h, res.Dataset); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

func parseCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("determinism: bad worker count %q", part)
		}
		counts = append(counts, n)
	}
	if len(counts) < 2 {
		return nil, fmt.Errorf("determinism: need at least two worker counts to compare")
	}
	return counts, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "determinism: "+format+"\n", args...)
	os.Exit(1)
}
