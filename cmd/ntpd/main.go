// Command ntpd runs the repository's NTP responder on a real UDP socket
// — the same codec and response logic the simulated pool servers use,
// demonstrating wire compatibility outside the simulator. With -query it
// acts as a one-shot client instead.
//
// Usage:
//
//	ntpd -listen 127.0.0.1:11123         # serve
//	ntpd -query 127.0.0.1:11123          # ask once and print the offset
//
// Note: real-socket mode cannot set the ECN bits (that needs raw-socket
// or x/net TOS access, unavailable to a stdlib-only build), which is
// precisely why the ECN measurements run over the simulator. See
// DESIGN.md §2.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/ntp"
)

func main() {
	var (
		listen = flag.String("listen", "", "serve NTP on this UDP address")
		query  = flag.String("query", "", "query an NTP server once and exit")
	)
	flag.Parse()

	switch {
	case *listen != "":
		serve(*listen)
	case *query != "":
		ask(*query)
	default:
		fmt.Fprintln(os.Stderr, "ntpd: need -listen ADDR or -query ADDR")
		os.Exit(2)
	}
}

func serve(addr string) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		fatal("listen: %v", err)
	}
	defer pc.Close()
	fmt.Fprintf(os.Stderr, "ntpd: serving on %s (stratum 2)\n", pc.LocalAddr())
	srv := ntp.NewServer(0x7F000001)
	if err := srv.ServePacketConn(pc, func() uint64 {
		return ntp.TimestampFromTime(time.Now())
	}); err != nil {
		fatal("serve: %v", err)
	}
}

func ask(addr string) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		fatal("dial: %v", err)
	}
	defer conn.Close()

	t1 := time.Now()
	req := ntp.NewRequest(ntp.TimestampFromTime(t1))
	if _, err := conn.Write(req.Marshal(nil)); err != nil {
		fatal("send: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 1024)
	n, err := conn.Read(buf)
	if err != nil {
		fatal("no response: %v", err)
	}
	t4 := time.Now()
	resp, err := ntp.Parse(buf[:n])
	if err != nil {
		fatal("parse: %v", err)
	}
	if err := ntp.ValidateResponse(req, resp); err != nil {
		fatal("validate: %v", err)
	}
	// RFC 5905 on-wire clock offset: ((T2-T1) + (T3-T4)) / 2.
	t2 := ntp.TimeFromTimestamp(resp.RecvTS)
	t3 := ntp.TimeFromTimestamp(resp.XmitTS)
	offset := (t2.Sub(t1) + t3.Sub(t4)) / 2
	rtt := t4.Sub(t1) - t3.Sub(t2)
	fmt.Printf("server %s stratum %d offset %v rtt %v\n", addr, resp.Stratum, offset, rtt)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ntpd: "+format+"\n", args...)
	os.Exit(1)
}
