// Command benchreport measures the repository's performance trajectory
// and writes it as JSON. CI runs it via `make bench` and uploads the
// output (BENCH_10.json) as a build artifact, so regressions in campaign
// wall-clock or packet hot-path throughput are visible across PRs.
//
// Five metric families:
//
//   - campaign wall-clock: the small-scale sharded campaign under every
//     scenario — uncongested, congested-edge and congested-transit (the
//     congested rows also record the CE-mark ratios as a calibration
//     canary). Congested scenarios run under both cross-traffic drives:
//     the lazy catch-up replay (the default) and the legacy
//     event-per-phantom-boundary oracle, with each row reporting the
//     phantom-boundary split (events vs replayed) so the saved
//     scheduler work is visible. Worker × slice scaling rows follow,
//     and each scenario's lazy row has an instrumented twin
//     ("telemetry": true) running with a full flight-recorder Metrics
//     set attached — the instrumented-vs-uninstrumented pair behind
//     the perf gate's <2% overhead budget;
//   - world setup: compiling the frozen topology blueprint (once per
//     campaign) vs instantiating a shard world from it (once per
//     shard) — the fixed costs sharding multiplies;
//   - scheduler throughput: the simulator event loop on the dense mixed
//     near/far timer kernel and on the sparse-timeline kernel, timing
//     wheel vs heap fallback, with allocs/op (must be zero);
//   - CE-mark throughput and packet build: the pooled per-packet costs,
//     also required allocation-free;
//   - control-plane service: a cold spec submission through cmd/reprod's
//     HTTP surface (submit + poll + dataset fetch) against the direct
//     campaign.Run it wraps — the job-manager overhead, expected under
//     5% — the cache-hit resubmission, expected near-instant, and the
//     same campaign farmed out over the lease/heartbeat worker protocol
//     to four in-process workers (service/distributed-w4), whose
//     overhead vs direct is the coordinator round-trip plus
//     wire-serialization cost of distribution. The distributed shape
//     runs twice — with the write-ahead journal (the production
//     default) and without (service/distributed-w4-nojournal) — and
//     the journal row carries the fsync cost of crash tolerance as
//     journal_overhead_vs_nojournal, budgeted under 5%. A second
//     distributed pair injects a straggler that claims a batch and
//     dies: with straggler speculation on, healthy workers race
//     speculative twins of the dead worker's shards and finish early;
//     with it off, the job waits out the full lease TTL — the pair's
//     wall-clock gap is what speculation buys;
//   - journal footprint: the same ≥32-shard distributed job journaled
//     under the segmented write-ahead log with compaction (the
//     production default) vs a single never-sealed segment (the
//     PR 9 layout), with the on-disk byte ratio — the O(pending) vs
//     O(history) claim, measured.
//
// Campaign knobs come from the shared spec flag surface
// (campaign.BindSpecFlags): explicit flags > REPRO_* env > the small
// two-trace base below.
//
// Usage:
//
//	benchreport [-o BENCH_10.json] [-seed N] [-traces N] [-scale S]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/apiclient"
	"repro/internal/aqm"
	"repro/internal/campaign"
	"repro/internal/dataset"
	"repro/internal/ecn"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/worker"
)

type campaignRow struct {
	Scenario string `json:"scenario"`
	Scale    string `json:"scale"`
	Traces   int    `json:"traces_per_vantage"`
	Workers  int    `json:"workers"`
	Slices   int    `json:"slices_per_vantage"`
	XTraffic string `json:"xtraffic"`
	// Telemetry marks rows run with a full flight-recorder Metrics set
	// attached; compare against the same shape without it for the
	// instrumentation overhead.
	Telemetry   bool    `json:"telemetry,omitempty"`
	Shards      int     `json:"shards"`
	WallSeconds float64 `json:"wall_seconds"`
	Events      uint64  `json:"events"`
	// PhantomEvents counts phantom serialization boundaries that ran as
	// scheduler events; ReplayedBoundaries counts the ones the lazy
	// drive replayed arithmetically. Their sum is drive-invariant.
	PhantomEvents      uint64 `json:"events_phantom"`
	ReplayedBoundaries uint64 `json:"boundaries_replayed"`
	TracesRun          int    `json:"traces_run"`
	AllocsPerOp        int64  `json:"allocs_per_op"`
	// Congested scenarios only: the CE-mark report aggregates.
	ObservedCERatio float64 `json:"ce_observed_ratio,omitempty"`
	QueueMarkRatio  float64 `json:"ce_queue_ratio,omitempty"`
}

type hotPathRow struct {
	Name          string  `json:"name"`
	NsPerOp       float64 `json:"ns_per_op"`
	PacketsPerSec float64 `json:"packets_per_sec,omitempty"`
	EventsPerSec  float64 `json:"events_per_sec,omitempty"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	// AQM rows only.
	CEMarkFraction float64 `json:"ce_mark_fraction,omitempty"`
}

// serviceRow times one interaction with the control plane (or, for the
// direct-run baseline, the engine work the control plane wraps).
type serviceRow struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
	// Cached marks the resubmission row served from the result store.
	Cached bool `json:"cached,omitempty"`
	// OverheadVsDirect is (row - direct run) / direct run; the job
	// manager plus HTTP transport should stay under 5%.
	OverheadVsDirect float64 `json:"overhead_vs_direct,omitempty"`
	// JournalOverheadVsNoJournal, on the journaled distributed row, is
	// (journal on - journal off) / journal off: the fsync-before-ack
	// price of crash tolerance, budgeted under 5%.
	JournalOverheadVsNoJournal float64 `json:"journal_overhead_vs_nojournal,omitempty"`
}

// journalRow records one journal layout's on-disk footprint for the
// same almost-complete distributed job.
type journalRow struct {
	Name   string `json:"name"`
	Shards int    `json:"shards"`
	Bytes  int64  `json:"bytes"`
	// RatioVsSingleFile, on the segmented row, is segmented bytes /
	// single-file bytes; the compaction acceptance keeps it under 0.5.
	RatioVsSingleFile float64 `json:"ratio_vs_single_file,omitempty"`
}

type report struct {
	Schema     string        `json:"schema"`
	GoMaxProcs int           `json:"go_max_procs"`
	Campaigns  []campaignRow `json:"campaigns"`
	HotPaths   []hotPathRow  `json:"hot_paths"`
	Service    []serviceRow  `json:"service"`
	Journal    []journalRow  `json:"journal"`
}

func main() {
	out := flag.String("o", "BENCH_10.json", "output path (- for stdout)")
	base := campaign.DefaultSpec()
	base.Scale = "small"
	base.Traces = 2
	base.Stride = 0
	specFlags := campaign.BindSpecFlags(flag.CommandLine, campaign.FlagOptions{Base: base})
	flag.Parse()
	spec, err := specFlags.Resolve()
	if err != nil {
		fatal("%v", err)
	}

	rep := report{Schema: "repro-bench/10", GoMaxProcs: runtime.GOMAXPROCS(0)}

	// Hot paths run first, in a clean heap: the campaigns below leave
	// hundreds of megabytes of dataset behind, and measuring
	// cache-sensitive microbenchmarks in that environment understates
	// them.
	rep.HotPaths = append(rep.HotPaths, benchScheduler()...)
	rep.HotPaths = append(rep.HotPaths, benchWorldSetup(spec.Seed)...)
	for _, name := range []string{"droptail", "red", "codel"} {
		rep.HotPaths = append(rep.HotPaths, benchAQM(name))
	}
	rep.HotPaths = append(rep.HotPaths, benchBuildUDP())

	// Scenario rows: every congestion scenario at the default shape on
	// the lazy cross-traffic drive, plus the event-per-phantom-boundary
	// oracle for the congested scenarios — the before/after pair whose
	// event counts and wall-clock quantify the coalesced fast path.
	for _, scenario := range campaign.Scenarios() {
		rep.Campaigns = append(rep.Campaigns, benchCampaign(rowSpec(spec, scenario, "lazy", 0, 1), false))
		rep.Campaigns = append(rep.Campaigns, benchCampaign(rowSpec(spec, scenario, "lazy", 0, 1), true))
		if scenario != campaign.ScenarioUncongested {
			rep.Campaigns = append(rep.Campaigns, benchCampaign(rowSpec(spec, scenario, "events", 0, 1), false))
		}
	}
	// Scaling rows: worker pool × sub-vantage slicing on the uncongested
	// baseline. With slices > 1 the campaign splits into more shards
	// than vantages, so an 8-worker pool stays packed instead of idling
	// behind the 13-shard cap.
	for _, shape := range []struct{ workers, slices int }{
		{1, 1}, {4, 1}, {8, 1}, {8, 2}, {8, 4},
	} {
		rep.Campaigns = append(rep.Campaigns,
			benchCampaign(rowSpec(spec, campaign.ScenarioUncongested, "lazy", shape.workers, shape.slices), false))
	}

	// Control-plane rows: the same base campaign, cold through the HTTP
	// service vs direct through the engine, then resubmitted for the
	// cache-hit path.
	rep.Service = benchService(spec)

	// Journal-footprint rows: segmented-with-compaction vs the single
	// never-sealed segment, same job, byte for byte.
	rep.Journal = benchJournalFootprint(spec)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("create %s: %v", *out, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal("close %s: %v", *out, err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal("encode: %v", err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "benchreport: written to %s\n", *out)
	}
}

// rowSpec derives one benchmark row's campaign from the resolved base
// spec by overriding the scenario and execution shape.
func rowSpec(base campaign.Spec, scenario, xtraffic string, workers, slices int) campaign.Spec {
	s := base.Normalized()
	s.Scenario = scenario
	s.XTraffic = xtraffic
	s.Workers = workers
	s.SlicesPerVantage = slices
	return s
}

// benchCampaign runs one small-scale campaign and records wall clock,
// executed events (with the phantom-vs-foreground split), and
// allocations per campaign run. With instrumented set, a full
// flight-recorder Metrics set rides along, as it does under the
// control plane.
func benchCampaign(spec campaign.Spec, instrumented bool) campaignRow {
	cfg, err := spec.Config()
	if err != nil {
		fatal("campaign %s: %v", spec.Scenario, err)
	}
	if instrumented {
		cfg.Metrics = campaign.NewMetrics(telemetry.NewRegistry())
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := campaign.Run(cfg)
	if err != nil {
		fatal("campaign %s: %v", spec.Scenario, err)
	}
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	workers := spec.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	slices := spec.SlicesPerVantage
	if slices == 0 {
		slices = 1
	}
	row := campaignRow{
		Scenario:           spec.Scenario,
		Scale:              spec.Scale,
		Traces:             spec.Traces,
		Workers:            workers,
		Slices:             slices,
		XTraffic:           spec.XTraffic,
		Telemetry:          instrumented,
		Shards:             len(res.Shards),
		WallSeconds:        wall,
		Events:             res.Events,
		PhantomEvents:      res.PhantomEvents,
		ReplayedBoundaries: res.ReplayedBoundaries,
		TracesRun:          len(res.Dataset.Traces),
		AllocsPerOp:        int64(after.Mallocs - before.Mallocs),
	}
	if len(res.Congestion) > 0 {
		ce := analysis.ComputeCEMarkReport(res.Congestion)
		row.ObservedCERatio = ce.ObservedCERatio
		row.QueueMarkRatio = ce.QueueMarkRatio
	}
	return row
}

// benchWorldSetup measures the campaign's fixed costs: compiling the
// frozen blueprint (once per campaign) and instantiating a shard world
// from it (once per shard — the cost sub-vantage slicing multiplies,
// and the reason shared worlds exist).
func benchWorldSetup(seed int64) []hotPathRow {
	cfg := topology.SmallConfig()
	compile := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			if _, err := topology.Compile(cfg, seed); err != nil {
				b.Fatal(err)
			}
		}
	})
	bp, err := topology.Compile(cfg, seed)
	if err != nil {
		fatal("compile blueprint: %v", err)
	}
	instantiate := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			if _, err := bp.Instantiate(netsim.NewSim(seed)); err != nil {
				b.Fatal(err)
			}
		}
	})
	return []hotPathRow{
		{Name: "world/compile", NsPerOp: float64(compile.NsPerOp()), AllocsPerOp: compile.AllocsPerOp()},
		{Name: "world/instantiate", NsPerOp: float64(instantiate.NsPerOp()), AllocsPerOp: instantiate.AllocsPerOp()},
	}
}

// benchScheduler measures the simulator event loop on both shared
// kernels — the dense mixed near/far timer churn and the sparse
// timeline — for the default timing wheel and the heap fallback.
func benchScheduler() []hotPathRow {
	kernels := []struct {
		suffix string
		run    func(*netsim.Sim, int)
	}{
		// The same kernels the perf-gated BenchmarkSimSchedule and
		// BenchmarkSimScheduleSparse run, so these rows track the gate.
		{"", netsim.ScheduleBenchWorkload},
		{"-sparse", netsim.ScheduleBenchWorkloadSparse},
	}
	var rows []hotPathRow
	for _, k := range kernels {
		for _, sched := range []netsim.Scheduler{netsim.SchedWheel, netsim.SchedHeap} {
			// Each calibration run gets a fresh, warmed simulator so the
			// measured region matches the go-test benchmark's shape.
			sched, kernel := sched, k.run
			r := testing.Benchmark(func(b *testing.B) {
				b.StopTimer()
				s := netsim.NewSimSched(1, sched)
				kernel(s, 4096) // warm the slab and free list
				b.ReportAllocs()
				b.StartTimer()
				kernel(s, b.N)
			})
			rows = append(rows, hotPathRow{
				Name:         "sim/sched-" + sched.Name() + k.suffix,
				NsPerOp:      float64(r.NsPerOp()),
				EventsPerSec: 1e9 / float64(r.NsPerOp()),
				AllocsPerOp:  r.AllocsPerOp(),
			})
		}
	}
	return rows
}

// benchAQM measures the pooled enqueue→mark→dequeue hot path of one
// discipline under saturation, mirroring BenchmarkCEMarkThroughput.
func benchAQM(name string) hotPathRow {
	q, err := aqm.New(name, 50, rand.New(rand.NewSource(2015)))
	if err != nil {
		fatal("aqm %s: %v", name, err)
	}
	template, err := packet.BuildUDP(packet.AddrFrom4(10, 0, 0, 1), packet.AddrFrom4(10, 0, 0, 2),
		40000, 123, 64, ecn.ECT0, 1, make([]byte, 480))
	if err != nil {
		fatal("build packet: %v", err)
	}
	ring := make([]*packet.Buf, 64)
	for i := range ring {
		ring[i] = packet.NewBuf()
		ring[i].Write(template)
	}
	now := time.Duration(0)
	i := 0
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			bf := ring[i&63]
			if err := packet.SetWireECN(bf.Bytes(), ecn.ECT0); err != nil {
				b.Fatal(err)
			}
			q.Enqueue(now, aqm.NewPacket(bf.Retain()))
			if q.Len() > 30 {
				if p, ok := q.Dequeue(now); ok {
					p.TakeBuf().Release()
				}
			}
			now += 200 * time.Microsecond
			i++
		}
	})
	st := q.Stats()
	row := hotPathRow{
		Name:          "aqm/" + name,
		NsPerOp:       float64(r.NsPerOp()),
		PacketsPerSec: 1e9 / float64(r.NsPerOp()),
		AllocsPerOp:   r.AllocsPerOp(),
	}
	if st.WireECT > 0 {
		row.CEMarkFraction = float64(st.WireCEMarked) / float64(st.WireECT)
	}
	return row
}

// benchBuildUDP measures pooled IPv4+UDP serialization: build into a
// pooled buffer, then release it — the steady-state cost of every
// probe datagram the campaign sends.
func benchBuildUDP() hotPathRow {
	src := packet.AddrFrom4(10, 0, 0, 1)
	dst := packet.AddrFrom4(10, 0, 0, 2)
	payload := make([]byte, 48) // NTP-sized
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			bf, err := packet.BuildUDPBuf(src, dst, 123, 123, 64, ecn.ECT0, uint16(n), payload)
			if err != nil {
				b.Fatal(err)
			}
			bf.Release()
		}
	})
	return hotPathRow{
		Name:          "packet/build-udp-pooled",
		NsPerOp:       float64(r.NsPerOp()),
		PacketsPerSec: 1e9 / float64(r.NsPerOp()),
		AllocsPerOp:   r.AllocsPerOp(),
	}
}

// benchService measures the control plane wrapping the engine: a cold
// spec submission over HTTP (submit, poll to done, fetch the dataset)
// against a direct campaign.Run + dataset encode of the same spec, and
// the cache-hit resubmission. Cold-submit overhead beyond the direct
// run is the job manager plus transport; it should stay under 5%.
func benchService(spec campaign.Spec) []serviceRow {
	spec = spec.Normalized()

	// Direct baseline: exactly the work a cold job performs.
	cfg, err := spec.Config()
	if err != nil {
		fatal("service baseline: %v", err)
	}
	start := time.Now()
	res, err := campaign.Run(cfg)
	if err != nil {
		fatal("service baseline: %v", err)
	}
	var buf bytes.Buffer
	if err := dataset.Write(&buf, res.Dataset); err != nil {
		fatal("service baseline: %v", err)
	}
	direct := time.Since(start).Seconds()

	dir, err := os.MkdirTemp("", "benchreport-service-*")
	if err != nil {
		fatal("service: %v", err)
	}
	defer os.RemoveAll(dir)
	srv, err := server.New(server.Config{DataDir: dir, Jobs: 1})
	if err != nil {
		fatal("service: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body, err := spec.Canonical()
	if err != nil {
		fatal("service: %v", err)
	}
	cold := timeSubmission(ts.URL, body)
	hit := timeSubmission(ts.URL, body)

	// The distributed pair: the production shape (write-ahead journal
	// on) against the same fan-out with the journal disabled, isolating
	// the fsync-before-ack cost of crash tolerance.
	noJournal := benchDistributed(spec, direct, true)
	journaled := benchDistributed(spec, direct, false)
	journaled.JournalOverheadVsNoJournal =
		(journaled.WallSeconds - noJournal.WallSeconds) / noJournal.WallSeconds

	// The straggler pair: same fan-out with a worker that claims a
	// batch and dies. Speculation on, healthy workers race twins of
	// the dead shards; off, the job waits out the lease TTL.
	specOn := benchStraggler(spec, direct, true)
	specOff := benchStraggler(spec, direct, false)
	return []serviceRow{
		{Name: "service/direct-run", WallSeconds: direct},
		{Name: "service/cold-submit", WallSeconds: cold, OverheadVsDirect: (cold - direct) / direct},
		{Name: "service/cache-hit", WallSeconds: hit, Cached: true},
		journaled,
		noJournal,
		specOn,
		specOff,
	}
}

// benchStraggler farms the campaign out to four workers plus one
// straggler that claims a two-shard batch and dies without uploading
// or heartbeating. With speculation on (speculate-after 1.5) the
// healthy workers are handed speculative twins of the dead shards as
// soon as the duration history says they straggled; with it off the
// job stalls until the straggler's leases run out the full TTL. The
// wall-clock gap between the pair is speculation's straggler-recovery
// win.
func benchStraggler(spec campaign.Spec, direct float64, speculateOn bool) serviceRow {
	const workers = 4
	const leaseTTL = 3 * time.Second
	dspec := spec.Normalized()
	dspec.Execution = campaign.ExecutionDistributed

	dir, err := os.MkdirTemp("", "benchreport-straggler-*")
	if err != nil {
		fatal("straggler: %v", err)
	}
	defer os.RemoveAll(dir)
	speculateAfter := 1.5
	if !speculateOn {
		speculateAfter = -1
	}
	srv, err := server.New(server.Config{
		DataDir:        dir,
		Jobs:           1,
		LeaseTTL:       leaseTTL,
		SpeculateAfter: speculateAfter,
	})
	if err != nil {
		fatal("straggler: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx := context.Background()
	client := apiclient.New(ts.URL)
	start := time.Now()
	job, _, err := client.Submit(ctx, dspec)
	if err != nil {
		fatal("straggler submit: %v", err)
	}
	// The straggler: claim two shards, then nothing — no heartbeat, no
	// upload, no release.
	if _, err := client.Claim(ctx, job.ID, "bench-straggler", 2); err != nil {
		fatal("straggler claim: %v", err)
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// No ExitWhenIdle: the pool can look empty while the dead
			// shards wait on speculation or expiry; keep polling until
			// the job is done and the context is cut.
			_, _ = worker.Run(wctx, worker.Config{
				Client: client,
				ID:     fmt.Sprintf("bench-w%d", i),
				Batch:  2,
				Poll:   5 * time.Millisecond,
			})
		}(i)
	}
	if _, err := client.AwaitJob(ctx, job.ID, 5*time.Millisecond); err != nil {
		fatal("straggler await: %v", err)
	}
	wall := time.Since(start).Seconds()
	cancel()
	wg.Wait()
	name := fmt.Sprintf("service/distributed-w%d-straggler-speculation", workers)
	if !speculateOn {
		name = fmt.Sprintf("service/distributed-w%d-straggler-nospeculation", workers)
	}
	return serviceRow{
		Name:             name,
		WallSeconds:      wall,
		OverheadVsDirect: (wall - direct) / direct,
	}
}

// benchJournalFootprint journals the same almost-complete ≥32-shard
// distributed job twice — under the segmented layout with compaction
// (small segment cap, the production mechanism) and as one never-
// sealed segment (the pre-compaction layout) — and reports the on-disk
// bytes of each. The job is left one shard short of done so the
// journal is still alive to measure.
func benchJournalFootprint(spec campaign.Spec) []journalRow {
	dspec := spec.Normalized()
	dspec.Execution = campaign.ExecutionDistributed
	if dspec.SlicesPerVantage < 3 {
		dspec.SlicesPerVantage = 3 // 13 vantages × 3 slices ≥ the 32-shard floor
	}
	if dspec.Traces < dspec.SlicesPerVantage {
		dspec.Traces = dspec.SlicesPerVantage
	}

	run := func(name string, segBytes int64) journalRow {
		dir, err := os.MkdirTemp("", "benchreport-journal-*")
		if err != nil {
			fatal("journal: %v", err)
		}
		defer os.RemoveAll(dir)
		srv, err := server.New(server.Config{
			DataDir:             dir,
			Jobs:                1,
			JournalSegmentBytes: segBytes,
		})
		if err != nil {
			fatal("journal: %v", err)
		}
		defer srv.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()

		ctx := context.Background()
		client := apiclient.New(ts.URL)
		job, _, err := client.Submit(ctx, dspec)
		if err != nil {
			fatal("journal submit: %v", err)
		}
		claim, err := client.Claim(ctx, job.ID, "bench-journal", job.ShardsTotal)
		if err != nil {
			fatal("journal claim: %v", err)
		}
		cfg, err := claim.Spec.Config()
		if err != nil {
			fatal("journal spec: %v", err)
		}
		bp, err := cfg.CompileBlueprint()
		if err != nil {
			fatal("journal blueprint: %v", err)
		}
		for _, s := range claim.Shards[:len(claim.Shards)-1] {
			w, err := campaign.ExecuteShard(cfg, bp, s.Shard, s.Slice)
			if err != nil {
				fatal("journal shard %d: %v", s.Index, err)
			}
			w.SpecHash = claim.SpecHash
			if _, err := client.PushShardResult(ctx, job.ID, s.Index, "bench-journal", s.Lease, w); err != nil {
				fatal("journal upload %d: %v", s.Index, err)
			}
		}
		// Compaction is asynchronous: settle on a stable footprint.
		size := journalBytes(dir, job.ID)
		for settle := 0; settle < 40; settle++ {
			time.Sleep(50 * time.Millisecond)
			if next := journalBytes(dir, job.ID); next != size {
				size, settle = next, -1
			}
		}
		return journalRow{Name: name, Shards: job.ShardsTotal, Bytes: size}
	}

	single := run("journal/single-file", 1<<40)
	segmented := run("journal/segmented", 64<<10)
	if single.Bytes > 0 {
		segmented.RatioVsSingleFile = float64(segmented.Bytes) / float64(single.Bytes)
	}
	return []journalRow{single, segmented}
}

// journalBytes sums one job's journal segment sizes under the store's
// journal directory.
func journalBytes(dataDir, jobID string) int64 {
	entries, err := os.ReadDir(filepath.Join(dataDir, "journal"))
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), jobID+".") {
			continue
		}
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}

// benchDistributed farms the same campaign out over the worker
// protocol: a fresh coordinator (fresh store, so the cold-submit run
// above cannot be a cache hit — the cache key strips execution shape)
// with four in-process workers claiming, executing and uploading
// shards over HTTP. Overhead vs the direct run is the full cost of
// distribution at this scale: claim/heartbeat/upload round-trips plus
// wire serialization and the coordinator's canonical-order merge.
func benchDistributed(spec campaign.Spec, direct float64, disableJournal bool) serviceRow {
	const workers = 4
	dspec := spec.Normalized()
	dspec.Execution = campaign.ExecutionDistributed

	dir, err := os.MkdirTemp("", "benchreport-dist-*")
	if err != nil {
		fatal("distributed: %v", err)
	}
	defer os.RemoveAll(dir)
	srv, err := server.New(server.Config{DataDir: dir, Jobs: 1, DisableJournal: disableJournal})
	if err != nil {
		fatal("distributed: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx := context.Background()
	client := apiclient.New(ts.URL)
	start := time.Now()
	job, _, err := client.Submit(ctx, dspec)
	if err != nil {
		fatal("distributed submit: %v", err)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = worker.Run(ctx, worker.Config{
				Client:       client,
				ID:           fmt.Sprintf("bench-w%d", i),
				Batch:        2,
				Poll:         time.Millisecond,
				ExitWhenIdle: true,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			fatal("distributed worker %d: %v", i, err)
		}
	}
	if _, err := client.AwaitJob(ctx, job.ID, time.Millisecond); err != nil {
		fatal("distributed: %v", err)
	}
	if _, err := client.JobDataset(ctx, job.ID); err != nil {
		fatal("distributed fetch: %v", err)
	}
	wall := time.Since(start).Seconds()
	name := fmt.Sprintf("service/distributed-w%d", workers)
	if disableJournal {
		name += "-nojournal"
	}
	return serviceRow{
		Name:             name,
		WallSeconds:      wall,
		OverheadVsDirect: (wall - direct) / direct,
	}
}

// timeSubmission runs one client interaction end to end: POST the spec,
// poll the job until done, download the dataset. Returns wall seconds.
func timeSubmission(baseURL string, spec []byte) float64 {
	start := time.Now()
	resp, err := http.Post(baseURL+"/v1/campaigns", "application/json", bytes.NewReader(spec))
	if err != nil {
		fatal("service submit: %v", err)
	}
	var view struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		fatal("service submit: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode >= 400 {
		fatal("service submit: status %d: %s", resp.StatusCode, view.Error)
	}
	for view.State != "done" {
		if view.State == "failed" {
			fatal("service job %s failed: %s", view.ID, view.Error)
		}
		time.Sleep(time.Millisecond)
		resp, err := http.Get(baseURL + "/v1/jobs/" + view.ID)
		if err != nil {
			fatal("service poll: %v", err)
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			fatal("service poll: %v", err)
		}
	}
	resp, err = http.Get(baseURL + "/v1/jobs/" + view.ID + "/dataset")
	if err != nil {
		fatal("service fetch: %v", err)
	}
	var sink bytes.Buffer
	if _, err := sink.ReadFrom(resp.Body); err != nil {
		fatal("service fetch: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal("service fetch: status %d", resp.StatusCode)
	}
	return time.Since(start).Seconds()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchreport: "+format+"\n", args...)
	os.Exit(1)
}
