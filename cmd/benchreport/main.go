// Command benchreport measures the repository's performance trajectory
// and writes it as JSON. CI runs it via `make bench` and uploads the
// output (BENCH_2.json) as a build artifact, so regressions in campaign
// wall-clock or AQM hot-path throughput are visible across PRs.
//
// Two metric families:
//
//   - campaign wall-clock: the small-scale sharded campaign, run under
//     the uncongested baseline and the congested-edge scenario (the
//     latter also records the CE-mark ratios as a calibration canary);
//   - CE-mark throughput: packets/sec through each saturated AQM
//     discipline — the per-packet cost every congested bottleneck pays.
//
// Usage:
//
//	benchreport [-o BENCH_2.json] [-seed N] [-traces N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/analysis"
	"repro/internal/aqm"
	"repro/internal/campaign"
	"repro/internal/ecn"
	"repro/internal/packet"
)

type campaignRow struct {
	Scenario    string  `json:"scenario"`
	Scale       string  `json:"scale"`
	Traces      int     `json:"traces_per_vantage"`
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`
	Events      uint64  `json:"events"`
	TracesRun   int     `json:"traces_run"`
	// Congested scenarios only: the CE-mark report aggregates.
	ObservedCERatio float64 `json:"ce_observed_ratio,omitempty"`
	QueueMarkRatio  float64 `json:"ce_queue_ratio,omitempty"`
}

type aqmRow struct {
	Discipline     string  `json:"discipline"`
	PacketsPerSec  float64 `json:"packets_per_sec"`
	CEMarkFraction float64 `json:"ce_mark_fraction"`
}

type report struct {
	Schema     string        `json:"schema"`
	GoMaxProcs int           `json:"go_max_procs"`
	Campaigns  []campaignRow `json:"campaigns"`
	AQM        []aqmRow      `json:"aqm"`
}

func main() {
	var (
		out    = flag.String("o", "BENCH_2.json", "output path (- for stdout)")
		seed   = flag.Int64("seed", 2015, "campaign seed")
		traces = flag.Int("traces", 2, "traces per vantage")
	)
	flag.Parse()

	rep := report{Schema: "repro-bench/2", GoMaxProcs: runtime.GOMAXPROCS(0)}

	for _, scenario := range []string{campaign.ScenarioUncongested, campaign.ScenarioCongestedEdge} {
		cfg := campaign.Config{Scale: "small", Scenario: scenario, Traces: *traces, Seed: *seed}
		start := time.Now()
		res, err := campaign.Run(cfg)
		if err != nil {
			fatal("campaign %s: %v", scenario, err)
		}
		row := campaignRow{
			Scenario:    scenario,
			Scale:       "small",
			Traces:      *traces,
			Workers:     runtime.GOMAXPROCS(0),
			WallSeconds: time.Since(start).Seconds(),
			Events:      res.Events,
			TracesRun:   len(res.Dataset.Traces),
		}
		if len(res.Congestion) > 0 {
			ce := analysis.ComputeCEMarkReport(res.Congestion)
			row.ObservedCERatio = ce.ObservedCERatio
			row.QueueMarkRatio = ce.QueueMarkRatio
		}
		rep.Campaigns = append(rep.Campaigns, row)
	}

	for _, name := range []string{"droptail", "red", "codel"} {
		rep.AQM = append(rep.AQM, benchAQM(name))
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("create %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal("encode: %v", err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "benchreport: written to %s\n", *out)
	}
}

// benchAQM pushes a saturating stream of real ECT packets through the
// discipline and reports the per-packet throughput of the
// enqueue→mark→dequeue hot path.
func benchAQM(name string) aqmRow {
	const n = 300_000
	q, err := aqm.New(name, 50, rand.New(rand.NewSource(2015)))
	if err != nil {
		fatal("aqm %s: %v", name, err)
	}
	template, err := packet.BuildUDP(packet.AddrFrom4(10, 0, 0, 1), packet.AddrFrom4(10, 0, 0, 2),
		40000, 123, 64, ecn.ECT0, 1, make([]byte, 480))
	if err != nil {
		fatal("build packet: %v", err)
	}
	wire := make([]byte, len(template))
	now := time.Duration(0)
	start := time.Now()
	for i := 0; i < n; i++ {
		copy(wire, template) // restore ECT(0) after any CE mark
		q.Enqueue(now, &aqm.Packet{Wire: wire, Size: len(wire)})
		if q.Len() > 30 {
			q.Dequeue(now)
		}
		now += 200 * time.Microsecond
	}
	elapsed := time.Since(start).Seconds()
	st := q.Stats()
	row := aqmRow{Discipline: name, PacketsPerSec: n / elapsed}
	if st.WireECT > 0 {
		row.CEMarkFraction = float64(st.WireCEMarked) / float64(st.WireECT)
	}
	return row
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchreport: "+format+"\n", args...)
	os.Exit(1)
}
