// Command benchreport measures the repository's performance trajectory
// and writes it as JSON. CI runs it via `make bench` and uploads the
// output (BENCH_5.json) as a build artifact, so regressions in campaign
// wall-clock or packet hot-path throughput are visible across PRs.
//
// Four metric families:
//
//   - campaign wall-clock: the small-scale sharded campaign under every
//     scenario — uncongested, congested-edge and congested-transit (the
//     congested rows also record the CE-mark ratios as a calibration
//     canary). Congested scenarios run under both cross-traffic drives:
//     the lazy catch-up replay (the default) and the legacy
//     event-per-phantom-boundary oracle, with each row reporting the
//     phantom-boundary split (events vs replayed) so the saved
//     scheduler work is visible. Worker × slice scaling rows follow;
//   - world setup: compiling the frozen topology blueprint (once per
//     campaign) vs instantiating a shard world from it (once per
//     shard) — the fixed costs sharding multiplies;
//   - scheduler throughput: the simulator event loop on the dense mixed
//     near/far timer kernel and on the sparse-timeline kernel, timing
//     wheel vs heap fallback, with allocs/op (must be zero);
//   - CE-mark throughput and packet build: the pooled per-packet costs,
//     also required allocation-free.
//
// Usage:
//
//	benchreport [-o BENCH_5.json] [-seed N] [-traces N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/aqm"
	"repro/internal/campaign"
	"repro/internal/ecn"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/topology"
)

type campaignRow struct {
	Scenario    string  `json:"scenario"`
	Scale       string  `json:"scale"`
	Traces      int     `json:"traces_per_vantage"`
	Workers     int     `json:"workers"`
	Slices      int     `json:"slices_per_vantage"`
	XTraffic    string  `json:"xtraffic"`
	Shards      int     `json:"shards"`
	WallSeconds float64 `json:"wall_seconds"`
	Events      uint64  `json:"events"`
	// PhantomEvents counts phantom serialization boundaries that ran as
	// scheduler events; ReplayedBoundaries counts the ones the lazy
	// drive replayed arithmetically. Their sum is drive-invariant.
	PhantomEvents      uint64 `json:"events_phantom"`
	ReplayedBoundaries uint64 `json:"boundaries_replayed"`
	TracesRun          int    `json:"traces_run"`
	AllocsPerOp        int64  `json:"allocs_per_op"`
	// Congested scenarios only: the CE-mark report aggregates.
	ObservedCERatio float64 `json:"ce_observed_ratio,omitempty"`
	QueueMarkRatio  float64 `json:"ce_queue_ratio,omitempty"`
}

type hotPathRow struct {
	Name          string  `json:"name"`
	NsPerOp       float64 `json:"ns_per_op"`
	PacketsPerSec float64 `json:"packets_per_sec,omitempty"`
	EventsPerSec  float64 `json:"events_per_sec,omitempty"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	// AQM rows only.
	CEMarkFraction float64 `json:"ce_mark_fraction,omitempty"`
}

type report struct {
	Schema     string        `json:"schema"`
	GoMaxProcs int           `json:"go_max_procs"`
	Campaigns  []campaignRow `json:"campaigns"`
	HotPaths   []hotPathRow  `json:"hot_paths"`
}

func main() {
	var (
		out    = flag.String("o", "BENCH_5.json", "output path (- for stdout)")
		seed   = flag.Int64("seed", 2015, "campaign seed")
		traces = flag.Int("traces", 2, "traces per vantage")
	)
	flag.Parse()

	rep := report{Schema: "repro-bench/5", GoMaxProcs: runtime.GOMAXPROCS(0)}

	// Hot paths run first, in a clean heap: the campaigns below leave
	// hundreds of megabytes of dataset behind, and measuring
	// cache-sensitive microbenchmarks in that environment understates
	// them.
	rep.HotPaths = append(rep.HotPaths, benchScheduler()...)
	rep.HotPaths = append(rep.HotPaths, benchWorldSetup(*seed)...)
	for _, name := range []string{"droptail", "red", "codel"} {
		rep.HotPaths = append(rep.HotPaths, benchAQM(name))
	}
	rep.HotPaths = append(rep.HotPaths, benchBuildUDP())

	// Scenario rows: every congestion scenario at the default shape on
	// the lazy cross-traffic drive, plus the event-per-phantom-boundary
	// oracle for the congested scenarios — the before/after pair whose
	// event counts and wall-clock quantify the coalesced fast path.
	for _, scenario := range campaign.Scenarios() {
		rep.Campaigns = append(rep.Campaigns, benchCampaign(scenario, "lazy", *seed, *traces, 0, 0))
		if scenario != campaign.ScenarioUncongested {
			rep.Campaigns = append(rep.Campaigns, benchCampaign(scenario, "events", *seed, *traces, 0, 0))
		}
	}
	// Scaling rows: worker pool × sub-vantage slicing on the uncongested
	// baseline. With slices > 1 the campaign splits into more shards
	// than vantages, so an 8-worker pool stays packed instead of idling
	// behind the 13-shard cap.
	for _, shape := range []struct{ workers, slices int }{
		{1, 1}, {4, 1}, {8, 1}, {8, 2}, {8, 4},
	} {
		rep.Campaigns = append(rep.Campaigns,
			benchCampaign(campaign.ScenarioUncongested, "lazy", *seed, *traces, shape.workers, shape.slices))
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("create %s: %v", *out, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal("close %s: %v", *out, err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal("encode: %v", err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "benchreport: written to %s\n", *out)
	}
}

// benchCampaign runs one small-scale campaign and records wall clock,
// executed events (with the phantom-vs-foreground split), and
// allocations per campaign run.
func benchCampaign(scenario, xtraffic string, seed int64, traces, workers, slices int) campaignRow {
	cfg := campaign.Config{
		Scale:            "small",
		Scenario:         scenario,
		Traces:           traces,
		Seed:             seed,
		Workers:          workers,
		SlicesPerVantage: slices,
		XTraffic:         xtraffic,
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := campaign.Run(cfg)
	if err != nil {
		fatal("campaign %s: %v", scenario, err)
	}
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if slices == 0 {
		slices = 1
	}
	row := campaignRow{
		Scenario:           scenario,
		Scale:              "small",
		Traces:             traces,
		Workers:            workers,
		Slices:             slices,
		XTraffic:           xtraffic,
		Shards:             len(res.Shards),
		WallSeconds:        wall,
		Events:             res.Events,
		PhantomEvents:      res.PhantomEvents,
		ReplayedBoundaries: res.ReplayedBoundaries,
		TracesRun:          len(res.Dataset.Traces),
		AllocsPerOp:        int64(after.Mallocs - before.Mallocs),
	}
	if len(res.Congestion) > 0 {
		ce := analysis.ComputeCEMarkReport(res.Congestion)
		row.ObservedCERatio = ce.ObservedCERatio
		row.QueueMarkRatio = ce.QueueMarkRatio
	}
	return row
}

// benchWorldSetup measures the campaign's fixed costs: compiling the
// frozen blueprint (once per campaign) and instantiating a shard world
// from it (once per shard — the cost sub-vantage slicing multiplies,
// and the reason shared worlds exist).
func benchWorldSetup(seed int64) []hotPathRow {
	cfg := topology.SmallConfig()
	compile := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			if _, err := topology.Compile(cfg, seed); err != nil {
				b.Fatal(err)
			}
		}
	})
	bp, err := topology.Compile(cfg, seed)
	if err != nil {
		fatal("compile blueprint: %v", err)
	}
	instantiate := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			if _, err := bp.Instantiate(netsim.NewSim(seed)); err != nil {
				b.Fatal(err)
			}
		}
	})
	return []hotPathRow{
		{Name: "world/compile", NsPerOp: float64(compile.NsPerOp()), AllocsPerOp: compile.AllocsPerOp()},
		{Name: "world/instantiate", NsPerOp: float64(instantiate.NsPerOp()), AllocsPerOp: instantiate.AllocsPerOp()},
	}
}

// benchScheduler measures the simulator event loop on both shared
// kernels — the dense mixed near/far timer churn and the sparse
// timeline — for the default timing wheel and the heap fallback.
func benchScheduler() []hotPathRow {
	kernels := []struct {
		suffix string
		run    func(*netsim.Sim, int)
	}{
		// The same kernels the perf-gated BenchmarkSimSchedule and
		// BenchmarkSimScheduleSparse run, so these rows track the gate.
		{"", netsim.ScheduleBenchWorkload},
		{"-sparse", netsim.ScheduleBenchWorkloadSparse},
	}
	var rows []hotPathRow
	for _, k := range kernels {
		for _, sched := range []netsim.Scheduler{netsim.SchedWheel, netsim.SchedHeap} {
			// Each calibration run gets a fresh, warmed simulator so the
			// measured region matches the go-test benchmark's shape.
			sched, kernel := sched, k.run
			r := testing.Benchmark(func(b *testing.B) {
				b.StopTimer()
				s := netsim.NewSimSched(1, sched)
				kernel(s, 4096) // warm the slab and free list
				b.ReportAllocs()
				b.StartTimer()
				kernel(s, b.N)
			})
			rows = append(rows, hotPathRow{
				Name:         "sim/sched-" + sched.Name() + k.suffix,
				NsPerOp:      float64(r.NsPerOp()),
				EventsPerSec: 1e9 / float64(r.NsPerOp()),
				AllocsPerOp:  r.AllocsPerOp(),
			})
		}
	}
	return rows
}

// benchAQM measures the pooled enqueue→mark→dequeue hot path of one
// discipline under saturation, mirroring BenchmarkCEMarkThroughput.
func benchAQM(name string) hotPathRow {
	q, err := aqm.New(name, 50, rand.New(rand.NewSource(2015)))
	if err != nil {
		fatal("aqm %s: %v", name, err)
	}
	template, err := packet.BuildUDP(packet.AddrFrom4(10, 0, 0, 1), packet.AddrFrom4(10, 0, 0, 2),
		40000, 123, 64, ecn.ECT0, 1, make([]byte, 480))
	if err != nil {
		fatal("build packet: %v", err)
	}
	ring := make([]*packet.Buf, 64)
	for i := range ring {
		ring[i] = packet.NewBuf()
		ring[i].Write(template)
	}
	now := time.Duration(0)
	i := 0
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			bf := ring[i&63]
			if err := packet.SetWireECN(bf.Bytes(), ecn.ECT0); err != nil {
				b.Fatal(err)
			}
			q.Enqueue(now, aqm.NewPacket(bf.Retain()))
			if q.Len() > 30 {
				if p, ok := q.Dequeue(now); ok {
					p.TakeBuf().Release()
				}
			}
			now += 200 * time.Microsecond
			i++
		}
	})
	st := q.Stats()
	row := hotPathRow{
		Name:          "aqm/" + name,
		NsPerOp:       float64(r.NsPerOp()),
		PacketsPerSec: 1e9 / float64(r.NsPerOp()),
		AllocsPerOp:   r.AllocsPerOp(),
	}
	if st.WireECT > 0 {
		row.CEMarkFraction = float64(st.WireCEMarked) / float64(st.WireECT)
	}
	return row
}

// benchBuildUDP measures pooled IPv4+UDP serialization: build into a
// pooled buffer, then release it — the steady-state cost of every
// probe datagram the campaign sends.
func benchBuildUDP() hotPathRow {
	src := packet.AddrFrom4(10, 0, 0, 1)
	dst := packet.AddrFrom4(10, 0, 0, 2)
	payload := make([]byte, 48) // NTP-sized
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			bf, err := packet.BuildUDPBuf(src, dst, 123, 123, 64, ecn.ECT0, uint16(n), payload)
			if err != nil {
				b.Fatal(err)
			}
			bf.Release()
		}
	})
	return hotPathRow{
		Name:          "packet/build-udp-pooled",
		NsPerOp:       float64(r.NsPerOp()),
		PacketsPerSec: 1e9 / float64(r.NsPerOp()),
		AllocsPerOp:   r.AllocsPerOp(),
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchreport: "+format+"\n", args...)
	os.Exit(1)
}
