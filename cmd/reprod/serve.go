package main

// reprod serve: the long-lived coordinator. Clients POST a campaign
// spec to /v1/campaigns, poll the async job it becomes, and fetch the
// merged dataset plus a run report. Completed runs are cached on disk
// content-addressed by the spec's canonical form, so resubmitting a
// spec — from any client, with any execution shape — is served
// instantly without re-simulating. Specs with "execution":
// "distributed" are not run in-process: their shards sit pending until
// reprod worker processes lease and execute them.
//
// The daemon carries its own flight recorder: GET /v1/metrics exposes
// allocation-free engine, HTTP, and lease metrics in the Prometheus
// text format (/v1/metrics.json for the same snapshot as JSON), GET
// /v1/jobs/{id}/events replays a job's lifecycle from the in-memory
// journal, and -pprof mounts net/http/pprof under /debug/pprof/.
//
// -jobs bounds concurrently *running campaigns*; each campaign still
// parallelizes internally per its spec's workers knob, so the default
// of 1 already uses every core. SIGINT/SIGTERM drain gracefully:
// in-flight campaigns finish and are cached before exit.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func runServe(args []string) {
	fs := flag.NewFlagSet("reprod serve", flag.ExitOnError)
	var (
		addr      = fs.String("addr", ":8070", "HTTP listen address")
		data      = fs.String("data", "reprod-data", "result-store data directory")
		jobs      = fs.Int("jobs", 1, "concurrently running campaigns (each parallelizes internally)")
		leaseTTL  = fs.Duration("lease-ttl", 30*time.Second, "worker shard-lease TTL")
		logFormat = fs.String("log-format", "text", "log output format: text or json")
		pprofOn   = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		journal   = fs.Bool("journal", true, "write-ahead journal for distributed jobs (crash recovery)")
		drainFor  = fs.Duration("drain", 30*time.Second, "graceful-shutdown window for in-flight work")
		speculate = fs.Float64("speculate-after", 3.0, "re-expose a leased shard after this multiple of the job's typical shard duration (0 disables straggler speculation)")
		quarAfter = fs.Int("quarantine-threshold", 3, "wasteful-event strikes before a worker's claims are refused (0 disables quarantine)")
		segBytes  = fs.Int64("journal-segment-bytes", 1<<20, "journal active-segment cap before a seal-and-compact cycle")
		maxOpen   = fs.Int("max-open-shards", 4096, "shed new submissions once queued jobs plus running distributed shards reach this watermark (0 disables shedding)")
	)
	fs.Parse(args)

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "reprod serve: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	// Flag zero means "off"; the Config encodes off as negative (its
	// zero keeps the server default).
	disableZero := func(v float64) float64 {
		if v == 0 {
			return -1
		}
		return v
	}
	srv, err := server.New(server.Config{
		DataDir:             *data,
		Jobs:                *jobs,
		LeaseTTL:            *leaseTTL,
		Logger:              logger,
		EnablePprof:         *pprofOn,
		DisableJournal:      !*journal,
		SpeculateAfter:      disableZero(*speculate),
		QuarantineThreshold: int(disableZero(float64(*quarAfter))),
		JournalSegmentBytes: *segBytes,
		MaxOpenShards:       int(disableZero(float64(*maxOpen))),
	})
	if err != nil {
		logger.Error("startup", "error", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		// The drain sequence: refuse new submissions and claims (503 +
		// Retry-After — workers back off instead of erroring) while
		// in-flight shard uploads land over still-open connections, then
		// stop the listener, then Close — which finishes local runs and
		// journals the clean-shutdown marker.
		logger.Info("shutting down: draining in-flight campaigns", "window", *drainFor)
		srv.BeginDrain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown", "error", err)
		}
	}()

	logger.Info("serving", "addr", *addr, "data", *data, "jobs", *jobs,
		"lease_ttl", *leaseTTL, "pprof", *pprofOn, "journal", *journal)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listen", "error", err)
		os.Exit(1)
	}
	// The HTTP listener is closed; finish the queued/running campaigns
	// so their results are cached for the next start.
	srv.Close()
	logger.Info("drained")
}
