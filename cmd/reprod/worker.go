package main

// reprod worker: a stateless shard executor. It discovers running
// distributed jobs on the coordinator (or works an explicit -job
// list), leases batches of shards, compiles the same frozen blueprint
// the coordinator pinned, executes, and uploads — the engine's
// determinism is what makes any worker's bytes interchangeable with
// any other's.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/apiclient"
	"repro/internal/worker"
)

func runWorker(args []string) {
	fs := flag.NewFlagSet("reprod worker", flag.ExitOnError)
	var (
		coordinator = fs.String("coordinator", "http://127.0.0.1:8070", "coordinator base URL")
		id          = fs.String("id", "", "worker ID for leases and metrics (default host.pid)")
		batch       = fs.Int("batch", 2, "shards leased per claim")
		poll        = fs.Duration("poll", 500*time.Millisecond, "idle re-scan interval")
		exitIdle    = fs.Bool("exit-when-idle", false, "exit once no distributed work remains")
		exitAfter   = fs.Int("exit-after-results", 0, "abandon the run after N accepted uploads (crash-test hook; 0 = never)")
		wedge       = fs.Bool("wedge", false, "claim batches and heartbeat forever without executing (straggler chaos hook)")
		logFormat   = fs.String("log-format", "text", "log output format: text or json")
		retryMax    = fs.Int("retry-max", 8, "retries per transient coordinator failure")
		retryBase   = fs.Duration("retry-base", 100*time.Millisecond, "initial retry backoff (doubles, capped)")
		retryCap    = fs.Duration("retry-cap", 5*time.Second, "retry backoff ceiling")
		reqTimeout  = fs.Duration("request-timeout", 30*time.Second, "per-request coordinator timeout (0 = none)")
		noGzip      = fs.Bool("no-gzip", false, "upload shard results uncompressed")
	)
	var jobIDs stringList
	fs.Var(&jobIDs, "job", "work only this job ID (repeatable; default discovers running jobs)")
	fs.Parse(args)

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "reprod worker: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*id = fmt.Sprintf("%s.%d", host, os.Getpid())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logger.Info("worker starting", "coordinator", *coordinator, "id", *id, "batch", *batch)
	stats, err := worker.Run(ctx, worker.Config{
		Client:           apiclient.New(*coordinator).WithUploadCompression(!*noGzip),
		ID:               *id,
		Batch:            *batch,
		Poll:             *poll,
		Jobs:             jobIDs,
		ExitWhenIdle:     *exitIdle,
		ExitAfterResults: *exitAfter,
		WedgeAfterClaim:  *wedge,
		Logger:           logger,
		MaxRetries:       *retryMax,
		RetryBase:        *retryBase,
		RetryCap:         *retryCap,
		RequestTimeout:   *reqTimeout,
	})
	out, _ := json.Marshal(stats)
	fmt.Println(string(out))
	if err != nil && ctx.Err() == nil {
		logger.Error("worker", "error", err)
		os.Exit(1)
	}
}

// stringList is a repeatable string flag.
type stringList []string

func (l *stringList) String() string { return fmt.Sprint([]string(*l)) }
func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}
