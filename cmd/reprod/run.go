package main

// reprod run: submit a campaign spec to a coordinator, await the job,
// and write the merged dataset. The run report (with the dataset's
// SHA-256) goes to stdout as JSON, so scripts can pin hashes without
// a second request.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/apiclient"
)

func runRun(args []string) {
	fs := flag.NewFlagSet("reprod run", flag.ExitOnError)
	var (
		coordinator = fs.String("coordinator", "http://127.0.0.1:8070", "coordinator base URL")
		specArg     = fs.String("spec", "", "campaign spec: inline JSON, @file, or - for stdin")
		out         = fs.String("out", "", "dataset output path (default: no dataset fetch)")
		poll        = fs.Duration("poll", 200*time.Millisecond, "job poll interval")
	)
	fs.Parse(args)

	fail := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "reprod run: "+format+"\n", a...)
		os.Exit(1)
	}

	spec, err := readSpec(*specArg)
	if err != nil {
		fail("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := apiclient.New(*coordinator)

	job, created, err := client.SubmitRaw(ctx, spec)
	if err != nil {
		fail("submit: %v", err)
	}
	fmt.Fprintf(os.Stderr, "reprod run: job %s (created=%v state=%s)\n", job.ID, created, job.State)

	if _, err := client.AwaitJob(ctx, job.ID, *poll); err != nil {
		fail("%v", err)
	}

	if *out != "" {
		data, err := client.JobDataset(ctx, job.ID)
		if err != nil {
			fail("dataset: %v", err)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fail("write %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr, "reprod run: wrote %d bytes to %s\n", len(data), *out)
	}

	report, err := client.JobReport(ctx, job.ID)
	if err != nil {
		fail("report: %v", err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fail("%v", err)
	}
}

// readSpec resolves the -spec argument: inline JSON (starts with "{"),
// @path, or "-" for stdin.
func readSpec(arg string) ([]byte, error) {
	switch {
	case arg == "":
		return nil, fmt.Errorf("-spec is required (inline JSON, @file, or -)")
	case arg == "-":
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, fmt.Errorf("read stdin: %w", err)
		}
		return b, nil
	case strings.HasPrefix(arg, "@"):
		b, err := os.ReadFile(arg[1:])
		if err != nil {
			return nil, err
		}
		return b, nil
	default:
		return []byte(arg), nil
	}
}
