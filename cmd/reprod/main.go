// Command reprod is the distributed campaign toolchain in one binary,
// split into four subcommands:
//
//	reprod serve   — the coordinator: the campaign-as-a-service HTTP
//	                 control plane with the content-addressed run cache
//	                 and the lease/heartbeat worker protocol.
//	reprod worker  — a shard executor: discovers running distributed
//	                 jobs on a coordinator, leases (vantage, slice)
//	                 shards, executes them locally against the same
//	                 frozen blueprint any other machine would compile,
//	                 and streams results back under heartbeats.
//	reprod run     — a client: submit a spec, await the job, and write
//	                 the merged dataset to a file, whether the
//	                 coordinator ran it in-process or farmed it out.
//	reprod chaosproxy — a deterministic fault-injecting proxy for the
//	                 worker↔coordinator path: drops, delays, and
//	                 duplicates requests on fixed counters, for smoke
//	                 tests that must reproduce exactly.
//
// Quickstart for a two-machine campaign (see README.md):
//
//	reprod serve -addr :8070 -data ./reprod-data &
//	reprod worker -coordinator http://localhost:8070 -id w1 &
//	reprod run -coordinator http://localhost:8070 \
//	    -spec '{"spec":1,"scale":"small","traces":2,"seed":2015,"execution":"distributed"}' \
//	    -out dataset.jsonl
//
// Invoking reprod with flags but no subcommand keeps the historical
// daemon behavior: it serves.
package main

import (
	"fmt"
	"os"
)

func main() {
	args := os.Args[1:]
	cmd := "serve"
	if len(args) > 0 {
		switch args[0] {
		case "serve", "worker", "run", "chaosproxy":
			cmd, args = args[0], args[1:]
		case "help", "-h", "-help", "--help":
			usage(os.Stdout)
			return
		default:
			// Bare flags: the pre-subcommand invocation, reprod -addr ...
			if len(args[0]) == 0 || args[0][0] != '-' {
				fmt.Fprintf(os.Stderr, "reprod: unknown command %q\n\n", args[0])
				usage(os.Stderr)
				os.Exit(2)
			}
		}
	}
	switch cmd {
	case "serve":
		runServe(args)
	case "worker":
		runWorker(args)
	case "run":
		runRun(args)
	case "chaosproxy":
		runChaosProxy(args)
	}
}

func usage(w *os.File) {
	fmt.Fprint(w, `usage: reprod <command> [flags]

commands:
  serve       start the coordinator (default when only flags are given)
  worker      execute leased shards against a coordinator
  run         submit a spec, await the job, fetch the dataset
  chaosproxy  fault-injecting proxy for the worker<->coordinator path

run "reprod <command> -h" for per-command flags.
`)
}
