// Command reprod is the campaign-as-a-service daemon: a long-lived
// HTTP control plane over the sharded campaign engine. Clients POST a
// serializable campaign spec (campaign.Spec) to /v1/campaigns, poll the
// async job it becomes, and fetch the merged dataset plus a run report
// (determinism hash, event counters, CE-mark estimates). Completed runs
// are cached on disk content-addressed by the spec's canonical form, so
// resubmitting a spec — from any client, with any execution shape — is
// served instantly without re-simulating.
//
// The daemon carries its own flight recorder: GET /v1/metrics exposes
// allocation-free engine and HTTP metrics in the Prometheus text
// format (/v1/metrics.json for the same snapshot as JSON), GET
// /v1/jobs/{id}/events replays a job's lifecycle from the in-memory
// journal, and -pprof mounts net/http/pprof under /debug/pprof/.
//
// Quickstart (see README.md for the full curl walk-through):
//
//	reprod -addr :8070 -data ./reprod-data &
//	curl -s localhost:8070/v1/campaigns -d '{"spec":1,"scale":"small","traces":2,"seed":2015}'
//	curl -s localhost:8070/v1/jobs/j-000001
//	curl -s localhost:8070/v1/jobs/j-000001/dataset -o dataset.jsonl
//	curl -s localhost:8070/v1/metrics | grep repro_sim_events_total
//
// Usage:
//
//	reprod [-addr :8070] [-data DIR] [-jobs N] [-log-format text|json] [-pprof]
//
// -jobs bounds concurrently *running campaigns*; each campaign still
// parallelizes internally per its spec's workers knob, so the default
// of 1 already uses every core. SIGINT/SIGTERM drain gracefully:
// in-flight campaigns finish and are cached before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8070", "HTTP listen address")
		data      = flag.String("data", "reprod-data", "result-store data directory")
		jobs      = flag.Int("jobs", 1, "concurrently running campaigns (each parallelizes internally)")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "reprod: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	srv, err := server.New(server.Config{
		DataDir:     *data,
		Jobs:        *jobs,
		Logger:      logger,
		EnablePprof: *pprofOn,
	})
	if err != nil {
		logger.Error("startup", "error", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		logger.Info("shutting down: draining in-flight campaigns")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown", "error", err)
		}
	}()

	logger.Info("serving", "addr", *addr, "data", *data, "jobs", *jobs, "pprof", *pprofOn)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listen", "error", err)
		os.Exit(1)
	}
	// The HTTP listener is closed; finish the queued/running campaigns
	// so their results are cached for the next start.
	srv.Close()
	logger.Info("drained")
}
