// Command reprod is the campaign-as-a-service daemon: a long-lived
// HTTP control plane over the sharded campaign engine. Clients POST a
// serializable campaign spec (campaign.Spec) to /v1/campaigns, poll the
// async job it becomes, and fetch the merged dataset plus a run report
// (determinism hash, event counters, CE-mark estimates). Completed runs
// are cached on disk content-addressed by the spec's canonical form, so
// resubmitting a spec — from any client, with any execution shape — is
// served instantly without re-simulating.
//
// Quickstart (see README.md for the full curl walk-through):
//
//	reprod -addr :8070 -data ./reprod-data &
//	curl -s localhost:8070/v1/campaigns -d '{"spec":1,"scale":"small","traces":2,"seed":2015}'
//	curl -s localhost:8070/v1/jobs/j-000001
//	curl -s localhost:8070/v1/jobs/j-000001/dataset -o dataset.jsonl
//
// Usage:
//
//	reprod [-addr :8070] [-data DIR] [-jobs N]
//
// -jobs bounds concurrently *running campaigns*; each campaign still
// parallelizes internally per its spec's workers knob, so the default
// of 1 already uses every core. SIGINT/SIGTERM drain gracefully:
// in-flight campaigns finish and are cached before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr = flag.String("addr", ":8070", "HTTP listen address")
		data = flag.String("data", "reprod-data", "result-store data directory")
		jobs = flag.Int("jobs", 1, "concurrently running campaigns (each parallelizes internally)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "reprod: ", log.LstdFlags)
	srv, err := server.New(server.Config{
		DataDir: *data,
		Jobs:    *jobs,
		Logf:    func(format string, args ...any) { logger.Printf(format, args...) },
	})
	if err != nil {
		logger.Fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		logger.Print("shutting down: draining in-flight campaigns")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
	}()

	logger.Printf("serving on %s (data dir %s, %d concurrent jobs)", *addr, *data, *jobs)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatal(err)
	}
	// The HTTP listener is closed; finish the queued/running campaigns
	// so their results are cached for the next start.
	srv.Close()
	fmt.Fprintln(os.Stderr, "reprod: drained")
}
