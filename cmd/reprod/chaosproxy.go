package main

// reprod chaosproxy: the internal/chaos fault-injecting proxy as a
// standalone process, for smoke tests that park real worker processes
// behind a deterministically hostile network. Faults fire on request
// counters, never randomness, so a failing chaos-smoke run reproduces
// exactly.

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"time"

	"repro/internal/chaos"
)

func runChaosProxy(args []string) {
	fs := flag.NewFlagSet("reprod chaosproxy", flag.ExitOnError)
	var (
		listen     = fs.String("listen", "127.0.0.1:8071", "proxy listen address")
		target     = fs.String("target", "http://127.0.0.1:8070", "coordinator base URL to forward to")
		dropEvery  = fs.Int("drop-every", 0, "sever every Nth request without forwarding (0 disables)")
		delayEvery = fs.Int("delay-every", 0, "delay every Nth request by -delay (0 disables)")
		delay      = fs.Duration("delay", 100*time.Millisecond, "delay injected by -delay-every")
		dupEvery   = fs.Int("dup-every", 0, "forward every Nth request twice (0 disables)")
	)
	fs.Parse(args)

	u, err := url.Parse(*target)
	if err != nil || u.Scheme == "" || u.Host == "" {
		fmt.Fprintf(os.Stderr, "reprod chaosproxy: invalid -target %q\n", *target)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	proxy := &chaos.Proxy{
		Target:     u,
		DropEvery:  *dropEvery,
		DelayEvery: *delayEvery,
		Delay:      *delay,
		DupEvery:   *dupEvery,
	}
	logger.Info("chaos proxy serving", "listen", *listen, "target", *target,
		"drop_every", *dropEvery, "delay_every", *delayEvery, "delay", *delay,
		"dup_every", *dupEvery)
	srv := &http.Server{
		Addr:              *listen,
		Handler:           proxy,
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		logger.Error("listen", "error", err)
		os.Exit(1)
	}
}
