package netsim

import "time"

// ScheduleBenchWorkload is the shared scheduler-benchmark kernel: a
// steady-state churn of mixed near and far timers — the shape
// congested campaigns produce, where per-packet deliveries (ns–µs)
// coexist with protocol timeouts (ms–s) and long-lived idle timers
// (minutes+), and far timers mostly cancel, as retransmission timers
// usually do. BenchmarkSimSchedule (gated by scripts/perf_gate.sh) and
// cmd/benchreport's sim/sched rows both run exactly this function, so
// the CI artifact and the perf gate cannot drift apart.
// ScheduleBenchWorkloadSparse is the second scheduler-benchmark kernel:
// a sparse timeline, where the pending set stays small and consecutive
// events sit whole windows apart — the shape an idle-heavy measurement
// campaign produces between probe exchanges (RTT waits, retransmission
// timeouts, epoch jumps). Dense slot reuse never happens here; the cost
// that dominates is finding the next occupied instant, which is exactly
// what the wheel's occupancy counts and min-jump cascade optimise. The
// two kernels together keep scheduler tuning honest: a change that
// helps packed slots must not regress long jumps, and vice versa.
func ScheduleBenchWorkloadSparse(s *Sim, n int) {
	k := sparseKernel{s: s, n: n}
	k.step = k.chain
	k.noop = func() {}
	k.chain()
	s.Run()
}

// sparseKernel is the sparse workload's state, with both callbacks
// bound once so the steady-state chain schedules without allocating —
// the same discipline the packet hot path follows.
type sparseKernel struct {
	s          *Sim
	i, n       int
	step, noop func()
}

func (k *sparseKernel) chain() {
	i := k.i
	k.i++
	if i >= k.n {
		return
	}
	// A probe exchange now and then, then a long quiet gap:
	// microseconds to tens of seconds between instants.
	gap := time.Duration(1+i*2654435761%977) * 10 * time.Microsecond
	switch i % 11 {
	case 3:
		gap += time.Duration(i%7) * time.Second
	case 7:
		gap += 500 * time.Millisecond
	}
	k.s.After(gap, k.step)
	if i%5 == 0 {
		// A timeout armed far ahead and almost always cancelled — the
		// retransmission-timer pattern.
		tm := k.s.After(30*time.Second, k.noop)
		if i%50 != 0 {
			tm.Stop()
		}
	}
}

func ScheduleBenchWorkload(s *Sim, n int) {
	var far [64]Timer
	for i := 0; i < n; i++ {
		var d time.Duration
		switch i & 7 {
		case 0, 1, 2, 3:
			d = time.Duration(i%1000) * time.Microsecond
		case 4, 5:
			d = time.Duration(i%50) * time.Millisecond
		case 6:
			d = time.Duration(i%10) * time.Second
		default:
			d = 5 * time.Minute
		}
		tm := s.After(d, func() {})
		if i&7 == 7 {
			far[(i>>3)&63].Stop() // churn cancelled far timers, heap's worst case
			far[(i>>3)&63] = tm
		}
		if i%512 == 0 {
			s.RunUntil(s.Now() + time.Millisecond)
		}
	}
	s.Run()
}
