package netsim

import "time"

// ScheduleBenchWorkload is the shared scheduler-benchmark kernel: a
// steady-state churn of mixed near and far timers — the shape
// congested campaigns produce, where per-packet deliveries (ns–µs)
// coexist with protocol timeouts (ms–s) and long-lived idle timers
// (minutes+), and far timers mostly cancel, as retransmission timers
// usually do. BenchmarkSimSchedule (gated by scripts/perf_gate.sh) and
// cmd/benchreport's sim/sched rows both run exactly this function, so
// the CI artifact and the perf gate cannot drift apart.
func ScheduleBenchWorkload(s *Sim, n int) {
	var far [64]Timer
	for i := 0; i < n; i++ {
		var d time.Duration
		switch i & 7 {
		case 0, 1, 2, 3:
			d = time.Duration(i%1000) * time.Microsecond
		case 4, 5:
			d = time.Duration(i%50) * time.Millisecond
		case 6:
			d = time.Duration(i%10) * time.Second
		default:
			d = 5 * time.Minute
		}
		tm := s.After(d, func() {})
		if i&7 == 7 {
			far[(i>>3)&63].Stop() // churn cancelled far timers, heap's worst case
			far[(i>>3)&63] = tm
		}
		if i%512 == 0 {
			s.RunUntil(s.Now() + time.Millisecond)
		}
	}
	s.Run()
}
