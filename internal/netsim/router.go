package netsim

import (
	"repro/internal/packet"
)

// Verdict is a middlebox policy decision about a transit packet.
type Verdict uint8

// Policy verdicts.
const (
	Pass Verdict = iota // forward the (possibly mutated) packet
	Drop                // discard silently, as the study's middleboxes do
)

// Policy is a middlebox behaviour attached to a router. Apply may mutate
// the wire bytes in place (e.g. bleach the ECN field, fixing the header
// checksum) and returns a verdict. Policies run on ingress, before TTL
// handling, so a policy's rewrite is visible in the ICMP quotation the
// same router generates — matching a middlebox deployed immediately in
// front of the router.
type Policy interface {
	Apply(r *Router, wire []byte) Verdict
	// Name identifies the policy kind in topology dumps and tests.
	Name() string
}

// Router is an IP forwarding node. It applies its middlebox policies,
// decrements TTL (emitting RFC 792 time-exceeded errors with quotations
// when it hits zero), and forwards along topology-computed routes.
type Router struct {
	net      *Network
	id       int
	label    string
	addr     packet.Addr
	asn      uint32
	links    []*Link
	policies []Policy
	// hostLinks maps directly attached host addresses to their access
	// links; the general routing table handles everything else.
	hostLinks map[packet.Addr]*Link

	ipID uint16

	// Telemetry for the traceroute analysis and tests.
	Forwarded    uint64
	PolicyDrops  uint64
	TTLExpiries  uint64
	NoRouteDrops uint64
}

// Label implements Node.
func (r *Router) Label() string { return r.label }

// Addr returns the router's own address (the source of its ICMP errors).
func (r *Router) Addr() packet.Addr { return r.addr }

// ASN returns the autonomous system the router belongs to.
func (r *Router) ASN() uint32 { return r.asn }

// ID returns the router's dense index within its Network.
func (r *Router) ID() int { return r.id }

// AddPolicy attaches a middlebox policy. Policies run in attachment order.
func (r *Router) AddPolicy(p Policy) { r.policies = append(r.policies, p) }

// Policies returns the attached policies (for topology dumps).
func (r *Router) Policies() []Policy { return r.policies }

// Receive implements Node: the router forwarding path. The buffer
// reference is forwarded along the route when the packet survives and
// released on every drop path.
func (r *Router) Receive(b *packet.Buf, from *Link) {
	wire := b.Bytes()
	for _, p := range r.policies {
		if p.Apply(r, wire) == Drop {
			r.PolicyDrops++
			b.Release()
			return
		}
	}

	ip, _, err := packet.ParseIPv4(wire)
	if err != nil {
		b.Release()
		return // corrupt packets die here, as in a real forwarding plane
	}

	// Local delivery to the router's own address: routers terminate no
	// transport protocols in this model, so such packets are absorbed.
	if ip.Dst == r.addr {
		b.Release()
		return
	}

	ttl, err := packet.DecrementWireTTL(wire)
	if err != nil {
		b.Release()
		return
	}
	if ttl == 0 {
		r.TTLExpiries++
		r.sendTimeExceeded(ip, wire)
		b.Release()
		return
	}

	link := r.route(ip.Dst)
	if link == nil {
		r.NoRouteDrops++
		b.Release()
		return
	}
	r.Forwarded++
	link.Send(r, b)
}

// route picks the egress link for dst: a directly attached host wins,
// otherwise the network's next-hop table toward the destination's
// attachment router decides.
func (r *Router) route(dst packet.Addr) *Link {
	if l, ok := r.hostLinks[dst]; ok {
		return l
	}
	return r.net.nextHopLink(r, dst)
}

// sendTimeExceeded emits the ICMP error that traceroute elicits. Per
// common router practice the quotation covers the IP header plus eight
// payload bytes of the datagram *as it arrived here* — including any ECN
// rewrite an upstream (or local ingress) middlebox applied, which is
// exactly the signal the Section 4.2 analysis extracts. No time-exceeded
// is generated about ICMP errors themselves (RFC 1122 §3.2.2).
func (r *Router) sendTimeExceeded(ip packet.IPv4Header, dropped []byte) {
	if ip.Protocol == packet.ProtoICMP {
		if msg, err := packet.ParseICMP(dropped[packet.IPv4HeaderLen:]); err == nil {
			if msg.Type == packet.ICMPTimeExceeded || msg.Type == packet.ICMPDestUnreachable {
				return
			}
		}
	}
	r.ipID++
	reply, err := packet.BuildICMPBuf(r.addr, ip.Src, 64, r.ipID, packet.NewTimeExceeded(dropped))
	if err != nil {
		return
	}
	if link := r.route(ip.Src); link != nil {
		link.Send(r, reply)
		return
	}
	reply.Release()
}
