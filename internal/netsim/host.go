package netsim

import (
	"fmt"
	"time"

	"repro/internal/ecn"
	"repro/internal/packet"
)

// TapDirection distinguishes packets a tap saw leaving vs arriving.
type TapDirection uint8

// Tap directions.
const (
	TapOut TapDirection = iota
	TapIn
)

// Tap observes every packet a host sends or receives, like a tcpdump
// session running on that machine. The capture package provides recording
// taps; tests install ad-hoc closures.
type Tap func(dir TapDirection, at time.Duration, wire []byte)

// UDPHandler processes a datagram delivered to a bound UDP port.
type UDPHandler func(h *Host, ip packet.IPv4Header, udp packet.UDPHeader, payload []byte)

// ICMPHandler processes an ICMP message delivered to the host.
type ICMPHandler func(h *Host, ip packet.IPv4Header, msg packet.ICMPMessage)

// ProtoHandler processes a raw transport segment for protocols the host
// does not terminate natively (the tcpsim package registers one for TCP).
type ProtoHandler func(h *Host, ip packet.IPv4Header, segment []byte)

// Host is an end system: it owns an address, one access link, a set of
// bound UDP ports, optional protocol handlers, and packet taps.
type Host struct {
	sim    *Sim
	net    *Network
	label  string
	addr   packet.Addr
	uplink *Link

	online bool
	ipID   uint16

	udpPorts  map[uint16]UDPHandler
	icmp      ICMPHandler
	protos    map[packet.Protocol]ProtoHandler
	taps      []Tap
	ephemeral uint16

	// RespondPortUnreachable controls whether UDP datagrams to unbound
	// ports elicit ICMP port-unreachable errors. The study's NTP servers
	// (or firewalls in front of them) do not respond to high-port
	// traceroute probes — traces "generally stop one hop before the
	// destination" — so the default is silent drop.
	RespondPortUnreachable bool

	// Counters.
	Sent     uint64
	Received uint64
}

// Label implements Node.
func (h *Host) Label() string { return h.label }

// Addr returns the host's address.
func (h *Host) Addr() packet.Addr { return h.addr }

// Sim returns the simulation the host lives in, for protocol timers.
func (h *Host) Sim() *Sim { return h.sim }

// Uplink exposes the host's access link so campaigns can vary its loss.
func (h *Host) Uplink() *Link { return h.uplink }

// SetOnline switches the host between answering and dead. An offline
// host drops all traffic silently — modelling the NTP pool's volunteer
// churn, where hosts leave the pool but keep their DNS entries briefly.
func (h *Host) SetOnline(v bool) { h.online = v }

// Online reports whether the host is answering.
func (h *Host) Online() bool { return h.online }

// AddTap installs a packet tap.
func (h *Host) AddTap(t Tap) { h.taps = append(h.taps, t) }

// BindUDP registers a handler for a UDP port. Binding port 0 picks a free
// ephemeral port. The chosen port is returned.
func (h *Host) BindUDP(port uint16, fn UDPHandler) (uint16, error) {
	if port == 0 {
		port = h.nextEphemeral()
	}
	if _, taken := h.udpPorts[port]; taken {
		return 0, fmt.Errorf("netsim: %s: UDP port %d already bound", h.label, port)
	}
	h.udpPorts[port] = fn
	return port, nil
}

// UnbindUDP releases a bound port.
func (h *Host) UnbindUDP(port uint16) { delete(h.udpPorts, port) }

// OnICMP registers the handler invoked for ICMP messages addressed to the
// host (traceroute and probe clients use this to hear time-exceeded and
// port-unreachable errors).
func (h *Host) OnICMP(fn ICMPHandler) { h.icmp = fn }

// RegisterProto installs a raw handler for an IP protocol (e.g. TCP).
func (h *Host) RegisterProto(p packet.Protocol, fn ProtoHandler) {
	h.protos[p] = fn
}

// nextEphemeral hands out ports from the dynamic range, skipping bound
// ones.
func (h *Host) nextEphemeral() uint16 {
	for {
		h.ephemeral++
		if h.ephemeral < 49152 {
			h.ephemeral = 49152
		}
		if _, taken := h.udpPorts[h.ephemeral]; !taken {
			return h.ephemeral
		}
	}
}

// NextIPID returns a fresh IP identification value for outgoing packets.
func (h *Host) NextIPID() uint16 {
	h.ipID++
	return h.ipID
}

// SendUDP builds and transmits a UDP datagram with the given ECN
// codepoint and TTL. It is the primitive under both the NTP prober and
// the traceroute engine. The datagram is serialized into a pooled wire
// buffer, so steady-state sends allocate nothing.
func (h *Host) SendUDP(dst packet.Addr, srcPort, dstPort uint16, ttl uint8, cp ecn.Codepoint, payload []byte) error {
	b, err := packet.BuildUDPBuf(h.addr, dst, srcPort, dstPort, ttl, cp, h.NextIPID(), payload)
	if err != nil {
		return err
	}
	h.SendBuf(b)
	return nil
}

// SendBuf transmits a pre-serialized wire buffer, taking ownership of
// the caller's reference (tcpsim builds segments straight into pooled
// buffers and sends them through here).
func (h *Host) SendBuf(b *packet.Buf) {
	if !h.online {
		b.Release()
		return
	}
	h.Sent++
	if len(h.taps) > 0 {
		wire := b.Bytes()
		for _, t := range h.taps {
			t(TapOut, h.sim.Now(), wire)
		}
	}
	if h.uplink != nil {
		h.uplink.Send(h, b)
		return
	}
	b.Release()
}

// SendRaw transmits pre-serialized wire bytes, adopting the slice into
// the pooled-buffer world (the caller must relinquish it).
func (h *Host) SendRaw(wire []byte) {
	h.SendBuf(packet.AdoptBuf(wire))
}

// Receive implements Node: demultiplex to the bound socket surface.
// The buffer is released when the handlers return; handlers that keep
// bytes (capture taps, reassembly buffers) copy them.
func (h *Host) Receive(b *packet.Buf, from *Link) {
	defer b.Release()
	if !h.online {
		return
	}
	h.Received++
	wire := b.Bytes()
	for _, t := range h.taps {
		t(TapIn, h.sim.Now(), wire)
	}
	ip, body, err := packet.ParseIPv4(wire)
	if err != nil || ip.Dst != h.addr {
		return
	}
	switch ip.Protocol {
	case packet.ProtoUDP:
		udp, payload, err := packet.ParseUDP(body, ip.Src, ip.Dst)
		if err != nil {
			return
		}
		if fn, ok := h.udpPorts[udp.DstPort]; ok {
			fn(h, ip, udp, payload)
			return
		}
		if h.RespondPortUnreachable {
			h.sendPortUnreachable(wire)
		}
	case packet.ProtoICMP:
		msg, err := packet.ParseICMP(body)
		if err != nil {
			return
		}
		if h.icmp != nil {
			h.icmp(h, ip, msg)
		}
	default:
		if fn, ok := h.protos[ip.Protocol]; ok {
			fn(h, ip, body)
		}
	}
}

// sendPortUnreachable emits the ICMP error a reachable-but-unbound UDP
// port generates.
func (h *Host) sendPortUnreachable(offending []byte) {
	ip, _, err := packet.ParseIPv4(offending)
	if err != nil {
		return
	}
	msg := packet.NewDestUnreachable(packet.ICMPCodePortUnreach, offending)
	b, err := packet.BuildICMPBuf(h.addr, ip.Src, 64, h.NextIPID(), msg)
	if err != nil {
		return
	}
	h.SendBuf(b)
}
