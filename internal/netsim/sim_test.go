package netsim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

// forEachSched runs a subtest against both schedulers: every observable
// Sim behaviour must be identical on the wheel and the heap.
func forEachSched(t *testing.T, f func(t *testing.T, newSim func(seed int64) *Sim)) {
	t.Helper()
	for _, sched := range []Scheduler{SchedWheel, SchedHeap} {
		sched := sched
		t.Run(sched.Name(), func(t *testing.T) {
			f(t, func(seed int64) *Sim { return NewSimSched(seed, sched) })
		})
	}
}

func TestSchedulerByName(t *testing.T) {
	for name, want := range map[string]Scheduler{"": SchedWheel, "wheel": SchedWheel, "heap": SchedHeap} {
		got, ok := SchedulerByName(name)
		if !ok || got != want {
			t.Errorf("SchedulerByName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := SchedulerByName("fibheap"); ok {
		t.Error("unknown scheduler name accepted")
	}
	if NewSim(1).SchedulerName() != "wheel" {
		t.Error("default scheduler is not the wheel")
	}
}

func TestSimOrdering(t *testing.T) {
	forEachSched(t, func(t *testing.T, newSim func(int64) *Sim) {
		s := newSim(1)
		var got []int
		s.After(30*time.Millisecond, func() { got = append(got, 3) })
		s.After(10*time.Millisecond, func() { got = append(got, 1) })
		s.After(20*time.Millisecond, func() { got = append(got, 2) })
		s.Run()
		if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
			t.Errorf("execution order = %v", got)
		}
		if s.Now() != 30*time.Millisecond {
			t.Errorf("final time = %v", s.Now())
		}
	})
}

func TestSimFIFOWithinTimestamp(t *testing.T) {
	forEachSched(t, func(t *testing.T, newSim func(int64) *Sim) {
		s := newSim(1)
		var got []int
		for i := 0; i < 100; i++ {
			i := i
			s.After(5*time.Millisecond, func() { got = append(got, i) })
		}
		s.Run()
		if !sort.IntsAreSorted(got) {
			t.Error("same-timestamp events must run FIFO")
		}
	})
}

func TestSimNestedScheduling(t *testing.T) {
	forEachSched(t, func(t *testing.T, newSim func(int64) *Sim) {
		s := newSim(1)
		var fired []time.Duration
		s.After(time.Second, func() {
			fired = append(fired, s.Now())
			s.After(time.Second, func() {
				fired = append(fired, s.Now())
			})
		})
		s.Run()
		if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
			t.Errorf("fired = %v", fired)
		}
	})
}

func TestTimerStop(t *testing.T) {
	forEachSched(t, func(t *testing.T, newSim func(int64) *Sim) {
		s := newSim(1)
		ran := false
		tm := s.After(time.Second, func() { ran = true })
		if !tm.Stop() {
			t.Error("Stop should report pending timer")
		}
		if tm.Stop() {
			t.Error("second Stop should report dead timer")
		}
		s.Run()
		if ran {
			t.Error("cancelled timer fired")
		}
		var zeroTimer Timer
		if zeroTimer.Stop() {
			t.Error("zero timer Stop should be false")
		}
	})
}

func TestNegativeDelayClamped(t *testing.T) {
	forEachSched(t, func(t *testing.T, newSim func(int64) *Sim) {
		s := newSim(1)
		ran := false
		s.After(-time.Second, func() { ran = true })
		s.Run()
		if !ran || s.Now() != 0 {
			t.Errorf("negative delay handling: ran=%v now=%v", ran, s.Now())
		}
	})
}

func TestRunUntil(t *testing.T) {
	forEachSched(t, func(t *testing.T, newSim func(int64) *Sim) {
		s := newSim(1)
		var fired []int
		s.After(10*time.Millisecond, func() { fired = append(fired, 1) })
		s.After(30*time.Millisecond, func() { fired = append(fired, 2) })
		s.RunUntil(20 * time.Millisecond)
		if len(fired) != 1 {
			t.Errorf("fired = %v, want only first", fired)
		}
		if s.Now() != 20*time.Millisecond {
			t.Errorf("now = %v, want 20ms", s.Now())
		}
		s.Run()
		if len(fired) != 2 {
			t.Errorf("remaining event lost: %v", fired)
		}
	})
}

// TestRunUntilThenEarlierInsert pins the subtlety the wheel's cursor
// discipline exists for: after RunUntil stops short of a far event, a
// new event scheduled between the deadline and that far event must still
// fire first and in order.
func TestRunUntilThenEarlierInsert(t *testing.T) {
	forEachSched(t, func(t *testing.T, newSim func(int64) *Sim) {
		s := newSim(1)
		var fired []int
		s.After(90*time.Minute, func() { fired = append(fired, 2) })
		s.RunUntil(10 * time.Minute)
		// Insert between the deadline and the pending far event.
		s.At(40*time.Minute, func() { fired = append(fired, 1) })
		s.Run()
		if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
			t.Errorf("fired = %v, want [1 2]", fired)
		}
	})
}

func TestRunUntilSkipsCancelled(t *testing.T) {
	forEachSched(t, func(t *testing.T, newSim func(int64) *Sim) {
		s := newSim(1)
		tm := s.After(5*time.Millisecond, func() {})
		tm.Stop()
		s.RunUntil(time.Second)
		if s.Now() != time.Second {
			t.Errorf("now = %v", s.Now())
		}
		if s.Pending() != 0 {
			t.Errorf("pending = %d", s.Pending())
		}
	})
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	forEachSched(t, func(t *testing.T, newSim func(int64) *Sim) {
		s := newSim(1)
		if s.Step() {
			t.Error("Step on empty queue must be false")
		}
	})
}

func TestAtClampsToPast(t *testing.T) {
	forEachSched(t, func(t *testing.T, newSim func(int64) *Sim) {
		s := newSim(1)
		s.After(time.Second, func() {
			// Scheduling in the past must clamp to now, not rewind the clock.
			s.At(0, func() {
				if s.Now() != time.Second {
					t.Errorf("past event ran at %v", s.Now())
				}
			})
		})
		s.Run()
	})
}

func TestNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for nil fn")
		}
	}()
	NewSim(1).After(0, nil)
}

func TestPendingCountBothSchedulers(t *testing.T) {
	forEachSched(t, func(t *testing.T, newSim func(int64) *Sim) {
		s := newSim(1)
		timers := make([]Timer, 10)
		for i := range timers {
			timers[i] = s.After(time.Duration(i+1)*time.Second, func() {})
		}
		if s.Pending() != 10 {
			t.Fatalf("pending = %d, want 10", s.Pending())
		}
		timers[3].Stop()
		timers[7].Stop()
		if s.Pending() != 8 {
			t.Fatalf("pending after 2 stops = %d, want 8", s.Pending())
		}
		s.Step()
		if s.Pending() != 7 {
			t.Fatalf("pending after a step = %d, want 7", s.Pending())
		}
		s.Run()
		if s.Pending() != 0 {
			t.Fatalf("pending after drain = %d", s.Pending())
		}
	})
}

func TestDeterminism(t *testing.T) {
	forEachSched(t, func(t *testing.T, newSim func(int64) *Sim) {
		run := func() []time.Duration {
			s := newSim(42)
			var times []time.Duration
			var schedule func(depth int)
			schedule = func(depth int) {
				if depth == 0 {
					return
				}
				d := time.Duration(s.RNG().Intn(1000)) * time.Microsecond
				s.After(d, func() {
					times = append(times, s.Now())
					schedule(depth - 1)
				})
			}
			schedule(50)
			s.Run()
			return times
		}
		a, b := run(), run()
		if len(a) != len(b) {
			t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
			}
		}
	})
}

// TestFarTimersCascade exercises the wheel across level boundaries: a
// mix of nanosecond-to-multi-day timers must fire in exact time order on
// both schedulers.
func TestFarTimersCascade(t *testing.T) {
	delays := []time.Duration{
		3, 200, 255, 256, 257, 65535, 65536, 70000,
		3 * time.Millisecond, time.Second, 90 * time.Second,
		time.Hour, 27 * time.Hour, 9 * 24 * time.Hour, 200 * 24 * time.Hour,
	}
	forEachSched(t, func(t *testing.T, newSim func(int64) *Sim) {
		s := newSim(1)
		var fired []time.Duration
		for _, d := range delays {
			s.After(d, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(delays) {
			t.Fatalf("fired %d of %d", len(fired), len(delays))
		}
		sorted := append([]time.Duration(nil), delays...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range sorted {
			if fired[i] != sorted[i] {
				t.Fatalf("fire %d at %v, want %v", i, fired[i], sorted[i])
			}
		}
	})
}

// Property: the event heap pops in nondecreasing (at, seq) order for any
// insertion sequence.
func TestHeapOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewSimSched(1, SchedHeap)
		for _, d := range delays {
			s.heapPush(heapEntry{at: time.Duration(d), seq: s.seq, idx: 0})
			s.seq++
		}
		var prev heapEntry
		first := true
		for len(s.heap) > 0 {
			he := s.heap[0]
			s.heapPopRoot()
			if !first && he.less(prev) {
				return false
			}
			prev, first = he, false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: wheel and heap fire any random schedule/cancel workload in
// the identical (event id, time) sequence — the differential guarantee
// the campaign's scheduler fallback rests on.
func TestSchedulerEquivalenceProperty(t *testing.T) {
	run := func(sched Scheduler, seed int64) []int {
		s := NewSimSched(1, sched)
		rng := rand.New(rand.NewSource(seed))
		var order []int
		id := 0
		var timers []Timer
		var spawn func(depth int)
		spawn = func(depth int) {
			n := rng.Intn(4)
			for i := 0; i < n; i++ {
				me := id
				id++
				// Delays straddle wheel level boundaries, including 0.
				d := time.Duration(rng.Intn(5)) * time.Duration(1<<uint(rng.Intn(20)))
				tm := s.After(d, func() {
					order = append(order, me)
					if depth > 0 {
						spawn(depth - 1)
					}
				})
				timers = append(timers, tm)
			}
			// Cancel a random earlier timer now and then.
			if len(timers) > 0 && rng.Intn(3) == 0 {
				timers[rng.Intn(len(timers))].Stop()
			}
		}
		spawn(6)
		s.Run()
		return order
	}
	for seed := int64(0); seed < 30; seed++ {
		w, h := run(SchedWheel, seed), run(SchedHeap, seed)
		if len(w) != len(h) {
			t.Fatalf("seed %d: wheel fired %d events, heap %d", seed, len(w), len(h))
		}
		for i := range w {
			if w[i] != h[i] {
				t.Fatalf("seed %d: divergence at %d: wheel=%d heap=%d", seed, i, w[i], h[i])
			}
		}
	}
}

// TestSchedulerEquivalencePhased drains the simulator to empty between
// bursts of scheduling, with cancelled far-future timers left behind —
// the campaign's phase structure (build, discovery, traces, sweep), and
// the exact pattern that once stranded the wheel's cursor past the Sim
// clock.
func TestSchedulerEquivalencePhased(t *testing.T) {
	run := func(sched Scheduler, seed int64) []int64 {
		s := NewSimSched(1, sched)
		rng := rand.New(rand.NewSource(seed))
		var log []int64
		id := 0
		for phase := 0; phase < 6; phase++ {
			var timers []Timer
			for i := 0; i < 40; i++ {
				me := id
				id++
				var d time.Duration
				switch rng.Intn(4) {
				case 0:
					d = time.Duration(rng.Intn(512))
				case 1:
					d = time.Duration(rng.Intn(1 << 20))
				case 2:
					d = time.Duration(rng.Int63n(int64(time.Hour)))
				case 3:
					d = time.Duration(rng.Int63n(int64(30 * 24 * time.Hour)))
				}
				timers = append(timers, s.After(d, func() {
					log = append(log, int64(me), int64(s.Now()))
				}))
			}
			// Cancel some — including, often, every far timer, so the
			// drain ends chasing only dead entries.
			for _, tm := range timers {
				if rng.Intn(2) == 0 {
					tm.Stop()
				}
			}
			if rng.Intn(2) == 0 {
				s.RunUntil(s.Now() + time.Duration(rng.Int63n(int64(24*time.Hour))))
			}
			s.Run()
			if s.Pending() != 0 {
				t.Fatalf("%s seed %d phase %d: %d events stranded after Run",
					sched.Name(), seed, phase, s.Pending())
			}
		}
		return log
	}
	for seed := int64(0); seed < 25; seed++ {
		w, h := run(SchedWheel, seed), run(SchedHeap, seed)
		if len(w) != len(h) {
			t.Fatalf("seed %d: wheel logged %d, heap %d", seed, len(w), len(h))
		}
		for i := range w {
			if w[i] != h[i] {
				t.Fatalf("seed %d: divergence at %d: wheel=%d heap=%d", seed, i, w[i], h[i])
			}
		}
	}
}

func TestSchedulerStress(t *testing.T) {
	forEachSched(t, func(t *testing.T, newSim func(int64) *Sim) {
		s := newSim(7)
		rng := rand.New(rand.NewSource(99))
		count := 0
		for i := 0; i < 10000; i++ {
			s.After(time.Duration(rng.Intn(1_000_000))*time.Microsecond, func() { count++ })
		}
		for s.Pending() > 0 {
			before := s.Now()
			if !s.Step() {
				break
			}
			if s.Now() < before {
				t.Fatal("time went backwards")
			}
		}
		if count != 10000 {
			t.Errorf("executed %d of 10000", count)
		}
	})
}
