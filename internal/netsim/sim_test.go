package netsim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSimOrdering(t *testing.T) {
	s := NewSim(1)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order = %v", got)
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("final time = %v", s.Now())
	}
}

func TestSimFIFOWithinTimestamp(t *testing.T) {
	s := NewSim(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.After(5*time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	if !sort.IntsAreSorted(got) {
		t.Error("same-timestamp events must run FIFO")
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim(1)
	var fired []time.Duration
	s.After(time.Second, func() {
		fired = append(fired, s.Now())
		s.After(time.Second, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Errorf("fired = %v", fired)
	}
}

func TestTimerStop(t *testing.T) {
	s := NewSim(1)
	ran := false
	tm := s.After(time.Second, func() { ran = true })
	if !tm.Stop() {
		t.Error("Stop should report pending timer")
	}
	if tm.Stop() {
		t.Error("second Stop should report dead timer")
	}
	s.Run()
	if ran {
		t.Error("cancelled timer fired")
	}
	var zeroTimer Timer
	if zeroTimer.Stop() {
		t.Error("zero timer Stop should be false")
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := NewSim(1)
	ran := false
	s.After(-time.Second, func() { ran = true })
	s.Run()
	if !ran || s.Now() != 0 {
		t.Errorf("negative delay handling: ran=%v now=%v", ran, s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	s := NewSim(1)
	var fired []int
	s.After(10*time.Millisecond, func() { fired = append(fired, 1) })
	s.After(30*time.Millisecond, func() { fired = append(fired, 2) })
	s.RunUntil(20 * time.Millisecond)
	if len(fired) != 1 {
		t.Errorf("fired = %v, want only first", fired)
	}
	if s.Now() != 20*time.Millisecond {
		t.Errorf("now = %v, want 20ms", s.Now())
	}
	s.Run()
	if len(fired) != 2 {
		t.Errorf("remaining event lost: %v", fired)
	}
}

func TestRunUntilSkipsCancelled(t *testing.T) {
	s := NewSim(1)
	tm := s.After(5*time.Millisecond, func() {})
	tm.Stop()
	s.RunUntil(time.Second)
	if s.Now() != time.Second {
		t.Errorf("now = %v", s.Now())
	}
	if s.Pending() != 0 {
		t.Errorf("pending = %d", s.Pending())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := NewSim(1)
	if s.Step() {
		t.Error("Step on empty queue must be false")
	}
}

func TestAtClampsToPast(t *testing.T) {
	s := NewSim(1)
	s.After(time.Second, func() {
		// Scheduling in the past must clamp to now, not rewind the clock.
		s.At(0, func() {
			if s.Now() != time.Second {
				t.Errorf("past event ran at %v", s.Now())
			}
		})
	})
	s.Run()
}

func TestNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for nil fn")
		}
	}()
	NewSim(1).After(0, nil)
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		s := NewSim(42)
		var times []time.Duration
		var schedule func(depth int)
		schedule = func(depth int) {
			if depth == 0 {
				return
			}
			d := time.Duration(s.RNG().Intn(1000)) * time.Microsecond
			s.After(d, func() {
				times = append(times, s.Now())
				schedule(depth - 1)
			})
		}
		schedule(50)
		s.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: the event heap pops in nondecreasing (at, seq) order for any
// insertion sequence.
func TestHeapOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewSim(1)
		for _, d := range delays {
			s.heapPush(heapEntry{at: time.Duration(d), seq: s.seq, idx: 0})
			s.seq++
		}
		var prev heapEntry
		first := true
		for len(s.heap) > 0 {
			he := s.heap[0]
			s.heapPopRoot()
			if !first && he.less(prev) {
				return false
			}
			prev, first = he, false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHeapStress(t *testing.T) {
	s := NewSim(7)
	rng := rand.New(rand.NewSource(99))
	count := 0
	for i := 0; i < 10000; i++ {
		s.After(time.Duration(rng.Intn(1_000_000))*time.Microsecond, func() { count++ })
	}
	for len(s.heap) > 0 {
		before := s.Now()
		if !s.Step() {
			break
		}
		if s.Now() < before {
			t.Fatal("time went backwards")
		}
	}
	if count != 10000 {
		t.Errorf("executed %d of 10000", count)
	}
}
