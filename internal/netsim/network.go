package netsim

import (
	"fmt"
	"time"

	"repro/internal/packet"
)

// Network is the registry of routers, hosts and links plus the routing
// fabric. The topology package populates it; ComputeRoutes must be called
// after the graph is final and before traffic flows.
type Network struct {
	Sim *Sim

	routers []*Router
	hosts   []*Host
	links   []*Link

	// hostAttach maps a host address to its host and attachment router.
	hostAttach map[packet.Addr]hostAttachment

	// nextHop[src][dst] is the index (into links) of the link router
	// #src uses toward router #dst; -1 means unreachable. Built by
	// ComputeRoutes or shared read-only across Networks via
	// ExportRoutes/ImportRoutes — indices, not pointers, so networks
	// instantiated from one frozen topology can share a single table.
	nextHop [][]int32
	routed  bool
}

// RouteTable is a frozen forwarding table: for every (source router,
// destination router) pair, the index of the egress link in the owning
// Network's creation-order link slice. It is immutable once exported and
// safe to share across concurrently-running Networks whose graphs were
// built by an identical construction sequence.
type RouteTable struct {
	nextHop [][]int32
	routers int
	links   int
}

type hostAttachment struct {
	host     *Host
	routerID int
}

// NewNetwork creates an empty network on sim.
func NewNetwork(sim *Sim) *Network {
	return &Network{
		Sim:        sim,
		hostAttach: make(map[packet.Addr]hostAttachment),
	}
}

// AddRouter registers a router with its own address and AS number.
func (n *Network) AddRouter(label string, addr packet.Addr, asn uint32) *Router {
	r := &Router{
		net:       n,
		id:        len(n.routers),
		label:     label,
		addr:      addr,
		asn:       asn,
		hostLinks: make(map[packet.Addr]*Link),
	}
	n.routers = append(n.routers, r)
	n.routed = false
	return r
}

// AddHost registers a host. It starts online but unattached; call Attach.
func (n *Network) AddHost(label string, addr packet.Addr) (*Host, error) {
	if _, dup := n.hostAttach[addr]; dup {
		return nil, fmt.Errorf("netsim: duplicate host address %s", addr)
	}
	h := &Host{
		sim:      n.Sim,
		net:      n,
		label:    label,
		addr:     addr,
		online:   true,
		udpPorts: make(map[uint16]UDPHandler),
		protos:   make(map[packet.Protocol]ProtoHandler),
	}
	n.hosts = append(n.hosts, h)
	n.hostAttach[addr] = hostAttachment{host: h} // router set on Attach
	return h, nil
}

// Connect joins two routers with a link.
func (n *Network) Connect(a, b *Router, delay time.Duration, loss float64) *Link {
	l := newLink(n.Sim, a, b, delay, loss)
	a.links = append(a.links, l)
	b.links = append(b.links, l)
	n.links = append(n.links, l)
	n.routed = false
	return l
}

// Attach gives a host its access link to a router and registers the
// host's address for delivery.
func (n *Network) Attach(h *Host, r *Router, delay time.Duration, loss float64) (*Link, error) {
	if h.uplink != nil {
		return nil, fmt.Errorf("netsim: host %s already attached", h.label)
	}
	l := newLink(n.Sim, h, r, delay, loss)
	h.uplink = l
	r.hostLinks[h.addr] = l
	n.links = append(n.links, l)
	att := n.hostAttach[h.addr]
	att.routerID = r.id
	n.hostAttach[h.addr] = att
	return l, nil
}

// ReplaceAttachment moves an already-attached host behind a different
// router (the topology generator uses this to slot a dedicated firewall
// router in front of selected servers). The old access link is removed.
func (n *Network) ReplaceAttachment(h *Host, to *Router, delay time.Duration) (*Link, error) {
	if h.uplink == nil {
		return nil, fmt.Errorf("netsim: host %s not attached", h.label)
	}
	if old, ok := h.uplink.Peer(h).(*Router); ok {
		delete(old.hostLinks, h.addr)
	}
	for i, l := range n.links {
		if l == h.uplink {
			n.links = append(n.links[:i], n.links[i+1:]...)
			break
		}
	}
	h.uplink = nil
	return n.Attach(h, to, delay, 0)
}

// Routers returns the registered routers in creation order.
func (n *Network) Routers() []*Router { return n.routers }

// Hosts returns the registered hosts in creation order.
func (n *Network) Hosts() []*Host { return n.hosts }

// HostByAddr finds a host by address.
func (n *Network) HostByAddr(a packet.Addr) (*Host, bool) {
	att, ok := n.hostAttach[a]
	if !ok || att.host == nil {
		return nil, false
	}
	return att.host, true
}

// AttachmentRouter returns the router a host address hangs off.
func (n *Network) AttachmentRouter(a packet.Addr) (*Router, bool) {
	att, ok := n.hostAttach[a]
	if !ok || att.host == nil || att.host.uplink == nil {
		return nil, false
	}
	return n.routers[att.routerID], true
}

// ComputeRoutes builds shortest-path next-hop tables with one BFS per
// router. Ties break toward the earliest-created neighbour link, which is
// deterministic and stable — paths do not flap between runs, matching the
// study's observation that the same servers fail from every vantage point.
func (n *Network) ComputeRoutes() error {
	nr := len(n.routers)
	// adjacency: router id -> (neighbor id, link index)
	type edge struct {
		to   int
		link int32
	}
	adj := make([][]edge, nr)
	for li, l := range n.links {
		ra, aOK := l.a.(*Router)
		rb, bOK := l.b.(*Router)
		if aOK && bOK {
			adj[ra.id] = append(adj[ra.id], edge{rb.id, int32(li)})
			adj[rb.id] = append(adj[rb.id], edge{ra.id, int32(li)})
		}
	}

	n.nextHop = make([][]int32, nr)
	queue := make([]int, 0, nr)
	parentLink := make([]int32, nr)
	visited := make([]bool, nr)

	for src := 0; src < nr; src++ {
		for i := range visited {
			visited[i] = false
			parentLink[i] = -1
		}
		queue = queue[:0]
		queue = append(queue, src)
		visited[src] = true
		for qi := 0; qi < len(queue); qi++ {
			cur := queue[qi]
			for _, e := range adj[cur] {
				if visited[e.to] {
					continue
				}
				visited[e.to] = true
				if cur == src {
					parentLink[e.to] = e.link // first hop out of src
				} else {
					parentLink[e.to] = parentLink[cur]
				}
				queue = append(queue, e.to)
			}
		}
		row := make([]int32, nr)
		copy(row, parentLink)
		n.nextHop[src] = row
	}
	n.routed = true
	return nil
}

// ExportRoutes freezes the computed forwarding tables for reuse. The
// returned table shares this Network's backing arrays; neither may be
// mutated afterwards (the Network never does — routes are only ever
// recomputed wholesale, which allocates fresh rows).
func (n *Network) ExportRoutes() (*RouteTable, error) {
	if !n.routed {
		return nil, fmt.Errorf("netsim: ExportRoutes before ComputeRoutes")
	}
	return &RouteTable{nextHop: n.nextHop, routers: len(n.routers), links: len(n.links)}, nil
}

// ImportRoutes installs a shared forwarding table instead of running
// ComputeRoutes. The Network's graph must have been built by the same
// construction sequence as the table's origin — same routers, same links,
// in the same creation order — which the router and link counts check
// cheaply; the topology blueprint guarantees the rest by replaying one
// recorded build.
func (n *Network) ImportRoutes(rt *RouteTable) error {
	if rt == nil {
		return fmt.Errorf("netsim: ImportRoutes with nil table")
	}
	if len(n.routers) != rt.routers || len(n.links) != rt.links {
		return fmt.Errorf("netsim: route table shape mismatch: network has %d routers / %d links, table %d / %d",
			len(n.routers), len(n.links), rt.routers, rt.links)
	}
	n.nextHop = rt.nextHop
	n.routed = true
	return nil
}

// nextHopLink resolves the egress link from router r toward the
// attachment router of dst. Returns nil when dst is unknown or
// unreachable.
func (n *Network) nextHopLink(r *Router, dst packet.Addr) *Link {
	if !n.routed {
		panic("netsim: ComputeRoutes not called")
	}
	att, ok := n.hostAttach[dst]
	if !ok || att.host == nil || att.host.uplink == nil {
		// Not a host address: maybe a router address (for ICMP replies to
		// traceroute we must route *toward* routers too).
		if rid, ok := n.routerIDByAddr(dst); ok {
			if rid == r.id {
				return nil
			}
			return n.linkAt(n.nextHop[r.id][rid])
		}
		return nil
	}
	if att.routerID == r.id {
		return r.hostLinks[dst]
	}
	return n.linkAt(n.nextHop[r.id][att.routerID])
}

// linkAt resolves a next-hop index to the link object, nil for -1.
func (n *Network) linkAt(idx int32) *Link {
	if idx < 0 {
		return nil
	}
	return n.links[idx]
}

// routerIDByAddr performs a linear scan; router-addressed traffic (ICMP
// from traceroute replies toward routers) is rare, and topologies keep a
// few hundred routers, so this stays off any hot path. A map would work
// too, but the scan keeps construction allocation-free.
func (n *Network) routerIDByAddr(a packet.Addr) (int, bool) {
	for _, r := range n.routers {
		if r.addr == a {
			return r.id, true
		}
	}
	return 0, false
}

// PathRouters traces the routing-table path from a source host to a
// destination address, returning the router sequence a packet would
// traverse. Analysis code uses this as ground truth when validating what
// traceroute inferred.
func (n *Network) PathRouters(from *Host, dst packet.Addr) ([]*Router, error) {
	if !n.routed {
		return nil, fmt.Errorf("netsim: ComputeRoutes not called")
	}
	if from.uplink == nil {
		return nil, fmt.Errorf("netsim: host %s not attached", from.label)
	}
	cur, _ := from.uplink.Peer(from).(*Router)
	var path []*Router
	for hops := 0; cur != nil && hops < 1024; hops++ {
		path = append(path, cur)
		if _, direct := cur.hostLinks[dst]; direct {
			return path, nil
		}
		if dst == cur.addr {
			return path, nil
		}
		link := n.nextHopLink(cur, dst)
		if link == nil {
			return path, fmt.Errorf("netsim: no route from %s to %s", cur.label, dst)
		}
		next, ok := link.Peer(cur).(*Router)
		if !ok {
			return path, nil
		}
		cur = next
	}
	return path, fmt.Errorf("netsim: path from %s to %s too long", from.label, dst)
}
