package netsim

import (
	"testing"
	"time"

	"repro/internal/ecn"
	"repro/internal/packet"
)

// lineTopology builds H1 - R0 - R1 - ... - R(n-1) - H2 and returns the
// pieces. Each link has the given delay and zero loss.
func lineTopology(t *testing.T, sim *Sim, nRouters int, delay time.Duration) (*Network, *Host, *Host, []*Router) {
	t.Helper()
	n := NewNetwork(sim)
	routers := make([]*Router, nRouters)
	for i := range routers {
		routers[i] = n.AddRouter(
			"r"+string(rune('0'+i)),
			packet.AddrFrom4(10, 255, byte(i), 1), uint32(100+i))
	}
	for i := 0; i+1 < nRouters; i++ {
		n.Connect(routers[i], routers[i+1], delay, 0)
	}
	h1, err := n.AddHost("h1", packet.AddrFrom4(10, 0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := n.AddHost("h2", packet.AddrFrom4(10, 0, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(h1, routers[0], delay, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(h2, routers[nRouters-1], delay, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	return n, h1, h2, routers
}

func TestEndToEndUDPDelivery(t *testing.T) {
	sim := NewSim(1)
	_, h1, h2, _ := lineTopology(t, sim, 4, time.Millisecond)

	var got []byte
	var gotECN ecn.Codepoint
	h2.BindUDP(123, func(h *Host, ip packet.IPv4Header, udp packet.UDPHeader, payload []byte) {
		got = append([]byte(nil), payload...)
		gotECN = ip.ECN()
	})

	if err := h1.SendUDP(h2.Addr(), 5000, 123, 64, ecn.ECT0, []byte("ntp?")); err != nil {
		t.Fatal(err)
	}
	sim.Run()

	if string(got) != "ntp?" {
		t.Fatalf("payload = %q", got)
	}
	if gotECN != ecn.ECT0 {
		t.Errorf("ECN = %v, want ECT(0) end to end", gotECN)
	}
	// 4 routers + 2 access links = 5 link traversals at 1ms each.
	if sim.Now() != 5*time.Millisecond {
		t.Errorf("delivery time = %v, want 5ms", sim.Now())
	}
}

func TestReplyPath(t *testing.T) {
	sim := NewSim(1)
	_, h1, h2, _ := lineTopology(t, sim, 3, time.Millisecond)

	h2.BindUDP(123, func(h *Host, ip packet.IPv4Header, udp packet.UDPHeader, payload []byte) {
		h.SendUDP(ip.Src, udp.DstPort, udp.SrcPort, 64, ecn.NotECT, []byte("pong"))
	})
	var reply string
	h1.BindUDP(5001, func(h *Host, ip packet.IPv4Header, udp packet.UDPHeader, payload []byte) {
		reply = string(payload)
	})
	h1.SendUDP(h2.Addr(), 5001, 123, 64, ecn.NotECT, []byte("ping"))
	sim.Run()
	if reply != "pong" {
		t.Errorf("reply = %q", reply)
	}
}

func TestTTLDecrementAcrossPath(t *testing.T) {
	sim := NewSim(1)
	_, h1, h2, _ := lineTopology(t, sim, 5, 0)

	var ttl uint8
	h2.BindUDP(9, func(h *Host, ip packet.IPv4Header, udp packet.UDPHeader, payload []byte) {
		ttl = ip.TTL
	})
	h1.SendUDP(h2.Addr(), 1, 9, 64, ecn.NotECT, nil)
	sim.Run()
	if ttl != 64-5 {
		t.Errorf("arrived TTL = %d, want 59", ttl)
	}
}

func TestTTLExpiryGeneratesTimeExceeded(t *testing.T) {
	sim := NewSim(1)
	_, h1, h2, routers := lineTopology(t, sim, 5, time.Millisecond)

	var from packet.Addr
	var quoted packet.IPv4Header
	h1.OnICMP(func(h *Host, ip packet.IPv4Header, msg packet.ICMPMessage) {
		if msg.Type == packet.ICMPTimeExceeded {
			from = ip.Src
			quoted, _, _ = msg.Quotation()
		}
	})

	// TTL 3 expires at the third router.
	h1.SendUDP(h2.Addr(), 33434, 33434, 3, ecn.ECT0, []byte("probe"))
	sim.Run()

	if from != routers[2].Addr() {
		t.Errorf("time-exceeded from %s, want router 2 (%s)", from, routers[2].Addr())
	}
	if quoted.ECN() != ecn.ECT0 {
		t.Errorf("quoted ECN = %v, want ECT(0)", quoted.ECN())
	}
	if quoted.TTL != 0 {
		t.Errorf("quoted TTL = %d, want 0 at expiry", quoted.TTL)
	}
	if routers[2].TTLExpiries != 1 {
		t.Errorf("router 2 TTL expiries = %d", routers[2].TTLExpiries)
	}
}

func TestOfflineHostSilent(t *testing.T) {
	sim := NewSim(1)
	_, h1, h2, _ := lineTopology(t, sim, 2, 0)

	responded := false
	h2.BindUDP(123, func(h *Host, ip packet.IPv4Header, udp packet.UDPHeader, payload []byte) {
		responded = true
	})
	h2.SetOnline(false)
	h1.SendUDP(h2.Addr(), 1, 123, 64, ecn.NotECT, nil)
	sim.Run()
	if responded {
		t.Error("offline host handled a packet")
	}
	if h2.Online() {
		t.Error("Online should report false")
	}
}

func TestPortUnreachableOptIn(t *testing.T) {
	sim := NewSim(1)
	_, h1, h2, _ := lineTopology(t, sim, 2, 0)

	gotUnreach := 0
	h1.OnICMP(func(h *Host, ip packet.IPv4Header, msg packet.ICMPMessage) {
		if msg.Type == packet.ICMPDestUnreachable && msg.Code == packet.ICMPCodePortUnreach {
			gotUnreach++
		}
	})

	// Default: silent drop (the study's traceroutes stop one hop short).
	h1.SendUDP(h2.Addr(), 1, 33499, 64, ecn.NotECT, nil)
	sim.Run()
	if gotUnreach != 0 {
		t.Fatal("unexpected port unreachable with default config")
	}

	h2.RespondPortUnreachable = true
	h1.SendUDP(h2.Addr(), 1, 33499, 64, ecn.NotECT, nil)
	sim.Run()
	if gotUnreach != 1 {
		t.Errorf("port unreachable count = %d, want 1", gotUnreach)
	}
}

func TestLinkLossDropsDeterministically(t *testing.T) {
	sim := NewSim(12345)
	_, h1, h2, _ := lineTopology(t, sim, 2, 0)
	h1.Uplink().SetLoss(h1, 0.5)

	delivered := 0
	h2.BindUDP(7, func(h *Host, ip packet.IPv4Header, udp packet.UDPHeader, payload []byte) {
		delivered++
	})
	const total = 2000
	for i := 0; i < total; i++ {
		h1.SendUDP(h2.Addr(), 1, 7, 64, ecn.NotECT, nil)
	}
	sim.Run()
	if delivered < total/2-100 || delivered > total/2+100 {
		t.Errorf("delivered %d of %d at 50%% loss", delivered, total)
	}
	sent, dropped := h1.Uplink().Stats(h1)
	if sent != total {
		t.Errorf("sent = %d", sent)
	}
	if int(dropped) != total-delivered {
		t.Errorf("dropped = %d, delivered = %d", dropped, delivered)
	}
}

func TestTapSeesBothDirections(t *testing.T) {
	sim := NewSim(1)
	_, h1, h2, _ := lineTopology(t, sim, 2, 0)

	var dirs []TapDirection
	h1.AddTap(func(dir TapDirection, at time.Duration, wire []byte) {
		dirs = append(dirs, dir)
	})
	h2.BindUDP(5, func(h *Host, ip packet.IPv4Header, udp packet.UDPHeader, payload []byte) {
		h.SendUDP(ip.Src, udp.DstPort, udp.SrcPort, 64, ecn.NotECT, nil)
	})
	h1.BindUDP(6, func(h *Host, ip packet.IPv4Header, udp packet.UDPHeader, payload []byte) {})
	h1.SendUDP(h2.Addr(), 6, 5, 64, ecn.NotECT, nil)
	sim.Run()
	if len(dirs) != 2 || dirs[0] != TapOut || dirs[1] != TapIn {
		t.Errorf("tap directions = %v", dirs)
	}
}

func TestDuplicateHostAddressRejected(t *testing.T) {
	n := NewNetwork(NewSim(1))
	addr := packet.AddrFrom4(10, 0, 0, 1)
	if _, err := n.AddHost("a", addr); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddHost("b", addr); err == nil {
		t.Error("duplicate address accepted")
	}
}

func TestDoubleAttachRejected(t *testing.T) {
	sim := NewSim(1)
	n := NewNetwork(sim)
	r := n.AddRouter("r", packet.AddrFrom4(10, 255, 0, 1), 1)
	h, _ := n.AddHost("h", packet.AddrFrom4(10, 0, 0, 1))
	if _, err := n.Attach(h, r, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(h, r, 0, 0); err == nil {
		t.Error("double attach accepted")
	}
}

func TestBindUDPDuplicate(t *testing.T) {
	sim := NewSim(1)
	n := NewNetwork(sim)
	h, _ := n.AddHost("h", packet.AddrFrom4(10, 0, 0, 1))
	if _, err := h.BindUDP(123, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.BindUDP(123, nil); err == nil {
		t.Error("duplicate bind accepted")
	}
	h.UnbindUDP(123)
	if _, err := h.BindUDP(123, nil); err != nil {
		t.Errorf("rebind after unbind failed: %v", err)
	}
}

func TestEphemeralPortsDistinct(t *testing.T) {
	sim := NewSim(1)
	n := NewNetwork(sim)
	h, _ := n.AddHost("h", packet.AddrFrom4(10, 0, 0, 1))
	seen := map[uint16]bool{}
	for i := 0; i < 100; i++ {
		p, err := h.BindUDP(0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if p < 49152 {
			t.Fatalf("ephemeral port %d below dynamic range", p)
		}
		if seen[p] {
			t.Fatalf("port %d handed out twice", p)
		}
		seen[p] = true
	}
}

func TestPathRouters(t *testing.T) {
	sim := NewSim(1)
	n, h1, h2, routers := lineTopology(t, sim, 4, 0)
	path, err := n.PathRouters(h1, h2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 {
		t.Fatalf("path length = %d, want 4", len(path))
	}
	for i, r := range path {
		if r != routers[i] {
			t.Errorf("hop %d = %s", i, r.Label())
		}
	}
}

func TestICMPReplyRoutesToHostBehindSameFabric(t *testing.T) {
	// Regression: ICMP from an interior router must route back to the
	// origin host even though the router is not adjacent to it.
	sim := NewSim(1)
	_, h1, h2, _ := lineTopology(t, sim, 6, time.Millisecond)
	count := 0
	h1.OnICMP(func(h *Host, ip packet.IPv4Header, msg packet.ICMPMessage) { count++ })
	for ttlv := 1; ttlv <= 5; ttlv++ {
		h1.SendUDP(h2.Addr(), 40000, 33434, uint8(ttlv), ecn.ECT0, nil)
	}
	sim.Run()
	if count != 5 {
		t.Errorf("got %d time-exceeded replies, want 5", count)
	}
}

func TestRouterAddressedPacketAbsorbed(t *testing.T) {
	sim := NewSim(1)
	_, h1, _, routers := lineTopology(t, sim, 3, 0)
	// Send to the middle router's own address: must be absorbed quietly.
	h1.SendUDP(routers[1].Addr(), 1, 2, 64, ecn.NotECT, nil)
	sim.Run()
	if routers[1].Forwarded != 0 {
		t.Error("router forwarded a packet addressed to itself")
	}
}

func TestNoRouteCounter(t *testing.T) {
	sim := NewSim(1)
	_, h1, _, routers := lineTopology(t, sim, 2, 0)
	h1.SendUDP(packet.AddrFrom4(203, 0, 113, 99), 1, 2, 64, ecn.NotECT, nil)
	sim.Run()
	if routers[0].NoRouteDrops != 1 {
		t.Errorf("NoRouteDrops = %d", routers[0].NoRouteDrops)
	}
}
