package netsim

import (
	"math/bits"
	"time"
)

// Hierarchical timing wheel: the Sim's default scheduler.
//
// The wheel trades the binary heap's O(log n) sift per operation for
// O(1) amortized insert and fire. Level l has 256 slots of 2^(8l) ns
// each; an event is filed at the lowest level whose current window
// contains its timestamp — equivalently, at the level of the highest
// byte in which the timestamp differs from the cursor. As the cursor
// reaches a higher-level slot, the slot cascades: its events re-file
// into finer levels, each event moving down at most wheelLevels-1 times
// over its whole life. Eight levels cover the full non-negative
// time.Duration range, so nothing ever falls off the end.
//
// Ordering is exactly the heap's (at, seq): a level-0 slot spans a
// single nanosecond, so everything in it shares one timestamp, and the
// drain orders those events by their FIFO sequence number before they
// fire. A slot chain is intrusive (event.next indexes the slab), the
// slot heads and occupancy bitmaps are fixed arrays, and the due buffer
// is reused, so steady-state scheduling allocates nothing.
//
// Two invariants keep lookups O(1) and exact:
//
//   - The cursor only advances inside wheelPop, to the timestamp of the
//     event being fired — never past the Sim clock. Peeking computes the
//     earliest pending time without moving anything, so RunUntil can
//     stop at a deadline and later insertions between the deadline and
//     the next event still file correctly.
//   - A level's own cursor slot is always empty: insertion files
//     same-window events at a lower level, and the cascade empties a
//     slot before the cursor enters it.
type timingWheel struct {
	// cur is the wheel's reference time: the timestamp of the last fired
	// event. All pending events are at cur or later.
	cur time.Duration
	// slot heads per (level, slot): slab index of an intrusive chain,
	// -1 when empty. Chains are unordered; drains sort by seq.
	slot [wheelLevels][wheelSlots]int32
	// occ mirrors slot occupancy, one bit per slot, for O(1) next-slot
	// scans.
	occ [wheelLevels][wheelSlots / 64]uint64
	// occupied counts a level's non-empty slots, so the advance loop
	// skips empty levels with one integer test instead of a bitmap scan
	// — the common case on sparse timelines, where consecutive events
	// sit whole windows apart. totalOcc sums the levels for an O(1)
	// wheel-empty test.
	occupied [wheelLevels]int32
	totalOcc int32
	// reg is the singleton register: when the wheel is otherwise empty,
	// a newly scheduled event parks here (slab index, -1 when vacant)
	// instead of filing into a slot. On the sparse stretches a campaign
	// spends most virtual time in — one pending timer, fired, replaced —
	// schedule and pop become a register store and load, with no slot,
	// bitmap or cascade work at all. A second insertion spills the
	// register into the slots first, so the register never reorders
	// anything: it is only ever the sole pending event.
	reg int32
	// due is the drained batch for the instant dueAt, ordered by seq;
	// duePos is the read cursor. The backing array is reused.
	due    []int32
	duePos int
	dueAt  time.Duration

	// Flight-recorder counters (plain uint64s — the wheel is owned by
	// one goroutine, and these must cost one increment, not an atomic):
	// cascades counts higher-level slots re-filed into finer levels,
	// registerHits the pops served straight from the singleton
	// register. Exposed via Sim.WheelStats; the campaign engine flushes
	// them into telemetry counters after each shard completes, so the
	// accounting never touches the event loop's control flow.
	cascades     uint64
	registerHits uint64
}

const (
	wheelLevelBits = 8
	wheelSlots     = 1 << wheelLevelBits
	wheelMask      = wheelSlots - 1
	wheelLevels    = 8
)

func newTimingWheel() *timingWheel {
	w := &timingWheel{reg: -1}
	for l := range w.slot {
		for i := range w.slot[l] {
			w.slot[l][i] = -1
		}
	}
	return w
}

// levelSlot places timestamp t relative to the cursor: the level of the
// highest differing byte, and t's slot index at that level.
func (w *timingWheel) levelSlot(t time.Duration) (int, int) {
	diff := uint64(t) ^ uint64(w.cur)
	lvl := 0
	if diff != 0 {
		lvl = (bits.Len64(diff) - 1) >> 3
	}
	return lvl, int(uint64(t)>>(lvl*wheelLevelBits)) & wheelMask
}

// wheelInsert files event idx (with ev.at already set) into the wheel.
// schedule has clamped ev.at to the Sim clock, which is never behind the
// cursor, so t >= w.cur always holds. An event arriving at an otherwise
// empty wheel parks in the singleton register; a second arrival spills
// the register into the slots before filing, preserving exact order.
func (s *Sim) wheelInsert(idx int32, t time.Duration) {
	w := s.wheel
	if w.reg >= 0 {
		r := w.reg
		w.reg = -1
		s.wheelFile(r, s.slab[r].at)
	} else if w.totalOcc == 0 && w.duePos >= len(w.due) {
		w.reg = idx
		return
	}
	s.wheelFile(idx, t)
}

// wheelFile places an event into its slot chain. The cascade refiles
// through here directly: mid-cascade the slots may look empty, and a
// refile must never detour into the register.
func (s *Sim) wheelFile(idx int32, t time.Duration) {
	w := s.wheel
	lvl, slot := w.levelSlot(t)
	if w.slot[lvl][slot] < 0 {
		w.occupied[lvl]++
		w.totalOcc++
		w.occ[lvl][slot>>6] |= 1 << (slot & 63)
	}
	s.slab[idx].next = w.slot[lvl][slot]
	w.slot[lvl][slot] = idx
}

// scanOcc returns the first occupied slot index >= from at level lvl, or
// -1 when the rest of the level is empty.
func (w *timingWheel) scanOcc(lvl, from int) int {
	word := from >> 6
	b := w.occ[lvl][word] &^ ((1 << (from & 63)) - 1)
	for {
		if b != 0 {
			return word<<6 + bits.TrailingZeros64(b)
		}
		word++
		if word >= wheelSlots/64 {
			return -1
		}
		b = w.occ[lvl][word]
	}
}

// takeChain detaches and returns a slot's chain head.
func (w *timingWheel) takeChain(lvl, slot int) int32 {
	head := w.slot[lvl][slot]
	if head >= 0 {
		w.occupied[lvl]--
		w.totalOcc--
		w.occ[lvl][slot>>6] &^= 1 << (slot & 63)
	}
	w.slot[lvl][slot] = -1
	return head
}

// wheelPop removes and returns the earliest pending event. Cancelled
// events are returned too (Step recycles them), exactly as the heap
// does.
func (s *Sim) wheelPop() (int32, time.Duration, bool) {
	w := s.wheel
	for {
		if w.duePos < len(w.due) {
			idx := w.due[w.duePos]
			w.duePos++
			return idx, w.dueAt, true
		}
		if w.reg >= 0 {
			// The register is the sole pending event by invariant.
			idx := w.reg
			w.reg = -1
			w.registerHits++
			at := s.slab[idx].at
			if at > w.cur {
				w.cur = at
			}
			return idx, at, true
		}
		if !s.wheelAdvance() {
			// The wheel is empty. Chasing cancelled events may have
			// carried the cursor past the Sim clock (their timestamps,
			// not the clock, drove the advance); rewind it so events
			// scheduled from here on — at or after the clock — file
			// ahead of the cursor, where scans look.
			w.cur = s.now
			return 0, 0, false
		}
	}
}

// wheelAdvance moves the cursor to the next occupied instant and fills
// the due buffer with that instant's events in seq order. It reports
// false when the wheel is empty.
func (s *Sim) wheelAdvance() bool {
	w := s.wheel
	for {
		// Level 0 first: an occupied slot at or after the cursor within
		// the current 256ns window is the exact next instant.
		if w.occupied[0] > 0 {
			if slot := w.scanOcc(0, int(uint64(w.cur)&wheelMask)); slot >= 0 {
				t := time.Duration(uint64(w.cur)&^uint64(wheelMask) | uint64(slot))
				w.cur = t
				s.wheelDrain(slot, t)
				return true
			}
		}
		// Level 0 exhausted for this window: cascade the next occupied
		// higher-level slot down and retry. Checking levels lowest-first
		// is correct because level l's remaining window precedes level
		// l+1's next slot in time; the occupancy counts skip empty
		// levels without touching their bitmaps.
		cascaded := false
		for lvl := 1; lvl < wheelLevels; lvl++ {
			if w.occupied[lvl] == 0 {
				continue
			}
			shift := uint(lvl * wheelLevelBits)
			from := int(uint64(w.cur)>>shift)&wheelMask + 1
			if from >= wheelSlots {
				continue
			}
			slot := w.scanOcc(lvl, from)
			if slot < 0 {
				continue
			}
			// Enter the slot: purge its dead entries, jump the cursor
			// straight to the earliest live timestamp inside (every
			// entry shares the slot's window, so all remain ahead of
			// the new cursor), and re-file the chain relative to it.
			// The jump puts the earliest event — and, on the sparse
			// timelines discrete-event simulations produce, usually the
			// whole chain — directly into level 0, one re-file instead
			// of one per intervening level.
			var live int32 = -1
			minAt := time.Duration(0)
			for idx := w.takeChain(lvl, slot); idx >= 0; {
				next := s.slab[idx].next
				if s.slab[idx].dead() {
					s.recycle(idx)
				} else {
					if live < 0 || s.slab[idx].at < minAt {
						minAt = s.slab[idx].at
					}
					s.slab[idx].next = live
					live = idx
				}
				idx = next
			}
			w.cascades++
			if live >= 0 {
				w.cur = minAt
				for idx := live; idx >= 0; {
					next := s.slab[idx].next
					s.wheelFile(idx, s.slab[idx].at)
					idx = next
				}
				cascaded = true
			} else {
				cascaded = true // chain was all dead; rescan from here
			}
			break
		}
		if !cascaded {
			return false
		}
	}
}

// wheelDrain empties level-0 slot (whose events all share timestamp t)
// into the due buffer in seq order. Chains are near-sorted: a chain is
// reverse insertion order, so reversing it restores ascending seq except
// where a cascade interleaved older events; the insertion sort then does
// almost no work.
func (s *Sim) wheelDrain(slot int, t time.Duration) {
	w := s.wheel
	w.due = w.due[:0]
	w.duePos = 0
	w.dueAt = t
	for idx := w.takeChain(0, slot); idx >= 0; {
		next := s.slab[idx].next
		w.due = append(w.due, idx)
		idx = next
	}
	// Reverse to insertion order.
	for i, j := 0, len(w.due)-1; i < j; i, j = i+1, j-1 {
		w.due[i], w.due[j] = w.due[j], w.due[i]
	}
	// Insertion sort by seq for the cascade-interleaved stragglers.
	for i := 1; i < len(w.due); i++ {
		e := w.due[i]
		seq := s.slab[e].seq
		j := i - 1
		for j >= 0 && s.slab[w.due[j]].seq > seq {
			w.due[j+1] = w.due[j]
			j--
		}
		w.due[j+1] = e
	}
}

// wheelPeek returns the earliest live pending timestamp without moving
// the cursor, purging cancelled events it touches (mirroring the heap
// path's peekLive so RunUntil sees true deadlines).
func (s *Sim) wheelPeek() (time.Duration, bool) {
	w := s.wheel
	// Pending due entries are at dueAt; purge dead ones from the front.
	for w.duePos < len(w.due) {
		idx := w.due[w.duePos]
		if !s.slab[idx].dead() {
			return w.dueAt, true
		}
		s.recycle(idx)
		w.duePos++
	}
	if w.reg >= 0 {
		if !s.slab[w.reg].dead() {
			return s.slab[w.reg].at, true
		}
		s.recycle(w.reg)
		w.reg = -1
	}
	// Level 0: the first occupied slot's time is exact.
	from := int(uint64(w.cur) & wheelMask)
	for w.occupied[0] > 0 {
		slot := w.scanOcc(0, from)
		if slot < 0 {
			break
		}
		if w.purgeDead(s, 0, slot) {
			return time.Duration(uint64(w.cur)&^uint64(wheelMask) | uint64(slot)), true
		}
		from = slot + 1
		if from >= wheelSlots {
			break
		}
	}
	// Higher levels: the first occupied slot at the lowest such level
	// contains the earliest events; scan its chain for the live minimum.
	for lvl := 1; lvl < wheelLevels; lvl++ {
		if w.occupied[lvl] == 0 {
			continue
		}
		shift := uint(lvl * wheelLevelBits)
		from := int(uint64(w.cur)>>shift)&wheelMask + 1
		for from < wheelSlots {
			slot := w.scanOcc(lvl, from)
			if slot < 0 {
				break
			}
			if !w.purgeDead(s, lvl, slot) {
				from = slot + 1
				continue
			}
			best := time.Duration(-1)
			for idx := w.slot[lvl][slot]; idx >= 0; idx = s.slab[idx].next {
				if at := s.slab[idx].at; best < 0 || at < best {
					best = at
				}
			}
			return best, true
		}
	}
	return 0, false
}

// purgeDead unlinks cancelled events from a slot chain, recycling them,
// and reports whether the slot still holds live events.
func (w *timingWheel) purgeDead(s *Sim, lvl, slot int) bool {
	idx := w.slot[lvl][slot]
	var prev int32 = -1
	for idx >= 0 {
		next := s.slab[idx].next
		if s.slab[idx].dead() {
			if prev < 0 {
				w.slot[lvl][slot] = next
			} else {
				s.slab[prev].next = next
			}
			s.recycle(idx)
		} else {
			prev = idx
		}
		idx = next
	}
	if w.slot[lvl][slot] < 0 {
		w.occupied[lvl]--
		w.totalOcc--
		w.occ[lvl][slot>>6] &^= 1 << (slot & 63)
		return false
	}
	return true
}
