package netsim

import (
	"time"
)

// Node is anything attached to the network that can receive packets:
// hosts and routers.
type Node interface {
	// Receive handles a delivered wire-format IPv4 datagram. The slice is
	// owned by the receiver.
	Receive(wire []byte, from *Link)
	// Label names the node for reports and traces.
	Label() string
}

// Link is a bidirectional point-to-point link with independent delay and
// loss in each direction. Loss is decided at transmission time from the
// simulation PRNG, which keeps runs reproducible.
type Link struct {
	sim  *Sim
	a, b Node
	// Directional properties, indexed by direction (a→b = 0, b→a = 1).
	delay [2]time.Duration
	loss  [2]float64

	// Counters for analysis and capacity tests.
	sent    [2]uint64
	dropped [2]uint64
}

// newLink wires two nodes together. Use Network helpers instead of
// constructing links directly.
func newLink(sim *Sim, a, b Node, delay time.Duration, loss float64) *Link {
	return &Link{
		sim:   sim,
		a:     a,
		b:     b,
		delay: [2]time.Duration{delay, delay},
		loss:  [2]float64{loss, loss},
	}
}

// Peer returns the node on the other end from n.
func (l *Link) Peer(n Node) Node {
	if n == l.a {
		return l.b
	}
	return l.a
}

// SetLoss sets the loss probability for packets transmitted by from. The
// campaign uses this to model per-trace variation (wireless jitter, the
// congested home access link).
func (l *Link) SetLoss(from Node, p float64) {
	l.loss[l.dir(from)] = p
}

// SetLossBoth sets loss in both directions.
func (l *Link) SetLossBoth(p float64) {
	l.loss[0], l.loss[1] = p, p
}

// SetDelay sets the one-way delay for packets transmitted by from.
func (l *Link) SetDelay(from Node, d time.Duration) {
	l.delay[l.dir(from)] = d
}

// Loss returns the loss probability for packets transmitted by from.
func (l *Link) Loss(from Node) float64 { return l.loss[l.dir(from)] }

// Delay returns the one-way delay for packets transmitted by from.
func (l *Link) Delay(from Node) time.Duration { return l.delay[l.dir(from)] }

// Stats returns packets sent and dropped in the from→peer direction.
func (l *Link) Stats(from Node) (sent, dropped uint64) {
	d := l.dir(from)
	return l.sent[d], l.dropped[d]
}

func (l *Link) dir(from Node) int {
	if from == l.a {
		return 0
	}
	if from == l.b {
		return 1
	}
	panic("netsim: node not on link " + from.Label())
}

// Send transmits wire from the given endpoint. The packet is delivered to
// the peer after the link delay unless the loss draw discards it. Send
// takes ownership of wire.
func (l *Link) Send(from Node, wire []byte) {
	d := l.dir(from)
	l.sent[d]++
	if l.loss[d] > 0 && l.sim.rng.Float64() < l.loss[d] {
		l.dropped[d]++
		return
	}
	to := l.b
	if d == 1 {
		to = l.a
	}
	l.sim.After(l.delay[d], func() { to.Receive(wire, l) })
}
