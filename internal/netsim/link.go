package netsim

import (
	"time"

	"repro/internal/aqm"
	"repro/internal/packet"
)

// Node is anything attached to the network that can receive packets:
// hosts and routers.
type Node interface {
	// Receive handles a delivered wire-format IPv4 datagram. The buffer
	// reference is owned by the receiver: forward it (transferring
	// ownership again) or Release it when done.
	Receive(b *packet.Buf, from *Link)
	// Label names the node for reports and traces.
	Label() string
}

// Link is a bidirectional point-to-point link with independent delay and
// loss in each direction. Loss is decided at transmission time from the
// simulation PRNG, which keeps runs reproducible.
//
// A direction is by default an infinite-rate pipe: packets depart
// immediately and arrive after the propagation delay — the exact
// behaviour of the pre-congestion substrate, preserved byte-for-byte so
// uncongested campaigns regenerate identical datasets. SetBottleneck
// gives a direction a finite serialization rate and an AQM queue;
// packets then queue when offered load exceeds capacity, and the queue's
// discipline may CE-mark or drop them.
type Link struct {
	sim  *Sim
	a, b Node
	// Directional properties, indexed by direction (a→b = 0, b→a = 1).
	delay [2]time.Duration
	loss  [2]float64
	bneck [2]*bottleneck

	// Counters for analysis and capacity tests.
	sent    [2]uint64
	dropped [2]uint64
}

// newLink wires two nodes together. Use Network helpers instead of
// constructing links directly.
func newLink(sim *Sim, a, b Node, delay time.Duration, loss float64) *Link {
	return &Link{
		sim:   sim,
		a:     a,
		b:     b,
		delay: [2]time.Duration{delay, delay},
		loss:  [2]float64{loss, loss},
	}
}

// Peer returns the node on the other end from n.
func (l *Link) Peer(n Node) Node {
	if n == l.a {
		return l.b
	}
	return l.a
}

// SetLoss sets the loss probability for packets transmitted by from. The
// campaign uses this to model per-trace variation (wireless jitter, the
// congested home access link).
func (l *Link) SetLoss(from Node, p float64) {
	l.loss[l.dir(from)] = p
}

// SetLossBoth sets loss in both directions.
func (l *Link) SetLossBoth(p float64) {
	l.loss[0], l.loss[1] = p, p
}

// SetDelay sets the one-way delay for packets transmitted by from.
func (l *Link) SetDelay(from Node, d time.Duration) {
	l.delay[l.dir(from)] = d
}

// Loss returns the loss probability for packets transmitted by from.
func (l *Link) Loss(from Node) float64 { return l.loss[l.dir(from)] }

// Delay returns the one-way delay for packets transmitted by from.
func (l *Link) Delay(from Node) time.Duration { return l.delay[l.dir(from)] }

// Stats returns packets sent and dropped in the from→peer direction.
// Dropped covers both random loss draws and AQM queue drops; the queue's
// own Stats break the latter down.
func (l *Link) Stats(from Node) (sent, dropped uint64) {
	d := l.dir(from)
	return l.sent[d], l.dropped[d]
}

func (l *Link) dir(from Node) int {
	if from == l.a {
		return 0
	}
	if from == l.b {
		return 1
	}
	panic("netsim: node not on link " + from.Label())
}

// peerOf returns the receiving node for direction d.
func (l *Link) peerOf(d int) Node {
	if d == 1 {
		return l.a
	}
	return l.b
}

// Send transmits a wire buffer from the given endpoint. The packet is
// delivered to the peer after the link delay unless the loss draw
// discards it, or — on a bottlenecked direction — the AQM queue drops
// it. Send takes ownership of the caller's buffer reference.
func (l *Link) Send(from Node, b *packet.Buf) {
	d := l.dir(from)
	l.sent[d]++
	if l.loss[d] > 0 && l.sim.rng.Float64() < l.loss[d] {
		l.dropped[d]++
		b.Release()
		return
	}
	to := l.peerOf(d)
	bn := l.bneck[d]
	if bn == nil {
		// Infinite-rate path: identical to the pre-congestion substrate.
		l.sim.deliverAfter(l.delay[d], to, b, l)
		return
	}
	l.injectBackground(d)
	// Background stays active for a grace period past the last foreground
	// packet: cross traffic contends with the measurement while it runs,
	// then quenches so the simulation can drain (the same reason the RTP
	// receiver self-quenches its feedback timer).
	bn.fgUntil = l.sim.Now() + bgGrace
	// The queue owns the packet from here: a false return means the
	// discipline dropped — and already freed — it.
	if !bn.q.Enqueue(l.sim.Now(), aqm.NewPacket(b)) {
		l.dropped[d]++
	}
	// Serve the queue even when this packet was dropped: the injected
	// background must drain through the transmitter regardless.
	l.startTx(d)
}

// --- bottleneck ----------------------------------------------------------

// Background cross-traffic model: phantom packets of bgPacketSize bytes
// arrive in periodic on/off bursts at bgPeakFactor × the link rate, with
// the on fraction chosen so the mean offered load equals the configured
// utilization. Bursty (rather than fluid-smooth) arrivals are what make
// the queue's operating point — and therefore the CE-mark ratio — vary
// smoothly with utilization instead of stepping at 1.0.
const (
	bgPacketSize = 512
	bgPeriod     = 500 * time.Millisecond
	bgPeakFactor = 1.5
	bgGrace      = bgPeriod // background lifetime past the last foreground packet
)

// bottleneck models a finite-rate transmitter with an AQM queue and
// optional phantom background load on one link direction.
type bottleneck struct {
	rate float64 // serialization rate, bytes/sec
	util float64 // background offered load as a fraction of rate
	q    aqm.Queue

	busy       bool          // a serialization event is in flight
	lastInject time.Duration // background accounted up to here
	credit     float64       // fractional background bytes carried over
	fgUntil    time.Duration // background active until here (foreground + grace)

	// txPkt is the packet on the wire; txDone is the serialization-
	// boundary callback, bound once at SetBottleneck so per-packet
	// transmission schedules no new closure.
	txPkt  *aqm.Packet
	txDone func()
}

// SetBottleneck attaches a serialization-rate bottleneck with AQM queue
// q to the from→peer direction. rate is in bytes/sec; utilization adds
// phantom background cross-traffic at utilization×rate mean offered
// load (0 = the direction carries only foreground traffic). Passing a
// nil queue or non-positive rate removes the bottleneck, restoring the
// infinite-rate behaviour.
func (l *Link) SetBottleneck(from Node, rate, utilization float64, q aqm.Queue) {
	d := l.dir(from)
	if q == nil || rate <= 0 {
		l.bneck[d] = nil
		return
	}
	bn := &bottleneck{rate: rate, util: utilization, q: q, lastInject: l.sim.Now()}
	bn.txDone = func() { l.finishTx(d, bn) }
	l.bneck[d] = bn
}

// BottleneckQueue returns the AQM queue shaping the from→peer
// direction, or nil when the direction is an infinite-rate pipe.
func (l *Link) BottleneckQueue(from Node) aqm.Queue {
	if bn := l.bneck[l.dir(from)]; bn != nil {
		return bn.q
	}
	return nil
}

// startTx begins serializing the queue head if the transmitter is idle.
// Each serialization boundary is an event: dequeue, hold the wire for
// size/rate, then hand the packet to propagation and pick up the next.
func (l *Link) startTx(d int) {
	bn := l.bneck[d]
	if bn.busy {
		return
	}
	// CoDel discards not-ECT heads inside Dequeue; surface those in the
	// link's drop counter so Stats stays truthful for every discipline.
	before := bn.q.Stats().WireNotECTDropped
	p, ok := bn.q.Dequeue(l.sim.Now())
	l.dropped[d] += bn.q.Stats().WireNotECTDropped - before
	if !ok {
		return
	}
	bn.busy = true
	bn.txPkt = p
	tx := time.Duration(float64(p.Size) / bn.rate * float64(time.Second))
	l.sim.After(tx, bn.txDone)
}

// finishTx is the serialization boundary: hand the transmitted packet
// to propagation and pick up the next queued one.
func (l *Link) finishTx(d int, bn *bottleneck) {
	// The bottleneck may have been replaced or removed while this
	// packet was on the wire; only touch shared state if it is
	// still the live one. The packet itself still delivers.
	live := l.bneck[d] == bn
	if live {
		l.injectBackground(d) // the elapsed interval was a busy one
	}
	bn.busy = false
	p := bn.txPkt
	bn.txPkt = nil
	if !p.Phantom() {
		l.sim.deliverAfter(l.delay[d], l.peerOf(d), p.TakeBuf(), l)
	} else {
		p.Free()
	}
	if live {
		l.startTx(d)
	}
}

// injectBackground brings the phantom cross-traffic up to date. It runs
// lazily at every enqueue and serialization boundary, so the background
// process needs no events of its own and a drained simulation really is
// finished. While the transmitter is busy, all arrivals since the last
// update join the queue (its discipline decides their fate); across an
// idle gap the queue was empty and draining faster than background
// arrived, so only the net backlog of the recent burst pattern is
// reconstructed.
func (l *Link) injectBackground(d int) {
	bn := l.bneck[d]
	now := l.sim.Now()
	// Background only arrives while foreground keeps it alive; beyond
	// fgUntil the cross-traffic source has quenched.
	end := min(now, bn.fgUntil)
	if bn.util <= 0 || end <= bn.lastInject {
		if bn.util <= 0 || !bn.busy {
			// The queue drained anything older; restart accounting here.
			bn.lastInject = now
			bn.credit = 0
		}
		return
	}
	var bytes float64
	if bn.busy {
		bytes = bn.credit + bn.arrivalBytes(bn.lastInject, end)
	} else {
		backlog := bn.idleBacklog(bn.lastInject, end)
		// Anything accumulated by the quench point drains at line rate
		// until now.
		backlog -= bn.rate * (now - end).Seconds()
		if backlog < 0 {
			backlog = 0
		}
		bytes = backlog
	}
	bn.lastInject = now
	n := int(bytes / bgPacketSize)
	bn.credit = bytes - float64(n)*bgPacketSize
	for i := 0; i < n; i++ {
		bn.q.Enqueue(now, aqm.NewPhantom(bgPacketSize))
	}
}

// arrivalBytes integrates the background arrival process over [t1, t2).
func (bn *bottleneck) arrivalBytes(t1, t2 time.Duration) float64 {
	if bn.util >= bgPeakFactor {
		// Saturated: constant arrivals at util×rate.
		return bn.util * bn.rate * (t2 - t1).Seconds()
	}
	phi := bn.util / bgPeakFactor // on fraction of each period
	on := time.Duration(phi * float64(bgPeriod))
	var active time.Duration
	for k := t1 / bgPeriod; ; k++ {
		start := k * bgPeriod
		if start >= t2 {
			break
		}
		s, e := start, start+on
		if s < t1 {
			s = t1
		}
		if e > t2 {
			e = t2
		}
		if e > s {
			active += e - s
		}
	}
	return bgPeakFactor * bn.rate * active.Seconds()
}

// idleBacklog reconstructs the fluid backlog the background alone would
// have built by t2, starting from the empty queue the idle transmitter
// implies at t1: bursts grow it at (peak − 1)×rate, off periods drain it
// at the full rate, clamped to the buffer. Only recent history can
// matter under the clamp, so the window is bounded.
func (bn *bottleneck) idleBacklog(t1, t2 time.Duration) float64 {
	capBytes := float64(bn.q.Cap()) * bgPacketSize
	if bn.util >= bgPeakFactor {
		growth := (bn.util - 1) * bn.rate * (t2 - t1).Seconds()
		if growth > capBytes {
			return capBytes
		}
		if growth < 0 {
			return 0
		}
		return growth
	}
	if t2-t1 > 64*bgPeriod {
		t1 = t2 - 64*bgPeriod
	}
	phi := bn.util / bgPeakFactor
	on := time.Duration(phi * float64(bgPeriod))
	backlog := 0.0
	step := func(dt time.Duration, arrivalRate float64) {
		backlog += (arrivalRate - bn.rate) * dt.Seconds()
		if backlog < 0 {
			backlog = 0
		}
		if backlog > capBytes {
			backlog = capBytes
		}
	}
	for k := t1 / bgPeriod; ; k++ {
		start := k * bgPeriod
		if start >= t2 {
			break
		}
		// On phase [start, start+on), then off phase.
		s, e := max(t1, start), min(t2, start+on)
		if e > s {
			step(e-s, bgPeakFactor*bn.rate)
		}
		s, e = max(t1, start+on), min(t2, start+bgPeriod)
		if e > s {
			step(e-s, 0)
		}
	}
	return backlog
}
