package netsim

import (
	"time"

	"repro/internal/aqm"
	"repro/internal/packet"
)

// Node is anything attached to the network that can receive packets:
// hosts and routers.
type Node interface {
	// Receive handles a delivered wire-format IPv4 datagram. The buffer
	// reference is owned by the receiver: forward it (transferring
	// ownership again) or Release it when done.
	Receive(b *packet.Buf, from *Link)
	// Label names the node for reports and traces.
	Label() string
}

// Link is a bidirectional point-to-point link with independent delay and
// loss in each direction. Loss is decided at transmission time from the
// simulation PRNG, which keeps runs reproducible.
//
// A direction is by default an infinite-rate pipe: packets depart
// immediately and arrive after the propagation delay — the exact
// behaviour of the pre-congestion substrate, preserved byte-for-byte so
// uncongested campaigns regenerate identical datasets. SetBottleneck
// gives a direction a finite serialization rate and an AQM queue;
// packets then queue when offered load exceeds capacity, and the queue's
// discipline may CE-mark or drop them.
type Link struct {
	sim  *Sim
	a, b Node
	// Directional properties, indexed by direction (a→b = 0, b→a = 1).
	delay [2]time.Duration
	loss  [2]float64
	bneck [2]*bottleneck

	// Counters for analysis and capacity tests.
	sent    [2]uint64
	dropped [2]uint64
}

// newLink wires two nodes together. Use Network helpers instead of
// constructing links directly.
func newLink(sim *Sim, a, b Node, delay time.Duration, loss float64) *Link {
	return &Link{
		sim:   sim,
		a:     a,
		b:     b,
		delay: [2]time.Duration{delay, delay},
		loss:  [2]float64{loss, loss},
	}
}

// Peer returns the node on the other end from n.
func (l *Link) Peer(n Node) Node {
	if n == l.a {
		return l.b
	}
	return l.a
}

// SetLoss sets the loss probability for packets transmitted by from. The
// campaign uses this to model per-trace variation (wireless jitter, the
// congested home access link).
func (l *Link) SetLoss(from Node, p float64) {
	l.loss[l.dir(from)] = p
}

// SetLossBoth sets loss in both directions.
func (l *Link) SetLossBoth(p float64) {
	l.loss[0], l.loss[1] = p, p
}

// SetDelay sets the one-way delay for packets transmitted by from.
func (l *Link) SetDelay(from Node, d time.Duration) {
	l.delay[l.dir(from)] = d
}

// Loss returns the loss probability for packets transmitted by from.
func (l *Link) Loss(from Node) float64 { return l.loss[l.dir(from)] }

// Delay returns the one-way delay for packets transmitted by from.
func (l *Link) Delay(from Node) time.Duration { return l.delay[l.dir(from)] }

// Stats returns packets sent and dropped in the from→peer direction.
// Dropped covers both random loss draws and AQM queue drops; the queue's
// own Stats break the latter down.
func (l *Link) Stats(from Node) (sent, dropped uint64) {
	d := l.dir(from)
	return l.sent[d], l.dropped[d]
}

func (l *Link) dir(from Node) int {
	if from == l.a {
		return 0
	}
	if from == l.b {
		return 1
	}
	panic("netsim: node not on link " + from.Label())
}

// peerOf returns the receiving node for direction d.
func (l *Link) peerOf(d int) Node {
	if d == 1 {
		return l.a
	}
	return l.b
}

// Send transmits a wire buffer from the given endpoint. The packet is
// delivered to the peer after the link delay unless the loss draw
// discards it, or — on a bottlenecked direction — the AQM queue drops
// it. Send takes ownership of the caller's buffer reference.
func (l *Link) Send(from Node, b *packet.Buf) {
	d := l.dir(from)
	l.sent[d]++
	if l.loss[d] > 0 && l.sim.rng.Float64() < l.loss[d] {
		l.dropped[d]++
		b.Release()
		return
	}
	to := l.peerOf(d)
	bn := l.bneck[d]
	if bn == nil {
		// Infinite-rate path: identical to the pre-congestion substrate.
		l.sim.deliverAfter(l.delay[d], to, b, l)
		return
	}
	now := l.sim.Now()
	l.injectBackground(bn, now)
	// Background stays active for a grace period past the last foreground
	// packet: cross traffic contends with the measurement while it runs,
	// then quenches so the simulation can drain (the same reason the RTP
	// receiver self-quenches its feedback timer).
	bn.fgUntil = now + bgGrace
	p := aqm.NewPacket(b)
	sz := p.Size
	// The queue owns the packet from here: a false return means the
	// discipline dropped — and already freed — it.
	if !bn.q.Enqueue(now, p) {
		l.dropped[d]++
		// Serve the queue even when this packet was dropped: the injected
		// background must drain through the transmitter regardless.
		l.serveQueue(bn, now)
		return
	}
	bn.fgCount++
	bn.pendingTx += txDuration(sz, bn.rate)
	if !l.sim.xtrafficEvents && !bn.precise && bn.busy && !bn.evented {
		// Hybrid (head-dropping discipline): a foreground packet is now
		// in the system, so the in-flight virtual boundary converts to a
		// real event — carrying the seq it reserved when serialization
		// began, where the events mode would have scheduled it.
		bn.evented = true
		l.sim.unregisterLazy(bn)
		l.sim.atWithSeq(bn.busyUntil, bn.virtSeq, bn.txDone)
	}
	l.serveQueue(bn, now)
	if !l.sim.xtrafficEvents && bn.precise {
		// Lazy precise drive: the discipline never drops at dequeue and
		// the transmitter never idles with a backlog, so this packet's
		// serialization finish is exactly the in-flight boundary plus the
		// per-packet serialization times of everything queued — one event
		// for the whole passage, however many phantoms precede it. The
		// event carries a sentinel seq: the shared counter is consumed
		// when serialization actually begins (beginTx), where the events
		// mode consumes it, so no other seq shifts.
		l.sim.atWithSeq(bn.busyUntil+bn.pendingTx, l.sim.sentinelSeq(), bn.fgDone)
	}
}

// --- bottleneck ----------------------------------------------------------

// Background cross-traffic model: phantom packets of bgPacketSize bytes
// arrive in periodic on/off bursts at bgPeakFactor × the link rate, with
// the on fraction chosen so the mean offered load equals the configured
// utilization. Bursty (rather than fluid-smooth) arrivals are what make
// the queue's operating point — and therefore the CE-mark ratio — vary
// smoothly with utilization instead of stepping at 1.0.
const (
	bgPacketSize = 512
	bgPeriod     = 500 * time.Millisecond
	bgPeakFactor = 1.5
	bgGrace      = bgPeriod // background lifetime past the last foreground packet
)

// txDuration is the serialization time of size bytes at rate bytes/sec.
// Every schedule computation uses this exact per-packet rounding, so a
// precomputed finish equals the sum of the boundary-by-boundary holds.
func txDuration(size int, rate float64) time.Duration {
	return time.Duration(float64(size) / rate * float64(time.Second))
}

// bottleneck models a finite-rate transmitter with an AQM queue and
// optional phantom background load on one link direction.
//
// The transmitter runs in one of three drives:
//
//   - events (Sim.SetXTrafficMode(XTrafficEvents)): every serialization
//     boundary — phantom or foreground — is a scheduler event, the
//     legacy path kept as a differential oracle;
//   - lazy precise (the default, disciplines without dequeue drops):
//     phantom boundaries are never events. They replay in an arithmetic
//     catch-up loop (Sim.advanceLazy) ordered against real events by
//     (time, reserved seq); a foreground packet costs exactly one event,
//     at its precomputed serialization finish;
//   - lazy hybrid (head-dropping disciplines, i.e. CoDel): boundaries
//     are events while any foreground packet is in the system — a head
//     drop reshapes the schedule, so finishes cannot be precomputed —
//     and replay lazily across all-phantom stretches.
//
// All three drive the AQM through the identical per-packet decision
// sequence and PRNG draw order; campaign datasets are byte-identical
// across drives.
type bottleneck struct {
	link *Link
	d    int     // direction index on link
	rate float64 // serialization rate, bytes/sec
	util float64 // background offered load as a fraction of rate
	q    aqm.Queue
	// precise: the discipline never drops at dequeue, so a queued
	// packet's serialization finish is computable at enqueue.
	precise bool
	// bgTx is the precomputed serialization hold of one phantom; bgOn
	// the burst (on-phase) duration of each background period; bgPeak
	// the precomputed bgPeakFactor×rate product of arrivalBytes' final
	// expression (left-associated, so the cache is bit-identical).
	bgTx   time.Duration
	bgOn   time.Duration
	bgPeak float64
	// period window cache: arrivalBytes integrates boundary-sized steps,
	// so consecutive calls almost always fall inside one background
	// period — these bounds replace an integer division with two
	// comparisons.
	periodStart, periodEnd time.Duration

	busy      bool          // a packet is serializing
	busyUntil time.Duration // its serialization boundary
	evented   bool          // the boundary is backed by a scheduled event
	virtSeq   uint64        // seq a lazy boundary's event would carry

	lastInject time.Duration // background accounted up to here
	credit     float64       // fractional background bytes carried over
	fgUntil    time.Duration // background active until here (foreground + grace)

	// pendingTx sums the serialization times of every queued packet —
	// exact for precise disciplines (enqueue adds, dequeue subtracts,
	// nothing else touches the queue).
	pendingTx time.Duration
	// fgCount counts foreground packets in the system (queued or on the
	// wire): the hybrid drive's events-vs-lazy switch.
	fgCount int

	lazyIdx int // index in sim.lazy; -1 when unregistered

	// txPkt is the packet on the wire; txDone is the serialization-
	// boundary callback and fgDone the lazy precise drive's foreground-
	// finish callback, both bound once at SetBottleneck so per-packet
	// transmission schedules no new closure.
	txPkt  *aqm.Packet
	txDone func()
	fgDone func()
}

// SetBottleneck attaches a serialization-rate bottleneck with AQM queue
// q to the from→peer direction. rate is in bytes/sec; utilization adds
// phantom background cross-traffic at utilization×rate mean offered
// load (0 = the direction carries only foreground traffic). Passing a
// nil queue or non-positive rate removes the bottleneck, restoring the
// infinite-rate behaviour.
func (l *Link) SetBottleneck(from Node, rate, utilization float64, q aqm.Queue) {
	d := l.dir(from)
	if old := l.bneck[d]; old != nil {
		l.sim.unregisterLazy(old)
	}
	if q == nil || rate <= 0 {
		l.bneck[d] = nil
		return
	}
	bn := &bottleneck{
		link:       l,
		d:          d,
		rate:       rate,
		util:       utilization,
		q:          q,
		precise:    !q.DropsAtDequeue(),
		bgTx:       txDuration(bgPacketSize, rate),
		bgOn:       time.Duration(utilization / bgPeakFactor * float64(bgPeriod)),
		bgPeak:     bgPeakFactor * rate,
		lastInject: l.sim.Now(),
		lazyIdx:    -1,
	}
	bn.txDone = func() { l.finishTx(bn, l.sim.Now()) }
	bn.fgDone = func() { l.foregroundDone(bn) }
	l.bneck[d] = bn
}

// BottleneckQueue returns the AQM queue shaping the from→peer
// direction, or nil when the direction is an infinite-rate pipe.
func (l *Link) BottleneckQueue(from Node) aqm.Queue {
	if bn := l.bneck[l.dir(from)]; bn != nil {
		return bn.q
	}
	return nil
}

// serveQueue begins serializing the queue head if the transmitter is
// idle.
func (l *Link) serveQueue(bn *bottleneck, now time.Duration) {
	if !bn.busy {
		l.beginTx(bn, now)
	}
}

// beginTx dequeues the next packet and puts it on the wire: hold for
// size/rate, then finishTx hands it to propagation and picks up the
// next. Whether the boundary is a scheduler event or a lazily replayed
// one depends on the drive mode; the dequeue decision sequence is the
// same either way.
func (l *Link) beginTx(bn *bottleneck, now time.Duration) {
	// CoDel discards not-ECT heads inside Dequeue; surface those in the
	// link's drop counter so Stats stays truthful for every discipline.
	// Precise disciplines never drop at dequeue, so the hot path skips
	// the two Stats snapshots entirely.
	var before uint64
	if !bn.precise {
		before = bn.q.Stats().WireNotECTDropped
	}
	p, ok := bn.q.Dequeue(now)
	if !bn.precise {
		if delta := bn.q.Stats().WireNotECTDropped - before; delta > 0 {
			l.dropped[bn.d] += delta
			bn.fgCount -= int(delta)
		}
	}
	if !ok {
		l.sim.unregisterLazy(bn)
		return
	}
	bn.busy = true
	bn.txPkt = p
	tx := bn.bgTx
	if p.Size != bgPacketSize {
		tx = txDuration(p.Size, bn.rate)
	}
	bn.pendingTx -= tx
	bn.busyUntil = now + tx
	switch {
	case l.sim.xtrafficEvents || (!bn.precise && bn.fgCount > 0):
		// Events drive, and the hybrid's foreground-present stretches:
		// the boundary is a real event. beginTx runs in event context
		// here (lazy replay only ever advances all-phantom hybrids), so
		// now is the simulator clock.
		bn.evented = true
		l.sim.unregisterLazy(bn)
		l.sim.At(bn.busyUntil, bn.txDone)
	case p.Phantom():
		// Lazy virtual boundary: reserve the seq its event would have
		// drawn and let Sim.advanceLazy replay it in exact order.
		// Registration is eligibility — the replay scan takes every
		// member as a pending phantom boundary.
		bn.evented = false
		bn.virtSeq = l.sim.nextSeq()
		l.sim.registerLazy(bn)
	default:
		// Lazy precise foreground on the wire: its finish event was
		// scheduled (with a sentinel seq) at enqueue; replay pauses for
		// this bottleneck until it fires. Consume the seq the events
		// mode would draw for this boundary here, keeping the shared
		// counter in lockstep.
		bn.evented = false
		l.sim.nextSeq()
		l.sim.unregisterLazy(bn)
	}
}

// finishTx completes the serialization boundary at time now: hand the
// transmitted packet to propagation and pick up the next queued one.
// Event callbacks pass the simulator clock; the lazy replay passes the
// virtual boundary time — the only difference between the drives.
func (l *Link) finishTx(bn *bottleneck, now time.Duration) {
	// The bottleneck may have been replaced or removed while this
	// packet was on the wire; only touch shared state if it is
	// still the live one. The packet itself still delivers.
	live := l.bneck[bn.d] == bn
	if live {
		l.injectBackground(bn, now) // the elapsed interval was a busy one
	}
	wasEvent := bn.evented
	bn.busy = false
	bn.evented = false
	p := bn.txPkt
	bn.txPkt = nil
	if !p.Phantom() {
		bn.fgCount--
		l.sim.deliverAfter(l.delay[bn.d], l.peerOf(bn.d), p.TakeBuf(), l)
	} else {
		p.Free()
		if wasEvent {
			l.sim.phantomEvents++
		}
	}
	if live {
		l.serveQueue(bn, now)
	} else {
		l.sim.unregisterLazy(bn)
	}
}

// replayBoundary is the lazy catch-up step: one phantom serialization
// boundary, driven arithmetically instead of through the scheduler.
func (l *Link) replayBoundary(bn *bottleneck, at time.Duration) {
	if bn.txPkt == nil || !bn.txPkt.Phantom() {
		panic("netsim: lazy cross-traffic replay reached a foreground boundary")
	}
	l.sim.replayedBoundaries++
	l.finishTx(bn, at)
}

// foregroundDone is the lazy precise drive's per-packet finish event.
// By the time it fires, Sim.advanceLazy has replayed every earlier
// boundary, so the packet on the wire is exactly the one this event was
// scheduled for.
func (l *Link) foregroundDone(bn *bottleneck) {
	now := l.sim.Now()
	if l.bneck[bn.d] != bn {
		// Replaced while queued or on the wire. Mirror the events drive:
		// a packet already serializing still delivers; queued ones are
		// abandoned with the old transmitter.
		if bn.busy && bn.txPkt != nil && !bn.txPkt.Phantom() && bn.busyUntil == now {
			l.finishTx(bn, now)
		}
		return
	}
	if !bn.busy || bn.txPkt == nil || bn.txPkt.Phantom() || bn.busyUntil != now {
		panic("netsim: foreground finish event out of sync with lazy bottleneck replay")
	}
	l.finishTx(bn, now)
}

// injectBackground brings the phantom cross-traffic up to date. It runs
// lazily at every enqueue and serialization boundary, so the background
// process needs no events of its own and a drained simulation really is
// finished. While the transmitter is busy, all arrivals since the last
// update join the queue (its discipline decides their fate); across an
// idle gap the queue was empty and draining faster than background
// arrived, so only the net backlog of the recent burst pattern is
// reconstructed.
func (l *Link) injectBackground(bn *bottleneck, now time.Duration) {
	// Background only arrives while foreground keeps it alive; beyond
	// fgUntil the cross-traffic source has quenched.
	end := min(now, bn.fgUntil)
	if bn.util <= 0 || end <= bn.lastInject {
		if bn.util <= 0 || !bn.busy {
			// The queue drained anything older; restart accounting here.
			bn.lastInject = now
			bn.credit = 0
		}
		return
	}
	var bytes float64
	if bn.busy {
		bytes = bn.credit + bn.arrivalBytes(bn.lastInject, end)
	} else {
		backlog := bn.idleBacklog(bn.lastInject, end)
		// Anything accumulated by the quench point drains at line rate
		// until now.
		backlog -= bn.rate * (now - end).Seconds()
		if backlog < 0 {
			backlog = 0
		}
		bytes = backlog
	}
	bn.lastInject = now
	n := int(bytes / bgPacketSize)
	bn.credit = bytes - float64(n)*bgPacketSize
	admitted := bn.q.EnqueuePhantoms(now, bgPacketSize, n)
	bn.pendingTx += time.Duration(admitted) * bn.bgTx
}

// arrivalBytes integrates the background arrival process over [t1, t2).
// The final expression is shared by every path, so the fast single-
// period case is bit-identical to the general loop — credit rounding,
// and with it the phantom count, cannot depend on which path ran.
func (bn *bottleneck) arrivalBytes(t1, t2 time.Duration) float64 {
	if bn.util >= bgPeakFactor {
		// Saturated: constant arrivals at util×rate.
		return bn.util * bn.rate * (t2 - t1).Seconds()
	}
	on := bn.bgOn // on span of each period
	if t1 < bn.periodStart || t2 > bn.periodEnd {
		// Refresh the cached period window for t1's period; boundary-
		// sized steps make the refresh rare.
		start := t1 / bgPeriod * bgPeriod
		bn.periodStart, bn.periodEnd = start, start+bgPeriod
	}
	var active time.Duration
	if t2 <= bn.periodEnd {
		// [t1, t2) inside one period — the per-boundary common case:
		// the on-phase overlap directly, no period walk.
		s, e := t1, bn.periodStart+on
		if e > t2 {
			e = t2
		}
		if e > s {
			active = e - s
		}
	} else {
		for k := t1 / bgPeriod; ; k++ {
			start := k * bgPeriod
			if start >= t2 {
				break
			}
			s, e := start, start+on
			if s < t1 {
				s = t1
			}
			if e > t2 {
				e = t2
			}
			if e > s {
				active += e - s
			}
		}
	}
	return bn.bgPeak * active.Seconds()
}

// idleBacklog reconstructs the fluid backlog the background alone would
// have built by t2, starting from the empty queue the idle transmitter
// implies at t1: bursts grow it at (peak − 1)×rate, off periods drain it
// at the full rate, clamped to the buffer. Only recent history can
// matter under the clamp, so the window is bounded.
func (bn *bottleneck) idleBacklog(t1, t2 time.Duration) float64 {
	capBytes := float64(bn.q.Cap()) * bgPacketSize
	if bn.util >= bgPeakFactor {
		growth := (bn.util - 1) * bn.rate * (t2 - t1).Seconds()
		if growth > capBytes {
			return capBytes
		}
		if growth < 0 {
			return 0
		}
		return growth
	}
	if t2-t1 > 64*bgPeriod {
		t1 = t2 - 64*bgPeriod
	}
	on := bn.bgOn
	backlog := 0.0
	step := func(dt time.Duration, arrivalRate float64) {
		backlog += (arrivalRate - bn.rate) * dt.Seconds()
		if backlog < 0 {
			backlog = 0
		}
		if backlog > capBytes {
			backlog = capBytes
		}
	}
	for k := t1 / bgPeriod; ; k++ {
		start := k * bgPeriod
		if start >= t2 {
			break
		}
		// On phase [start, start+on), then off phase.
		s, e := max(t1, start), min(t2, start+on)
		if e > s {
			step(e-s, bgPeakFactor*bn.rate)
		}
		s, e = max(t1, start+on), min(t2, start+bgPeriod)
		if e > s {
			step(e-s, 0)
		}
	}
	return backlog
}
