package netsim

import (
	"testing"
	"time"

	"repro/internal/ecn"
	"repro/internal/packet"
)

// BenchmarkSimSchedule compares the timing wheel against the heap
// fallback on the mixed near/far timer workload (ScheduleBenchWorkload,
// shared with cmd/benchreport). Registered in scripts/perf_gate.sh:
// both variants must stay at 0 allocs/op.
func BenchmarkSimSchedule(b *testing.B) {
	for _, sched := range []Scheduler{SchedWheel, SchedHeap} {
		b.Run("sched="+sched.Name(), func(b *testing.B) {
			s := NewSimSched(1, sched)
			ScheduleBenchWorkload(s, 4096) // warm slab, free list, wheel due buffer
			b.ReportAllocs()
			b.ResetTimer()
			ScheduleBenchWorkload(s, b.N)
		})
	}
}

// BenchmarkSimScheduleSparse runs the same comparison on the sparse-
// timeline kernel (ScheduleBenchWorkloadSparse): a near-empty pending
// set with whole windows between instants, the shape real campaigns
// spend most of their virtual time in — and the regime where the wheel
// beats the heap. Also registered in scripts/perf_gate.sh's allocs
// gate.
func BenchmarkSimScheduleSparse(b *testing.B) {
	for _, sched := range []Scheduler{SchedWheel, SchedHeap} {
		b.Run("sched="+sched.Name(), func(b *testing.B) {
			s := NewSimSched(1, sched)
			ScheduleBenchWorkloadSparse(s, 4096)
			b.ReportAllocs()
			b.ResetTimer()
			ScheduleBenchWorkloadSparse(s, b.N)
		})
	}
}

// TestSimScheduleAllocFree pins the scheduler hot path at zero
// allocations per event on both schedulers once pools are warm.
func TestSimScheduleAllocFree(t *testing.T) {
	for _, sched := range []Scheduler{SchedWheel, SchedHeap} {
		s := NewSimSched(1, sched)
		ScheduleBenchWorkload(s, 8192) // warm up
		if allocs := testing.AllocsPerRun(10, func() { ScheduleBenchWorkload(s, 1024) }); allocs > 0 {
			t.Errorf("%s scheduler: %.1f allocs per 1024-event batch, want 0", sched.Name(), allocs)
		}
	}
}

func BenchmarkEventLoop(b *testing.B) {
	s := NewSim(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 0 {
			s.Run()
		}
	}
	s.Run()
}

// BenchmarkForwardingPath measures one packet crossing a five-router
// path: the simulator's hottest loop (parse, TTL, checksum, route).
func BenchmarkForwardingPath(b *testing.B) {
	sim := NewSim(1)
	n := NewNetwork(sim)
	routers := make([]*Router, 5)
	for i := range routers {
		routers[i] = n.AddRouter("r", packet.AddrFrom4(10, 255, byte(i), 1), uint32(i))
	}
	for i := 0; i+1 < len(routers); i++ {
		n.Connect(routers[i], routers[i+1], 0, 0)
	}
	h1, _ := n.AddHost("h1", packet.AddrFrom4(10, 0, 0, 1))
	h2, _ := n.AddHost("h2", packet.AddrFrom4(10, 0, 1, 1))
	n.Attach(h1, routers[0], 0, 0)
	n.Attach(h2, routers[4], 0, 0)
	if err := n.ComputeRoutes(); err != nil {
		b.Fatal(err)
	}
	delivered := 0
	h2.BindUDP(9, func(*Host, packet.IPv4Header, packet.UDPHeader, []byte) { delivered++ })

	payload := make([]byte, 48)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h1.SendUDP(h2.Addr(), 1, 9, 64, ecn.ECT0, payload)
		sim.Run()
	}
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

func BenchmarkComputeRoutes(b *testing.B) {
	sim := NewSim(1)
	n := NewNetwork(sim)
	const nr = 200
	routers := make([]*Router, nr)
	for i := range routers {
		routers[i] = n.AddRouter("r", packet.AddrFrom4(10, byte(i>>8), byte(i), 1), uint32(i))
	}
	for i := 1; i < nr; i++ {
		n.Connect(routers[i], routers[i/2], 0, 0) // binary-tree fabric
		if i%7 == 0 {
			n.Connect(routers[i], routers[(i*3)%nr], 0, 0)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.ComputeRoutes(); err != nil {
			b.Fatal(err)
		}
	}
}
