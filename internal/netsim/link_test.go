package netsim

import (
	"strings"
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/ecn"
	"repro/internal/packet"
)

// sinkNode records deliveries for link-level tests. Delivered bytes are
// copied out before the buffer reference is released, per the ownership
// rules every Node follows.
type sinkNode struct {
	label    string
	received [][]byte
	times    []time.Duration
	sim      *Sim
}

func (s *sinkNode) Receive(b *packet.Buf, from *Link) {
	s.received = append(s.received, append([]byte(nil), b.Bytes()...))
	if s.sim != nil {
		s.times = append(s.times, s.sim.Now())
	}
	b.Release()
}
func (s *sinkNode) Label() string { return s.label }

func testWire(t testing.TB, cp ecn.Codepoint, payload int) *packet.Buf {
	t.Helper()
	b, err := packet.BuildUDPBuf(packet.AddrFrom4(10, 0, 0, 1), packet.AddrFrom4(10, 0, 0, 2),
		40000, 123, 64, cp, 1, make([]byte, payload))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestLinkStatsFullLoss: at loss 1.0 every Send is counted and every
// packet is dropped; nothing reaches the peer and no event is queued.
func TestLinkStatsFullLoss(t *testing.T) {
	sim := NewSim(1)
	a, b := &sinkNode{label: "a"}, &sinkNode{label: "b"}
	l := newLink(sim, a, b, time.Millisecond, 0)
	l.SetLoss(a, 1.0)

	const n = 50
	for i := 0; i < n; i++ {
		l.Send(a, testWire(t, ecn.NotECT, 8))
	}
	if sent, dropped := l.Stats(a); sent != n || dropped != n {
		t.Fatalf("Stats(a) = %d sent, %d dropped; want %d, %d", sent, dropped, n, n)
	}
	if sent, dropped := l.Stats(b); sent != 0 || dropped != 0 {
		t.Fatalf("reverse direction Stats = %d, %d; want 0, 0", sent, dropped)
	}
	if sim.Pending() != 0 {
		t.Fatalf("%d events pending; fully lost traffic should schedule none", sim.Pending())
	}
	sim.Run()
	if len(b.received) != 0 {
		t.Fatalf("%d packets delivered through a 100%% lossy link", len(b.received))
	}
}

// TestLinkDirPanicForeignNode: addressing a link from a node that is not
// an endpoint is a programming error and must panic with a message that
// names the offending node.
func TestLinkDirPanicForeignNode(t *testing.T) {
	sim := NewSim(1)
	a, b := &sinkNode{label: "a"}, &sinkNode{label: "b"}
	stranger := &sinkNode{label: "stranger"}
	l := newLink(sim, a, b, time.Millisecond, 0)

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Send from a foreign node did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", r)
		}
		if !strings.Contains(msg, "not on link") || !strings.Contains(msg, "stranger") {
			t.Fatalf("panic message %q should name the foreign node", msg)
		}
	}()
	l.Send(stranger, testWire(t, ecn.NotECT, 8))
}

// TestLinkLossDeterminismAcrossReseed: the loss-draw sequence after
// Reseed(s) must equal the sequence of a fresh simulator seeded s —
// the property the sharded campaign engine's per-shard reseed relies on.
func TestLinkLossDeterminismAcrossReseed(t *testing.T) {
	pattern := func(sim *Sim) []bool {
		a, b := &sinkNode{label: "a"}, &sinkNode{label: "b"}
		l := newLink(sim, a, b, 0, 0.5)
		var out []bool
		for i := 0; i < 200; i++ {
			before := len(b.received)
			l.Send(a, testWire(t, ecn.NotECT, 8))
			sim.Run()
			out = append(out, len(b.received) > before)
		}
		return out
	}

	reseeded := NewSim(12345) // seed discarded by Reseed below
	reseeded.RNG().Float64()  // consume some state first
	reseeded.Reseed(777)
	fresh := NewSim(777)

	a, b := pattern(reseeded), pattern(fresh)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loss draw %d diverges after Reseed: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestBottleneckSerializes: a finite-rate direction delivers packets at
// the serialization cadence, in order, and leaves the reverse direction
// untouched.
func TestBottleneckSerializes(t *testing.T) {
	sim := NewSim(1)
	a, b := &sinkNode{label: "a"}, &sinkNode{label: "b", sim: sim}
	l := newLink(sim, a, b, 0, 0)
	// 10 kB/s: a 1000-byte wire packet takes 100ms on the wire.
	l.SetBottleneck(a, 10_000, 0, aqm.NewDropTail(16))

	const payload = 1000 - packet.IPv4HeaderLen - packet.UDPHeaderLen
	for i := 0; i < 3; i++ {
		wire := testWire(t, ecn.NotECT, payload)
		if wire.Len() != 1000 {
			t.Fatalf("wire length %d, want 1000", wire.Len())
		}
		l.Send(a, wire)
	}
	sim.Run()
	if len(b.received) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(b.received))
	}
	for i, at := range b.times {
		want := time.Duration(i+1) * 100 * time.Millisecond
		if at != want {
			t.Fatalf("packet %d delivered at %v, want %v", i, at, want)
		}
	}
	if q := l.BottleneckQueue(a); q == nil || q.Stats().Dequeued != 3 {
		t.Fatal("bottleneck queue stats not visible via BottleneckQueue")
	}
	if l.BottleneckQueue(b) != nil {
		t.Fatal("reverse direction should be unshaped")
	}
}

// TestBottleneckQueueDropsCountAsLinkDrops: packets rejected by the AQM
// discipline surface in the link's Stats dropped counter.
func TestBottleneckQueueDropsCountAsLinkDrops(t *testing.T) {
	sim := NewSim(1)
	a, b := &sinkNode{label: "a"}, &sinkNode{label: "b"}
	l := newLink(sim, a, b, 0, 0)
	l.SetBottleneck(a, 1_000, 0, aqm.NewDropTail(2))

	// Burst far beyond the 2-packet buffer before any event runs.
	const n = 10
	for i := 0; i < n; i++ {
		l.Send(a, testWire(t, ecn.NotECT, 100))
	}
	sent, dropped := l.Stats(a)
	if sent != n || dropped == 0 {
		t.Fatalf("Stats = %d sent, %d dropped; want %d sent and tail drops", sent, dropped, n)
	}
	sim.Run()
	if got := uint64(len(b.received)); got+dropped != n {
		t.Fatalf("delivered %d + dropped %d != sent %d", got, dropped, n)
	}
}

// TestBottleneckBackgroundMarksForeground: with RED and background
// utilization above capacity, a standing queue builds and ECT foreground
// packets arrive CE-marked; higher utilization marks at least as much.
func TestBottleneckBackgroundMarksForeground(t *testing.T) {
	ceRatio := func(util float64) float64 {
		sim := NewSim(2015)
		a, b := &sinkNode{label: "a"}, &sinkNode{label: "b"}
		l := newLink(sim, a, b, time.Millisecond, 0)
		l.SetBottleneck(a, 125_000, util, aqm.NewRED(50, sim.RNG()))

		// Paced ECT(0) foreground: one packet every 10ms for 20s.
		var tick func(i int)
		tick = func(i int) {
			if i >= 2000 {
				return
			}
			l.Send(a, testWire(t, ecn.ECT0, 100))
			sim.After(10*time.Millisecond, func() { tick(i + 1) })
		}
		tick(0)
		sim.Run()

		ce, ect := 0, 0
		for _, wire := range b.received {
			switch cp, _ := packet.WireECN(wire); cp {
			case ecn.CE:
				ce++
			case ecn.ECT0, ecn.ECT1:
				ect++
			}
		}
		if ce+ect == 0 {
			t.Fatalf("util %.1f delivered no ECT-capable packets", util)
		}
		return float64(ce) / float64(ce+ect)
	}

	low, mid, high := ceRatio(0.2), ceRatio(0.9), ceRatio(1.4)
	if !(low <= mid && mid <= high) {
		t.Fatalf("CE ratio not monotone in utilization: %.3f, %.3f, %.3f", low, mid, high)
	}
	if high == 0 {
		t.Fatal("overloaded bottleneck never CE-marked foreground")
	}
	if low > 0.05 {
		t.Fatalf("lightly loaded bottleneck CE ratio %.3f, want ≈0", low)
	}
}

// TestBottleneckDrainsToCompletion: background phantoms must never keep
// the event loop alive — a finished foreground load means a finished
// simulation.
func TestBottleneckDrainsToCompletion(t *testing.T) {
	sim := NewSim(7)
	a, b := &sinkNode{label: "a"}, &sinkNode{label: "b"}
	l := newLink(sim, a, b, time.Millisecond, 0)
	l.SetBottleneck(a, 50_000, 1.2, aqm.NewRED(32, sim.RNG()))
	for i := 0; i < 20; i++ {
		l.Send(a, testWire(t, ecn.ECT0, 200))
	}
	done := false
	sim.After(time.Hour, func() { done = true })
	sim.Run()
	if !done {
		t.Fatal("simulation did not drain")
	}
	if sim.Pending() != 0 {
		t.Fatalf("%d events still pending after Run", sim.Pending())
	}
}

// TestBottleneckServesQueueAfterForegroundDrop: a foreground packet
// rejected by a full queue must still kick the idle transmitter, or the
// reconstructed background backlog would sit forever and blackhole
// every later foreground packet behind a permanently full buffer.
func TestBottleneckServesQueueAfterForegroundDrop(t *testing.T) {
	sim := NewSim(11)
	a, b := &sinkNode{label: "a"}, &sinkNode{label: "b"}
	l := newLink(sim, a, b, time.Millisecond, 0)
	// Saturated background and a tiny buffer: after a long idle gap the
	// reconstructed backlog fills the queue before the foreground
	// packet is offered, so the first Send of each burst is tail-dropped.
	l.SetBottleneck(a, 50_000, 2.0, aqm.NewDropTail(8))

	delivered := func() int { return len(b.received) }
	l.Send(a, testWire(t, ecn.NotECT, 100)) // activates background
	sim.RunUntil(2 * time.Second)
	for i := 0; i < 10; i++ {
		l.Send(a, testWire(t, ecn.NotECT, 100))
		sim.RunUntil(sim.Now() + 2*time.Second)
	}
	sim.Run()
	if delivered() == 0 {
		t.Fatal("foreground permanently blackholed behind stranded background backlog")
	}
	if sim.Pending() != 0 {
		t.Fatalf("%d events pending after Run", sim.Pending())
	}
}

// TestBottleneckRemovalMidFlight: removing the bottleneck while a
// packet is serializing must not panic, and the in-flight packet still
// delivers.
func TestBottleneckRemovalMidFlight(t *testing.T) {
	sim := NewSim(1)
	a, b := &sinkNode{label: "a"}, &sinkNode{label: "b"}
	l := newLink(sim, a, b, time.Millisecond, 0)
	l.SetBottleneck(a, 1_000, 0.5, aqm.NewDropTail(8)) // 100B = 100ms on the wire
	l.Send(a, testWire(t, ecn.NotECT, 72))
	sim.RunUntil(10 * time.Millisecond) // serialization under way
	l.SetBottleneck(a, 0, 0, nil)
	l.Send(a, testWire(t, ecn.NotECT, 72)) // now an infinite-rate send
	sim.Run()
	if len(b.received) != 2 {
		t.Fatalf("delivered %d packets, want 2 (in-flight + post-removal)", len(b.received))
	}
}

// TestBottleneckRemoval restores the infinite-rate path.
func TestBottleneckRemoval(t *testing.T) {
	sim := NewSim(1)
	a, b := &sinkNode{label: "a"}, &sinkNode{label: "b", sim: sim}
	l := newLink(sim, a, b, time.Millisecond, 0)
	l.SetBottleneck(a, 1000, 0, aqm.NewDropTail(1))
	l.SetBottleneck(a, 0, 0, nil)
	l.Send(a, testWire(t, ecn.NotECT, 8))
	l.Send(a, testWire(t, ecn.NotECT, 8))
	sim.Run()
	if len(b.received) != 2 {
		t.Fatalf("delivered %d, want 2 after bottleneck removal", len(b.received))
	}
	if b.times[0] != time.Millisecond || b.times[1] != time.Millisecond {
		t.Fatalf("delivery times %v, want both at 1ms (pure propagation)", b.times)
	}
}
