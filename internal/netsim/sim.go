// Package netsim is a deterministic discrete-event network simulator that
// forwards real wire-format IPv4 packets between simulated hosts and
// routers.
//
// The simulator replaces the live Internet used by the original study: it
// provides the same observable surface — packet delivery, loss, TTL
// expiry with quoted ICMP errors, and middleboxes that rewrite the ECN
// field of transit traffic — over a topology that the topology package
// generates. All protocol code (NTP, DNS, TCP, HTTP, traceroute) runs
// unmodified over this substrate.
//
// Design notes:
//
//   - Virtual time. Events are (time, sequence)-ordered; Run drains the
//     pending set. There are no wall-clock sleeps, so a campaign covering
//     hours of virtual time completes in seconds.
//   - Determinism. All randomness (link loss, timer jitter in protocols)
//     is drawn from a single seeded PRNG owned by the Sim. The same seed
//     reproduces a byte-identical packet history, which the tests rely on.
//   - Real bytes. Nodes exchange serialized IPv4 datagrams held in pooled
//     packet.Buf wire buffers. Routers parse and mutate the actual wire
//     bytes, so header checksums, TTL handling and TOS rewrites behave
//     exactly as on a real path.
//   - O(1) scheduling. The default scheduler is a hierarchical timing
//     wheel (wheel.go) over the event slab: insert and fire are O(1)
//     amortized, against the O(log n) per event a binary heap pays on
//     multi-million-event congested runs. The heap remains available as
//     SchedHeap for differential testing; both pop in exactly the same
//     (time, seq) order, so a campaign's traces are bit-identical under
//     either scheduler.
//   - Zero steady-state allocation. Event bodies live in a slab indexed
//     by a free list; the wheel's slots and the heap's entries are
//     pointer-free (they address the slab by index), so scheduling never
//     touches the write barrier, and packet delivery is a typed event
//     rather than a closure. Once the pools are warm, the per-packet hot
//     path — build, send, deliver, receive — allocates nothing.
package netsim

import (
	"math/rand"
	"time"

	"repro/internal/packet"
)

// Scheduler selects the Sim's pending-event data structure.
type Scheduler uint8

// The available schedulers. SchedWheel is the default; SchedHeap is the
// legacy binary heap, kept as a differential-testing fallback so the
// wheel's ordering can always be checked against a second implementation.
const (
	SchedWheel Scheduler = iota
	SchedHeap
)

// SchedulerByName maps the REPRO_SCHED / -sched vocabulary ("wheel",
// "heap", "" = default) to a Scheduler. Unknown names report ok=false.
func SchedulerByName(name string) (Scheduler, bool) {
	switch name {
	case "", "wheel":
		return SchedWheel, true
	case "heap":
		return SchedHeap, true
	default:
		return SchedWheel, false
	}
}

// Name returns the scheduler's REPRO_SCHED vocabulary name.
func (s Scheduler) Name() string {
	if s == SchedHeap {
		return "heap"
	}
	return "wheel"
}

// XTrafficMode selects how a bottleneck's phantom cross-traffic
// advances: lazily replayed in an arithmetic catch-up loop (the
// default), or as one scheduler event per phantom serialization
// boundary (the legacy path, kept as a differential oracle). Both modes
// drive the AQM through the identical per-packet decision sequence and
// PRNG draw order, so campaign datasets are byte-identical either way —
// the property cmd/determinism's REPRO_XTRAFFIC grid verifies.
type XTrafficMode uint8

// The available cross-traffic drive modes.
const (
	XTrafficLazy XTrafficMode = iota
	XTrafficEvents
)

// XTrafficModeByName maps the REPRO_XTRAFFIC / -xtraffic vocabulary
// ("lazy", "events", "" = default) to a mode. Unknown names report
// ok=false.
func XTrafficModeByName(name string) (XTrafficMode, bool) {
	switch name {
	case "", "lazy":
		return XTrafficLazy, true
	case "events":
		return XTrafficEvents, true
	default:
		return XTrafficLazy, false
	}
}

// Name returns the mode's REPRO_XTRAFFIC vocabulary name.
func (m XTrafficMode) Name() string {
	if m == XTrafficEvents {
		return "events"
	}
	return "lazy"
}

// Sim is the discrete-event engine. Create one with NewSim, add nodes and
// links (usually via Network), schedule initial work, then call Run.
type Sim struct {
	now time.Duration
	// wheel is the default O(1) scheduler; nil selects the heap fallback.
	wheel *timingWheel
	// heap is the fallback pending-event priority queue: pointer-free
	// entries ordered by (at, seq), with idx addressing the body in slab.
	heap []heapEntry
	slab []event
	free []int32 // recycled slab indices
	seq  uint64
	live int // scheduled, not yet fired or cancelled
	rng  *rand.Rand
	// Stats counters, exposed for benchmarks and capacity planning.
	executed uint64

	// xtrafficEvents selects the legacy one-event-per-phantom-boundary
	// transmitter drive (REPRO_XTRAFFIC=events); the default is lazy
	// catch-up replay.
	xtrafficEvents bool
	// lazy lists the bottlenecks currently serializing without events;
	// Step replays their boundaries, in exact (time, seq) order, before
	// dispatching any event past them.
	lazy []*bottleneck
	// replayedBoundaries counts phantom serialization boundaries replayed
	// arithmetically instead of dispatched as events; phantomEvents
	// counts the ones that did run as events (events mode, and the CoDel
	// hybrid's foreground-present stretches).
	replayedBoundaries uint64
	phantomEvents      uint64
	// sentinel numbers the lazy drive's foreground-finish events out of
	// band (see sentinelSeq).
	sentinel uint64
}

// NewSim returns a simulator whose randomness derives from seed, using
// the default timing-wheel scheduler.
func NewSim(seed int64) *Sim { return NewSimSched(seed, SchedWheel) }

// NewSimSched returns a simulator with an explicit scheduler choice. The
// two schedulers fire events in exactly the same order; SchedHeap exists
// so differential tests can prove that.
func NewSimSched(seed int64, sched Scheduler) *Sim {
	s := &Sim{rng: rand.New(rand.NewSource(seed))}
	if sched == SchedWheel {
		s.wheel = newTimingWheel()
	}
	return s
}

// SchedulerName reports which scheduler the Sim runs on.
func (s *Sim) SchedulerName() string {
	if s.wheel != nil {
		return SchedWheel.Name()
	}
	return SchedHeap.Name()
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// RNG exposes the simulation's deterministic random source. All model
// randomness must come from here to preserve reproducibility.
func (s *Sim) RNG() *rand.Rand { return s.rng }

// Reseed rewinds the simulation's random source to a fresh stream derived
// from seed. The generator is reseeded in place, so components that
// captured RNG() earlier (links, middlebox policies, AQM queues) observe
// the new stream too. The sharded campaign engine uses this to give each
// measurement phase — discovery, every trace, the traceroute sweep — a
// stream derived from its own identity rather than from whatever ran
// before it in the same simulator, which is what makes the merged
// dataset independent of how traces are grouped into shards.
func (s *Sim) Reseed(seed int64) { s.rng.Seed(seed) }

// Executed reports how many events have run; useful for benchmarks.
func (s *Sim) Executed() uint64 { return s.executed }

// SetXTrafficMode selects the cross-traffic drive for every bottleneck
// on this simulator. Call it before any traffic flows; switching modes
// mid-flight on an active bottleneck is not supported.
func (s *Sim) SetXTrafficMode(m XTrafficMode) { s.xtrafficEvents = m == XTrafficEvents }

// XTrafficModeName reports the active cross-traffic drive mode.
func (s *Sim) XTrafficModeName() string {
	if s.xtrafficEvents {
		return XTrafficEvents.Name()
	}
	return XTrafficLazy.Name()
}

// ReplayedBoundaries reports how many phantom serialization boundaries
// were replayed arithmetically — work the event loop never saw.
func (s *Sim) ReplayedBoundaries() uint64 { return s.replayedBoundaries }

// PhantomEvents reports how many phantom serialization boundaries ran
// as scheduler events.
func (s *Sim) PhantomEvents() uint64 { return s.phantomEvents }

// WheelStats reports the timing wheel's internal activity: cascades is
// the number of higher-level slots re-filed into finer levels,
// registerHits the pops served straight from the singleton register
// (the sparse-timeline fast path). Both are zero on the heap
// scheduler. The counters are observability only — plain increments
// with no effect on event order, randomness, or output bytes.
func (s *Sim) WheelStats() (cascades, registerHits uint64) {
	if s.wheel == nil {
		return 0, 0
	}
	return s.wheel.cascades, s.wheel.registerHits
}

// nextSeq hands out the sequence number a scheduled event would have
// received. Lazily-driven bottlenecks consume one per virtual boundary
// — including the boundary that starts a foreground serialization,
// whose finish event carries a sentinel instead — keeping the counter,
// and with it the FIFO tiebreak of every later same-timestamp event, in
// lockstep with the events mode.
func (s *Sim) nextSeq() uint64 {
	s.seq++
	return s.seq
}

// sentinelSeq returns an out-of-band sequence number (top bit set, so
// it can never collide with counter-drawn seqs) for the lazy precise
// drive's foreground-finish events. A sentinel orders the finish after
// every counter-seq event sharing its instant and does not advance the
// shared counter, so scheduling it at enqueue time cannot shift any
// other event's — or virtual boundary's — sequence number.
func (s *Sim) sentinelSeq() uint64 {
	s.sentinel++
	return 1<<63 | s.sentinel
}

// registerLazy adds a bottleneck to the lazily-driven set.
func (s *Sim) registerLazy(bn *bottleneck) {
	if bn.lazyIdx >= 0 {
		return
	}
	bn.lazyIdx = len(s.lazy)
	s.lazy = append(s.lazy, bn)
}

// unregisterLazy removes a bottleneck from the lazily-driven set.
func (s *Sim) unregisterLazy(bn *bottleneck) {
	if bn == nil || bn.lazyIdx < 0 {
		return
	}
	i, last := bn.lazyIdx, len(s.lazy)-1
	s.lazy[i] = s.lazy[last]
	s.lazy[i].lazyIdx = i
	s.lazy[last] = nil
	s.lazy = s.lazy[:last]
	bn.lazyIdx = -1
}

// advanceLazy replays, across every lazily-driven bottleneck, all
// phantom serialization boundaries whose (time, seq) precede the given
// horizon — in exactly the order the events mode would have fired them,
// seq ties included, because each virtual boundary carries the sequence
// number its event would have drawn from the same counter. Step calls
// it with the next event's (at, seq) before dispatching, so every PRNG
// draw a boundary makes lands at the identical position in the shared
// random stream.
func (s *Sim) advanceLazy(at time.Duration, seq uint64) {
	for {
		// Pick the earliest eligible boundary and the runner-up bound.
		// Membership in s.lazy is eligibility: the link registers a
		// bottleneck exactly while a phantom serializes with no event
		// backing it.
		var best *bottleneck
		runnerUp := maxDuration
		for _, bn := range s.lazy {
			if bn.busyUntil > at || (bn.busyUntil == at && bn.virtSeq > seq) {
				continue
			}
			switch {
			case best == nil:
				best = bn
			case bn.busyUntil < best.busyUntil ||
				(bn.busyUntil == best.busyUntil && bn.virtSeq < best.virtSeq):
				if best.busyUntil < runnerUp {
					runnerUp = best.busyUntil
				}
				best = bn
			case bn.busyUntil < runnerUp:
				runnerUp = bn.busyUntil
			}
		}
		if best == nil {
			return
		}
		if runnerUp > at {
			runnerUp = at
		}
		// Replay a run of best's boundaries without rescanning: it stays
		// the front source while its next boundary is strictly earlier
		// than every other's and strictly inside the horizon. virtSeq
		// increases with each new boundary, so a tie at the horizon
		// re-enters the scan above for the exact seq comparison.
		for {
			best.link.replayBoundary(best, best.busyUntil)
			if best.lazyIdx < 0 || best.busyUntil >= runnerUp {
				break
			}
		}
	}
}

// flushLazy drains every lazily-driven bottleneck to quiescence.
// Background arrivals quench a grace period after the last foreground
// packet, so the replay always terminates; Run calls this after the
// event queue empties, leaving queue statistics and discipline state
// exactly where the events mode — whose boundary events drain inside
// Run — leaves them.
func (s *Sim) flushLazy() {
	if len(s.lazy) > 0 {
		s.advanceLazy(maxDuration, ^uint64(0))
	}
}

// maxDuration is the largest representable virtual time.
const maxDuration = time.Duration(1<<63 - 1)

// Timer is a handle to a scheduled event that can be cancelled. It is a
// small value — keep it by value, not behind a pointer, so arming a
// timer allocates nothing. The handle records the event's generation:
// once the event fires or is recycled, the handle goes stale and Stop
// becomes a no-op, so slab slots can be reused without a stale Timer
// cancelling a stranger. The zero Timer is valid and stopped.
type Timer struct {
	s   *Sim
	idx int32
	gen uint64
}

// Stop cancels the timer if it has not fired. It reports whether the
// timer was still pending.
func (t Timer) Stop() bool {
	if t.s == nil {
		return false
	}
	ev := &t.s.slab[t.idx]
	if ev.gen != t.gen || ev.fn == nil {
		return false
	}
	ev.fn = nil
	t.s.live--
	return true
}

// After schedules fn to run d from now and returns a cancellable handle.
// A negative d is treated as zero: the event runs after the events already
// scheduled for the current instant (FIFO within a timestamp).
func (s *Sim) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t time.Duration, fn func()) Timer {
	if fn == nil {
		panic("netsim: nil event function")
	}
	idx := s.schedule(t)
	ev := &s.slab[idx]
	ev.fn = fn
	return Timer{s: s, idx: idx, gen: ev.gen}
}

// atWithSeq schedules fn at absolute time t carrying a previously
// drawn sequence number instead of a fresh one. The lazily-driven
// transmitter uses it when a foreground arrival converts an in-flight
// virtual boundary into a real event: the boundary already consumed its
// seq when serialization began, exactly where the events mode would
// have, so reusing it keeps same-timestamp ordering identical across
// drive modes.
func (s *Sim) atWithSeq(t time.Duration, seq uint64, fn func()) {
	if fn == nil {
		panic("netsim: nil event function")
	}
	idx := s.scheduleSeq(t, seq)
	s.slab[idx].fn = fn
}

// deliverAfter schedules delivery of a wire buffer to node d from now.
// Delivery is a typed event — no closure, no allocation — and transfers
// the caller's buffer reference to the receiving node.
func (s *Sim) deliverAfter(d time.Duration, node Node, b *packet.Buf, from *Link) {
	if d < 0 {
		d = 0
	}
	idx := s.schedule(s.now + d)
	ev := &s.slab[idx]
	ev.node = node
	ev.buf = b
	ev.link = from
}

// schedule allocates an event body (from the free list when possible)
// and queues it at absolute time t, returning its slab index.
func (s *Sim) schedule(t time.Duration) int32 {
	s.seq++
	return s.scheduleSeq(t, s.seq)
}

// scheduleSeq queues an event with an explicit sequence number —
// schedule's fresh draw, or a lazily-driven boundary's previously
// reserved one.
func (s *Sim) scheduleSeq(t time.Duration, seq uint64) int32 {
	if t < s.now {
		t = s.now
	}
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.slab = append(s.slab, event{})
		idx = int32(len(s.slab) - 1)
	}
	ev := &s.slab[idx]
	ev.at = t
	ev.seq = seq
	ev.next = -1
	s.live++
	if s.wheel != nil {
		s.wheelInsert(idx, t)
	} else {
		s.heapPush(heapEntry{at: t, seq: seq, idx: idx})
	}
	return idx
}

// recycle clears an event body, bumps its generation (staling Timer
// handles), and returns its slot to the free list.
func (s *Sim) recycle(idx int32) {
	ev := &s.slab[idx]
	ev.gen++
	ev.fn = nil
	ev.node = nil
	ev.buf = nil
	ev.link = nil
	ev.next = -1
	s.free = append(s.free, idx)
}

// dead reports whether an event was cancelled before firing.
func (ev *event) dead() bool { return ev.fn == nil && ev.node == nil }

// popNext removes and returns the earliest pending event (live or
// cancelled) from the active scheduler.
func (s *Sim) popNext() (int32, time.Duration, bool) {
	if s.wheel != nil {
		return s.wheelPop()
	}
	if len(s.heap) == 0 {
		return 0, 0, false
	}
	he := s.heap[0]
	s.heapPopRoot()
	return he.idx, he.at, true
}

// Step executes the next pending event. It reports whether an event ran.
func (s *Sim) Step() bool {
	for {
		idx, at, ok := s.popNext()
		if !ok {
			return false
		}
		ev := &s.slab[idx]
		if ev.dead() { // cancelled
			s.recycle(idx)
			continue
		}
		if len(s.lazy) > 0 {
			// Catch lazily-driven bottlenecks up to this event: every
			// phantom boundary ordered before (at, seq) replays first,
			// so its PRNG draws precede the handler's exactly as the
			// events mode interleaves them. Replay never schedules, so
			// ev stays valid.
			s.advanceLazy(at, ev.seq)
		}
		s.now = at
		s.executed++
		s.live--
		if ev.node != nil {
			node, buf, link := ev.node, ev.buf, ev.link
			s.recycle(idx)
			node.Receive(buf, link)
		} else {
			fn := ev.fn
			s.recycle(idx)
			fn()
		}
		return true
	}
}

// Run drains the event queue, then drains any lazily-driven bottleneck
// background to quiescence — the state an events-mode Run reaches via
// boundary events.
func (s *Sim) Run() {
	for s.Step() {
	}
	s.flushLazy()
}

// RunUntil executes events with timestamps <= deadline, then sets the
// clock to deadline. Events scheduled beyond it remain queued; lazily-
// driven bottleneck boundaries up to the deadline are replayed, exactly
// as the events mode would have fired them.
func (s *Sim) RunUntil(deadline time.Duration) {
	for {
		at, ok := s.peekLive()
		if !ok || at > deadline {
			break
		}
		s.Step()
	}
	if len(s.lazy) > 0 {
		s.advanceLazy(deadline, ^uint64(0))
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// peekLive returns the earliest live event time, recycling cancelled
// events it skips over so RunUntil sees true deadlines.
func (s *Sim) peekLive() (time.Duration, bool) {
	if s.wheel != nil {
		return s.wheelPeek()
	}
	for {
		if len(s.heap) == 0 {
			return 0, false
		}
		he := s.heap[0]
		ev := &s.slab[he.idx]
		if !ev.dead() {
			return he.at, true
		}
		s.heapPopRoot()
		s.recycle(he.idx)
	}
}

// Pending reports the number of live events in the queue.
func (s *Sim) Pending() int { return s.live }

// heapEntry is a queued event reference: ordering fields inline (no
// pointer chase in comparisons, no write barrier in swaps) plus the
// slab index of the event body.
type heapEntry struct {
	at  time.Duration
	seq uint64 // tiebreak: FIFO within a timestamp
	idx int32
}

// event is a scheduled callback or packet delivery body. Exactly one of
// fn and node is set for a live event: fn-events run arbitrary code,
// node-events hand buf to node (the per-packet fast path, kept
// closure-free so the hot loop does not allocate). Cancellation nils fn
// in place; the schedulers discard dead events lazily.
type event struct {
	gen uint64 // incremented on recycle; stales Timer handles
	fn  func()

	// Typed delivery payload (node != nil selects it).
	node Node
	buf  *packet.Buf
	link *Link

	// Scheduling fields, shared by both schedulers: the event's absolute
	// time and FIFO sequence, plus the timing wheel's intrusive
	// singly-linked slot chain.
	at   time.Duration
	seq  uint64
	next int32
}

// less orders entries by (at, seq).
func (a heapEntry) less(b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Sim) heapPush(he heapEntry) {
	h := append(s.heap, he)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	s.heap = h
}

func (s *Sim) heapPopRoot() {
	h := s.heap
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	// Sift down.
	n := len(h)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h[l].less(h[smallest]) {
			smallest = l
		}
		if r < n && h[r].less(h[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	s.heap = h
}
