// Package netsim is a deterministic discrete-event network simulator that
// forwards real wire-format IPv4 packets between simulated hosts and
// routers.
//
// The simulator replaces the live Internet used by the original study: it
// provides the same observable surface — packet delivery, loss, TTL
// expiry with quoted ICMP errors, and middleboxes that rewrite the ECN
// field of transit traffic — over a topology that the topology package
// generates. All protocol code (NTP, DNS, TCP, HTTP, traceroute) runs
// unmodified over this substrate.
//
// Design notes:
//
//   - Virtual time. Events are (time, sequence)-ordered in a binary heap;
//     Run drains the heap. There are no wall-clock sleeps, so a campaign
//     covering hours of virtual time completes in seconds.
//   - Determinism. All randomness (link loss, timer jitter in protocols)
//     is drawn from a single seeded PRNG owned by the Sim. The same seed
//     reproduces a byte-identical packet history, which the tests rely on.
//   - Real bytes. Nodes exchange serialized IPv4 datagrams. Routers parse
//     and mutate the actual wire bytes, so header checksums, TTL handling
//     and TOS rewrites behave exactly as on a real path.
package netsim

import (
	"fmt"
	"math/rand"
	"time"
)

// Sim is the discrete-event engine. Create one with NewSim, add nodes and
// links (usually via Network), schedule initial work, then call Run.
type Sim struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	rng    *rand.Rand
	// Stats counters, exposed for benchmarks and capacity planning.
	executed uint64
}

// NewSim returns a simulator whose randomness derives from seed.
func NewSim(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// RNG exposes the simulation's deterministic random source. All model
// randomness must come from here to preserve reproducibility.
func (s *Sim) RNG() *rand.Rand { return s.rng }

// Reseed rewinds the simulation's random source to a fresh stream derived
// from seed. The generator is reseeded in place, so components that
// captured RNG() earlier (links, middlebox policies) observe the new
// stream too. The sharded campaign engine uses this to give every shard
// an identical generated world (same build seed) but an independent,
// shard-specific measurement phase.
func (s *Sim) Reseed(seed int64) { s.rng.Seed(seed) }

// Executed reports how many events have run; useful for benchmarks.
func (s *Sim) Executed() uint64 { return s.executed }

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct{ ev *event }

// Stop cancels the timer if it has not fired. It reports whether the
// timer was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.fn == nil {
		return false
	}
	t.ev.fn = nil
	return true
}

// After schedules fn to run d from now and returns a cancellable handle.
// A negative d is treated as zero: the event runs after the events already
// scheduled for the current instant (FIFO within a timestamp).
func (s *Sim) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("netsim: nil event function")
	}
	if t < s.now {
		t = s.now
	}
	s.seq++
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.events.push(ev)
	return &Timer{ev: ev}
}

// Step executes the next pending event. It reports whether an event ran.
func (s *Sim) Step() bool {
	for {
		ev, ok := s.events.pop()
		if !ok {
			return false
		}
		if ev.fn == nil { // cancelled
			continue
		}
		s.now = ev.at
		fn := ev.fn
		ev.fn = nil
		s.executed++
		fn()
		return true
	}
}

// Run drains the event queue.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the
// clock to deadline. Events scheduled beyond it remain queued.
func (s *Sim) RunUntil(deadline time.Duration) {
	for {
		ev, ok := s.events.peek()
		if !ok || ev.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending reports the number of live events in the queue.
func (s *Sim) Pending() int {
	n := 0
	for _, ev := range s.events.h {
		if ev.fn != nil {
			n++
		}
	}
	return n
}

// event is a scheduled callback. Cancellation nils fn in place; the heap
// discards dead events lazily on pop.
type event struct {
	at  time.Duration
	seq uint64 // tiebreak: FIFO within a timestamp
	fn  func()
}

func (e *event) String() string { return fmt.Sprintf("event@%v#%d", e.at, e.seq) }

// eventHeap is a hand-rolled binary min-heap ordered by (at, seq). A
// concrete type avoids the interface boxing of container/heap on the
// simulator's hottest path.
type eventHeap struct{ h []*event }

func (q *eventHeap) less(i, j int) bool {
	a, b := q.h[i], q.h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventHeap) push(ev *event) {
	q.h = append(q.h, ev)
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *eventHeap) peek() (*event, bool) {
	// Skip over cancelled events so RunUntil sees true deadlines.
	for len(q.h) > 0 && q.h[0].fn == nil {
		q.popRoot()
	}
	if len(q.h) == 0 {
		return nil, false
	}
	return q.h[0], true
}

func (q *eventHeap) pop() (*event, bool) {
	if len(q.h) == 0 {
		return nil, false
	}
	return q.popRoot(), true
}

func (q *eventHeap) popRoot() *event {
	root := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h[last] = nil
	q.h = q.h[:last]
	q.siftDown(0)
	return root
}

func (q *eventHeap) siftDown(i int) {
	n := len(q.h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.h[i], q.h[smallest] = q.h[smallest], q.h[i]
		i = smallest
	}
}
