package netsim

import (
	"testing"
	"time"

	"repro/internal/ecn"
	"repro/internal/packet"
)

func TestReplaceAttachment(t *testing.T) {
	sim := NewSim(1)
	n := NewNetwork(sim)
	r1 := n.AddRouter("r1", packet.AddrFrom4(10, 255, 0, 1), 1)
	r2 := n.AddRouter("r2", packet.AddrFrom4(10, 255, 1, 1), 2)
	fw := n.AddRouter("fw", packet.AddrFrom4(10, 255, 2, 1), 2)
	n.Connect(r1, r2, time.Millisecond, 0)
	n.Connect(r2, fw, time.Millisecond, 0)

	client, _ := n.AddHost("client", packet.AddrFrom4(10, 0, 0, 1))
	server, _ := n.AddHost("server", packet.AddrFrom4(10, 0, 1, 1))
	n.Attach(client, r1, time.Millisecond, 0)
	n.Attach(server, r2, time.Millisecond, 0)

	// Move the server behind the firewall router before routing.
	if _, err := n.ReplaceAttachment(server, fw, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}

	// Path must now run through fw (3 routers instead of 2).
	path, err := n.PathRouters(client, server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[2] != fw {
		labels := make([]string, len(path))
		for i, r := range path {
			labels[i] = r.Label()
		}
		t.Fatalf("path = %v, want [r1 r2 fw]", labels)
	}

	// Delivery still works.
	got := false
	server.BindUDP(7, func(*Host, packet.IPv4Header, packet.UDPHeader, []byte) { got = true })
	client.SendUDP(server.Addr(), 1, 7, 64, ecn.NotECT, nil)
	sim.Run()
	if !got {
		t.Error("no delivery after rehoming")
	}

	// The old attachment must be fully gone: r2 has no host link.
	if _, stale := r2.hostLinks[server.Addr()]; stale {
		t.Error("stale host link on previous router")
	}
}

func TestReplaceAttachmentUnattached(t *testing.T) {
	n := NewNetwork(NewSim(1))
	r := n.AddRouter("r", packet.AddrFrom4(10, 255, 0, 1), 1)
	h, _ := n.AddHost("h", packet.AddrFrom4(10, 0, 0, 1))
	if _, err := n.ReplaceAttachment(h, r, 0); err == nil {
		t.Error("rehoming an unattached host must fail")
	}
}

func TestSetDelayAffectsLatency(t *testing.T) {
	sim := NewSim(1)
	n := NewNetwork(sim)
	r := n.AddRouter("r", packet.AddrFrom4(10, 255, 0, 1), 1)
	a, _ := n.AddHost("a", packet.AddrFrom4(10, 0, 0, 1))
	b, _ := n.AddHost("b", packet.AddrFrom4(10, 0, 0, 2))
	la, _ := n.Attach(a, r, time.Millisecond, 0)
	n.Attach(b, r, time.Millisecond, 0)
	n.ComputeRoutes()

	la.SetDelay(a, 50*time.Millisecond)
	if la.Delay(a) != 50*time.Millisecond {
		t.Fatalf("Delay = %v", la.Delay(a))
	}
	var arrived time.Duration
	b.BindUDP(7, func(*Host, packet.IPv4Header, packet.UDPHeader, []byte) { arrived = sim.Now() })
	a.SendUDP(b.Addr(), 1, 7, 64, ecn.NotECT, nil)
	sim.Run()
	if arrived != 51*time.Millisecond {
		t.Errorf("arrival at %v, want 51ms", arrived)
	}
}

func TestAsymmetricLoss(t *testing.T) {
	sim := NewSim(5)
	n := NewNetwork(sim)
	r := n.AddRouter("r", packet.AddrFrom4(10, 255, 0, 1), 1)
	a, _ := n.AddHost("a", packet.AddrFrom4(10, 0, 0, 1))
	b, _ := n.AddHost("b", packet.AddrFrom4(10, 0, 0, 2))
	la, _ := n.Attach(a, r, 0, 0)
	n.Attach(b, r, 0, 0)
	n.ComputeRoutes()

	// Loss only in the a→r direction; replies are clean.
	la.SetLoss(a, 1.0)
	if la.Loss(a) != 1.0 || la.Loss(r) != 0 {
		t.Fatal("directional loss setters broken")
	}
	delivered := 0
	b.BindUDP(7, func(*Host, packet.IPv4Header, packet.UDPHeader, []byte) { delivered++ })
	for i := 0; i < 10; i++ {
		a.SendUDP(b.Addr(), 1, 7, 64, ecn.NotECT, nil)
		b.SendUDP(a.Addr(), 7, 1, 64, ecn.NotECT, nil) // other direction unaffected
	}
	sim.Run()
	if delivered != 0 {
		t.Errorf("a→b delivered %d despite 100%% loss", delivered)
	}
	sent, dropped := la.Stats(a)
	if sent != 10 || dropped != 10 {
		t.Errorf("stats = %d/%d", sent, dropped)
	}
}

func TestPolicyDropCounter(t *testing.T) {
	sim := NewSim(1)
	n := NewNetwork(sim)
	r := n.AddRouter("r", packet.AddrFrom4(10, 255, 0, 1), 1)
	a, _ := n.AddHost("a", packet.AddrFrom4(10, 0, 0, 1))
	b, _ := n.AddHost("b", packet.AddrFrom4(10, 0, 0, 2))
	n.Attach(a, r, 0, 0)
	n.Attach(b, r, 0, 0)
	n.ComputeRoutes()

	r.AddPolicy(dropAll{})
	a.SendUDP(b.Addr(), 1, 7, 64, ecn.NotECT, nil)
	a.SendUDP(b.Addr(), 1, 7, 64, ecn.NotECT, nil)
	sim.Run()
	if r.PolicyDrops != 2 {
		t.Errorf("PolicyDrops = %d", r.PolicyDrops)
	}
	if len(r.Policies()) != 1 {
		t.Errorf("Policies() = %d", len(r.Policies()))
	}
}

// dropAll is a test policy.
type dropAll struct{}

func (dropAll) Apply(*Router, []byte) Verdict { return Drop }
func (dropAll) Name() string                  { return "drop-all" }

func TestPendingCount(t *testing.T) {
	s := NewSim(1)
	t1 := s.After(time.Second, func() {})
	s.After(2*time.Second, func() {})
	if s.Pending() != 2 {
		t.Errorf("pending = %d", s.Pending())
	}
	t1.Stop()
	if s.Pending() != 1 {
		t.Errorf("pending after cancel = %d", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Errorf("pending after run = %d", s.Pending())
	}
}

func TestHostCounters(t *testing.T) {
	sim := NewSim(1)
	n := NewNetwork(sim)
	r := n.AddRouter("r", packet.AddrFrom4(10, 255, 0, 1), 1)
	a, _ := n.AddHost("a", packet.AddrFrom4(10, 0, 0, 1))
	b, _ := n.AddHost("b", packet.AddrFrom4(10, 0, 0, 2))
	n.Attach(a, r, 0, 0)
	n.Attach(b, r, 0, 0)
	n.ComputeRoutes()
	b.BindUDP(7, func(h *Host, ip packet.IPv4Header, u packet.UDPHeader, p []byte) {
		h.SendUDP(ip.Src, u.DstPort, u.SrcPort, 64, ecn.NotECT, nil)
	})
	a.BindUDP(1, func(*Host, packet.IPv4Header, packet.UDPHeader, []byte) {})
	a.SendUDP(b.Addr(), 1, 7, 64, ecn.NotECT, nil)
	sim.Run()
	if a.Sent != 1 || a.Received != 1 {
		t.Errorf("host a counters: sent=%d received=%d", a.Sent, a.Received)
	}
	if b.Sent != 1 || b.Received != 1 {
		t.Errorf("host b counters: sent=%d received=%d", b.Sent, b.Received)
	}
}

func TestRouterForwardedCounter(t *testing.T) {
	sim := NewSim(1)
	_, h1, h2, routers := lineTopology(t, sim, 3, 0)
	h2.BindUDP(7, func(*Host, packet.IPv4Header, packet.UDPHeader, []byte) {})
	h1.SendUDP(h2.Addr(), 1, 7, 64, ecn.NotECT, nil)
	sim.Run()
	for i, r := range routers {
		if r.Forwarded != 1 {
			t.Errorf("router %d forwarded %d", i, r.Forwarded)
		}
	}
}
