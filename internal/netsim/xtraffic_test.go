package netsim

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/ecn"
	"repro/internal/packet"
)

// driveXTraffic runs one bottlenecked link under a deliberately hostile
// schedule for the lazy replay: paced foreground packets (mixed ECN
// codepoints, occasional bursts), random link loss, a competing
// PRNG-drawing timer chain (standing in for the rest of a campaign
// sharing the simulation's random stream), and RunUntil pauses. It
// returns a transcript of everything observable.
func driveXTraffic(t *testing.T, mode XTrafficMode, discipline string, util float64) string {
	t.Helper()
	sim := NewSim(2015)
	sim.SetXTrafficMode(mode)
	a, b := &sinkNode{label: "a"}, &sinkNode{label: "b", sim: sim}
	l := newLink(sim, a, b, time.Millisecond, 0.02)
	q, err := aqm.New(discipline, 40, sim.RNG())
	if err != nil {
		t.Fatal(err)
	}
	l.SetBottleneck(a, 125_000, util, q)

	// Competing consumer: draws from the shared PRNG on its own cadence.
	// If the lazy replay shifted any boundary draw past one of these, the
	// loss pattern — and with it the whole transcript — would diverge.
	noise := 0
	var tick func()
	tick = func() {
		sim.RNG().Float64()
		noise++
		if noise < 4000 {
			sim.After(3700*time.Microsecond, tick)
		}
	}
	sim.After(500*time.Microsecond, tick)

	cps := []ecn.Codepoint{ecn.ECT0, ecn.NotECT, ecn.ECT1, ecn.ECT0}
	var send func(i int)
	send = func(i int) {
		if i >= 600 {
			return
		}
		n := 1 + i%3 // occasional bursts queue several foreground packets
		for j := 0; j < n; j++ {
			l.Send(a, testWire(t, cps[(i+j)%len(cps)], 80+(i%5)*60))
		}
		sim.After(time.Duration(5+i%17)*time.Millisecond, func() { send(i + 1) })
	}
	send(0)

	// A RunUntil pause mid-campaign: the clock jumps past queued
	// boundaries, which both drives must handle identically.
	sim.RunUntil(250 * time.Millisecond)
	sim.Run()

	sum := fmt.Sprintf("delivered=%d noise=%d pending=%d stats=%+v\n",
		len(b.received), noise, sim.Pending(), q.Stats())
	sent, dropped := l.Stats(a)
	sum += fmt.Sprintf("link sent=%d dropped=%d finalDraw=%v\n", sent, dropped, sim.RNG().Float64())
	for i, wire := range b.received {
		cp, _ := packet.WireECN(wire)
		sum += fmt.Sprintf("%d %v %v %d\n", i, b.times[i], cp, len(wire))
	}
	return sum
}

// TestXTrafficDrivesEquivalent is the link-level differential gate: for
// every discipline — including CoDel, whose head drops put the lazy
// drive into its evented hybrid whenever foreground is queued — the
// lazy catch-up replay must reproduce the event-per-boundary oracle's
// transcript byte for byte: delivery times, ECN codepoints, loss
// pattern, queue statistics, and the shared PRNG's final position.
func TestXTrafficDrivesEquivalent(t *testing.T) {
	for _, discipline := range []string{"droptail", "red", "codel"} {
		for _, util := range []float64{0, 0.6, 0.95, 1.3} {
			name := fmt.Sprintf("%s/util=%.2f", discipline, util)
			t.Run(name, func(t *testing.T) {
				events := driveXTraffic(t, XTrafficEvents, discipline, util)
				lazy := driveXTraffic(t, XTrafficLazy, discipline, util)
				if events != lazy {
					t.Errorf("transcripts diverge between drives:\nevents:\n%.600s\nlazy:\n%.600s", events, lazy)
				}
			})
		}
	}
}

// TestLazyReplayCountsBoundaries: the lazy drive must not sneak phantom
// boundaries through the scheduler — every one is replayed, none are
// events, and the evented oracle shows the mirror image.
func TestLazyReplayCountsBoundaries(t *testing.T) {
	run := func(mode XTrafficMode) *Sim {
		sim := NewSim(7)
		sim.SetXTrafficMode(mode)
		a, b := &sinkNode{label: "a"}, &sinkNode{label: "b"}
		l := newLink(sim, a, b, time.Millisecond, 0)
		l.SetBottleneck(a, 50_000, 1.1, aqm.NewRED(32, sim.RNG()))
		for i := 0; i < 10; i++ {
			l.Send(a, testWire(t, ecn.ECT0, 200))
		}
		sim.Run()
		return sim
	}
	events := run(XTrafficEvents)
	lazy := run(XTrafficLazy)
	if events.PhantomEvents() == 0 || events.ReplayedBoundaries() != 0 {
		t.Errorf("events drive: %d phantom events, %d replayed; want >0, 0",
			events.PhantomEvents(), events.ReplayedBoundaries())
	}
	if lazy.PhantomEvents() != 0 || lazy.ReplayedBoundaries() != events.PhantomEvents() {
		t.Errorf("lazy drive: %d phantom events, %d replayed; want 0, %d",
			lazy.PhantomEvents(), lazy.ReplayedBoundaries(), events.PhantomEvents())
	}
	if saved := events.Executed() - lazy.Executed(); saved != events.PhantomEvents() {
		t.Errorf("lazy drive saved %d events, want exactly the %d phantom boundaries",
			saved, events.PhantomEvents())
	}
}
