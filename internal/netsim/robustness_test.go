package netsim

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/ecn"
	"repro/internal/packet"
)

// Routers must drop corrupt packets without disturbing the simulation —
// the forwarding-plane behaviour of real hardware.
func TestRouterDropsCorruptPackets(t *testing.T) {
	sim := NewSim(1)
	_, h1, h2, routers := lineTopology(t, sim, 2, 0)
	delivered := 0
	h2.BindUDP(7, func(*Host, packet.IPv4Header, packet.UDPHeader, []byte) { delivered++ })

	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		wire, _ := packet.BuildUDP(h1.Addr(), h2.Addr(), 1, 7, 64, ecn.NotECT, uint16(i), nil)
		// Corrupt a random byte in half the packets.
		if i%2 == 0 {
			wire[rng.Intn(len(wire))] ^= 0xFF
		}
		h1.SendRaw(wire)
	}
	sim.Run()
	// All intact packets arrive; corrupt ones die at the first router
	// (either checksum failure there or at the host). No panics, no
	// stuck events.
	if delivered < 90 || delivered > 110 {
		t.Errorf("delivered = %d of ~100 intact", delivered)
	}
	if routers[0].Forwarded == 0 {
		t.Error("nothing forwarded")
	}
}

// A host silently ignores packets not addressed to it (the simulator
// has no promiscuous mode; taps still see the bytes).
func TestHostIgnoresMisdelivered(t *testing.T) {
	sim := NewSim(1)
	n := NewNetwork(sim)
	h, _ := n.AddHost("h", packet.AddrFrom4(10, 0, 0, 1))
	handled := false
	h.BindUDP(7, func(*Host, packet.IPv4Header, packet.UDPHeader, []byte) { handled = true })
	tapped := 0
	h.AddTap(func(TapDirection, time.Duration, []byte) { tapped++ })

	wire, _ := packet.BuildUDP(
		packet.AddrFrom4(10, 9, 9, 9), packet.AddrFrom4(10, 0, 0, 99), // not h's address
		1, 7, 64, ecn.NotECT, 1, nil)
	h.Receive(packet.AdoptBuf(wire), nil)
	sim.Run()
	if handled {
		t.Error("host handled a packet addressed elsewhere")
	}
	if tapped != 1 {
		t.Errorf("tap saw %d packets, want 1", tapped)
	}
}

// TTL-0 arrivals at a host are still delivered (TTL is checked by
// routers before forwarding; a packet that reaches its destination is
// consumed regardless).
func TestHostAcceptsFinalHopRegardlessOfTTL(t *testing.T) {
	sim := NewSim(1)
	_, h1, h2, _ := lineTopology(t, sim, 2, 0)
	got := false
	h2.BindUDP(7, func(*Host, packet.IPv4Header, packet.UDPHeader, []byte) { got = true })
	// TTL exactly the number of router hops: decremented to 0 at the
	// last router but forwarded (expiry only fires when it reaches 0
	// BEFORE forwarding, i.e. at the router that would make it negative).
	h1.SendUDP(h2.Addr(), 1, 7, 3, ecn.NotECT, nil)
	sim.Run()
	if !got {
		t.Error("packet with just-enough TTL not delivered")
	}
}
