package geo

import (
	"testing"

	"repro/internal/iptable"
	"repro/internal/packet"
)

func sampleDB() *DB {
	db := &DB{}
	db.Add(iptable.MustParsePrefix("81.0.0.0/8"), Location{Region: Europe, Country: "GB", City: "Glasgow", Lat: 55.86, Lon: -4.25})
	db.Add(iptable.MustParsePrefix("81.1.0.0/16"), Location{Region: Europe, Country: "DE", City: "Frankfurt", Lat: 50.11, Lon: 8.68})
	db.Add(iptable.MustParsePrefix("200.0.0.0/8"), Location{Region: SouthAmerica, Country: "BR", City: "Sao Paulo", Lat: -23.5, Lon: -46.6})
	return db
}

func TestLookupLongestMatch(t *testing.T) {
	db := sampleDB()
	loc, ok := db.Lookup(packet.MustParseAddr("81.1.2.3"))
	if !ok || loc.Country != "DE" {
		t.Errorf("lookup = %+v,%v want DE", loc, ok)
	}
	loc, ok = db.Lookup(packet.MustParseAddr("81.2.0.1"))
	if !ok || loc.Country != "GB" {
		t.Errorf("lookup = %+v,%v want GB", loc, ok)
	}
}

func TestLookupUnknown(t *testing.T) {
	db := sampleDB()
	loc, ok := db.Lookup(packet.MustParseAddr("8.8.8.8"))
	if ok {
		t.Error("unknown address reported found")
	}
	if loc.Region != Unknown {
		t.Errorf("unknown region = %v", loc.Region)
	}
}

func TestRegionCounts(t *testing.T) {
	db := sampleDB()
	addrs := []packet.Addr{
		packet.MustParseAddr("81.0.0.1"),  // Europe
		packet.MustParseAddr("81.1.0.1"),  // Europe (DE)
		packet.MustParseAddr("200.1.1.1"), // South America
		packet.MustParseAddr("9.9.9.9"),   // Unknown
	}
	counts := db.RegionCounts(addrs)
	if counts[Europe] != 2 || counts[SouthAmerica] != 1 || counts[Unknown] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestCountryCounts(t *testing.T) {
	db := sampleDB()
	addrs := []packet.Addr{
		packet.MustParseAddr("81.0.0.1"),
		packet.MustParseAddr("81.1.0.1"),
		packet.MustParseAddr("9.9.9.9"),
	}
	counts := db.CountryCounts(addrs)
	if counts["GB"] != 1 || counts["DE"] != 1 || counts["??"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestLocateSorted(t *testing.T) {
	db := sampleDB()
	addrs := []packet.Addr{
		packet.MustParseAddr("200.1.1.1"),
		packet.MustParseAddr("81.0.0.1"),
	}
	pts := db.Locate(addrs)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if !pts[0].Addr.Less(pts[1].Addr) {
		t.Error("points not sorted")
	}
	if pts[0].Loc.Country != "GB" {
		t.Errorf("first point = %+v", pts[0])
	}
}

func TestRegionsComplete(t *testing.T) {
	rs := Regions()
	if len(rs) != 7 {
		t.Fatalf("regions = %d, want 7 (Table 1 rows)", len(rs))
	}
	if rs[len(rs)-1] != Unknown {
		t.Error("Unknown must come last, as in Table 1")
	}
}

func TestDBString(t *testing.T) {
	if sampleDB().String() == "" {
		t.Error("empty String()")
	}
}
