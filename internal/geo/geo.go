// Package geo is the stand-in for the MaxMind GeoLite2 City database the
// paper used to place NTP pool servers on the map (Figure 1, Table 1).
//
// It offers the same operation — IP address in, location out — backed by
// a prefix table that the topology generator populates. Regions use the
// paper's Table 1 vocabulary.
package geo

import (
	"fmt"
	"sort"

	"repro/internal/iptable"
	"repro/internal/packet"
)

// Region is a continental region as used in the paper's Table 1.
type Region string

// The paper's regions.
const (
	Africa       Region = "Africa"
	Asia         Region = "Asia"
	Australia    Region = "Australia"
	Europe       Region = "Europe"
	NorthAmerica Region = "North America"
	SouthAmerica Region = "South America"
	Unknown      Region = "Unknown"
)

// Regions lists all regions in the paper's table order.
func Regions() []Region {
	return []Region{Africa, Asia, Australia, Europe, NorthAmerica, SouthAmerica, Unknown}
}

// Location is a database record: what a GeoLite2 city lookup returns, at
// the granularity the study actually used.
type Location struct {
	Region  Region
	Country string // ISO 3166-1 alpha-2
	City    string
	Lat     float64
	Lon     float64
}

// DB is an IP-to-location database.
type DB struct {
	table iptable.Table[Location]
}

// Add registers a prefix with its location.
func (db *DB) Add(p iptable.Prefix, loc Location) { db.table.Insert(p, loc) }

// Lookup resolves an address. Addresses not in the database return a
// Location with Region Unknown and ok = false, matching how the paper
// reports two servers with unknown location.
func (db *DB) Lookup(a packet.Addr) (Location, bool) {
	loc, _, ok := db.table.Lookup(a)
	if !ok {
		return Location{Region: Unknown}, false
	}
	return loc, true
}

// Len reports the number of prefixes in the database.
func (db *DB) Len() int { return db.table.Len() }

// RegionCounts tallies the regions of a set of addresses: the computation
// behind Table 1.
func (db *DB) RegionCounts(addrs []packet.Addr) map[Region]int {
	counts := make(map[Region]int)
	for _, a := range addrs {
		loc, _ := db.Lookup(a)
		counts[loc.Region]++
	}
	return counts
}

// CountryCounts tallies countries; addresses without a record count under
// the pseudo-country "??".
func (db *DB) CountryCounts(addrs []packet.Addr) map[string]int {
	counts := make(map[string]int)
	for _, a := range addrs {
		loc, ok := db.Lookup(a)
		if !ok {
			counts["??"]++
			continue
		}
		counts[loc.Country]++
	}
	return counts
}

// Point is a located address, used to render Figure 1's world map.
type Point struct {
	Addr packet.Addr
	Loc  Location
}

// Locate maps each address to a Point, sorted by address for stable
// output.
func (db *DB) Locate(addrs []packet.Addr) []Point {
	pts := make([]Point, 0, len(addrs))
	for _, a := range addrs {
		loc, _ := db.Lookup(a)
		pts = append(pts, Point{Addr: a, Loc: loc})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Addr.Less(pts[j].Addr) })
	return pts
}

// String describes the database size.
func (db *DB) String() string {
	return fmt.Sprintf("geo.DB{%d prefixes}", db.Len())
}
