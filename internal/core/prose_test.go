package core

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/topology"
)

// TestCampaignProse covers the §4.1 prose observations that are not in
// any figure: the early (batch 1) traces show higher reachability than
// the later ones (pool churn), and wireless traces vary more than wired.
func TestCampaignProse(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trace campaign in -short mode")
	}
	w := smallWorld(t, 77)
	plan := map[string]int{
		"U. Glasgow wired":    8,
		"U. Glasgow wireless": 8,
	}
	c := NewCampaign(w, CampaignConfig{TracesPerVantage: plan})
	var d *dataset.Dataset
	c.Run(func(got *dataset.Dataset) { d = got })
	w.Sim.Run()
	if d == nil {
		t.Fatal("campaign incomplete")
	}

	// Batch 1 vs batch 2 not-ECT reachability (pool churn).
	var batch1, batch2, n1, n2 float64
	for _, tr := range d.Traces {
		udp, _, _, _ := tr.CountReachable()
		if tr.Batch == 1 {
			batch1 += float64(udp)
			n1++
		} else {
			batch2 += float64(udp)
			n2++
		}
	}
	if n1 == 0 || n2 == 0 {
		t.Fatal("missing batches")
	}
	if batch1/n1 <= batch2/n2 {
		t.Errorf("batch1 avg %.1f not above batch2 avg %.1f (churn missing)", batch1/n1, batch2/n2)
	}

	// Wireless traces show more spread in Figure 2a percentages than
	// wired ones.
	f2 := analysis.ComputeFigure2a(d)
	spread := func(vantage string) (lo, hi float64) {
		lo, hi = 101, -1
		for _, p := range f2.Points {
			if p.Vantage != vantage {
				continue
			}
			if p.Pct < lo {
				lo = p.Pct
			}
			if p.Pct > hi {
				hi = p.Pct
			}
		}
		return lo, hi
	}
	wiredLo, wiredHi := spread("U. Glasgow wired")
	wlLo, wlHi := spread("U. Glasgow wireless")
	if (wlHi - wlLo) <= (wiredHi - wiredLo) {
		t.Errorf("wireless spread %.2f ≤ wired spread %.2f", wlHi-wlLo, wiredHi-wiredLo)
	}
	_ = topology.Batch1
}
