package core

import (
	"time"

	"repro/internal/ecn"
	"repro/internal/httpmin"
	"repro/internal/netsim"
	"repro/internal/ntp"
	"repro/internal/packet"
	"repro/internal/topology"
)

// This file holds the extension experiments the paper points at but
// does not perform:
//
//   - ECN usability over TCP (Kühlewind et al.'s test: send CE-marked
//     segments on a negotiated connection and check for the ECE echo;
//     they found ≈90% of negotiating hosts usable). §5 of the paper
//     cites the result as comparable to its UDP findings.
//   - Destination-arrival ground truth: §4.2 notes "this data does not
//     tell us whether marked packets reach their destination with the
//     ECT(0) mark intact". The simulator can answer that directly by
//     observing arrivals at the server hosts.
//   - ECT(1) probing: the paper used ECT(0) "to match the typical
//     marking used with ECN for TCP"; the ECT(1) sweep checks whether
//     the middlebox population treats the codepoints differently.

// ECNUsabilityResult summarises the Kühlewind-style TCP usability test.
type ECNUsabilityResult struct {
	Negotiated int // connections that completed an ECN handshake
	Usable     int // of those, echoed ECE for our CE-marked segments
}

// Rate returns the usable fraction in percent.
func (r ECNUsabilityResult) Rate() float64 {
	if r.Negotiated == 0 {
		return 0
	}
	return 100 * float64(r.Usable) / float64(r.Negotiated)
}

// RunECNUsability performs the usability test from a vantage point
// against every server (or a stride-sampled subset): HTTP GET over an
// ECN-negotiated connection whose request segments are CE-marked; a
// correct peer echoes ECE on its acknowledgements.
func RunECNUsability(v *topology.Vantage, servers []packet.Addr, stride int, done func(ECNUsabilityResult)) {
	if stride <= 0 {
		stride = 1
	}
	var res ECNUsabilityResult
	var next func(i int)
	sim := v.Host.Sim()
	next = func(i int) {
		if i >= len(servers) {
			done(res)
			return
		}
		httpmin.GetWithConfig(v.Stack, servers[i], httpmin.Port, "/",
			httpmin.GetConfig{RequestECN: true, MarkCE: true},
			func(r httpmin.GetResult) {
				if r.ECNNegotiated && r.Err == nil {
					res.Negotiated++
					if r.ECESeen > 0 {
						res.Usable++
					}
				}
				sim.After(0, func() { next(i + stride) })
			})
	}
	next(0)
}

// ArrivalCensus is the destination-side ground truth for one probe
// sweep: what codepoint the ECT(0)-marked requests actually carried on
// arrival at each server's NIC.
type ArrivalCensus struct {
	ArrivedECT0     int // mark intact end to end
	ArrivedBleached int // arrived not-ECT: a bleacher on the path
	ArrivedCE       int // arrived CE (none expected: no AQM marking here)
	NoArrival       int // dropped en route (firewall) or host offline
}

// RunArrivalCensus sends one ECT(0) NTP probe to every server while
// counting, at each server host, the codepoint of arriving NTP requests
// — answering the question the paper's traceroutes could not.
func RunArrivalCensus(w *topology.World, v *topology.Vantage, done func(ArrivalCensus)) {
	var census ArrivalCensus
	arrived := make(map[packet.Addr]ecn.Codepoint, len(w.Servers))

	// Ground-truth instrument: run under clean conditions so the census
	// isolates middlebox behaviour from churn and congestion.
	for _, s := range w.Servers {
		s.Host.SetOnline(true)
		if s.Flaky {
			s.Host.Uplink().SetLossBoth(0)
		}
	}
	v.Host.Uplink().SetLossBoth(0)

	// Counting taps on every server host; removed implicitly when the
	// census ends because taps are only consulted during this run.
	for _, s := range w.Servers {
		addr := s.Addr
		s.Host.AddTap(func(dir netsim.TapDirection, _ time.Duration, wire []byte) {
			if dir != netsim.TapIn {
				return
			}
			d, err := packet.Decode(wire)
			if err != nil || d.UDP == nil || d.UDP.DstPort != ntp.Port || d.IP.Src != v.Host.Addr() {
				return
			}
			if _, seen := arrived[addr]; !seen {
				arrived[addr] = d.IP.ECN()
			}
		})
	}

	var next func(i int)
	sim := w.Sim
	next = func(i int) {
		if i == len(w.Servers) {
			for _, s := range w.Servers {
				cp, ok := arrived[s.Addr]
				switch {
				case !ok:
					census.NoArrival++
				case cp == ecn.ECT0:
					census.ArrivedECT0++
				case cp == ecn.NotECT:
					census.ArrivedBleached++
				case cp == ecn.CE:
					census.ArrivedCE++
				}
			}
			done(census)
			return
		}
		// Single attempt: the census asks what arrives, not reachability.
		ntp.Probe(v.Host, w.Servers[i].Addr, ntp.ProbeConfig{ECN: ecn.ECT0, Retransmissions: -1},
			func(ntp.ProbeResult) { sim.After(0, func() { next(i + 1) }) })
	}
	next(0)
}

// ECT1SweepResult compares reachability under ECT(0) and ECT(1).
type ECT1SweepResult struct {
	ReachableECT0 int
	ReachableECT1 int
	Disagree      int // servers where the two codepoints differ
}

// RunECT1Sweep probes every server with ECT(0) and then ECT(1) marked
// requests, comparing outcomes per server.
func RunECT1Sweep(v *topology.Vantage, servers []packet.Addr, done func(ECT1SweepResult)) {
	var res ECT1SweepResult
	sim := v.Host.Sim()
	var next func(i int)
	next = func(i int) {
		if i == len(servers) {
			done(res)
			return
		}
		ntp.Probe(v.Host, servers[i], ntp.ProbeConfig{ECN: ecn.ECT0}, func(r0 ntp.ProbeResult) {
			ntp.Probe(v.Host, servers[i], ntp.ProbeConfig{ECN: ecn.ECT1}, func(r1 ntp.ProbeResult) {
				if r0.Reachable {
					res.ReachableECT0++
				}
				if r1.Reachable {
					res.ReachableECT1++
				}
				if r0.Reachable != r1.Reachable {
					res.Disagree++
				}
				sim.After(0, func() { next(i + 1) })
			})
		})
	}
	next(0)
}
