package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// A complete miniature reproduction: build a world, run a one-vantage
// campaign, and read off the headline comparison.
func Example() {
	sim := netsim.NewSim(2015)
	world, err := topology.Build(sim, topology.SmallConfig())
	if err != nil {
		panic(err)
	}

	campaign := core.NewCampaign(world, core.CampaignConfig{
		TracesPerVantage: map[string]int{"EC2 Ireland": 1},
	})
	var d *dataset.Dataset
	campaign.Run(func(got *dataset.Dataset) { d = got })
	sim.Run()

	udp, udpECT, _, _ := d.Traces[0].CountReachable()
	fmt.Printf("ECT(0) reachability is within a few percent of not-ECT: %v\n",
		float64(udpECT)/float64(udp) > 0.9)
	// Output: ECT(0) reachability is within a few percent of not-ECT: true
}
