package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/ecn"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/traceroute"
)

func smallWorld(t *testing.T, seed int64) *topology.World {
	t.Helper()
	sim := netsim.NewSim(seed)
	w, err := topology.Build(sim, topology.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestProbeServerFourMeasurements(t *testing.T) {
	w := smallWorld(t, 1)
	v := w.Vantages[0]

	// Find an online web+ECN server with no middlebox quirks.
	var target *topology.Server
	for _, s := range w.Servers {
		if s.Web && s.WebECN && !s.ECTUDPFirewalled && !s.NotECTFirewalled && !s.ScopedECT && !s.ScopedNotECT {
			target = s
			break
		}
	}
	if target == nil {
		t.Fatal("no suitable server")
	}

	var got dataset.Observation
	ProbeServer(v, target.Addr, func(o dataset.Observation) { got = o })
	w.Sim.Run()

	if !got.UDPReachable || !got.UDPECTReachable {
		t.Errorf("UDP reachability = %v/%v", got.UDPReachable, got.UDPECTReachable)
	}
	if !got.TCPReachable || !got.TCPECN || !got.TCPECNReachable {
		t.Errorf("TCP = %v ECN = %v", got.TCPReachable, got.TCPECN)
	}
	if got.HTTPStatus != 302 {
		t.Errorf("HTTP status = %d, want pool redirect", got.HTTPStatus)
	}
	if got.UDPAttempts != 1 {
		t.Errorf("UDP attempts = %d", got.UDPAttempts)
	}
}

func TestProbeServerECTFirewalled(t *testing.T) {
	w := smallWorld(t, 2)
	v := w.Vantages[0]
	var target *topology.Server
	for _, s := range w.Servers {
		if s.ECTUDPFirewalled {
			target = s
			break
		}
	}
	var got dataset.Observation
	ProbeServer(v, target.Addr, func(o dataset.Observation) { got = o })
	w.Sim.Run()

	if !got.UDPReachable {
		t.Error("not-ECT UDP should reach")
	}
	if got.UDPECTReachable {
		t.Error("ECT UDP should be blocked")
	}
	if got.UDPECTAttempts != 6 {
		t.Errorf("ECT attempts = %d, want all 6", got.UDPECTAttempts)
	}
	// The firewall only drops UDP: TCP (and TCP ECN, if the server
	// negotiates) still works — Table 2's key observation.
	if target.Web && !got.TCPReachable {
		t.Error("TCP blocked despite UDP-only firewall")
	}
}

func TestProbeServerOffline(t *testing.T) {
	w := smallWorld(t, 3)
	v := w.Vantages[0]
	target := w.Servers[0]
	target.Host.SetOnline(false)

	var got dataset.Observation
	ProbeServer(v, target.Addr, func(o dataset.Observation) { got = o })
	w.Sim.Run()
	if got.UDPReachable || got.UDPECTReachable || got.TCPReachable || got.TCPECN {
		t.Errorf("offline server shows reachability: %+v", got)
	}
}

func TestRunTraceCoversAllServers(t *testing.T) {
	w := smallWorld(t, 4)
	v := w.Vantages[0]
	// All online, clean conditions.
	var tr dataset.Trace
	servers := w.ServerAddrs()[:30]
	RunTrace(v, servers, topology.Batch1, 7, func(t dataset.Trace) { tr = t })
	w.Sim.Run()

	if len(tr.Observations) != 30 {
		t.Fatalf("observations = %d", len(tr.Observations))
	}
	if tr.Vantage != v.Name || tr.Batch != 1 || tr.Index != 7 {
		t.Errorf("trace meta = %+v", tr)
	}
	for i, o := range tr.Observations {
		if o.Server != servers[i] {
			t.Fatalf("observation %d out of order", i)
		}
	}
}

func TestCampaignMini(t *testing.T) {
	w := smallWorld(t, 5)
	c := NewCampaign(w, CampaignConfig{
		TracesPerVantage: map[string]int{
			"Perkins home": 2,
			"EC2 Tokyo":    2,
		},
	})
	var got *dataset.Dataset
	c.Run(func(d *dataset.Dataset) { got = d })
	w.Sim.Run()

	if got == nil {
		t.Fatal("campaign never completed")
	}
	if len(got.Traces) != 4 {
		t.Fatalf("traces = %d", len(got.Traces))
	}
	vantages := got.Vantages()
	if len(vantages) != 2 {
		t.Errorf("vantages = %v", vantages)
	}
	// Batch structure: first half batch 1, second half batch 2.
	perkins := got.TracesFrom("Perkins home")
	if perkins[0].Batch != 1 || perkins[1].Batch != 2 {
		t.Errorf("batches = %d,%d", perkins[0].Batch, perkins[1].Batch)
	}
	// Reachability sanity: most servers answer not-ECT UDP.
	udp, udpECT, tcp, _ := perkins[0].CountReachable()
	n := len(perkins[0].Observations)
	if udp < n*3/4 {
		t.Errorf("UDP reachable = %d of %d", udp, n)
	}
	if udpECT > udp {
		t.Errorf("ECT reachable (%d) exceeds not-ECT (%d)", udpECT, udp)
	}
	if tcp >= udp {
		t.Errorf("TCP reachable (%d) should trail UDP (%d): not all hosts run web servers", tcp, udp)
	}
}

func TestCampaignWithDiscovery(t *testing.T) {
	w := smallWorld(t, 6)
	c := NewCampaign(w, CampaignConfig{
		TracesPerVantage: map[string]int{"U. Glasgow wired": 1},
		DiscoverServers:  true,
		DiscoveryRounds:  12,
	})
	var got *dataset.Dataset
	c.Run(func(d *dataset.Dataset) { got = d })
	w.Sim.Run()
	if got == nil {
		t.Fatal("campaign never completed")
	}
	// Round-robin discovery over 12 rounds must find most of the pool.
	if len(c.Servers) < len(w.Servers)*8/10 {
		t.Errorf("discovered %d of %d servers", len(c.Servers), len(w.Servers))
	}
	if len(got.Traces[0].Observations) != len(c.Servers) {
		t.Error("trace does not cover discovered set")
	}
}

func TestTracerouteCampaign(t *testing.T) {
	w := smallWorld(t, 7)
	var obs []PathObservation
	RunTracerouteCampaign(w, TracerouteCampaignConfig{
		Vantages:     []string{"EC2 Ireland", "Perkins home"},
		TargetStride: 3,
		Config:       traceroute.Config{ProbesPerHop: 1, StopAfterSilent: 2},
	}, func(o []PathObservation) { obs = o })
	w.Sim.Run()

	if len(obs) == 0 {
		t.Fatal("no observations")
	}
	preserved, bleached := 0, 0
	vantagesSeen := map[string]bool{}
	for _, o := range obs {
		vantagesSeen[o.Vantage] = true
		if !o.Responded {
			continue
		}
		switch o.Transition {
		case ecn.Preserved:
			preserved++
		case ecn.Bleached:
			bleached++
		}
	}
	if len(vantagesSeen) != 2 {
		t.Errorf("vantages = %v", vantagesSeen)
	}
	if preserved == 0 {
		t.Error("no preserved hops")
	}
	if bleached == 0 {
		t.Error("no bleached hops despite bleaching stubs in topology")
	}
	frac := float64(preserved) / float64(preserved+bleached)
	if frac < 0.80 {
		t.Errorf("preserved fraction = %.3f; bleaching should be rare", frac)
	}
}

func TestCampaignDeterminism(t *testing.T) {
	run := func() *dataset.Dataset {
		w := smallWorld(t, 99)
		c := NewCampaign(w, CampaignConfig{
			TracesPerVantage: map[string]int{"EC2 Sydney": 2},
		})
		var got *dataset.Dataset
		c.Run(func(d *dataset.Dataset) { got = d })
		w.Sim.Run()
		return got
	}
	a, b := run(), run()
	if len(a.Traces) != len(b.Traces) {
		t.Fatal("trace counts differ")
	}
	for i := range a.Traces {
		ta, tb := a.Traces[i], b.Traces[i]
		for j := range ta.Observations {
			if ta.Observations[j] != tb.Observations[j] {
				t.Fatalf("trace %d observation %d differs:\n%+v\n%+v",
					i, j, ta.Observations[j], tb.Observations[j])
			}
		}
	}
}
