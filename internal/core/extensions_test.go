package core

import (
	"testing"

	"repro/internal/topology"
)

func TestRunECNUsability(t *testing.T) {
	w := smallWorld(t, 21)
	v, _ := w.VantageByName("EC2 Ireland")

	// Ground truth: negotiating servers that are not ECE-broken.
	broken := 0
	negotiating := 0
	for _, s := range w.Servers {
		if s.Web && s.WebECN {
			negotiating++
			if s.BrokenECE {
				broken++
			}
		}
	}
	if broken == 0 {
		t.Skip("seed produced no broken-ECE servers; usability would trivially be 100%")
	}

	var got ECNUsabilityResult
	RunECNUsability(v, w.ServerAddrs(), 1, func(r ECNUsabilityResult) { got = r })
	w.Sim.Run()

	if got.Negotiated == 0 {
		t.Fatal("no ECN connections negotiated")
	}
	if got.Usable >= got.Negotiated {
		t.Errorf("usable %d of %d: broken-ECE servers undetected", got.Usable, got.Negotiated)
	}
	if got.Usable == 0 {
		t.Error("no usable servers at all")
	}
	// Kühlewind found ≈90% usable; our world plants 10% broken. Allow a
	// generous band for the small population and churn.
	if rate := got.Rate(); rate < 70 || rate > 98 {
		t.Errorf("usability rate = %.1f%%, want ≈90%%", rate)
	}
}

func TestRunArrivalCensus(t *testing.T) {
	w := smallWorld(t, 22)
	v, _ := w.VantageByName("U. Glasgow wired")

	var got ArrivalCensus
	RunArrivalCensus(w, v, func(c ArrivalCensus) { got = c })
	w.Sim.Run()

	total := got.ArrivedECT0 + got.ArrivedBleached + got.ArrivedCE + got.NoArrival
	if total != len(w.Servers) {
		t.Fatalf("census covers %d of %d servers", total, len(w.Servers))
	}
	if got.ArrivedCE != 0 {
		t.Errorf("CE arrivals = %d; no AQM marking in the default world", got.ArrivedCE)
	}
	// Bleached arrivals: servers behind always-bleaching stubs arrive
	// not-ECT; those behind sometimes-bleachers (probability 0.5) may
	// arrive intact, so ground truth is a band.
	cfg := topology.SmallConfig()
	wantBleached := 0
	for _, s := range w.Servers {
		if s.BleachedPath && !s.ECTUDPFirewalled && !s.ScopedECT {
			wantBleached++
		}
	}
	sometimesMax := cfg.SometimesBleachedStubs * cfg.ServersPerStub
	if got.ArrivedBleached > wantBleached || got.ArrivedBleached < wantBleached-sometimesMax {
		t.Errorf("bleached arrivals = %d, ground truth band [%d, %d]",
			got.ArrivedBleached, wantBleached-sometimesMax, wantBleached)
	}
	// No-arrivals: the ECT-UDP firewalled population (scoped ones pass
	// for this vantage — Glasgow is out of scope).
	if got.NoArrival != cfg.ECTUDPFirewalledServers {
		t.Errorf("no-arrival = %d, want %d firewalled", got.NoArrival, cfg.ECTUDPFirewalledServers)
	}
	if got.ArrivedECT0 == 0 {
		t.Error("no intact arrivals")
	}
}

func TestRunECT1Sweep(t *testing.T) {
	w := smallWorld(t, 23)
	v, _ := w.VantageByName("EC2 Tokyo")

	var got ECT1SweepResult
	RunECT1Sweep(v, w.ServerAddrs(), func(r ECT1SweepResult) { got = r })
	w.Sim.Run()

	// The modelled middleboxes treat ECT(0) and ECT(1) identically
	// (both are "ECT"), so the sweeps must agree server by server.
	if got.Disagree != 0 {
		t.Errorf("ECT(0)/ECT(1) disagree on %d servers", got.Disagree)
	}
	if got.ReachableECT0 != got.ReachableECT1 {
		t.Errorf("reachable: ECT0 %d vs ECT1 %d", got.ReachableECT0, got.ReachableECT1)
	}
	if got.ReachableECT0 == 0 {
		t.Error("nothing reachable")
	}
}
