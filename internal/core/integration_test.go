package core

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/traceroute"
)

// TestPaperShapeEndToEnd runs a reduced campaign over a small world and
// asserts the qualitative results of every section of the paper. This is
// the repository's keystone test: if it passes, the substrate,
// measurement engine and analysis agree with the study's findings.
func TestPaperShapeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test in -short mode")
	}
	sim := netsim.NewSim(2015)
	w, err := topology.Build(sim, topology.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}

	plan := map[string]int{}
	for _, v := range w.Vantages {
		plan[v.Name] = 4
	}
	c := NewCampaign(w, CampaignConfig{TracesPerVantage: plan})
	var d *dataset.Dataset
	c.Run(func(got *dataset.Dataset) { d = got })
	sim.Run()
	if d == nil || len(d.Traces) != 4*13 {
		t.Fatalf("campaign incomplete: %v", d)
	}

	// §4.1 / Figure 2a: high but sub-100% ECT reachability; every trace
	// above 80% (the paper's small world bound of 90% needs the full
	// population; the small pool amplifies per-server effects).
	f2a := analysis.ComputeFigure2a(d)
	if f2a.Average < 88 || f2a.Average >= 100 {
		t.Errorf("Figure 2a average = %.2f%%; paper: 98.97%%", f2a.Average)
	}
	if f2a.Minimum < 70 {
		t.Errorf("Figure 2a minimum = %.2f%%", f2a.Minimum)
	}

	// Figure 2b: converse higher than forward direction.
	f2b := analysis.ComputeFigure2b(d)
	if f2b.Average <= f2a.Average {
		t.Errorf("Figure 2b (%.2f%%) should exceed 2a (%.2f%%)", f2b.Average, f2a.Average)
	}

	// §4.1 prose: not-ECT reachability below pool size (churn) but high.
	poolSize := float64(len(w.Servers))
	if f2a.AvgUDPReachable < poolSize*0.75 || f2a.AvgUDPReachable >= poolSize {
		t.Errorf("avg UDP reachable = %.0f of %.0f", f2a.AvgUDPReachable, poolSize)
	}

	// Figure 3a: persistent spikes ≈ firewalled servers (4 in
	// SmallConfig, ±scoped extras), similar from every vantage.
	f3a := analysis.ComputeFigure3a(d)
	cfg := topology.SmallConfig()
	for v, n := range f3a.SpikesOver50 {
		min := cfg.ECTUDPFirewalledServers - 2
		max := cfg.ECTUDPFirewalledServers + cfg.SourceScopedECTServers + 2
		if n < min || n > max {
			t.Errorf("%s: %d spikes, want %d..%d", v, n, min, max)
		}
	}

	// Figure 3b: far fewer converse spikes — the planted drop-not-ECT
	// servers plus at most one small-sample transient (4 traces per
	// vantage make a 3-of-4 flaky streak possible).
	f3b := analysis.ComputeFigure3b(d)
	if f3b.GlobalSpikes > cfg.NotECTFirewalledServers+cfg.SourceScopedNotECTServers+1 {
		t.Errorf("Figure 3b spikes = %d", f3b.GlobalSpikes)
	}
	if f3b.GlobalSpikes == 0 {
		t.Error("Figure 3b should show at least one persistent converse server")
	}

	// Figure 5: TCP reachability well below UDP; negotiation ≈ 82%.
	f5 := analysis.ComputeFigure5(d)
	if f5.AvgReachable >= f2a.AvgUDPReachable {
		t.Errorf("TCP reachable (%.0f) should trail UDP (%.0f)", f5.AvgReachable, f2a.AvgUDPReachable)
	}
	if f5.NegotiationRate < 70 || f5.NegotiationRate > 92 {
		t.Errorf("ECN negotiation rate = %.1f%%; paper: 82.0%%", f5.NegotiationRate)
	}

	// Figure 6: the measured point extends the literature trend.
	f6 := analysis.ComputeFigure6(f5)
	if f6.Measured.Pct <= analysis.HistoricalECN[len(analysis.HistoricalECN)-1].Pct {
		t.Errorf("measured %.1f%% does not extend the 2014 value", f6.Measured.Pct)
	}

	// Table 2: weak correlation; most ECT-UDP-blocked servers still
	// negotiate ECN over TCP.
	t2 := analysis.ComputeTable2(d)
	if t2.Phi > 0.35 {
		t.Errorf("phi = %.3f; paper reports weak correlation", t2.Phi)
	}
	for _, row := range t2.Rows {
		if row.AvgUnreachableECT > 0 && row.AvgAlsoFailTCPECN >= row.AvgUnreachableECT {
			t.Errorf("%s: all ECT-blocked servers also fail TCP ECN — too correlated", row.Vantage)
		}
	}

	// §4.2 / Figure 4: traceroute campaign on the same world.
	var pobs []PathObservation
	RunTracerouteCampaign(w, TracerouteCampaignConfig{
		Config: traceroute.Config{ProbesPerHop: 1, StopAfterSilent: 2},
	}, func(o []PathObservation) { pobs = o })
	sim.Run()
	f4 := analysis.ComputeFigure4(pobs, w.ASN)
	if f4.RespondedObservations == 0 {
		t.Fatal("no traceroute observations")
	}
	preservedFrac := float64(f4.PreservedObservations) / float64(f4.RespondedObservations)
	if preservedFrac < 0.85 {
		t.Errorf("preserved fraction = %.3f; paper ≈ 0.99", preservedFrac)
	}
	if f4.StripLocationRouters == 0 {
		t.Error("no strip locations despite bleaching stubs")
	}
	if f4.CEObservations != 0 {
		t.Errorf("CE observations = %d; paper saw none", f4.CEObservations)
	}
	if f4.BoundaryFraction == 0 {
		t.Error("no AS-boundary strips; placement broken")
	}
	// Ground truth check: inferred strip routers correspond to the
	// bleach-policy routers the topology placed. The inference can
	// overcount slightly: a sometimes-bleacher that spares the probe at
	// its own TTL but bleaches a deeper probe makes its downstream
	// neighbour look like the strip point — the same attribution
	// ambiguity the paper's methodology has — so allow a small excess.
	placed := len(w.BleachRouters)
	if f4.StripLocationRouters < placed-1 || f4.StripLocationRouters > placed+3 {
		t.Errorf("inferred %d strip routers, topology placed %d", f4.StripLocationRouters, placed)
	}

	t.Logf("fig2a avg %.2f%% (min %.2f%%) | fig2b avg %.2f%% | fig5 %0.f/%0.f = %.1f%% | fig4 preserved %.2f%% boundary %.1f%% | phi %.3f",
		f2a.Average, f2a.Minimum, f2b.Average, f5.AvgNegotiated, f5.AvgReachable,
		f5.NegotiationRate, 100*preservedFrac, 100*f4.BoundaryFraction, t2.Phi)
}
