// Package core implements the paper's measurement application — the
// custom prober that Section 3 describes. It is the primary contribution
// of the reproduction: everything else in this repository is substrate
// for it.
//
// For each server in the discovered pool, a trace performs four
// measurements in order, exactly as the paper does:
//
//  1. NTP request in a not-ECT marked UDP packet (1 s timeout, up to
//     five retransmissions);
//  2. the same with an ECT(0) marked UDP packet — ECT(0) rather than
//     ECT(1), to match the marking TCP stacks use;
//  3. HTTP GET for the server's root page over TCP without ECN;
//  4. the same with an ECN-setup SYN, recording whether an ECN-setup
//     SYN-ACK comes back.
//
// A campaign runs a configured number of such traces from each of the 13
// vantage points across two batches, rolling pool churn and access-line
// conditions between traces, and emits a dataset.Dataset. A separate
// traceroute campaign (Section 4.2) probes every vantage→server path
// with TTL-limited ECT(0) UDP packets.
package core

import (
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/dnspool"
	"repro/internal/ecn"
	"repro/internal/httpmin"
	"repro/internal/netsim"
	"repro/internal/ntp"
	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/traceroute"
)

// ProbeServer runs the paper's four measurements from a vantage point
// against one server, invoking done with the observation. Measurements
// run strictly in sequence, as the paper's prober did.
//
// The sequence is a pooled state machine with callbacks bound once per
// shell: server probes are the campaign's innermost loop (traces ×
// servers × four measurements), so the steady-state cost is zero
// allocations rather than a closure per step.
func ProbeServer(v *topology.Vantage, server packet.Addr, done func(dataset.Observation)) {
	p := probePool.Get().(*serverProbe)
	if p.onNTP1 == nil {
		p.onNTP1 = p.ntp1
		p.onNTP2 = p.ntp2
		p.onGet3 = p.get3
		p.onGet4 = p.get4
	}
	p.v = v
	p.done = done
	p.obs = dataset.Observation{Server: server}
	// Measurement 1: NTP over not-ECT UDP.
	ntp.Probe(v.Host, server, ntp.ProbeConfig{ECN: ecn.NotECT}, p.onNTP1)
}

var probePool = sync.Pool{New: func() any { return new(serverProbe) }}

// serverProbe is one in-flight four-measurement sequence.
type serverProbe struct {
	v    *topology.Vantage
	obs  dataset.Observation
	done func(dataset.Observation)

	onNTP1, onNTP2 func(ntp.ProbeResult)
	onGet3, onGet4 func(httpmin.GetResult)
}

func (p *serverProbe) ntp1(r ntp.ProbeResult) {
	p.obs.UDPReachable = r.Reachable
	p.obs.UDPAttempts = r.Attempts
	// Measurement 2: NTP over ECT(0)-marked UDP.
	ntp.Probe(p.v.Host, p.obs.Server, ntp.ProbeConfig{ECN: ecn.ECT0}, p.onNTP2)
}

func (p *serverProbe) ntp2(r ntp.ProbeResult) {
	p.obs.UDPECTReachable = r.Reachable
	p.obs.UDPECTAttempts = r.Attempts
	// Measurement 3: HTTP GET without ECN.
	httpmin.Get(p.v.Stack, p.obs.Server, httpmin.Port, "/", false, p.onGet3)
}

func (p *serverProbe) get3(r httpmin.GetResult) {
	p.obs.TCPReachable = r.Err == nil && r.Response != nil
	if r.Response != nil {
		p.obs.HTTPStatus = r.Response.StatusCode
	}
	// Measurement 4: HTTP GET with an ECN-setup SYN.
	httpmin.Get(p.v.Stack, p.obs.Server, httpmin.Port, "/", true, p.onGet4)
}

func (p *serverProbe) get4(r httpmin.GetResult) {
	p.obs.TCPECNReachable = r.Err == nil && r.Response != nil
	p.obs.TCPECN = r.ECNNegotiated
	done, obs := p.done, p.obs
	p.v = nil
	p.done = nil
	probePool.Put(p) // last touch: done may start the next probe, reusing this shell
	done(obs)
}

// RunTrace probes every server in order from one vantage point and
// invokes done with the completed trace. Server conditions (churn,
// congestion, vantage loss) must already be applied. One traceRun shell
// (with bound-once callbacks) drives the whole server list, so the
// per-server loop allocates nothing.
func RunTrace(v *topology.Vantage, servers []packet.Addr, batch topology.Batch, index int, done func(dataset.Trace)) {
	sim := v.Host.Sim()
	t := &traceRun{v: v, servers: servers, sim: sim, done: done}
	t.trace = dataset.Trace{
		Vantage:      v.Name,
		Batch:        int(batch),
		Index:        index,
		Started:      sim.Now(),
		Observations: make([]dataset.Observation, 0, len(servers)),
	}
	t.nextFn = t.next
	t.obsFn = t.observed
	t.next()
}

// traceRun is one trace's iteration state.
type traceRun struct {
	v       *topology.Vantage
	servers []packet.Addr
	sim     *netsim.Sim
	trace   dataset.Trace
	done    func(dataset.Trace)
	i       int
	nextFn  func()
	obsFn   func(dataset.Observation)
}

func (t *traceRun) next() {
	if t.i == len(t.servers) {
		t.done(t.trace)
		return
	}
	server := t.servers[t.i]
	t.i++
	ProbeServer(t.v, server, t.obsFn)
}

func (t *traceRun) observed(obs dataset.Observation) {
	t.trace.Observations = append(t.trace.Observations, obs)
	// Yield through the event loop: keeps the call stack flat across
	// 2500 sequential servers.
	t.sim.After(0, t.nextFn)
}

// CampaignConfig sizes a measurement campaign.
type CampaignConfig struct {
	// TracesPerVantage maps vantage name → number of traces. Vantages
	// absent from the map are skipped. Use PaperTracePlan for the full
	// 210-trace campaign.
	TracesPerVantage map[string]int
	// Batch2Fraction is the share of each vantage's traces that run
	// under batch-2 (July/August) conditions. Default 0.5.
	Batch2Fraction float64
	// SettleTime separates consecutive traces (virtual time).
	SettleTime time.Duration
	// DiscoverServers uses pool DNS discovery to enumerate targets.
	// When false the campaign probes the world's ground-truth list —
	// faster for tests; discovery itself is exercised separately.
	DiscoverServers bool
	// DiscoveryRounds overrides the DNS polling rounds (default 50,
	// enough to enumerate the full pool through round-robin answers).
	DiscoveryRounds int
	// DiscoveryVantage names the vantage point discovery runs from;
	// empty means the world's first vantage (the paper discovered from
	// the authors' institution).
	DiscoveryVantage string
}

// PaperTracePlan allocates the paper's 210 traces across the 13 vantage
// points: the homes and the Glasgow wireless network collected both
// batches, EC2 only the later one. The exact split is not given in the
// paper; this plan preserves the total and the batch structure.
func PaperTracePlan() map[string]int {
	plan := map[string]int{
		"Perkins home":        25,
		"McQuistin home":      25,
		"U. Glasgow wired":    14,
		"U. Glasgow wireless": 20,
	}
	for _, name := range []string{
		"EC2 California", "EC2 Frankfurt", "EC2 Ireland", "EC2 Oregon",
		"EC2 Sao Paulo", "EC2 Singapore", "EC2 Sydney", "EC2 Tokyo",
		"EC2 Virginia",
	} {
		plan[name] = 14 // 9 × 14 = 126; 126 + 84 = 210
	}
	return plan
}

// BatchFor assigns trace k of a vantage's n-trace quota to a collection
// batch: the final floor(n×batch2Fraction) traces belong to batch 2
// (July/August conditions), the rest to batch 1. Both the sequential
// campaign loop below and the sharded engine use this, so slicing a
// vantage's quota across shards cannot move a trace between batches.
func BatchFor(k, n int, batch2Fraction float64) topology.Batch {
	batch2 := int(float64(n) * batch2Fraction)
	if k >= n-batch2 {
		return topology.Batch2
	}
	return topology.Batch1
}

// Campaign drives a full measurement campaign over a generated world.
type Campaign struct {
	World *topology.World
	Cfg   CampaignConfig

	// Servers is the probed target list (discovered or ground truth).
	Servers []packet.Addr
	// Dataset accumulates completed traces.
	Dataset dataset.Dataset
}

// NewCampaign prepares a campaign.
func NewCampaign(w *topology.World, cfg CampaignConfig) *Campaign {
	if cfg.Batch2Fraction == 0 {
		cfg.Batch2Fraction = 0.5
	}
	if cfg.SettleTime == 0 {
		cfg.SettleTime = time.Minute
	}
	if cfg.DiscoveryRounds == 0 {
		cfg.DiscoveryRounds = 50
	}
	return &Campaign{World: w, Cfg: cfg}
}

// Run executes discovery (optionally) and all traces, then invokes done.
// Drive the simulation to completion for the result.
func (c *Campaign) Run(done func(*dataset.Dataset)) {
	start := func(servers []packet.Addr) {
		c.Servers = servers
		c.runTraces(done)
	}
	if !c.Cfg.DiscoverServers {
		start(c.World.ServerAddrs())
		return
	}
	// The paper discovered servers from the authors' institution; the
	// first vantage stands in for it unless the caller names another
	// (the sharded engine has each shard discover from its own vantage).
	v := c.World.Vantages[0]
	if c.Cfg.DiscoveryVantage != "" {
		if named, ok := c.World.VantageByName(c.Cfg.DiscoveryVantage); ok {
			v = named
		}
	}
	dnspool.Discover(v.Host, dnspool.DiscoverConfig{
		Resolver:      c.World.DNSAddr,
		Zones:         c.World.CountryZones,
		Rounds:        c.Cfg.DiscoveryRounds,
		QueryGap:      100 * time.Millisecond,
		RoundInterval: time.Minute,
	}, func(r dnspool.DiscoverResult) {
		start(r.Servers)
	})
}

// runTraces iterates the trace plan: for each vantage in paper order,
// batch 1 then batch 2.
func (c *Campaign) runTraces(done func(*dataset.Dataset)) {
	type job struct {
		v     *topology.Vantage
		batch topology.Batch
		index int
	}
	var jobs []job
	index := 0
	for _, v := range c.World.Vantages {
		n := c.Cfg.TracesPerVantage[v.Name]
		if n == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			jobs = append(jobs, job{v: v, batch: BatchFor(i, n, c.Cfg.Batch2Fraction), index: index})
			index++
		}
	}

	sim := c.World.Sim
	var next func(i int)
	next = func(i int) {
		if i == len(jobs) {
			done(&c.Dataset)
			return
		}
		j := jobs[i]
		c.World.ApplyTraceConditions(j.v, j.batch, sim.RNG())
		RunTrace(j.v, c.Servers, j.batch, j.index, func(t dataset.Trace) {
			c.Dataset.Traces = append(c.Dataset.Traces, t)
			sim.After(c.Cfg.SettleTime, func() { next(i + 1) })
		})
	}
	next(0)
}

// --- traceroute campaign (Section 4.2) ----------------------------------

// PathObservation aliases the traceroute row type for campaign callers.
type PathObservation = traceroute.PathObservation

// TracerouteCampaignConfig sizes the path-transparency campaign.
type TracerouteCampaignConfig struct {
	// Vantages to trace from; nil means all.
	Vantages []string
	// TargetStride samples every Nth server (1 = all).
	TargetStride int
	// Parallelism bounds concurrent traceroutes per vantage (default 64).
	Parallelism int
	// Config is the per-trace configuration (ECT(0) probes by default).
	Config traceroute.Config
}

// RunTracerouteCampaign traces paths from the selected vantages to the
// sampled servers and returns all hop observations via done.
func RunTracerouteCampaign(w *topology.World, cfg TracerouteCampaignConfig, done func([]PathObservation)) {
	if cfg.TargetStride <= 0 {
		cfg.TargetStride = 1
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 64
	}
	want := map[string]bool{}
	for _, n := range cfg.Vantages {
		want[n] = true
	}
	var vantages []*topology.Vantage
	for _, v := range w.Vantages {
		if len(want) == 0 || want[v.Name] {
			vantages = append(vantages, v)
		}
	}
	var targets []packet.Addr
	all := w.ServerAddrs()
	for i := 0; i < len(all); i += cfg.TargetStride {
		targets = append(targets, all[i])
	}

	// The paper ran its traceroute campaign separately from the
	// reachability traces; model that by clearing transient conditions
	// (vantage and flaky-server access loss) first. Persistent
	// middleboxes stay, of course — they are the measurement target.
	for _, s := range w.Servers {
		if s.Flaky {
			s.Host.Uplink().SetLossBoth(0)
		}
	}

	var out []PathObservation
	var nextVantage func(vi int)
	nextVantage = func(vi int) {
		if vi == len(vantages) {
			done(out)
			return
		}
		v := vantages[vi]
		v.Host.Uplink().SetLossBoth(0)
		mux := traceroute.NewMux(v.Host)
		pending := 0
		idx := 0
		var pump func()
		pump = func() {
			for pending < cfg.Parallelism && idx < len(targets) {
				target := targets[idx]
				idx++
				pending++
				mux.Run(target, cfg.Config, func(r traceroute.Result) {
					for _, o := range r.Observations {
						out = append(out, PathObservation{Vantage: v.Name, Target: r.Target, Observation: o})
					}
					pending--
					pump()
				})
			}
			if pending == 0 && idx == len(targets) {
				w.Sim.After(0, func() { nextVantage(vi + 1) })
			}
		}
		pump()
	}
	nextVantage(0)
}

// Run drains the world's simulator — a convenience so callers don't need
// to import netsim.
func Run(w *topology.World) { w.Sim.Run() }
