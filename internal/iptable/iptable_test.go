package iptable

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("10.1.2.3/16")
	if err != nil {
		t.Fatal(err)
	}
	// Host bits canonicalised away.
	if p.String() != "10.1.0.0/16" {
		t.Errorf("canonical form = %s", p)
	}
	for _, bad := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "nope/8", "10.0.0.0/x"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) accepted", bad)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("192.168.0.0/16")
	if !p.Contains(packet.MustParseAddr("192.168.255.1")) {
		t.Error("inside address rejected")
	}
	if p.Contains(packet.MustParseAddr("192.169.0.1")) {
		t.Error("outside address accepted")
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(packet.MustParseAddr("203.0.113.7")) {
		t.Error("default route must contain everything")
	}
	host := MustParsePrefix("10.0.0.1/32")
	if !host.Contains(packet.MustParseAddr("10.0.0.1")) || host.Contains(packet.MustParseAddr("10.0.0.2")) {
		t.Error("/32 semantics wrong")
	}
}

func TestLongestPrefixMatch(t *testing.T) {
	var tbl Table[string]
	tbl.Insert(MustParsePrefix("0.0.0.0/0"), "default")
	tbl.Insert(MustParsePrefix("10.0.0.0/8"), "ten")
	tbl.Insert(MustParsePrefix("10.1.0.0/16"), "ten-one")
	tbl.Insert(MustParsePrefix("10.1.2.0/24"), "ten-one-two")

	cases := []struct {
		addr string
		want string
	}{
		{"10.1.2.3", "ten-one-two"},
		{"10.1.9.9", "ten-one"},
		{"10.200.0.1", "ten"},
		{"192.0.2.1", "default"},
	}
	for _, c := range cases {
		got, _, ok := tbl.Lookup(packet.MustParseAddr(c.addr))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %q,%v want %q", c.addr, got, ok, c.want)
		}
	}
}

func TestLookupMiss(t *testing.T) {
	var tbl Table[int]
	tbl.Insert(MustParsePrefix("10.0.0.0/8"), 1)
	if _, _, ok := tbl.Lookup(packet.MustParseAddr("11.0.0.1")); ok {
		t.Error("miss reported as hit")
	}
}

func TestInsertReplace(t *testing.T) {
	var tbl Table[int]
	p := MustParsePrefix("10.0.0.0/8")
	tbl.Insert(p, 1)
	tbl.Insert(p, 2)
	if tbl.Len() != 1 {
		t.Errorf("Len = %d after replace", tbl.Len())
	}
	got, _, _ := tbl.Lookup(packet.MustParseAddr("10.1.1.1"))
	if got != 2 {
		t.Errorf("value = %d, want replacement", got)
	}
}

func TestWalkVisitsAll(t *testing.T) {
	var tbl Table[int]
	prefixes := []string{"10.0.0.0/8", "10.1.0.0/16", "192.0.2.0/24", "0.0.0.0/0"}
	for i, s := range prefixes {
		tbl.Insert(MustParsePrefix(s), i)
	}
	seen := map[string]bool{}
	tbl.Walk(func(p Prefix, v int) { seen[p.String()] = true })
	if len(seen) != len(prefixes) {
		t.Errorf("walked %d prefixes, want %d", len(seen), len(prefixes))
	}
}

// Property: after inserting a /b prefix derived from an address, looking
// up that address finds a prefix that contains it.
func TestLookupContainsProperty(t *testing.T) {
	f := func(raw uint32, bitsRaw uint8) bool {
		bits := int(bitsRaw % 33)
		addr := packet.AddrFromUint32(raw)
		var tbl Table[bool]
		tbl.Insert(MakePrefix(addr, bits), true)
		_, p, ok := tbl.Lookup(addr)
		return ok && p.Contains(addr) && p.Bits == bits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: lookup always returns the most specific matching prefix.
func TestMostSpecificWinsProperty(t *testing.T) {
	f := func(raw uint32, b1, b2 uint8) bool {
		bits1, bits2 := int(b1%33), int(b2%33)
		addr := packet.AddrFromUint32(raw)
		var tbl Table[int]
		tbl.Insert(MakePrefix(addr, bits1), bits1)
		tbl.Insert(MakePrefix(addr, bits2), bits2)
		got, _, ok := tbl.Lookup(addr)
		want := bits1
		if bits2 > bits1 {
			want = bits2
		}
		return ok && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDefaultRouteOnly(t *testing.T) {
	var tbl Table[string]
	tbl.Insert(MustParsePrefix("0.0.0.0/0"), "d")
	got, p, ok := tbl.Lookup(packet.MustParseAddr("8.8.8.8"))
	if !ok || got != "d" || p.Bits != 0 {
		t.Errorf("default lookup = %q %s %v", got, p, ok)
	}
}
