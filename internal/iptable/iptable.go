// Package iptable provides IPv4 prefixes and a longest-prefix-match
// table. It is the lookup structure shared by the geo database (prefix →
// location) and the AS mapping (prefix → ASN), mirroring how routing
// registries and GeoIP databases are keyed in the real measurement
// pipeline.
package iptable

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/packet"
)

// Prefix is an IPv4 CIDR prefix.
type Prefix struct {
	Addr packet.Addr
	Bits int
}

// ParsePrefix parses "a.b.c.d/n" notation.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("iptable: prefix %q missing mask", s)
	}
	addr, err := packet.ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("iptable: prefix %q has bad mask", s)
	}
	return MakePrefix(addr, bits), nil
}

// MustParsePrefix is ParsePrefix for tables and tests; it panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// MakePrefix builds a canonical prefix (host bits zeroed).
func MakePrefix(addr packet.Addr, bits int) Prefix {
	return Prefix{Addr: packet.AddrFromUint32(addr.Uint32() & mask(bits)), Bits: bits}
}

func mask(bits int) uint32 {
	if bits <= 0 {
		return 0
	}
	if bits >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - bits)
}

// Contains reports whether a falls inside the prefix.
func (p Prefix) Contains(a packet.Addr) bool {
	return a.Uint32()&mask(p.Bits) == p.Addr.Uint32()
}

// String renders CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Addr, p.Bits)
}

// Table is a longest-prefix-match map from prefixes to values of type T.
// It keeps one hash map per prefix length and probes from /32 downward,
// which is simple, allocation-light and plenty fast for the few thousand
// prefixes a generated topology produces.
type Table[T any] struct {
	byBits [33]map[uint32]T
	size   int
}

// Insert adds or replaces the value for a prefix.
func (t *Table[T]) Insert(p Prefix, v T) {
	if p.Bits < 0 || p.Bits > 32 {
		panic("iptable: bad prefix length")
	}
	m := t.byBits[p.Bits]
	if m == nil {
		m = make(map[uint32]T)
		t.byBits[p.Bits] = m
	}
	key := p.Addr.Uint32() & mask(p.Bits)
	if _, exists := m[key]; !exists {
		t.size++
	}
	m[key] = v
}

// Lookup returns the value of the longest prefix containing a.
func (t *Table[T]) Lookup(a packet.Addr) (T, Prefix, bool) {
	v := a.Uint32()
	for bits := 32; bits >= 0; bits-- {
		m := t.byBits[bits]
		if m == nil {
			continue
		}
		key := v & mask(bits)
		if val, ok := m[key]; ok {
			return val, Prefix{Addr: packet.AddrFromUint32(key), Bits: bits}, true
		}
	}
	var zero T
	return zero, Prefix{}, false
}

// Len reports the number of prefixes in the table.
func (t *Table[T]) Len() int { return t.size }

// Walk visits every (prefix, value) pair. Order is unspecified.
func (t *Table[T]) Walk(fn func(Prefix, T)) {
	for bits := 0; bits <= 32; bits++ {
		for key, v := range t.byBits[bits] {
			fn(Prefix{Addr: packet.AddrFromUint32(key), Bits: bits}, v)
		}
	}
}
