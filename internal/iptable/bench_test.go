package iptable

import (
	"math/rand"
	"testing"

	"repro/internal/packet"
)

// BenchmarkLookup measures longest-prefix matching over a table sized
// like a generated paper-scale topology (a few hundred prefixes across
// /16 and /24 lengths).
func BenchmarkLookup(b *testing.B) {
	var tbl Table[int]
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 320; i++ {
		tbl.Insert(MakePrefix(packet.AddrFromUint32(0x10000000+uint32(i)<<16), 16), i)
	}
	for i := 0; i < 260; i++ {
		tbl.Insert(MakePrefix(packet.AddrFromUint32(0x10000000+uint32(i)<<16+0x0200), 24), i)
	}
	addrs := make([]packet.Addr, 1024)
	for i := range addrs {
		addrs[i] = packet.AddrFromUint32(0x10000000 + uint32(rng.Intn(320))<<16 + uint32(rng.Intn(1024)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(addrs[i%len(addrs)])
	}
}
