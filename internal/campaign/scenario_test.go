package campaign

import (
	"bytes"
	"testing"

	"repro/internal/analysis"
	"repro/internal/topology"
)

// TestUncongestedScenarioIsDefault: the "uncongested" name must be a
// pure alias for the default configuration — byte-identical dataset,
// no bottlenecks, no congestion samples.
func TestUncongestedScenarioIsDefault(t *testing.T) {
	base := runOrFatal(t, testConfig())
	cfg := testConfig()
	cfg.Scenario = ScenarioUncongested
	named := runOrFatal(t, cfg)
	if !bytes.Equal(encode(t, base.Dataset), encode(t, named.Dataset)) {
		t.Fatal("scenario \"uncongested\" dataset differs from the default")
	}
	if len(base.Congestion) != 0 || len(named.Congestion) != 0 {
		t.Fatal("uncongested runs must produce no congestion samples")
	}
	if len(named.World.Bottlenecks) != 0 {
		t.Fatal("uncongested world has bottlenecks")
	}
}

func TestUnknownScenarioErrors(t *testing.T) {
	cfg := testConfig()
	cfg.Scenario = "congested"
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected error for unknown scenario")
	}
}

// congestedConfig is a reduced congested-edge campaign: two home
// vantages (whose traces see the congested access), one trace each.
func congestedConfig(scenario string) Config {
	cfg := testConfig()
	cfg.Scenario = scenario
	cfg.TracePlan = map[string]int{"Perkins home": 1, "McQuistin home": 1}
	cfg.Stride = 0 // skip traceroutes; congestion is the subject here
	return cfg
}

// TestCongestedEdgeMarksAndReports: RED bottlenecks must CE-mark ECT
// traffic, drop some not-ECT traffic under load, and surface both the
// receiver-side observation and the queue ground truth.
func TestCongestedEdgeMarksAndReports(t *testing.T) {
	res := runOrFatal(t, congestedConfig(ScenarioCongestedEdge))
	if len(res.Congestion) != 2 {
		t.Fatalf("congestion samples = %d, want 2", len(res.Congestion))
	}
	if len(res.World.Bottlenecks) == 0 {
		t.Fatal("congested-edge world has no bottlenecks")
	}
	var totalMarked, totalECT, totalInCE uint64
	for _, s := range res.Congestion {
		totalMarked += s.QueueCEMarked
		totalECT += s.QueueECT
		totalInCE += s.InCE
		if s.Utilization == 0 {
			t.Errorf("%s: sample lacks utilization", s.Vantage)
		}
	}
	if totalECT == 0 {
		t.Fatal("no ECT wire packets traversed the bottlenecks")
	}
	if totalMarked == 0 {
		t.Fatal("RED bottlenecks never CE-marked an ECT packet")
	}
	if totalInCE == 0 {
		t.Fatal("no CE-marked packet was observed arriving at a vantage")
	}
	rep := analysis.ComputeCEMarkReport(res.Congestion)
	if rep.ObservedCERatio <= 0 || rep.QueueMarkRatio <= 0 {
		t.Fatalf("report ratios = %+v", rep)
	}
}

// TestCongestedScenarioWorkerDeterminism: the acceptance gate — merged
// datasets and congestion samples are byte-identical for workers 1, 4
// and 13 under a congested scenario too.
func TestCongestedScenarioWorkerDeterminism(t *testing.T) {
	for _, scenario := range []string{ScenarioCongestedEdge, ScenarioCongestedTransit} {
		cfg := testConfig()
		cfg.Scenario = scenario
		cfg.Stride = 12
		var refData []byte
		var refCong []analysis.CEMarkSample
		for _, workers := range []int{1, 4, 13} {
			cfg.Workers = workers
			res := runOrFatal(t, cfg)
			data := encode(t, res.Dataset)
			if refData == nil {
				refData = data
				refCong = res.Congestion
				continue
			}
			if !bytes.Equal(refData, data) {
				t.Fatalf("%s: dataset differs between workers=1 and workers=%d", scenario, workers)
			}
			if len(refCong) != len(res.Congestion) {
				t.Fatalf("%s: congestion sample count differs at workers=%d", scenario, workers)
			}
			for i := range refCong {
				if refCong[i] != res.Congestion[i] {
					t.Fatalf("%s: congestion sample %d differs at workers=%d:\n%+v\n%+v",
						scenario, i, workers, refCong[i], res.Congestion[i])
				}
			}
		}
	}
}

// TestCEReportMonotoneInUtilization: holding everything else fixed and
// raising the configured bottleneck utilization must never lower the
// aggregate CE ratios — the property that makes the verbose-mode
// estimator usable as a congestion signal.
func TestCEReportMonotoneInUtilization(t *testing.T) {
	ratios := func(util float64) (observed, groundTruth float64) {
		topo := topology.SmallConfig()
		topo.CongestedVantageAccess = true
		topo.BottleneckRate = 125_000
		topo.BottleneckQueueLen = 50
		topo.BottleneckAQM = "red"
		topo.BottleneckUtilization = util
		cfg := congestedConfig("")
		cfg.Scale = ""
		cfg.Topology = &topo
		res := runOrFatal(t, cfg)
		rep := analysis.ComputeCEMarkReport(res.Congestion)
		return rep.ObservedCERatio, rep.QueueMarkRatio
	}

	var prevObs, prevGT float64 = -1, -1
	var obsSeries, gtSeries []float64
	for _, util := range []float64{0.2, 0.9, 1.4} {
		obs, gt := ratios(util)
		obsSeries = append(obsSeries, obs)
		gtSeries = append(gtSeries, gt)
		if obs < prevObs || gt < prevGT {
			t.Fatalf("CE ratios not monotone in utilization: observed %v, ground truth %v",
				obsSeries, gtSeries)
		}
		prevObs, prevGT = obs, gt
	}
	if obsSeries[len(obsSeries)-1] == 0 || gtSeries[len(gtSeries)-1] == 0 {
		t.Fatalf("saturated bottleneck produced no CE: observed %v, ground truth %v",
			obsSeries, gtSeries)
	}
}
