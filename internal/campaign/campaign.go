// Package campaign is the sharded, parallel campaign engine: it
// partitions the paper's vantage×server probe plan into one shard per
// vantage point, runs every shard in its own independent discrete-event
// simulation on a bounded pool of worker goroutines, and deterministically
// merges the per-shard results in canonical vantage order.
//
// Sharding exploits the structure of the study: each vantage point's
// traces are statistically independent observations of the same Internet,
// so the campaign is embarrassingly parallel across vantages. Two
// properties make the parallel run equivalent to the sequential one:
//
//   - Identical worlds. Every shard builds its world from the campaign
//     seed, so all shards observe the same generated Internet — the same
//     servers behind the same middleboxes (Figure 3's "same set of
//     servers from every location" depends on this).
//   - Independent measurement randomness. After the build, each shard's
//     PRNG is reseeded with a splitmix64 hash of seed^shardID, giving
//     shards pairwise-distinct, scheduling-independent random streams.
//
// Because no state is shared between shards and the merge order is fixed,
// the merged dataset is byte-identical for any worker count or
// GOMAXPROCS setting.
package campaign

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ecn"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/traceroute"
)

// Config sizes and parameterises a sharded campaign. The zero value runs
// the full paper plan at paper scale on all available CPUs.
type Config struct {
	// Scale selects the generated world: "paper" (2500 servers, the
	// default) or "small" (120 servers, for tests and CI).
	Scale string
	// Topology overrides the world configuration entirely (ablations);
	// when set, Scale is ignored.
	Topology *topology.Config
	// Scenario names the congestion scenario: "uncongested" (the
	// default — identical to pre-substrate behaviour), "congested-edge"
	// or "congested-transit". It applies on top of Scale or Topology.
	Scenario string

	// TracePlan maps vantage name → trace count. When nil, Traces (if
	// positive) gives every vantage that many traces; otherwise the
	// paper's 210-trace plan is used.
	TracePlan map[string]int
	// Traces is the per-vantage trace count used when TracePlan is nil.
	Traces int
	// Batch2Fraction is the share of each vantage's traces run under
	// batch-2 (July/August) conditions. Default 0.5.
	Batch2Fraction float64
	// SettleTime separates consecutive traces in virtual time.
	SettleTime time.Duration

	// Discover enumerates the pool via DNS inside each shard before
	// probing (each shard discovers independently, as a real distributed
	// deployment would). When false, shards probe the ground-truth list.
	Discover bool
	// DiscoveryRounds overrides the DNS polling rounds (default 50).
	DiscoveryRounds int

	// Stride samples every Nth server for the traceroute campaign
	// (Section 4.2). Zero disables traceroutes entirely.
	Stride int
	// Traceroute is the per-path probe configuration.
	Traceroute traceroute.Config

	// Seed is the campaign seed: worlds build from it verbatim, and each
	// shard's measurement phase reseeds with ShardSeed(Seed, shard).
	Seed int64
	// Workers bounds the number of shards running concurrently.
	// Zero means GOMAXPROCS. The result does not depend on Workers.
	Workers int

	// ShardHook, when non-nil, runs in the worker goroutine after a
	// shard's world is built and reseeded but before its campaign starts
	// — e.g. to attach a packet capture tap. It must not share mutable
	// state across shards without its own synchronisation.
	ShardHook func(shard int, vantage string, w *topology.World)
}

// FromEnv builds a Config from the REPRO_* environment knobs used by the
// benchmark harness and CI:
//
//	REPRO_SCALE=small|paper   world size            (default paper)
//	REPRO_SCENARIO=name       congestion scenario   (default uncongested; see Scenarios)
//	REPRO_TRACES=N|paper      traces per vantage    (default 6; "paper" = the full 210-trace plan)
//	REPRO_STRIDE=N            traceroute sampling   (default 3: every 3rd server)
//	REPRO_SEED=N              campaign seed         (default 2015)
//	REPRO_WORKERS=N           parallel shard workers (default GOMAXPROCS)
//
// Malformed values are an error, not a silent fallback: these knobs
// select entire measurement campaigns, and a typo'd REPRO_TRACES=1O
// quietly running the default plan would waste a paper-scale run.
func FromEnv() (Config, error) {
	cfg := Config{
		Scale:      os.Getenv("REPRO_SCALE"),
		Scenario:   os.Getenv("REPRO_SCENARIO"),
		Traceroute: traceroute.Config{ProbesPerHop: 1, StopAfterSilent: 2},
	}
	switch cfg.Scale {
	case "", "small", "paper":
	default:
		return Config{}, fmt.Errorf("campaign: REPRO_SCALE=%q: want small or paper", cfg.Scale)
	}
	if err := ApplyScenario(&topology.Config{}, cfg.Scenario); err != nil {
		return Config{}, fmt.Errorf("REPRO_SCENARIO: %w", err)
	}

	var err error
	if cfg.Seed, err = envInt64("REPRO_SEED", 2015); err != nil {
		return Config{}, err
	}
	envCount := func(key string, def int) (int, error) {
		n, err := envInt64(key, int64(def))
		if err != nil {
			return 0, err
		}
		if n < 0 {
			return 0, fmt.Errorf("campaign: %s=%d: must not be negative", key, n)
		}
		return int(n), nil
	}
	if cfg.Stride, err = envCount("REPRO_STRIDE", 3); err != nil {
		return Config{}, err
	}
	if cfg.Workers, err = envCount("REPRO_WORKERS", 0); err != nil {
		return Config{}, err
	}
	if v := os.Getenv("REPRO_TRACES"); v != "paper" {
		// Only the "paper" sentinel (Traces=0 in Config) selects the
		// full 210-trace plan; every other value must be a positive
		// count so a stray REPRO_TRACES=0 cannot silently launch it.
		if cfg.Traces, err = envCount("REPRO_TRACES", 6); err != nil {
			return Config{}, err
		}
		if cfg.Traces < 1 {
			return Config{}, fmt.Errorf("campaign: REPRO_TRACES=%q: want a count ≥ 1 or \"paper\"", v)
		}
	}
	return cfg, nil
}

func envInt64(key string, def int64) (int64, error) {
	v := os.Getenv(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("campaign: %s=%q: not an integer", key, v)
	}
	return n, nil
}

// ShardStats records one shard's execution for capacity planning.
type ShardStats struct {
	// Shard is the vantage's fixed index in topology.VantageNames order;
	// it, not the dense execution order, feeds the seed derivation, so a
	// vantage keeps its random stream whatever subset of the plan runs.
	Shard   int
	Vantage string
	Seed    int64
	Traces  int
	// Events is the shard simulator's executed event count.
	Events uint64
	// VirtualTime is the shard's simulated clock at completion.
	VirtualTime time.Duration
	// Elapsed is the shard's wall-clock execution time.
	Elapsed time.Duration
}

// Result is a merged campaign output.
type Result struct {
	// Dataset holds all traces in canonical vantage order with
	// campaign-wide trace indices.
	Dataset *dataset.Dataset
	// PathObs holds the traceroute campaign's hop observations, in the
	// same canonical vantage order.
	PathObs []traceroute.PathObservation
	// World is the first shard's world — every shard builds an identical
	// one — for Geo/ASN lookups and follow-on experiments.
	World *topology.World
	// Servers is the union of probed targets in first-seen shard order.
	Servers []packet.Addr
	// Shards reports per-shard execution stats in canonical order.
	Shards []ShardStats
	// Events is the total executed event count across all shards.
	Events uint64
	// Congestion holds one CE-mark sample per shard (canonical order)
	// when the scenario places bottlenecks; empty for uncongested runs.
	// Feed it to analysis.ComputeCEMarkReport.
	Congestion []analysis.CEMarkSample
}

// ShardSeed derives shard's measurement-phase seed from the campaign
// seed via a splitmix64 finalizer of seed^shard. The mapping is bijective
// in the xor'd input, so distinct shards of one campaign always receive
// pairwise-distinct seeds.
func ShardSeed(seed int64, shard int) int64 {
	z := uint64(seed) ^ uint64(shard)
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// shardSpec is one unit of parallel work: a vantage and its trace quota.
type shardSpec struct {
	shard   int // fixed vantage index, not dense position
	vantage string
	traces  int
	seed    int64
}

// shardResult is what one shard hands to the merge step.
type shardResult struct {
	world      *topology.World
	data       *dataset.Dataset
	obs        []traceroute.PathObservation
	servers    []packet.Addr
	stats      ShardStats
	congestion *analysis.CEMarkSample
}

func (cfg Config) topologyConfig() (topology.Config, error) {
	var topo topology.Config
	switch {
	case cfg.Topology != nil:
		topo = *cfg.Topology
	default:
		switch cfg.Scale {
		case "small":
			topo = topology.SmallConfig()
		case "", "paper":
			topo = topology.DefaultConfig()
		default:
			return topology.Config{}, fmt.Errorf("campaign: unknown scale %q (want paper or small)", cfg.Scale)
		}
	}
	if err := ApplyScenario(&topo, cfg.Scenario); err != nil {
		return topology.Config{}, err
	}
	return topo, nil
}

func (cfg Config) plan() map[string]int {
	if cfg.TracePlan != nil {
		return cfg.TracePlan
	}
	if cfg.Traces > 0 {
		plan := make(map[string]int, len(topology.VantageNames()))
		for _, name := range topology.VantageNames() {
			plan[name] = cfg.Traces
		}
		return plan
	}
	return core.PaperTracePlan()
}

// shardSpecs returns the campaign's work partition in canonical order:
// one shard per vantage present in the trace plan, ordered by the paper's
// Table 2 vantage order.
func (cfg Config) shardSpecs() []shardSpec {
	plan := cfg.plan()
	var shards []shardSpec
	for i, name := range topology.VantageNames() {
		if n := plan[name]; n > 0 {
			shards = append(shards, shardSpec{
				shard:   i,
				vantage: name,
				traces:  n,
				seed:    ShardSeed(cfg.Seed, i),
			})
		}
	}
	return shards
}

// Run executes the sharded campaign and returns the merged result. The
// merged output is byte-identical for any Workers value or GOMAXPROCS
// setting: shards share no state, and the merge runs in canonical order.
func Run(cfg Config) (*Result, error) {
	topo, err := cfg.topologyConfig()
	if err != nil {
		return nil, err
	}
	shards := cfg.shardSpecs()
	if len(shards) == 0 {
		return nil, fmt.Errorf("campaign: trace plan selects no vantages")
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(shards) {
		workers = len(shards)
	}

	results := make([]shardResult, len(shards))
	errs := make([]error, len(shards))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = runShard(cfg, topo, shards[i])
			}
		}()
	}
	for i := range shards {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return merge(results), nil
}

// runShard executes one shard in a private simulation: build the world
// from the campaign seed, reseed for the shard, run the vantage's traces
// and (optionally) its traceroute sweep.
func runShard(cfg Config, topo topology.Config, sh shardSpec) (shardResult, error) {
	start := time.Now()
	sim := netsim.NewSim(cfg.Seed)
	w, err := topology.Build(sim, topo)
	if err != nil {
		return shardResult{}, fmt.Errorf("campaign: shard %d (%s): build world: %w", sh.shard, sh.vantage, err)
	}
	sim.Reseed(sh.seed)
	if cfg.ShardHook != nil {
		cfg.ShardHook(sh.shard, sh.vantage, w)
	}

	// On congested scenarios, observe arriving ECN codepoints at the
	// shard's vantage — the receiver-side input of the verbose-mode
	// CE-ratio estimator. The tap only counts; it cannot perturb the
	// measurement or its randomness.
	var inECT, inCE, inNotECT uint64
	if len(w.Bottlenecks) > 0 {
		if v, ok := w.VantageByName(sh.vantage); ok {
			v.Host.AddTap(func(dir netsim.TapDirection, _ time.Duration, wire []byte) {
				if dir != netsim.TapIn {
					return
				}
				switch cp, err := packet.WireECN(wire); {
				case err != nil:
				case cp == ecn.CE:
					inCE++
				case cp.IsECT():
					inECT++
				default:
					inNotECT++
				}
			})
		}
	}

	c := core.NewCampaign(w, core.CampaignConfig{
		TracesPerVantage: map[string]int{sh.vantage: sh.traces},
		Batch2Fraction:   cfg.Batch2Fraction,
		SettleTime:       cfg.SettleTime,
		DiscoverServers:  cfg.Discover,
		DiscoveryRounds:  cfg.DiscoveryRounds,
		DiscoveryVantage: sh.vantage,
	})
	var d *dataset.Dataset
	c.Run(func(got *dataset.Dataset) { d = got })
	sim.Run()
	if d == nil {
		return shardResult{}, fmt.Errorf("campaign: shard %d (%s) did not complete", sh.shard, sh.vantage)
	}

	var obs []traceroute.PathObservation
	if cfg.Stride > 0 {
		core.RunTracerouteCampaign(w, core.TracerouteCampaignConfig{
			Vantages:     []string{sh.vantage},
			TargetStride: cfg.Stride,
			Config:       cfg.Traceroute,
		}, func(o []core.PathObservation) { obs = o })
		sim.Run()
	}

	var cong *analysis.CEMarkSample
	if len(w.Bottlenecks) > 0 {
		s := analysis.CEMarkSample{Vantage: sh.vantage, InECT: inECT, InCE: inCE, InNotECT: inNotECT}
		for _, bn := range w.Bottlenecks {
			// Edge bottlenecks belong to one vantage; only this shard's
			// carries foreground traffic. Transit bottlenecks (empty
			// Vantage) all sit on this shard's paths.
			if bn.Vantage != "" && bn.Vantage != sh.vantage {
				continue
			}
			st := bn.Queue.Stats()
			s.Utilization = bn.Utilization
			s.QueueECT += st.WireECT
			s.QueueCEMarked += st.WireCEMarked
			s.QueueNotECTDropped += st.WireNotECTDropped
			s.QueueTailDropped += st.TailDropped
			s.QueueOffered += st.Offered()
			s.QueueSumBacklog += st.SumBacklog
		}
		cong = &s
	}

	return shardResult{
		world:      w,
		data:       d,
		obs:        obs,
		servers:    c.Servers,
		congestion: cong,
		stats: ShardStats{
			Shard:       sh.shard,
			Vantage:     sh.vantage,
			Seed:        sh.seed,
			Traces:      len(d.Traces),
			Events:      sim.Executed(),
			VirtualTime: sim.Now(),
			Elapsed:     time.Since(start),
		},
	}, nil
}

// merge combines per-shard results in canonical (slice) order.
func merge(results []shardResult) *Result {
	res := &Result{Shards: make([]ShardStats, 0, len(results))}
	parts := make([]*dataset.Dataset, 0, len(results))
	seen := make(map[packet.Addr]bool)
	for i := range results {
		r := &results[i]
		parts = append(parts, r.data)
		res.PathObs = append(res.PathObs, r.obs...)
		res.Shards = append(res.Shards, r.stats)
		res.Events += r.stats.Events
		if r.congestion != nil {
			res.Congestion = append(res.Congestion, *r.congestion)
		}
		for _, a := range r.servers {
			if !seen[a] {
				seen[a] = true
				res.Servers = append(res.Servers, a)
			}
		}
	}
	res.Dataset = dataset.Merge(parts...)
	res.World = results[0].world
	return res
}
