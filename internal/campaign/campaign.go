// Package campaign is the sharded, parallel campaign engine: it
// partitions the paper's vantage×server probe plan into shards, runs
// every shard in its own independent discrete-event simulation on a
// bounded pool of worker goroutines, and deterministically merges the
// per-shard results in canonical order.
//
// A shard is a (vantage, slice) pair: each vantage's trace quota is
// split into SlicesPerVantage contiguous blocks, so parallelism is no
// longer capped at the paper's 13 vantage points — a paper-scale
// campaign splits into 13×slices independent simulations. Three
// properties make any slicing equivalent to the sequential run:
//
//   - One frozen world. The topology is compiled once
//     (topology.Compile) from the campaign seed and instantiated into
//     every shard simulation: identical ground truth by construction
//     (Figure 3's "same set of servers from every location" depends on
//     this), with the read-only skeleton — routes, geo, ASN, DNS
//     membership — shared rather than rebuilt per shard.
//   - History-free measurement phases. Every phase runs in its own
//     deterministic context: the simulator PRNG is reseeded from the
//     phase's identity (TraceSeed for trace k of a vantage, the sweep
//     and discovery seeds per vantage), the phase starts at a virtual
//     time pinned to its own epoch (traceStartAt), and transient world
//     state is reset at the boundary (World.ResetTransientState). A
//     trace therefore executes identically whether it shares a
//     simulator with its vantage's other traces or runs alone.
//   - Canonical merge. dataset.Merge reassembles the per-shard datasets
//     in (vantage, slice) order; since slices are contiguous trace
//     blocks, the result is the vantage-major trace sequence.
//
// Together these make the merged dataset byte-identical for any worker
// count, any GOMAXPROCS setting, and any SlicesPerVantage — the
// invariant cmd/determinism verifies across the whole grid.
package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/aqm"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dnspool"
	"repro/internal/ecn"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/traceroute"
)

// Config sizes and parameterises a sharded campaign. The zero value runs
// the full paper plan at paper scale on all available CPUs.
type Config struct {
	// Scale selects the generated world: "paper" (2500 servers, the
	// default) or "small" (120 servers, for tests and CI).
	Scale string
	// Topology overrides the world configuration entirely (ablations);
	// when set, Scale is ignored.
	Topology *topology.Config
	// Scenario names the congestion scenario: "uncongested" (the
	// default — identical to pre-substrate behaviour), "congested-edge"
	// or "congested-transit". It applies on top of Scale or Topology.
	Scenario string

	// TracePlan maps vantage name → trace count. When nil, Traces (if
	// positive) gives every vantage that many traces; otherwise the
	// paper's 210-trace plan is used.
	TracePlan map[string]int
	// Traces is the per-vantage trace count used when TracePlan is nil.
	Traces int
	// Batch2Fraction is the share of each vantage's traces run under
	// batch-2 (July/August) conditions. Default 0.5.
	Batch2Fraction float64
	// SettleTime separates consecutive traces in the sequential
	// core.Campaign loop. The sharded engine ignores it: traces are
	// pinned to fixed virtual epochs instead, which is what keeps their
	// start times independent of how the campaign is sliced.
	SettleTime time.Duration

	// Discover enumerates the pool via DNS inside each shard before
	// probing (each shard discovers independently, as a real distributed
	// deployment would; the discovery PRNG stream is keyed by vantage
	// alone, so every slice of a vantage probes the same pool). When
	// false, shards probe the ground-truth list.
	Discover bool
	// DiscoveryRounds overrides the DNS polling rounds (default 50).
	DiscoveryRounds int

	// Stride samples every Nth server for the traceroute campaign
	// (Section 4.2). Zero disables traceroutes entirely.
	Stride int
	// Traceroute is the per-path probe configuration.
	Traceroute traceroute.Config

	// Seed is the campaign seed: the world blueprint compiles from it
	// verbatim, and every measurement phase's PRNG stream derives from
	// it (ShardSeed, TraceSeed).
	Seed int64
	// Workers bounds the number of shards running concurrently.
	// Zero means GOMAXPROCS. The result does not depend on Workers.
	Workers int
	// SlicesPerVantage splits each vantage's trace quota into this many
	// contiguous sub-shards (env REPRO_SLICES, ecnspider -slices),
	// lifting the one-shard-per-vantage parallelism cap. Zero or one
	// keeps a single shard per vantage. The merged result does not
	// depend on the slice count.
	SlicesPerVantage int
	// Scheduler selects the simulator's pending-event structure:
	// "wheel" (the default O(1) hierarchical timing wheel) or "heap"
	// (the legacy binary heap, kept for differential testing; env
	// REPRO_SCHED). The merged result does not depend on the choice.
	Scheduler string
	// XTraffic selects the congestion substrate's cross-traffic drive:
	// "lazy" (the default — phantom serialization boundaries replay in
	// an arithmetic catch-up loop, never as events) or "events" (the
	// legacy one-event-per-boundary path, kept as a differential
	// oracle; env REPRO_XTRAFFIC). The merged result does not depend on
	// the choice.
	XTraffic string

	// ShardHook, when non-nil, runs in the worker goroutine after a
	// shard's world is built and reseeded but before its campaign starts
	// — e.g. to attach a packet capture tap. With SlicesPerVantage > 1
	// it runs once per (vantage, slice) shard. It must not share mutable
	// state across shards without its own synchronisation.
	ShardHook func(shard int, vantage string, w *topology.World)
	// ShardStart and ShardDone, when non-nil, bracket each shard's
	// execution for progress reporting: ShardStart fires in the worker
	// goroutine as the (vantage, slice) shard is picked up, ShardDone
	// when it completes successfully, with its execution stats. The
	// HTTP control plane's job manager feeds per-shard progress from
	// them. Both run concurrently across workers; they must synchronise
	// any shared state themselves and must not block.
	ShardStart func(shard, slice int, vantage string)
	ShardDone  func(ShardStats)

	// Metrics, when non-nil, receives the engine's flight-recorder
	// accounting: shard lifecycle, per-scheduler event counts and AQM
	// queue totals, flushed from the worker goroutine after each
	// shard's simulator has stopped. It is a runtime attachment — not
	// part of the serializable Spec, never in a cache key — and it is
	// out-of-band: attaching it cannot change a dataset byte (see
	// NewMetrics).
	Metrics *Metrics
}

// FromEnv builds a Config from the REPRO_* environment knobs used by
// the benchmark harness and CI. It is a thin wrapper over the
// serializable campaign spec: SpecFromEnv layers the knobs over
// DefaultSpec (see its doc comment for the vocabulary), and the
// resulting Spec derives the Config — so env, CLI and the HTTP control
// plane all parse campaign configuration through one surface.
func FromEnv() (Config, error) {
	s, err := SpecFromEnv()
	if err != nil {
		return Config{}, err
	}
	return s.Config()
}

// ShardStats records one shard's execution for capacity planning.
type ShardStats struct {
	// Shard is the vantage's fixed index in topology.VantageNames order;
	// it, not the dense execution order, feeds the seed derivation, so a
	// vantage keeps its random stream whatever subset of the plan runs.
	Shard int
	// Slice is the shard's sub-vantage index (0 when unsliced).
	Slice   int
	Vantage string
	Seed    int64
	Traces  int
	// Events is the shard simulator's executed event count.
	Events uint64
	// PhantomEvents counts the executed events that were phantom
	// cross-traffic serialization boundaries; ReplayedBoundaries counts
	// the boundaries the lazy drive replayed arithmetically instead —
	// work the event loop never saw.
	PhantomEvents      uint64
	ReplayedBoundaries uint64
	// WheelCascades and WheelRegisterHits report the timing wheel's
	// internal activity (zero on the heap scheduler): higher-level
	// slots re-filed into finer levels, and pops served straight from
	// the singleton register.
	WheelCascades     uint64
	WheelRegisterHits uint64
	// VirtualTime is the shard's simulated clock at completion.
	VirtualTime time.Duration
	// Elapsed is the shard's wall-clock execution time.
	Elapsed time.Duration
}

// Result is a merged campaign output.
type Result struct {
	// Dataset holds all traces in canonical vantage order with
	// campaign-wide trace indices.
	Dataset *dataset.Dataset
	// PathObs holds the traceroute campaign's hop observations, in the
	// same canonical vantage order.
	PathObs []traceroute.PathObservation
	// World is the first shard's world — every shard instantiates the
	// same frozen blueprint — for Geo/ASN lookups and follow-on
	// experiments.
	World *topology.World
	// Servers is the union of probed targets in first-seen shard order.
	Servers []packet.Addr
	// Shards reports per-shard execution stats in canonical
	// (vantage, slice) order.
	Shards []ShardStats
	// Events is the total executed event count across all shards;
	// PhantomEvents and ReplayedBoundaries split the cross-traffic
	// work into evented boundaries and lazily replayed ones.
	Events             uint64
	PhantomEvents      uint64
	ReplayedBoundaries uint64
	// Congestion holds one CE-mark sample per vantage (canonical order)
	// when the scenario places bottlenecks; empty for uncongested runs.
	// Samples aggregate over the vantage's slices, so the report is
	// independent of the slice count. Feed it to
	// analysis.ComputeCEMarkReport.
	Congestion []analysis.CEMarkSample
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix.
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Seed-stream domains. Every measurement phase draws from a stream keyed
// by (campaign seed, phase identity); the domain constant separates the
// phase kinds so e.g. trace 0 and slice 0 can never collide.
const (
	seedDomainShard = 0x5348_4152 // shard sims & per-vantage discovery
	seedDomainTrace = 0x5452_4143 // one stream per (vantage, trace)
	seedDomainSweep = 0x5357_4545 // the per-vantage traceroute sweep
)

func deriveSeed(seed int64, domain, a, b int) int64 {
	z := splitmix64(uint64(seed) ^ splitmix64(uint64(domain)<<40|uint64(a)<<20|uint64(b)))
	return int64(z)
}

// ShardSeed derives the (vantage, slice) shard's measurement-phase seed
// from the campaign seed via nested splitmix64 finalizers. Distinct
// shards of one campaign receive pairwise-distinct seeds, all different
// from the raw campaign seed the world blueprint compiles from.
func ShardSeed(seed int64, vantage, slice int) int64 {
	return deriveSeed(seed, seedDomainShard, vantage, slice)
}

// TraceSeed derives the PRNG stream for trace k of a vantage's quota.
// It is keyed by the vantage's fixed Table 2 index and the trace's
// per-vantage index — never by slice — so the trace's randomness is
// identical however the quota is sliced into shards.
func TraceSeed(seed int64, vantage, k int) int64 {
	return deriveSeed(seed, seedDomainTrace, vantage, k)
}

// sweepSeed keys the per-vantage traceroute sweep stream.
func sweepSeed(seed int64, vantage int) int64 {
	return deriveSeed(seed, seedDomainSweep, vantage, 0)
}

// Virtual-time layout. Every measurement phase is pinned to its own
// epoch: discovery owns [0, shardEpoch), trace k of a vantage starts at
// traceStartAt(k), and the traceroute sweep follows the last planned
// trace. Pinned starts make a trace's virtual timeline (including the
// recorded Trace.Started) independent of which traces preceded it in
// the same simulator — the other half, with per-phase reseeding, of
// slice-count invariance. Virtual time is free: a sparse timeline costs
// the timing wheel a few bitmap scans per jump, not events.
//
// shardEpoch bounds one trace's duration (probes, timeouts and TCP
// teardown included). A worst-case paper-scale trace — every one of
// 2500 servers offline, every probe driven to its full retransmission
// schedule — stays under two virtual days; runShard fails loudly if a
// trace ever overruns its epoch rather than silently skewing the next.
// The epoch is a multiple of the background cross-traffic period, so
// bottleneck burst phases align identically in every epoch.
const shardEpoch = 7 * 24 * time.Hour

// traceStartAt pins trace k (per-vantage index) to its virtual epoch.
func traceStartAt(k int) time.Duration {
	return shardEpoch * time.Duration(k+1)
}

// sweepStartAt pins a vantage's traceroute sweep after its last trace.
func sweepStartAt(planned int) time.Duration {
	return shardEpoch * time.Duration(planned+1)
}

// shardSpec is one unit of parallel work: a contiguous block of one
// vantage's traces.
type shardSpec struct {
	shard   int // fixed vantage index, not dense position
	slice   int
	vantage string
	planned int // the vantage's full trace quota
	lo, hi  int // this slice's trace range [lo, hi)
	sweep   bool
	seed    int64
}

// shardResult is what one shard hands to the merge step.
type shardResult struct {
	world      *topology.World
	data       *dataset.Dataset
	obs        []traceroute.PathObservation
	servers    []packet.Addr
	stats      ShardStats
	congestion *analysis.CEMarkSample
}

func (cfg Config) topologyConfig() (topology.Config, error) {
	var topo topology.Config
	switch {
	case cfg.Topology != nil:
		topo = *cfg.Topology
	default:
		switch cfg.Scale {
		case "small":
			topo = topology.SmallConfig()
		case "", "paper":
			topo = topology.DefaultConfig()
		default:
			return topology.Config{}, fmt.Errorf("campaign: unknown scale %q (want paper or small)", cfg.Scale)
		}
	}
	if err := ApplyScenario(&topo, cfg.Scenario); err != nil {
		return topology.Config{}, err
	}
	return topo, nil
}

func (cfg Config) plan() map[string]int {
	if cfg.TracePlan != nil {
		return cfg.TracePlan
	}
	if cfg.Traces > 0 {
		plan := make(map[string]int, len(topology.VantageNames()))
		for _, name := range topology.VantageNames() {
			plan[name] = cfg.Traces
		}
		return plan
	}
	return core.PaperTracePlan()
}

func (cfg Config) batch2Fraction() float64 {
	if cfg.Batch2Fraction == 0 {
		return 0.5
	}
	return cfg.Batch2Fraction
}

// shardSpecs returns the campaign's work partition in canonical order:
// for each vantage present in the trace plan (in the paper's Table 2
// vantage order), its quota split into SlicesPerVantage contiguous
// blocks. Empty blocks (more slices than traces) are skipped; the slice
// holding trace 0 also owns the vantage's traceroute sweep.
func (cfg Config) shardSpecs() []shardSpec {
	plan := cfg.plan()
	slices := cfg.SlicesPerVantage
	if slices < 1 {
		slices = 1
	}
	var shards []shardSpec
	for i, name := range topology.VantageNames() {
		n := plan[name]
		if n <= 0 {
			continue
		}
		for s := 0; s < slices; s++ {
			lo, hi := s*n/slices, (s+1)*n/slices
			if hi <= lo {
				continue
			}
			shards = append(shards, shardSpec{
				shard:   i,
				slice:   s,
				vantage: name,
				planned: n,
				lo:      lo,
				hi:      hi,
				sweep:   lo == 0,
				seed:    ShardSeed(cfg.Seed, i, s),
			})
		}
	}
	return shards
}

// ShardInfo describes one planned unit of parallel work: a contiguous
// block of one vantage's traces. The control plane exposes the plan
// (and each shard's completion) over the API so remote workers can
// eventually claim shards.
type ShardInfo struct {
	// Shard is the vantage's fixed Table 2 index; Slice its sub-vantage
	// index (0 when unsliced).
	Shard   int    `json:"shard"`
	Slice   int    `json:"slice"`
	Vantage string `json:"vantage"`
	// Traces is the number of traces in this shard's block.
	Traces int `json:"traces"`
	// Sweep marks the slice that also owns the vantage's traceroute
	// sweep (the one holding trace 0).
	Sweep bool `json:"sweep"`
}

// Shards returns the campaign's work partition in canonical
// (vantage, slice) order — the order ShardStats appear in Result.Shards
// and datasets merge in.
func (cfg Config) Shards() []ShardInfo {
	specs := cfg.shardSpecs()
	infos := make([]ShardInfo, len(specs))
	for i, sh := range specs {
		infos[i] = ShardInfo{
			Shard:   sh.shard,
			Slice:   sh.slice,
			Vantage: sh.vantage,
			Traces:  sh.hi - sh.lo,
			Sweep:   sh.sweep,
		}
	}
	return infos
}

// Run executes the sharded campaign and returns the merged result. The
// merged output is byte-identical for any Workers value, GOMAXPROCS
// setting, SlicesPerVantage count or Scheduler choice: shards share
// only the frozen world blueprint, every measurement phase is
// history-free, and the merge runs in canonical order.
func Run(cfg Config) (*Result, error) {
	sched, ok := netsim.SchedulerByName(cfg.Scheduler)
	if !ok {
		return nil, fmt.Errorf("campaign: unknown scheduler %q (want wheel or heap)", cfg.Scheduler)
	}
	xmode, ok := netsim.XTrafficModeByName(cfg.XTraffic)
	if !ok {
		return nil, fmt.Errorf("campaign: unknown cross-traffic drive %q (want lazy or events)", cfg.XTraffic)
	}
	shards := cfg.shardSpecs()
	if len(shards) == 0 {
		return nil, fmt.Errorf("campaign: trace plan selects no vantages")
	}
	// Compile the world once; every shard instantiates the frozen
	// blueprint instead of regenerating and re-routing its own copy.
	bp, err := cfg.CompileBlueprint()
	if err != nil {
		return nil, err
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(shards) {
		workers = len(shards)
	}

	results := make([]shardResult, len(shards))
	errs := make([]error, len(shards))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				sh := shards[i]
				if cfg.ShardStart != nil {
					cfg.ShardStart(sh.shard, sh.slice, sh.vantage)
				}
				cfg.Metrics.shardStarted()
				results[i], errs[i] = runShard(cfg, bp, sh, sched, xmode)
				if errs[i] != nil {
					cfg.Metrics.shardFailed()
					continue
				}
				cfg.Metrics.shardFinished(results[i].stats, results[i].world, sched.Name())
				if cfg.ShardDone != nil {
					cfg.ShardDone(results[i].stats)
				}
			}
		}()
	}
	for i := range shards {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return merge(results), nil
}

// runShard executes one shard in a private simulation: instantiate the
// frozen world, then run the shard's trace block — every trace in its
// own reseeded, transient-reset, epoch-pinned context — and, on the
// vantage's first slice, the traceroute sweep.
func runShard(cfg Config, bp *topology.Blueprint, sh shardSpec, sched netsim.Scheduler, xmode netsim.XTrafficMode) (shardResult, error) {
	start := time.Now()
	fail := func(err error) (shardResult, error) {
		return shardResult{}, fmt.Errorf("campaign: shard %d/%d (%s): %w", sh.shard, sh.slice, sh.vantage, err)
	}
	sim := netsim.NewSimSched(cfg.Seed, sched)
	sim.SetXTrafficMode(xmode)
	w, err := bp.Instantiate(sim)
	if err != nil {
		return fail(err)
	}
	sim.Reseed(sh.seed)
	if cfg.ShardHook != nil {
		cfg.ShardHook(sh.shard, sh.vantage, w)
	}
	v, ok := w.VantageByName(sh.vantage)
	if !ok {
		return fail(fmt.Errorf("vantage missing from world"))
	}

	// On congested scenarios, observe arriving ECN codepoints at the
	// shard's vantage — the receiver-side input of the verbose-mode
	// CE-ratio estimator. The tap only counts; it cannot perturb the
	// measurement or its randomness.
	var inECT, inCE, inNotECT uint64
	if len(w.Bottlenecks) > 0 {
		v.Host.AddTap(func(dir netsim.TapDirection, _ time.Duration, wire []byte) {
			if dir != netsim.TapIn {
				return
			}
			switch cp, err := packet.WireECN(wire); {
			case err != nil:
			case cp == ecn.CE:
				inCE++
			case cp.IsECT():
				inECT++
			default:
				inNotECT++
			}
		})
	}

	// Target list: ground truth, or per-shard DNS discovery in the
	// pre-trace epoch. The discovery stream is keyed by vantage alone
	// (slice 0's shard seed), so every slice enumerates the same pool.
	servers := w.ServerAddrs()
	if cfg.Discover {
		sim.Reseed(ShardSeed(cfg.Seed, sh.shard, 0))
		rounds := cfg.DiscoveryRounds
		if rounds == 0 {
			rounds = 50
		}
		var got []packet.Addr
		found := false
		dnspool.Discover(v.Host, dnspool.DiscoverConfig{
			Resolver:      w.DNSAddr,
			Zones:         w.CountryZones,
			Rounds:        rounds,
			QueryGap:      100 * time.Millisecond,
			RoundInterval: time.Minute,
		}, func(r dnspool.DiscoverResult) {
			got = r.Servers
			found = true
		})
		sim.Run()
		if !found {
			return fail(fmt.Errorf("discovery did not complete"))
		}
		servers = got
	}

	// Discovery runs in every slice (each needs the server list), but a
	// vantage's congestion sample must count its traffic exactly once —
	// as the unsliced run does — for the CE-mark report to stay
	// slice-invariant. Non-sweep slices therefore snapshot the tap and
	// queue counters here and report only the delta.
	var baseInECT, baseInCE, baseInNotECT uint64
	var baseQueue []aqm.Stats
	if !sh.sweep && len(w.Bottlenecks) > 0 {
		baseInECT, baseInCE, baseInNotECT = inECT, inCE, inNotECT
		baseQueue = make([]aqm.Stats, len(w.Bottlenecks))
		for i, bn := range w.Bottlenecks {
			baseQueue[i] = bn.Queue.Stats()
		}
	}

	d := &dataset.Dataset{}
	for k := sh.lo; k < sh.hi; k++ {
		at := traceStartAt(k)
		if sim.Now() >= at {
			return fail(fmt.Errorf("trace %d overran its epoch: clock %v past %v", k-1, sim.Now(), at))
		}
		k := k
		completed := false
		sim.At(at, func() {
			sim.Reseed(TraceSeed(cfg.Seed, sh.shard, k))
			w.ResetTransientState()
			batch := core.BatchFor(k, sh.planned, cfg.batch2Fraction())
			w.ApplyTraceConditions(v, batch, sim.RNG())
			core.RunTrace(v, servers, batch, k, func(t dataset.Trace) {
				d.Traces = append(d.Traces, t)
				completed = true
			})
		})
		sim.Run()
		if !completed {
			return fail(fmt.Errorf("trace %d did not complete", k))
		}
	}

	var obs []traceroute.PathObservation
	if cfg.Stride > 0 && sh.sweep {
		at := sweepStartAt(sh.planned)
		if sim.Now() >= at {
			return fail(fmt.Errorf("trace %d overran into the sweep epoch at %v", sh.hi-1, at))
		}
		sim.At(at, func() {
			sim.Reseed(sweepSeed(cfg.Seed, sh.shard))
			w.ResetTransientState()
			core.RunTracerouteCampaign(w, core.TracerouteCampaignConfig{
				Vantages:     []string{sh.vantage},
				TargetStride: cfg.Stride,
				Config:       cfg.Traceroute,
			}, func(o []core.PathObservation) { obs = o })
		})
		sim.Run()
	}

	var cong *analysis.CEMarkSample
	if len(w.Bottlenecks) > 0 {
		s := analysis.CEMarkSample{
			Vantage:  sh.vantage,
			InECT:    inECT - baseInECT,
			InCE:     inCE - baseInCE,
			InNotECT: inNotECT - baseInNotECT,
		}
		for i, bn := range w.Bottlenecks {
			// Edge bottlenecks belong to one vantage; only this shard's
			// carries foreground traffic. Transit bottlenecks (empty
			// Vantage) all sit on this shard's paths.
			if bn.Vantage != "" && bn.Vantage != sh.vantage {
				continue
			}
			st := bn.Queue.Stats()
			var base aqm.Stats
			if baseQueue != nil {
				base = baseQueue[i]
			}
			s.Utilization = bn.Utilization
			s.QueueECT += st.WireECT - base.WireECT
			s.QueueCEMarked += st.WireCEMarked - base.WireCEMarked
			s.QueueNotECTDropped += st.WireNotECTDropped - base.WireNotECTDropped
			s.QueueTailDropped += st.TailDropped - base.TailDropped
			s.QueueOffered += st.Offered() - base.Offered()
			s.QueueSumBacklog += st.SumBacklog - base.SumBacklog
		}
		cong = &s
	}

	cascades, registerHits := sim.WheelStats()
	return shardResult{
		world:      w,
		data:       d,
		obs:        obs,
		servers:    servers,
		congestion: cong,
		stats: ShardStats{
			Shard:              sh.shard,
			Slice:              sh.slice,
			Vantage:            sh.vantage,
			Seed:               sh.seed,
			Traces:             len(d.Traces),
			Events:             sim.Executed(),
			PhantomEvents:      sim.PhantomEvents(),
			ReplayedBoundaries: sim.ReplayedBoundaries(),
			WheelCascades:      cascades,
			WheelRegisterHits:  registerHits,
			VirtualTime:        sim.Now(),
			Elapsed:            time.Since(start),
		},
	}, nil
}

// merge combines per-shard results in canonical (vantage, slice) order.
// Congestion samples aggregate per vantage: counters sum over the
// vantage's slices, so the CE-mark report — like the dataset — is
// independent of how the campaign was sliced.
func merge(results []shardResult) *Result {
	res := &Result{Shards: make([]ShardStats, 0, len(results))}
	parts := make([]*dataset.Dataset, 0, len(results))
	seen := make(map[packet.Addr]bool)
	for i := range results {
		r := &results[i]
		parts = append(parts, r.data)
		res.PathObs = append(res.PathObs, r.obs...)
		res.Shards = append(res.Shards, r.stats)
		res.Events += r.stats.Events
		res.PhantomEvents += r.stats.PhantomEvents
		res.ReplayedBoundaries += r.stats.ReplayedBoundaries
		if r.congestion != nil {
			if n := len(res.Congestion); n > 0 && res.Congestion[n-1].Vantage == r.congestion.Vantage {
				agg := &res.Congestion[n-1]
				agg.InECT += r.congestion.InECT
				agg.InCE += r.congestion.InCE
				agg.InNotECT += r.congestion.InNotECT
				agg.QueueECT += r.congestion.QueueECT
				agg.QueueCEMarked += r.congestion.QueueCEMarked
				agg.QueueNotECTDropped += r.congestion.QueueNotECTDropped
				agg.QueueTailDropped += r.congestion.QueueTailDropped
				agg.QueueOffered += r.congestion.QueueOffered
				agg.QueueSumBacklog += r.congestion.QueueSumBacklog
			} else {
				res.Congestion = append(res.Congestion, *r.congestion)
			}
		}
		for _, a := range r.servers {
			if !seen[a] {
				seen[a] = true
				res.Servers = append(res.Servers, a)
			}
		}
	}
	res.Dataset = dataset.Merge(parts...)
	res.World = results[0].world
	return res
}
