package campaign

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/analysis"
)

// TestWorkerCountInvariance is the engine's headline guarantee: the same
// campaign seed yields a byte-identical merged dataset — and identical
// downstream analysis artefacts — whether the shards run sequentially on
// one worker, on a small pool, or one goroutine per vantage.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism test in -short mode")
	}

	type artefacts struct {
		data    []byte
		pathObs int
		figure4 string
		figure5 string
		figure6 string
	}
	run := func(workers int) artefacts {
		cfg := testConfig()
		cfg.Workers = workers
		res := runOrFatal(t, cfg)
		f5 := analysis.ComputeFigure5(res.Dataset)
		return artefacts{
			data:    encode(t, res.Dataset),
			pathObs: len(res.PathObs),
			figure4: analysis.RenderFigure4(analysis.ComputeFigure4(res.PathObs, res.World.ASN)),
			figure5: analysis.RenderFigure5(f5),
			figure6: analysis.RenderFigure6(analysis.ComputeFigure6(f5)),
		}
	}

	ref := run(1)
	if len(ref.data) == 0 || ref.pathObs == 0 {
		t.Fatal("reference run is empty")
	}
	for _, workers := range []int{4, 13} {
		got := run(workers)
		if !bytes.Equal(got.data, ref.data) {
			t.Errorf("workers=%d: merged dataset differs from workers=1 (%d vs %d bytes)",
				workers, len(got.data), len(ref.data))
		}
		if got.pathObs != ref.pathObs {
			t.Errorf("workers=%d: %d path observations, want %d", workers, got.pathObs, ref.pathObs)
		}
		if got.figure4 != ref.figure4 {
			t.Errorf("workers=%d: Figure 4 differs:\n%s\nvs\n%s", workers, got.figure4, ref.figure4)
		}
		if got.figure5 != ref.figure5 {
			t.Errorf("workers=%d: Figure 5 differs:\n%s\nvs\n%s", workers, got.figure5, ref.figure5)
		}
		if got.figure6 != ref.figure6 {
			t.Errorf("workers=%d: Figure 6 differs:\n%s\nvs\n%s", workers, got.figure6, ref.figure6)
		}
	}
}

// TestGOMAXPROCSInvariance pins the other half of the guarantee: the
// result does not depend on how many CPUs the scheduler may use.
func TestGOMAXPROCSInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism test in -short mode")
	}
	cfg := testConfig()
	cfg.Workers = 4

	prev := runtime.GOMAXPROCS(1)
	one := encode(t, runOrFatal(t, cfg).Dataset)
	runtime.GOMAXPROCS(prev)
	if prev == 1 && runtime.NumCPU() > 1 {
		runtime.GOMAXPROCS(runtime.NumCPU())
		defer runtime.GOMAXPROCS(prev)
	}
	many := encode(t, runOrFatal(t, cfg).Dataset)
	if !bytes.Equal(one, many) {
		t.Error("merged dataset depends on GOMAXPROCS")
	}
}
