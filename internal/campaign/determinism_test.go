package campaign

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/analysis"
	"repro/internal/topology"
)

// TestWorkerCountInvariance is the engine's headline guarantee: the same
// campaign seed yields a byte-identical merged dataset — and identical
// downstream analysis artefacts — whether the shards run sequentially on
// one worker, on a small pool, or one goroutine per vantage.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism test in -short mode")
	}

	type artefacts struct {
		data    []byte
		pathObs int
		figure4 string
		figure5 string
		figure6 string
	}
	run := func(workers int) artefacts {
		cfg := testConfig()
		cfg.Workers = workers
		res := runOrFatal(t, cfg)
		f5 := analysis.ComputeFigure5(res.Dataset)
		return artefacts{
			data:    encode(t, res.Dataset),
			pathObs: len(res.PathObs),
			figure4: analysis.RenderFigure4(analysis.ComputeFigure4(res.PathObs, res.World.ASN)),
			figure5: analysis.RenderFigure5(f5),
			figure6: analysis.RenderFigure6(analysis.ComputeFigure6(f5)),
		}
	}

	ref := run(1)
	if len(ref.data) == 0 || ref.pathObs == 0 {
		t.Fatal("reference run is empty")
	}
	for _, workers := range []int{4, 13} {
		got := run(workers)
		if !bytes.Equal(got.data, ref.data) {
			t.Errorf("workers=%d: merged dataset differs from workers=1 (%d vs %d bytes)",
				workers, len(got.data), len(ref.data))
		}
		if got.pathObs != ref.pathObs {
			t.Errorf("workers=%d: %d path observations, want %d", workers, got.pathObs, ref.pathObs)
		}
		if got.figure4 != ref.figure4 {
			t.Errorf("workers=%d: Figure 4 differs:\n%s\nvs\n%s", workers, got.figure4, ref.figure4)
		}
		if got.figure5 != ref.figure5 {
			t.Errorf("workers=%d: Figure 5 differs:\n%s\nvs\n%s", workers, got.figure5, ref.figure5)
		}
		if got.figure6 != ref.figure6 {
			t.Errorf("workers=%d: Figure 6 differs:\n%s\nvs\n%s", workers, got.figure6, ref.figure6)
		}
	}
}

// TestSliceCountInvariance is the sub-vantage sharding guarantee: the
// merged dataset, traceroute observations and congestion report are
// byte-identical whether each vantage runs as one shard or split into
// contiguous trace slices — including more slices than traces. With
// per-trace seeds, epoch-pinned starts and transient resets, a trace
// cannot tell which simulator it shared.
func TestSliceCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism test in -short mode")
	}
	for _, scenario := range []string{ScenarioUncongested, ScenarioCongestedEdge} {
		var refData []byte
		var refObs int
		var refCong []analysis.CEMarkSample
		for _, slices := range []int{1, 2, 8} {
			cfg := testConfig()
			cfg.Scenario = scenario
			cfg.SlicesPerVantage = slices
			res := runOrFatal(t, cfg)
			data := encode(t, res.Dataset)
			if refData == nil {
				refData, refObs, refCong = data, len(res.PathObs), res.Congestion
				continue
			}
			if !bytes.Equal(refData, data) {
				t.Errorf("%s: dataset differs between slices=1 and slices=%d", scenario, slices)
			}
			if len(res.PathObs) != refObs {
				t.Errorf("%s: slices=%d: %d path observations, want %d", scenario, slices, len(res.PathObs), refObs)
			}
			if len(res.Congestion) != len(refCong) {
				t.Fatalf("%s: slices=%d: %d congestion samples, want %d", scenario, slices, len(res.Congestion), len(refCong))
			}
			for i := range refCong {
				if refCong[i] != res.Congestion[i] {
					t.Errorf("%s: slices=%d: congestion sample %d differs:\n%+v\n%+v",
						scenario, slices, i, refCong[i], res.Congestion[i])
				}
			}
		}
	}
}

// TestSliceCountInvarianceWithDiscovery covers the subtle corner:
// DNS discovery runs in every slice (each needs the server list), so
// non-sweep slices must report only post-discovery deltas in their
// congestion samples — otherwise the CE-mark report would count the
// discovery traffic once per slice and drift with the slice count.
func TestSliceCountInvarianceWithDiscovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism test in -short mode")
	}
	run := func(slices int) *Result {
		cfg := testConfig()
		cfg.Scenario = ScenarioCongestedEdge
		cfg.TracePlan = map[string]int{"Perkins home": 2, "McQuistin home": 2}
		cfg.Stride = 0
		cfg.Discover = true
		cfg.DiscoveryRounds = 8
		cfg.SlicesPerVantage = slices
		return runOrFatal(t, cfg)
	}
	ref := run(1)
	if len(ref.Congestion) != 2 {
		t.Fatalf("congestion samples = %d, want 2", len(ref.Congestion))
	}
	for _, slices := range []int{2, 8} {
		got := run(slices)
		if !bytes.Equal(encode(t, ref.Dataset), encode(t, got.Dataset)) {
			t.Errorf("slices=%d: discovered-campaign dataset differs from slices=1", slices)
		}
		if len(got.Congestion) != len(ref.Congestion) {
			t.Fatalf("slices=%d: %d congestion samples, want %d", slices, len(got.Congestion), len(ref.Congestion))
		}
		for i := range ref.Congestion {
			if ref.Congestion[i] != got.Congestion[i] {
				t.Errorf("slices=%d: congestion sample %d counts discovery traffic per slice:\n%+v\n%+v",
					slices, i, ref.Congestion[i], got.Congestion[i])
			}
		}
	}
}

// TestSliceShardShape checks the work partition: slices split each
// vantage's quota into contiguous blocks, exactly one slice per vantage
// owns the traceroute sweep, and per-shard stats stay coherent.
func TestSliceShardShape(t *testing.T) {
	cfg := testConfig() // 2 traces per vantage
	cfg.SlicesPerVantage = 2
	res := runOrFatal(t, cfg)
	nv := len(topology.VantageNames())
	if got, want := len(res.Shards), 2*nv; got != want {
		t.Fatalf("shards = %d, want %d", got, want)
	}
	var events uint64
	for i, s := range res.Shards {
		if s.Shard != i/2 || s.Slice != i%2 {
			t.Errorf("shard %d: (vantage,slice) = (%d,%d)", i, s.Shard, s.Slice)
		}
		if s.Traces != 1 {
			t.Errorf("shard %d ran %d traces, want 1", i, s.Traces)
		}
		events += s.Events
	}
	if events != res.Events {
		t.Errorf("events sum %d != total %d", events, res.Events)
	}
	if got, want := len(res.Dataset.Traces), 2*nv; got != want {
		t.Fatalf("merged traces = %d, want %d", got, want)
	}
	if len(res.PathObs) == 0 {
		t.Error("no traceroute observations with slicing")
	}
	// More slices than traces: empty slices are skipped, nothing lost.
	cfg.SlicesPerVantage = 8
	res8 := runOrFatal(t, cfg)
	if got, want := len(res8.Shards), 2*nv; got != want {
		t.Fatalf("slices=8: shards = %d, want %d (empty slices skipped)", got, want)
	}
	if !bytes.Equal(encode(t, res.Dataset), encode(t, res8.Dataset)) {
		t.Error("slices=8 dataset differs from slices=2")
	}
}

// TestSchedulerDifferential is the timing wheel's end-to-end gate: a
// full small campaign (all scenarios, with traceroutes) run on the heap
// fallback must produce the byte-identical merged dataset the wheel
// produces, so the fallback cannot rot and the wheel cannot drift.
func TestSchedulerDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run differential test in -short mode")
	}
	for _, scenario := range Scenarios() {
		var ref []byte
		var refObs int
		for _, sched := range []string{"wheel", "heap"} {
			cfg := testConfig()
			cfg.Scenario = scenario
			cfg.Scheduler = sched
			cfg.SlicesPerVantage = 2
			res := runOrFatal(t, cfg)
			data := encode(t, res.Dataset)
			if ref == nil {
				ref, refObs = data, len(res.PathObs)
				continue
			}
			if !bytes.Equal(ref, data) {
				t.Errorf("%s: merged dataset differs between wheel and heap", scenario)
			}
			if len(res.PathObs) != refObs {
				t.Errorf("%s: path observations differ between wheel and heap: %d vs %d",
					scenario, len(res.PathObs), refObs)
			}
		}
	}
}

// TestGOMAXPROCSInvariance pins the other half of the guarantee: the
// result does not depend on how many CPUs the scheduler may use.
func TestGOMAXPROCSInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism test in -short mode")
	}
	cfg := testConfig()
	cfg.Workers = 4

	prev := runtime.GOMAXPROCS(1)
	one := encode(t, runOrFatal(t, cfg).Dataset)
	runtime.GOMAXPROCS(prev)
	if prev == 1 && runtime.NumCPU() > 1 {
		runtime.GOMAXPROCS(runtime.NumCPU())
		defer runtime.GOMAXPROCS(prev)
	}
	many := encode(t, runOrFatal(t, cfg).Dataset)
	if !bytes.Equal(one, many) {
		t.Error("merged dataset depends on GOMAXPROCS")
	}
}
