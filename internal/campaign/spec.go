package campaign

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/traceroute"
)

// SpecVersion is the current campaign-spec schema version. A Spec
// carries it in its "spec" field so stored and submitted specs remain
// interpretable when the schema grows.
const SpecVersion = 1

// Execution strategies a spec may select. Local runs the campaign on
// the coordinator's own job pool; distributed hands the shard plan to
// remote workers over the v1 worker API.
const (
	ExecutionLocal       = "local"
	ExecutionDistributed = "distributed"
)

// Spec is the canonical, serializable description of a campaign: the
// single configuration surface behind the CLI flags, the REPRO_*
// environment knobs and the HTTP control plane's request body. It is
// the JSON-round-trippable subset of Config — everything that selects
// *which* campaign runs and *how* it is executed, but none of the
// in-process hooks (ShardHook, Topology overrides) that cannot
// serialize.
//
// Two forms matter:
//
//   - Submitted form: any subset of fields; zero values mean "default".
//     Validate reports field-level errors for out-of-vocabulary values.
//   - Canonical form: Normalized fills every default explicitly
//     (version, scale, scenario, scheduler, cross-traffic drive, slice
//     count, batch-2 fraction, discovery rounds), so Canonical bytes —
//     encoding/json with fixed field order and sorted trace-plan keys —
//     are identical for every submitted spelling of the same campaign.
//
// The canonical bytes ground the content-addressed result cache: see
// CacheKey.
type Spec struct {
	// Version is the spec schema version ("spec" in JSON). Zero is
	// normalized to SpecVersion; anything else unknown is invalid.
	Version int `json:"spec"`

	// Scale selects the generated world: "paper" (2500 servers) or
	// "small" (120 servers). Empty normalizes to "paper".
	Scale string `json:"scale"`
	// Scenario names the congestion scenario (see Scenarios). Empty
	// normalizes to "uncongested".
	Scenario string `json:"scenario"`

	// Traces is the per-vantage trace count; 0 selects the paper's full
	// 210-trace plan. Ignored when TracePlan is set.
	Traces int `json:"traces"`
	// TracePlan maps vantage name → trace count, overriding Traces.
	// Keys must be Table 2 vantage names; JSON marshals them sorted, so
	// plans canonicalize.
	TracePlan map[string]int `json:"trace_plan,omitempty"`
	// Batch2Fraction is the share of each vantage's traces run under
	// batch-2 conditions. Zero normalizes to 0.5.
	Batch2Fraction float64 `json:"batch2_fraction"`

	// Discover enumerates the pool via DNS inside each shard before
	// probing; DiscoveryRounds overrides the polling rounds (zero
	// normalizes to 50).
	Discover        bool `json:"discover"`
	DiscoveryRounds int  `json:"discovery_rounds"`

	// Stride samples every Nth server for the traceroute campaign; zero
	// disables traceroutes. (Unlike the knobs above, zero is meaningful
	// here and is NOT rewritten by Normalized.)
	Stride int `json:"stride"`

	// Seed is the campaign seed; the same spec with the same seed
	// produces a byte-identical dataset.
	Seed int64 `json:"seed"`

	// Execution shape. These knobs change how the campaign is
	// scheduled, never what it computes: the merged dataset is
	// byte-identical across all of them (the determinism-grid
	// invariant), so CacheKey excludes them.
	//
	// Execution selects the execution strategy: "local" (the default —
	// the coordinator runs the campaign in-process on its job pool) or
	// "distributed" (the coordinator only exposes the shard plan;
	// remote `reprod worker` processes claim (vantage, slice) shards
	// over the API under lease/heartbeat semantics and upload results,
	// which the coordinator merges in canonical order). Like every
	// other shape knob the choice cannot change a dataset byte, so it
	// is stripped from the cache key.
	Execution string `json:"execution"`
	// Workers bounds concurrent shards (0 = GOMAXPROCS).
	Workers int `json:"workers"`
	// SlicesPerVantage splits each vantage's quota into contiguous
	// sub-shards (0 normalizes to 1).
	SlicesPerVantage int `json:"slices_per_vantage"`
	// Scheduler is the simulator's pending-event structure: "wheel"
	// (default) or "heap".
	Scheduler string `json:"scheduler"`
	// XTraffic is the cross-traffic drive: "lazy" (default) or
	// "events".
	XTraffic string `json:"xtraffic"`
}

// DefaultSpec is the fully-explicit default campaign: the paper plan’s
// knob values that FromEnv has always defaulted to, in canonical form.
func DefaultSpec() Spec {
	return Spec{
		Version:          SpecVersion,
		Scale:            "paper",
		Scenario:         ScenarioUncongested,
		Traces:           6,
		Batch2Fraction:   0.5,
		DiscoveryRounds:  50,
		Stride:           3,
		Seed:             2015,
		Execution:        ExecutionLocal,
		Workers:          0,
		SlicesPerVantage: 1,
		Scheduler:        netsim.SchedWheel.Name(),
		XTraffic:         netsim.XTrafficLazy.Name(),
	}
}

// Normalized returns the spec with every defaultable zero value made
// explicit. Two submitted specs that select the same campaign have
// equal normalized forms — and therefore equal Canonical bytes.
func (s Spec) Normalized() Spec {
	if s.Version == 0 {
		s.Version = SpecVersion
	}
	if s.Scale == "" {
		s.Scale = "paper"
	}
	if s.Scenario == "" {
		s.Scenario = ScenarioUncongested
	}
	if s.TracePlan != nil {
		// Traces is shadowed by an explicit plan; zero it so the two
		// spellings of "this exact plan" canonicalize identically, and
		// copy the map so normalization never aliases the caller's.
		s.Traces = 0
		plan := make(map[string]int, len(s.TracePlan))
		for k, v := range s.TracePlan {
			plan[k] = v
		}
		s.TracePlan = plan
	}
	if s.Batch2Fraction == 0 {
		s.Batch2Fraction = 0.5
	}
	if s.DiscoveryRounds == 0 {
		s.DiscoveryRounds = 50
	}
	if s.Execution == "" {
		s.Execution = ExecutionLocal
	}
	if s.SlicesPerVantage == 0 {
		s.SlicesPerVantage = 1
	}
	if s.Scheduler == "" {
		s.Scheduler = netsim.SchedWheel.Name()
	}
	if s.XTraffic == "" {
		s.XTraffic = netsim.XTrafficLazy.Name()
	}
	return s
}

// FieldError locates one invalid spec field for structured API errors.
type FieldError struct {
	Field string `json:"field"` // JSON field name, e.g. "scenario"
	Msg   string `json:"error"`
}

// ValidationError aggregates every invalid field of a spec, so an API
// client sees all problems in one round trip.
type ValidationError struct {
	Fields []FieldError `json:"fields"`
}

func (e *ValidationError) Error() string {
	parts := make([]string, len(e.Fields))
	for i, f := range e.Fields {
		parts[i] = f.Field + ": " + f.Msg
	}
	return "campaign: invalid spec: " + strings.Join(parts, "; ")
}

// Validate checks the spec's vocabulary and ranges. It returns nil or a
// *ValidationError naming every offending field. Defaultable zero
// values are always valid (Normalized gives them their meaning).
func (s Spec) Validate() error {
	var errs []FieldError
	add := func(field, format string, args ...any) {
		errs = append(errs, FieldError{Field: field, Msg: fmt.Sprintf(format, args...)})
	}
	if s.Version != 0 && s.Version != SpecVersion {
		add("spec", "unknown spec version %d (this build speaks %d)", s.Version, SpecVersion)
	}
	switch s.Scale {
	case "", "small", "paper":
	default:
		add("scale", "unknown scale %q: want small or paper", s.Scale)
	}
	if err := ApplyScenario(&topology.Config{}, s.Scenario); err != nil {
		add("scenario", "unknown scenario %q: want one of %s", s.Scenario, strings.Join(Scenarios(), ", "))
	}
	if s.Traces < 0 {
		add("traces", "must not be negative (0 selects the paper plan)")
	}
	if s.TracePlan != nil {
		known := make(map[string]bool, len(topology.VantageNames()))
		for _, name := range topology.VantageNames() {
			known[name] = true
		}
		names := make([]string, 0, len(s.TracePlan))
		for name := range s.TracePlan {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if !known[name] {
				add("trace_plan", "unknown vantage %q", name)
			} else if s.TracePlan[name] < 0 {
				add("trace_plan", "vantage %q: negative trace count %d", name, s.TracePlan[name])
			}
		}
	}
	if s.Batch2Fraction < 0 || s.Batch2Fraction > 1 {
		add("batch2_fraction", "must be in [0, 1], got %v", s.Batch2Fraction)
	}
	if s.DiscoveryRounds < 0 {
		add("discovery_rounds", "must not be negative")
	}
	if s.Stride < 0 {
		add("stride", "must not be negative (0 disables traceroutes)")
	}
	switch s.Execution {
	case "", ExecutionLocal, ExecutionDistributed:
	default:
		add("execution", "unknown execution strategy %q: want local or distributed", s.Execution)
	}
	if s.Workers < 0 {
		add("workers", "must not be negative (0 means GOMAXPROCS)")
	}
	if s.SlicesPerVantage < 0 {
		add("slices_per_vantage", "must not be negative")
	}
	if _, ok := netsim.SchedulerByName(s.Scheduler); !ok {
		add("scheduler", "unknown scheduler %q: want wheel or heap", s.Scheduler)
	}
	if _, ok := netsim.XTrafficModeByName(s.XTraffic); !ok {
		add("xtraffic", "unknown cross-traffic drive %q: want lazy or events", s.XTraffic)
	}
	if len(errs) > 0 {
		return &ValidationError{Fields: errs}
	}
	return nil
}

// Canonical returns the spec's canonical JSON encoding: normalized
// (every default explicit), fixed field order, trace-plan keys sorted.
// Every submitted spelling of the same campaign yields the same bytes.
// Invalid specs have no canonical form.
func (s Spec) Canonical() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(s.Normalized())
}

// CacheKey returns the content address of the spec's result: the hex
// SHA-256 of the canonical bytes with the execution-shape knobs
// (workers, slices, scheduler, cross-traffic drive) reset to their
// defaults. Those knobs are excluded because the merged dataset is
// proven byte-identical across all of them — the determinism grid that
// cmd/determinism checks in CI — so a campaign re-submitted with a
// different worker count must hit the cache, not re-simulate.
func (s Spec) CacheKey() (string, error) {
	s = s.Normalized()
	s.Execution = ExecutionLocal
	s.Workers = 0
	s.SlicesPerVantage = 1
	s.Scheduler = netsim.SchedWheel.Name()
	s.XTraffic = netsim.XTrafficLazy.Name()
	b, err := s.Canonical()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", sha256.Sum256(b)), nil
}

// Config derives the executable campaign configuration from the spec:
// normalize, validate, then map onto Config with the engine's standard
// traceroute parameters. Programmatic knobs Spec cannot express
// (Topology overrides, ShardHook) are left zero for the caller.
func (s Spec) Config() (Config, error) {
	if err := s.Validate(); err != nil {
		return Config{}, err
	}
	s = s.Normalized()
	var plan map[string]int
	if s.TracePlan != nil {
		plan = make(map[string]int, len(s.TracePlan))
		for k, v := range s.TracePlan {
			plan[k] = v
		}
	}
	return Config{
		Scale:            s.Scale,
		Scenario:         s.Scenario,
		TracePlan:        plan,
		Traces:           s.Traces,
		Batch2Fraction:   s.Batch2Fraction,
		Discover:         s.Discover,
		DiscoveryRounds:  s.DiscoveryRounds,
		Stride:           s.Stride,
		Traceroute:       traceroute.Config{ProbesPerHop: 1, StopAfterSilent: 2},
		Seed:             s.Seed,
		Workers:          s.Workers,
		SlicesPerVantage: s.SlicesPerVantage,
		Scheduler:        s.Scheduler,
		XTraffic:         s.XTraffic,
	}, nil
}

// ParseSpec decodes a submitted JSON spec strictly: unknown fields are
// a field-level error (a typo'd knob must not silently run the default
// campaign), and the result is validated. The returned spec is NOT
// normalized — callers that need canonical form use Canonical or
// CacheKey.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		if f, ok := strings.CutPrefix(err.Error(), "json: unknown field "); ok {
			return Spec{}, &ValidationError{Fields: []FieldError{
				{Field: strings.Trim(f, "\""), Msg: "unknown field"},
			}}
		}
		return Spec{}, fmt.Errorf("campaign: parse spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("campaign: parse spec: trailing data after the spec object")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// SpecFromEnv builds a Spec by layering the REPRO_* environment knobs
// over DefaultSpec:
//
//	REPRO_SCALE=small|paper    world size             (default paper)
//	REPRO_SCENARIO=name        congestion scenario    (default uncongested; see Scenarios)
//	REPRO_TRACES=N|paper       traces per vantage     (default 6; "paper" = the full 210-trace plan)
//	REPRO_STRIDE=N             traceroute sampling    (default 3: every 3rd server)
//	REPRO_SEED=N               campaign seed          (default 2015)
//	REPRO_WORKERS=N            parallel shard workers (default GOMAXPROCS)
//	REPRO_SLICES=N             sub-shards per vantage (default 1)
//	REPRO_SCHED=wheel|heap     simulator scheduler    (default wheel)
//	REPRO_XTRAFFIC=lazy|events cross-traffic drive    (default lazy)
//
// Malformed values are an error, not a silent fallback: these knobs
// select entire measurement campaigns, and a typo'd REPRO_TRACES=1O
// quietly running the default plan would waste a paper-scale run.
func SpecFromEnv() (Spec, error) {
	s := DefaultSpec()
	if err := s.applyEnv(os.Getenv); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// applyEnv overlays the REPRO_* knobs (read through getenv; empty means
// unset) onto the spec in place.
func (s *Spec) applyEnv(getenv func(string) string) error {
	if v := getenv("REPRO_SCALE"); v != "" {
		if v != "small" && v != "paper" {
			return fmt.Errorf("campaign: REPRO_SCALE=%q: want small or paper", v)
		}
		s.Scale = v
	}
	if v := getenv("REPRO_SCENARIO"); v != "" {
		if err := ApplyScenario(&topology.Config{}, v); err != nil {
			return fmt.Errorf("REPRO_SCENARIO: %w", err)
		}
		s.Scenario = v
	}
	if v := getenv("REPRO_SCHED"); v != "" {
		if _, ok := netsim.SchedulerByName(v); !ok {
			return fmt.Errorf("campaign: REPRO_SCHED=%q: want wheel or heap", v)
		}
		s.Scheduler = v
	}
	if v := getenv("REPRO_XTRAFFIC"); v != "" {
		if _, ok := netsim.XTrafficModeByName(v); !ok {
			return fmt.Errorf("campaign: REPRO_XTRAFFIC=%q: want lazy or events", v)
		}
		s.XTraffic = v
	}
	var err error
	if s.Seed, err = envInt64(getenv, "REPRO_SEED", s.Seed); err != nil {
		return err
	}
	envCount := func(key string, def int) (int, error) {
		n, err := envInt64(getenv, key, int64(def))
		if err != nil {
			return 0, err
		}
		if n < 0 {
			return 0, fmt.Errorf("campaign: %s=%d: must not be negative", key, n)
		}
		return int(n), nil
	}
	if s.Stride, err = envCount("REPRO_STRIDE", s.Stride); err != nil {
		return err
	}
	if s.Workers, err = envCount("REPRO_WORKERS", s.Workers); err != nil {
		return err
	}
	if s.SlicesPerVantage, err = envCount("REPRO_SLICES", s.SlicesPerVantage); err != nil {
		return err
	}
	switch v := getenv("REPRO_TRACES"); v {
	case "":
	case "paper":
		// The "paper" sentinel (Traces=0) selects the full 210-trace
		// plan; every other value must be a positive count so a stray
		// REPRO_TRACES=0 cannot silently launch it.
		s.Traces = 0
	default:
		if s.Traces, err = envCount("REPRO_TRACES", s.Traces); err != nil {
			return err
		}
		if s.Traces < 1 {
			return fmt.Errorf("campaign: REPRO_TRACES=%q: want a count ≥ 1 or \"paper\"", v)
		}
	}
	return nil
}

func envInt64(getenv func(string) string, key string, def int64) (int64, error) {
	v := getenv(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("campaign: %s=%q: not an integer", key, v)
	}
	return n, nil
}
