package campaign

import (
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Metrics is the campaign engine's instrument set, built over a
// telemetry.Registry and attached to a run via Config.Metrics. All
// accounting is out-of-band by construction: the engine flushes a
// shard's counters after its simulator has finished — from the
// worker goroutine, never from inside the event loop — so attaching
// Metrics cannot move an event, consume a PRNG draw, or change a
// dataset byte. TestTelemetryOutOfBand pins that by byte-comparing
// instrumented and uninstrumented merged datasets.
//
// Metric families (Prometheus names; see DESIGN.md §12 for the naming
// scheme):
//
//	repro_campaign_shards_running            gauge    shards currently executing
//	repro_campaign_shards_completed_total    counter  shards finished, by result
//	repro_campaign_traces_completed_total    counter  traces merged into datasets
//	repro_campaign_shard_duration_seconds    histogram per-shard wall clock
//	repro_sim_events_total{sched}            counter  events executed, per scheduler
//	repro_sim_phantom_events_total           counter  phantom boundaries run as events
//	repro_sim_replayed_boundaries_total      counter  boundaries replayed lazily
//	repro_sim_wheel_cascades_total           counter  timing-wheel slot cascades
//	repro_sim_wheel_register_hits_total      counter  singleton-register fast pops
//	repro_aqm_enqueued_total{discipline}     counter  packets admitted (incl. phantoms)
//	repro_aqm_dequeued_total{discipline}     counter  packets handed to transmitters
//	repro_aqm_ce_marked_total{discipline}    counter  congestion actions resolved by CE mark
//	repro_aqm_dropped_total{discipline,cause} counter drops, cause ∈ {not-ect, tail}
//	repro_aqm_backlog_packets{discipline}    gauge    last sampled backlog (packets)
//	repro_aqm_backlog_avg_packets{discipline} gauge   mean backlog an arrival observed
//
// One Metrics may be shared by many concurrent campaigns (the control
// plane attaches the server-wide set to every job): every instrument
// write is atomic, and per-shard flushes are deltas over fresh shard
// worlds, so concurrent runs simply sum.
type Metrics struct {
	reg *telemetry.Registry

	shardsRunning *telemetry.Gauge
	shardsDone    *telemetry.Counter
	shardsFailed  *telemetry.Counter
	tracesDone    *telemetry.Counter
	shardSeconds  *telemetry.Histogram

	phantomEvents *telemetry.Counter
	replayed      *telemetry.Counter
	cascades      *telemetry.Counter
	registerHits  *telemetry.Counter
}

// NewMetrics registers the campaign instrument set on reg and returns
// the handle to attach via Config.Metrics. Registration is idempotent,
// so multiple NewMetrics on one registry share instruments.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	m := &Metrics{
		reg: reg,
		shardsRunning: reg.Gauge("repro_campaign_shards_running",
			"Shards currently executing across all campaigns."),
		shardsDone: reg.Counter("repro_campaign_shards_completed_total",
			"Shards completed.", telemetry.Label{Name: "result", Value: "ok"}),
		shardsFailed: reg.Counter("repro_campaign_shards_completed_total",
			"Shards completed.", telemetry.Label{Name: "result", Value: "error"}),
		tracesDone: reg.Counter("repro_campaign_traces_completed_total",
			"Traces completed and merged into datasets."),
		shardSeconds: reg.Histogram("repro_campaign_shard_duration_seconds",
			"Per-shard wall-clock execution time.", telemetry.DurationBuckets()),
		phantomEvents: reg.Counter("repro_sim_phantom_events_total",
			"Phantom cross-traffic boundaries dispatched as scheduler events."),
		replayed: reg.Counter("repro_sim_replayed_boundaries_total",
			"Phantom cross-traffic boundaries replayed arithmetically (lazy drive)."),
		cascades: reg.Counter("repro_sim_wheel_cascades_total",
			"Timing-wheel higher-level slots cascaded into finer levels."),
		registerHits: reg.Counter("repro_sim_wheel_register_hits_total",
			"Timing-wheel pops served from the singleton register (sparse fast path)."),
	}
	// Pre-register the known vocabularies so a scrape shows the full
	// surface (as zeros) before the first congested shard completes.
	for _, sched := range []string{"wheel", "heap"} {
		m.eventsCounter(sched)
	}
	for _, d := range []string{"droptail", "red", "codel"} {
		m.aqmCounters(d)
	}
	return m
}

// eventsCounter returns the executed-events counter for a scheduler.
func (m *Metrics) eventsCounter(sched string) *telemetry.Counter {
	return m.reg.Counter("repro_sim_events_total",
		"Simulator events executed, by scheduler.",
		telemetry.Label{Name: "sched", Value: sched})
}

// aqmCounters returns one discipline's instrument tuple, registering
// on first use (custom disciplines appear as soon as a shard using
// them completes).
func (m *Metrics) aqmCounters(discipline string) (enq, deq, ce, dropNotECT, dropTail *telemetry.Counter, backlog, avgBacklog *telemetry.Gauge) {
	lab := telemetry.Label{Name: "discipline", Value: discipline}
	enq = m.reg.Counter("repro_aqm_enqueued_total",
		"Packets admitted by AQM queues, phantoms included.", lab)
	deq = m.reg.Counter("repro_aqm_dequeued_total",
		"Packets handed to bottleneck transmitters.", lab)
	ce = m.reg.Counter("repro_aqm_ce_marked_total",
		"Congestion actions resolved by CE-marking an ECT packet.", lab)
	dropNotECT = m.reg.Counter("repro_aqm_dropped_total",
		"Packets dropped by AQM queues, by cause.", lab,
		telemetry.Label{Name: "cause", Value: "not-ect"})
	dropTail = m.reg.Counter("repro_aqm_dropped_total",
		"Packets dropped by AQM queues, by cause.", lab,
		telemetry.Label{Name: "cause", Value: "tail"})
	backlog = m.reg.Gauge("repro_aqm_backlog_packets",
		"Backlog (packets) at the last shard-completion sample.", lab)
	avgBacklog = m.reg.Gauge("repro_aqm_backlog_avg_packets",
		"Mean backlog an arriving packet observed, last completed shard.", lab)
	return
}

// shardStarted is the engine-side hook: a worker picked up a shard.
func (m *Metrics) shardStarted() {
	if m == nil {
		return
	}
	m.shardsRunning.Add(1)
}

// shardFailed accounts a shard whose simulation errored.
func (m *Metrics) shardFailed() {
	if m == nil {
		return
	}
	m.shardsRunning.Add(-1)
	m.shardsFailed.Inc()
}

// shardFinished flushes one completed shard: its execution stats and
// its world's AQM queue ground truth. The shard's simulator has
// stopped, so every read here is of quiescent state.
func (m *Metrics) shardFinished(st ShardStats, w *topology.World, sched string) {
	if m == nil {
		return
	}
	m.shardsRunning.Add(-1)
	m.shardsDone.Inc()
	m.tracesDone.Add(uint64(st.Traces))
	m.shardSeconds.Observe(st.Elapsed.Seconds())
	m.eventsCounter(sched).Add(st.Events)
	m.phantomEvents.Add(st.PhantomEvents)
	m.replayed.Add(st.ReplayedBoundaries)
	m.cascades.Add(st.WheelCascades)
	m.registerHits.Add(st.WheelRegisterHits)
	for _, bn := range w.Bottlenecks {
		q := bn.Queue
		qs := q.Stats()
		enq, deq, ce, dropNotECT, dropTail, backlog, avgBacklog := m.aqmCounters(q.Name())
		enq.Add(qs.Enqueued)
		deq.Add(qs.Dequeued)
		ce.Add(qs.CEMarked)
		dropNotECT.Add(qs.NotECTDropped)
		dropTail.Add(qs.TailDropped)
		backlog.Set(float64(q.Len()))
		avgBacklog.Set(qs.AvgBacklog())
	}
}
