package campaign

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/topology"
)

// TestSpecCanonicalIdentical: every spelling of the same campaign —
// zero-valued defaults, explicit defaults, or a JSON body with fields
// in any order — must canonicalize to identical bytes.
func TestSpecCanonicalIdentical(t *testing.T) {
	implicit := Spec{Scale: "small", Traces: 2, Seed: 7}
	explicit := Spec{
		Version:          SpecVersion,
		Scale:            "small",
		Scenario:         ScenarioUncongested,
		Traces:           2,
		Batch2Fraction:   0.5,
		DiscoveryRounds:  50,
		Seed:             7,
		SlicesPerVantage: 1,
		Scheduler:        "wheel",
		XTraffic:         "lazy",
	}
	a, err := implicit.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := explicit.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("canonical forms differ:\n  implicit: %s\n  explicit: %s", a, b)
	}

	// A submitted JSON body with shuffled field order parses to the
	// same canonical bytes.
	parsed, err := ParseSpec([]byte(`{"seed": 7, "traces": 2, "scale": "small", "spec": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	c, err := parsed.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(c) {
		t.Fatalf("parsed canonical differs:\n  struct: %s\n  parsed: %s", a, c)
	}
}

// TestSpecCanonicalRoundTrip: canonical bytes decode back to the
// normalized spec, and re-canonicalize to the same bytes (idempotence).
func TestSpecCanonicalRoundTrip(t *testing.T) {
	s := Spec{
		Scale:    "small",
		Scenario: ScenarioCongestedEdge,
		TracePlan: map[string]int{
			"U. Glasgow wired": 3,
			"Perkins home":     1,
		},
		Seed:     42,
		Discover: true,
		Stride:   2,
	}
	b1, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := back.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("canonical not idempotent:\n  first:  %s\n  second: %s", b1, b2)
	}
}

// TestSpecCacheKeyIgnoresExecutionShape: knobs the determinism grid
// proves irrelevant to the merged bytes (workers, slices, scheduler,
// cross-traffic drive) must not change the cache key; semantic knobs
// must.
func TestSpecCacheKeyIgnoresExecutionShape(t *testing.T) {
	base := Spec{Scale: "small", Traces: 2, Seed: 7}
	ref, err := base.CacheKey()
	if err != nil {
		t.Fatal(err)
	}

	same := []Spec{
		{Scale: "small", Traces: 2, Seed: 7, Workers: 13},
		{Scale: "small", Traces: 2, Seed: 7, SlicesPerVantage: 8},
		{Scale: "small", Traces: 2, Seed: 7, Scheduler: "heap"},
		{Scale: "small", Traces: 2, Seed: 7, XTraffic: "events"},
	}
	for _, s := range same {
		k, err := s.CacheKey()
		if err != nil {
			t.Fatal(err)
		}
		if k != ref {
			t.Errorf("execution-shape knob changed the cache key: %+v", s)
		}
	}

	different := []Spec{
		{Scale: "small", Traces: 2, Seed: 8},
		{Scale: "small", Traces: 3, Seed: 7},
		{Scale: "paper", Traces: 2, Seed: 7},
		{Scale: "small", Traces: 2, Seed: 7, Scenario: ScenarioCongestedEdge},
		{Scale: "small", Traces: 2, Seed: 7, Discover: true},
		{Scale: "small", Traces: 2, Seed: 7, Stride: 1},
	}
	for _, s := range different {
		k, err := s.CacheKey()
		if err != nil {
			t.Fatal(err)
		}
		if k == ref {
			t.Errorf("semantic knob did not change the cache key: %+v", s)
		}
	}
}

// TestSpecValidateFieldErrors: every invalid field is reported, with
// its JSON name, in one ValidationError.
func TestSpecValidateFieldErrors(t *testing.T) {
	s := Spec{
		Version:          3,
		Scale:            "medium",
		Scenario:         "congested",
		Traces:           -1,
		Batch2Fraction:   1.5,
		Stride:           -2,
		Workers:          -4,
		SlicesPerVantage: -1,
		Scheduler:        "fibheap",
		XTraffic:         "fluid",
		TracePlan:        map[string]int{"Atlantis": 3},
	}
	err := s.Validate()
	if err == nil {
		t.Fatal("want validation error")
	}
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("want *ValidationError, got %T: %v", err, err)
	}
	want := []string{"spec", "scale", "scenario", "traces", "batch2_fraction",
		"stride", "workers", "slices_per_vantage", "scheduler", "xtraffic", "trace_plan"}
	got := map[string]bool{}
	for _, f := range verr.Fields {
		got[f.Field] = true
	}
	for _, field := range want {
		if !got[field] {
			t.Errorf("field %q not reported; got %v", field, verr.Fields)
		}
	}
}

// TestParseSpecStrict: unknown fields are a field-level error, not a
// silently ignored knob.
func TestParseSpecStrict(t *testing.T) {
	_, err := ParseSpec([]byte(`{"scale": "small", "tracez": 5}`))
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("want *ValidationError for unknown field, got %v", err)
	}
	if len(verr.Fields) != 1 || verr.Fields[0].Field != "tracez" {
		t.Fatalf("want unknown-field error naming tracez, got %v", verr.Fields)
	}
	if _, err := ParseSpec([]byte(`{"scale": `)); err == nil {
		t.Fatal("want error for truncated JSON")
	}
	if _, err := ParseSpec([]byte(`{}{}`)); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Fatalf("want trailing-data error, got %v", err)
	}
}

// TestSpecConfigDerivation: Config derives field-for-field, invalid
// specs refuse to derive, and the spec's trace plan is copied, not
// aliased.
func TestSpecConfigDerivation(t *testing.T) {
	s := Spec{
		Scale:            "small",
		Scenario:         ScenarioCongestedTransit,
		Traces:           4,
		Seed:             -99,
		Workers:          3,
		SlicesPerVantage: 2,
		Scheduler:        "heap",
		XTraffic:         "events",
		Stride:           5,
		Discover:         true,
	}
	cfg, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scale != "small" || cfg.Scenario != ScenarioCongestedTransit ||
		cfg.Traces != 4 || cfg.Seed != -99 || cfg.Workers != 3 ||
		cfg.SlicesPerVantage != 2 || cfg.Scheduler != "heap" ||
		cfg.XTraffic != "events" || cfg.Stride != 5 || !cfg.Discover {
		t.Fatalf("Config = %+v", cfg)
	}
	if cfg.Traceroute.ProbesPerHop != 1 || cfg.Traceroute.StopAfterSilent != 2 {
		t.Fatalf("Traceroute defaults = %+v", cfg.Traceroute)
	}

	if _, err := (Spec{Scale: "galactic"}).Config(); err == nil {
		t.Fatal("invalid spec must not derive a Config")
	}

	p := Spec{Scale: "small", TracePlan: map[string]int{"Perkins home": 2}}
	cfg, err = p.Config()
	if err != nil {
		t.Fatal(err)
	}
	cfg.TracePlan["Perkins home"] = 99
	if p.TracePlan["Perkins home"] != 2 {
		t.Fatal("Config aliased the spec's trace plan")
	}
}

// TestConfigShards: the exported shard plan matches the engine's
// canonical partition.
func TestConfigShards(t *testing.T) {
	cfg := Config{Scale: "small", Traces: 3, SlicesPerVantage: 2}
	shards := cfg.Shards()
	if len(shards) == 0 {
		t.Fatal("no shards planned")
	}
	total := 0
	sweeps := 0
	for i, sh := range shards {
		total += sh.Traces
		if sh.Sweep {
			sweeps++
			if sh.Slice != 0 {
				t.Errorf("shard %d: sweep on slice %d", i, sh.Slice)
			}
		}
		if i > 0 {
			prev := shards[i-1]
			if sh.Shard < prev.Shard || (sh.Shard == prev.Shard && sh.Slice <= prev.Slice) {
				t.Errorf("shards out of canonical order at %d: %+v after %+v", i, sh, prev)
			}
		}
	}
	vantages := len(topology.VantageNames())
	if total != 3*vantages {
		t.Errorf("planned traces = %d, want %d", total, 3*vantages)
	}
	if sweeps != vantages {
		t.Errorf("sweep slices = %d, want one per vantage (%d)", sweeps, vantages)
	}
}
