package campaign

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// This file is the one flag surface shared by every campaign-driving
// command (ecnspider, determinism, benchreport, reprod). Each tool used
// to register and interpret its own -scenario/-workers/-slices flags;
// consolidating them here makes the vocabulary, defaults and precedence
// identical everywhere:
//
//	explicit flags  >  REPRO_* environment  >  the tool's base Spec
//
// Malformed environment values are always an error, even when a flag
// overrides the same knob — a typo'd REPRO_* must never be silently
// masked.

// FlagSource says where a resolved knob's value came from.
type FlagSource int

const (
	// SourceDefault: neither flag nor environment set the knob; the
	// tool's base Spec value stands.
	SourceDefault FlagSource = iota
	// SourceEnv: the knob's REPRO_* environment variable set it.
	SourceEnv
	// SourceFlag: the knob's command-line flag set it (highest
	// precedence).
	SourceFlag
)

// envVarFor maps a flag name to its REPRO_* environment variable; knobs
// without one (e.g. -discover) return "".
var envVarFor = map[string]string{
	"seed":     "REPRO_SEED",
	"scale":    "REPRO_SCALE",
	"scenario": "REPRO_SCENARIO",
	"traces":   "REPRO_TRACES",
	"stride":   "REPRO_STRIDE",
	"workers":  "REPRO_WORKERS",
	"slices":   "REPRO_SLICES",
	"sched":    "REPRO_SCHED",
	"xtraffic": "REPRO_XTRAFFIC",
}

// GridDefaults are the axis values a grid-mode tool (cmd/determinism)
// sweeps when neither flag nor environment narrows an axis.
type GridDefaults struct {
	Scenarios  []string
	Schedulers []string
	XTraffics  []string
	Workers    []int
	Slices     []int
}

// FlagOptions configures BindSpecFlags for one tool.
type FlagOptions struct {
	// Base is the tool's default campaign (lowest precedence layer).
	Base Spec
	// Grid, when non-nil, registers -scenario/-sched/-xtraffic/
	// -workers/-slices as comma-separated list flags sweeping a grid
	// (ResolveGrid) instead of single values (Resolve).
	Grid *GridDefaults
}

// SpecFlags binds the shared campaign knobs onto a FlagSet and resolves
// them — after Parse — into a Spec (or a grid of Specs) with the
// flags-over-env-over-base precedence.
type SpecFlags struct {
	fs   *flag.FlagSet
	base Spec
	grid *GridDefaults

	seed     int64
	scale    string
	scenario string
	sched    string
	xtraffic string
	traces   int
	stride   int
	discover bool
	workers  string
	slices   string
}

// BindSpecFlags registers the shared campaign flags on fs. Call one of
// Resolve/ResolveGrid after fs.Parse.
func BindSpecFlags(fs *flag.FlagSet, opts FlagOptions) *SpecFlags {
	f := &SpecFlags{fs: fs, base: opts.Base, grid: opts.Grid}
	b := f.base
	fs.Int64Var(&f.seed, "seed", b.Seed, "campaign seed (same seed → identical dataset; env REPRO_SEED)")
	fs.StringVar(&f.scale, "scale", b.Scale, "world scale: paper (2500 servers) or small (120; env REPRO_SCALE)")
	fs.IntVar(&f.traces, "traces", b.Traces, "traces per vantage; 0 = the paper 210-trace plan (env REPRO_TRACES)")
	fs.IntVar(&f.stride, "stride", b.Stride, "traceroute sampling: every Nth server, 0 disables (env REPRO_STRIDE)")
	fs.BoolVar(&f.discover, "discover", b.Discover, "enumerate servers via pool DNS before probing")
	if f.grid != nil {
		fs.StringVar(&f.scenario, "scenario", strings.Join(f.grid.Scenarios, ","),
			"comma-separated congestion scenarios (env REPRO_SCENARIO narrows to one)")
		fs.StringVar(&f.sched, "sched", strings.Join(f.grid.Schedulers, ","),
			"comma-separated simulator schedulers: wheel, heap (env REPRO_SCHED)")
		fs.StringVar(&f.xtraffic, "xtraffic", strings.Join(f.grid.XTraffics, ","),
			"comma-separated cross-traffic drives: lazy, events (env REPRO_XTRAFFIC)")
		fs.StringVar(&f.workers, "workers", joinInts(f.grid.Workers),
			"comma-separated parallel shard worker counts (env REPRO_WORKERS)")
		fs.StringVar(&f.slices, "slices", joinInts(f.grid.Slices),
			"comma-separated sub-vantage slice counts (env REPRO_SLICES)")
	} else {
		fs.StringVar(&f.scenario, "scenario", b.Scenario,
			"congestion scenario: "+strings.Join(Scenarios(), ", ")+" (env REPRO_SCENARIO)")
		fs.StringVar(&f.sched, "sched", b.Scheduler, "simulator scheduler: wheel (default) or heap (env REPRO_SCHED)")
		fs.StringVar(&f.xtraffic, "xtraffic", b.XTraffic, "cross-traffic drive: lazy (default) or events (env REPRO_XTRAFFIC)")
		fs.StringVar(&f.workers, "workers", strconv.Itoa(b.Workers), "parallel shard workers, 0 = GOMAXPROCS (env REPRO_WORKERS)")
		fs.StringVar(&f.slices, "slices", strconv.Itoa(b.SlicesPerVantage), "sub-vantage slices per vantage (env REPRO_SLICES)")
	}
	return f
}

func joinInts(ns []int) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, ",")
}

// visited reports which flags the command line explicitly set.
func (f *SpecFlags) visited() map[string]bool {
	set := map[string]bool{}
	f.fs.Visit(func(fl *flag.Flag) { set[fl.Name] = true })
	return set
}

// Source reports where the named knob's resolved value came from:
// flag, environment, or the tool's base default.
func (f *SpecFlags) Source(name string) FlagSource {
	if f.visited()[name] {
		return SourceFlag
	}
	if env := envVarFor[name]; env != "" && os.Getenv(env) != "" {
		return SourceEnv
	}
	return SourceDefault
}

// Resolve layers the environment and the explicitly-set flags over the
// base Spec and validates the result. List values in single-valued
// tools are an error.
func (f *SpecFlags) Resolve() (Spec, error) {
	s := f.base
	if err := s.applyEnv(os.Getenv); err != nil {
		return Spec{}, err
	}
	set := f.visited()
	if set["seed"] {
		s.Seed = f.seed
	}
	if set["scale"] {
		s.Scale = f.scale
	}
	if set["scenario"] {
		s.Scenario = f.scenario
	}
	if set["sched"] {
		s.Scheduler = f.sched
	}
	if set["xtraffic"] {
		s.XTraffic = f.xtraffic
	}
	if set["traces"] {
		s.Traces = f.traces
	}
	if set["stride"] {
		s.Stride = f.stride
	}
	if set["discover"] {
		s.Discover = f.discover
	}
	var err error
	if set["workers"] {
		if s.Workers, err = singleCount("workers", f.workers); err != nil {
			return Spec{}, err
		}
	}
	if set["slices"] {
		if s.SlicesPerVantage, err = singleCount("slices", f.slices); err != nil {
			return Spec{}, err
		}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

func singleCount(name, v string) (int, error) {
	if strings.Contains(v, ",") {
		return 0, fmt.Errorf("flag -%s=%q: this command takes a single value, not a list", name, v)
	}
	n, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || n < 0 {
		return 0, fmt.Errorf("flag -%s=%q: want a non-negative integer", name, v)
	}
	return n, nil
}

// ResolveGrid resolves the base knobs like Resolve, then expands the
// grid axes — scenarios × cross-traffic drives × schedulers × slices ×
// workers, in cmd/determinism's canonical nesting order — into one Spec
// per cell. Axis values come from the flag list when set, else the
// knob's REPRO_* variable (narrowing the axis to one value), else the
// tool's GridDefaults. Every cell is validated.
func (f *SpecFlags) ResolveGrid() ([]Spec, error) {
	if f.grid == nil {
		return nil, fmt.Errorf("campaign: ResolveGrid on a single-valued flag set")
	}
	base := f.base
	if err := base.applyEnv(os.Getenv); err != nil {
		return nil, err
	}
	set := f.visited()
	if set["seed"] {
		base.Seed = f.seed
	}
	if set["scale"] {
		base.Scale = f.scale
	}
	if set["traces"] {
		base.Traces = f.traces
	}
	if set["stride"] {
		base.Stride = f.stride
	}
	if set["discover"] {
		base.Discover = f.discover
	}

	axis := func(name, flagVal string, envSet bool, envVal string, def []string) []string {
		if set[name] {
			return splitList(flagVal)
		}
		if envSet {
			return []string{envVal}
		}
		return def
	}
	scenarios := axis("scenario", f.scenario, os.Getenv("REPRO_SCENARIO") != "", base.Scenario, f.grid.Scenarios)
	xtraffics := axis("xtraffic", f.xtraffic, os.Getenv("REPRO_XTRAFFIC") != "", base.XTraffic, f.grid.XTraffics)
	scheds := axis("sched", f.sched, os.Getenv("REPRO_SCHED") != "", base.Scheduler, f.grid.Schedulers)

	intAxis := func(name, flagVal string, envSet bool, envVal int, def []int) ([]int, error) {
		if set[name] {
			var ns []int
			for _, part := range splitList(flagVal) {
				n, err := strconv.Atoi(part)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("flag -%s: bad count %q", name, part)
				}
				ns = append(ns, n)
			}
			if len(ns) == 0 {
				return nil, fmt.Errorf("flag -%s: need at least one count", name)
			}
			return ns, nil
		}
		if envSet {
			return []int{envVal}, nil
		}
		return def, nil
	}
	workerCounts, err := intAxis("workers", f.workers, os.Getenv("REPRO_WORKERS") != "", base.Workers, f.grid.Workers)
	if err != nil {
		return nil, err
	}
	sliceCounts, err := intAxis("slices", f.slices, os.Getenv("REPRO_SLICES") != "", base.SlicesPerVantage, f.grid.Slices)
	if err != nil {
		return nil, err
	}

	var cells []Spec
	for _, scenario := range scenarios {
		for _, xtraffic := range xtraffics {
			for _, sched := range scheds {
				for _, sl := range sliceCounts {
					for _, w := range workerCounts {
						s := base
						s.Scenario = scenario
						s.XTraffic = xtraffic
						s.Scheduler = sched
						s.SlicesPerVantage = sl
						s.Workers = w
						if err := s.Validate(); err != nil {
							return nil, err
						}
						cells = append(cells, s)
					}
				}
			}
		}
	}
	return cells, nil
}

func splitList(v string) []string {
	var out []string
	for _, part := range strings.Split(v, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
