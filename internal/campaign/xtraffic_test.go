package campaign

import (
	"bytes"
	"testing"
)

// TestXTrafficDifferential is the lazy catch-up replay's end-to-end
// gate: for every scenario, the event-per-phantom-boundary oracle run
// must produce the byte-identical merged dataset that the lazy drive
// produces across the whole workers × slices grid — the phantom
// boundaries replay through the identical AQM decision sequence and
// PRNG draw order whether or not they are scheduler events.
func TestXTrafficDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run differential test in -short mode")
	}
	for _, scenario := range Scenarios() {
		// The oracle: one event-driven run per scenario.
		cfg := testConfig()
		cfg.Scenario = scenario
		cfg.XTraffic = "events"
		oracle := runOrFatal(t, cfg)
		ref := encode(t, oracle.Dataset)
		refObs := len(oracle.PathObs)

		for _, workers := range []int{1, 4, 13} {
			for _, slices := range []int{1, 2, 8} {
				cfg := testConfig()
				cfg.Scenario = scenario
				cfg.XTraffic = "lazy"
				cfg.Workers = workers
				cfg.SlicesPerVantage = slices
				res := runOrFatal(t, cfg)
				if !bytes.Equal(ref, encode(t, res.Dataset)) {
					t.Errorf("%s: lazy workers=%d slices=%d dataset differs from the events oracle",
						scenario, workers, slices)
				}
				if len(res.PathObs) != refObs {
					t.Errorf("%s: lazy workers=%d slices=%d: %d path observations, want %d",
						scenario, workers, slices, len(res.PathObs), refObs)
				}
				if len(res.Congestion) != len(oracle.Congestion) {
					t.Fatalf("%s: lazy workers=%d slices=%d: %d congestion samples, want %d",
						scenario, workers, slices, len(res.Congestion), len(oracle.Congestion))
				}
				for i := range oracle.Congestion {
					if oracle.Congestion[i] != res.Congestion[i] {
						t.Errorf("%s: lazy workers=%d slices=%d: congestion sample %d differs:\n%+v\n%+v",
							scenario, workers, slices, i, oracle.Congestion[i], res.Congestion[i])
					}
				}
			}
		}
	}
}

// TestXTrafficEventAccounting pins the boundary bookkeeping both drives
// share: the events drive executes every phantom boundary as an event
// and replays none, the lazy drive replays every one of those same
// boundaries and schedules none — and the two counts are equal, packet
// for packet.
func TestXTrafficEventAccounting(t *testing.T) {
	run := func(xtraffic string) *Result {
		cfg := testConfig()
		cfg.Scenario = ScenarioCongestedEdge
		cfg.Stride = 0 // traceroute sweep adds nothing to this check
		cfg.XTraffic = xtraffic
		return runOrFatal(t, cfg)
	}
	events := run("events")
	lazy := run("lazy")
	if events.PhantomEvents == 0 {
		t.Fatal("events drive saw no phantom boundaries on a congested scenario")
	}
	if events.ReplayedBoundaries != 0 {
		t.Errorf("events drive replayed %d boundaries, want 0", events.ReplayedBoundaries)
	}
	if lazy.PhantomEvents != 0 {
		t.Errorf("lazy drive ran %d phantom boundary events, want 0", lazy.PhantomEvents)
	}
	if lazy.ReplayedBoundaries != events.PhantomEvents {
		t.Errorf("lazy drive replayed %d boundaries, events drive executed %d — the same boundaries must flow through both",
			lazy.ReplayedBoundaries, events.PhantomEvents)
	}
	if saved := events.Events - lazy.Events; saved != events.PhantomEvents {
		t.Errorf("lazy drive saved %d events, want exactly the %d phantom boundaries", saved, events.PhantomEvents)
	}
}
