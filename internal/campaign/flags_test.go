package campaign

import (
	"flag"
	"strings"
	"testing"
)

// allReproKnobs clears every REPRO_* variable a test doesn't set, so
// the ambient environment cannot leak into precedence cases.
var allReproKnobs = []string{"REPRO_SCALE", "REPRO_SCENARIO", "REPRO_TRACES",
	"REPRO_STRIDE", "REPRO_SEED", "REPRO_WORKERS", "REPRO_SLICES", "REPRO_SCHED",
	"REPRO_XTRAFFIC"}

func setEnv(t *testing.T, env map[string]string) {
	t.Helper()
	for _, k := range allReproKnobs {
		t.Setenv(k, env[k]) // unset knobs become ""
	}
}

// TestSpecFlagsPrecedence is table-driven over the shared flag surface:
// explicit flags override REPRO_* environment values, which override
// the tool's base Spec — and a malformed environment value is an error
// even when a flag overrides the same knob.
func TestSpecFlagsPrecedence(t *testing.T) {
	base := DefaultSpec()
	base.Scale = "small"
	base.Traces = 2
	base.Stride = 0

	cases := []struct {
		name    string
		env     map[string]string
		args    []string
		wantErr string // substring; empty = success
		check   func(t *testing.T, s Spec, f *SpecFlags)
	}{
		{
			name: "base defaults stand",
			check: func(t *testing.T, s Spec, f *SpecFlags) {
				if s.Scale != "small" || s.Traces != 2 || s.Seed != 2015 ||
					s.Scenario != ScenarioUncongested || s.Stride != 0 {
					t.Fatalf("spec = %+v", s)
				}
				if f.Source("traces") != SourceDefault {
					t.Fatalf("Source(traces) = %v", f.Source("traces"))
				}
			},
		},
		{
			name: "env overrides base",
			env: map[string]string{"REPRO_SCENARIO": "congested-edge",
				"REPRO_TRACES": "5", "REPRO_WORKERS": "3", "REPRO_SCHED": "heap"},
			check: func(t *testing.T, s Spec, f *SpecFlags) {
				if s.Scenario != "congested-edge" || s.Traces != 5 ||
					s.Workers != 3 || s.Scheduler != "heap" {
					t.Fatalf("spec = %+v", s)
				}
				if f.Source("traces") != SourceEnv {
					t.Fatalf("Source(traces) = %v", f.Source("traces"))
				}
			},
		},
		{
			name: "flags override env",
			env: map[string]string{"REPRO_SCENARIO": "congested-edge",
				"REPRO_TRACES": "5", "REPRO_SLICES": "4", "REPRO_XTRAFFIC": "events"},
			args: []string{"-scenario", "congested-transit", "-traces", "7",
				"-slices", "2", "-xtraffic", "lazy", "-workers", "9", "-seed", "-1"},
			check: func(t *testing.T, s Spec, f *SpecFlags) {
				if s.Scenario != "congested-transit" || s.Traces != 7 ||
					s.SlicesPerVantage != 2 || s.XTraffic != "lazy" ||
					s.Workers != 9 || s.Seed != -1 {
					t.Fatalf("spec = %+v", s)
				}
				if f.Source("scenario") != SourceFlag || f.Source("sched") != SourceDefault {
					t.Fatalf("sources: scenario=%v sched=%v", f.Source("scenario"), f.Source("sched"))
				}
			},
		},
		{
			name: "flag repeating the env value still counts as flag",
			env:  map[string]string{"REPRO_WORKERS": "4"},
			args: []string{"-workers", "4"},
			check: func(t *testing.T, s Spec, f *SpecFlags) {
				if s.Workers != 4 || f.Source("workers") != SourceFlag {
					t.Fatalf("workers=%d source=%v", s.Workers, f.Source("workers"))
				}
			},
		},
		{
			name:    "malformed env is an error even when the flag overrides it",
			env:     map[string]string{"REPRO_TRACES": "1O"},
			args:    []string{"-traces", "7"},
			wantErr: "REPRO_TRACES",
		},
		{
			name:    "bad env scheduler",
			env:     map[string]string{"REPRO_SCHED": "fibheap"},
			wantErr: "REPRO_SCHED",
		},
		{
			name:    "list value rejected by single-valued tool",
			args:    []string{"-workers", "1,4,13"},
			wantErr: "single value",
		},
		{
			name:    "bad flag scenario caught by validation",
			args:    []string{"-scenario", "congested"},
			wantErr: "scenario",
		},
		{
			name:    "negative flag workers rejected",
			args:    []string{"-workers", "-2"},
			wantErr: "workers",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			setEnv(t, tc.env)
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			f := BindSpecFlags(fs, FlagOptions{Base: base})
			if err := fs.Parse(tc.args); err != nil {
				t.Fatal(err)
			}
			s, err := f.Resolve()
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("want error mentioning %q, got spec %+v", tc.wantErr, s)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not mention %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, s, f)
		})
	}
}

// TestSpecFlagsGrid covers cmd/determinism's list-valued mode: default
// axes sweep the GridDefaults, flags narrow or widen an axis, and a
// REPRO_* variable narrows its axis to one value.
func TestSpecFlagsGrid(t *testing.T) {
	grid := &GridDefaults{
		Scenarios:  Scenarios(),
		Schedulers: []string{"wheel", "heap"},
		XTraffics:  []string{"lazy", "events"},
		Workers:    []int{1, 4, 13},
		Slices:     []int{1, 2, 8},
	}
	base := DefaultSpec()
	base.Scale = "small"
	base.Traces = 2
	base.Stride = 0

	bind := func(t *testing.T, args []string) *SpecFlags {
		t.Helper()
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		f := BindSpecFlags(fs, FlagOptions{Base: base, Grid: grid})
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return f
	}

	t.Run("default grid is the full cross product", func(t *testing.T) {
		setEnv(t, nil)
		cells, err := bind(t, nil).ResolveGrid()
		if err != nil {
			t.Fatal(err)
		}
		want := 3 * 2 * 2 * 3 * 3
		if len(cells) != want {
			t.Fatalf("grid = %d cells, want %d", len(cells), want)
		}
		// Canonical nesting: scenario outermost, workers innermost.
		if cells[0].Workers != 1 || cells[1].Workers != 4 || cells[2].Workers != 13 {
			t.Fatalf("workers not innermost: %d,%d,%d",
				cells[0].Workers, cells[1].Workers, cells[2].Workers)
		}
		if cells[0].Scenario != cells[len(cells)/3-1].Scenario {
			t.Fatal("scenario not outermost")
		}
	})

	t.Run("flag narrows an axis", func(t *testing.T) {
		setEnv(t, nil)
		cells, err := bind(t, []string{"-scenario", "uncongested", "-workers", "1,2"}).ResolveGrid()
		if err != nil {
			t.Fatal(err)
		}
		if want := 1 * 2 * 2 * 3 * 2; len(cells) != want {
			t.Fatalf("grid = %d cells, want %d", len(cells), want)
		}
		for _, c := range cells {
			if c.Scenario != ScenarioUncongested {
				t.Fatalf("cell scenario = %q", c.Scenario)
			}
		}
	})

	t.Run("env narrows an axis to one value", func(t *testing.T) {
		setEnv(t, map[string]string{"REPRO_SCHED": "heap"})
		cells, err := bind(t, nil).ResolveGrid()
		if err != nil {
			t.Fatal(err)
		}
		if want := 3 * 2 * 1 * 3 * 3; len(cells) != want {
			t.Fatalf("grid = %d cells, want %d", len(cells), want)
		}
		for _, c := range cells {
			if c.Scheduler != "heap" {
				t.Fatalf("cell scheduler = %q", c.Scheduler)
			}
		}
	})

	t.Run("invalid axis value rejected", func(t *testing.T) {
		setEnv(t, nil)
		if _, err := bind(t, []string{"-sched", "wheel,fibheap"}).ResolveGrid(); err == nil {
			t.Fatal("want error for unknown scheduler in the grid")
		}
		if _, err := bind(t, []string{"-workers", "1,zero"}).ResolveGrid(); err == nil {
			t.Fatal("want error for malformed worker count")
		}
	})
}
