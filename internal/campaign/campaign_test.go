package campaign

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/topology"
	"repro/internal/traceroute"
)

// testConfig is a reduced sharded campaign: small world, two traces per
// vantage, a sparse traceroute sweep. Small enough to run three times in
// a unit test, large enough to cover every shard and both batches.
func testConfig() Config {
	return Config{
		Scale:      "small",
		Traces:     2,
		Stride:     12,
		Traceroute: traceroute.Config{ProbesPerHop: 1, StopAfterSilent: 2},
		Seed:       2015,
	}
}

func runOrFatal(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func encode(t *testing.T, d *dataset.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := dataset.Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRunBasicShape(t *testing.T) {
	res := runOrFatal(t, testConfig())
	nv := len(topology.VantageNames())
	if got, want := len(res.Dataset.Traces), 2*nv; got != want {
		t.Fatalf("merged traces = %d, want %d", got, want)
	}
	if got, want := len(res.Shards), nv; got != want {
		t.Fatalf("shards = %d, want %d", got, want)
	}
	if len(res.PathObs) == 0 {
		t.Error("no traceroute observations")
	}
	if len(res.Servers) != len(res.World.Servers) {
		t.Errorf("servers = %d, want %d", len(res.Servers), len(res.World.Servers))
	}

	// Traces are in canonical vantage order with campaign-wide indices.
	for i, tr := range res.Dataset.Traces {
		if tr.Index != i {
			t.Fatalf("trace %d has index %d", i, tr.Index)
		}
		if want := topology.VantageNames()[i/2]; tr.Vantage != want {
			t.Fatalf("trace %d from %q, want %q", i, tr.Vantage, want)
		}
	}
	// Each shard ran both batches (Batch2Fraction default 0.5 of 2).
	for i := 0; i+1 < len(res.Dataset.Traces); i += 2 {
		if res.Dataset.Traces[i].Batch != 1 || res.Dataset.Traces[i+1].Batch != 2 {
			t.Fatalf("traces %d,%d batches = %d,%d, want 1,2",
				i, i+1, res.Dataset.Traces[i].Batch, res.Dataset.Traces[i+1].Batch)
		}
	}
	// Per-shard accounting is coherent with the merge.
	var events uint64
	for _, s := range res.Shards {
		if s.Traces != 2 {
			t.Errorf("shard %d (%s) ran %d traces, want 2", s.Shard, s.Vantage, s.Traces)
		}
		events += s.Events
	}
	if events != res.Events {
		t.Errorf("events sum %d != total %d", events, res.Events)
	}
}

// TestIdenticalWorldsAcrossShards checks the engine's core invariant:
// every shard observes the same generated Internet, so ground truth
// (middlebox placement, server roles) is vantage-independent.
func TestIdenticalWorldsAcrossShards(t *testing.T) {
	cfg := testConfig()
	var mu sync.Mutex
	worlds := map[int]*topology.World{}
	cfg.ShardHook = func(shard int, vantage string, w *topology.World) {
		mu.Lock()
		worlds[shard] = w
		mu.Unlock()
	}
	runOrFatal(t, cfg)

	ref := worlds[0]
	if ref == nil {
		t.Fatal("shard 0 missing")
	}
	for shard, w := range worlds {
		if len(w.Servers) != len(ref.Servers) {
			t.Fatalf("shard %d has %d servers, ref has %d", shard, len(w.Servers), len(ref.Servers))
		}
		for i, s := range w.Servers {
			r := ref.Servers[i]
			if s.Addr != r.Addr || s.ECTUDPFirewalled != r.ECTUDPFirewalled ||
				s.NotECTFirewalled != r.NotECTFirewalled || s.Flaky != r.Flaky ||
				s.Web != r.Web || s.WebECN != r.WebECN || s.BrokenECE != r.BrokenECE {
				t.Fatalf("shard %d server %d ground truth diverges from shard 0", shard, i)
			}
		}
	}
}

// TestShardSeedsPairwiseDistinct checks the splitmix derivation: every
// (vantage, slice) shard seed, (vantage, trace) trace seed and sweep
// seed of one campaign is pairwise distinct, and none equals the raw
// campaign seed used for world generation.
func TestShardSeedsPairwiseDistinct(t *testing.T) {
	for _, campaignSeed := range []int64{0, 1, 2015, -7, 1 << 40} {
		seen := map[int64]string{}
		check := func(s int64, label string) {
			t.Helper()
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed %d: %s and %s share seed %d", campaignSeed, prev, label, s)
			}
			if s == campaignSeed {
				t.Fatalf("seed %d: %s equals the campaign seed", campaignSeed, label)
			}
			seen[s] = label
		}
		for vantage := 0; vantage < 13; vantage++ {
			for slice := 0; slice < 32; slice++ {
				check(ShardSeed(campaignSeed, vantage, slice), fmt.Sprintf("shard(%d,%d)", vantage, slice))
			}
			for k := 0; k < 32; k++ {
				check(TraceSeed(campaignSeed, vantage, k), fmt.Sprintf("trace(%d,%d)", vantage, k))
			}
			check(sweepSeed(campaignSeed, vantage), fmt.Sprintf("sweep(%d)", vantage))
		}
	}
}

func TestSameSeedReproduces(t *testing.T) {
	a := runOrFatal(t, testConfig())
	b := runOrFatal(t, testConfig())
	if !bytes.Equal(encode(t, a.Dataset), encode(t, b.Dataset)) {
		t.Error("same seed produced different datasets")
	}
	cfg := testConfig()
	cfg.Seed = 7
	c := runOrFatal(t, cfg)
	if bytes.Equal(encode(t, a.Dataset), encode(t, c.Dataset)) {
		t.Error("different seeds produced identical datasets")
	}
}

// TestFromEnv is table-driven over the REPRO_* knob surface: well-formed
// values land in the Config, malformed ones produce a descriptive error
// naming the offending variable instead of a silent default.
func TestFromEnv(t *testing.T) {
	allKnobs := []string{"REPRO_SCALE", "REPRO_SCENARIO", "REPRO_TRACES",
		"REPRO_STRIDE", "REPRO_SEED", "REPRO_WORKERS", "REPRO_SLICES", "REPRO_SCHED",
		"REPRO_XTRAFFIC"}
	cases := []struct {
		name    string
		env     map[string]string
		wantErr string // substring of the error; empty = success expected
		check   func(t *testing.T, cfg Config)
	}{
		{
			name: "defaults",
			check: func(t *testing.T, cfg Config) {
				// FromEnv derives the Config from the canonical Spec, so
				// defaults arrive explicit rather than as zero values.
				if cfg.Scale != "paper" || cfg.Scenario != ScenarioUncongested ||
					cfg.Traces != 6 || cfg.Stride != 3 || cfg.Seed != 2015 ||
					cfg.Workers != 0 || cfg.SlicesPerVantage != 1 ||
					cfg.Scheduler != "wheel" || cfg.XTraffic != "lazy" {
					t.Fatalf("defaults = %+v", cfg)
				}
			},
		},
		{
			name: "all set",
			env: map[string]string{"REPRO_SCALE": "small", "REPRO_TRACES": "4",
				"REPRO_STRIDE": "5", "REPRO_SEED": "-99", "REPRO_WORKERS": "3",
				"REPRO_SCENARIO": "congested-edge", "REPRO_SLICES": "4", "REPRO_SCHED": "heap",
				"REPRO_XTRAFFIC": "events"},
			check: func(t *testing.T, cfg Config) {
				if cfg.Scale != "small" || cfg.Traces != 4 || cfg.Stride != 5 ||
					cfg.Seed != -99 || cfg.Workers != 3 || cfg.Scenario != "congested-edge" ||
					cfg.SlicesPerVantage != 4 || cfg.Scheduler != "heap" || cfg.XTraffic != "events" {
					t.Fatalf("FromEnv = %+v", cfg)
				}
			},
		},
		{
			name: "paper trace plan sentinel",
			env:  map[string]string{"REPRO_TRACES": "paper"},
			check: func(t *testing.T, cfg Config) {
				if cfg.Traces != 0 {
					t.Fatalf("REPRO_TRACES=paper should select the paper plan, got Traces=%d", cfg.Traces)
				}
			},
		},
		{
			name: "uncongested scenario accepted",
			env:  map[string]string{"REPRO_SCENARIO": "uncongested"},
			check: func(t *testing.T, cfg Config) {
				if cfg.Scenario != "uncongested" {
					t.Fatalf("Scenario = %q", cfg.Scenario)
				}
			},
		},
		{name: "bad scale", env: map[string]string{"REPRO_SCALE": "medium"}, wantErr: "REPRO_SCALE"},
		{name: "bad scenario", env: map[string]string{"REPRO_SCENARIO": "congested"}, wantErr: "REPRO_SCENARIO"},
		{name: "traces typo", env: map[string]string{"REPRO_TRACES": "1O"}, wantErr: "REPRO_TRACES"},
		{name: "traces zero", env: map[string]string{"REPRO_TRACES": "0"}, wantErr: "REPRO_TRACES"},
		{name: "traces negative", env: map[string]string{"REPRO_TRACES": "-2"}, wantErr: "REPRO_TRACES"},
		{name: "seed not integer", env: map[string]string{"REPRO_SEED": "twenty"}, wantErr: "REPRO_SEED"},
		{name: "stride not integer", env: map[string]string{"REPRO_STRIDE": "3.5"}, wantErr: "REPRO_STRIDE"},
		{name: "stride negative", env: map[string]string{"REPRO_STRIDE": "-1"}, wantErr: "REPRO_STRIDE"},
		{name: "workers garbage", env: map[string]string{"REPRO_WORKERS": "all"}, wantErr: "REPRO_WORKERS"},
		{name: "workers negative", env: map[string]string{"REPRO_WORKERS": "-4"}, wantErr: "REPRO_WORKERS"},
		{name: "slices garbage", env: map[string]string{"REPRO_SLICES": "many"}, wantErr: "REPRO_SLICES"},
		{name: "slices negative", env: map[string]string{"REPRO_SLICES": "-1"}, wantErr: "REPRO_SLICES"},
		{name: "bad scheduler", env: map[string]string{"REPRO_SCHED": "fibheap"}, wantErr: "REPRO_SCHED"},
		{name: "bad cross-traffic drive", env: map[string]string{"REPRO_XTRAFFIC": "fluid"}, wantErr: "REPRO_XTRAFFIC"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, k := range allKnobs {
				t.Setenv(k, tc.env[k]) // unset knobs become ""
			}
			cfg, err := FromEnv()
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("want error mentioning %q, got config %+v", tc.wantErr, cfg)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not name %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if tc.check != nil {
				tc.check(t, cfg)
			}
		})
	}
}

func TestEmptyPlanErrors(t *testing.T) {
	cfg := testConfig()
	cfg.TracePlan = map[string]int{"no such vantage": 3}
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected error for a plan selecting no vantages")
	}
}

func TestPartialPlanKeepsVantageSeeds(t *testing.T) {
	// A vantage's shard seed is tied to its fixed Table 2 index, so
	// running a subset of the plan must not change any vantage's stream.
	full := runOrFatal(t, testConfig())

	cfg := testConfig()
	tokyo := "EC2 Tokyo"
	cfg.TracePlan = map[string]int{tokyo: 2}
	solo := runOrFatal(t, cfg)

	var fullTokyo []dataset.Trace
	for _, tr := range full.Dataset.Traces {
		if tr.Vantage == tokyo {
			fullTokyo = append(fullTokyo, tr)
		}
	}
	if len(fullTokyo) != 2 || len(solo.Dataset.Traces) != 2 {
		t.Fatalf("trace counts: full=%d solo=%d", len(fullTokyo), len(solo.Dataset.Traces))
	}
	for i := range fullTokyo {
		a, b := fullTokyo[i], solo.Dataset.Traces[i]
		// Indices are campaign-wide and differ; everything else matches.
		a.Index, b.Index = 0, 0
		av, bv := encode(t, &dataset.Dataset{Traces: []dataset.Trace{a}}), encode(t, &dataset.Dataset{Traces: []dataset.Trace{b}})
		if !bytes.Equal(av, bv) {
			t.Fatalf("Tokyo trace %d differs between full and solo plans", i)
		}
	}
}

func TestSettleTimeAndBatchKnobs(t *testing.T) {
	cfg := testConfig()
	cfg.SettleTime = 5 * time.Minute
	cfg.Batch2Fraction = 1.0
	res := runOrFatal(t, cfg)
	for i, tr := range res.Dataset.Traces {
		if tr.Batch != 2 {
			t.Fatalf("trace %d batch = %d, want 2 with Batch2Fraction=1", i, tr.Batch)
		}
	}
}

func TestUnknownScaleErrors(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = "bogus"
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected error for unknown scale")
	}
}
