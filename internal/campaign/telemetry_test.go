package campaign

import (
	"bytes"
	"testing"

	"repro/internal/telemetry"
)

// counterValue finds one counter sample in a registry snapshot by name
// and exact label set.
func counterValue(t *testing.T, reg *telemetry.Registry, name string, labels ...telemetry.Label) uint64 {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name != name || len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for i := range labels {
			if s.Labels[i] != labels[i] {
				match = false
				break
			}
		}
		if match {
			return s.Uint
		}
	}
	t.Fatalf("no sample %s%v in snapshot", name, labels)
	return 0
}

func sumCounter(reg *telemetry.Registry, name string) uint64 {
	var sum uint64
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			sum += s.Uint
		}
	}
	return sum
}

// TestTelemetryOutOfBand is the instrumentation guarantee: attaching a
// Metrics set to a campaign changes nothing about its output. For every
// scenario the merged dataset must be byte-identical with telemetry on
// and off — the flush happens after each shard's simulator has stopped,
// so it cannot consume a PRNG draw or schedule an event — and the
// flushed counters must agree exactly with the Result's own accounting.
func TestTelemetryOutOfBand(t *testing.T) {
	for _, scenario := range []string{ScenarioUncongested, ScenarioCongestedEdge, ScenarioCongestedTransit} {
		t.Run(scenario, func(t *testing.T) {
			off := testConfig()
			off.Scenario = scenario
			plain := runOrFatal(t, off)

			reg := telemetry.NewRegistry()
			on := testConfig()
			on.Scenario = scenario
			on.Metrics = NewMetrics(reg)
			instrumented := runOrFatal(t, on)

			if !bytes.Equal(encode(t, plain.Dataset), encode(t, instrumented.Dataset)) {
				t.Fatal("dataset differs with telemetry attached")
			}

			// The registry's totals are exactly the Result's totals.
			if got := counterValue(t, reg, "repro_campaign_shards_completed_total",
				telemetry.Label{Name: "result", Value: "ok"}); got != uint64(len(instrumented.Shards)) {
				t.Errorf("shards completed = %d, want %d", got, len(instrumented.Shards))
			}
			if got := counterValue(t, reg, "repro_campaign_traces_completed_total"); got != uint64(len(instrumented.Dataset.Traces)) {
				t.Errorf("traces completed = %d, want %d", got, len(instrumented.Dataset.Traces))
			}
			if got := sumCounter(reg, "repro_sim_events_total"); got != instrumented.Events {
				t.Errorf("events total = %d, want %d", got, instrumented.Events)
			}
			if got := counterValue(t, reg, "repro_sim_events_total",
				telemetry.Label{Name: "sched", Value: "wheel"}); got != instrumented.Events {
				t.Errorf("wheel events = %d, want all %d on the default scheduler", got, instrumented.Events)
			}
			if got := counterValue(t, reg, "repro_sim_phantom_events_total"); got != instrumented.PhantomEvents {
				t.Errorf("phantom events = %d, want %d", got, instrumented.PhantomEvents)
			}
			if got := counterValue(t, reg, "repro_sim_replayed_boundaries_total"); got != instrumented.ReplayedBoundaries {
				t.Errorf("replayed boundaries = %d, want %d", got, instrumented.ReplayedBoundaries)
			}
			var wantCascades, wantRegister uint64
			for _, sh := range instrumented.Shards {
				wantCascades += sh.WheelCascades
				wantRegister += sh.WheelRegisterHits
			}
			if got := counterValue(t, reg, "repro_sim_wheel_cascades_total"); got != wantCascades {
				t.Errorf("wheel cascades = %d, want %d", got, wantCascades)
			}
			if got := counterValue(t, reg, "repro_sim_wheel_register_hits_total"); got != wantRegister {
				t.Errorf("wheel register hits = %d, want %d", got, wantRegister)
			}

			// The running gauge returns to zero once Run returns.
			for _, s := range reg.Snapshot() {
				if s.Name == "repro_campaign_shards_running" && s.Value != 0 {
					t.Errorf("shards running gauge = %v after Run", s.Value)
				}
			}

			// Congested scenarios flush AQM ground truth; uncongested
			// worlds have no bottleneck queues to flush.
			enq := sumCounter(reg, "repro_aqm_enqueued_total")
			if scenario == ScenarioUncongested {
				if enq != 0 {
					t.Errorf("uncongested run flushed %d AQM enqueues", enq)
				}
			} else if enq == 0 {
				t.Error("congested run flushed no AQM enqueues")
			}
		})
	}
}

// TestTelemetrySharedAcrossRuns pins the control-plane usage: one
// Metrics set attached to several campaigns accumulates sums, and the
// per-shard flush deltas stay coherent (exactly double after running
// the same campaign twice).
func TestTelemetrySharedAcrossRuns(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := testConfig()
	cfg.Scenario = ScenarioCongestedEdge
	cfg.Metrics = NewMetrics(reg)
	first := runOrFatal(t, cfg)
	one := sumCounter(reg, "repro_sim_events_total")
	if one != first.Events {
		t.Fatalf("first run events = %d, want %d", one, first.Events)
	}
	runOrFatal(t, cfg)
	if got := sumCounter(reg, "repro_sim_events_total"); got != 2*one {
		t.Errorf("after second run events = %d, want %d", got, 2*one)
	}
	if got := sumCounter(reg, "repro_campaign_shards_completed_total"); got != 2*uint64(len(first.Shards)) {
		t.Errorf("shards completed = %d, want %d", got, 2*len(first.Shards))
	}
}
