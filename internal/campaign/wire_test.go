package campaign

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// stripWallClock zeroes the one non-deterministic ShardStats field
// (wall-clock Elapsed) so shard stats can be compared across runs.
func stripWallClock(stats []ShardStats) []ShardStats {
	out := make([]ShardStats, len(stats))
	copy(out, stats)
	for i := range out {
		out[i].Elapsed = 0
	}
	return out
}

// executeAllShardsOverWire runs every planned shard through the remote
// worker path — ExecuteShard, then a full JSON round trip of the wire
// struct (what an HTTP upload does to it) — and merges the decoded
// results, exactly as a coordinator assembling worker uploads would.
func executeAllShardsOverWire(t *testing.T, cfg Config) *Result {
	t.Helper()
	bp, err := cfg.CompileBlueprint()
	if err != nil {
		t.Fatal(err)
	}
	var wires []*ShardResultWire
	for _, info := range cfg.Shards() {
		w, err := ExecuteShard(cfg, bp, info.Shard, info.Slice)
		if err != nil {
			t.Fatalf("ExecuteShard(%d,%d): %v", info.Shard, info.Slice, err)
		}
		raw, err := json.Marshal(w)
		if err != nil {
			t.Fatal(err)
		}
		decoded := new(ShardResultWire)
		if err := json.Unmarshal(raw, decoded); err != nil {
			t.Fatal(err)
		}
		wires = append(wires, decoded)
	}
	res, err := MergeWire(wires)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWireMergeMatchesInProcess is the distributed path's determinism
// guarantee: executing every shard through ExecuteShard, JSON
// round-tripping each result, and merging with MergeWire yields the
// same dataset bytes, server list, congestion samples and shard stats
// as the in-process campaign.Run — for both uncongested and congested
// scenarios, with sliced vantages.
func TestWireMergeMatchesInProcess(t *testing.T) {
	for _, scenario := range []string{ScenarioUncongested, ScenarioCongestedEdge} {
		t.Run(scenario, func(t *testing.T) {
			cfg := testConfig()
			cfg.Scenario = scenario
			cfg.SlicesPerVantage = 2

			ref := runOrFatal(t, cfg)
			got := executeAllShardsOverWire(t, cfg)

			refData, gotData := encode(t, ref.Dataset), encode(t, got.Dataset)
			if len(refData) == 0 {
				t.Fatal("reference dataset is empty")
			}
			if !bytes.Equal(gotData, refData) {
				t.Errorf("wire-merged dataset differs from in-process run (%d vs %d bytes)",
					len(gotData), len(refData))
			}
			if !reflect.DeepEqual(got.Servers, ref.Servers) {
				t.Errorf("servers differ: %v vs %v", got.Servers, ref.Servers)
			}
			if !reflect.DeepEqual(stripWallClock(got.Shards), stripWallClock(ref.Shards)) {
				t.Errorf("shard stats differ:\n%+v\nvs\n%+v", got.Shards, ref.Shards)
			}
			if !reflect.DeepEqual(got.Congestion, ref.Congestion) {
				t.Errorf("congestion samples differ:\n%+v\nvs\n%+v", got.Congestion, ref.Congestion)
			}
			if got.Events != ref.Events || got.PhantomEvents != ref.PhantomEvents ||
				got.ReplayedBoundaries != ref.ReplayedBoundaries {
				t.Errorf("event totals differ: (%d,%d,%d) vs (%d,%d,%d)",
					got.Events, got.PhantomEvents, got.ReplayedBoundaries,
					ref.Events, ref.PhantomEvents, ref.ReplayedBoundaries)
			}
		})
	}
}

// TestExecuteShardUnknownShard rejects coordinates outside the plan.
func TestExecuteShardUnknownShard(t *testing.T) {
	cfg := testConfig()
	bp, err := cfg.CompileBlueprint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteShard(cfg, bp, 99, 0); err == nil {
		t.Fatal("want error for shard outside the plan")
	}
}

// TestMergeWireRejectsBadBatches covers the coordinator-side guards:
// empty batches, nil entries, wrong wire versions and out-of-order
// uploads are all refused before any merge happens.
func TestMergeWireRejectsBadBatches(t *testing.T) {
	cfg := testConfig()
	bp, err := cfg.CompileBlueprint()
	if err != nil {
		t.Fatal(err)
	}
	infos := cfg.Shards()
	if len(infos) < 2 {
		t.Fatalf("test plan too small: %d shards", len(infos))
	}
	a, err := ExecuteShard(cfg, bp, infos[0].Shard, infos[0].Slice)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExecuteShard(cfg, bp, infos[1].Shard, infos[1].Slice)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := MergeWire(nil); err == nil {
		t.Error("want error for empty batch")
	}
	if _, err := MergeWire([]*ShardResultWire{a, nil}); err == nil {
		t.Error("want error for nil entry")
	}
	bad := *a
	bad.Version = ShardWireVersion + 1
	if _, err := MergeWire([]*ShardResultWire{&bad}); err == nil {
		t.Error("want error for wire version mismatch")
	}
	if _, err := MergeWire([]*ShardResultWire{b, a}); err == nil {
		t.Error("want error for out-of-order results")
	}
	if _, err := MergeWire([]*ShardResultWire{a, a}); err == nil {
		t.Error("want error for duplicate shard coordinates")
	}
}
