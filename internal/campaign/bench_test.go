package campaign

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// benchRun executes a campaign configuration repeatedly. The REPRO_*
// knobs select the campaign: at the default paper scale this is the full
// 2500-server, 13-vantage plan; CI's smoke job sets REPRO_SCALE=small.
func benchRun(b *testing.B, cfg Config) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Dataset.Traces) == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// BenchmarkCampaignWorkers compares wall time across worker-pool sizes on
// the same campaign; the acceptance target is >1.5× speedup of the
// multi-worker rows over workers=1 on multicore hardware.
func BenchmarkCampaignWorkers(b *testing.B) {
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg, err := FromEnv()
			if err != nil {
				b.Fatal(err)
			}
			cfg.Workers = workers
			benchRun(b, cfg)
		})
	}
}

// BenchmarkCampaignSlices holds the worker pool at GOMAXPROCS and varies
// sub-vantage slicing: with more shards than vantages the pool packs
// better (no long-tail shard pins a worker), at the price of more world
// instantiations — which the shared blueprint keeps cheap.
func BenchmarkCampaignSlices(b *testing.B) {
	for _, slices := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("slices=%d", slices), func(b *testing.B) {
			cfg, err := FromEnv()
			if err != nil {
				b.Fatal(err)
			}
			cfg.SlicesPerVantage = slices
			benchRun(b, cfg)
		})
	}
}

// BenchmarkShardBuild isolates the per-shard fixed cost a campaign pays
// for every (vantage, slice) shard: instantiating a world into a fresh
// simulator from the compiled blueprint. Before shared worlds this was
// a full generation plus an all-pairs route computation per shard;
// scripts/perf_gate.sh keeps it collapsed.
func BenchmarkShardBuild(b *testing.B) {
	cfg, err := FromEnv()
	if err != nil {
		b.Fatal(err)
	}
	topo, err := cfg.topologyConfig()
	if err != nil {
		b.Fatal(err)
	}
	bp, err := topology.Compile(topo, cfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bp.Instantiate(netsim.NewSim(cfg.Seed)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorldCompile is the campaign's one-time fixed cost: full
// world generation plus routing, paid once per Run however many shards
// fan out from it.
func BenchmarkWorldCompile(b *testing.B) {
	cfg, err := FromEnv()
	if err != nil {
		b.Fatal(err)
	}
	topo, err := cfg.topologyConfig()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := topology.Compile(topo, cfg.Seed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignTelemetry measures what attaching a full Metrics
// set costs the campaign. Each iteration runs a plain/instrumented
// pair back to back — alternating which goes first, so in-process
// drift (heap growth shifts GC pacing enough that a benchmark that
// merely runs *later* in the process can look tens of percent slower)
// cancels instead of masquerading as overhead — and reports the paired
// difference as an `overhead-%` metric. scripts/perf_gate.sh reads
// that metric and fails above PERF_GATE_MAX_TELEMETRY_PCT (default
// 2%): the budget that keeps the flight recorder always-on in the
// control plane. ns/op covers both runs of the pair.
//
// Declared last on purpose: it runs many extra campaigns, and keeping
// it after the benchmarks that perf_gate compares against the base ref
// preserves identical in-process run order between the two trees.
func BenchmarkCampaignTelemetry(b *testing.B) {
	plain, err := FromEnv()
	if err != nil {
		b.Fatal(err)
	}
	// One worker: the overhead of the per-shard flush is the same, and
	// a single-threaded campaign gives the paired comparison a far
	// steadier baseline than multi-worker scheduling jitter.
	plain.Workers = 1
	inst := plain
	inst.Metrics = NewMetrics(telemetry.NewRegistry())

	timed := func(cfg Config) int64 {
		// Start every run from a freshly collected heap: on a small
		// machine a GC cycle landing inside one side of a pair would
		// otherwise dominate the difference being measured.
		runtime.GC()
		start := time.Now()
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Dataset.Traces) == 0 {
			b.Fatal("empty campaign")
		}
		return time.Since(start).Nanoseconds()
	}

	var plainNS, instNS int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			plainNS += timed(plain)
			instNS += timed(inst)
		} else {
			instNS += timed(inst)
			plainNS += timed(plain)
		}
	}
	b.ReportMetric(float64(instNS-plainNS)*100/float64(plainNS), "overhead-%")
}
