package campaign

import (
	"fmt"
	"runtime"
	"testing"
)

// benchRun executes a campaign configuration repeatedly. The REPRO_*
// knobs select the campaign: at the default paper scale this is the full
// 2500-server, 13-vantage plan; CI's smoke job sets REPRO_SCALE=small.
func benchRun(b *testing.B, cfg Config) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Dataset.Traces) == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// BenchmarkCampaignWorkers compares wall time across worker-pool sizes on
// the same campaign; the acceptance target is >1.5× speedup of the
// multi-worker rows over workers=1 on multicore hardware.
func BenchmarkCampaignWorkers(b *testing.B) {
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg, err := FromEnv()
			if err != nil {
				b.Fatal(err)
			}
			cfg.Workers = workers
			benchRun(b, cfg)
		})
	}
}

// BenchmarkShardBuild isolates the per-shard fixed cost — world
// generation plus route computation — by running a single one-trace
// shard with no traceroute sweep.
func BenchmarkShardBuild(b *testing.B) {
	cfg, err := FromEnv()
	if err != nil {
		b.Fatal(err)
	}
	cfg.TracePlan = map[string]int{"EC2 Ireland": 1}
	cfg.Stride = 0
	cfg.Workers = 1
	benchRun(b, cfg)
}
