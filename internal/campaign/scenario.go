package campaign

import (
	"fmt"

	"repro/internal/topology"
)

// The named campaign scenarios, selectable via Config.Scenario, the
// REPRO_SCENARIO environment knob and ecnspider's -scenario flag. A
// scenario chooses where (if anywhere) the congestion substrate places
// its bandwidth-limited AQM bottlenecks; everything else about the
// world is untouched, so the uncongested scenario regenerates datasets
// byte-identical to a configuration that never mentions scenarios.
const (
	// ScenarioUncongested is today's behaviour and the default: links
	// are infinite-rate pipes, congestion exists only as the calibrated
	// loss constants, and no router marks CE — the Internet the paper
	// actually measured.
	ScenarioUncongested = "uncongested"
	// ScenarioCongestedEdge bottlenecks every vantage access link (1
	// Mbit/s, RED, 90% background load): the measurement traffic
	// contends with cross traffic at the edge, RED CE-marks ECT packets
	// and drops not-ECT ones, and the vantage observes the CE ratio the
	// verbose-mode estimator consumes.
	ScenarioCongestedEdge = "congested-edge"
	// ScenarioCongestedTransit bottlenecks the transit ASes' core↔down
	// links (10 Mbit/s, RED, 85% background load): congestion mid-path,
	// shared by every stub homed to the transit.
	ScenarioCongestedTransit = "congested-transit"
)

// Scenarios lists the selectable scenario names.
func Scenarios() []string {
	return []string{ScenarioUncongested, ScenarioCongestedEdge, ScenarioCongestedTransit}
}

// ApplyScenario rewrites topo's congestion-substrate knobs for the
// named scenario. The empty string and ScenarioUncongested leave topo
// untouched. Unknown names are an error — scenarios gate measurement
// campaigns, and a typo must not silently run the wrong experiment.
func ApplyScenario(topo *topology.Config, scenario string) error {
	switch scenario {
	case "", ScenarioUncongested:
		return nil
	case ScenarioCongestedEdge:
		topo.CongestedVantageAccess = true
		topo.BottleneckRate = 125_000 // 1 Mbit/s access
		topo.BottleneckQueueLen = 50
		topo.BottleneckAQM = "red"
		topo.BottleneckUtilization = 0.9
		return nil
	case ScenarioCongestedTransit:
		topo.CongestedTransit = true
		topo.BottleneckRate = 1_250_000 // 10 Mbit/s transit
		topo.BottleneckQueueLen = 100
		topo.BottleneckAQM = "red"
		topo.BottleneckUtilization = 0.85
		return nil
	default:
		return fmt.Errorf("campaign: unknown scenario %q (want %v)", scenario, Scenarios())
	}
}
