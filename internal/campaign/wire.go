package campaign

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/topology"
)

// This file is the distributed execution seam: the versioned wire form
// of one shard's result, the entry point a remote worker uses to
// execute exactly one leased (vantage, slice) shard, and the merge the
// coordinator runs over uploaded results.
//
// The contract is the engine's determinism invariant stretched across
// machines: ExecuteShard runs the identical history-free shard context
// runShard uses in-process (same frozen blueprint, same derived seeds,
// same epoch-pinned virtual timeline), every field of ShardResultWire
// survives a JSON round trip exactly (integers and durations decode
// through strconv, never a float; float64s re-marshal shortest-form),
// and MergeWire reassembles results in canonical (vantage, slice)
// order through the same merge the in-process path uses — so the
// merged dataset is byte-identical to campaign.Run whatever machine
// ran which shard. cmd/determinism's pinned hash is the cross-machine
// acceptance check.

// ShardWireVersion is the current shard-result wire schema. A worker
// built against a different schema is rejected at upload rather than
// silently merged.
const ShardWireVersion = 1

// ShardResultWire is one executed shard's result in wire form: the
// shard's dataset slice, its congestion sample (congested scenarios),
// its probed server list, and its execution stats. It carries the spec
// hash it was computed for so a stale worker — one holding a lease
// from a different job generation or an entirely different spec —
// cannot poison a job's merge.
type ShardResultWire struct {
	// Version is the wire schema version (ShardWireVersion).
	Version int `json:"v"`
	// SpecHash is the cache key (campaign.Spec.CacheKey) of the spec
	// the worker actually executed; the coordinator rejects uploads
	// whose hash differs from the job's.
	SpecHash string `json:"spec_hash"`

	// Shard and Slice identify the (vantage, slice) unit in the
	// canonical plan; Vantage is carried for self-description.
	Shard   int    `json:"shard"`
	Slice   int    `json:"slice"`
	Vantage string `json:"vantage"`

	// Traces is the shard's dataset slice, in per-shard order (the
	// campaign-wide Index is assigned by the canonical merge).
	Traces []dataset.Trace `json:"traces"`
	// Servers is the shard's probed target list (ground truth or
	// per-shard DNS discovery); the merge unions it in canonical shard
	// order for the run report.
	Servers []packet.Addr `json:"servers"`
	// Congestion is the shard's CE-mark sample on congested scenarios.
	Congestion *analysis.CEMarkSample `json:"congestion,omitempty"`
	// Stats are the shard's execution counters.
	Stats ShardStats `json:"stats"`
}

// wireFromShardResult converts an executed shard to wire form. The
// traceroute sweep's path observations are not carried: they are not
// part of the stored artifact set (dataset + run meta) the control
// plane files, so the wire stays lean.
func wireFromShardResult(r shardResult) *ShardResultWire {
	return &ShardResultWire{
		Version:    ShardWireVersion,
		Shard:      r.stats.Shard,
		Slice:      r.stats.Slice,
		Vantage:    r.stats.Vantage,
		Traces:     r.data.Traces,
		Servers:    r.servers,
		Congestion: r.congestion,
		Stats:      r.stats,
	}
}

// shardResultFromWire converts an uploaded wire result back to the
// merge's internal form. The world pointer is nil: a coordinator
// merging remote results never instantiated the shard's world, and
// nothing in the stored artifacts needs it.
func (w *ShardResultWire) shardResult() shardResult {
	return shardResult{
		data:       &dataset.Dataset{Traces: w.Traces},
		servers:    w.Servers,
		congestion: w.Congestion,
		stats:      w.Stats,
	}
}

// CompileBlueprint compiles the campaign's frozen world blueprint —
// the same compile-once artifact Run shares across its shard pool. A
// worker compiles it once per job and instantiates it into every
// leased shard's private simulation.
func (cfg Config) CompileBlueprint() (*topology.Blueprint, error) {
	topo, err := cfg.topologyConfig()
	if err != nil {
		return nil, err
	}
	return topology.Compile(topo, cfg.Seed)
}

// ExecuteShard executes exactly one (vantage-index, slice) shard of
// the campaign plan against a pre-compiled blueprint and returns its
// wire-form result. It runs the identical code path Run's worker pool
// uses (runShard: reseeded, transient-reset, epoch-pinned per-trace
// contexts), so the returned traces are byte-identical to the same
// shard executed in-process — the property that makes cross-machine
// merges exact. SpecHash is left empty; the uploading caller stamps
// the hash of the spec it derived cfg from.
func ExecuteShard(cfg Config, bp *topology.Blueprint, shard, slice int) (*ShardResultWire, error) {
	sched, ok := netsim.SchedulerByName(cfg.Scheduler)
	if !ok {
		return nil, fmt.Errorf("campaign: unknown scheduler %q (want wheel or heap)", cfg.Scheduler)
	}
	xmode, ok := netsim.XTrafficModeByName(cfg.XTraffic)
	if !ok {
		return nil, fmt.Errorf("campaign: unknown cross-traffic drive %q (want lazy or events)", cfg.XTraffic)
	}
	for _, sh := range cfg.shardSpecs() {
		if sh.shard != shard || sh.slice != slice {
			continue
		}
		r, err := runShard(cfg, bp, sh, sched, xmode)
		if err != nil {
			return nil, err
		}
		return wireFromShardResult(r), nil
	}
	return nil, fmt.Errorf("campaign: plan has no shard (%d, %d)", shard, slice)
}

// MergeWire reassembles uploaded shard results — which must arrive in
// canonical (vantage, slice) plan order, one per planned shard — into
// a merged Result via the same canonical merge the in-process engine
// uses. Result.World is nil (no world was instantiated here); every
// stored artifact (dataset bytes, run meta, CE-mark report) derives
// without it.
func MergeWire(wires []*ShardResultWire) (*Result, error) {
	if len(wires) == 0 {
		return nil, fmt.Errorf("campaign: merge of zero shard results")
	}
	results := make([]shardResult, len(wires))
	for i, w := range wires {
		if w == nil {
			return nil, fmt.Errorf("campaign: shard result %d missing from merge", i)
		}
		if w.Version != ShardWireVersion {
			return nil, fmt.Errorf("campaign: shard result %d has wire version %d (this build speaks %d)",
				i, w.Version, ShardWireVersion)
		}
		if i > 0 {
			prev := wires[i-1]
			if w.Shard < prev.Shard || (w.Shard == prev.Shard && w.Slice <= prev.Slice) {
				return nil, fmt.Errorf("campaign: shard results out of canonical order: (%d,%d) after (%d,%d)",
					w.Shard, w.Slice, prev.Shard, prev.Slice)
			}
		}
		results[i] = w.shardResult()
	}
	return merge(results), nil
}
