package capture

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/ecn"
	"repro/internal/netsim"
	"repro/internal/packet"
)

func wireOf(t *testing.T, cp ecn.Codepoint, id uint16) []byte {
	t.Helper()
	w, err := packet.BuildUDP(
		packet.MustParseAddr("10.0.0.1"), packet.MustParseAddr("10.0.0.2"),
		1000, 123, 64, cp, id, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRecorderBasic(t *testing.T) {
	r := NewRecorder(0)
	r.Tap(netsim.TapOut, time.Millisecond, wireOf(t, ecn.ECT0, 1))
	r.Tap(netsim.TapIn, 2*time.Millisecond, wireOf(t, ecn.NotECT, 2))
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	recs := r.Records()
	if recs[0].Dir != netsim.TapOut || recs[1].Dir != netsim.TapIn {
		t.Error("directions wrong")
	}
	if recs[0].At != time.Millisecond {
		t.Error("timestamp wrong")
	}
}

func TestRecorderCopiesWire(t *testing.T) {
	r := NewRecorder(0)
	w := wireOf(t, ecn.ECT0, 1)
	r.Tap(netsim.TapOut, 0, w)
	w[1] = 0xFF // mutate original: record must be unaffected
	cp, _ := packet.WireECN(r.Records()[0].Wire)
	if cp != ecn.ECT0 {
		t.Error("recorder shares caller's buffer")
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Tap(netsim.TapOut, time.Duration(i)*time.Second, wireOf(t, ecn.NotECT, uint16(i)))
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	if r.Overwritten() != 2 {
		t.Errorf("overwritten = %d", r.Overwritten())
	}
	recs := r.Records()
	// Oldest two displaced: first retained record is i=2.
	if recs[0].At != 2*time.Second || recs[2].At != 4*time.Second {
		t.Errorf("ring order wrong: %v, %v", recs[0].At, recs[2].At)
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder(2)
	r.Tap(netsim.TapOut, 0, wireOf(t, ecn.NotECT, 1))
	r.Reset()
	if r.Len() != 0 || r.Overwritten() != 0 {
		t.Error("reset incomplete")
	}
}

func TestECNCounts(t *testing.T) {
	r := NewRecorder(0)
	r.Tap(netsim.TapOut, 0, wireOf(t, ecn.ECT0, 1))
	r.Tap(netsim.TapOut, 0, wireOf(t, ecn.ECT0, 2))
	r.Tap(netsim.TapOut, 0, wireOf(t, ecn.NotECT, 3))
	r.Tap(netsim.TapIn, 0, wireOf(t, ecn.CE, 4))
	out := r.ECNCounts(netsim.TapOut)
	if out[ecn.ECT0] != 2 || out[ecn.NotECT] != 1 || out[ecn.CE] != 0 {
		t.Errorf("out counts = %v", out)
	}
	in := r.ECNCounts(netsim.TapIn)
	if in[ecn.CE] != 1 {
		t.Errorf("in counts = %v", in)
	}
}

func TestPcapRoundTrip(t *testing.T) {
	recs := []Record{
		{At: 1500 * time.Millisecond, Dir: netsim.TapOut, Wire: wireOf(t, ecn.ECT0, 1)},
		{At: 2750 * time.Millisecond, Dir: netsim.TapIn, Wire: wireOf(t, ecn.NotECT, 2)},
	}
	var buf bytes.Buffer
	if err := WritePcap(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("records = %d", len(got))
	}
	for i := range got {
		if !bytes.Equal(got[i].Wire, recs[i].Wire) {
			t.Errorf("record %d wire mismatch", i)
		}
		if got[i].At != recs[i].At {
			t.Errorf("record %d time = %v, want %v", i, got[i].At, recs[i].At)
		}
	}
	// The wire bytes must still decode as valid IP.
	if _, err := packet.Decode(got[0].Wire); err != nil {
		t.Errorf("captured packet no longer decodes: %v", err)
	}
}

func TestReadPcapRejectsGarbage(t *testing.T) {
	if _, err := ReadPcap(bytes.NewReader([]byte("not a pcap file at all....."))); err == nil {
		t.Error("garbage accepted")
	}
	var buf bytes.Buffer
	WritePcap(&buf, nil)
	raw := buf.Bytes()
	raw[20] = 1 // link type Ethernet
	if _, err := ReadPcap(bytes.NewReader(raw)); err == nil {
		t.Error("wrong link type accepted")
	}
}

func TestEndToEndCaptureOnHost(t *testing.T) {
	sim := netsim.NewSim(1)
	n := netsim.NewNetwork(sim)
	r := n.AddRouter("r", packet.AddrFrom4(10, 255, 0, 1), 64500)
	a, _ := n.AddHost("a", packet.AddrFrom4(10, 0, 0, 1))
	b, _ := n.AddHost("b", packet.AddrFrom4(10, 0, 0, 2))
	n.Attach(a, r, time.Millisecond, 0)
	n.Attach(b, r, time.Millisecond, 0)
	n.ComputeRoutes()

	rec := NewRecorder(0)
	a.AddTap(rec.Tap)
	b.BindUDP(123, func(h *netsim.Host, ip packet.IPv4Header, udp packet.UDPHeader, payload []byte) {
		h.SendUDP(ip.Src, 123, udp.SrcPort, 64, ecn.NotECT, payload)
	})
	a.BindUDP(5000, func(h *netsim.Host, ip packet.IPv4Header, udp packet.UDPHeader, payload []byte) {})
	a.SendUDP(b.Addr(), 5000, 123, 64, ecn.ECT0, []byte("ping"))
	sim.Run()

	recs := rec.Records()
	if len(recs) != 2 {
		t.Fatalf("captured %d packets, want request+response", len(recs))
	}
	outCP, _ := packet.WireECN(recs[0].Wire)
	inCP, _ := packet.WireECN(recs[1].Wire)
	if outCP != ecn.ECT0 || inCP != ecn.NotECT {
		t.Errorf("ECN out/in = %v/%v", outCP, inCP)
	}
}
