// Package capture provides the simulated counterpart of the study's
// parallel tcpdump sessions: packet taps that record the wire bytes a
// host sends and receives, plus a classic pcap (v2.4) writer/reader so
// captures can be persisted and inspected with standard tooling.
package capture

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/ecn"
	"repro/internal/netsim"
	"repro/internal/packet"
)

// Record is one captured packet.
type Record struct {
	At   time.Duration // virtual capture time
	Dir  netsim.TapDirection
	Wire []byte
}

// Recorder accumulates packets from a host tap. A MaxRecords bound turns
// it into a ring buffer so long campaigns don't hold every packet.
type Recorder struct {
	// MaxRecords bounds memory; 0 means unbounded.
	MaxRecords int

	records []Record
	dropped uint64
	start   int // ring start when bounded
}

// NewRecorder returns a recorder; attach it with host.AddTap(r.Tap).
func NewRecorder(maxRecords int) *Recorder {
	return &Recorder{MaxRecords: maxRecords}
}

// Tap is the netsim.Tap to install on a host.
func (r *Recorder) Tap(dir netsim.TapDirection, at time.Duration, wire []byte) {
	rec := Record{At: at, Dir: dir, Wire: append([]byte(nil), wire...)}
	if r.MaxRecords > 0 && len(r.records) == r.MaxRecords {
		r.records[r.start] = rec
		r.start = (r.start + 1) % r.MaxRecords
		r.dropped++
		return
	}
	r.records = append(r.records, rec)
}

// Records returns captured packets in order.
func (r *Recorder) Records() []Record {
	if r.start == 0 {
		return r.records
	}
	out := make([]Record, 0, len(r.records))
	out = append(out, r.records[r.start:]...)
	out = append(out, r.records[:r.start]...)
	return out
}

// Len reports the number of retained records.
func (r *Recorder) Len() int { return len(r.records) }

// Overwritten reports how many records the ring displaced.
func (r *Recorder) Overwritten() uint64 { return r.dropped }

// Reset clears the buffer.
func (r *Recorder) Reset() {
	r.records = r.records[:0]
	r.start = 0
	r.dropped = 0
}

// ECNCounts tallies the ECN codepoints seen in a direction — the quick
// analysis the paper performed on its tcpdump output.
func (r *Recorder) ECNCounts(dir netsim.TapDirection) map[ecn.Codepoint]int {
	counts := make(map[ecn.Codepoint]int)
	for _, rec := range r.Records() {
		if rec.Dir != dir {
			continue
		}
		cp, err := packet.WireECN(rec.Wire)
		if err != nil {
			continue
		}
		counts[cp]++
	}
	return counts
}

// --- pcap ---------------------------------------------------------------

const (
	pcapMagic        = 0xa1b2c3d4
	pcapVersionMajor = 2
	pcapVersionMinor = 4
	// LinkTypeRaw is DLT_RAW: packets begin with the IPv4 header, which
	// is exactly what the simulator forwards.
	LinkTypeRaw = 101
	snapLen     = 65535
)

// ErrBadPcap indicates a malformed capture file.
var ErrBadPcap = errors.New("capture: malformed pcap")

// WritePcap serialises records to w in classic pcap format with raw-IP
// link type. Virtual timestamps map to seconds/microseconds since the
// pcap epoch.
func WritePcap(w io.Writer, records []Record) error {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:], pcapVersionMajor)
	binary.LittleEndian.PutUint16(hdr[6:], pcapVersionMinor)
	binary.LittleEndian.PutUint32(hdr[16:], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeRaw)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	rec := make([]byte, 16)
	for _, r := range records {
		usec := r.At.Microseconds()
		binary.LittleEndian.PutUint32(rec[0:], uint32(usec/1_000_000))
		binary.LittleEndian.PutUint32(rec[4:], uint32(usec%1_000_000))
		binary.LittleEndian.PutUint32(rec[8:], uint32(len(r.Wire)))
		binary.LittleEndian.PutUint32(rec[12:], uint32(len(r.Wire)))
		if _, err := w.Write(rec); err != nil {
			return err
		}
		if _, err := w.Write(r.Wire); err != nil {
			return err
		}
	}
	return nil
}

// ReadPcap parses a classic pcap file produced by WritePcap (or any
// little-endian raw-IP pcap). Direction information is not preserved by
// the format; records come back with Dir zero.
func ReadPcap(r io.Reader) ([]Record, error) {
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: global header: %v", ErrBadPcap, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != pcapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadPcap)
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:]); lt != LinkTypeRaw {
		return nil, fmt.Errorf("%w: link type %d (want raw IP)", ErrBadPcap, lt)
	}
	var out []Record
	rec := make([]byte, 16)
	for {
		if _, err := io.ReadFull(r, rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("%w: record header: %v", ErrBadPcap, err)
		}
		sec := binary.LittleEndian.Uint32(rec[0:])
		usec := binary.LittleEndian.Uint32(rec[4:])
		incl := binary.LittleEndian.Uint32(rec[8:])
		if incl > snapLen {
			return nil, fmt.Errorf("%w: record length %d", ErrBadPcap, incl)
		}
		wire := make([]byte, incl)
		if _, err := io.ReadFull(r, wire); err != nil {
			return nil, fmt.Errorf("%w: record body: %v", ErrBadPcap, err)
		}
		out = append(out, Record{
			At:   time.Duration(sec)*time.Second + time.Duration(usec)*time.Microsecond,
			Wire: wire,
		})
	}
}
