package packet

import (
	"fmt"

	"repro/internal/ecn"
)

// Datagram is a fully decoded IPv4 datagram: the IP header plus exactly
// one transport layer. It is the unit that hosts and analysis code work
// with; routers work on the raw wire bytes instead.
type Datagram struct {
	IP IPv4Header
	// Exactly one of UDP, TCP, ICMP is non-nil, matching IP.Protocol.
	UDP     *UDPHeader
	TCP     *TCPHeader
	ICMP    *ICMPMessage
	Payload []byte // transport payload (echo body for ICMP errors: quotation)
}

// Decode parses wire bytes into a Datagram. Unknown transports yield an
// error but the IP header is still returned for diagnostic use.
func Decode(wire []byte) (Datagram, error) {
	var d Datagram
	ip, body, err := ParseIPv4(wire)
	if err != nil {
		return d, err
	}
	d.IP = ip
	switch ip.Protocol {
	case ProtoUDP:
		u, payload, err := ParseUDP(body, ip.Src, ip.Dst)
		if err != nil {
			return d, err
		}
		d.UDP = &u
		d.Payload = payload
	case ProtoTCP:
		t, payload, err := ParseTCP(body, ip.Src, ip.Dst)
		if err != nil {
			return d, err
		}
		d.TCP = &t
		d.Payload = payload
	case ProtoICMP:
		m, err := ParseICMP(body)
		if err != nil {
			return d, err
		}
		d.ICMP = &m
		d.Payload = m.Body
	default:
		return d, fmt.Errorf("packet: unsupported protocol %v", ip.Protocol)
	}
	return d, nil
}

// AppendUDP serializes a complete IPv4+UDP datagram into b's spare
// capacity and returns the extended slice. With enough capacity (a
// pooled buffer) it allocates nothing: both headers are written
// directly into the destination.
func AppendUDP(b []byte, src, dst Addr, srcPort, dstPort uint16, ttl uint8, cp ecn.Codepoint, id uint16, payload []byte) ([]byte, error) {
	ip := IPv4Header{
		TOS:      ecn.SetTOS(0, cp),
		ID:       id,
		Flags:    FlagDF,
		TTL:      ttl,
		Protocol: ProtoUDP,
		Src:      src,
		Dst:      dst,
	}
	b, err := ip.Marshal(b, UDPHeaderLen+len(payload))
	if err != nil {
		return nil, err
	}
	udp := UDPHeader{SrcPort: srcPort, DstPort: dstPort}
	return udp.Marshal(b, src, dst, payload)
}

// BuildUDP serializes a complete IPv4+UDP datagram.
func BuildUDP(src, dst Addr, srcPort, dstPort uint16, ttl uint8, cp ecn.Codepoint, id uint16, payload []byte) ([]byte, error) {
	b := make([]byte, 0, IPv4HeaderLen+UDPHeaderLen+len(payload))
	return AppendUDP(b, src, dst, srcPort, dstPort, ttl, cp, id, payload)
}

// BuildUDPBuf serializes a complete IPv4+UDP datagram into a pooled
// buffer. The caller owns the returned Buf's reference.
func BuildUDPBuf(src, dst Addr, srcPort, dstPort uint16, ttl uint8, cp ecn.Codepoint, id uint16, payload []byte) (*Buf, error) {
	bf := NewBuf()
	b, err := AppendUDP(bf.b, src, dst, srcPort, dstPort, ttl, cp, id, payload)
	if err != nil {
		bf.Release()
		return nil, err
	}
	bf.b = b
	return bf, nil
}

// AppendTCP serializes a complete IPv4+TCP datagram into b's spare
// capacity; like AppendUDP it is allocation-free given capacity.
func AppendTCP(b []byte, src, dst Addr, hdr *TCPHeader, ttl uint8, cp ecn.Codepoint, id uint16, payload []byte) ([]byte, error) {
	segLen := TCPHeaderLen + (len(hdr.Options)+3)&^3 + len(payload)
	ip := IPv4Header{
		TOS:      ecn.SetTOS(0, cp),
		ID:       id,
		Flags:    FlagDF,
		TTL:      ttl,
		Protocol: ProtoTCP,
		Src:      src,
		Dst:      dst,
	}
	b, err := ip.Marshal(b, segLen)
	if err != nil {
		return nil, err
	}
	return hdr.Marshal(b, src, dst, payload)
}

// BuildTCP serializes a complete IPv4+TCP datagram.
func BuildTCP(src, dst Addr, hdr *TCPHeader, ttl uint8, cp ecn.Codepoint, id uint16, payload []byte) ([]byte, error) {
	b := make([]byte, 0, IPv4HeaderLen+TCPHeaderLen+(len(hdr.Options)+3)&^3+len(payload))
	return AppendTCP(b, src, dst, hdr, ttl, cp, id, payload)
}

// BuildTCPBuf serializes a complete IPv4+TCP datagram into a pooled
// buffer. The caller owns the returned Buf's reference.
func BuildTCPBuf(src, dst Addr, hdr *TCPHeader, ttl uint8, cp ecn.Codepoint, id uint16, payload []byte) (*Buf, error) {
	bf := NewBuf()
	b, err := AppendTCP(bf.b, src, dst, hdr, ttl, cp, id, payload)
	if err != nil {
		bf.Release()
		return nil, err
	}
	bf.b = b
	return bf, nil
}

// AppendICMP serializes a complete IPv4+ICMP datagram into b's spare
// capacity. ICMP messages are always sent not-ECT, as real stacks do
// for control traffic.
func AppendICMP(b []byte, src, dst Addr, ttl uint8, id uint16, msg ICMPMessage) ([]byte, error) {
	ip := IPv4Header{
		ID:       id,
		TTL:      ttl,
		Protocol: ProtoICMP,
		Src:      src,
		Dst:      dst,
	}
	b, err := ip.Marshal(b, ICMPHeaderLen+len(msg.Body))
	if err != nil {
		return nil, err
	}
	return msg.Marshal(b)
}

// BuildICMP serializes a complete IPv4+ICMP datagram.
func BuildICMP(src, dst Addr, ttl uint8, id uint16, msg ICMPMessage) ([]byte, error) {
	b := make([]byte, 0, IPv4HeaderLen+ICMPHeaderLen+len(msg.Body))
	return AppendICMP(b, src, dst, ttl, id, msg)
}

// BuildICMPBuf serializes a complete IPv4+ICMP datagram into a pooled
// buffer. The caller owns the returned Buf's reference.
func BuildICMPBuf(src, dst Addr, ttl uint8, id uint16, msg ICMPMessage) (*Buf, error) {
	bf := NewBuf()
	b, err := AppendICMP(bf.b, src, dst, ttl, id, msg)
	if err != nil {
		bf.Release()
		return nil, err
	}
	bf.b = b
	return bf, nil
}

// Flow is a transport 5-tuple in one direction. Flows are comparable, so
// they serve directly as map keys for demultiplexing, in the style of
// gopacket's Flow/Endpoint types.
type Flow struct {
	Proto            Protocol
	Src, Dst         Addr
	SrcPort, DstPort uint16
}

// Reverse returns the flow of the opposite direction.
func (f Flow) Reverse() Flow {
	return Flow{Proto: f.Proto, Src: f.Dst, Dst: f.Src, SrcPort: f.DstPort, DstPort: f.SrcPort}
}

// String renders the flow in "proto src:port > dst:port" form.
func (f Flow) String() string {
	return fmt.Sprintf("%s %s:%d > %s:%d", f.Proto, f.Src, f.SrcPort, f.Dst, f.DstPort)
}

// FlowOf extracts the flow of a decoded datagram. ICMP datagrams have
// port-less flows (ports zero).
func FlowOf(d *Datagram) Flow {
	f := Flow{Proto: d.IP.Protocol, Src: d.IP.Src, Dst: d.IP.Dst}
	switch {
	case d.UDP != nil:
		f.SrcPort, f.DstPort = d.UDP.SrcPort, d.UDP.DstPort
	case d.TCP != nil:
		f.SrcPort, f.DstPort = d.TCP.SrcPort, d.TCP.DstPort
	}
	return f
}
