package packet

import (
	"fmt"

	"repro/internal/ecn"
)

// Datagram is a fully decoded IPv4 datagram: the IP header plus exactly
// one transport layer. It is the unit that hosts and analysis code work
// with; routers work on the raw wire bytes instead.
type Datagram struct {
	IP IPv4Header
	// Exactly one of UDP, TCP, ICMP is non-nil, matching IP.Protocol.
	UDP     *UDPHeader
	TCP     *TCPHeader
	ICMP    *ICMPMessage
	Payload []byte // transport payload (echo body for ICMP errors: quotation)
}

// Decode parses wire bytes into a Datagram. Unknown transports yield an
// error but the IP header is still returned for diagnostic use.
func Decode(wire []byte) (Datagram, error) {
	var d Datagram
	ip, body, err := ParseIPv4(wire)
	if err != nil {
		return d, err
	}
	d.IP = ip
	switch ip.Protocol {
	case ProtoUDP:
		u, payload, err := ParseUDP(body, ip.Src, ip.Dst)
		if err != nil {
			return d, err
		}
		d.UDP = &u
		d.Payload = payload
	case ProtoTCP:
		t, payload, err := ParseTCP(body, ip.Src, ip.Dst)
		if err != nil {
			return d, err
		}
		d.TCP = &t
		d.Payload = payload
	case ProtoICMP:
		m, err := ParseICMP(body)
		if err != nil {
			return d, err
		}
		d.ICMP = &m
		d.Payload = m.Body
	default:
		return d, fmt.Errorf("packet: unsupported protocol %v", ip.Protocol)
	}
	return d, nil
}

// BuildUDP serializes a complete IPv4+UDP datagram.
func BuildUDP(src, dst Addr, srcPort, dstPort uint16, ttl uint8, cp ecn.Codepoint, id uint16, payload []byte) ([]byte, error) {
	udp := UDPHeader{SrcPort: srcPort, DstPort: dstPort}
	seg, err := udp.Marshal(nil, src, dst, payload)
	if err != nil {
		return nil, err
	}
	ip := IPv4Header{
		TOS:      ecn.SetTOS(0, cp),
		ID:       id,
		Flags:    FlagDF,
		TTL:      ttl,
		Protocol: ProtoUDP,
		Src:      src,
		Dst:      dst,
	}
	wire, err := ip.Marshal(make([]byte, 0, IPv4HeaderLen+len(seg)), len(seg))
	if err != nil {
		return nil, err
	}
	return append(wire, seg...), nil
}

// BuildTCP serializes a complete IPv4+TCP datagram.
func BuildTCP(src, dst Addr, hdr *TCPHeader, ttl uint8, cp ecn.Codepoint, id uint16, payload []byte) ([]byte, error) {
	seg, err := hdr.Marshal(nil, src, dst, payload)
	if err != nil {
		return nil, err
	}
	ip := IPv4Header{
		TOS:      ecn.SetTOS(0, cp),
		ID:       id,
		Flags:    FlagDF,
		TTL:      ttl,
		Protocol: ProtoTCP,
		Src:      src,
		Dst:      dst,
	}
	wire, err := ip.Marshal(make([]byte, 0, IPv4HeaderLen+len(seg)), len(seg))
	if err != nil {
		return nil, err
	}
	return append(wire, seg...), nil
}

// BuildICMP serializes a complete IPv4+ICMP datagram. ICMP messages are
// always sent not-ECT, as real stacks do for control traffic.
func BuildICMP(src, dst Addr, ttl uint8, id uint16, msg ICMPMessage) ([]byte, error) {
	seg, err := msg.Marshal(nil)
	if err != nil {
		return nil, err
	}
	ip := IPv4Header{
		ID:       id,
		TTL:      ttl,
		Protocol: ProtoICMP,
		Src:      src,
		Dst:      dst,
	}
	wire, err := ip.Marshal(make([]byte, 0, IPv4HeaderLen+len(seg)), len(seg))
	if err != nil {
		return nil, err
	}
	return append(wire, seg...), nil
}

// Flow is a transport 5-tuple in one direction. Flows are comparable, so
// they serve directly as map keys for demultiplexing, in the style of
// gopacket's Flow/Endpoint types.
type Flow struct {
	Proto            Protocol
	Src, Dst         Addr
	SrcPort, DstPort uint16
}

// Reverse returns the flow of the opposite direction.
func (f Flow) Reverse() Flow {
	return Flow{Proto: f.Proto, Src: f.Dst, Dst: f.Src, SrcPort: f.DstPort, DstPort: f.SrcPort}
}

// String renders the flow in "proto src:port > dst:port" form.
func (f Flow) String() string {
	return fmt.Sprintf("%s %s:%d > %s:%d", f.Proto, f.Src, f.SrcPort, f.Dst, f.DstPort)
}

// FlowOf extracts the flow of a decoded datagram. ICMP datagrams have
// port-less flows (ports zero).
func FlowOf(d *Datagram) Flow {
	f := Flow{Proto: d.IP.Protocol, Src: d.IP.Src, Dst: d.IP.Dst}
	switch {
	case d.UDP != nil:
		f.SrcPort, f.DstPort = d.UDP.SrcPort, d.UDP.DstPort
	case d.TCP != nil:
		f.SrcPort, f.DstPort = d.TCP.SrcPort, d.TCP.DstPort
	}
	return f
}
