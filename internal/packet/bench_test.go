package packet

import (
	"testing"

	"repro/internal/ecn"
)

func BenchmarkChecksum1500(b *testing.B) {
	data := make([]byte, 1500)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Checksum(data)
	}
}

func BenchmarkBuildUDP(b *testing.B) {
	src := MustParseAddr("10.0.0.1")
	dst := MustParseAddr("10.0.0.2")
	payload := make([]byte, 48) // NTP-sized
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildUDP(src, dst, 123, 123, 64, ecn.ECT0, uint16(i), payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeUDP(b *testing.B) {
	src := MustParseAddr("10.0.0.1")
	dst := MustParseAddr("10.0.0.2")
	wire, _ := BuildUDP(src, dst, 123, 123, 64, ecn.ECT0, 7, make([]byte, 48))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrementWireTTL(b *testing.B) {
	src := MustParseAddr("10.0.0.1")
	dst := MustParseAddr("10.0.0.2")
	wire, _ := BuildUDP(src, dst, 123, 123, 255, ecn.ECT0, 7, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire[8] = 255 // reset so decrement never exhausts
		if _, err := DecrementWireTTL(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSetWireECN(b *testing.B) {
	src := MustParseAddr("10.0.0.1")
	dst := MustParseAddr("10.0.0.2")
	wire, _ := BuildUDP(src, dst, 123, 123, 64, ecn.ECT0, 7, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := ecn.ECT0
		if i%2 == 1 {
			cp = ecn.NotECT
		}
		if err := SetWireECN(wire, cp); err != nil {
			b.Fatal(err)
		}
	}
}
