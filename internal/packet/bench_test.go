package packet

import (
	"testing"

	"repro/internal/ecn"
)

func BenchmarkChecksum1500(b *testing.B) {
	data := make([]byte, 1500)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Checksum(data)
	}
}

func BenchmarkBuildUDP(b *testing.B) {
	src := MustParseAddr("10.0.0.1")
	dst := MustParseAddr("10.0.0.2")
	payload := make([]byte, 48) // NTP-sized
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildUDP(src, dst, 123, 123, 64, ecn.ECT0, uint16(i), payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeUDP(b *testing.B) {
	src := MustParseAddr("10.0.0.1")
	dst := MustParseAddr("10.0.0.2")
	wire, _ := BuildUDP(src, dst, 123, 123, 64, ecn.ECT0, 7, make([]byte, 48))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildUDPBuf is the pooled steady-state send path: serialize
// a complete datagram into a pooled buffer, then release it. The
// perf-gate CI job fails if this ever reports allocations.
func BenchmarkBuildUDPBuf(b *testing.B) {
	src := MustParseAddr("10.0.0.1")
	dst := MustParseAddr("10.0.0.2")
	payload := make([]byte, 48) // NTP-sized
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bf, err := BuildUDPBuf(src, dst, 123, 123, 64, ecn.ECT0, uint16(i), payload)
		if err != nil {
			b.Fatal(err)
		}
		bf.Release()
	}
}

// TestBuildUDPBufAllocFree pins the zero-allocation property of the
// pooled build path once the buffer pool is warm.
func TestBuildUDPBufAllocFree(t *testing.T) {
	src := MustParseAddr("10.0.0.1")
	dst := MustParseAddr("10.0.0.2")
	payload := make([]byte, 48)
	step := func() {
		bf, err := BuildUDPBuf(src, dst, 123, 123, 64, ecn.ECT0, 7, payload)
		if err != nil {
			t.Fatal(err)
		}
		bf.Release()
	}
	step() // warm the pool
	if n := testing.AllocsPerRun(500, step); n > 0 {
		t.Errorf("pooled BuildUDPBuf allocates %.2f objects/op, want 0", n)
	}
}

func BenchmarkDecrementWireTTL(b *testing.B) {
	src := MustParseAddr("10.0.0.1")
	dst := MustParseAddr("10.0.0.2")
	wire, _ := BuildUDP(src, dst, 123, 123, 255, ecn.ECT0, 7, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire[8] = 255 // reset so decrement never exhausts
		if _, err := DecrementWireTTL(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSetWireECN compares the live incremental-checksum CE
// re-mark (RFC 1624) against the full header recompute it replaced;
// the "full" sub-benchmark is the pre-pooling reference
// implementation, kept so the speedup stays measurable.
func BenchmarkSetWireECN(b *testing.B) {
	src := MustParseAddr("10.0.0.1")
	dst := MustParseAddr("10.0.0.2")
	fullRecompute := func(wire []byte, c ecn.Codepoint) {
		wire[1] = ecn.SetTOS(wire[1], c)
		wire[10], wire[11] = 0, 0
		ck := Checksum(wire[:IPv4HeaderLen])
		wire[10], wire[11] = byte(ck>>8), byte(ck)
	}
	b.Run("incremental", func(b *testing.B) {
		wire, _ := BuildUDP(src, dst, 123, 123, 64, ecn.ECT0, 7, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cp := ecn.ECT0
			if i%2 == 1 {
				cp = ecn.NotECT
			}
			if err := SetWireECN(wire, cp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-recompute", func(b *testing.B) {
		wire, _ := BuildUDP(src, dst, 123, 123, 64, ecn.ECT0, 7, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cp := ecn.ECT0
			if i%2 == 1 {
				cp = ecn.NotECT
			}
			fullRecompute(wire, cp)
		}
	})
}
