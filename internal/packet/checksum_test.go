package packet

import (
	"testing"
	"testing/quick"
)

func TestChecksumRFC1071Example(t *testing.T) {
	// Worked example from RFC 1071 §3: the ones'-complement sum of
	// {00 01, f2 03, f4 f5, f6 f7} is ddf2 with carries folded.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Errorf("Checksum = %#04x, want %#04x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd trailing byte is padded with zero on the right.
	if Checksum([]byte{0xab}) != ^uint16(0xab00) {
		t.Errorf("odd-length checksum wrong: %#04x", Checksum([]byte{0xab}))
	}
}

func TestChecksumEmpty(t *testing.T) {
	if Checksum(nil) != 0xFFFF {
		t.Errorf("empty checksum = %#04x, want 0xffff", Checksum(nil))
	}
}

// Property: appending the checksum of data (as two big-endian bytes) to
// data yields a buffer whose checksum verifies to zero. This is exactly
// how IP header validation works.
func TestChecksumSelfVerifies(t *testing.T) {
	f := func(data []byte) bool {
		// The self-verification property requires even-length data; the
		// protocols here always checksum even-length header regions.
		if len(data)%2 == 1 {
			data = append(data, 0)
		}
		ck := Checksum(data)
		withCk := append(append([]byte(nil), data...), byte(ck>>8), byte(ck))
		return Checksum(withCk) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the checksum is independent of how the data is split across
// the accumulator (linearity of the ones'-complement sum over 16-bit
// aligned boundaries).
func TestChecksumSplitInvariance(t *testing.T) {
	f := func(a, b []byte) bool {
		if len(a)%2 == 1 {
			a = append(a, 0)
		}
		joined := append(append([]byte(nil), a...), b...)
		split := finishChecksum(sumWords(sumWords(0, a), b))
		return Checksum(joined) == split
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPseudoHeaderSum(t *testing.T) {
	src := MustParseAddr("10.0.0.1")
	dst := MustParseAddr("10.0.0.2")
	got := pseudoHeaderSum(src, dst, ProtoUDP, 12)
	want := uint32(0x0a00+0x0001+0x0a00+0x0002) + 17 + 12
	if got != want {
		t.Errorf("pseudoHeaderSum = %#x, want %#x", got, want)
	}
}
