package packet

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// TCPHeaderLen is the length of a TCP header without options.
const TCPHeaderLen = 20

// TCP flag bits, including the two RFC 3168 ECN flags. The study's TCP
// measurement hinges on ECE and CWR: an "ECN-setup SYN" carries SYN|ECE|CWR
// and an "ECN-setup SYN-ACK" carries SYN|ACK|ECE.
const (
	TCPFin uint8 = 1 << 0
	TCPSyn uint8 = 1 << 1
	TCPRst uint8 = 1 << 2
	TCPPsh uint8 = 1 << 3
	TCPAck uint8 = 1 << 4
	TCPUrg uint8 = 1 << 5
	TCPEce uint8 = 1 << 6 // ECN-Echo
	TCPCwr uint8 = 1 << 7 // Congestion Window Reduced
)

// TCPHeader is a decoded TCP header (RFC 793 with the RFC 3168 flags).
type TCPHeader struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
	Urgent  uint16
	// Options holds raw option bytes; Marshal pads them to a multiple of
	// four. The tcpsim package uses only MSS (kind 2).
	Options []byte
}

// Has reports whether all flag bits in mask are set.
func (t *TCPHeader) Has(mask uint8) bool { return t.Flags&mask == mask }

// IsECNSetupSYN reports whether the header is an RFC 3168 ECN-setup SYN:
// SYN with both ECE and CWR, and no ACK.
func (t *TCPHeader) IsECNSetupSYN() bool {
	return t.Has(TCPSyn|TCPEce|TCPCwr) && t.Flags&TCPAck == 0
}

// IsECNSetupSYNACK reports whether the header is an ECN-setup SYN-ACK:
// SYN|ACK with ECE set and CWR clear.
func (t *TCPHeader) IsECNSetupSYNACK() bool {
	return t.Has(TCPSyn|TCPAck|TCPEce) && t.Flags&TCPCwr == 0
}

// MSSOption encodes a maximum-segment-size option (kind 2, length 4).
func MSSOption(mss uint16) []byte {
	return []byte{2, 4, byte(mss >> 8), byte(mss)}
}

// ParseMSS scans TCP options for an MSS option and returns its value.
func ParseMSS(options []byte) (uint16, bool) {
	for i := 0; i < len(options); {
		kind := options[i]
		switch kind {
		case 0: // end of options
			return 0, false
		case 1: // no-op
			i++
		default:
			if i+1 >= len(options) {
				return 0, false
			}
			l := int(options[i+1])
			if l < 2 || i+l > len(options) {
				return 0, false
			}
			if kind == 2 && l == 4 {
				return binary.BigEndian.Uint16(options[i+2:]), true
			}
			i += l
		}
	}
	return 0, false
}

// Marshal appends the TCP header (with padded options) and payload to b,
// computing the checksum over the pseudo-header, and returns the slice.
func (t *TCPHeader) Marshal(b []byte, src, dst Addr, payload []byte) ([]byte, error) {
	optLen := (len(t.Options) + 3) &^ 3
	hdrLen := TCPHeaderLen + optLen
	if hdrLen > 60 {
		return nil, fmt.Errorf("%w: TCP options %d bytes", ErrBadHeaderLen, len(t.Options))
	}
	segLen := hdrLen + len(payload)
	if segLen > 0xFFFF {
		return nil, fmt.Errorf("%w: TCP segment %d bytes", ErrBadTotalLen, segLen)
	}
	off := len(b)
	b = growSlice(b, segLen)
	seg := b[off:]
	copy(seg[hdrLen:], payload)
	binary.BigEndian.PutUint16(seg[0:], t.SrcPort)
	binary.BigEndian.PutUint16(seg[2:], t.DstPort)
	binary.BigEndian.PutUint32(seg[4:], t.Seq)
	binary.BigEndian.PutUint32(seg[8:], t.Ack)
	seg[12] = uint8(hdrLen/4) << 4
	seg[13] = t.Flags
	binary.BigEndian.PutUint16(seg[14:], t.Window)
	seg[16], seg[17] = 0, 0 // checksum computed with field zeroed
	binary.BigEndian.PutUint16(seg[18:], t.Urgent)
	n := copy(seg[TCPHeaderLen:hdrLen], t.Options)
	for i := TCPHeaderLen + n; i < hdrLen; i++ {
		seg[i] = 0 // options pad to a 4-byte boundary with zeros
	}
	binary.BigEndian.PutUint16(seg[16:], transportChecksum(src, dst, ProtoTCP, seg))
	return b, nil
}

// ParseTCP decodes a TCP header from seg (the IPv4 payload), verifying the
// checksum against the pseudo-header, and returns the header and payload.
func ParseTCP(seg []byte, src, dst Addr) (TCPHeader, []byte, error) {
	var t TCPHeader
	if len(seg) < TCPHeaderLen {
		return t, nil, fmt.Errorf("%w: TCP header (%d bytes)", ErrTruncated, len(seg))
	}
	dataOff := int(seg[12]>>4) * 4
	if dataOff < TCPHeaderLen || dataOff > len(seg) {
		return t, nil, fmt.Errorf("%w: TCP data offset %d", ErrBadHeaderLen, dataOff)
	}
	// Sum over the whole segment including the checksum field: valid
	// segments fold to zero.
	if transportChecksum(src, dst, ProtoTCP, seg) != 0 {
		return t, nil, fmt.Errorf("%w: TCP", ErrBadChecksum)
	}
	t.SrcPort = binary.BigEndian.Uint16(seg[0:])
	t.DstPort = binary.BigEndian.Uint16(seg[2:])
	t.Seq = binary.BigEndian.Uint32(seg[4:])
	t.Ack = binary.BigEndian.Uint32(seg[8:])
	t.Flags = seg[13]
	t.Window = binary.BigEndian.Uint16(seg[14:])
	t.Urgent = binary.BigEndian.Uint16(seg[18:])
	if dataOff > TCPHeaderLen {
		t.Options = append([]byte(nil), seg[TCPHeaderLen:dataOff]...)
	}
	return t, seg[dataOff:], nil
}

// FlagNames renders the flag byte as the familiar tcpdump-style list.
func FlagNames(flags uint8) string {
	names := []struct {
		bit  uint8
		name string
	}{
		{TCPSyn, "SYN"}, {TCPAck, "ACK"}, {TCPFin, "FIN"}, {TCPRst, "RST"},
		{TCPPsh, "PSH"}, {TCPUrg, "URG"}, {TCPEce, "ECE"}, {TCPCwr, "CWR"},
	}
	var out []string
	for _, n := range names {
		if flags&n.bit != 0 {
			out = append(out, n.name)
		}
	}
	if len(out) == 0 {
		return "none"
	}
	return strings.Join(out, "|")
}

// String summarises the header.
func (t *TCPHeader) String() string {
	return fmt.Sprintf("TCP %d > %d [%s] seq=%d ack=%d win=%d",
		t.SrcPort, t.DstPort, FlagNames(t.Flags), t.Seq, t.Ack, t.Window)
}
