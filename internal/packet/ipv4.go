package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ecn"
)

// IPv4HeaderLen is the length of an IPv4 header without options. The
// measurement system never emits options, matching the probe traffic in
// the study.
const IPv4HeaderLen = 20

// Errors returned by the IPv4 codec.
var (
	ErrTruncated    = errors.New("packet: truncated")
	ErrBadVersion   = errors.New("packet: not an IPv4 packet")
	ErrBadChecksum  = errors.New("packet: header checksum mismatch")
	ErrBadHeaderLen = errors.New("packet: bad header length")
	ErrBadTotalLen  = errors.New("packet: bad total length")
)

// IPv4Header is a decoded IPv4 header. Fields mirror RFC 791. Options are
// not supported: IHL is always 5.
type IPv4Header struct {
	TOS      uint8 // DSCP (high 6 bits) + ECN (low 2 bits)
	ID       uint16
	Flags    uint8  // 3 bits: reserved, DF, MF
	FragOff  uint16 // 13-bit fragment offset, in 8-byte units
	TTL      uint8
	Protocol Protocol
	Src      Addr
	Dst      Addr
	// TotalLen is filled in by Marshal from the payload length and by the
	// parser from the wire; it is the length of header plus payload.
	TotalLen uint16
}

// IPv4 flag bits.
const (
	FlagDF = 0b010 // don't fragment
	FlagMF = 0b001 // more fragments
)

// ECN returns the ECN codepoint carried in the TOS byte.
func (h *IPv4Header) ECN() ecn.Codepoint { return ecn.FromTOS(h.TOS) }

// SetECN replaces the ECN bits of the TOS byte.
func (h *IPv4Header) SetECN(c ecn.Codepoint) { h.TOS = ecn.SetTOS(h.TOS, c) }

// Marshal appends the 20-byte header for a payload of length payloadLen to
// b, computing the header checksum, and returns the extended slice. The
// header is serialized directly into the destination: when b has spare
// capacity (a pooled buffer), Marshal allocates nothing.
func (h *IPv4Header) Marshal(b []byte, payloadLen int) ([]byte, error) {
	total := IPv4HeaderLen + payloadLen
	if total > 0xFFFF {
		return nil, fmt.Errorf("%w: datagram %d bytes", ErrBadTotalLen, total)
	}
	b = growSlice(b, IPv4HeaderLen)
	h.marshalInto(b[len(b)-IPv4HeaderLen:], uint16(total))
	return b, nil
}

// marshalInto writes the header into hdr, which must be exactly
// IPv4HeaderLen bytes. Every byte is overwritten, so hdr may be
// recycled pool memory.
func (h *IPv4Header) marshalInto(hdr []byte, total uint16) {
	hdr[0] = 4<<4 | 5 // version 4, IHL 5
	hdr[1] = h.TOS
	binary.BigEndian.PutUint16(hdr[2:], total)
	binary.BigEndian.PutUint16(hdr[4:], h.ID)
	binary.BigEndian.PutUint16(hdr[6:], uint16(h.Flags)<<13|h.FragOff&0x1FFF)
	hdr[8] = h.TTL
	hdr[9] = uint8(h.Protocol)
	// checksum at 10:12 computed over the header with the field zeroed
	hdr[10], hdr[11] = 0, 0
	copy(hdr[12:16], h.Src[:])
	copy(hdr[16:20], h.Dst[:])
	binary.BigEndian.PutUint16(hdr[10:], Checksum(hdr[:IPv4HeaderLen]))
}

// ParseIPv4 decodes and validates an IPv4 header from wire bytes,
// returning the header and its payload (a sub-slice of data, not a copy).
// The header checksum is verified; the caller sees only intact packets, as
// a real IP stack would.
func ParseIPv4(data []byte) (IPv4Header, []byte, error) {
	var h IPv4Header
	if len(data) < IPv4HeaderLen {
		return h, nil, fmt.Errorf("%w: IPv4 header (%d bytes)", ErrTruncated, len(data))
	}
	if v := data[0] >> 4; v != 4 {
		return h, nil, fmt.Errorf("%w: version %d", ErrBadVersion, v)
	}
	ihl := int(data[0]&0x0F) * 4
	if ihl != IPv4HeaderLen {
		return h, nil, fmt.Errorf("%w: IHL %d (options unsupported)", ErrBadHeaderLen, ihl)
	}
	total := int(binary.BigEndian.Uint16(data[2:]))
	if total < ihl || total > len(data) {
		return h, nil, fmt.Errorf("%w: total %d of %d available", ErrBadTotalLen, total, len(data))
	}
	if Checksum(data[:ihl]) != 0 {
		return h, nil, ErrBadChecksum
	}
	h.TOS = data[1]
	h.TotalLen = uint16(total)
	h.ID = binary.BigEndian.Uint16(data[4:])
	flagsFrag := binary.BigEndian.Uint16(data[6:])
	h.Flags = uint8(flagsFrag >> 13)
	h.FragOff = flagsFrag & 0x1FFF
	h.TTL = data[8]
	h.Protocol = Protocol(data[9])
	copy(h.Src[:], data[12:16])
	copy(h.Dst[:], data[16:20])
	return h, data[ihl:total], nil
}

// SetWireECN rewrites the ECN bits of a serialized IPv4 packet in place
// and fixes the header checksum with an RFC 1624 incremental update.
// This is the operation an ECN-bleaching middlebox (or a CE-marking AQM
// queue) performs on transit traffic; it is exported so the simulator's
// middleboxes mutate real wire bytes rather than abstract structs.
func SetWireECN(wire []byte, c ecn.Codepoint) error {
	if len(wire) < IPv4HeaderLen {
		return fmt.Errorf("%w: IPv4 header", ErrTruncated)
	}
	oldWord := binary.BigEndian.Uint16(wire[0:]) // version/IHL + TOS word
	wire[1] = ecn.SetTOS(wire[1], c)
	newWord := binary.BigEndian.Uint16(wire[0:])
	// Apply RFC 1624 eq. 3 even when the word is unchanged: the update
	// then degenerates to HC' = ~(~HC + 0xFFFF), which canonicalises a
	// non-canonical all-ones zero checksum exactly as a full recompute
	// would (a corner the wire fuzzer found).
	ck := binary.BigEndian.Uint16(wire[10:])
	binary.BigEndian.PutUint16(wire[10:], incChecksum(ck, oldWord, newWord))
	return nil
}

// DecrementWireTTL decrements the TTL of a serialized IPv4 packet in place
// and incrementally updates the header checksum (RFC 1624), as a
// forwarding router does. It returns the new TTL.
func DecrementWireTTL(wire []byte) (uint8, error) {
	if len(wire) < IPv4HeaderLen {
		return 0, fmt.Errorf("%w: IPv4 header", ErrTruncated)
	}
	if wire[8] == 0 {
		return 0, errors.New("packet: TTL already zero")
	}
	old := binary.BigEndian.Uint16(wire[8:]) // TTL + protocol word
	wire[8]--
	ck := binary.BigEndian.Uint16(wire[10:])
	binary.BigEndian.PutUint16(wire[10:], incChecksum(ck, old, old-0x0100))
	return wire[8], nil
}

// WireECN reads the ECN codepoint straight from serialized IPv4 bytes.
func WireECN(wire []byte) (ecn.Codepoint, error) {
	if len(wire) < 2 {
		return 0, fmt.Errorf("%w: IPv4 header", ErrTruncated)
	}
	return ecn.FromTOS(wire[1]), nil
}

// String summarises the header for logs and test failures.
func (h *IPv4Header) String() string {
	return fmt.Sprintf("IPv4 %s > %s %s ttl=%d tos=%#02x(%s) len=%d",
		h.Src, h.Dst, h.Protocol, h.TTL, h.TOS, h.ECN(), h.TotalLen)
}
