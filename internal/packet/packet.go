// Package packet implements wire-format encoding and decoding of the IPv4,
// UDP, TCP and ICMP headers used throughout the measurement system.
//
// The design follows the layer-oriented style of packet libraries such as
// gopacket: each protocol header is a struct with exported fields, a
// Marshal method that appends canonical wire bytes (computing real
// checksums), and a matching parse function that validates lengths and
// checksums. A Packet ties the decoded layers of one datagram together and
// is what the simulator's routers, hosts and capture taps exchange.
//
// Everything here is genuine wire format: bytes produced by this package
// are byte-for-byte valid IPv4 datagrams, and the decoder accepts real
// traffic. The simulated network forwards these bytes — middleboxes mutate
// the TOS byte in place and routers re-checksum after TTL decrement — so
// the measurement code observes exactly the artefacts a live network
// produces.
package packet

import (
	"fmt"
	"net/netip"
)

// Addr is an IPv4 address in network byte order. A fixed-size array keeps
// it comparable (usable as a map key) and free of allocation.
type Addr [4]byte

// AddrFrom4 builds an Addr from four octets.
func AddrFrom4(a, b, c, d byte) Addr { return Addr{a, b, c, d} }

// ParseAddr parses dotted-quad notation. It rejects anything that is not a
// valid IPv4 address.
func ParseAddr(s string) (Addr, error) {
	ap, err := netip.ParseAddr(s)
	if err != nil {
		return Addr{}, fmt.Errorf("packet: parse addr %q: %w", s, err)
	}
	if !ap.Is4() {
		return Addr{}, fmt.Errorf("packet: addr %q is not IPv4", s)
	}
	return Addr(ap.As4()), nil
}

// MustParseAddr is ParseAddr for tests and tables; it panics on error.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the address in dotted-quad notation.
func (a Addr) String() string {
	return netip.AddrFrom4(a).String()
}

// Uint32 returns the address as a big-endian integer, the form used by the
// prefix tables in the geo and asn packages.
func (a Addr) Uint32() uint32 {
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

// AddrFromUint32 is the inverse of Uint32.
func AddrFromUint32(v uint32) Addr {
	return Addr{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// Less orders addresses numerically; used for stable report output.
func (a Addr) Less(b Addr) bool { return a.Uint32() < b.Uint32() }

// IsZero reports whether a is the zero address 0.0.0.0.
func (a Addr) IsZero() bool { return a == Addr{} }

// MarshalText renders the address as a dotted quad, so JSON datasets and
// map keys serialise readably.
func (a Addr) MarshalText() ([]byte, error) { return []byte(a.String()), nil }

// UnmarshalText parses a dotted quad.
func (a *Addr) UnmarshalText(text []byte) error {
	parsed, err := ParseAddr(string(text))
	if err != nil {
		return err
	}
	*a = parsed
	return nil
}

// Protocol is an IPv4 protocol number.
type Protocol uint8

// Protocol numbers used by the measurement system.
const (
	ProtoICMP Protocol = 1
	ProtoTCP  Protocol = 6
	ProtoUDP  Protocol = 17
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case ProtoICMP:
		return "ICMP"
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}
