package packet

import (
	"testing"
	"testing/quick"

	"repro/internal/ecn"
)

func TestDecodeUDP(t *testing.T) {
	wire, err := BuildUDP(tSrc, tDst, 123, 456, 64, ecn.ECT0, 7, []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if d.UDP == nil || d.TCP != nil || d.ICMP != nil {
		t.Fatal("wrong layer decoded")
	}
	if d.UDP.SrcPort != 123 || string(d.Payload) != "data" {
		t.Errorf("UDP decode: %+v payload=%q", d.UDP, d.Payload)
	}
	if d.IP.ECN() != ecn.ECT0 {
		t.Errorf("ECN = %v", d.IP.ECN())
	}
}

func TestDecodeTCP(t *testing.T) {
	hdr := &TCPHeader{SrcPort: 80, DstPort: 1024, Flags: TCPSyn | TCPAck | TCPEce}
	wire, err := BuildTCP(tDst, tSrc, hdr, 60, ecn.NotECT, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if d.TCP == nil {
		t.Fatal("TCP layer missing")
	}
	if !d.TCP.IsECNSetupSYNACK() {
		t.Error("ECN-setup SYN-ACK not recognised after wire round trip")
	}
}

func TestDecodeICMP(t *testing.T) {
	inner, _ := BuildUDP(tSrc, tDst, 1, 2, 3, ecn.ECT0, 4, nil)
	wire, err := BuildICMP(tDst, tSrc, 64, 9, NewTimeExceeded(inner))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if d.ICMP == nil || d.ICMP.Type != ICMPTimeExceeded {
		t.Fatalf("ICMP decode: %+v", d.ICMP)
	}
}

func TestDecodeUnknownProtocol(t *testing.T) {
	ip := IPv4Header{TTL: 64, Protocol: 47 /* GRE */, Src: tSrc, Dst: tDst}
	wire, _ := ip.Marshal(nil, 0)
	if _, err := Decode(wire); err == nil {
		t.Error("unknown protocol must error")
	}
}

func TestFlowReverse(t *testing.T) {
	f := Flow{Proto: ProtoUDP, Src: tSrc, Dst: tDst, SrcPort: 10, DstPort: 20}
	r := f.Reverse()
	if r.Src != tDst || r.Dst != tSrc || r.SrcPort != 20 || r.DstPort != 10 {
		t.Errorf("Reverse = %+v", r)
	}
	if rr := r.Reverse(); rr != f {
		t.Error("double reverse must be identity")
	}
}

func TestFlowReverseProperty(t *testing.T) {
	f := func(srcRaw, dstRaw uint32, sp, dp uint16) bool {
		fl := Flow{Proto: ProtoTCP, Src: AddrFromUint32(srcRaw), Dst: AddrFromUint32(dstRaw), SrcPort: sp, DstPort: dp}
		return fl.Reverse().Reverse() == fl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlowOf(t *testing.T) {
	wire, _ := BuildUDP(tSrc, tDst, 999, 123, 64, ecn.NotECT, 1, nil)
	d, _ := Decode(wire)
	f := FlowOf(&d)
	want := Flow{Proto: ProtoUDP, Src: tSrc, Dst: tDst, SrcPort: 999, DstPort: 123}
	if f != want {
		t.Errorf("FlowOf = %+v", f)
	}
}

func TestAddrHelpers(t *testing.T) {
	a := MustParseAddr("203.0.113.200")
	if a.String() != "203.0.113.200" {
		t.Errorf("String = %q", a.String())
	}
	if AddrFromUint32(a.Uint32()) != a {
		t.Error("Uint32 round trip failed")
	}
	if !AddrFrom4(1, 0, 0, 0).Less(AddrFrom4(2, 0, 0, 0)) {
		t.Error("Less ordering wrong")
	}
	if (Addr{}).IsZero() != true || a.IsZero() {
		t.Error("IsZero wrong")
	}
	if _, err := ParseAddr("not-an-ip"); err == nil {
		t.Error("bad address accepted")
	}
	if _, err := ParseAddr("2001:db8::1"); err == nil {
		t.Error("IPv6 accepted as IPv4")
	}
}

func TestAddrUint32RoundTripProperty(t *testing.T) {
	f := func(v uint32) bool { return AddrFromUint32(v).Uint32() == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProtocolString(t *testing.T) {
	if ProtoUDP.String() != "UDP" || ProtoTCP.String() != "TCP" || ProtoICMP.String() != "ICMP" {
		t.Error("protocol names wrong")
	}
	if Protocol(99).String() == "" {
		t.Error("unknown protocol should stringify")
	}
}
