package packet

import (
	"encoding/binary"
	"fmt"
)

// UDPHeaderLen is the fixed UDP header length.
const UDPHeaderLen = 8

// UDPHeader is a decoded UDP header (RFC 768).
type UDPHeader struct {
	SrcPort uint16
	DstPort uint16
	// Length is header + payload; set by Marshal and by the parser.
	Length uint16
}

// Marshal appends the UDP header and payload to b, computing the checksum
// over the pseudo-header for the given IP addresses, and returns the
// extended slice.
func (u *UDPHeader) Marshal(b []byte, src, dst Addr, payload []byte) ([]byte, error) {
	segLen := UDPHeaderLen + len(payload)
	if segLen > 0xFFFF {
		return nil, fmt.Errorf("%w: UDP datagram %d bytes", ErrBadTotalLen, segLen)
	}
	u.Length = uint16(segLen)
	off := len(b)
	b = growSlice(b, segLen)
	seg := b[off:]
	copy(seg[UDPHeaderLen:], payload)
	binary.BigEndian.PutUint16(seg[0:], u.SrcPort)
	binary.BigEndian.PutUint16(seg[2:], u.DstPort)
	binary.BigEndian.PutUint16(seg[4:], u.Length)
	seg[6], seg[7] = 0, 0 // checksum field is zero during computation
	ck := transportChecksum(src, dst, ProtoUDP, seg)
	if ck == 0 {
		ck = 0xFFFF // RFC 768: transmitted as all ones if computed zero
	}
	binary.BigEndian.PutUint16(seg[6:], ck)
	return b, nil
}

// ParseUDP decodes a UDP header from seg (the IPv4 payload) and returns
// the header and UDP payload. When src and dst are supplied the checksum
// is verified; a checksum field of zero means "no checksum" per RFC 768
// and is accepted.
func ParseUDP(seg []byte, src, dst Addr) (UDPHeader, []byte, error) {
	var u UDPHeader
	if len(seg) < UDPHeaderLen {
		return u, nil, fmt.Errorf("%w: UDP header (%d bytes)", ErrTruncated, len(seg))
	}
	u.SrcPort = binary.BigEndian.Uint16(seg[0:])
	u.DstPort = binary.BigEndian.Uint16(seg[2:])
	u.Length = binary.BigEndian.Uint16(seg[4:])
	if int(u.Length) < UDPHeaderLen || int(u.Length) > len(seg) {
		return u, nil, fmt.Errorf("%w: UDP length %d of %d", ErrBadTotalLen, u.Length, len(seg))
	}
	body := seg[:u.Length]
	if ck := binary.BigEndian.Uint16(seg[6:]); ck != 0 {
		// Verify by summing the segment including its checksum field: a
		// valid segment folds to zero. This form accepts the RFC 768
		// "computed zero transmitted as all-ones" case transparently.
		if transportChecksum(src, dst, ProtoUDP, body) != 0 {
			return u, nil, fmt.Errorf("%w: UDP", ErrBadChecksum)
		}
	}
	return u, body[UDPHeaderLen:], nil
}

// String summarises the header.
func (u *UDPHeader) String() string {
	return fmt.Sprintf("UDP %d > %d len=%d", u.SrcPort, u.DstPort, u.Length)
}
