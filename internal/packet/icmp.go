package packet

import (
	"encoding/binary"
	"fmt"
)

// ICMP types and codes used by the measurement system. Time-exceeded
// messages carry the quotation that the traceroute analysis inspects.
const (
	ICMPEchoReply        uint8 = 0
	ICMPDestUnreachable  uint8 = 3
	ICMPEchoRequest      uint8 = 8
	ICMPTimeExceeded     uint8 = 11
	ICMPCodeTTLExceeded  uint8 = 0 // time exceeded in transit
	ICMPCodePortUnreach  uint8 = 3
	ICMPCodeAdminProhib  uint8 = 13
	ICMPQuotationMinimum       = IPv4HeaderLen + 8
)

// ICMPHeaderLen is the fixed 8-byte ICMP header (type, code, checksum,
// rest-of-header).
const ICMPHeaderLen = 8

// ICMPMessage is a decoded ICMP message. For error messages (time
// exceeded, destination unreachable) Body holds the quotation: the IP
// header plus at least the first 8 bytes of the offending datagram, per
// RFC 792. For echo, Body is the echo payload and Rest carries the
// identifier and sequence number.
type ICMPMessage struct {
	Type uint8
	Code uint8
	Rest uint32 // unused for errors; id<<16|seq for echo
	Body []byte
}

// Marshal appends the ICMP message to b, computing the checksum, and
// returns the extended slice.
func (m *ICMPMessage) Marshal(b []byte) ([]byte, error) {
	off := len(b)
	b = growSlice(b, ICMPHeaderLen+len(m.Body))
	seg := b[off:]
	copy(seg[ICMPHeaderLen:], m.Body)
	seg[0] = m.Type
	seg[1] = m.Code
	seg[2], seg[3] = 0, 0 // checksum computed with field zeroed
	binary.BigEndian.PutUint32(seg[4:], m.Rest)
	binary.BigEndian.PutUint16(seg[2:], Checksum(seg))
	return b, nil
}

// ParseICMP decodes an ICMP message from seg (the IPv4 payload), verifying
// the checksum.
func ParseICMP(seg []byte) (ICMPMessage, error) {
	var m ICMPMessage
	if len(seg) < ICMPHeaderLen {
		return m, fmt.Errorf("%w: ICMP header (%d bytes)", ErrTruncated, len(seg))
	}
	if Checksum(seg) != 0 {
		return m, fmt.Errorf("%w: ICMP", ErrBadChecksum)
	}
	m.Type = seg[0]
	m.Code = seg[1]
	m.Rest = binary.BigEndian.Uint32(seg[4:])
	m.Body = append([]byte(nil), seg[ICMPHeaderLen:]...)
	return m, nil
}

// Quotation extracts the quoted IPv4 header and the leading bytes of its
// payload from an ICMP error body. This is the heart of the traceroute
// technique used in Section 4.2 of the paper (after Malone & Luckie's
// analysis of ICMP quotations): the sender compares the quoted TOS byte
// with what it originally sent to learn whether a hop upstream of the
// quoting router rewrote the ECN field.
//
// The quoted header's checksum is NOT verified: many routers quote the
// datagram after mutating it (TTL decrement, ECN rewrite) without fixing
// the quoted checksum, and the analysis must accept such quotations.
func (m *ICMPMessage) Quotation() (IPv4Header, []byte, error) {
	if m.Type != ICMPTimeExceeded && m.Type != ICMPDestUnreachable {
		return IPv4Header{}, nil, fmt.Errorf("packet: ICMP type %d carries no quotation", m.Type)
	}
	data := m.Body
	if len(data) < ICMPQuotationMinimum {
		return IPv4Header{}, nil, fmt.Errorf("%w: ICMP quotation (%d bytes)", ErrTruncated, len(data))
	}
	var h IPv4Header
	if v := data[0] >> 4; v != 4 {
		return h, nil, fmt.Errorf("%w: quoted version %d", ErrBadVersion, v)
	}
	ihl := int(data[0]&0x0F) * 4
	if ihl < IPv4HeaderLen || ihl+8 > len(data) {
		return h, nil, fmt.Errorf("%w: quoted IHL %d", ErrBadHeaderLen, ihl)
	}
	h.TOS = data[1]
	h.TotalLen = binary.BigEndian.Uint16(data[2:])
	h.ID = binary.BigEndian.Uint16(data[4:])
	flagsFrag := binary.BigEndian.Uint16(data[6:])
	h.Flags = uint8(flagsFrag >> 13)
	h.FragOff = flagsFrag & 0x1FFF
	h.TTL = data[8]
	h.Protocol = Protocol(data[9])
	copy(h.Src[:], data[12:16])
	copy(h.Dst[:], data[16:20])
	return h, data[ihl:], nil
}

// NewTimeExceeded builds the ICMP time-exceeded message a router emits
// when TTL reaches zero: it quotes the IP header and first eight payload
// bytes of the dropped datagram (RFC 792 requires at least eight; we quote
// exactly the minimum, as many routers do).
func NewTimeExceeded(dropped []byte) ICMPMessage {
	return ICMPMessage{
		Type: ICMPTimeExceeded,
		Code: ICMPCodeTTLExceeded,
		Body: clampQuotation(dropped),
	}
}

// NewDestUnreachable builds an ICMP destination-unreachable message with
// the given code, quoting the offending datagram.
func NewDestUnreachable(code uint8, dropped []byte) ICMPMessage {
	return ICMPMessage{
		Type: ICMPDestUnreachable,
		Code: code,
		Body: clampQuotation(dropped),
	}
}

// clampQuotation copies at most header+8 bytes of the offending datagram.
func clampQuotation(dropped []byte) []byte {
	n := ICMPQuotationMinimum
	if len(dropped) < n {
		n = len(dropped)
	}
	return append([]byte(nil), dropped[:n]...)
}

// String summarises the message.
func (m *ICMPMessage) String() string {
	return fmt.Sprintf("ICMP type=%d code=%d body=%dB", m.Type, m.Code, len(m.Body))
}
