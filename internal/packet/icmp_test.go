package packet

import (
	"bytes"
	"testing"

	"repro/internal/ecn"
)

func TestICMPRoundTrip(t *testing.T) {
	m := ICMPMessage{Type: ICMPEchoRequest, Rest: 0x12340001, Body: []byte("ping body")}
	seg, err := m.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseICMP(seg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.Code != m.Code || got.Rest != m.Rest ||
		!bytes.Equal(got.Body, m.Body) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestICMPChecksum(t *testing.T) {
	m := ICMPMessage{Type: ICMPTimeExceeded}
	seg, _ := m.Marshal(nil)
	seg[1] ^= 0xFF
	if _, err := ParseICMP(seg); err == nil {
		t.Error("corruption undetected")
	}
}

// The central traceroute mechanism: a router builds a time-exceeded
// message quoting a dropped ECT(0) datagram; the sender recovers the
// quoted TOS byte and detects whether the mark survived to that hop.
func TestTimeExceededQuotationCarriesECN(t *testing.T) {
	probe, err := BuildUDP(
		MustParseAddr("192.0.2.1"), MustParseAddr("203.0.113.9"),
		33434, 33435, 1, ecn.ECT0, 777, []byte("probe"))
	if err != nil {
		t.Fatal(err)
	}

	te := NewTimeExceeded(probe)
	seg, _ := te.Marshal(nil)
	parsed, err := ParseICMP(seg)
	if err != nil {
		t.Fatal(err)
	}
	quoted, transport, err := parsed.Quotation()
	if err != nil {
		t.Fatal(err)
	}
	if quoted.ECN() != ecn.ECT0 {
		t.Errorf("quoted ECN = %v, want ECT(0)", quoted.ECN())
	}
	if quoted.Protocol != ProtoUDP {
		t.Errorf("quoted protocol = %v", quoted.Protocol)
	}
	if quoted.ID != 777 {
		t.Errorf("quoted ID = %d", quoted.ID)
	}
	if len(transport) != 8 {
		t.Errorf("quoted transport bytes = %d, want 8", len(transport))
	}
	// First 8 transport bytes are the UDP header: ports recoverable.
	srcPort := uint16(transport[0])<<8 | uint16(transport[1])
	if srcPort != 33434 {
		t.Errorf("quoted src port = %d", srcPort)
	}
}

// A middlebox bleaches the probe before the quoting router: the quotation
// must reveal not-ECT even though the sender transmitted ECT(0).
func TestQuotationAfterBleaching(t *testing.T) {
	probe, _ := BuildUDP(
		MustParseAddr("192.0.2.1"), MustParseAddr("203.0.113.9"),
		33434, 33435, 5, ecn.ECT0, 1, nil)
	if err := SetWireECN(probe, ecn.NotECT); err != nil {
		t.Fatal(err)
	}
	te := NewTimeExceeded(probe)
	quoted, _, err := te.Quotation()
	if err != nil {
		t.Fatal(err)
	}
	if got := ecn.Classify(ecn.ECT0, quoted.ECN()); got != ecn.Bleached {
		t.Errorf("transition = %v, want bleached", got)
	}
}

// Routers commonly quote the datagram after decrementing TTL without
// fixing the quoted checksum; Quotation must tolerate that.
func TestQuotationToleratesStaleChecksum(t *testing.T) {
	probe, _ := BuildUDP(
		MustParseAddr("10.0.0.1"), MustParseAddr("10.0.0.2"),
		1000, 2000, 4, ecn.ECT0, 42, nil)
	probe[8]-- // TTL decrement without checksum fix: quoted bytes now "broken"
	te := NewTimeExceeded(probe)
	if _, _, err := te.Quotation(); err != nil {
		t.Errorf("stale quoted checksum rejected: %v", err)
	}
}

func TestQuotationErrors(t *testing.T) {
	echo := ICMPMessage{Type: ICMPEchoReply}
	if _, _, err := echo.Quotation(); err == nil {
		t.Error("echo must not have a quotation")
	}
	short := ICMPMessage{Type: ICMPTimeExceeded, Body: []byte{1, 2, 3}}
	if _, _, err := short.Quotation(); err == nil {
		t.Error("short quotation accepted")
	}
	v6 := ICMPMessage{Type: ICMPTimeExceeded, Body: make([]byte, 28)}
	v6.Body[0] = 6 << 4
	if _, _, err := v6.Quotation(); err == nil {
		t.Error("non-IPv4 quotation accepted")
	}
}

func TestClampQuotation(t *testing.T) {
	long := make([]byte, 100)
	if n := len(NewTimeExceeded(long).Body); n != ICMPQuotationMinimum {
		t.Errorf("quotation = %d bytes, want %d", n, ICMPQuotationMinimum)
	}
	short := make([]byte, 10)
	if n := len(NewDestUnreachable(ICMPCodePortUnreach, short).Body); n != 10 {
		t.Errorf("short quotation = %d bytes, want 10", n)
	}
}

func TestBuildICMPIsNotECT(t *testing.T) {
	msg := NewTimeExceeded(make([]byte, 28))
	wire, err := BuildICMP(MustParseAddr("10.0.0.1"), MustParseAddr("10.0.0.2"), 64, 9, msg)
	if err != nil {
		t.Fatal(err)
	}
	cp, _ := WireECN(wire)
	if cp != ecn.NotECT {
		t.Errorf("ICMP sent with %v, control traffic must be not-ECT", cp)
	}
}
