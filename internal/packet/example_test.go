package packet_test

import (
	"fmt"

	"repro/internal/ecn"
	"repro/internal/packet"
)

// Building and decoding a complete ECT(0)-marked UDP datagram — the
// probe packet at the heart of the study.
func ExampleBuildUDP() {
	wire, err := packet.BuildUDP(
		packet.MustParseAddr("192.0.2.1"),
		packet.MustParseAddr("203.0.113.9"),
		54321, 123, // src/dst ports (NTP)
		64, ecn.ECT0, 7, []byte("ntp request"))
	if err != nil {
		panic(err)
	}
	d, err := packet.Decode(wire)
	if err != nil {
		panic(err)
	}
	fmt.Println(d.IP.String())
	fmt.Println(d.UDP.String())
	// Output:
	// IPv4 192.0.2.1 > 203.0.113.9 UDP ttl=64 tos=0x02(ECT(0)) len=39
	// UDP 54321 > 123 len=19
}

// Routers rewrite wire bytes in place: a bleaching middlebox resets the
// ECN field and repairs the header checksum.
func ExampleSetWireECN() {
	wire, _ := packet.BuildUDP(
		packet.MustParseAddr("10.0.0.1"), packet.MustParseAddr("10.0.0.2"),
		1, 2, 64, ecn.ECT0, 1, nil)
	_ = packet.SetWireECN(wire, ecn.NotECT)
	cp, _ := packet.WireECN(wire)
	_, _, err := packet.ParseIPv4(wire) // checksum still valid
	fmt.Println(cp, err)
	// Output: not-ECT <nil>
}

// The ECN-setup handshake flags of RFC 3168, as the paper's TCP
// measurement classifies them.
func ExampleTCPHeader_IsECNSetupSYN() {
	syn := packet.TCPHeader{Flags: packet.TCPSyn | packet.TCPEce | packet.TCPCwr}
	synAck := packet.TCPHeader{Flags: packet.TCPSyn | packet.TCPAck | packet.TCPEce}
	fmt.Println(syn.IsECNSetupSYN(), synAck.IsECNSetupSYNACK())
	// Output: true true
}
