package packet

import "sync"

// Buf is a pooled, reference-counted wire buffer: the unit of ownership
// for serialized datagrams on the simulator's hot path. Senders build
// into a Buf, the network layers hand the same Buf from node to node
// (links, AQM queues, routers), and whoever consumes the packet last
// calls Release, returning the backing array to a process-wide pool.
//
// Ownership rules (DESIGN.md §8):
//
//   - A Buf starts with one reference, owned by whoever obtained it
//     (NewBuf, AdoptBuf, or a Build*Buf constructor).
//   - Passing a Buf to netsim.Link.Send or netsim.Node.Receive transfers
//     that reference; the caller must not touch the Buf afterwards.
//   - A holder that needs the bytes beyond the transfer calls Retain
//     first and Release when done.
//   - Release with the last reference recycles the buffer: the bytes may
//     be overwritten by an unrelated packet at any moment after. Code
//     that must keep bytes (capture taps, ICMP quotations) copies them.
//
// Buf is not safe for concurrent use: a packet lives inside exactly one
// shard's single-goroutine simulation. The pool itself is safe to share
// across shards (sync.Pool), which is what lets a campaign's shards
// recycle each other's buffers.
type Buf struct {
	b    []byte
	refs int32
}

// maxPooledCap bounds the backing arrays kept by the pool; oversized
// one-off buffers are left to the garbage collector.
const maxPooledCap = 64 * 1024

// defaultBufCap comfortably holds the simulator's common datagrams
// (NTP, DNS, HTTP segments ≤ MSS+headers) without regrowth.
const defaultBufCap = 2048

var bufPool = sync.Pool{
	New: func() any { return &Buf{b: make([]byte, 0, defaultBufCap)} },
}

// NewBuf returns an empty pooled buffer with one reference.
func NewBuf() *Buf {
	bf := bufPool.Get().(*Buf)
	bf.b = bf.b[:0]
	bf.refs = 1
	return bf
}

// AdoptBuf wraps an existing byte slice as a Buf with one reference.
// The slice's backing array joins the pool when the Buf is released, so
// the caller must relinquish it. Tests and non-hot-path code use this
// to enter the pooled world.
func AdoptBuf(b []byte) *Buf {
	return &Buf{b: b, refs: 1}
}

// Bytes returns the buffer's current contents. The slice is valid only
// while the caller holds a reference.
func (bf *Buf) Bytes() []byte { return bf.b }

// Len returns the number of bytes in the buffer.
func (bf *Buf) Len() int { return len(bf.b) }

// Write appends raw bytes, implementing io.Writer. It never fails.
func (bf *Buf) Write(p []byte) (int, error) {
	bf.b = append(bf.b, p...)
	return len(p), nil
}

// Retain adds a reference and returns bf for chaining.
func (bf *Buf) Retain() *Buf {
	bf.refs++
	return bf
}

// Release drops a reference; the last one returns the buffer to the
// pool. Releasing a nil Buf is a no-op. Over-releasing panics: it means
// two owners think they hold the last reference, which is exactly the
// aliasing bug the refcount exists to catch.
func (bf *Buf) Release() {
	if bf == nil {
		return
	}
	bf.refs--
	switch {
	case bf.refs > 0:
	case bf.refs == 0:
		if cap(bf.b) <= maxPooledCap {
			bufPool.Put(bf)
		}
	default:
		panic("packet: Buf over-released")
	}
}

// growSlice extends b by n uninitialized bytes. Unlike
// append(b, make([]byte, n)...) it never zeroes memory the caller is
// about to overwrite, which is what makes header serialization into a
// recycled buffer allocation-free.
func growSlice(b []byte, n int) []byte {
	if tot := len(b) + n; tot <= cap(b) {
		return b[:tot]
	}
	nb := make([]byte, len(b)+n, (len(b)+n)*2)
	copy(nb, b)
	return nb
}
