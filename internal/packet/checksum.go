package packet

// Checksum computes the Internet checksum (RFC 1071) over data: the ones'
// complement of the ones'-complement sum of the data taken as big-endian
// 16-bit words, with a trailing odd byte padded with zero.
func Checksum(data []byte) uint16 {
	return finishChecksum(sumWords(0, data))
}

// sumWords folds data into an ongoing 32-bit ones'-complement accumulator.
func sumWords(sum uint32, data []byte) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	return sum
}

// finishChecksum folds the carries and complements the accumulator.
func finishChecksum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}

// incChecksum updates an Internet checksum after one 16-bit header word
// changed from old to new, per RFC 1624 equation 3:
//
//	HC' = ~(~HC + ~m + m')
//
// Equation 3 (rather than the withdrawn RFC 1141 form) is required for
// correctness when the updated sum is zero; the wire fuzz tests check
// equivalence against a full recompute for every mutation the
// simulator performs.
func incChecksum(hc, oldWord, newWord uint16) uint16 {
	sum := uint32(^hc&0xFFFF) + uint32(^oldWord&0xFFFF) + uint32(newWord)
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum seeds a checksum accumulator with the IPv4 pseudo-header
// used by the UDP and TCP checksums (RFC 768, RFC 793): source address,
// destination address, zero, protocol, and transport segment length.
func pseudoHeaderSum(src, dst Addr, proto Protocol, segLen int) uint32 {
	var sum uint32
	sum += uint32(src[0])<<8 | uint32(src[1])
	sum += uint32(src[2])<<8 | uint32(src[3])
	sum += uint32(dst[0])<<8 | uint32(dst[1])
	sum += uint32(dst[2])<<8 | uint32(dst[3])
	sum += uint32(proto)
	sum += uint32(segLen)
	return sum
}

// transportChecksum computes the checksum of a UDP datagram or TCP segment
// including its pseudo-header. seg must have its checksum field zeroed.
func transportChecksum(src, dst Addr, proto Protocol, seg []byte) uint16 {
	return finishChecksum(sumWords(pseudoHeaderSum(src, dst, proto, len(seg)), seg))
}
