package packet

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/ecn"
)

// fuzzSeedWires builds the seed corpus: one valid datagram per
// transport, plus variants exercising ECN codepoints and TCP options.
func fuzzSeedWires(tb testing.TB) [][]byte {
	tb.Helper()
	src := MustParseAddr("192.0.2.1")
	dst := MustParseAddr("198.51.100.7")
	var wires [][]byte

	udp, err := BuildUDP(src, dst, 40000, 123, 64, ecn.ECT0, 7, []byte("ntp-ish payload"))
	if err != nil {
		tb.Fatal(err)
	}
	wires = append(wires, udp)

	tcp, err := BuildTCP(src, dst, &TCPHeader{
		SrcPort: 49152, DstPort: 80, Seq: 1000, Ack: 2000,
		Flags: TCPSyn | TCPEce | TCPCwr, Window: 65535,
		Options: MSSOption(1460),
	}, 64, ecn.NotECT, 8, nil)
	if err != nil {
		tb.Fatal(err)
	}
	wires = append(wires, tcp)

	data, err := BuildTCP(src, dst, &TCPHeader{
		SrcPort: 49152, DstPort: 80, Seq: 1001, Ack: 2001,
		Flags: TCPAck | TCPPsh, Window: 65535,
	}, 64, ecn.CE, 9, []byte("GET / HTTP/1.1\r\n\r\n"))
	if err != nil {
		tb.Fatal(err)
	}
	wires = append(wires, data)

	icmp, err := BuildICMP(dst, src, 64, 10, NewTimeExceeded(udp))
	if err != nil {
		tb.Fatal(err)
	}
	wires = append(wires, icmp)
	return wires
}

// FuzzWireRoundTrip feeds arbitrary bytes through the parser and, for
// every input that parses as a valid datagram, checks two properties:
//
//   - Wire mutation equivalence: the RFC 1624 incremental checksum
//     updates used by CE re-marking (SetWireECN) and TTL decrement
//     agree byte-for-byte with a full header recompute.
//   - Round trip: re-serializing the parsed headers over pooled
//     buffers reproduces the original wire bytes (for inputs in the
//     canonical form the simulator emits: DF flag, no fragmentation,
//     DSCP 0, and a present transport checksum).
//
// Run with `go test -fuzz=FuzzWireRoundTrip ./internal/packet` to
// explore; the seed corpus runs on every plain `go test`.
func FuzzWireRoundTrip(f *testing.F) {
	for _, w := range fuzzSeedWires(f) {
		f.Add(w)
	}
	f.Add([]byte{0x45, 0x00})
	f.Add(bytes.Repeat([]byte{0xFF}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		ip, body, err := ParseIPv4(data)
		if err != nil {
			return
		}
		wire := data[:ip.TotalLen]

		checkMarkEquivalence(t, wire)
		checkTTLEquivalence(t, wire)

		// Round-trip only canonical-form packets: the transport
		// builders emit DF + no fragments + DSCP 0 (ICMP: no flags at
		// all) — other inputs are valid wire but cannot be reproduced
		// by Build* by construction.
		if ip.FragOff != 0 || ip.TOS&^0x03 != 0 {
			return
		}
		switch {
		case ip.Protocol == ProtoUDP && ip.Flags == FlagDF:
			roundTripUDP(t, ip, body, wire)
		case ip.Protocol == ProtoTCP && ip.Flags == FlagDF:
			roundTripTCP(t, ip, body, wire)
		case ip.Protocol == ProtoICMP && ip.Flags == 0:
			roundTripICMP(t, ip, body, wire)
		}
	})
}

// checkMarkEquivalence asserts SetWireECN's incremental checksum
// matches a full recompute for every codepoint.
func checkMarkEquivalence(t *testing.T, wire []byte) {
	for _, cp := range []ecn.Codepoint{ecn.CE, ecn.ECT0, ecn.ECT1, ecn.NotECT} {
		inc := append([]byte(nil), wire...)
		if err := SetWireECN(inc, cp); err != nil {
			t.Fatalf("SetWireECN(%v): %v", cp, err)
		}
		full := append([]byte(nil), wire...)
		full[1] = ecn.SetTOS(full[1], cp)
		binary.BigEndian.PutUint16(full[10:], 0)
		binary.BigEndian.PutUint16(full[10:], Checksum(full[:IPv4HeaderLen]))
		if !bytes.Equal(inc, full) {
			t.Errorf("SetWireECN(%v): incremental %x != full recompute %x", cp, inc[:IPv4HeaderLen], full[:IPv4HeaderLen])
		}
		if Checksum(inc[:IPv4HeaderLen]) != 0 {
			t.Errorf("SetWireECN(%v): resulting header checksum invalid", cp)
		}
	}
}

// checkTTLEquivalence asserts DecrementWireTTL's incremental checksum
// matches a full recompute.
func checkTTLEquivalence(t *testing.T, wire []byte) {
	if wire[8] == 0 {
		return
	}
	inc := append([]byte(nil), wire...)
	if _, err := DecrementWireTTL(inc); err != nil {
		t.Fatalf("DecrementWireTTL: %v", err)
	}
	full := append([]byte(nil), wire...)
	full[8]--
	binary.BigEndian.PutUint16(full[10:], 0)
	binary.BigEndian.PutUint16(full[10:], Checksum(full[:IPv4HeaderLen]))
	if !bytes.Equal(inc, full) {
		t.Errorf("DecrementWireTTL: incremental %x != full recompute %x", inc[:IPv4HeaderLen], full[:IPv4HeaderLen])
	}
}

func roundTripUDP(t *testing.T, ip IPv4Header, body, wire []byte) {
	u, payload, err := ParseUDP(body, ip.Src, ip.Dst)
	if err != nil {
		return
	}
	// Zero checksum means "no checksum" (RFC 768); Build always computes
	// one, so those datagrams cannot round-trip bit-exactly. Trailing
	// bytes beyond the UDP length are likewise not reproduced.
	if binary.BigEndian.Uint16(body[6:]) == 0 || int(u.Length) != len(body) {
		return
	}
	bf, err := BuildUDPBuf(ip.Src, ip.Dst, u.SrcPort, u.DstPort, ip.TTL, ip.ECN(), ip.ID, payload)
	if err != nil {
		t.Fatalf("rebuild UDP: %v", err)
	}
	defer bf.Release()
	if !bytes.Equal(bf.Bytes(), wire) {
		t.Errorf("UDP round trip differs:\n got %x\nwant %x", bf.Bytes(), wire)
	}
}

func roundTripTCP(t *testing.T, ip IPv4Header, body, wire []byte) {
	hdr, payload, err := ParseTCP(body, ip.Src, ip.Dst)
	if err != nil {
		return
	}
	// 0xFFFF is the non-canonical ones'-complement encoding of a zero
	// checksum: the verifier accepts it (the segment still sums to
	// zero) but Marshal always emits the canonical 0x0000, so such
	// inputs cannot round-trip bit-exactly. Found by the fuzzer.
	if binary.BigEndian.Uint16(body[16:]) == 0xFFFF {
		return
	}
	// Reserved bits in the data-offset byte (RFC 793: must be zero)
	// are discarded by the parser, so inputs carrying them are not
	// canonical output. Also found by the fuzzer.
	if body[12]&0x0F != 0 {
		return
	}
	bf, err := BuildTCPBuf(ip.Src, ip.Dst, &hdr, ip.TTL, ip.ECN(), ip.ID, payload)
	if err != nil {
		t.Fatalf("rebuild TCP: %v", err)
	}
	defer bf.Release()
	if !bytes.Equal(bf.Bytes(), wire) {
		t.Errorf("TCP round trip differs:\n got %x\nwant %x", bf.Bytes(), wire)
	}
}

func roundTripICMP(t *testing.T, ip IPv4Header, body, wire []byte) {
	msg, err := ParseICMP(body)
	if err != nil {
		return
	}
	// As with TCP, 0xFFFF can be a verifiable non-canonical encoding
	// of a zero ICMP checksum; Marshal emits the canonical form.
	if binary.BigEndian.Uint16(body[2:]) == 0xFFFF {
		return
	}
	// Build* sends ICMP not-ECT with no DF; a DF-flagged or ECN-marked
	// ICMP input (accepted by the parser) is not canonical output.
	bf, err := BuildICMPBuf(ip.Src, ip.Dst, ip.TTL, ip.ID, msg)
	if err != nil {
		t.Fatalf("rebuild ICMP: %v", err)
	}
	defer bf.Release()
	rebuilt := bf.Bytes()
	// BuildICMP emits TOS 0 and no DF; the canonical-form gate above
	// already filtered DSCP, but ECN bits and flags may still differ.
	if ip.ECN() != ecn.NotECT {
		return
	}
	if !bytes.Equal(rebuilt, wire) {
		t.Errorf("ICMP round trip differs:\n got %x\nwant %x", rebuilt, wire)
	}
}
