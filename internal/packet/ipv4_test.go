package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ecn"
)

func sampleIPv4() IPv4Header {
	return IPv4Header{
		TOS:      ecn.SetTOS(0, ecn.ECT0),
		ID:       0xBEEF,
		Flags:    FlagDF,
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      MustParseAddr("192.0.2.1"),
		Dst:      MustParseAddr("198.51.100.7"),
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	h := sampleIPv4()
	payload := []byte("ntp request bytes here..")
	wire, err := h.Marshal(nil, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	wire = append(wire, payload...)

	got, body, err := ParseIPv4(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, payload) {
		t.Errorf("payload mismatch: %q", body)
	}
	if got.Src != h.Src || got.Dst != h.Dst || got.TTL != h.TTL ||
		got.Protocol != h.Protocol || got.TOS != h.TOS || got.ID != h.ID ||
		got.Flags != h.Flags {
		t.Errorf("header mismatch:\n got %+v\nwant %+v", got, h)
	}
	if int(got.TotalLen) != IPv4HeaderLen+len(payload) {
		t.Errorf("TotalLen = %d", got.TotalLen)
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	h := sampleIPv4()
	wire, err := h.Marshal(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if Checksum(wire[:IPv4HeaderLen]) != 0 {
		t.Error("marshalled header does not self-verify")
	}
}

func TestParseIPv4Errors(t *testing.T) {
	h := sampleIPv4()
	wire, _ := h.Marshal(nil, 0)

	t.Run("truncated", func(t *testing.T) {
		if _, _, err := ParseIPv4(wire[:10]); err == nil {
			t.Error("want error for short header")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte(nil), wire...)
		bad[0] = 6<<4 | 5
		if _, _, err := ParseIPv4(bad); err == nil {
			t.Error("want error for version 6")
		}
	})
	t.Run("corrupt checksum", func(t *testing.T) {
		bad := append([]byte(nil), wire...)
		bad[10] ^= 0xFF
		if _, _, err := ParseIPv4(bad); err == nil {
			t.Error("want checksum error")
		}
	})
	t.Run("bit flip detected", func(t *testing.T) {
		bad := append([]byte(nil), wire...)
		bad[8] ^= 0x01 // TTL
		if _, _, err := ParseIPv4(bad); err == nil {
			t.Error("single bit flip must fail checksum")
		}
	})
	t.Run("total length too large", func(t *testing.T) {
		bad := append([]byte(nil), wire...)
		bad[2], bad[3] = 0xFF, 0xFF
		if _, _, err := ParseIPv4(bad); err == nil {
			t.Error("want total length error")
		}
	})
	t.Run("options unsupported", func(t *testing.T) {
		bad := append([]byte(nil), wire...)
		bad[0] = 4<<4 | 6
		if _, _, err := ParseIPv4(bad); err == nil {
			t.Error("want IHL error")
		}
	})
}

// Property: Marshal/Parse round-trips arbitrary valid headers.
func TestIPv4RoundTripProperty(t *testing.T) {
	f := func(tos uint8, id uint16, ttl uint8, srcRaw, dstRaw uint32, plen uint8) bool {
		h := IPv4Header{
			TOS:      tos,
			ID:       id,
			TTL:      ttl,
			Flags:    FlagDF,
			Protocol: ProtoUDP,
			Src:      AddrFromUint32(srcRaw),
			Dst:      AddrFromUint32(dstRaw),
		}
		wire, err := h.Marshal(nil, int(plen))
		if err != nil {
			return false
		}
		wire = append(wire, make([]byte, plen)...)
		got, body, err := ParseIPv4(wire)
		if err != nil {
			return false
		}
		return got.TOS == tos && got.ID == id && got.TTL == ttl &&
			got.Src == h.Src && got.Dst == h.Dst && len(body) == int(plen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSetWireECN(t *testing.T) {
	h := sampleIPv4()
	h.TOS = ecn.SetTOS(0b1011_0100, ecn.ECT0) // DSCP bits set too
	wire, _ := h.Marshal(nil, 0)

	if err := SetWireECN(wire, ecn.NotECT); err != nil {
		t.Fatal(err)
	}
	got, _, err := ParseIPv4(wire)
	if err != nil {
		t.Fatalf("checksum not fixed after rewrite: %v", err)
	}
	if got.ECN() != ecn.NotECT {
		t.Errorf("ECN = %v after bleach", got.ECN())
	}
	if got.TOS&^ecn.Mask != 0b1011_0100 {
		t.Errorf("DSCP bits disturbed: TOS=%#02x", got.TOS)
	}
}

func TestDecrementWireTTL(t *testing.T) {
	h := sampleIPv4()
	h.TTL = 3
	wire, _ := h.Marshal(nil, 0)

	for want := uint8(2); ; want-- {
		ttl, err := DecrementWireTTL(wire)
		if err != nil {
			t.Fatal(err)
		}
		if ttl != want {
			t.Fatalf("TTL = %d, want %d", ttl, want)
		}
		if _, _, err := ParseIPv4(wire); err != nil {
			t.Fatalf("checksum broken after decrement: %v", err)
		}
		if want == 0 {
			break
		}
	}
	if _, err := DecrementWireTTL(wire); err == nil {
		t.Error("decrement past zero must fail")
	}
}

func TestWireECN(t *testing.T) {
	h := sampleIPv4()
	for _, cp := range []ecn.Codepoint{ecn.NotECT, ecn.ECT0, ecn.ECT1, ecn.CE} {
		h.SetECN(cp)
		wire, _ := h.Marshal(nil, 0)
		got, err := WireECN(wire)
		if err != nil {
			t.Fatal(err)
		}
		if got != cp {
			t.Errorf("WireECN = %v, want %v", got, cp)
		}
	}
	if _, err := WireECN([]byte{0}); err == nil {
		t.Error("want truncation error")
	}
}

// Fuzz-ish robustness: the parser must never panic on random input.
func TestParseIPv4NoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, 64)
	for i := 0; i < 5000; i++ {
		n := rng.Intn(len(buf))
		rng.Read(buf[:n])
		ParseIPv4(buf[:n]) // must not panic; errors are fine
	}
}

func TestIPv4String(t *testing.T) {
	h := sampleIPv4()
	s := h.String()
	for _, want := range []string{"192.0.2.1", "198.51.100.7", "UDP", "ECT(0)"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
