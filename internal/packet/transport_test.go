package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

var (
	tSrc = MustParseAddr("10.1.2.3")
	tDst = MustParseAddr("10.9.8.7")
)

func TestUDPRoundTrip(t *testing.T) {
	u := UDPHeader{SrcPort: 54321, DstPort: 123}
	payload := bytes.Repeat([]byte{0xA5}, 48) // NTP-sized
	seg, err := u.Marshal(nil, tSrc, tDst, payload)
	if err != nil {
		t.Fatal(err)
	}
	got, body, err := ParseUDP(seg, tSrc, tDst)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 54321 || got.DstPort != 123 {
		t.Errorf("ports = %d,%d", got.SrcPort, got.DstPort)
	}
	if !bytes.Equal(body, payload) {
		t.Error("payload mismatch")
	}
	if int(got.Length) != UDPHeaderLen+len(payload) {
		t.Errorf("length = %d", got.Length)
	}
}

func TestUDPChecksumDetectsCorruption(t *testing.T) {
	u := UDPHeader{SrcPort: 1, DstPort: 2}
	seg, _ := u.Marshal(nil, tSrc, tDst, []byte("hello, world"))
	for _, bit := range []int{0, 3, 9, len(seg) - 1} {
		bad := append([]byte(nil), seg...)
		bad[bit] ^= 0x40
		if _, _, err := ParseUDP(bad, tSrc, tDst); err == nil {
			t.Errorf("corruption at byte %d undetected", bit)
		}
	}
}

func TestUDPChecksumBindsAddresses(t *testing.T) {
	u := UDPHeader{SrcPort: 1, DstPort: 2}
	seg, _ := u.Marshal(nil, tSrc, tDst, []byte("x"))
	// Same bytes parsed against a different pseudo-header must fail: the
	// checksum covers src/dst addresses.
	if _, _, err := ParseUDP(seg, tSrc, MustParseAddr("10.9.8.8")); err == nil {
		t.Error("checksum did not bind destination address")
	}
}

func TestUDPZeroChecksumAccepted(t *testing.T) {
	u := UDPHeader{SrcPort: 7, DstPort: 9}
	seg, _ := u.Marshal(nil, tSrc, tDst, []byte("abc"))
	seg[6], seg[7] = 0, 0 // RFC 768: zero means "no checksum"
	if _, _, err := ParseUDP(seg, tSrc, tDst); err != nil {
		t.Errorf("zero checksum rejected: %v", err)
	}
}

func TestUDPAllOnesChecksumRule(t *testing.T) {
	// Find a payload whose computed checksum is zero; RFC 768 requires it
	// be transmitted as 0xFFFF. Construct directly: checksum of the
	// segment+pseudo-header must be 0 → brute-force a two-byte payload.
	for x := 0; x < 1<<16; x++ {
		u := UDPHeader{SrcPort: 0, DstPort: 0}
		payload := []byte{byte(x >> 8), byte(x)}
		seg, err := u.Marshal(nil, tSrc, tDst, payload)
		if err != nil {
			t.Fatal(err)
		}
		ck := uint16(seg[6])<<8 | uint16(seg[7])
		if ck == 0 {
			t.Fatal("marshalled checksum must never be zero")
		}
		if ck == 0xFFFF {
			// Verify it still parses.
			if _, _, err := ParseUDP(seg, tSrc, tDst); err != nil {
				t.Fatalf("all-ones checksum rejected: %v", err)
			}
			return
		}
	}
	t.Skip("no zero-checksum payload found in search space")
}

func TestUDPTruncated(t *testing.T) {
	if _, _, err := ParseUDP([]byte{1, 2, 3}, tSrc, tDst); err == nil {
		t.Error("want truncation error")
	}
	// Length field larger than the segment.
	u := UDPHeader{SrcPort: 5, DstPort: 6}
	seg, _ := u.Marshal(nil, tSrc, tDst, []byte("abcdef"))
	seg[4], seg[5] = 0xFF, 0xFF
	if _, _, err := ParseUDP(seg, tSrc, tDst); err == nil {
		t.Error("want bad length error")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	hdr := TCPHeader{
		SrcPort: 44000,
		DstPort: 80,
		Seq:     0xDEADBEEF,
		Ack:     0x01020304,
		Flags:   TCPSyn | TCPEce | TCPCwr,
		Window:  65535,
		Options: MSSOption(1460),
	}
	payload := []byte("GET / HTTP/1.1\r\n\r\n")
	seg, err := hdr.Marshal(nil, tSrc, tDst, payload)
	if err != nil {
		t.Fatal(err)
	}
	got, body, err := ParseTCP(seg, tSrc, tDst)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != hdr.SrcPort || got.DstPort != hdr.DstPort ||
		got.Seq != hdr.Seq || got.Ack != hdr.Ack || got.Flags != hdr.Flags ||
		got.Window != hdr.Window {
		t.Errorf("header mismatch: %+v", got)
	}
	if !bytes.Equal(body, payload) {
		t.Error("payload mismatch")
	}
	if mss, ok := ParseMSS(got.Options); !ok || mss != 1460 {
		t.Errorf("MSS = %d,%v", mss, ok)
	}
}

func TestTCPEcnSetupPredicates(t *testing.T) {
	cases := []struct {
		flags   uint8
		syn     bool
		synack  bool
		comment string
	}{
		{TCPSyn | TCPEce | TCPCwr, true, false, "ECN-setup SYN"},
		{TCPSyn, false, false, "plain SYN"},
		{TCPSyn | TCPEce, false, false, "SYN+ECE only is not ECN-setup"},
		{TCPSyn | TCPAck | TCPEce, false, true, "ECN-setup SYN-ACK"},
		{TCPSyn | TCPAck, false, false, "plain SYN-ACK"},
		{TCPSyn | TCPAck | TCPEce | TCPCwr, false, false, "SYN-ACK with CWR is not ECN-setup"},
		{TCPSyn | TCPAck | TCPEce | TCPCwr | TCPFin, false, false, "junk flags"},
	}
	for _, c := range cases {
		h := TCPHeader{Flags: c.flags}
		if h.IsECNSetupSYN() != c.syn {
			t.Errorf("%s: IsECNSetupSYN = %v", c.comment, h.IsECNSetupSYN())
		}
		if h.IsECNSetupSYNACK() != c.synack {
			t.Errorf("%s: IsECNSetupSYNACK = %v", c.comment, h.IsECNSetupSYNACK())
		}
	}
}

func TestTCPChecksumDetectsCorruption(t *testing.T) {
	hdr := TCPHeader{SrcPort: 1, DstPort: 2, Flags: TCPAck}
	seg, _ := hdr.Marshal(nil, tSrc, tDst, []byte("payload"))
	bad := append([]byte(nil), seg...)
	bad[13] ^= TCPEce // flip a flag: must be detected
	if _, _, err := ParseTCP(bad, tSrc, tDst); err == nil {
		t.Error("flag corruption undetected")
	}
}

func TestTCPOptionPadding(t *testing.T) {
	hdr := TCPHeader{SrcPort: 1, DstPort: 2, Flags: TCPSyn, Options: []byte{2, 4, 5}}
	// 3 option bytes must pad to 4; data offset 6 words.
	seg, err := hdr.Marshal(nil, tSrc, tDst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seg) != 24 {
		t.Fatalf("segment length = %d, want 24", len(seg))
	}
	if seg[12]>>4 != 6 {
		t.Errorf("data offset = %d words", seg[12]>>4)
	}
}

func TestTCPOptionsTooLong(t *testing.T) {
	hdr := TCPHeader{Options: make([]byte, 44)}
	if _, err := hdr.Marshal(nil, tSrc, tDst, nil); err == nil {
		t.Error("want options-too-long error")
	}
}

func TestParseMSSEdgeCases(t *testing.T) {
	if _, ok := ParseMSS(nil); ok {
		t.Error("nil options should have no MSS")
	}
	if _, ok := ParseMSS([]byte{0}); ok {
		t.Error("EOL should terminate scan")
	}
	if mss, ok := ParseMSS([]byte{1, 1, 2, 4, 0x12, 0x34}); !ok || mss != 0x1234 {
		t.Errorf("NOP-prefixed MSS = %#x,%v", mss, ok)
	}
	if _, ok := ParseMSS([]byte{2, 4, 0x12}); ok {
		t.Error("truncated MSS accepted")
	}
	if _, ok := ParseMSS([]byte{3, 1}); ok {
		t.Error("option with bad length accepted")
	}
	if _, ok := ParseMSS([]byte{3, 3, 0, 2, 4}); ok {
		t.Error("trailing truncated option accepted")
	}
}

// Property: TCP headers round-trip through marshal/parse.
func TestTCPRoundTripProperty(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win uint16, plen uint8) bool {
		hdr := TCPHeader{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: flags, Window: win}
		payload := make([]byte, plen)
		seg, err := hdr.Marshal(nil, tSrc, tDst, payload)
		if err != nil {
			return false
		}
		got, body, err := ParseTCP(seg, tSrc, tDst)
		if err != nil {
			return false
		}
		return got.SrcPort == sp && got.DstPort == dp && got.Seq == seq &&
			got.Ack == ack && got.Flags == flags && got.Window == win &&
			len(body) == int(plen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseTransportNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	buf := make([]byte, 80)
	for i := 0; i < 5000; i++ {
		n := rng.Intn(len(buf))
		rng.Read(buf[:n])
		ParseUDP(buf[:n], tSrc, tDst)
		ParseTCP(buf[:n], tSrc, tDst)
		ParseICMP(buf[:n])
	}
}

func TestFlagNames(t *testing.T) {
	if s := FlagNames(TCPSyn | TCPEce | TCPCwr); s != "SYN|ECE|CWR" {
		t.Errorf("FlagNames = %q", s)
	}
	if s := FlagNames(0); s != "none" {
		t.Errorf("FlagNames(0) = %q", s)
	}
}
