package rtp

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/packet"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Marker: true, PayloadType: 96, Seq: 1234, Timestamp: 0xDEADBEEF, SSRC: 0xCAFEBABE}
	payload := []byte("media slice")
	wire := h.Marshal(nil, payload)
	got, body, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("header = %+v", got)
	}
	if string(body) != "media slice" {
		t.Errorf("payload = %q", body)
	}
	// Wire shape: version 2 in the top bits, marker+PT in byte 1.
	if wire[0] != 0x80 {
		t.Errorf("first byte = %#02x", wire[0])
	}
	if wire[1] != 0x80|96 {
		t.Errorf("second byte = %#02x", wire[1])
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(marker bool, pt uint8, seq uint16, ts, ssrc uint32, plen uint8) bool {
		h := Header{Marker: marker, PayloadType: pt & 0x7F, Seq: seq, Timestamp: ts, SSRC: ssrc}
		got, body, err := Parse(h.Marshal(nil, make([]byte, plen)))
		return err == nil && got == h && len(body) == int(plen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseRejects(t *testing.T) {
	if _, _, err := Parse([]byte{0x80, 0}); err == nil {
		t.Error("short packet accepted")
	}
	bad := Header{}.MarshalBad()
	if _, _, err := Parse(bad); err == nil {
		t.Error("wrong version accepted")
	}
	// CSRC count != 0 rejected.
	h := Header{}
	wire := h.Marshal(nil, nil)
	wire[0] |= 0x03
	if _, _, err := Parse(wire); err == nil {
		t.Error("CSRC packet accepted")
	}
}

// MarshalBad builds a version-1 packet for the negative test.
func (h Header) MarshalBad() []byte {
	w := h.Marshal(nil, nil)
	w[0] = 1 << 6
	return w
}

func TestFeedbackRoundTrip(t *testing.T) {
	fb := Feedback{SSRC: 7, Seq: 9, ECT0: 100, ECT1: 1, CE: 5, NotECT: 2, Lost: 3, HighSeq: 4242}
	wire := fb.Marshal(nil)
	if !IsFeedback(wire) {
		t.Fatal("feedback not recognised")
	}
	got, err := ParseFeedback(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got != fb {
		t.Errorf("feedback = %+v", got)
	}
	if IsFeedback([]byte{0, 1}) {
		t.Error("garbage recognised as feedback")
	}
	if _, err := ParseFeedback(wire[:10]); err == nil {
		t.Error("short feedback accepted")
	}
}

// mediaFixture wires sender — r1 — r2 — receiver.
type mediaFixture struct {
	sim      *netsim.Sim
	sender   *netsim.Host
	receiver *netsim.Host
	r1, r2   *netsim.Router
}

func newMediaFixture(t *testing.T, seed int64) *mediaFixture {
	t.Helper()
	sim := netsim.NewSim(seed)
	n := netsim.NewNetwork(sim)
	r1 := n.AddRouter("r1", packet.AddrFrom4(10, 255, 0, 1), 64500)
	r2 := n.AddRouter("r2", packet.AddrFrom4(10, 255, 1, 1), 64501)
	n.Connect(r1, r2, 5*time.Millisecond, 0)
	a, _ := n.AddHost("sender", packet.AddrFrom4(10, 0, 0, 1))
	b, _ := n.AddHost("receiver", packet.AddrFrom4(10, 0, 1, 1))
	n.Attach(a, r1, time.Millisecond, 0)
	n.Attach(b, r2, time.Millisecond, 0)
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	return &mediaFixture{sim: sim, sender: a, receiver: b, r1: r1, r2: r2}
}

func TestMediaSessionCleanPath(t *testing.T) {
	f := newMediaFixture(t, 1)
	recv, err := NewReceiver(f.receiver, 5004, 42)
	if err != nil {
		t.Fatal(err)
	}
	snd, err := NewSender(f.sender, f.receiver.Addr(), 5004, SenderConfig{SSRC: 42, UseECN: true})
	if err != nil {
		t.Fatal(err)
	}
	var stats SenderStats
	snd.Start(5*time.Second, func(s SenderStats) { stats = s })
	f.sim.Run()

	rs := recv.Stats()
	if rs.PacketsReceived != stats.PacketsSent {
		t.Errorf("received %d of %d on a clean path", rs.PacketsReceived, stats.PacketsSent)
	}
	if rs.ECT0 != rs.PacketsReceived {
		t.Errorf("ECT0 arrivals = %d of %d", rs.ECT0, rs.PacketsReceived)
	}
	if rs.CE != 0 || rs.Lost != 0 {
		t.Errorf("CE/loss on clean path: %d/%d", rs.CE, rs.Lost)
	}
	if stats.RateDecreases != 0 {
		t.Errorf("rate decreased %d times without congestion", stats.RateDecreases)
	}
	// Additive increase must have pushed the rate up.
	if stats.FinalRate <= 64_000 {
		t.Errorf("final rate = %.0f, want growth", stats.FinalRate)
	}
}

func TestMediaSessionCEMarking(t *testing.T) {
	f := newMediaFixture(t, 2)
	// A congested AQM hop CE-marks 20% of ECT packets.
	f.r2.AddPolicy(&middlebox.CEMarker{Probability: 0.2, RNG: f.sim.RNG()})

	recv, _ := NewReceiver(f.receiver, 5004, 42)
	snd, _ := NewSender(f.sender, f.receiver.Addr(), 5004, SenderConfig{SSRC: 42, UseECN: true})
	var stats SenderStats
	snd.Start(5*time.Second, func(s SenderStats) { stats = s })
	f.sim.Run()

	rs := recv.Stats()
	if rs.CE == 0 {
		t.Fatal("no CE marks observed")
	}
	// Crucially: congestion signalled WITHOUT loss.
	if rs.Lost != 0 {
		t.Errorf("lost %d packets despite ECN signalling", rs.Lost)
	}
	if stats.RateDecreases == 0 {
		t.Error("sender never reacted to CE")
	}
	if stats.MinRateObserved >= 64_000 {
		t.Errorf("rate never dropped below initial: %.0f", stats.MinRateObserved)
	}
	if rs.PacketsReceived != stats.PacketsSent {
		t.Errorf("delivery gap: %d of %d", rs.PacketsReceived, stats.PacketsSent)
	}
}

func TestMediaSessionLossPath(t *testing.T) {
	// The counterfactual: same congestion expressed as loss (no ECN).
	f := newMediaFixture(t, 3)
	f.receiver.Uplink().SetLoss(f.r2, 0.2) // drop toward receiver

	recv, _ := NewReceiver(f.receiver, 5004, 42)
	snd, _ := NewSender(f.sender, f.receiver.Addr(), 5004, SenderConfig{SSRC: 42, UseECN: false})
	var stats SenderStats
	snd.Start(5*time.Second, func(s SenderStats) { stats = s })
	f.sim.Run()

	rs := recv.Stats()
	if rs.Lost == 0 {
		t.Fatal("no loss observed on a lossy path")
	}
	if rs.PacketsReceived >= stats.PacketsSent {
		t.Error("every packet delivered despite loss")
	}
	if stats.RateDecreases == 0 {
		t.Error("sender never reacted to loss feedback")
	}
	// Media arrived not-ECT: the session did not request ECN.
	if rs.ECT0 != 0 || rs.NotECT == 0 {
		t.Errorf("codepoints: ect0=%d notect=%d", rs.ECT0, rs.NotECT)
	}
}

func TestMediaSessionBleachedPath(t *testing.T) {
	// A bleacher strips ECT(0): media still flows, but the congestion
	// channel is gone (CE can never be signalled) — the operational
	// consequence of the paper's §4.2 findings.
	f := newMediaFixture(t, 4)
	f.r1.AddPolicy(&middlebox.ECNBleacher{Probability: 1})
	f.r2.AddPolicy(&middlebox.CEMarker{Probability: 0.2, RNG: f.sim.RNG()})

	recv, _ := NewReceiver(f.receiver, 5004, 42)
	snd, _ := NewSender(f.sender, f.receiver.Addr(), 5004, SenderConfig{SSRC: 42, UseECN: true})
	var stats SenderStats
	snd.Start(3*time.Second, func(s SenderStats) { stats = s })
	f.sim.Run()

	rs := recv.Stats()
	if rs.PacketsReceived == 0 {
		t.Fatal("bleached path blocked media entirely")
	}
	if rs.CE != 0 {
		t.Error("CE marks survived a bleacher (CEMarker only marks ECT packets)")
	}
	if rs.NotECT != rs.PacketsReceived {
		t.Errorf("arrivals not fully bleached: notECT %d of %d", rs.NotECT, rs.PacketsReceived)
	}
	if stats.RateDecreases != 0 {
		t.Error("sender reacted to congestion it could never see")
	}
}

func TestReceiverIgnoresWrongSSRC(t *testing.T) {
	f := newMediaFixture(t, 5)
	recv, _ := NewReceiver(f.receiver, 5004, 42)
	snd, _ := NewSender(f.sender, f.receiver.Addr(), 5004, SenderConfig{SSRC: 99, UseECN: false})
	snd.Start(time.Second, func(SenderStats) {})
	f.sim.Run()
	if recv.Stats().PacketsReceived != 0 {
		t.Error("receiver accepted media for a foreign SSRC")
	}
}

func TestReceiverStop(t *testing.T) {
	f := newMediaFixture(t, 6)
	recv, _ := NewReceiver(f.receiver, 5004, 42)
	recv.Stop()
	// Port must be rebindable after Stop.
	if _, err := f.receiver.BindUDP(5004, nil); err != nil {
		t.Errorf("port not released: %v", err)
	}
	f.sim.Run() // feedback timer must not fire after Stop
}
