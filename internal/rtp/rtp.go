// Package rtp implements the media-transport use case that motivates
// the paper: RTP over UDP with ECN, as WebRTC uses it (RFC 3550 packet
// format, RFC 6679-style ECN feedback, and a NADA-flavoured sender rate
// controller that reacts to CE marks).
//
// The paper's introduction argues ECN matters for interactive media
// because routers can signal congestion *before* dropping packets:
// lower queue occupancy, lower latency, no visible glitches. Its
// conclusion leaves open "whether the use of ECN with UDP offers any
// benefit". This package, together with examples/rtp-ecn, makes that
// question executable on the simulated network: a media session across
// a CE-marking (AQM) hop adapts its rate without losing packets, while
// the same session across a loss-based hop pays in dropped frames.
//
// Scope: enough of RTP for measurement work — the fixed header, a
// compact ECN feedback report (modelled on RFC 6679's RTCP XR ECN
// summary), and sender/receiver endpoints for the simulator. No
// payload formats, no full RTCP stack.
package rtp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the RTP protocol version (RFC 3550 §5.1).
const Version = 2

// HeaderLen is the fixed RTP header length without CSRCs.
const HeaderLen = 12

// Errors returned by the codec.
var (
	ErrTruncated  = errors.New("rtp: packet too short")
	ErrBadVersion = errors.New("rtp: wrong version")
)

// Header is the fixed RTP header. CSRC lists, padding and extensions
// are not used by the measurement sessions.
type Header struct {
	Marker      bool
	PayloadType uint8 // 7 bits
	Seq         uint16
	Timestamp   uint32
	SSRC        uint32
}

// Marshal appends the header and payload to b.
func (h *Header) Marshal(b []byte, payload []byte) []byte {
	off := len(b)
	b = append(b, make([]byte, HeaderLen)...)
	w := b[off:]
	w[0] = Version << 6
	w[1] = h.PayloadType & 0x7F
	if h.Marker {
		w[1] |= 0x80
	}
	binary.BigEndian.PutUint16(w[2:], h.Seq)
	binary.BigEndian.PutUint32(w[4:], h.Timestamp)
	binary.BigEndian.PutUint32(w[8:], h.SSRC)
	return append(b, payload...)
}

// Parse decodes an RTP packet, returning header and payload.
func Parse(data []byte) (Header, []byte, error) {
	var h Header
	if len(data) < HeaderLen {
		return h, nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if v := data[0] >> 6; v != Version {
		return h, nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	if cc := data[0] & 0x0F; cc != 0 {
		// CSRCs unsupported; reject rather than misparse.
		return h, nil, fmt.Errorf("rtp: %d CSRCs unsupported", cc)
	}
	h.Marker = data[1]&0x80 != 0
	h.PayloadType = data[1] & 0x7F
	h.Seq = binary.BigEndian.Uint16(data[2:])
	h.Timestamp = binary.BigEndian.Uint32(data[4:])
	h.SSRC = binary.BigEndian.Uint32(data[8:])
	return h, data[HeaderLen:], nil
}

// FeedbackMagic distinguishes feedback datagrams from media on the
// shared port pair.
const FeedbackMagic = 0xECF1

// Feedback is the receiver's periodic ECN summary, modelled on the RFC
// 6679 RTCP XR ECN summary report: per-interval counts of each
// codepoint observed on arriving media plus a loss estimate.
type Feedback struct {
	SSRC    uint32
	Seq     uint16 // feedback sequence number
	ECT0    uint32 // packets arriving ECT(0)
	ECT1    uint32
	CE      uint32 // packets arriving CE: congestion!
	NotECT  uint32
	Lost    uint32 // gap-based loss estimate
	HighSeq uint16 // highest media sequence seen
}

// FeedbackLen is the wire size of a feedback report.
const FeedbackLen = 2 + 4 + 2 + 4*5 + 2

// Marshal appends the wire form.
func (f *Feedback) Marshal(b []byte) []byte {
	off := len(b)
	b = append(b, make([]byte, FeedbackLen)...)
	w := b[off:]
	binary.BigEndian.PutUint16(w[0:], FeedbackMagic)
	binary.BigEndian.PutUint32(w[2:], f.SSRC)
	binary.BigEndian.PutUint16(w[6:], f.Seq)
	binary.BigEndian.PutUint32(w[8:], f.ECT0)
	binary.BigEndian.PutUint32(w[12:], f.ECT1)
	binary.BigEndian.PutUint32(w[16:], f.CE)
	binary.BigEndian.PutUint32(w[20:], f.NotECT)
	binary.BigEndian.PutUint32(w[24:], f.Lost)
	binary.BigEndian.PutUint16(w[28:], f.HighSeq)
	return b
}

// ParseFeedback decodes a feedback report.
func ParseFeedback(data []byte) (Feedback, error) {
	var f Feedback
	if len(data) < FeedbackLen {
		return f, fmt.Errorf("%w: feedback %d bytes", ErrTruncated, len(data))
	}
	if binary.BigEndian.Uint16(data[0:]) != FeedbackMagic {
		return f, errors.New("rtp: not a feedback packet")
	}
	f.SSRC = binary.BigEndian.Uint32(data[2:])
	f.Seq = binary.BigEndian.Uint16(data[6:])
	f.ECT0 = binary.BigEndian.Uint32(data[8:])
	f.ECT1 = binary.BigEndian.Uint32(data[12:])
	f.CE = binary.BigEndian.Uint32(data[16:])
	f.NotECT = binary.BigEndian.Uint32(data[20:])
	f.Lost = binary.BigEndian.Uint32(data[24:])
	f.HighSeq = binary.BigEndian.Uint16(data[28:])
	return f, nil
}

// IsFeedback sniffs whether a datagram is a feedback report.
func IsFeedback(data []byte) bool {
	return len(data) >= 2 && binary.BigEndian.Uint16(data) == FeedbackMagic
}
