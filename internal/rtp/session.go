package rtp

import (
	"time"

	"repro/internal/ecn"
	"repro/internal/netsim"
	"repro/internal/packet"
)

// Session parameters.
const (
	// FeedbackInterval is how often the receiver reports (RFC 6679
	// recommends regular RTCP feedback; 100ms suits interactive media).
	FeedbackInterval = 100 * time.Millisecond
	// packetInterval paces media at one packet per tick; the rate
	// controller varies the payload size instead of the tick, keeping
	// the maths simple and the packet rate constant (20ms ≈ 50 pps,
	// a typical audio/video slice cadence).
	packetInterval = 20 * time.Millisecond
)

// SenderConfig tunes the media sender.
type SenderConfig struct {
	SSRC        uint32
	PayloadType uint8
	// UseECN marks media ECT(0) and reacts to CE feedback. The
	// application decides this after a path pre-check (see
	// examples/webrtc-precheck).
	UseECN bool
	// InitialRate and bounds, in bytes per second of payload.
	InitialRate float64
	MinRate     float64
	MaxRate     float64
	// Beta is the multiplicative decrease applied per CE-marked
	// feedback interval (NADA-flavoured; default 0.85).
	Beta float64
	// AdditiveIncrease per clean feedback interval, bytes/sec
	// (default 5000).
	AdditiveIncrease float64
}

func (c SenderConfig) withDefaults() SenderConfig {
	if c.InitialRate == 0 {
		c.InitialRate = 64_000
	}
	if c.MinRate == 0 {
		c.MinRate = 8_000
	}
	if c.MaxRate == 0 {
		c.MaxRate = 512_000
	}
	if c.Beta == 0 {
		c.Beta = 0.85
	}
	if c.AdditiveIncrease == 0 {
		c.AdditiveIncrease = 5_000
	}
	return c
}

// SenderStats summarise a finished sending session.
type SenderStats struct {
	PacketsSent       int
	BytesSent         int
	FeedbackReceived  int
	CEIntervals       int // feedback intervals reporting CE
	LossIntervals     int // feedback intervals reporting loss
	RateDecreases     int
	FinalRate         float64
	MinRateObserved   float64
	BytesAcknowledged int // via HighSeq progression (approximate)
}

// Sender is a paced media source on a simulated host.
type Sender struct {
	cfg   SenderConfig
	host  *netsim.Host
	dst   packet.Addr
	dport uint16
	sport uint16

	rate    float64
	seq     uint16
	ts      uint32
	stats   SenderStats
	stopped bool
	timer   netsim.Timer
}

// NewSender binds a sender on host toward dst:dport. Call Start.
func NewSender(host *netsim.Host, dst packet.Addr, dport uint16, cfg SenderConfig) (*Sender, error) {
	cfg = cfg.withDefaults()
	s := &Sender{
		cfg:   cfg,
		host:  host,
		dst:   dst,
		dport: dport,
		rate:  cfg.InitialRate,
	}
	s.stats.MinRateObserved = cfg.InitialRate
	port, err := host.BindUDP(0, func(h *netsim.Host, ip packet.IPv4Header, u packet.UDPHeader, payload []byte) {
		s.onDatagram(ip, payload)
	})
	if err != nil {
		return nil, err
	}
	s.sport = port
	return s, nil
}

// Start begins pacing media for the given duration, then invokes done
// with the session statistics.
func (s *Sender) Start(dur time.Duration, done func(SenderStats)) {
	sim := s.host.Sim()
	deadline := sim.Now() + dur
	var tick func()
	tick = func() {
		if s.stopped {
			return
		}
		if sim.Now() >= deadline {
			s.stop()
			done(s.stats)
			return
		}
		s.sendOne()
		s.timer = sim.After(packetInterval, tick)
	}
	tick()
}

func (s *Sender) stop() {
	s.stopped = true
	s.timer.Stop()
	s.host.UnbindUDP(s.sport)
	s.stats.FinalRate = s.rate
}

// sendOne emits one media packet sized for the current rate.
func (s *Sender) sendOne() {
	payloadLen := int(s.rate * packetInterval.Seconds())
	if payloadLen < 16 {
		payloadLen = 16
	}
	if payloadLen > 1400 {
		payloadLen = 1400 // stay under MTU-ish
	}
	s.seq++
	s.ts += uint32(packetInterval / time.Millisecond * 90) // 90kHz clock
	hdr := Header{PayloadType: s.cfg.PayloadType, Seq: s.seq, Timestamp: s.ts, SSRC: s.cfg.SSRC}
	payload := make([]byte, payloadLen)
	wire := hdr.Marshal(nil, payload)

	cp := ecn.NotECT
	if s.cfg.UseECN {
		cp = ecn.ECT0
	}
	_ = s.host.SendUDP(s.dst, s.sport, s.dport, 64, cp, wire)
	s.stats.PacketsSent++
	s.stats.BytesSent += len(wire)
}

// onDatagram handles feedback from the receiver.
func (s *Sender) onDatagram(ip packet.IPv4Header, payload []byte) {
	if !IsFeedback(payload) {
		return
	}
	fb, err := ParseFeedback(payload)
	if err != nil || fb.SSRC != s.cfg.SSRC {
		return
	}
	s.stats.FeedbackReceived++
	congested := false
	if fb.CE > 0 {
		s.stats.CEIntervals++
		congested = true
	}
	if fb.Lost > 0 {
		s.stats.LossIntervals++
		congested = true
	}
	if congested {
		// React to CE exactly as to loss (RFC 3168 principle; NADA
		// unifies both into one controller).
		s.rate *= s.cfg.Beta
		if s.rate < s.cfg.MinRate {
			s.rate = s.cfg.MinRate
		}
		s.stats.RateDecreases++
	} else {
		s.rate += s.cfg.AdditiveIncrease
		if s.rate > s.cfg.MaxRate {
			s.rate = s.cfg.MaxRate
		}
	}
	if s.rate < s.stats.MinRateObserved {
		s.stats.MinRateObserved = s.rate
	}
}

// ReceiverStats summarise the receiving side.
type ReceiverStats struct {
	PacketsReceived int
	BytesReceived   int
	ECT0, ECT1, CE  int
	NotECT          int
	Lost            int
	FeedbackSent    int
}

// Receiver consumes media on a bound port and reports ECN feedback.
type Receiver struct {
	host  *netsim.Host
	port  uint16
	ssrc  uint32
	peer  packet.Addr
	pport uint16

	interval     Feedback
	stats        ReceiverStats
	lastSeq      uint16
	seqSeen      bool
	fbSeq        uint16
	timer        netsim.Timer
	armed        bool
	stopped      bool
	intervalLost uint32
	idle         int
}

// idleQuenchIntervals is how many empty feedback intervals the receiver
// tolerates before pausing its timer. Without self-quenching the
// feedback loop would keep the (virtual) session alive forever; media
// arriving later re-arms it.
const idleQuenchIntervals = 5

// NewReceiver binds a media receiver on host:port for the given SSRC.
// The feedback timer arms when the first media packet arrives and
// quenches itself after a few idle intervals, so a drained simulation
// means the session is truly over.
func NewReceiver(host *netsim.Host, port uint16, ssrc uint32) (*Receiver, error) {
	r := &Receiver{host: host, port: port, ssrc: ssrc}
	_, err := host.BindUDP(port, func(h *netsim.Host, ip packet.IPv4Header, u packet.UDPHeader, payload []byte) {
		r.onMedia(ip, u, payload)
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Stats returns a snapshot of the receiver's counters.
func (r *Receiver) Stats() ReceiverStats { return r.stats }

// Stop cancels feedback and releases the port.
func (r *Receiver) Stop() {
	r.stopped = true
	r.timer.Stop()
	r.host.UnbindUDP(r.port)
}

func (r *Receiver) onMedia(ip packet.IPv4Header, u packet.UDPHeader, payload []byte) {
	hdr, body, err := Parse(payload)
	if err != nil || hdr.SSRC != r.ssrc {
		return
	}
	r.peer = ip.Src
	r.pport = u.SrcPort
	r.stats.PacketsReceived++
	r.stats.BytesReceived += len(body)

	switch ip.ECN() {
	case ecn.ECT0:
		r.interval.ECT0++
		r.stats.ECT0++
	case ecn.ECT1:
		r.interval.ECT1++
		r.stats.ECT1++
	case ecn.CE:
		r.interval.CE++
		r.stats.CE++
	default:
		r.interval.NotECT++
		r.stats.NotECT++
	}

	// Gap-based loss accounting (reordering is impossible on the
	// simulator's FIFO paths, so every gap is loss).
	if r.seqSeen {
		if delta := hdr.Seq - r.lastSeq; delta > 1 {
			r.intervalLost += uint32(delta - 1)
			r.stats.Lost += int(delta - 1)
		}
	}
	r.lastSeq = hdr.Seq
	r.seqSeen = true
	r.idle = 0
	if !r.armed && !r.stopped {
		r.scheduleFeedback()
	}
}

func (r *Receiver) scheduleFeedback() {
	r.armed = true
	r.timer = r.host.Sim().After(FeedbackInterval, func() {
		if r.stopped {
			return
		}
		hadMedia := r.interval != (Feedback{}) || r.intervalLost > 0
		r.emitFeedback()
		if hadMedia {
			r.idle = 0
		} else {
			r.idle++
			if r.idle >= idleQuenchIntervals {
				r.armed = false
				return // quench: media arrival re-arms
			}
		}
		r.scheduleFeedback()
	})
}

func (r *Receiver) emitFeedback() {
	if r.peer.IsZero() {
		return // no media yet
	}
	r.fbSeq++
	fb := r.interval
	fb.SSRC = r.ssrc
	fb.Seq = r.fbSeq
	fb.Lost = r.intervalLost
	fb.HighSeq = r.lastSeq
	// Feedback travels not-ECT, like the control traffic it is.
	_ = r.host.SendUDP(r.peer, r.port, r.pport, 64, ecn.NotECT, fb.Marshal(nil))
	r.stats.FeedbackSent++
	r.interval = Feedback{}
	r.intervalLost = 0
}
