package server

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/campaign"
)

// Store is the control plane's disk-backed, content-addressed result
// store. A completed campaign is filed under its spec's cache key (hex
// SHA-256 of the canonical spec with execution-shape knobs stripped —
// campaign.Spec.CacheKey) as a directory of three artifacts:
//
//	<data dir>/<key[:2]>/<key>/spec.json     canonical submitted spec
//	<data dir>/<key[:2]>/<key>/meta.json     RunMeta: determinism hash, counters, CE report
//	<data dir>/<key[:2]>/<key>/dataset.jsonl merged dataset, canonical JSON lines
//
// Writes are atomic: artifacts land in a temp directory that is
// renamed into place, so a crash mid-write never leaves a half-cached
// run, and readers never observe a partial entry. The two-level fan-out
// keeps directory listings sane at large run counts.
type Store struct {
	dir string

	mu   sync.RWMutex
	keys map[string]bool
}

// RunMeta describes one cached campaign run: what ran, the determinism
// hash of its dataset, and its execution counters. It is the body of
// the store's meta.json and the API's run/report resources.
type RunMeta struct {
	Key  string        `json:"key"`
	Spec campaign.Spec `json:"spec"` // normalized (canonical form)
	// DatasetSHA256 is the SHA-256 of dataset.jsonl — by the campaign
	// determinism invariant, equal to cmd/determinism's hash for the
	// same spec, whatever execution shape either used.
	DatasetSHA256 string `json:"dataset_sha256"`
	DatasetBytes  int64  `json:"dataset_bytes"`
	Traces        int    `json:"traces"`
	Servers       int    `json:"servers"`
	Shards        int    `json:"shards"`
	// Events counters aggregate over shards; the phantom/replayed split
	// mirrors campaign.Result.
	Events             uint64    `json:"events"`
	PhantomEvents      uint64    `json:"events_phantom"`
	ReplayedBoundaries uint64    `json:"boundaries_replayed"`
	WallSeconds        float64   `json:"wall_seconds"`
	CompletedAt        time.Time `json:"completed_at"`
	// Congestion is the verbose-mode CE-mark report for congested
	// scenarios; nil for uncongested runs.
	Congestion *analysis.CEMarkReport `json:"congestion,omitempty"`
}

const (
	specFile    = "spec.json"
	metaFile    = "meta.json"
	datasetFile = "dataset.jsonl"
)

// OpenStore opens (creating if needed) the store rooted at dir and
// indexes the completed runs already on disk.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("server: store: empty data dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: store: %w", err)
	}
	st := &Store{dir: dir, keys: make(map[string]bool)}
	fans, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("server: store: %w", err)
	}
	for _, fan := range fans {
		if !fan.IsDir() || len(fan.Name()) != 2 {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(dir, fan.Name()))
		if err != nil {
			return nil, fmt.Errorf("server: store: %w", err)
		}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			// Only entries whose rename completed have a meta.json;
			// stray temp directories are ignored (and re-created runs
			// will simply overwrite them later).
			if _, err := os.Stat(filepath.Join(dir, fan.Name(), e.Name(), metaFile)); err == nil {
				st.keys[e.Name()] = true
			}
		}
	}
	return st, nil
}

// path returns the final directory for a key.
func (st *Store) path(key string) string {
	return filepath.Join(st.dir, key[:2], key)
}

// Has reports whether a completed run is cached under key.
func (st *Store) Has(key string) bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.keys[key]
}

// Keys lists the cached run keys in sorted order.
func (st *Store) Keys() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	keys := make([]string, 0, len(st.keys))
	for k := range st.keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Put files a completed run under key, atomically: the three artifacts
// are written to a temp directory which is renamed into place. If the
// key is already present (a concurrent writer won), the new copy is
// discarded — content addressing guarantees the bytes are equivalent.
func (st *Store) Put(key string, spec []byte, meta RunMeta, dataset []byte) error {
	if len(key) < 3 {
		return fmt.Errorf("server: store: malformed key %q", key)
	}
	metaBytes, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("server: store: marshal meta: %w", err)
	}
	fan := filepath.Join(st.dir, key[:2])
	if err := os.MkdirAll(fan, 0o755); err != nil {
		return fmt.Errorf("server: store: %w", err)
	}
	tmp, err := os.MkdirTemp(fan, ".put-*")
	if err != nil {
		return fmt.Errorf("server: store: %w", err)
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename
	for _, f := range []struct {
		name string
		data []byte
	}{
		{specFile, spec},
		{metaFile, metaBytes},
		{datasetFile, dataset},
	} {
		if err := os.WriteFile(filepath.Join(tmp, f.name), f.data, 0o644); err != nil {
			return fmt.Errorf("server: store: %w", err)
		}
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.keys[key] {
		return nil // lost the race; identical content is already filed
	}
	if err := os.Rename(tmp, st.path(key)); err != nil {
		return fmt.Errorf("server: store: %w", err)
	}
	st.keys[key] = true
	return nil
}

// Meta loads a cached run's metadata.
func (st *Store) Meta(key string) (RunMeta, error) {
	if !st.Has(key) {
		return RunMeta{}, os.ErrNotExist
	}
	b, err := os.ReadFile(filepath.Join(st.path(key), metaFile))
	if err != nil {
		return RunMeta{}, err
	}
	var m RunMeta
	if err := json.Unmarshal(b, &m); err != nil {
		return RunMeta{}, fmt.Errorf("server: store: meta for %s: %w", key, err)
	}
	return m, nil
}

// SpecBytes returns a cached run's canonical spec.
func (st *Store) SpecBytes(key string) ([]byte, error) {
	if !st.Has(key) {
		return nil, os.ErrNotExist
	}
	return os.ReadFile(filepath.Join(st.path(key), specFile))
}

// OpenDataset opens a cached run's dataset for streaming and returns
// its size.
func (st *Store) OpenDataset(key string) (io.ReadCloser, int64, error) {
	if !st.Has(key) {
		return nil, 0, os.ErrNotExist
	}
	f, err := os.Open(filepath.Join(st.path(key), datasetFile))
	if err != nil {
		return nil, 0, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, info.Size(), nil
}
