package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/dataset"
)

// testSpec is the small, fast campaign every test submits: one trace
// per vantage, no traceroutes, fixed seed.
const testSpec = `{"spec": 1, "scale": "small", "traces": 1, "seed": 2015, "stride": 0}`

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{DataDir: t.TempDir(), Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func submit(t *testing.T, ts *httptest.Server, body string) (int, JobView) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 400 {
		return resp.StatusCode, JobView{}
	}
	var view JobView
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatalf("submit response %q: %v", raw, err)
	}
	return resp.StatusCode, view
}

func awaitDone(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var view JobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch view.State {
		case JobDone:
			return view
		case JobFailed:
			t.Fatalf("job %s failed: %s", id, view.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobView{}
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestSubmitPollFetchRoundTrip is the core lifecycle: submit → poll →
// fetch. The served dataset must be byte-identical to what campaign.Run
// produces for the same spec, and the report's determinism hash must
// match the bytes actually served.
func TestSubmitPollFetchRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)

	status, view := submit(t, ts, testSpec)
	if status != http.StatusAccepted {
		t.Fatalf("fresh submit status = %d, want 202", status)
	}
	if view.ID == "" || view.Key == "" || view.Cached {
		t.Fatalf("submit view = %+v", view)
	}
	if view.ShardsTotal == 0 || view.TracesTotal == 0 {
		t.Fatalf("submit view missing plan totals: %+v", view)
	}

	done := awaitDone(t, ts, view.ID)
	if done.ShardsDone != done.ShardsTotal || done.TracesDone != done.TracesTotal {
		t.Fatalf("done job progress incomplete: %+v", done)
	}

	// Per-shard completion, the seam for remote shard claiming.
	status, body := get(t, ts, "/v1/jobs/"+view.ID+"/shards")
	if status != http.StatusOK {
		t.Fatalf("shards status = %d: %s", status, body)
	}
	var shardsResp struct {
		Shards []ShardProgress `json:"shards"`
	}
	if err := json.Unmarshal(body, &shardsResp); err != nil {
		t.Fatal(err)
	}
	if len(shardsResp.Shards) != done.ShardsTotal {
		t.Fatalf("shards = %d, want %d", len(shardsResp.Shards), done.ShardsTotal)
	}
	for _, sh := range shardsResp.Shards {
		if sh.State != "done" || sh.Vantage == "" {
			t.Fatalf("shard not done: %+v", sh)
		}
	}

	// The served dataset is byte-identical to a direct engine run.
	status, served := get(t, ts, "/v1/jobs/"+view.ID+"/dataset")
	if status != http.StatusOK {
		t.Fatalf("dataset status = %d", status)
	}
	spec, err := campaign.ParseSpec([]byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := dataset.Write(&direct, res.Dataset); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, direct.Bytes()) {
		t.Fatalf("served dataset (%d bytes) differs from direct campaign.Run (%d bytes)",
			len(served), direct.Len())
	}

	// The report's determinism hash matches the served bytes.
	status, body = get(t, ts, "/v1/jobs/"+view.ID+"/report")
	if status != http.StatusOK {
		t.Fatalf("report status = %d", status)
	}
	var meta RunMeta
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("%x", sha256.Sum256(served)); meta.DatasetSHA256 != want {
		t.Fatalf("report hash %s != served bytes hash %s", meta.DatasetSHA256, want)
	}
	if meta.Traces != len(res.Dataset.Traces) || meta.Spec.Scale != "small" {
		t.Fatalf("report meta = %+v", meta)
	}

	// The run index lists the key, and the key-addressed read path
	// serves the same bytes.
	status, body = get(t, ts, "/v1/runs")
	if status != http.StatusOK {
		t.Fatalf("runs status = %d", status)
	}
	var runs struct {
		Runs []string `json:"runs"`
	}
	if err := json.Unmarshal(body, &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs.Runs) != 1 || runs.Runs[0] != view.Key {
		t.Fatalf("runs = %v, want [%s]", runs.Runs, view.Key)
	}
	_, byKey := get(t, ts, "/v1/runs/"+view.Key+"/dataset")
	if !bytes.Equal(byKey, served) {
		t.Fatal("key-addressed dataset differs from job-addressed dataset")
	}
}

// TestCacheHit: resubmitting a completed spec — under any execution
// shape — returns identical bytes and the same determinism hash without
// re-simulating.
func TestCacheHit(t *testing.T) {
	_, ts := newTestServer(t)

	_, first := submit(t, ts, testSpec)
	awaitDone(t, ts, first.ID)
	_, bytes1 := get(t, ts, "/v1/jobs/"+first.ID+"/dataset")

	// Same campaign, different execution shape: must hit the cache.
	status, second := submit(t, ts,
		`{"spec": 1, "scale": "small", "traces": 1, "seed": 2015, "stride": 0,
		  "workers": 13, "slices_per_vantage": 4, "scheduler": "heap", "xtraffic": "events"}`)
	if status != http.StatusOK {
		t.Fatalf("cache-hit submit status = %d, want 200", status)
	}
	if !second.Cached || second.State != JobDone {
		t.Fatalf("second submit = %+v, want cached done job", second)
	}
	if second.Key != first.Key {
		t.Fatalf("execution shape changed the cache key: %s vs %s", second.Key, first.Key)
	}

	_, bytes2 := get(t, ts, "/v1/jobs/"+second.ID+"/dataset")
	if !bytes.Equal(bytes1, bytes2) {
		t.Fatal("cache hit served different bytes")
	}

	var meta1, meta2 RunMeta
	_, m1 := get(t, ts, "/v1/jobs/"+first.ID+"/report")
	_, m2 := get(t, ts, "/v1/jobs/"+second.ID+"/report")
	if err := json.Unmarshal(m1, &meta1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(m2, &meta2); err != nil {
		t.Fatal(err)
	}
	if meta1.DatasetSHA256 != meta2.DatasetSHA256 {
		t.Fatal("cache hit changed the determinism hash")
	}

	_, body := get(t, ts, "/v1/stats")
	var stats Stats
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.RunsStarted != 1 {
		t.Fatalf("runs started = %d, want 1 (cache must not re-simulate)", stats.RunsStarted)
	}
	if stats.CacheHits != 1 || stats.Submitted != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestMalformedSpec: structured 400s in the unified envelope, with
// stable codes and field-level errors.
func TestMalformedSpec(t *testing.T) {
	_, ts := newTestServer(t)

	post := func(body string) (int, ErrorBody) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var envelope ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, envelope
	}

	// Out-of-vocabulary values: every bad field reported.
	status, envelope := post(`{"spec": 1, "scale": "galactic", "scenario": "congested", "workers": -1}`)
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", status)
	}
	if envelope.Error.Code != "spec_invalid" || envelope.Error.Message == "" {
		t.Fatalf("invalid-spec envelope = %+v", envelope)
	}
	fields := map[string]bool{}
	for _, f := range envelope.Error.Fields {
		fields[f.Field] = true
	}
	for _, want := range []string{"scale", "scenario", "workers"} {
		if !fields[want] {
			t.Errorf("field %q missing from error %+v", want, envelope)
		}
	}

	// Unknown field: named in the error, not silently dropped.
	status, envelope = post(`{"spec": 1, "scale": "small", "tracez": 5}`)
	if status != http.StatusBadRequest || len(envelope.Error.Fields) != 1 ||
		envelope.Error.Fields[0].Field != "tracez" {
		t.Fatalf("unknown-field response: %d %+v", status, envelope)
	}

	// Not JSON at all: still the envelope, but bad_request — the body
	// never parsed far enough to be an invalid spec.
	status, envelope = post(`this is not json`)
	if status != http.StatusBadRequest || envelope.Error.Code != "bad_request" {
		t.Fatalf("non-JSON response: %d %+v", status, envelope)
	}

	// A plan that selects no vantages.
	status, envelope = post(`{"spec": 1, "scale": "small", "trace_plan": {"Perkins home": 0}}`)
	if status != http.StatusBadRequest || envelope.Error.Code != "spec_invalid" {
		t.Fatalf("empty-plan response: %d %+v", status, envelope)
	}

	// Nothing should have been queued.
	_, body := get(t, ts, "/v1/stats")
	var stats Stats
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Submitted != 0 || stats.RunsStarted != 0 {
		t.Fatalf("invalid specs reached the job manager: %+v", stats)
	}
}

// TestConcurrentSubmissionsRunOnce: many clients racing the same spec
// cause exactly one simulation; everyone gets the same key and the
// same bytes.
func TestConcurrentSubmissionsRunOnce(t *testing.T) {
	_, ts := newTestServer(t)

	const clients = 8
	views := make([]JobView, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json",
				bytes.NewBufferString(testSpec))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if err := json.NewDecoder(resp.Body).Decode(&views[i]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	var sets []string
	for i, v := range views {
		if v.Key != views[0].Key {
			t.Fatalf("client %d got key %s, want %s", i, v.Key, views[0].Key)
		}
		sets = append(sets, v.ID)
	}
	_ = sets

	// Whichever job each client landed on, every dataset read converges
	// to the same bytes.
	var ref []byte
	for _, v := range views {
		awaitDone(t, ts, v.ID)
		_, b := get(t, ts, "/v1/jobs/"+v.ID+"/dataset")
		if ref == nil {
			ref = b
		} else if !bytes.Equal(ref, b) {
			t.Fatal("clients saw different datasets")
		}
	}

	_, body := get(t, ts, "/v1/stats")
	var stats Stats
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.RunsStarted != 1 {
		t.Fatalf("runs started = %d, want 1 for %d identical submissions (stats %+v)",
			stats.RunsStarted, clients, stats)
	}
	if stats.Submitted != clients {
		t.Fatalf("submitted = %d, want %d", stats.Submitted, clients)
	}
}

// TestStoreReopen: a new server over the same data dir serves previous
// runs from disk (the cache survives restarts).
func TestStoreReopen(t *testing.T) {
	dir := t.TempDir()

	srv1, err := New(Config{DataDir: dir, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)
	_, first := submit(t, ts1, testSpec)
	awaitDone(t, ts1, first.ID)
	_, bytes1 := get(t, ts1, "/v1/jobs/"+first.ID+"/dataset")
	ts1.Close()
	srv1.Close()

	srv2, err := New(Config{DataDir: dir, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	defer func() {
		ts2.Close()
		srv2.Close()
	}()

	status, second := submit(t, ts2, testSpec)
	if status != http.StatusOK || !second.Cached {
		t.Fatalf("restart lost the cache: status=%d view=%+v", status, second)
	}
	_, bytes2 := get(t, ts2, "/v1/runs/"+second.Key+"/dataset")
	if !bytes.Equal(bytes1, bytes2) {
		t.Fatal("reopened store served different bytes")
	}
}

// TestUnfinishedDataset: asking for a queued/running job's dataset is a
// 409, not a hang or a 500.
func TestUnfinishedDataset(t *testing.T) {
	srv, err := New(Config{DataDir: t.TempDir(), Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()

	// Two submissions with one worker: the second is parked in the
	// queue while the first runs, so its dataset cannot exist yet.
	_, a := submit(t, ts, testSpec)
	_, b := submit(t, ts, `{"spec": 1, "scale": "small", "traces": 1, "seed": 99, "stride": 0}`)
	status, _ := get(t, ts, "/v1/jobs/"+b.ID+"/dataset")
	if status != http.StatusConflict {
		t.Fatalf("unfinished dataset status = %d, want 409", status)
	}
	awaitDone(t, ts, a.ID)
	awaitDone(t, ts, b.ID)

	if status, _ := get(t, ts, "/v1/jobs/nope/dataset"); status != http.StatusNotFound {
		t.Fatalf("missing job status = %d, want 404", status)
	}
	if status, _ := get(t, ts, "/v1/runs/feedface/dataset"); status != http.StatusNotFound {
		t.Fatalf("missing run status = %d, want 404", status)
	}
}
