package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// TestMetricsEndpoints runs a job and checks both expositions carry
// the key series: HTTP traffic, job lifecycle, engine counters.
func TestMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	_, view := submit(t, ts, testSpec)
	awaitDone(t, ts, view.ID)

	status, body := get(t, ts, "/v1/metrics")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/metrics = %d", status)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE repro_http_requests_total counter",
		`repro_http_requests_total{route="POST /v1/campaigns",code_class="2xx"} 1`,
		"# TYPE repro_http_request_duration_seconds histogram",
		`repro_jobs_total{event="submitted"} 1`,
		`repro_jobs_total{event="done"} 1`,
		"repro_jobs_running 0",
		`repro_store_requests_total{result="miss"} 1`,
		`repro_sim_events_total{sched="wheel"}`,
		"repro_campaign_traces_completed_total",
		"# TYPE repro_campaign_shard_duration_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/v1/metrics missing %q", want)
		}
	}

	status, body = get(t, ts, "/v1/metrics.json")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/metrics.json = %d", status)
	}
	var doc struct {
		Metrics []telemetry.Sample `json:"metrics"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("metrics.json: %v", err)
	}
	found := false
	for _, s := range doc.Metrics {
		if s.Name == "repro_campaign_shards_completed_total" && s.Uint > 0 {
			found = true
		}
	}
	if !found {
		t.Error("metrics.json has no completed-shards counter > 0")
	}
}

// TestJobEventsEndpoint replays a finished job's journal: the
// lifecycle must read queued → running → … → done with every shard
// bracketed by shard-start/shard-done pairs.
func TestJobEventsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	_, view := submit(t, ts, testSpec)
	done := awaitDone(t, ts, view.ID)

	status, body := get(t, ts, "/v1/jobs/"+view.ID+"/events")
	if status != http.StatusOK {
		t.Fatalf("GET events = %d", status)
	}
	var resp struct {
		ID     string            `json:"id"`
		State  JobState          `json:"state"`
		Events []telemetry.Event `json:"events"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != view.ID || resp.State != JobDone {
		t.Fatalf("events header = %+v", resp)
	}
	if len(resp.Events) < 4 {
		t.Fatalf("only %d events for a done job", len(resp.Events))
	}
	if resp.Events[0].Kind != "queued" || resp.Events[1].Kind != "running" {
		t.Errorf("lifecycle starts %q, %q; want queued, running", resp.Events[0].Kind, resp.Events[1].Kind)
	}
	if last := resp.Events[len(resp.Events)-1]; last.Kind != "done" {
		t.Errorf("lifecycle ends %q, want done", last.Kind)
	}
	starts, dones := 0, 0
	for _, ev := range resp.Events {
		switch ev.Kind {
		case "shard-start":
			starts++
			if ev.Detail == "" {
				t.Error("shard-start without vantage detail")
			}
		case "shard-done":
			dones++
		}
		if ev.Job != view.ID {
			t.Errorf("event for job %q leaked into %q's timeline", ev.Job, view.ID)
		}
	}
	if starts != done.ShardsTotal || dones != done.ShardsTotal {
		t.Errorf("journal has %d starts / %d dones, want %d each", starts, dones, done.ShardsTotal)
	}

	// A cache-hit resubmission journals under its own job id.
	_, dup := submit(t, ts, testSpec)
	status, body = get(t, ts, "/v1/jobs/"+dup.ID+"/events")
	if status != http.StatusOK {
		t.Fatalf("GET dup events = %d", status)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) != 1 || resp.Events[0].Kind != "cache-hit" {
		t.Errorf("cache-hit job events = %+v", resp.Events)
	}
}

// TestHealthzReadiness checks the enriched probe: build info fields,
// store probing, queue accounting.
func TestHealthzReadiness(t *testing.T) {
	_, ts := newTestServer(t)
	status, body := get(t, ts, "/v1/healthz")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/healthz = %d: %s", status, body)
	}
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if !h.StoreWritable {
		t.Error("temp-dir store reported unwritable")
	}
	if h.GoVersion == "" {
		t.Error("no go_version from build info")
	}
	if h.QueueCap != maxQueuedJobs {
		t.Errorf("queue_cap = %d, want %d", h.QueueCap, maxQueuedJobs)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("uptime = %v", h.UptimeSeconds)
	}
}

// TestPprofGating: the profile routes exist only when asked for.
func TestPprofGating(t *testing.T) {
	srv, err := New(Config{DataDir: t.TempDir(), Jobs: 1, EnablePprof: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if status, _ := get(t, ts, "/debug/pprof/cmdline"); status != http.StatusOK {
		t.Errorf("pprof enabled: /debug/pprof/cmdline = %d", status)
	}

	_, tsOff := newTestServer(t)
	if status, _ := get(t, tsOff, "/debug/pprof/cmdline"); status == http.StatusOK {
		t.Error("pprof routes mounted without EnablePprof")
	}
}

// TestRequestLogging: the middleware emits one structured record per
// request with method, path, status and — on job routes — the job id.
func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	var mu chanWriter
	mu.buf = &buf
	logger := slog.New(slog.NewJSONHandler(&mu, nil))
	srv, err := New(Config{DataDir: t.TempDir(), Jobs: 1, Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get(t, ts, "/v1/jobs/j-999999")

	var found bool
	for _, line := range strings.Split(mu.String(), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec["msg"] != "request" {
			continue
		}
		found = true
		if rec["method"] != "GET" || rec["path"] != "/v1/jobs/j-999999" ||
			rec["status"] != float64(404) || rec["job"] != "j-999999" {
			t.Errorf("request record = %v", rec)
		}
		if _, ok := rec["duration"]; !ok {
			t.Error("request record has no duration")
		}
	}
	if !found {
		t.Error("no request log record emitted")
	}
}

// chanWriter serializes concurrent handler writes into one buffer.
type chanWriter struct {
	mu  sync.Mutex
	buf *bytes.Buffer
}

func (w *chanWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *chanWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}
