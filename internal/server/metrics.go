package server

import (
	"repro/internal/campaign"
	"repro/internal/telemetry"
)

// journalSize bounds the flight-recorder event ring: at ~64 bytes a
// slot this is a few hundred KiB of fixed memory for the last 4096
// job/shard lifecycle transitions — enough to reconstruct any recent
// job's timeline via GET /v1/jobs/{id}/events.
const journalSize = 4096

// serverMetrics is the control plane's instrument set: HTTP request
// accounting (fed by the middleware in middleware.go), job lifecycle
// counters (fed by the job manager), store traffic, and the shared
// campaign.Metrics every job's engine run flushes into. One set exists
// per Server; /v1/metrics renders its registry.
type serverMetrics struct {
	reg      *telemetry.Registry
	journal  *telemetry.Journal
	campaign *campaign.Metrics

	httpInflight *telemetry.Gauge

	jobsSubmitted *telemetry.Counter
	jobsJoined    *telemetry.Counter
	jobsStarted   *telemetry.Counter
	jobsDone      *telemetry.Counter
	jobsFailed    *telemetry.Counter
	jobsRunning   *telemetry.Gauge

	storeHits         *telemetry.Counter
	storeMisses       *telemetry.Counter
	storeBytesWritten *telemetry.Counter

	// Worker-protocol instruments: lease lifecycle (grant/expire/
	// reissue) and shard-result upload dispositions. The distributed-
	// smoke CI job asserts these reconcile with the run it drives.
	leaseGrants      *telemetry.Counter
	leaseExpiries    *telemetry.Counter
	leaseReissues    *telemetry.Counter
	resultsAccepted  *telemetry.Counter
	resultsDuplicate *telemetry.Counter
	resultsStale     *telemetry.Counter

	// Crash-tolerance instruments: write-ahead journal traffic, what
	// restart recovery reconstructed, and upload encodings. The
	// crash-smoke CI job asserts recovery series are non-zero after a
	// kill -9 mid-campaign.
	journalRecords *telemetry.Counter
	journalBytes   *telemetry.Counter
	journalSyncs   *telemetry.Counter
	journalTorn    *telemetry.Counter

	// Self-healing instruments: straggler speculation dispositions,
	// worker health-scoreboard transitions, adaptive claim caps, shed
	// submissions, and journal compaction. The chaos-smoke CI job
	// asserts speculation and quarantine series are non-zero after a
	// wedged-worker run.
	specIssued *telemetry.Counter
	specWon    *telemetry.Counter
	specWasted *telemetry.Counter

	workerStrikes      *telemetry.Counter
	workerQuarantines  *telemetry.Counter
	workerProbations   *telemetry.Counter
	workerReadmits     *telemetry.Counter
	workersQuarantined *telemetry.Gauge

	claimsCapped *telemetry.Counter
	submitShed   *telemetry.Counter

	journalCompactions     *telemetry.Counter
	journalCheckpointBytes *telemetry.Counter

	recoveryResumed   *telemetry.Counter
	recoveryCompleted *telemetry.Counter
	recoveryDone      *telemetry.Counter
	recoveryFailed    *telemetry.Counter
	recoveryShards    *telemetry.Counter

	uploadsGzip     *telemetry.Counter
	uploadsIdentity *telemetry.Counter
}

func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	return &serverMetrics{
		reg:      reg,
		journal:  telemetry.NewJournal(journalSize),
		campaign: campaign.NewMetrics(reg),
		httpInflight: reg.Gauge("repro_http_requests_inflight",
			"HTTP requests currently being served."),
		jobsSubmitted: reg.Counter("repro_jobs_total",
			"Job lifecycle transitions, by event.",
			telemetry.Label{Name: "event", Value: "submitted"}),
		jobsJoined: reg.Counter("repro_jobs_total",
			"Job lifecycle transitions, by event.",
			telemetry.Label{Name: "event", Value: "joined"}),
		jobsStarted: reg.Counter("repro_jobs_total",
			"Job lifecycle transitions, by event.",
			telemetry.Label{Name: "event", Value: "started"}),
		jobsDone: reg.Counter("repro_jobs_total",
			"Job lifecycle transitions, by event.",
			telemetry.Label{Name: "event", Value: "done"}),
		jobsFailed: reg.Counter("repro_jobs_total",
			"Job lifecycle transitions, by event.",
			telemetry.Label{Name: "event", Value: "failed"}),
		jobsRunning: reg.Gauge("repro_jobs_running",
			"Campaigns currently executing on the job pool."),
		storeHits: reg.Counter("repro_store_requests_total",
			"Submissions resolved against the content-addressed store.",
			telemetry.Label{Name: "result", Value: "hit"}),
		storeMisses: reg.Counter("repro_store_requests_total",
			"Submissions resolved against the content-addressed store.",
			telemetry.Label{Name: "result", Value: "miss"}),
		storeBytesWritten: reg.Counter("repro_store_dataset_bytes_written_total",
			"Dataset bytes filed into the store by completed runs."),
		leaseGrants: reg.Counter("repro_lease_events_total",
			"Shard lease lifecycle events, by event.",
			telemetry.Label{Name: "event", Value: "grant"}),
		leaseExpiries: reg.Counter("repro_lease_events_total",
			"Shard lease lifecycle events, by event.",
			telemetry.Label{Name: "event", Value: "expire"}),
		leaseReissues: reg.Counter("repro_lease_events_total",
			"Shard lease lifecycle events, by event.",
			telemetry.Label{Name: "event", Value: "reissue"}),
		resultsAccepted: reg.Counter("repro_shard_results_total",
			"Shard result uploads, by disposition.",
			telemetry.Label{Name: "result", Value: "accepted"}),
		resultsDuplicate: reg.Counter("repro_shard_results_total",
			"Shard result uploads, by disposition.",
			telemetry.Label{Name: "result", Value: "duplicate"}),
		resultsStale: reg.Counter("repro_shard_results_total",
			"Shard result uploads, by disposition.",
			telemetry.Label{Name: "result", Value: "stale"}),
		journalRecords: reg.Counter("repro_journal_records_total",
			"Records appended to the coordinator write-ahead journal."),
		journalBytes: reg.Counter("repro_journal_bytes_total",
			"Bytes appended to the coordinator write-ahead journal."),
		journalSyncs: reg.Counter("repro_journal_syncs_total",
			"Journal fsync batches (one per durably acknowledged response)."),
		journalTorn: reg.Counter("repro_journal_torn_tails_total",
			"Torn (crash-interrupted, unacknowledged) journal tail lines dropped at recovery."),
		specIssued: reg.Counter("repro_speculation_total",
			"Straggler speculation events, by event.",
			telemetry.Label{Name: "event", Value: "issued"}),
		specWon: reg.Counter("repro_speculation_total",
			"Straggler speculation events, by event.",
			telemetry.Label{Name: "event", Value: "won"}),
		specWasted: reg.Counter("repro_speculation_total",
			"Straggler speculation events, by event.",
			telemetry.Label{Name: "event", Value: "wasted"}),
		workerStrikes: reg.Counter("repro_worker_health_events_total",
			"Worker health-scoreboard transitions, by event.",
			telemetry.Label{Name: "event", Value: "strike"}),
		workerQuarantines: reg.Counter("repro_worker_health_events_total",
			"Worker health-scoreboard transitions, by event.",
			telemetry.Label{Name: "event", Value: "quarantine"}),
		workerProbations: reg.Counter("repro_worker_health_events_total",
			"Worker health-scoreboard transitions, by event.",
			telemetry.Label{Name: "event", Value: "probation"}),
		workerReadmits: reg.Counter("repro_worker_health_events_total",
			"Worker health-scoreboard transitions, by event.",
			telemetry.Label{Name: "event", Value: "readmit"}),
		workersQuarantined: reg.Gauge("repro_workers_quarantined",
			"Workers currently quarantined by the health scoreboard."),
		claimsCapped: reg.Counter("repro_claims_capped_total",
			"Claim batches shrunk by adaptive sizing (observed shard duration vs lease TTL)."),
		submitShed: reg.Counter("repro_submissions_shed_total",
			"Submissions refused 429 overloaded by the admission watermark."),
		journalCompactions: reg.Counter("repro_journal_compactions_total",
			"Journal checkpoint segments durably written (superseded segments unlinked)."),
		journalCheckpointBytes: reg.Counter("repro_journal_checkpoint_bytes_total",
			"Bytes written as journal checkpoint segments."),
		recoveryResumed: reg.Counter("repro_recovery_jobs_total",
			"Distributed jobs reconstructed from the journal at startup, by outcome.",
			telemetry.Label{Name: "outcome", Value: "resumed"}),
		recoveryCompleted: reg.Counter("repro_recovery_jobs_total",
			"Distributed jobs reconstructed from the journal at startup, by outcome.",
			telemetry.Label{Name: "outcome", Value: "completed"}),
		recoveryDone: reg.Counter("repro_recovery_jobs_total",
			"Distributed jobs reconstructed from the journal at startup, by outcome.",
			telemetry.Label{Name: "outcome", Value: "already_done"}),
		recoveryFailed: reg.Counter("repro_recovery_jobs_total",
			"Distributed jobs reconstructed from the journal at startup, by outcome.",
			telemetry.Label{Name: "outcome", Value: "failed"}),
		recoveryShards: reg.Counter("repro_recovery_shards_total",
			"Accepted shard results restored from the journal at startup."),
		uploadsGzip: reg.Counter("repro_shard_result_uploads_total",
			"Shard result uploads received, by content encoding.",
			telemetry.Label{Name: "encoding", Value: "gzip"}),
		uploadsIdentity: reg.Counter("repro_shard_result_uploads_total",
			"Shard result uploads received, by content encoding.",
			telemetry.Label{Name: "encoding", Value: "identity"}),
	}
}

// workerShardSeconds returns the shard-duration histogram for one
// worker ID. Registration is idempotent, so the per-upload lookup just
// indexes the registry; worker IDs are expected to be few and stable.
func (sm *serverMetrics) workerShardSeconds(worker string) *telemetry.Histogram {
	return sm.reg.Histogram("repro_worker_shard_duration_seconds",
		"Shard execution wall time uploaded per worker, as reported in shard stats.",
		telemetry.DurationBuckets(),
		telemetry.Label{Name: "worker", Value: worker})
}

// requestInstruments returns the counter and latency histogram for one
// route pattern and status class. Registration is idempotent and
// mutex-guarded in the registry; at control-plane request rates the
// lookup cost is irrelevant next to the handler.
func (sm *serverMetrics) requestInstruments(route, codeClass string) (*telemetry.Counter, *telemetry.Histogram) {
	c := sm.reg.Counter("repro_http_requests_total",
		"HTTP requests served, by route pattern and status class.",
		telemetry.Label{Name: "route", Value: route},
		telemetry.Label{Name: "code_class", Value: codeClass})
	h := sm.reg.Histogram("repro_http_request_duration_seconds",
		"HTTP request service time, by route pattern.",
		telemetry.DurationBuckets(),
		telemetry.Label{Name: "route", Value: route})
	return c, h
}
