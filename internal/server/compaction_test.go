package server_test

// Segmented-journal compaction tests: the seal → checkpoint → unlink
// protocol that keeps the journal O(pending), the crash window between
// the checkpoint rename and the stale-chain unlinks, and recovery from
// a checkpoint base plus live tail. Compaction runs on a real
// goroutine, so tests poll for its completion with a deadline; every
// protocol clock is still the stepped fake.

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/apiclient"
	"repro/internal/campaign"
	"repro/internal/dataset"
	"repro/internal/failpoint"
	"repro/internal/server"
)

// bigSpec slices every vantage three ways for a 39-shard plan — the
// acceptance floor for journal-boundedness is 32.
const bigSpec = `{"spec": 1, "scale": "small", "traces": 3, "slices_per_vantage": 3,
  "seed": 2015, "stride": 0, "execution": "distributed"}`

// startSegServer opens a coordinator with a tuned journal segment cap
// on an existing data dir; like startCrashServer it registers only
// listener cleanup so tests can crash it.
func startSegServer(t *testing.T, dir string, fc *fakeClock, segBytes int64) (*httptest.Server, *apiclient.Client) {
	t.Helper()
	srv, err := server.New(server.Config{
		DataDir:             dir,
		Jobs:                1,
		LeaseTTL:            30 * time.Second,
		Clock:               fc.Now,
		JournalSegmentBytes: segBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, apiclient.New(ts.URL)
}

// journalBytes sums the on-disk footprint of one job's journal
// segments.
func journalBytes(t *testing.T, dir, jobID string) int64 {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), jobID+".") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}

// jobSegments lists one job's journal segment file names, sorted by
// the directory's natural order.
func jobSegments(t *testing.T, dir, jobID string) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), jobID+".") {
			names = append(names, e.Name())
		}
	}
	return names
}

// datasetForSpec computes the in-process engine's dataset bytes for an
// arbitrary spec — the byte-identity oracle.
func datasetForSpec(t *testing.T, specJSON string) []byte {
	t.Helper()
	spec, err := campaign.ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dataset.Write(&buf, res.Dataset); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// uploadAllButLast claims the whole plan for one worker and uploads
// every shard except the final claimed one, returning the claim and
// wires so the caller can finish (or crash) as it pleases.
func uploadAllButLast(t *testing.T, client *apiclient.Client, jobID string) (apiclient.Claim, []*campaign.ShardResultWire) {
	t.Helper()
	ctx := context.Background()
	claim, err := client.Claim(ctx, jobID, "w1", 100)
	if err != nil {
		t.Fatal(err)
	}
	wires := execWires(t, bigSpec, claim.SpecHash)
	for _, s := range claim.Shards[:len(claim.Shards)-1] {
		ack, err := client.PushShardResult(ctx, jobID, s.Index, "w1", s.Lease, wires[s.Index])
		if err != nil || ack.Status != "accepted" {
			t.Fatalf("upload %d = %v %v, want accepted", s.Index, ack, err)
		}
	}
	return claim, wires
}

// TestJournalCompactionBoundsSize is the boundedness acceptance: for a
// 39-shard job with almost all results journaled, the compacted
// (segmented, small cap) journal footprint must stay below half of the
// uncompacted (one giant segment) equivalent.
func TestJournalCompactionBoundsSize(t *testing.T) {
	ctx := context.Background()

	// Baseline: a cap so large nothing ever seals — PR 9's single-file
	// journal, byte for byte.
	baseDir := t.TempDir()
	_, baseClient := startSegServer(t, baseDir, newFakeClock(), 1<<30)
	baseJob, _, err := baseClient.SubmitRaw(ctx, []byte(bigSpec))
	if err != nil {
		t.Fatal(err)
	}
	if baseJob.ShardsTotal < 32 {
		t.Fatalf("plan = %d shards, want >= 32", baseJob.ShardsTotal)
	}
	uploadAllButLast(t, baseClient, baseJob.ID)
	baseline := journalBytes(t, baseDir, baseJob.ID)
	if baseline == 0 {
		t.Fatal("baseline journal is empty")
	}

	// Segmented: a small cap seals and checkpoints throughout the run.
	segDir := t.TempDir()
	_, segClient := startSegServer(t, segDir, newFakeClock(), 2048)
	segJob, _, err := segClient.SubmitRaw(ctx, []byte(bigSpec))
	if err != nil {
		t.Fatal(err)
	}
	uploadAllButLast(t, segClient, segJob.ID)

	// Compaction is asynchronous: poll until the footprint drops under
	// the bound.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if got := journalBytes(t, segDir, segJob.ID); got*2 < baseline {
			t.Logf("journal: segmented %d bytes vs single-file %d bytes", got, baseline)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal never compacted below 50%%: segmented %d bytes vs single-file %d bytes (segments %v)",
				journalBytes(t, segDir, segJob.ID), baseline, jobSegments(t, segDir, segJob.ID))
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestRecoveryFromCheckpoint is the recovery matrix over what follows
// the checkpoint at crash time: nothing, or a tail of live records.
// Both must resume without double-counting and finish byte-identical.
func TestRecoveryFromCheckpoint(t *testing.T) {
	for _, tc := range []struct {
		name string
		tail int // uploads issued after the first checkpoint exists
	}{
		{"checkpoint-only", 0},
		{"checkpoint-plus-tail", 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			dir := t.TempDir()
			fc := newFakeClock()
			ts1, client1 := startSegServer(t, dir, fc, 2048)

			job, _, err := client1.SubmitRaw(ctx, []byte(bigSpec))
			if err != nil {
				t.Fatal(err)
			}
			claim, err := client1.Claim(ctx, job.ID, "w1", 100)
			if err != nil {
				t.Fatal(err)
			}
			wires := execWires(t, bigSpec, claim.SpecHash)

			// Upload enough to force at least one checkpoint, confirmed
			// via the compaction counter.
			head := len(claim.Shards) - tc.tail - 1
			for _, s := range claim.Shards[:head] {
				if ack, err := client1.PushShardResult(ctx, job.ID, s.Index, "w1", s.Lease, wires[s.Index]); err != nil || ack.Status != "accepted" {
					t.Fatalf("upload %d = %v %v, want accepted", s.Index, ack, err)
				}
			}
			deadline := time.Now().Add(15 * time.Second)
			for {
				text, err := client1.MetricsText(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if v := metricValue(t, text, "repro_journal_compactions_total"); v != "" && v != "0" {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("no compaction before deadline")
				}
				time.Sleep(25 * time.Millisecond)
			}
			for _, s := range claim.Shards[head : head+tc.tail] {
				if ack, err := client1.PushShardResult(ctx, job.ID, s.Index, "w1", s.Lease, wires[s.Index]); err != nil || ack.Status != "accepted" {
					t.Fatalf("tail upload %d = %v %v, want accepted", s.Index, ack, err)
				}
			}

			// Crash; restart on the same journal.
			ts1.Close()
			_, client2 := startSegServer(t, dir, fc, 2048)

			resumed, err := client2.Job(ctx, job.ID)
			if err != nil {
				t.Fatal(err)
			}
			want := len(claim.Shards) - 1
			if resumed.State != "running" || resumed.ShardsDone != want {
				t.Fatalf("resumed job = state %s done %d/%d, want running %d done",
					resumed.State, resumed.ShardsDone, resumed.ShardsTotal, want)
			}

			// The pre-crash lease was restored: the last shard lands
			// under its original token and the dataset is byte-identical.
			last := claim.Shards[len(claim.Shards)-1]
			if ack, err := client2.PushShardResult(ctx, job.ID, last.Index, "w1", last.Lease, wires[last.Index]); err != nil || ack.Status != "accepted" {
				t.Fatalf("final upload = %v %v, want accepted", ack, err)
			}
			served, err := client2.JobDataset(ctx, job.ID)
			if err != nil {
				t.Fatal(err)
			}
			if want := datasetForSpec(t, bigSpec); !bytes.Equal(served, want) {
				t.Fatalf("recovered dataset (%d bytes) differs from campaign.Run (%d bytes)", len(served), len(want))
			}
		})
	}
}

// TestCompactionCrashMidSwap arms the server.compact:crash-mid-swap
// failpoint: every compaction dies after the checkpoint rename but
// before the stale-chain unlinks, leaving BOTH the old chain and the
// checkpoint on disk. Recovery must pick the checkpoint, tidy the
// stale chain, and resume without double-counting.
func TestCompactionCrashMidSwap(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	fc := newFakeClock()

	var once sync.Once
	hit := make(chan struct{})
	remove := failpoint.SetHook(failpoint.CompactMidSwap, func() error {
		once.Do(func() { close(hit) })
		return errors.New("injected crash mid-swap")
	})
	defer remove()

	ts1, client1 := startSegServer(t, dir, fc, 2048)
	job, _, err := client1.SubmitRaw(ctx, []byte(bigSpec))
	if err != nil {
		t.Fatal(err)
	}
	claim, wires := uploadAllButLast(t, client1, job.ID)
	select {
	case <-hit:
	case <-time.After(15 * time.Second):
		t.Fatal("crash-mid-swap failpoint never hit")
	}
	// The compactor aborted between rename and unlink at least once:
	// wait for it to go quiescent, then both the original chain and a
	// checkpoint segment must be on disk.
	barePresent := func() bool {
		_, err := os.Stat(walPath(dir, job.ID))
		return err == nil
	}
	cpPresent := func() bool {
		for _, name := range jobSegments(t, dir, job.ID) {
			if name != job.ID+".wal" {
				return true
			}
		}
		return false
	}
	deadline := time.Now().Add(15 * time.Second)
	for !cpPresent() {
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint segment on disk: %v", jobSegments(t, dir, job.ID))
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !barePresent() {
		t.Fatalf("stale chain unlinked despite failpoint: %v", jobSegments(t, dir, job.ID))
	}

	// Crash, disarm, restart: recovery picks the checkpoint base and
	// tidies the superseded chain below it.
	ts1.Close()
	remove()
	_, client2 := startSegServer(t, dir, fc, 2048)

	if barePresent() {
		t.Fatalf("recovery left the superseded chain: %v", jobSegments(t, dir, job.ID))
	}
	resumed, err := client2.Job(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := len(claim.Shards) - 1
	if resumed.State != "running" || resumed.ShardsDone != want {
		t.Fatalf("resumed job = state %s done %d/%d, want running %d done",
			resumed.State, resumed.ShardsDone, resumed.ShardsTotal, want)
	}
	last := claim.Shards[len(claim.Shards)-1]
	if ack, err := client2.PushShardResult(ctx, job.ID, last.Index, "w1", last.Lease, wires[last.Index]); err != nil || ack.Status != "accepted" {
		t.Fatalf("final upload = %v %v, want accepted", ack, err)
	}
	served, err := client2.JobDataset(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := datasetForSpec(t, bigSpec); !bytes.Equal(served, want) {
		t.Fatalf("recovered dataset (%d bytes) differs from campaign.Run (%d bytes)", len(served), len(want))
	}
}
