package server_test

// Crash-recovery tests: every path through the write-ahead journal and
// the startup replay, driven end to end through the HTTP API. A
// "crash" abandons the first server instance without Close() — its
// journal is exactly what a killed process would leave — and a second
// instance is opened on the same data directory. The shared fake clock
// survives the restart, so lease expiry across the crash is stepped,
// never slept for.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/apiclient"
	"repro/internal/campaign"
	"repro/internal/dataset"
	"repro/internal/failpoint"
	"repro/internal/server"
)

// startCrashServer opens a coordinator on an existing data directory
// with the shared fake clock. Unlike newLeaseServer it does NOT
// register srv.Close as cleanup: tests that simulate a crash abandon
// the instance (no clean-shutdown marker, journals left as-is) by
// closing only the listener.
func startCrashServer(t *testing.T, dir string, fc *fakeClock) (*server.Server, *httptest.Server, *apiclient.Client) {
	t.Helper()
	srv, err := server.New(server.Config{
		DataDir:  dir,
		Jobs:     1,
		LeaseTTL: 30 * time.Second,
		Clock:    fc.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, apiclient.New(ts.URL)
}

// directDataset computes the in-process engine's dataset bytes for
// distSpec — the byte-identity oracle every recovery must hit.
func directDataset(t *testing.T) []byte {
	t.Helper()
	spec, err := campaign.ParseSpec([]byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dataset.Write(&buf, res.Dataset); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func walPath(dir, jobID string) string {
	return filepath.Join(dir, "journal", jobID+".wal")
}

// wantDatasetMatch asserts the job is done and serves exactly the
// bytes the in-process engine produces.
func wantDatasetMatch(t *testing.T, client *apiclient.Client, jobID string) {
	t.Helper()
	ctx := context.Background()
	job, err := client.Job(ctx, jobID)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != "done" || job.ShardsDone != job.ShardsTotal {
		t.Fatalf("job = state %s done %d/%d, want done", job.State, job.ShardsDone, job.ShardsTotal)
	}
	served, err := client.JobDataset(ctx, jobID)
	if err != nil {
		t.Fatal(err)
	}
	if want := directDataset(t); !bytes.Equal(served, want) {
		t.Fatalf("recovered dataset (%d bytes) differs from campaign.Run (%d bytes)",
			len(served), len(want))
	}
}

// TestRecoveryResumesPartialJob is the recovery matrix over how many
// shard results the crash had already journaled: none, and some. In
// both cases the restarted coordinator re-exposes exactly the pending
// shards, the accepted ones are never re-executed, and the final
// dataset is byte-identical to the in-process engine.
func TestRecoveryResumesPartialJob(t *testing.T) {
	for _, tc := range []struct {
		name     string
		accepted func(total int) int
	}{
		{"zero-accepted", func(int) int { return 0 }},
		{"some-accepted", func(total int) int { return total / 2 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			fc := newFakeClock()
			ctx := context.Background()

			_, ts1, c1 := startCrashServer(t, dir, fc)
			job, _, err := c1.SubmitRaw(ctx, []byte(distSpec))
			if err != nil {
				t.Fatal(err)
			}
			claim, err := c1.Claim(ctx, job.ID, "wA", 1000)
			if err != nil {
				t.Fatal(err)
			}
			wires := execWires(t, distSpec, claim.SpecHash)
			n := tc.accepted(len(claim.Shards))
			for _, sh := range claim.Shards[:n] {
				if _, err := c1.PushShardResult(ctx, job.ID, sh.Index, "wA", sh.Lease, wires[sh.Index]); err != nil {
					t.Fatal(err)
				}
			}
			ts1.Close() // crash: no drain, no clean-shutdown marker

			_, _, c2 := startCrashServer(t, dir, fc)
			st, err := c2.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if st.Recovered != 1 {
				t.Fatalf("stats.Recovered = %d, want 1", st.Recovered)
			}
			got, err := c2.Job(ctx, job.ID)
			if err != nil {
				t.Fatal(err)
			}
			if got.State != "running" || got.ShardsDone != n {
				t.Fatalf("recovered job = state %s done %d, want running with %d accepted",
					got.State, got.ShardsDone, n)
			}

			// wA's restored leases still cover the pending shards until the
			// clock passes their pre-crash expiry.
			empty, err := c2.Claim(ctx, job.ID, "wB", 1000)
			if err != nil {
				t.Fatal(err)
			}
			if len(empty.Shards) != 0 {
				t.Fatalf("claim before lease expiry got %d shards, want 0 (leases restored)",
					len(empty.Shards))
			}
			fc.Advance(31 * time.Second)
			reclaim, err := c2.Claim(ctx, job.ID, "wB", 1000)
			if err != nil {
				t.Fatal(err)
			}
			if len(reclaim.Shards) != len(claim.Shards)-n {
				t.Fatalf("re-exposed %d shards, want the %d pending ones",
					len(reclaim.Shards), len(claim.Shards)-n)
			}
			for _, sh := range reclaim.Shards {
				ack, err := c2.PushShardResult(ctx, job.ID, sh.Index, "wB", sh.Lease, wires[sh.Index])
				if err != nil || ack.Status != "accepted" {
					t.Fatalf("upload shard %d = %+v, %v", sh.Index, ack, err)
				}
			}
			wantDatasetMatch(t, c2, job.ID)

			text, err := c2.MetricsText(ctx)
			if err != nil {
				t.Fatal(err)
			}
			for _, want := range []string{
				`repro_recovery_jobs_total{outcome="resumed"} 1`,
				fmt.Sprintf("repro_recovery_shards_total %d", n),
			} {
				if !contains(text, want) {
					t.Errorf("metrics missing %q", want)
				}
			}
			// The journal is deleted once the merged run files.
			if _, err := os.Stat(walPath(dir, job.ID)); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("journal still present after completed recovery: %v", err)
			}
		})
	}
}

// TestRecoveryOldTokenAcceptedSeqAdvances: a pre-crash worker still
// executing can land its upload on the restarted coordinator under its
// old token, and post-restart re-issues mint tokens strictly above the
// recovered seq high-water so the old token goes stale the moment the
// shard is re-leased.
func TestRecoveryOldTokenAcceptedSeqAdvances(t *testing.T) {
	dir := t.TempDir()
	fc := newFakeClock()
	ctx := context.Background()

	_, ts1, c1 := startCrashServer(t, dir, fc)
	job, _, err := c1.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	claim, err := c1.Claim(ctx, job.ID, "wA", 1000)
	if err != nil {
		t.Fatal(err)
	}
	wires := execWires(t, distSpec, claim.SpecHash)
	ts1.Close() // crash with every shard leased, none uploaded

	_, _, c2 := startCrashServer(t, dir, fc)

	// The old token is the restored lease: an upload under it lands.
	first := claim.Shards[0]
	ack, err := c2.PushShardResult(ctx, job.ID, first.Index, "wA", first.Lease, wires[first.Index])
	if err != nil || ack.Status != "accepted" {
		t.Fatalf("pre-crash token upload = %+v, %v", ack, err)
	}

	// Expire the rest; re-issue to wB. The new tokens must differ from
	// the journaled ones (seq high-water restored), and the old token is
	// now stale.
	fc.Advance(31 * time.Second)
	reclaim, err := c2.Claim(ctx, job.ID, "wB", 1000)
	if err != nil {
		t.Fatal(err)
	}
	old := make(map[int]string, len(claim.Shards))
	for _, sh := range claim.Shards {
		old[sh.Index] = sh.Lease
	}
	for _, sh := range reclaim.Shards {
		if sh.Lease == old[sh.Index] {
			t.Fatalf("shard %d re-issued with the pre-crash token %q", sh.Index, sh.Lease)
		}
	}
	stale := reclaim.Shards[0]
	_, err = c2.PushShardResult(ctx, job.ID, stale.Index, "wA", old[stale.Index], wires[stale.Index])
	wantCode(t, err, 409, "stale_result")

	for _, sh := range reclaim.Shards {
		if _, err := c2.PushShardResult(ctx, job.ID, sh.Index, "wB", sh.Lease, wires[sh.Index]); err != nil {
			t.Fatal(err)
		}
	}
	wantDatasetMatch(t, c2, job.ID)
}

// TestRecoveryCompletesJournaledMerge: the crash hits after every
// shard result is journaled but before the merge files in the store
// (failpoint server.finalize:crash-before-store). The restarted
// coordinator finishes the merge itself — no worker runs again.
func TestRecoveryCompletesJournaledMerge(t *testing.T) {
	dir := t.TempDir()
	fc := newFakeClock()
	ctx := context.Background()

	remove := failpoint.SetHook(failpoint.FinalizeBeforeStore, func() error {
		return errors.New("injected: crash before store")
	})
	defer remove()

	_, ts1, c1 := startCrashServer(t, dir, fc)
	job, _, err := c1.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	claim, err := c1.Claim(ctx, job.ID, "wA", 1000)
	if err != nil {
		t.Fatal(err)
	}
	wires := execWires(t, distSpec, claim.SpecHash)
	for _, sh := range claim.Shards {
		ack, err := c1.PushShardResult(ctx, job.ID, sh.Index, "wA", sh.Lease, wires[sh.Index])
		if err != nil || ack.Status != "accepted" {
			t.Fatalf("upload shard %d = %+v, %v", sh.Index, ack, err)
		}
	}
	// Every result is acknowledged and journaled, but the merge was cut
	// down by the failpoint: the job never reached done.
	mid, err := c1.Job(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mid.State == "done" {
		t.Fatal("finalize failpoint did not abort the merge")
	}
	ts1.Close()
	remove()

	_, _, c2 := startCrashServer(t, dir, fc)
	wantDatasetMatch(t, c2, job.ID)
	text, err := c2.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(text, `repro_recovery_jobs_total{outcome="completed"} 1`) {
		t.Errorf("metrics missing the completed-recovery outcome:\n%s", text)
	}
}

// TestRecoveryAlreadyDone: the crash hits between the store's atomic
// rename and the journal removal, simulated by restoring a pre-merge
// copy of the journal next to the filed run. Recovery tidies: the job
// is done, the stale journal is deleted, nothing re-executes.
func TestRecoveryAlreadyDone(t *testing.T) {
	dir := t.TempDir()
	fc := newFakeClock()
	ctx := context.Background()

	_, ts1, c1 := startCrashServer(t, dir, fc)
	job, _, err := c1.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	claim, err := c1.Claim(ctx, job.ID, "wA", 1000)
	if err != nil {
		t.Fatal(err)
	}
	wires := execWires(t, distSpec, claim.SpecHash)
	last := len(claim.Shards) - 1
	for _, sh := range claim.Shards[:last] {
		if _, err := c1.PushShardResult(ctx, job.ID, sh.Index, "wA", sh.Lease, wires[sh.Index]); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot the journal before the completing upload deletes it.
	snap, err := os.ReadFile(walPath(dir, job.ID))
	if err != nil {
		t.Fatal(err)
	}
	sh := claim.Shards[last]
	if _, err := c1.PushShardResult(ctx, job.ID, sh.Index, "wA", sh.Lease, wires[sh.Index]); err != nil {
		t.Fatal(err)
	}
	done, err := c1.Job(ctx, job.ID)
	if err != nil || done.State != "done" {
		t.Fatalf("job = %+v, %v, want done", done, err)
	}
	ts1.Close()
	// The crash window: run filed, journal still on disk.
	if err := os.WriteFile(walPath(dir, job.ID), snap, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, c2 := startCrashServer(t, dir, fc)
	wantDatasetMatch(t, c2, job.ID)
	if _, err := os.Stat(walPath(dir, job.ID)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale journal survived already-done recovery: %v", err)
	}
	text, err := c2.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(text, `repro_recovery_jobs_total{outcome="already_done"} 1`) {
		t.Errorf("metrics missing the already-done outcome:\n%s", text)
	}
}

// TestRecoveryDuplicateResultRecords: the crash-between-journal-and-ack
// window. The failpoint kills the request after the result record is
// fsync'd but before it applies; the worker's idempotent retry appends
// a second record for the same shard. Replay dedups first-wins — the
// shard counts once, runs once, and the dataset is unchanged.
func TestRecoveryDuplicateResultRecords(t *testing.T) {
	dir := t.TempDir()
	fc := newFakeClock()
	ctx := context.Background()

	_, ts1, c1 := startCrashServer(t, dir, fc)
	job, _, err := c1.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	claim, err := c1.Claim(ctx, job.ID, "wA", 1000)
	if err != nil {
		t.Fatal(err)
	}
	wires := execWires(t, distSpec, claim.SpecHash)

	// First upload: journaled, then the failpoint cuts the request down.
	remove := failpoint.SetHook(failpoint.AcceptResultAfterJournal, func() error {
		return errors.New("injected: crash after journal append")
	})
	first := claim.Shards[0]
	_, err = c1.PushShardResult(ctx, job.ID, first.Index, "wA", first.Lease, wires[first.Index])
	wantCode(t, err, 500, "internal")
	remove()

	// The idempotent retry lands and appends a second result record.
	ack, err := c1.PushShardResult(ctx, job.ID, first.Index, "wA", first.Lease, wires[first.Index])
	if err != nil || ack.Status != "accepted" {
		t.Fatalf("retried upload = %+v, %v", ack, err)
	}
	// Leave exactly one shard pending and crash.
	for _, sh := range claim.Shards[1 : len(claim.Shards)-1] {
		if _, err := c1.PushShardResult(ctx, job.ID, sh.Index, "wA", sh.Lease, wires[sh.Index]); err != nil {
			t.Fatal(err)
		}
	}
	ts1.Close()

	_, _, c2 := startCrashServer(t, dir, fc)
	got, err := c2.Job(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(claim.Shards) - 1; got.ShardsDone != want {
		t.Fatalf("recovered shardsDone = %d, want %d (duplicate record must count once)",
			got.ShardsDone, want)
	}
	fc.Advance(31 * time.Second)
	reclaim, err := c2.Claim(ctx, job.ID, "wB", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(reclaim.Shards) != 1 {
		t.Fatalf("re-exposed %d shards, want exactly the 1 pending", len(reclaim.Shards))
	}
	sh := reclaim.Shards[0]
	if _, err := c2.PushShardResult(ctx, job.ID, sh.Index, "wB", sh.Lease, wires[sh.Index]); err != nil {
		t.Fatal(err)
	}
	wantDatasetMatch(t, c2, job.ID)
}

// TestRecoveryTornTail: a crash mid-append leaves a damaged final line.
// Nothing torn was ever acknowledged, so the tail is dropped, counted,
// and the job recovers with every acknowledged shard intact.
func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	fc := newFakeClock()
	ctx := context.Background()

	_, ts1, c1 := startCrashServer(t, dir, fc)
	job, _, err := c1.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	claim, err := c1.Claim(ctx, job.ID, "wA", 1000)
	if err != nil {
		t.Fatal(err)
	}
	wires := execWires(t, distSpec, claim.SpecHash)
	if _, err := c1.PushShardResult(ctx, job.ID, claim.Shards[0].Index, "wA", claim.Shards[0].Lease, wires[claim.Shards[0].Index]); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// The torn append: a half-written record with no trailing newline.
	f, err := os.OpenFile(walPath(dir, job.ID), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`w1 00000000 {"t":"result","idx":`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, _, c2 := startCrashServer(t, dir, fc)
	got, err := c2.Job(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != "running" || got.ShardsDone != 1 {
		t.Fatalf("recovered job = state %s done %d, want running with 1 accepted", got.State, got.ShardsDone)
	}
	text, err := c2.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(text, "repro_journal_torn_tails_total 1") {
		t.Errorf("metrics missing the torn-tail count:\n%s", text)
	}

	fc.Advance(31 * time.Second)
	reclaim, err := c2.Claim(ctx, job.ID, "wB", 1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range reclaim.Shards {
		if _, err := c2.PushShardResult(ctx, job.ID, sh.Index, "wB", sh.Lease, wires[sh.Index]); err != nil {
			t.Fatal(err)
		}
	}
	wantDatasetMatch(t, c2, job.ID)
}

// TestRecoveryMidFileCorruption: a damaged line with valid records
// after it is disk corruption, not a torn append. The job surfaces as
// failed — job_failed in the envelope, never a panic, never a merge of
// doubtful bytes — and the journal stays on disk as evidence.
func TestRecoveryMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	fc := newFakeClock()
	ctx := context.Background()

	_, ts1, c1 := startCrashServer(t, dir, fc)
	job, _, err := c1.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	claim, err := c1.Claim(ctx, job.ID, "wA", 1000)
	if err != nil {
		t.Fatal(err)
	}
	wires := execWires(t, distSpec, claim.SpecHash)
	for _, sh := range claim.Shards[:2] {
		if _, err := c1.PushShardResult(ctx, job.ID, sh.Index, "wA", sh.Lease, wires[sh.Index]); err != nil {
			t.Fatal(err)
		}
	}
	ts1.Close()

	// Flip one byte in the middle of line 2; later lines stay valid.
	path := walPath(dir, job.ID)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(data, []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("journal has %d lines, want >= 4", len(lines))
	}
	lines[1][len(lines[1])/2] ^= 0xff
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, c2 := startCrashServer(t, dir, fc)
	got, err := c2.Job(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != "failed" {
		t.Fatalf("corrupted job state = %s, want failed", got.State)
	}
	_, err = c2.JobDataset(ctx, job.ID)
	wantCode(t, err, 502, "job_failed")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("corrupt journal must stay on disk as evidence: %v", err)
	}
	text, err := c2.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(text, `repro_recovery_jobs_total{outcome="failed"} 1`) {
		t.Errorf("metrics missing the failed-recovery outcome:\n%s", text)
	}
	// A damaged journal never takes the server down: fresh work runs.
	if _, err := c2.Stats(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryTruncatedJournal: a journal truncated to nothing (the
// submission record itself lost) fails the job cleanly instead of
// panicking or silently dropping it.
func TestRecoveryTruncatedJournal(t *testing.T) {
	dir := t.TempDir()
	fc := newFakeClock()
	ctx := context.Background()

	_, ts1, c1 := startCrashServer(t, dir, fc)
	job, _, err := c1.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	if err := os.Truncate(walPath(dir, job.ID), 0); err != nil {
		t.Fatal(err)
	}

	_, _, c2 := startCrashServer(t, dir, fc)
	got, err := c2.Job(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != "failed" {
		t.Fatalf("truncated-journal job state = %s, want failed", got.State)
	}
	_, err = c2.JobReport(ctx, job.ID)
	wantCode(t, err, 502, "job_failed")
}

// TestRecoveryFreshIDsAboveRecovered: a restarted coordinator must
// never hand a new job an ID that collides with (and truncates) a
// recovered journal.
func TestRecoveryFreshIDsAboveRecovered(t *testing.T) {
	dir := t.TempDir()
	fc := newFakeClock()
	ctx := context.Background()

	_, ts1, c1 := startCrashServer(t, dir, fc)
	job, _, err := c1.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	_, _, c2 := startCrashServer(t, dir, fc)
	// A different spec (seed differs) so it is a fresh job, not a cache
	// hit on the recovered one.
	other := `{"spec": 1, "scale": "small", "traces": 1, "seed": 2016, "stride": 0,
	  "execution": "distributed"}`
	fresh, created, err := c2.SubmitRaw(ctx, []byte(other))
	if err != nil {
		t.Fatal(err)
	}
	if !created || fresh.ID == job.ID {
		t.Fatalf("fresh job = %s created %v; must not reuse recovered ID %s", fresh.ID, created, job.ID)
	}
}

// TestDrainRejectsNewWorkAcceptsInFlight: the graceful-shutdown
// half-close. BeginDrain refuses new submissions and claims with 503
// unavailable + Retry-After, keeps heartbeats and in-flight uploads
// landing, flips healthz to draining, and Close leaves a clean-shutdown
// marker the next startup consumes.
func TestDrainRejectsNewWorkAcceptsInFlight(t *testing.T) {
	dir := t.TempDir()
	fc := newFakeClock()
	ctx := context.Background()

	srv, ts, client := startCrashServer(t, dir, fc)
	job, _, err := client.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	claim, err := client.Claim(ctx, job.ID, "wA", 1000)
	if err != nil {
		t.Fatal(err)
	}
	wires := execWires(t, distSpec, claim.SpecHash)

	srv.BeginDrain()

	// New work is refused with the retry hint...
	_, _, err = client.SubmitRaw(ctx, []byte(`{"spec": 1, "scale": "small", "traces": 1,
	  "seed": 2017, "stride": 0, "execution": "distributed"}`))
	wantCode(t, err, 503, "unavailable")
	var ae *apiclient.APIError
	if !errors.As(err, &ae) || ae.RetryAfter <= 0 {
		t.Fatalf("drain rejection carries no Retry-After: %+v", err)
	}
	_, err = client.Claim(ctx, job.ID, "wB", 1000)
	wantCode(t, err, 503, "unavailable")

	// ...while the in-flight lease stays serviceable end to end.
	first := claim.Shards[0]
	if _, err := client.Heartbeat(ctx, job.ID, first.Index, "wA", first.Lease); err != nil {
		t.Fatalf("heartbeat during drain: %v", err)
	}
	for _, sh := range claim.Shards {
		ack, err := client.PushShardResult(ctx, job.ID, sh.Index, "wA", sh.Lease, wires[sh.Index])
		if err != nil || ack.Status != "accepted" {
			t.Fatalf("upload during drain = %+v, %v", ack, err)
		}
	}
	wantDatasetMatch(t, client, job.ID)

	// healthz reports draining with 503 so load balancers rotate out.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("healthz during drain = %d, want 503", resp.StatusCode)
	}

	srv.Close()
	marker := filepath.Join(dir, "journal", "clean-shutdown")
	if _, err := os.Stat(marker); err != nil {
		t.Fatalf("clean-shutdown marker not written: %v", err)
	}
	_, _, c2 := startCrashServer(t, dir, fc)
	if _, err := c2.Stats(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(marker); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("clean-shutdown marker not consumed on restart: %v", err)
	}
}
