package server

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/campaign"
	"repro/internal/dataset"
	"repro/internal/telemetry"
)

// The async job manager runs submitted campaigns on a bounded pool of
// worker goroutines and tracks each through the queued → running →
// done/failed lifecycle. Three deduplication layers keep identical
// submissions from re-simulating:
//
//  1. store hit: the spec's cache key is already filed → a synthetic
//     done job serves the cached artifacts instantly;
//  2. in-flight join: an identical spec is queued or running → the
//     submission attaches to that job instead of queuing another;
//  3. post-run race: two runs of the same key that somehow both finish
//     file once (Store.Put keeps the first).
//
// All job state is guarded by mgr.mu; API handlers only ever see
// snapshot copies.

// JobState is a job's lifecycle phase.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// ShardProgress is one (vantage, slice) shard's completion state within
// a job — the unit a later PR lets remote workers claim over the API.
type ShardProgress struct {
	campaign.ShardInfo
	State string `json:"state"` // pending | running | done
	// Execution stats, populated when the shard completes.
	Events         uint64  `json:"events,omitempty"`
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
}

// JobView is the API-facing snapshot of a job.
type JobView struct {
	ID    string   `json:"id"`
	Key   string   `json:"key"`
	State JobState `json:"state"`
	// Cached marks a submission served entirely from the store, without
	// queuing a run.
	Cached bool          `json:"cached"`
	Error  string        `json:"error,omitempty"`
	Spec   campaign.Spec `json:"spec"`

	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`

	// Progress counters, fed by the campaign engine's ShardStart/
	// ShardDone hooks.
	ShardsTotal int `json:"shards_total"`
	ShardsDone  int `json:"shards_done"`
	TracesTotal int `json:"traces_total"`
	TracesDone  int `json:"traces_done"`
}

// Stats are the manager's lifetime counters; the service-smoke CI job
// asserts cache correctness through them.
type Stats struct {
	// Submitted counts POST /v1/campaigns acceptances; CacheHits the
	// submissions served from the store; Joined the submissions deduped
	// onto an in-flight identical job; RunsStarted the campaigns that
	// actually simulated; RunsFailed the subset that errored.
	Submitted   int `json:"submitted"`
	CacheHits   int `json:"cache_hits"`
	Joined      int `json:"joined"`
	RunsStarted int `json:"runs_started"`
	RunsFailed  int `json:"runs_failed"`
	Jobs        int `json:"jobs"`
}

type job struct {
	id     string
	key    string
	spec   campaign.Spec // normalized
	state  JobState
	cached bool
	err    string

	submitted time.Time
	started   time.Time
	finished  time.Time

	shards      []ShardProgress
	shardsDone  int
	tracesTotal int
	tracesDone  int
}

func (j *job) view() JobView {
	v := JobView{
		ID:          j.id,
		Key:         j.key,
		State:       j.state,
		Cached:      j.cached,
		Error:       j.err,
		Spec:        j.spec,
		Submitted:   j.submitted,
		ShardsTotal: len(j.shards),
		ShardsDone:  j.shardsDone,
		TracesTotal: j.tracesTotal,
		TracesDone:  j.tracesDone,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

const maxQueuedJobs = 1024

type jobMgr struct {
	store  *Store
	met    *serverMetrics
	logger *slog.Logger

	mu      sync.Mutex
	jobs    map[string]*job
	order   []*job          // submission order, for listing
	active  map[string]*job // cache key → queued/running job
	stats   Stats
	nextID  int
	running int
	closed  bool

	queue chan *job
	wg    sync.WaitGroup
}

// newJobMgr starts a manager draining its queue with `workers`
// concurrent campaign runs.
func newJobMgr(store *Store, workers int, met *serverMetrics, logger *slog.Logger) *jobMgr {
	if workers < 1 {
		workers = 1
	}
	m := &jobMgr{
		store:  store,
		met:    met,
		logger: logger,
		jobs:   make(map[string]*job),
		active: make(map[string]*job),
		queue:  make(chan *job, maxQueuedJobs),
	}
	for w := 0; w < workers; w++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for j := range m.queue {
				m.runJob(j)
			}
		}()
	}
	return m
}

// Close stops accepting jobs and waits for in-flight runs to finish.
func (m *jobMgr) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.queue)
	m.wg.Wait()
}

// Submit registers a validated spec and returns the job serving it —
// a fresh queued job (created=true), the in-flight job for an
// identical spec, or a synthetic done job for a store hit (both
// created=false).
func (m *jobMgr) Submit(spec campaign.Spec) (view JobView, created bool, err error) {
	key, err := spec.CacheKey()
	if err != nil {
		return JobView{}, false, err
	}
	norm := spec.Normalized()
	cfg, err := norm.Config()
	if err != nil {
		return JobView{}, false, err
	}
	plan := cfg.Shards()
	if len(plan) == 0 {
		return JobView{}, false, &campaign.ValidationError{Fields: []campaign.FieldError{
			{Field: "trace_plan", Msg: "plan selects no vantages"},
		}}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return JobView{}, false, fmt.Errorf("server: job manager is shut down")
	}
	m.stats.Submitted++
	m.met.jobsSubmitted.Inc()

	if j, ok := m.active[key]; ok {
		m.stats.Joined++
		m.met.jobsJoined.Inc()
		m.met.journal.Append(telemetry.EventJobJoined, &j.id, nil, -1, -1)
		return j.view(), false, nil
	}
	if m.store.Has(key) {
		m.stats.CacheHits++
		m.met.storeHits.Inc()
		j := m.newJobLocked(key, norm, plan)
		j.state = JobDone
		j.cached = true
		j.finished = time.Now()
		for i := range j.shards {
			j.shards[i].State = "done"
		}
		j.shardsDone = len(j.shards)
		j.tracesDone = j.tracesTotal
		m.met.journal.Append(telemetry.EventJobCacheHit, &j.id, nil, -1, -1)
		return j.view(), false, nil
	}
	m.met.storeMisses.Inc()

	j := m.newJobLocked(key, norm, plan)
	select {
	case m.queue <- j:
	default:
		delete(m.jobs, j.id)
		m.order = m.order[:len(m.order)-1]
		return JobView{}, false, fmt.Errorf("server: job queue full (%d queued)", maxQueuedJobs)
	}
	m.active[key] = j
	m.met.journal.Append(telemetry.EventJobQueued, &j.id, nil, -1, -1)
	return j.view(), true, nil
}

// newJobLocked allocates and registers a job; callers hold m.mu.
func (m *jobMgr) newJobLocked(key string, spec campaign.Spec, plan []campaign.ShardInfo) *job {
	m.nextID++
	j := &job{
		id:        fmt.Sprintf("j-%06d", m.nextID),
		key:       key,
		spec:      spec,
		state:     JobQueued,
		submitted: time.Now(),
		shards:    make([]ShardProgress, len(plan)),
	}
	for i, sh := range plan {
		j.shards[i] = ShardProgress{ShardInfo: sh, State: "pending"}
		j.tracesTotal += sh.Traces
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j)
	m.stats.Jobs++
	return j
}

// runJob executes one queued campaign on a worker goroutine.
func (m *jobMgr) runJob(j *job) {
	m.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	m.stats.RunsStarted++
	m.running++
	m.mu.Unlock()
	m.met.jobsStarted.Inc()
	m.met.jobsRunning.Add(1)
	m.met.journal.Append(telemetry.EventJobRunning, &j.id, nil, -1, -1)
	m.logger.Info("job start", "job", j.id, "key", j.key[:12])

	fail := func(err error) {
		m.mu.Lock()
		j.state = JobFailed
		j.err = err.Error()
		j.finished = time.Now()
		delete(m.active, j.key)
		m.stats.RunsFailed++
		m.running--
		m.mu.Unlock()
		m.met.jobsFailed.Inc()
		m.met.jobsRunning.Add(-1)
		m.met.journal.Append(telemetry.EventJobFailed, &j.id, &j.err, -1, -1)
		m.logger.Error("job failed", "job", j.id, "error", err)
	}

	cfg, err := j.spec.Config()
	if err != nil {
		fail(err)
		return
	}
	cfg.Metrics = m.met.campaign
	cfg.ShardStart = func(shard, slice int, vantage string) {
		m.setShardState(j, shard, slice, "running", nil)
	}
	cfg.ShardDone = func(stats campaign.ShardStats) {
		m.setShardState(j, stats.Shard, stats.Slice, "done", &stats)
	}

	start := time.Now()
	res, err := campaign.Run(cfg)
	if err != nil {
		fail(err)
		return
	}
	wall := time.Since(start)

	var buf bytes.Buffer
	if err := dataset.Write(&buf, res.Dataset); err != nil {
		fail(err)
		return
	}
	specBytes, err := j.spec.Canonical()
	if err != nil {
		fail(err)
		return
	}
	meta := RunMeta{
		Key:                j.key,
		Spec:               j.spec,
		DatasetSHA256:      fmt.Sprintf("%x", sha256.Sum256(buf.Bytes())),
		DatasetBytes:       int64(buf.Len()),
		Traces:             len(res.Dataset.Traces),
		Servers:            len(res.Servers),
		Shards:             len(res.Shards),
		Events:             res.Events,
		PhantomEvents:      res.PhantomEvents,
		ReplayedBoundaries: res.ReplayedBoundaries,
		WallSeconds:        wall.Seconds(),
		CompletedAt:        time.Now().UTC(),
	}
	if len(res.Congestion) > 0 {
		rep := analysis.ComputeCEMarkReport(res.Congestion)
		meta.Congestion = &rep
	}
	if err := m.store.Put(j.key, specBytes, meta, buf.Bytes()); err != nil {
		fail(err)
		return
	}

	m.mu.Lock()
	j.state = JobDone
	j.finished = time.Now()
	delete(m.active, j.key)
	m.running--
	m.mu.Unlock()
	m.met.jobsDone.Inc()
	m.met.jobsRunning.Add(-1)
	m.met.storeBytesWritten.Add(uint64(buf.Len()))
	m.met.journal.Append(telemetry.EventJobDone, &j.id, nil, -1, -1)
	m.logger.Info("job done", "job", j.id, "key", j.key[:12],
		"traces", meta.Traces, "wall_seconds", meta.WallSeconds)
}

// setShardState updates one (vantage-index, slice) shard's progress
// and journals the transition. The journal's job and detail pointers
// are &j.id and &sh.Vantage: both are heap-stable for the job's
// lifetime (a job's shards slice is allocated once and never grows).
func (m *jobMgr) setShardState(j *job, shard, slice int, state string, stats *campaign.ShardStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range j.shards {
		sh := &j.shards[i]
		if sh.Shard != shard || sh.Slice != slice {
			continue
		}
		sh.State = state
		kind := telemetry.EventShardStart
		if stats != nil {
			kind = telemetry.EventShardDone
			sh.Events = stats.Events
			sh.ElapsedSeconds = stats.Elapsed.Seconds()
			j.shardsDone++
			j.tracesDone += stats.Traces
		}
		m.met.journal.Append(kind, &j.id, &sh.Vantage, int32(shard), int32(slice))
		return
	}
}

// QueueDepth reports the number of jobs waiting for a worker.
func (m *jobMgr) QueueDepth() int { return len(m.queue) }

// Running reports the number of campaigns currently executing.
func (m *jobMgr) Running() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.running
}

// Get returns a snapshot of the identified job.
func (m *jobMgr) Get(id string) (JobView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// List returns snapshots of every job in submission order.
func (m *jobMgr) List() []JobView {
	m.mu.Lock()
	defer m.mu.Unlock()
	views := make([]JobView, len(m.order))
	for i, j := range m.order {
		views[i] = j.view()
	}
	return views
}

// Shards returns a job's per-(vantage, slice) completion snapshot.
func (m *jobMgr) Shards(id string) ([]ShardProgress, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, false
	}
	out := make([]ShardProgress, len(j.shards))
	copy(out, j.shards)
	return out, true
}

// StatsSnapshot returns the lifetime counters.
func (m *jobMgr) StatsSnapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
