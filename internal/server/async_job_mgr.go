package server

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/campaign"
	"repro/internal/dataset"
	"repro/internal/telemetry"
)

// The async job manager runs submitted campaigns on a bounded pool of
// worker goroutines and tracks each through the queued → running →
// done/failed lifecycle. Three deduplication layers keep identical
// submissions from re-simulating:
//
//  1. store hit: the spec's cache key is already filed → a synthetic
//     done job serves the cached artifacts instantly;
//  2. in-flight join: an identical spec is queued or running → the
//     submission attaches to that job instead of queuing another;
//  3. post-run race: two runs of the same key that somehow both finish
//     file once (Store.Put keeps the first).
//
// All job state is guarded by mgr.mu; API handlers only ever see
// snapshot copies.

// JobState is a job's lifecycle phase.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// ShardProgress is one (vantage, slice) shard's completion state
// within a job. In-process shards move pending → running → done;
// distributed shards move pending → leased → done (with evictions
// looping leased back to pending — see leases.go).
type ShardProgress struct {
	campaign.ShardInfo
	State string `json:"state"` // pending | running | leased | done
	// Worker is the worker holding (or having completed) a distributed
	// shard; empty for in-process execution.
	Worker string `json:"worker,omitempty"`
	// Execution stats, populated when the shard completes.
	Events         uint64  `json:"events,omitempty"`
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
}

// JobView is the API-facing snapshot of a job.
type JobView struct {
	ID    string   `json:"id"`
	Key   string   `json:"key"`
	State JobState `json:"state"`
	// Cached marks a submission served entirely from the store, without
	// queuing a run.
	Cached bool          `json:"cached"`
	Error  string        `json:"error,omitempty"`
	Spec   campaign.Spec `json:"spec"`

	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`

	// Progress counters, fed by the campaign engine's ShardStart/
	// ShardDone hooks.
	ShardsTotal int `json:"shards_total"`
	ShardsDone  int `json:"shards_done"`
	TracesTotal int `json:"traces_total"`
	TracesDone  int `json:"traces_done"`
}

// Stats are the manager's lifetime counters; the service-smoke CI job
// asserts cache correctness through them.
type Stats struct {
	// Submitted counts POST /v1/campaigns acceptances; CacheHits the
	// submissions served from the store; Joined the submissions deduped
	// onto an in-flight identical job; RunsStarted the campaigns that
	// actually simulated; RunsFailed the subset that errored.
	Submitted   int `json:"submitted"`
	CacheHits   int `json:"cache_hits"`
	Joined      int `json:"joined"`
	RunsStarted int `json:"runs_started"`
	RunsFailed  int `json:"runs_failed"`
	Jobs        int `json:"jobs"`
	// Recovered counts jobs reconstructed from the write-ahead journal
	// at startup (whatever their recovered state); the crash-smoke CI
	// job asserts it is non-zero after a mid-campaign kill.
	Recovered int `json:"recovered"`
}

type job struct {
	id     string
	key    string
	spec   campaign.Spec // normalized
	state  JobState
	cached bool
	err    string
	// pos is the job's index in mgr.order — the pagination cursor's
	// resume point.
	pos int

	submitted time.Time
	started   time.Time
	finished  time.Time

	shards      []ShardProgress
	shardsDone  int
	tracesTotal int
	tracesDone  int

	// Distributed execution state (see leases.go): leases and wires
	// parallel shards; finalizing latches the upload that completes the
	// plan so exactly one caller runs the merge.
	execution  string
	leases     []shardLease
	wires      []*campaign.ShardResultWire
	finalizing bool
	// Shard-duration statistics (seconds) from accepted uploads: the
	// straggler detector's baseline and the adaptive claim sizer's
	// input. durEWMA is the smoothed typical duration, durMax the
	// slowest accepted shard, durCount the sample count.
	durEWMA  float64
	durMax   float64
	durCount int
	// compacting latches while a checkpoint for this job is queued or
	// being written, so seals never stack concurrent compactions.
	compacting bool
	// wal is the job's open write-ahead journal (journal.go); nil for
	// in-process jobs and when journaling is disabled. Appends are
	// serialized by mgr.mu like the state they shadow.
	wal *jobWAL
}

func (j *job) view() JobView {
	v := JobView{
		ID:          j.id,
		Key:         j.key,
		State:       j.state,
		Cached:      j.cached,
		Error:       j.err,
		Spec:        j.spec,
		Submitted:   j.submitted,
		ShardsTotal: len(j.shards),
		ShardsDone:  j.shardsDone,
		TracesTotal: j.tracesTotal,
		TracesDone:  j.tracesDone,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

const maxQueuedJobs = 1024

type jobMgr struct {
	store  *Store
	met    *serverMetrics
	logger *slog.Logger

	// now is the manager's clock; tests inject a fake so lease expiry
	// is driven, never slept for. leaseTTL is the lifetime of granted
	// shard leases.
	now      func() time.Time
	leaseTTL time.Duration

	// Self-healing tunables (see leases.go, workers.go): speculateAfter
	// is the straggler multiple (≤0 disables speculation), quarThreshold
	// the scoreboard strike limit (≤0 disables quarantine), and
	// maxOpenShards the admission watermark over queue depth + running
	// distributed shards (≤0 disables shedding).
	speculateAfter float64
	quarThreshold  int
	maxOpenShards  int

	// wal is the write-ahead journal directory for distributed jobs;
	// nil disables journaling (Config.DisableJournal, and benchmarks
	// that want the no-durability baseline).
	wal *walDir

	mu      sync.Mutex
	jobs    map[string]*job
	order   []*job          // submission order, for listing
	active  map[string]*job // cache key → queued/running job
	stats   Stats
	nextID  int
	running int
	closed  bool
	// draining rejects new submissions and claims with 503 unavailable
	// + Retry-After while in-flight shard uploads still land — the
	// graceful-shutdown window (BeginDrain).
	draining bool
	// workerNames interns worker IDs so journal appends can carry a
	// heap-stable *string without allocating per event.
	workerNames map[string]*string
	// workers is the health scoreboard (workers.go), keyed by worker ID.
	workers map[string]*workerHealth
	// openShards counts distributed shards submitted but not yet
	// accepted — the admission watermark's running half.
	openShards int

	queue chan *job
	// compactCh feeds the single compactor goroutine (compact.go) the
	// checkpoint segments reserved by seals.
	compactCh chan compactReq
	wg        sync.WaitGroup
}

// newJobMgr starts a manager draining its queue with `workers`
// concurrent campaign runs.
func newJobMgr(store *Store, workers int, met *serverMetrics, logger *slog.Logger) *jobMgr {
	if workers < 1 {
		workers = 1
	}
	m := &jobMgr{
		store:          store,
		met:            met,
		logger:         logger,
		now:            time.Now,
		leaseTTL:       defaultLeaseTTL,
		speculateAfter: defaultSpeculateAfter,
		quarThreshold:  defaultQuarantineThreshold,
		maxOpenShards:  defaultMaxOpenShards,
		jobs:           make(map[string]*job),
		active:         make(map[string]*job),
		workerNames:    make(map[string]*string),
		workers:        make(map[string]*workerHealth),
		queue:          make(chan *job, maxQueuedJobs),
		compactCh:      make(chan compactReq, maxCompactBacklog),
	}
	for w := 0; w < workers; w++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for j := range m.queue {
				m.runJob(j)
			}
		}()
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for req := range m.compactCh {
			m.compactJob(req)
		}
	}()
	return m
}

// Close stops accepting jobs and waits for in-flight runs to finish,
// then journals a clean-shutdown marker: the next startup knows this
// process exited deliberately rather than crashed.
func (m *jobMgr) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.queue)
	close(m.compactCh)
	m.wg.Wait()

	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.order {
		if j.wal != nil {
			j.wal.close()
			j.wal = nil
		}
	}
	if m.wal != nil {
		if err := m.wal.markCleanShutdown(m.now()); err != nil {
			m.logger.Error("clean-shutdown marker", "error", err)
		}
	}
}

// BeginDrain enters the graceful-shutdown window: new submissions and
// shard claims are refused with 503 unavailable + Retry-After so
// workers back off, while heartbeats and in-flight result uploads for
// existing leases keep landing (and keep being journaled). The caller
// stops accepting connections and Closes once the window lapses.
func (m *jobMgr) BeginDrain() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.draining = true
}

// Draining reports whether the drain window is open (healthz).
func (m *jobMgr) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// drainRetryAfterSeconds is the back-off hint sent with drain-window
// rejections — long enough for a restart to come back, short enough
// that workers retry briskly.
const drainRetryAfterSeconds = 2

// walAppend frames one record into a job's journal, counting journal
// traffic. A nil j.wal (in-process job, journaling disabled) is a
// no-op. Callers hold m.mu.
func (m *jobMgr) walAppend(j *job, rec *walRecord) error {
	if j.wal == nil {
		return nil
	}
	n, err := j.wal.append(rec)
	if err != nil {
		return err
	}
	m.met.journalRecords.Inc()
	m.met.journalBytes.Add(uint64(n))
	return nil
}

// walSync makes a job's appended records durable; one call per
// acknowledged response. Callers hold m.mu.
func (m *jobMgr) walSync(j *job) error {
	if j.wal == nil {
		return nil
	}
	if err := j.wal.sync(); err != nil {
		return err
	}
	m.met.journalSyncs.Inc()
	return nil
}

// Submit registers a validated spec and returns the job serving it —
// a fresh queued job (created=true), the in-flight job for an
// identical spec, or a synthetic done job for a store hit (both
// created=false).
func (m *jobMgr) Submit(spec campaign.Spec) (view JobView, created bool, err error) {
	key, err := spec.CacheKey()
	if err != nil {
		return JobView{}, false, err
	}
	norm := spec.Normalized()
	cfg, err := norm.Config()
	if err != nil {
		return JobView{}, false, err
	}
	plan := cfg.Shards()
	if len(plan) == 0 {
		return JobView{}, false, &campaign.ValidationError{Fields: []campaign.FieldError{
			{Field: "trace_plan", Msg: "plan selects no vantages"},
		}}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return JobView{}, false, faultf(503, codeUnavailable, "server: job manager is shut down")
	}
	if m.draining {
		return JobView{}, false, faultRetryf(503, codeUnavailable, drainRetryAfterSeconds,
			"server: draining for shutdown; resubmit shortly")
	}
	m.stats.Submitted++
	m.met.jobsSubmitted.Inc()

	if j, ok := m.active[key]; ok {
		m.stats.Joined++
		m.met.jobsJoined.Inc()
		m.met.journal.Append(telemetry.EventJobJoined, &j.id, nil, -1, -1)
		return j.view(), false, nil
	}
	if m.store.Has(key) {
		m.stats.CacheHits++
		m.met.storeHits.Inc()
		j := m.newJobLocked(key, norm, plan)
		j.state = JobDone
		j.cached = true
		j.finished = m.now()
		for i := range j.shards {
			j.shards[i].State = "done"
		}
		j.shardsDone = len(j.shards)
		j.tracesDone = j.tracesTotal
		m.met.journal.Append(telemetry.EventJobCacheHit, &j.id, nil, -1, -1)
		return j.view(), false, nil
	}
	m.met.storeMisses.Inc()

	// Admission watermark — PCN-style early shedding: refuse new work
	// with 429 + Retry-After while the backlog (queued jobs plus
	// distributed shards not yet accepted) is past the high-water mark,
	// instead of queueing until a hard queue_full. Joins and cache hits
	// were served above — they add no load and are never shed.
	if m.maxOpenShards > 0 {
		if load := len(m.queue) + m.openShards; load >= m.maxOpenShards {
			m.met.submitShed.Inc()
			return JobView{}, false, faultRetryf(http.StatusTooManyRequests, codeOverloaded,
				drainRetryAfterSeconds,
				"server: %d jobs/shards already open (watermark %d); resubmit shortly",
				load, m.maxOpenShards)
		}
	}

	j := m.newJobLocked(key, norm, plan)
	if norm.Execution == campaign.ExecutionDistributed {
		// Distributed jobs never enter the local run queue: they are
		// "running" the moment they exist, and their shards sit pending
		// until workers claim them over the API.
		j.execution = campaign.ExecutionDistributed
		j.state = JobRunning
		j.started = m.now()
		j.leases = make([]shardLease, len(j.shards))
		j.wires = make([]*campaign.ShardResultWire, len(j.shards))
		// Durability before acceptance: the submission record (canonical
		// spec + key — everything recovery needs to rebuild the plan) is
		// fsync'd before the 202 goes out. If the journal cannot take it,
		// the job is refused — better than accepting work the coordinator
		// cannot promise to survive.
		if err := m.openJobWALLocked(j); err != nil {
			delete(m.jobs, j.id)
			m.order = m.order[:len(m.order)-1]
			return JobView{}, false, faultf(500, codeInternal, "%v", err)
		}
		m.active[key] = j
		m.openShards += len(j.shards)
		m.stats.RunsStarted++
		m.met.jobsStarted.Inc()
		m.met.jobsRunning.Add(1)
		m.met.journal.Append(telemetry.EventJobQueued, &j.id, nil, -1, -1)
		m.met.journal.Append(telemetry.EventJobRunning, &j.id, nil, -1, -1)
		return j.view(), true, nil
	}
	select {
	case m.queue <- j:
	default:
		delete(m.jobs, j.id)
		m.order = m.order[:len(m.order)-1]
		return JobView{}, false, faultf(503, codeQueueFull, "server: job queue full (%d queued)", maxQueuedJobs)
	}
	m.active[key] = j
	m.met.journal.Append(telemetry.EventJobQueued, &j.id, nil, -1, -1)
	return j.view(), true, nil
}

// newJobLocked allocates and registers a job; callers hold m.mu.
func (m *jobMgr) newJobLocked(key string, spec campaign.Spec, plan []campaign.ShardInfo) *job {
	m.nextID++
	j := &job{
		id:        fmt.Sprintf("j-%06d", m.nextID),
		key:       key,
		spec:      spec,
		state:     JobQueued,
		pos:       len(m.order),
		submitted: m.now(),
		shards:    make([]ShardProgress, len(plan)),
	}
	for i, sh := range plan {
		j.shards[i] = ShardProgress{ShardInfo: sh, State: "pending"}
		j.tracesTotal += sh.Traces
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j)
	m.stats.Jobs++
	return j
}

// openJobWALLocked creates a distributed job's journal and makes its
// submission record durable. A nil m.wal (journaling disabled) is a
// no-op. Callers hold m.mu.
func (m *jobMgr) openJobWALLocked(j *job) error {
	if m.wal == nil {
		return nil
	}
	specBytes, err := j.spec.Canonical()
	if err != nil {
		return fmt.Errorf("server: journal: canonical spec: %w", err)
	}
	w, err := m.wal.create(j.id)
	if err != nil {
		return err
	}
	j.wal = w
	if err := m.walAppend(j, &walRecord{
		Type: walSubmit, Job: j.id, Key: j.key, Spec: specBytes, Time: m.now(),
	}); err == nil {
		err = m.walSync(j)
	}
	if err != nil {
		j.wal.close()
		j.wal = nil
		_ = m.wal.remove(j.id)
		return err
	}
	return nil
}

// failJob marks a job failed and releases its dedup slot. pool is true
// when the job occupied a local run-queue worker (in-process
// execution); distributed jobs never did.
func (m *jobMgr) failJob(j *job, err error, pool bool) {
	m.mu.Lock()
	j.state = JobFailed
	j.err = err.Error()
	j.finished = m.now()
	delete(m.active, j.key)
	m.stats.RunsFailed++
	if pool {
		m.running--
	}
	if j.execution == campaign.ExecutionDistributed {
		// Release the failed job's unaccepted shards from the admission
		// watermark.
		if open := len(j.shards) - j.shardsDone; open > 0 && m.openShards >= open {
			m.openShards -= open
		}
	}
	if j.wal != nil {
		// The failure is terminal state worth surviving a restart: the
		// journal keeps its file with a failed record so recovery
		// re-surfaces the failure instead of re-running a poisoned merge.
		if werr := m.walAppend(j, &walRecord{Type: walFailed, Error: j.err, Time: m.now()}); werr == nil {
			_ = m.walSync(j)
		}
		j.wal.close()
		j.wal = nil
	}
	m.mu.Unlock()
	m.met.jobsFailed.Inc()
	m.met.jobsRunning.Add(-1)
	m.met.journal.Append(telemetry.EventJobFailed, &j.id, &j.err, -1, -1)
	m.logger.Error("job failed", "job", j.id, "error", err)
}

// fileRun serializes and files a completed campaign's artifacts into
// the content-addressed store — the single path shared by in-process
// runs and distributed merges, so both produce identical RunMeta and
// identical dataset bytes. Returns the dataset size.
func (m *jobMgr) fileRun(j *job, res *campaign.Result, wall time.Duration) (int, error) {
	var buf bytes.Buffer
	if err := dataset.Write(&buf, res.Dataset); err != nil {
		return 0, err
	}
	specBytes, err := j.spec.Canonical()
	if err != nil {
		return 0, err
	}
	meta := RunMeta{
		Key:                j.key,
		Spec:               j.spec,
		DatasetSHA256:      fmt.Sprintf("%x", sha256.Sum256(buf.Bytes())),
		DatasetBytes:       int64(buf.Len()),
		Traces:             len(res.Dataset.Traces),
		Servers:            len(res.Servers),
		Shards:             len(res.Shards),
		Events:             res.Events,
		PhantomEvents:      res.PhantomEvents,
		ReplayedBoundaries: res.ReplayedBoundaries,
		WallSeconds:        wall.Seconds(),
		CompletedAt:        m.now().UTC(),
	}
	if len(res.Congestion) > 0 {
		rep := analysis.ComputeCEMarkReport(res.Congestion)
		meta.Congestion = &rep
	}
	if err := m.store.Put(j.key, specBytes, meta, buf.Bytes()); err != nil {
		return 0, err
	}
	m.met.storeBytesWritten.Add(uint64(buf.Len()))
	return buf.Len(), nil
}

// runJob executes one queued campaign on a worker goroutine.
func (m *jobMgr) runJob(j *job) {
	m.mu.Lock()
	j.state = JobRunning
	j.started = m.now()
	m.stats.RunsStarted++
	m.running++
	m.mu.Unlock()
	m.met.jobsStarted.Inc()
	m.met.jobsRunning.Add(1)
	m.met.journal.Append(telemetry.EventJobRunning, &j.id, nil, -1, -1)
	m.logger.Info("job start", "job", j.id, "key", j.key[:12])

	fail := func(err error) { m.failJob(j, err, true) }

	cfg, err := j.spec.Config()
	if err != nil {
		fail(err)
		return
	}
	cfg.Metrics = m.met.campaign
	cfg.ShardStart = func(shard, slice int, vantage string) {
		m.setShardState(j, shard, slice, "running", nil)
	}
	cfg.ShardDone = func(stats campaign.ShardStats) {
		m.setShardState(j, stats.Shard, stats.Slice, "done", &stats)
	}

	start := m.now()
	res, err := campaign.Run(cfg)
	if err != nil {
		fail(err)
		return
	}
	wall := m.now().Sub(start)

	n, err := m.fileRun(j, res, wall)
	if err != nil {
		fail(err)
		return
	}

	m.mu.Lock()
	j.state = JobDone
	j.finished = m.now()
	delete(m.active, j.key)
	m.running--
	m.mu.Unlock()
	m.met.jobsDone.Inc()
	m.met.jobsRunning.Add(-1)
	m.met.journal.Append(telemetry.EventJobDone, &j.id, nil, -1, -1)
	m.logger.Info("job done", "job", j.id, "key", j.key[:12],
		"traces", len(res.Dataset.Traces), "dataset_bytes", n, "wall_seconds", wall.Seconds())
}

// setShardState updates one (vantage-index, slice) shard's progress
// and journals the transition. The journal's job and detail pointers
// are &j.id and &sh.Vantage: both are heap-stable for the job's
// lifetime (a job's shards slice is allocated once and never grows).
func (m *jobMgr) setShardState(j *job, shard, slice int, state string, stats *campaign.ShardStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range j.shards {
		sh := &j.shards[i]
		if sh.Shard != shard || sh.Slice != slice {
			continue
		}
		sh.State = state
		kind := telemetry.EventShardStart
		if stats != nil {
			kind = telemetry.EventShardDone
			sh.Events = stats.Events
			sh.ElapsedSeconds = stats.Elapsed.Seconds()
			j.shardsDone++
			j.tracesDone += stats.Traces
		}
		m.met.journal.Append(kind, &j.id, &sh.Vantage, int32(shard), int32(slice))
		return
	}
}

// QueueDepth reports the number of jobs waiting for a worker.
func (m *jobMgr) QueueDepth() int { return len(m.queue) }

// Running reports the number of campaigns currently executing.
func (m *jobMgr) Running() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.running
}

// Get returns a snapshot of the identified job.
func (m *jobMgr) Get(id string) (JobView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// List returns snapshots of every job in submission order.
func (m *jobMgr) List() []JobView {
	m.mu.Lock()
	defer m.mu.Unlock()
	views := make([]JobView, len(m.order))
	for i, j := range m.order {
		views[i] = j.view()
	}
	return views
}

// Page returns up to limit job snapshots in submission order, starting
// strictly after the cursor job (all jobs when cursor is empty),
// optionally filtered by state. The returned cursor is non-empty iff
// more matching jobs follow; feed it back to resume.
func (m *jobMgr) Page(cursor string, limit int, state JobState) ([]JobView, string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	start := 0
	if cursor != "" {
		j, ok := m.jobs[cursor]
		if !ok {
			return nil, "", faultf(400, codeCursorInvalid, "unknown cursor %q", cursor)
		}
		start = j.pos + 1
	}
	views := []JobView{}
	next := ""
	for i := start; i < len(m.order); i++ {
		j := m.order[i]
		if state != "" && j.state != state {
			continue
		}
		if len(views) == limit {
			next = views[len(views)-1].ID
			break
		}
		views = append(views, j.view())
	}
	return views, next, nil
}

// Shards returns a job's per-(vantage, slice) completion snapshot.
func (m *jobMgr) Shards(id string) ([]ShardProgress, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, false
	}
	out := make([]ShardProgress, len(j.shards))
	copy(out, j.shards)
	return out, true
}

// StatsSnapshot returns the lifetime counters.
func (m *jobMgr) StatsSnapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
