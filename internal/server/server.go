// Package server is the campaign-as-a-service HTTP control plane: a
// long-lived wrapper around the sharded campaign engine that accepts
// serializable campaign specs (campaign.Spec), runs them through an
// async job manager on a bounded worker pool, and serves merged
// datasets — content-addressed and cached on disk, so resubmitting a
// spec is free.
//
// The API (all JSON unless noted; see DESIGN.md §11):
//
//	POST /v1/campaigns            submit a spec → job (202 queued, 200 joined/cached)
//	GET  /v1/jobs                 list jobs, submission order; limit/cursor pagination
//	GET  /v1/jobs/{id}            one job: state, progress counters
//	GET  /v1/jobs/{id}/shards     per-(vantage, slice) completion
//	GET  /v1/jobs/{id}/dataset    merged dataset, JSON lines (done jobs)
//	GET  /v1/jobs/{id}/report     RunMeta: determinism hash, counters, CE report
//	GET  /v1/runs                 cached run keys, sorted; limit/cursor pagination
//	GET  /v1/runs/{key}           one cached run's RunMeta
//	GET  /v1/runs/{key}/dataset   cached dataset, JSON lines
//	GET  /v1/workers              worker health scoreboard: states, strikes
//	GET  /v1/stats                job-manager lifetime counters
//	GET  /v1/healthz              readiness: build info, store writability, queue depth
//	GET  /v1/metrics              flight-recorder metrics, Prometheus text format
//	GET  /v1/metrics.json         the same snapshot as JSON
//	GET  /v1/jobs/{id}/events     one job's journal: lifecycle + shard transitions
//	GET  /debug/pprof/...         run-time profiles (only with Config.EnablePprof)
//
// The worker protocol (distributed execution; see leases.go and
// DESIGN.md §13):
//
//	POST /v1/jobs/{id}/shards/claim              lease a batch of pending shards
//	POST /v1/jobs/{id}/shards/{shard}/heartbeat  extend one lease
//	POST /v1/jobs/{id}/shards/{shard}/result     upload one shard's result (idempotent)
//
// Errors are uniform across every endpoint: a non-2xx response body is
// {"error": {"code", "message", "fields"}} with a stable machine code
// (errors.go).
//
// The correctness contract is the engine's determinism invariant
// carried over HTTP: a dataset served here is byte-identical to what
// campaign.Run produces for the same spec, so its SHA-256 equals
// cmd/determinism's hash — whatever worker pool, slicing, scheduler or
// cross-traffic drive executed it. That is what lets the result cache
// be content-addressed by spec rather than by execution shape.
package server

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/telemetry"
)

// Config parameterizes the control plane.
type Config struct {
	// DataDir roots the content-addressed result store.
	DataDir string
	// Jobs bounds concurrently running campaigns (not shards — each
	// campaign parallelizes internally per its spec's workers knob).
	// Zero means 1.
	Jobs int
	// Logger receives one structured record per request and per job
	// transition. Nil discards logs.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiles expose enough internals that they are opt-in
	// even on an internal control plane.
	EnablePprof bool
	// LeaseTTL is the lifetime of shard leases granted to distributed
	// workers. Zero means the 30s default.
	LeaseTTL time.Duration
	// Clock overrides the job manager's time source. Lease expiry is
	// driven entirely by this clock, so tests inject a fake and step it
	// instead of sleeping. Nil means time.Now.
	Clock func() time.Time
	// DisableJournal turns off the distributed-job write-ahead journal
	// (journal.go) and startup recovery. Journaling is on by default —
	// disabling it exists for the journal-overhead benchmark baseline
	// and for callers that treat the coordinator as strictly ephemeral.
	DisableJournal bool
	// SpeculateAfter is the straggler-speculation threshold as a
	// multiple of the job's observed typical shard duration (leases.go).
	// Zero means the 3.0 default; negative disables speculation.
	SpeculateAfter float64
	// QuarantineThreshold is the worker health scoreboard's strike
	// limit (workers.go). Zero means the default of 3; negative
	// disables quarantine.
	QuarantineThreshold int
	// JournalSegmentBytes caps the journal's active segment before it
	// is sealed and compacted (journal.go, compact.go). Zero means the
	// 1 MiB default.
	JournalSegmentBytes int64
	// MaxOpenShards is the submission admission watermark over queued
	// jobs plus running distributed shards. Zero means the default of
	// 4096; negative disables shedding.
	MaxOpenShards int
}

// Server routes the control-plane API. It is an http.Handler; callers
// own the net/http server and its lifecycle, and must Close to drain
// the job pool.
type Server struct {
	store   *Store
	mgr     *jobMgr
	mux     *http.ServeMux
	logger  *slog.Logger
	metrics *serverMetrics
	dataDir string
	start   time.Time
}

// New opens the result store under cfg.DataDir and starts the job pool.
func New(cfg Config) (*Server, error) {
	store, err := OpenStore(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	met := newServerMetrics(telemetry.NewRegistry())
	s := &Server{
		store:   store,
		mgr:     newJobMgr(store, cfg.Jobs, met, logger),
		mux:     http.NewServeMux(),
		logger:  logger,
		metrics: met,
		dataDir: cfg.DataDir,
		start:   time.Now(),
	}
	if cfg.LeaseTTL > 0 {
		s.mgr.leaseTTL = cfg.LeaseTTL
	}
	if cfg.Clock != nil {
		s.mgr.now = cfg.Clock
	}
	// Self-healing knobs: zero keeps the default, negative disables.
	if cfg.SpeculateAfter != 0 {
		s.mgr.speculateAfter = cfg.SpeculateAfter
	}
	if cfg.QuarantineThreshold != 0 {
		s.mgr.quarThreshold = cfg.QuarantineThreshold
	}
	if cfg.MaxOpenShards != 0 {
		s.mgr.maxOpenShards = cfg.MaxOpenShards
	}
	if !cfg.DisableJournal {
		wd, err := openWALDir(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		if cfg.JournalSegmentBytes > 0 {
			wd.segmentCap = cfg.JournalSegmentBytes
		}
		s.mgr.wal = wd
		// Replay before any route is reachable: recovered jobs exist —
		// with their accepted shards and lease table — from the first
		// request the restarted coordinator answers.
		if err := s.mgr.recover(); err != nil {
			return nil, err
		}
	}
	handle := func(pattern string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	handle("POST /v1/campaigns", s.handleSubmit)
	handle("GET /v1/jobs", s.handleJobs)
	handle("GET /v1/jobs/{id}", s.handleJob)
	handle("GET /v1/jobs/{id}/shards", s.handleJobShards)
	handle("GET /v1/jobs/{id}/events", s.handleJobEvents)
	handle("GET /v1/jobs/{id}/dataset", s.handleJobDataset)
	handle("GET /v1/jobs/{id}/report", s.handleJobReport)
	handle("POST /v1/jobs/{id}/shards/claim", s.handleShardClaim)
	handle("POST /v1/jobs/{id}/shards/{shard}/heartbeat", s.handleShardHeartbeat)
	handle("POST /v1/jobs/{id}/shards/{shard}/result", s.handleShardResult)
	handle("GET /v1/runs", s.handleRuns)
	handle("GET /v1/runs/{key}", s.handleRun)
	handle("GET /v1/runs/{key}/dataset", s.handleRunDataset)
	handle("GET /v1/workers", s.handleWorkers)
	handle("GET /v1/stats", s.handleStats)
	handle("GET /v1/healthz", s.handleHealthz)
	handle("GET /v1/metrics", s.handleMetrics)
	handle("GET /v1/metrics.json", s.handleMetricsJSON)
	if cfg.EnablePprof {
		// pprof handlers register on their own; the index route
		// dispatches the named profiles. Deliberately uninstrumented —
		// a profile download's duration would distort the latency
		// histogram it appears in.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// Registry exposes the server's telemetry registry (benchmarks and
// embedding tools read it directly instead of scraping themselves).
func (s *Server) Registry() *telemetry.Registry { return s.metrics.reg }

// handleMetrics renders the registry in the Prometheus text
// exposition; the body is a point-in-time snapshot, never a stream.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", telemetry.PromContentType)
	_ = s.metrics.reg.WritePrometheus(w)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = s.metrics.reg.WriteJSON(w)
}

// handleJobEvents serves one job's slice of the flight-recorder
// journal: every lifecycle and shard transition the ring still holds,
// oldest first. A long-retired job yields an empty list, not a 404 —
// the journal is a bounded recorder, not a database.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	view, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	events := s.metrics.journal.JobEvents(view.ID)
	writeJSON(w, http.StatusOK, map[string]any{
		"id":     view.ID,
		"state":  view.State,
		"events": events,
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close drains the job pool; in-flight campaigns finish and are
// cached, and a clean-shutdown marker is journaled.
func (s *Server) Close() { s.mgr.Close() }

// BeginDrain opens the graceful-shutdown window: new submissions and
// shard claims are refused with 503 unavailable + Retry-After,
// heartbeats and in-flight shard uploads keep landing, and healthz
// reports "draining". Call on SIGTERM, before the HTTP server stops
// accepting, then Close.
func (s *Server) BeginDrain() { s.mgr.BeginDrain() }

// Store exposes the result store (read paths are used by tooling).
func (s *Server) Store() *Store { return s.store }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

// decodeBody reads and unmarshals a bounded JSON request body into v,
// classifying failures as bad_request faults. A Content-Encoding: gzip
// body is decoded transparently (net/http does not decompress request
// bodies); the byte budget applies to the decompressed stream too, so
// a compression bomb is a 400, not an allocation.
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) error {
	var reader io.Reader = http.MaxBytesReader(w, r.Body, limit)
	if gzipRequest(r) {
		gz, err := gzip.NewReader(reader)
		if err != nil {
			return faultf(http.StatusBadRequest, codeBadRequest, "gzip body: %v", err)
		}
		defer gz.Close()
		reader = io.LimitReader(gz, limit+1)
	}
	body, err := io.ReadAll(reader)
	if err != nil {
		return faultf(http.StatusBadRequest, codeBadRequest, "read body: %v", err)
	}
	if int64(len(body)) > limit {
		return faultf(http.StatusBadRequest, codeBadRequest,
			"decompressed body exceeds the %d-byte limit", limit)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return faultf(http.StatusBadRequest, codeBadRequest, "parse body: %v", err)
	}
	return nil
}

// gzipRequest reports whether the request body is gzip-compressed.
func gzipRequest(r *http.Request) bool {
	return strings.EqualFold(r.Header.Get("Content-Encoding"), "gzip")
}

// submitResponse is POST /v1/campaigns' body: the job serving the spec
// plus the spec's content address.
type submitResponse struct {
	JobView
}

// handleSubmit parses, validates and submits a spec. A malformed or
// invalid body is a structured 400; a fresh submission is 202 with the
// queued job; a duplicate of an in-flight or cached run is 200 with
// the job serving it.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeFault(w, faultf(http.StatusBadRequest, codeBadRequest, "read body: %v", err))
		return
	}
	spec, err := campaign.ParseSpec(body)
	if err != nil {
		var verr *campaign.ValidationError
		if errors.As(err, &verr) {
			writeFault(w, verr)
		} else {
			writeFault(w, faultf(http.StatusBadRequest, codeBadRequest, "%v", err))
		}
		return
	}
	view, created, err := s.mgr.Submit(spec)
	if err != nil {
		writeFault(w, err)
		return
	}
	// A fresh submission queues work (202); a duplicate — joined onto
	// an in-flight identical run or served from the cache — is 200.
	status := http.StatusAccepted
	if !created {
		status = http.StatusOK
	}
	s.logger.Info("submit",
		"key", view.Key[:12], "job", view.ID, "state", view.State, "cached", view.Cached)
	writeJSON(w, status, submitResponse{JobView: view})
}

// JobsPage is GET /v1/jobs' body: one page of jobs in submission
// order. NextCursor, when non-empty, resumes the listing (also carried
// in a Link rel="next" header).
type JobsPage struct {
	Jobs       []JobView `json:"jobs"`
	NextCursor string    `json:"next_cursor,omitempty"`
}

// RunsPage is GET /v1/runs' body: one page of cached run keys in
// lexicographic order.
type RunsPage struct {
	Runs       []string `json:"runs"`
	NextCursor string   `json:"next_cursor,omitempty"`
}

// pageParams parses the shared limit/cursor pagination query.
func pageParams(r *http.Request, def, max int) (limit int, cursor string, err error) {
	q := r.URL.Query()
	limit = def
	if raw := q.Get("limit"); raw != "" {
		limit, err = strconv.Atoi(raw)
		if err != nil || limit < 1 {
			return 0, "", faultf(http.StatusBadRequest, codeBadRequest,
				"limit must be a positive integer, got %q", raw)
		}
		if limit > max {
			limit = max
		}
	}
	return limit, q.Get("cursor"), nil
}

// nextLink emits the Link rel="next" header for a follow-up page.
func nextLink(w http.ResponseWriter, path string, limit int, cursor string, extra url.Values) {
	q := url.Values{}
	for k, vs := range extra {
		q[k] = vs
	}
	q.Set("limit", strconv.Itoa(limit))
	q.Set("cursor", cursor)
	w.Header().Set("Link", fmt.Sprintf("<%s?%s>; rel=\"next\"", path, q.Encode()))
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	limit, cursor, err := pageParams(r, 100, 1000)
	if err != nil {
		writeFault(w, err)
		return
	}
	state := JobState(r.URL.Query().Get("state"))
	switch state {
	case "", JobQueued, JobRunning, JobDone, JobFailed:
	default:
		writeFault(w, faultf(http.StatusBadRequest, codeBadRequest,
			"unknown state filter %q", state))
		return
	}
	views, next, err := s.mgr.Page(cursor, limit, state)
	if err != nil {
		writeFault(w, err)
		return
	}
	if next != "" {
		extra := url.Values{}
		if state != "" {
			extra.Set("state", string(state))
		}
		nextLink(w, "/v1/jobs", limit, next, extra)
	}
	writeJSON(w, http.StatusOK, JobsPage{Jobs: views, NextCursor: next})
}

func (s *Server) jobOr404(w http.ResponseWriter, r *http.Request) (JobView, bool) {
	view, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeFault(w, faultf(http.StatusNotFound, codeJobNotFound,
			"no such job %q", r.PathValue("id")))
	}
	return view, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if view, ok := s.jobOr404(w, r); ok {
		writeJSON(w, http.StatusOK, view)
	}
}

func (s *Server) handleJobShards(w http.ResponseWriter, r *http.Request) {
	view, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	shards, _ := s.mgr.Shards(view.ID)
	writeJSON(w, http.StatusOK, map[string]any{
		"id":     view.ID,
		"state":  view.State,
		"shards": shards,
	})
}

// finishedKey maps a job to its cached artifacts, or writes the
// appropriate non-200: 409 for unfinished jobs (the result does not
// exist yet), 502 for failed ones.
func (s *Server) finishedKey(w http.ResponseWriter, r *http.Request) (string, bool) {
	view, ok := s.jobOr404(w, r)
	if !ok {
		return "", false
	}
	switch view.State {
	case JobDone:
		return view.Key, true
	case JobFailed:
		writeFault(w, faultf(http.StatusBadGateway, codeJobFailed,
			"job %s failed: %s", view.ID, view.Error))
	default:
		writeFault(w, faultf(http.StatusConflict, codeJobNotDone,
			"job %s is %s (%d/%d shards); retry when done",
			view.ID, view.State, view.ShardsDone, view.ShardsTotal))
	}
	return "", false
}

func (s *Server) handleJobDataset(w http.ResponseWriter, r *http.Request) {
	if key, ok := s.finishedKey(w, r); ok {
		s.serveDataset(w, key)
	}
}

func (s *Server) handleJobReport(w http.ResponseWriter, r *http.Request) {
	if key, ok := s.finishedKey(w, r); ok {
		s.serveMeta(w, key)
	}
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	limit, cursor, err := pageParams(r, 100, 1000)
	if err != nil {
		writeFault(w, err)
		return
	}
	keys := s.store.Keys()
	sort.Strings(keys)
	// Cursor semantics for runs are "strictly after this key"; unlike
	// job cursors the key need not exist, so a page stays resumable
	// even if its last run is pruned between requests.
	start := sort.SearchStrings(keys, cursor)
	if start < len(keys) && keys[start] == cursor {
		start++
	}
	end := start + limit
	next := ""
	if end < len(keys) {
		next = keys[end-1]
		nextLink(w, "/v1/runs", limit, next, nil)
	} else {
		end = len(keys)
	}
	writeJSON(w, http.StatusOK, RunsPage{Runs: keys[start:end], NextCursor: next})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.serveMeta(w, r.PathValue("key"))
}

func (s *Server) handleRunDataset(w http.ResponseWriter, r *http.Request) {
	s.serveDataset(w, r.PathValue("key"))
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.StatsSnapshot())
}

// handleWorkers serves the worker health scoreboard (workers.go):
// every worker that ever claimed, its state, and its strike history.
func (s *Server) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"workers": s.mgr.WorkersSnapshot(),
	})
}

func (s *Server) serveMeta(w http.ResponseWriter, key string) {
	meta, err := s.store.Meta(key)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			writeFault(w, faultf(http.StatusNotFound, codeRunNotFound, "no cached run %q", key))
			return
		}
		writeFault(w, err)
		return
	}
	writeJSON(w, http.StatusOK, meta)
}

func (s *Server) serveDataset(w http.ResponseWriter, key string) {
	rc, size, err := s.store.OpenDataset(key)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			writeFault(w, faultf(http.StatusNotFound, codeRunNotFound, "no cached run %q", key))
			return
		}
		writeFault(w, err)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	_, _ = io.Copy(w, rc) // client disconnects are not server errors
}

// ClaimRequest is POST /v1/jobs/{id}/shards/claim's body.
type ClaimRequest struct {
	// Worker identifies the claiming worker; it labels leases,
	// journal events and the per-worker shard-duration histogram.
	Worker string `json:"worker"`
	// MaxShards bounds the leased batch; zero or negative means 1.
	MaxShards int `json:"max_shards"`
}

// leaseRequest is the shared heartbeat/result body: the worker's
// identity and the lease token it holds for the addressed shard. The
// result route additionally carries the executed shard.
type leaseRequest struct {
	Worker string `json:"worker"`
	Lease  string `json:"lease"`
	// Result is the executed shard's wire form (result route only).
	Result *campaign.ShardResultWire `json:"result,omitempty"`
}

// shardIndex parses the {shard} path segment — the shard's index in
// the job's canonical plan, as returned by claim.
func shardIndex(r *http.Request) (int, error) {
	idx, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil {
		return 0, faultf(http.StatusBadRequest, codeBadRequest,
			"shard must be a plan index, got %q", r.PathValue("shard"))
	}
	return idx, nil
}

func (s *Server) handleShardClaim(w http.ResponseWriter, r *http.Request) {
	var req ClaimRequest
	if err := decodeBody(w, r, 1<<20, &req); err != nil {
		writeFault(w, err)
		return
	}
	if req.Worker == "" {
		writeFault(w, faultf(http.StatusBadRequest, codeBadRequest, "worker is required"))
		return
	}
	resp, err := s.mgr.Claim(r.PathValue("id"), req.Worker, req.MaxShards)
	if err != nil {
		writeFault(w, err)
		return
	}
	if len(resp.Shards) > 0 {
		s.logger.Info("shards leased", "job", resp.Job, "worker", req.Worker,
			"shards", len(resp.Shards))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleShardHeartbeat(w http.ResponseWriter, r *http.Request) {
	idx, err := shardIndex(r)
	if err != nil {
		writeFault(w, err)
		return
	}
	var req leaseRequest
	if err := decodeBody(w, r, 1<<20, &req); err != nil {
		writeFault(w, err)
		return
	}
	resp, err := s.mgr.Heartbeat(r.PathValue("id"), idx, req.Lease)
	if err != nil {
		writeFault(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// maxResultBytes bounds a shard-result upload. Paper-scale shards are
// single-digit MiB of JSON; 256 MiB leaves room without letting one
// request buffer unbounded memory.
const maxResultBytes = 256 << 20

func (s *Server) handleShardResult(w http.ResponseWriter, r *http.Request) {
	idx, err := shardIndex(r)
	if err != nil {
		writeFault(w, err)
		return
	}
	if gzipRequest(r) {
		s.metrics.uploadsGzip.Inc()
	} else {
		s.metrics.uploadsIdentity.Inc()
	}
	var req leaseRequest
	if err := decodeBody(w, r, maxResultBytes, &req); err != nil {
		writeFault(w, err)
		return
	}
	if req.Result == nil {
		writeFault(w, faultf(http.StatusBadRequest, codeResultInvalid, "result is required"))
		return
	}
	resp, err := s.mgr.ShardResult(r.PathValue("id"), idx, req.Worker, req.Lease, req.Result)
	if err != nil {
		writeFault(w, err)
		return
	}
	s.logger.Info("shard result", "job", resp.Job, "shard", idx,
		"worker", req.Worker, "status", resp.Status,
		"done", fmt.Sprintf("%d/%d", resp.ShardsDone, resp.ShardsTotal))
	writeJSON(w, http.StatusOK, resp)
}
