// Package server is the campaign-as-a-service HTTP control plane: a
// long-lived wrapper around the sharded campaign engine that accepts
// serializable campaign specs (campaign.Spec), runs them through an
// async job manager on a bounded worker pool, and serves merged
// datasets — content-addressed and cached on disk, so resubmitting a
// spec is free.
//
// The API (all JSON unless noted; see DESIGN.md §11):
//
//	POST /v1/campaigns            submit a spec → job (202 queued, 200 joined/cached)
//	GET  /v1/jobs                 list jobs, submission order
//	GET  /v1/jobs/{id}            one job: state, progress counters
//	GET  /v1/jobs/{id}/shards     per-(vantage, slice) completion
//	GET  /v1/jobs/{id}/dataset    merged dataset, JSON lines (done jobs)
//	GET  /v1/jobs/{id}/report     RunMeta: determinism hash, counters, CE report
//	GET  /v1/runs                 cached run keys
//	GET  /v1/runs/{key}           one cached run's RunMeta
//	GET  /v1/runs/{key}/dataset   cached dataset, JSON lines
//	GET  /v1/stats                job-manager lifetime counters
//	GET  /v1/healthz              readiness: build info, store writability, queue depth
//	GET  /v1/metrics              flight-recorder metrics, Prometheus text format
//	GET  /v1/metrics.json         the same snapshot as JSON
//	GET  /v1/jobs/{id}/events     one job's journal: lifecycle + shard transitions
//	GET  /debug/pprof/...         run-time profiles (only with Config.EnablePprof)
//
// The correctness contract is the engine's determinism invariant
// carried over HTTP: a dataset served here is byte-identical to what
// campaign.Run produces for the same spec, so its SHA-256 equals
// cmd/determinism's hash — whatever worker pool, slicing, scheduler or
// cross-traffic drive executed it. That is what lets the result cache
// be content-addressed by spec rather than by execution shape.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"time"

	"repro/internal/campaign"
	"repro/internal/telemetry"
)

// Config parameterizes the control plane.
type Config struct {
	// DataDir roots the content-addressed result store.
	DataDir string
	// Jobs bounds concurrently running campaigns (not shards — each
	// campaign parallelizes internally per its spec's workers knob).
	// Zero means 1.
	Jobs int
	// Logger receives one structured record per request and per job
	// transition. Nil discards logs.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiles expose enough internals that they are opt-in
	// even on an internal control plane.
	EnablePprof bool
}

// Server routes the control-plane API. It is an http.Handler; callers
// own the net/http server and its lifecycle, and must Close to drain
// the job pool.
type Server struct {
	store   *Store
	mgr     *jobMgr
	mux     *http.ServeMux
	logger  *slog.Logger
	metrics *serverMetrics
	dataDir string
	start   time.Time
}

// New opens the result store under cfg.DataDir and starts the job pool.
func New(cfg Config) (*Server, error) {
	store, err := OpenStore(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	met := newServerMetrics(telemetry.NewRegistry())
	s := &Server{
		store:   store,
		mgr:     newJobMgr(store, cfg.Jobs, met, logger),
		mux:     http.NewServeMux(),
		logger:  logger,
		metrics: met,
		dataDir: cfg.DataDir,
		start:   time.Now(),
	}
	handle := func(pattern string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	handle("POST /v1/campaigns", s.handleSubmit)
	handle("GET /v1/jobs", s.handleJobs)
	handle("GET /v1/jobs/{id}", s.handleJob)
	handle("GET /v1/jobs/{id}/shards", s.handleJobShards)
	handle("GET /v1/jobs/{id}/events", s.handleJobEvents)
	handle("GET /v1/jobs/{id}/dataset", s.handleJobDataset)
	handle("GET /v1/jobs/{id}/report", s.handleJobReport)
	handle("GET /v1/runs", s.handleRuns)
	handle("GET /v1/runs/{key}", s.handleRun)
	handle("GET /v1/runs/{key}/dataset", s.handleRunDataset)
	handle("GET /v1/stats", s.handleStats)
	handle("GET /v1/healthz", s.handleHealthz)
	handle("GET /v1/metrics", s.handleMetrics)
	handle("GET /v1/metrics.json", s.handleMetricsJSON)
	if cfg.EnablePprof {
		// pprof handlers register on their own; the index route
		// dispatches the named profiles. Deliberately uninstrumented —
		// a profile download's duration would distort the latency
		// histogram it appears in.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// Registry exposes the server's telemetry registry (benchmarks and
// embedding tools read it directly instead of scraping themselves).
func (s *Server) Registry() *telemetry.Registry { return s.metrics.reg }

// handleMetrics renders the registry in the Prometheus text
// exposition; the body is a point-in-time snapshot, never a stream.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", telemetry.PromContentType)
	_ = s.metrics.reg.WritePrometheus(w)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = s.metrics.reg.WriteJSON(w)
}

// handleJobEvents serves one job's slice of the flight-recorder
// journal: every lifecycle and shard transition the ring still holds,
// oldest first. A long-retired job yields an empty list, not a 404 —
// the journal is a bounded recorder, not a database.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	view, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	events := s.metrics.journal.JobEvents(view.ID)
	writeJSON(w, http.StatusOK, map[string]any{
		"id":     view.ID,
		"state":  view.State,
		"events": events,
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close drains the job pool; in-flight campaigns finish and are cached.
func (s *Server) Close() { s.mgr.Close() }

// Store exposes the result store (read paths are used by tooling).
func (s *Server) Store() *Store { return s.store }

// apiError is the uniform error body. Validation failures carry the
// offending fields so clients can fix a spec in one round trip.
type apiError struct {
	Error  string                `json:"error"`
	Fields []campaign.FieldError `json:"fields,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, status int, err error) {
	body := apiError{Error: err.Error()}
	var verr *campaign.ValidationError
	if errors.As(err, &verr) {
		body.Fields = verr.Fields
	}
	writeJSON(w, status, body)
}

// submitResponse is POST /v1/campaigns' body: the job serving the spec
// plus the spec's content address.
type submitResponse struct {
	JobView
}

// handleSubmit parses, validates and submits a spec. A malformed or
// invalid body is a structured 400; a fresh submission is 202 with the
// queued job; a duplicate of an in-flight or cached run is 200 with
// the job serving it.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	spec, err := campaign.ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	view, created, err := s.mgr.Submit(spec)
	if err != nil {
		var verr *campaign.ValidationError
		if errors.As(err, &verr) {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	// A fresh submission queues work (202); a duplicate — joined onto
	// an in-flight identical run or served from the cache — is 200.
	status := http.StatusAccepted
	if !created {
		status = http.StatusOK
	}
	s.logger.Info("submit",
		"key", view.Key[:12], "job", view.ID, "state", view.State, "cached", view.Cached)
	writeJSON(w, status, submitResponse{JobView: view})
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.mgr.List()})
}

func (s *Server) jobOr404(w http.ResponseWriter, r *http.Request) (JobView, bool) {
	view, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
	}
	return view, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if view, ok := s.jobOr404(w, r); ok {
		writeJSON(w, http.StatusOK, view)
	}
}

func (s *Server) handleJobShards(w http.ResponseWriter, r *http.Request) {
	view, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	shards, _ := s.mgr.Shards(view.ID)
	writeJSON(w, http.StatusOK, map[string]any{
		"id":     view.ID,
		"state":  view.State,
		"shards": shards,
	})
}

// finishedKey maps a job to its cached artifacts, or writes the
// appropriate non-200: 409 for unfinished jobs (the result does not
// exist yet), 502 for failed ones.
func (s *Server) finishedKey(w http.ResponseWriter, r *http.Request) (string, bool) {
	view, ok := s.jobOr404(w, r)
	if !ok {
		return "", false
	}
	switch view.State {
	case JobDone:
		return view.Key, true
	case JobFailed:
		writeError(w, http.StatusBadGateway, fmt.Errorf("job %s failed: %s", view.ID, view.Error))
	default:
		writeJSON(w, http.StatusConflict, apiError{
			Error: fmt.Sprintf("job %s is %s (%d/%d shards); retry when done",
				view.ID, view.State, view.ShardsDone, view.ShardsTotal),
		})
	}
	return "", false
}

func (s *Server) handleJobDataset(w http.ResponseWriter, r *http.Request) {
	if key, ok := s.finishedKey(w, r); ok {
		s.serveDataset(w, key)
	}
}

func (s *Server) handleJobReport(w http.ResponseWriter, r *http.Request) {
	if key, ok := s.finishedKey(w, r); ok {
		s.serveMeta(w, key)
	}
}

func (s *Server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"runs": s.store.Keys()})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.serveMeta(w, r.PathValue("key"))
}

func (s *Server) handleRunDataset(w http.ResponseWriter, r *http.Request) {
	s.serveDataset(w, r.PathValue("key"))
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.StatsSnapshot())
}

func (s *Server) serveMeta(w http.ResponseWriter, key string) {
	meta, err := s.store.Meta(key)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			writeError(w, http.StatusNotFound, fmt.Errorf("no cached run %q", key))
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, meta)
}

func (s *Server) serveDataset(w http.ResponseWriter, key string) {
	rc, size, err := s.store.OpenDataset(key)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			writeError(w, http.StatusNotFound, fmt.Errorf("no cached run %q", key))
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	_, _ = io.Copy(w, rc) // client disconnects are not server errors
}
