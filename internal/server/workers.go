package server

import (
	"net/http"
	"sort"
	"time"
)

// The worker health scoreboard: the control plane's view of which
// workers are pulling their weight. Every worker that ever claims is
// tracked with rolling counters of the ways it can waste coordinator
// work — leases it let expire, uploads rejected as stale, speculation
// races it lost (the signature of a wedged-but-heartbeating worker:
// its leases never lapse, but a speculative twin beats every upload).
// Each such event is a strike; at the threshold the worker is
// QUARANTINED: its claims are answered 429 worker_quarantined with a
// Retry-After covering the quarantine window, so it stops draining
// shards it will not finish. This is the same closed-loop idea the
// simulated AQM queues apply to packets — detect degradation early,
// signal the source, shed its load — applied to the control plane
// itself.
//
// State machine:
//
//	healthy ──strikes ≥ threshold──▶ quarantined
//	   ▲                                  │ window lapses
//	   │                                  ▼
//	   └──────accepted upload──────── probation
//
// Probation re-admits claims but keeps the strike memory: one more
// strike re-quarantines immediately, one accepted upload clears the
// record. Accepted uploads also decay strikes for healthy workers, so
// an occasional expiry in a long run never accumulates to a ban.
//
// The scoreboard is deliberately soft state: it is NOT journaled, so a
// coordinator restart paroles everyone. A genuinely sick worker
// re-earns its quarantine within one lease TTL; a healthy one is not
// punished for the coordinator's own crash.

// defaultQuarantineThreshold is the strike count that quarantines a
// worker when the server config does not override it.
const defaultQuarantineThreshold = 3

// quarantineWindowTTLs sizes the quarantine window in lease TTLs: long
// enough for in-flight damage to age out of the lease table, short
// enough that a recovered worker rejoins within a campaign.
const quarantineWindowTTLs = 4

// Worker states as exposed by GET /v1/workers.
const (
	workerHealthy     = "healthy"
	workerQuarantined = "quarantined"
	workerProbation   = "probation"
)

// workerHealth is one worker's scoreboard entry; guarded by mgr.mu.
type workerHealth struct {
	id    string
	state string

	strikes       int
	leaseExpiries int
	staleUploads  int
	specLosses    int

	claims   int
	accepted int

	lastSeen time.Time
	until    time.Time // quarantine end, meaningful while quarantined
}

// WorkerView is one scoreboard entry as served by GET /v1/workers.
type WorkerView struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Strikes int    `json:"strikes"`

	LeaseExpiries     int `json:"lease_expiries"`
	StaleUploads      int `json:"stale_uploads"`
	SpeculationLosses int `json:"speculation_losses"`

	Claims   int `json:"claims"`
	Accepted int `json:"accepted"`

	LastSeen         time.Time  `json:"last_seen"`
	QuarantinedUntil *time.Time `json:"quarantined_until,omitempty"`
}

// workerLocked returns (creating on demand) a worker's scoreboard
// entry; callers hold m.mu.
func (m *jobMgr) workerLocked(id string) *workerHealth {
	w, ok := m.workers[id]
	if !ok {
		w = &workerHealth{id: id, state: workerHealthy}
		m.workers[id] = w
	}
	w.lastSeen = m.now()
	return w
}

// strikeLocked records one wasteful event against a worker and
// quarantines it at the threshold. A strike during probation
// re-quarantines immediately — the worker had its second chance.
// Callers hold m.mu.
func (m *jobMgr) strikeLocked(id, reason string) {
	if m.quarThreshold <= 0 || id == "" {
		return
	}
	w := m.workerLocked(id)
	w.strikes++
	switch reason {
	case "lease-expiry":
		w.leaseExpiries++
	case "stale-upload":
		w.staleUploads++
	case "speculation-loss":
		w.specLosses++
	}
	m.met.workerStrikes.Inc()
	if w.state == workerQuarantined {
		return
	}
	if w.strikes >= m.quarThreshold || w.state == workerProbation {
		w.state = workerQuarantined
		w.until = m.now().Add(time.Duration(quarantineWindowTTLs) * m.leaseTTL)
		m.met.workerQuarantines.Inc()
		m.met.workersQuarantined.Add(1)
		m.logger.Warn("worker quarantined", "worker", id, "strikes", w.strikes,
			"reason", reason, "until", w.until)
	}
}

// admitClaimLocked gates a claim on the worker's health: quarantined
// workers are refused with 429 + Retry-After until the window lapses,
// after which they enter probation. Callers hold m.mu.
func (m *jobMgr) admitClaimLocked(id string) error {
	w := m.workerLocked(id)
	w.claims++
	if w.state != workerQuarantined {
		return nil
	}
	now := m.now()
	if now.Before(w.until) {
		retryAfter := int(w.until.Sub(now).Seconds()) + 1
		return faultRetryf(http.StatusTooManyRequests, codeWorkerQuarantined, retryAfter,
			"worker %q is quarantined for %s (strikes: %d expiries, %d stale uploads, %d speculation losses)",
			id, w.until.Sub(now).Round(time.Second), w.leaseExpiries, w.staleUploads, w.specLosses)
	}
	w.state = workerProbation
	m.met.workerProbations.Inc()
	m.met.workersQuarantined.Add(-1)
	m.logger.Info("worker paroled to probation", "worker", id, "strikes", w.strikes)
	return nil
}

// creditLocked records an accepted upload: probationers are fully
// re-admitted, and healthy workers decay one strike — good work pays
// down a noisy history. Callers hold m.mu.
func (m *jobMgr) creditLocked(id string) {
	if id == "" {
		return
	}
	w := m.workerLocked(id)
	w.accepted++
	if w.state == workerProbation {
		w.state = workerHealthy
		w.strikes = 0
		m.met.workerReadmits.Inc()
		m.logger.Info("worker re-admitted", "worker", id)
		return
	}
	if w.strikes > 0 {
		w.strikes--
	}
}

// WorkersSnapshot returns every tracked worker's scoreboard entry,
// sorted by ID (GET /v1/workers).
func (m *jobMgr) WorkersSnapshot() []WorkerView {
	m.mu.Lock()
	defer m.mu.Unlock()
	views := make([]WorkerView, 0, len(m.workers))
	for _, w := range m.workers {
		v := WorkerView{
			ID:                w.id,
			State:             w.state,
			Strikes:           w.strikes,
			LeaseExpiries:     w.leaseExpiries,
			StaleUploads:      w.staleUploads,
			SpeculationLosses: w.specLosses,
			Claims:            w.claims,
			Accepted:          w.accepted,
			LastSeen:          w.lastSeen,
		}
		if w.state == workerQuarantined {
			t := w.until
			v.QuarantinedUntil = &t
		}
		views = append(views, v)
	}
	sort.Slice(views, func(i, j int) bool { return views[i].ID < views[j].ID })
	return views
}
