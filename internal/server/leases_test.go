package server_test

// Lease-semantics tests for the distributed worker protocol, driven
// end to end through the typed API client against an httptest server
// with an injected fake clock — expiry is stepped, never slept for.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/apiclient"
	"repro/internal/campaign"
	"repro/internal/dataset"
	"repro/internal/server"
)

// distSpec is the distributed twin of the in-process test campaign.
const distSpec = `{"spec": 1, "scale": "small", "traces": 1, "seed": 2015, "stride": 0,
  "execution": "distributed"}`

// fakeClock is a manually stepped monotonic time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2015, 10, 28, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// newLeaseServer starts a coordinator with the fake clock and a 30s
// lease TTL, plus a typed client pointed at it.
func newLeaseServer(t *testing.T) (*server.Server, *apiclient.Client, *fakeClock) {
	t.Helper()
	fc := newFakeClock()
	srv, err := server.New(server.Config{
		DataDir:  t.TempDir(),
		Jobs:     1,
		LeaseTTL: 30 * time.Second,
		Clock:    fc.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, apiclient.New(ts.URL), fc
}

// execWires executes the campaign's full plan locally via the worker
// code path and returns one stamped wire result per plan index.
func execWires(t *testing.T, specJSON, specHash string) []*campaign.ShardResultWire {
	t.Helper()
	spec, err := campaign.ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	bp, err := cfg.CompileBlueprint()
	if err != nil {
		t.Fatal(err)
	}
	infos := cfg.Shards()
	wires := make([]*campaign.ShardResultWire, len(infos))
	for i, info := range infos {
		w, err := campaign.ExecuteShard(cfg, bp, info.Shard, info.Slice)
		if err != nil {
			t.Fatal(err)
		}
		w.SpecHash = specHash
		wires[i] = w
	}
	return wires
}

// wantCode asserts err is an APIError with the given status and stable
// code — the envelope contract, as seen through the typed client.
func wantCode(t *testing.T, err error, status int, code string) {
	t.Helper()
	ae, ok := err.(*apiclient.APIError)
	if !ok {
		t.Fatalf("error = %v (%T), want APIError %d %s", err, err, status, code)
	}
	if ae.Status != status || ae.Code != code {
		t.Fatalf("error = %d %s (%s), want %d %s", ae.Status, ae.Code, ae.Message, status, code)
	}
}

// TestDistributedLifecycle drives one worker identity through the full
// protocol: submit → immediate running state → claim everything →
// upload everything → job done, with the merged dataset byte-identical
// to the in-process engine and the report hash matching the bytes.
func TestDistributedLifecycle(t *testing.T) {
	_, client, _ := newLeaseServer(t)
	ctx := context.Background()

	job, created, err := client.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	if !created || job.State != "running" {
		t.Fatalf("distributed submit = created %v state %s, want fresh running job", created, job.State)
	}

	claim, err := client.Claim(ctx, job.ID, "w1", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(claim.Shards) != job.ShardsTotal {
		t.Fatalf("claimed %d shards, want the full plan of %d", len(claim.Shards), job.ShardsTotal)
	}
	if claim.SpecHash != job.Key || claim.Spec.Execution != campaign.ExecutionDistributed {
		t.Fatalf("claim = %+v", claim)
	}
	// The whole plan is leased now; a second worker gets an empty batch.
	claim2, err := client.Claim(ctx, job.ID, "w2", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(claim2.Shards) != 0 || claim2.State != "running" {
		t.Fatalf("second claim = %+v, want empty running batch", claim2)
	}

	wires := execWires(t, distSpec, claim.SpecHash)
	for _, sh := range claim.Shards {
		ack, err := client.PushShardResult(ctx, job.ID, sh.Index, "w1", sh.Lease, wires[sh.Index])
		if err != nil {
			t.Fatalf("upload shard %d: %v", sh.Index, err)
		}
		if ack.Status != "accepted" {
			t.Fatalf("upload shard %d = %+v", sh.Index, ack)
		}
	}

	done, err := client.Job(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != "done" || done.ShardsDone != done.ShardsTotal {
		t.Fatalf("job after full upload = %+v, want done", done)
	}

	served, err := client.JobDataset(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := campaign.ParseSpec([]byte(distSpec))
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := dataset.Write(&direct, res.Dataset); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, direct.Bytes()) {
		t.Fatalf("distributed dataset (%d bytes) differs from campaign.Run (%d bytes)",
			len(served), direct.Len())
	}
	rep, err := client.JobReport(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("%x", sha256.Sum256(served)); rep.DatasetSHA256 != want {
		t.Fatalf("report hash %s != served bytes hash %s", rep.DatasetSHA256, want)
	}
}

// TestLeaseExpiryReissueStaleUpload is the crash story: worker A's
// lease lapses, worker B re-claims the shard, A's late upload is
// rejected stale_result, B's lands, and B's re-send is an idempotent
// duplicate.
func TestLeaseExpiryReissueStaleUpload(t *testing.T) {
	_, client, fc := newLeaseServer(t)
	ctx := context.Background()

	job, _, err := client.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	// A leases the entire plan, then crashes (silently stops beating).
	claimA, err := client.Claim(ctx, job.ID, "wA", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(claimA.Shards) != job.ShardsTotal {
		t.Fatalf("claimed %d shards, want %d", len(claimA.Shards), job.ShardsTotal)
	}
	shA := claimA.Shards[0]

	// Before expiry nobody else can take any shard.
	if c, err := client.Claim(ctx, job.ID, "wB", 1); err != nil {
		t.Fatal(err)
	} else if len(c.Shards) != 0 {
		t.Fatalf("unexpired lease was re-issued: %+v", c.Shards)
	}

	// Past the TTL, B's claim sweeps every lapsed lease and re-issues
	// the first shard to B.
	fc.Advance(31 * time.Second)
	claimB, err := client.Claim(ctx, job.ID, "wB", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(claimB.Shards) != 1 || claimB.Shards[0].Index != shA.Index {
		t.Fatalf("re-claim = %+v, want shard %d re-issued", claimB.Shards, shA.Index)
	}
	shB := claimB.Shards[0]
	if shB.Lease == shA.Lease {
		t.Fatal("re-issued lease reused the evicted token")
	}

	wires := execWires(t, distSpec, claimA.SpecHash)

	// The evicted worker's late upload must not land.
	_, err = client.PushShardResult(ctx, job.ID, shA.Index, "wA", shA.Lease, wires[shA.Index])
	wantCode(t, err, 409, "stale_result")

	// The current holder's upload lands; re-sending it is idempotent.
	ack, err := client.PushShardResult(ctx, job.ID, shB.Index, "wB", shB.Lease, wires[shB.Index])
	if err != nil || ack.Status != "accepted" {
		t.Fatalf("holder upload = %+v, %v", ack, err)
	}
	dup, err := client.PushShardResult(ctx, job.ID, shB.Index, "wB", shB.Lease, wires[shB.Index])
	if err != nil || dup.Status != "duplicate" {
		t.Fatalf("duplicate upload = %+v, %v", dup, err)
	}
	if dup.ShardsDone != ack.ShardsDone {
		t.Fatalf("duplicate changed progress: %d vs %d", dup.ShardsDone, ack.ShardsDone)
	}
	// A's token against the done shard is still stale, not duplicate.
	_, err = client.PushShardResult(ctx, job.ID, shA.Index, "wA", shA.Lease, wires[shA.Index])
	wantCode(t, err, 409, "stale_result")

	// The journal-backed metrics recorded the cycle.
	text, err := client.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		fmt.Sprintf(`repro_lease_events_total{event="expire"} %d`, job.ShardsTotal),
		`repro_lease_events_total{event="reissue"} 1`,
		`repro_shard_results_total{result="accepted"} 1`,
		`repro_shard_results_total{result="duplicate"} 1`,
	} {
		if !contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func contains(haystack, needle string) bool {
	return bytes.Contains([]byte(haystack), []byte(needle))
}

// TestHeartbeatExtendsExactlyOneLease: beating one shard keeps that
// lease alive across the original deadline while a sibling lease from
// the same claim lapses and is re-issued.
func TestHeartbeatExtendsExactlyOneLease(t *testing.T) {
	_, client, fc := newLeaseServer(t)
	ctx := context.Background()

	job, _, err := client.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	claim, err := client.Claim(ctx, job.ID, "wA", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(claim.Shards) != 2 {
		t.Fatalf("claimed %d shards, want 2", len(claim.Shards))
	}
	kept, dropped := claim.Shards[0], claim.Shards[1]

	fc.Advance(20 * time.Second)
	hb, err := client.Heartbeat(ctx, job.ID, kept.Index, "wA", kept.Lease)
	if err != nil {
		t.Fatal(err)
	}
	if !hb.ExpiresAt.After(kept.ExpiresAt) {
		t.Fatalf("heartbeat did not extend: %v -> %v", kept.ExpiresAt, hb.ExpiresAt)
	}

	// t=40s: kept expires at t=50s, dropped expired at t=30s.
	fc.Advance(20 * time.Second)
	claimB, err := client.Claim(ctx, job.ID, "wB", 1000)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, sh := range claimB.Shards {
		got[sh.Index] = true
	}
	if got[kept.Index] {
		t.Fatal("heartbeat-extended lease was re-issued")
	}
	if !got[dropped.Index] {
		t.Fatalf("lapsed sibling lease was not re-issued (got %v)", got)
	}

	// A heartbeat with a superseded token is lease_expired.
	_, err = client.Heartbeat(ctx, job.ID, dropped.Index, "wA", dropped.Lease)
	wantCode(t, err, 409, "lease_expired")

	// A heartbeat arriving after the extended deadline evicts on the
	// spot rather than resurrecting the lease.
	fc.Advance(11 * time.Second)
	_, err = client.Heartbeat(ctx, job.ID, kept.Index, "wA", kept.Lease)
	wantCode(t, err, 409, "lease_expired")
}

// TestWorkerProtocolGuards walks every worker-facing error path and
// asserts the envelope's stable code for each.
func TestWorkerProtocolGuards(t *testing.T) {
	srv, client, _ := newLeaseServer(t)
	ctx := context.Background()

	// Unknown job.
	_, err := client.Claim(ctx, "j-999999", "w", 1)
	wantCode(t, err, 404, "job_not_found")

	// A local-execution job's shards cannot be claimed. (Submit a spec
	// that parks behind nothing — Jobs:1 pool — then probe immediately;
	// whatever its state, claiming is a 409.)
	local, _, err := client.SubmitRaw(ctx, []byte(
		`{"spec": 1, "scale": "small", "traces": 1, "seed": 7, "stride": 0}`))
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.Claim(ctx, local.ID, "w", 1)
	wantCode(t, err, 409, "job_not_distributed")

	job, _, err := client.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	claim, err := client.Claim(ctx, job.ID, "w", 2)
	if err != nil {
		t.Fatal(err)
	}
	sh := claim.Shards[0]
	wires := execWires(t, distSpec, claim.SpecHash)
	good := wires[sh.Index]

	// Shard index outside the plan.
	_, err = client.Heartbeat(ctx, job.ID, 9999, "w", sh.Lease)
	wantCode(t, err, 404, "shard_not_found")
	_, err = client.PushShardResult(ctx, job.ID, 9999, "w", sh.Lease, good)
	wantCode(t, err, 404, "shard_not_found")

	// Wire version mismatch.
	bad := *good
	bad.Version = campaign.ShardWireVersion + 1
	_, err = client.PushShardResult(ctx, job.ID, sh.Index, "w", sh.Lease, &bad)
	wantCode(t, err, 400, "result_invalid")

	// Spec-hash guard: a result computed for some other spec.
	bad = *good
	bad.SpecHash = "feedfacefeedfacefeedfacefeedfacefeedfacefeedfacefeedfacefeedface"
	_, err = client.PushShardResult(ctx, job.ID, sh.Index, "w", sh.Lease, &bad)
	wantCode(t, err, 409, "stale_result")

	// Payload/coordinate mismatch: shard 1's result posted to shard 0's
	// index.
	other := claim.Shards[1]
	_, err = client.PushShardResult(ctx, job.ID, sh.Index, "w", other.Lease, wires[other.Index])
	wantCode(t, err, 400, "result_invalid")

	// Upload under a never-issued token.
	_, err = client.PushShardResult(ctx, job.ID, sh.Index, "w", "forged-token", good)
	wantCode(t, err, 409, "stale_result")

	// Unfinished artifacts and unknown resources round out the read
	// side of the envelope contract.
	_, err = client.JobDataset(ctx, job.ID)
	wantCode(t, err, 409, "job_not_done")
	_, err = client.JobReport(ctx, "j-424242")
	wantCode(t, err, 404, "job_not_found")
	_, err = client.RunReport(ctx, "feedface")
	wantCode(t, err, 404, "run_not_found")
	_, err = client.RunDataset(ctx, "feedface")
	wantCode(t, err, 404, "run_not_found")

	_ = srv
}

// TestDistributedMergeFailureSurfaces: if filing the merged run fails,
// the job fails and artifact reads return job_failed in the envelope.
func TestDistributedMergeFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	fc := newFakeClock()
	srv, err := server.New(server.Config{DataDir: dir, Jobs: 1, Clock: fc.Now})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()
	client := apiclient.New(ts.URL)
	ctx := context.Background()

	job, _, err := client.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	// Block the store's fan-out directory for this key with a regular
	// file, so the final Put cannot create it.
	if err := os.WriteFile(filepath.Join(dir, job.Key[:2]), []byte("squat"), 0o644); err != nil {
		t.Fatal(err)
	}

	claim, err := client.Claim(ctx, job.ID, "w", 1000)
	if err != nil {
		t.Fatal(err)
	}
	wires := execWires(t, distSpec, claim.SpecHash)
	for _, sh := range claim.Shards {
		if _, err := client.PushShardResult(ctx, job.ID, sh.Index, "w", sh.Lease, wires[sh.Index]); err != nil {
			t.Fatalf("upload shard %d: %v", sh.Index, err)
		}
	}
	got, err := client.Job(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != "failed" || got.Error == "" {
		t.Fatalf("job after blocked merge = %+v, want failed", got)
	}
	_, err = client.JobDataset(ctx, job.ID)
	wantCode(t, err, 502, "job_failed")
}

// TestConcurrentClaimUpload races many workers over one job's lease
// table under -race: every shard is claimed and uploaded exactly once,
// the job completes, and the dataset is exact.
func TestConcurrentClaimUpload(t *testing.T) {
	_, client, _ := newLeaseServer(t)
	ctx := context.Background()

	job, _, err := client.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	claimProbe, err := client.Claim(ctx, job.ID, "probe", 0)
	if err != nil {
		t.Fatal(err)
	}
	wires := execWires(t, distSpec, claimProbe.SpecHash)
	// Return the probe's shard by letting workers duplicate-upload it:
	// the probe uploads it first so the table has one done shard.
	if len(claimProbe.Shards) != 1 {
		t.Fatalf("probe claim = %d shards, want 1", len(claimProbe.Shards))
	}
	p := claimProbe.Shards[0]
	if _, err := client.PushShardResult(ctx, job.ID, p.Index, "probe", p.Lease, wires[p.Index]); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			me := fmt.Sprintf("racer-%d", w)
			for {
				claim, err := client.Claim(ctx, job.ID, me, 2)
				if err != nil {
					errs <- err
					return
				}
				if claim.State == "done" || claim.State == "failed" {
					return
				}
				if len(claim.Shards) == 0 {
					if claim.ShardsDone == claim.ShardsTotal {
						return
					}
					continue
				}
				for _, sh := range claim.Shards {
					ack, err := client.PushShardResult(ctx, job.ID, sh.Index, me, sh.Lease, wires[sh.Index])
					if err != nil {
						errs <- fmt.Errorf("worker %s shard %d: %w", me, sh.Index, err)
						return
					}
					if ack.Status != "accepted" {
						errs <- fmt.Errorf("worker %s shard %d status %s", me, sh.Index, ack.Status)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	done, err := client.AwaitJob(ctx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != "done" {
		t.Fatalf("job = %+v, want done", done)
	}
	served, err := client.JobDataset(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := campaign.ParseSpec([]byte(distSpec))
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := dataset.Write(&direct, res.Dataset); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, direct.Bytes()) {
		t.Fatal("racing workers produced a dataset that differs from campaign.Run")
	}
}
