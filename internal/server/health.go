package server

import (
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"time"
)

// healthResponse is GET /v1/healthz's body: a readiness probe rather
// than a bare liveness ping. Status is "ok" (200) when the store is
// writable and the job queue has headroom, "degraded" (503) otherwise —
// so a load balancer can drain a node whose disk went read-only or
// whose queue is saturated before submissions start failing.
type healthResponse struct {
	Status        string  `json:"status"`
	Draining      bool    `json:"draining,omitempty"`
	Version       string  `json:"version,omitempty"`
	GoVersion     string  `json:"go_version,omitempty"`
	VCSRevision   string  `json:"vcs_revision,omitempty"`
	VCSTime       string  `json:"vcs_time,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`

	StoreDir      string `json:"store_dir"`
	StoreWritable bool   `json:"store_writable"`
	CachedRuns    int    `json:"cached_runs"`

	QueueDepth  int `json:"queue_depth"`
	QueueCap    int `json:"queue_cap"`
	JobsRunning int `json:"jobs_running"`

	Stats Stats `json:"stats"`
}

// buildVersion reads the binary's module version and VCS stamp; all
// fields degrade to empty outside a module build (e.g. plain go test).
func buildVersion() (version, goVersion, vcsRev, vcsTime string) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	version, goVersion = bi.Main.Version, bi.GoVersion
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			vcsRev = s.Value
		case "vcs.time":
			vcsTime = s.Value
		}
	}
	return
}

// storeWritable probes the data directory with a create+remove round
// trip — the same operation Store.Put's temp-and-rename relies on.
func storeWritable(dir string) bool {
	f, err := os.CreateTemp(dir, ".healthz-*")
	if err != nil {
		return false
	}
	name := f.Name()
	f.Close()
	return os.Remove(name) == nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	version, goVersion, vcsRev, vcsTime := buildVersion()
	resp := healthResponse{
		Status:        "ok",
		Version:       version,
		GoVersion:     goVersion,
		VCSRevision:   vcsRev,
		VCSTime:       vcsTime,
		UptimeSeconds: time.Since(s.start).Seconds(),
		StoreDir:      filepath.Clean(s.dataDir),
		StoreWritable: storeWritable(s.dataDir),
		CachedRuns:    len(s.store.Keys()),
		QueueDepth:    s.mgr.QueueDepth(),
		QueueCap:      maxQueuedJobs,
		JobsRunning:   s.mgr.Running(),
		Stats:         s.mgr.StatsSnapshot(),
	}
	status := http.StatusOK
	if !resp.StoreWritable || resp.QueueDepth >= maxQueuedJobs {
		resp.Status = "degraded"
		status = http.StatusServiceUnavailable
	}
	if s.mgr.Draining() {
		// Draining is deliberate unreadiness: load balancers stop
		// routing, workers back off, in-flight uploads still land.
		resp.Status = "draining"
		resp.Draining = true
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}
