package server

import (
	"fmt"
	"os"
	"time"

	"repro/internal/campaign"
	"repro/internal/telemetry"
)

// Restart recovery: replaying the write-ahead journal (journal.go)
// back into the job manager before the server starts answering. Each
// journal file resolves to one of four outcomes:
//
//	already_done  the merged run is in the store (the crash hit after
//	              Put's atomic rename, before journal removal) — the
//	              job is registered done and its journal deleted.
//	failed        a terminal failed record, mid-file corruption, a
//	              truncated/unparseable submission record, or records
//	              inconsistent with the plan — the job is registered
//	              failed (clients see job_failed, never a panic) and
//	              the journal kept as evidence.
//	completed     every shard's result was journaled but the merge
//	              never filed — recovery finishes the merge itself;
//	              no worker runs again.
//	resumed       the common case: accepted shards restored from their
//	              journaled wire payloads, the lease table restored
//	              (tokens, holders, per-shard seq high-water), and only
//	              the genuinely pending shards re-exposed for claiming.
//
// Restoring leases verbatim matters twice over. The seq high-water
// keeps post-restart token strings (jobID.idx.seq) from colliding with
// tokens an earlier process handed out; and a pre-crash worker that is
// still executing can upload under its old token — the restored lease
// is its shard's current lease even if lapsed, exactly the
// expired-but-unevicted acceptance path — so a restart costs at most
// the re-execution that lease expiry would have forced anyway.
//
// recover runs single-threaded before the listener opens; it is the
// one writer of manager state at that point, so it takes mgr.mu only
// to share the locked helpers.

func (m *jobMgr) recover() error {
	if m.wal == nil {
		return nil
	}
	clean := m.wal.consumeCleanShutdown()
	// A crash before a checkpoint's rename abandons its temp file; the
	// journal reads correctly without it.
	m.wal.tidyTemp()
	ids, err := m.wal.jobIDs()
	if err != nil {
		return err
	}
	if len(ids) == 0 {
		if !clean {
			m.logger.Info("journal empty; nothing to recover")
		}
		return nil
	}
	m.logger.Info("replaying coordinator journal",
		"jobs", len(ids), "clean_shutdown", clean)
	var finalize []*job
	for _, id := range ids {
		j, complete, err := m.recoverJob(id)
		if err != nil {
			return err
		}
		if complete {
			finalize = append(finalize, j)
		}
		m.logger.Info("recovered job", "job", id, "state", j.state,
			"shards_done", j.shardsDone, "shards_total", len(j.shards))
	}
	// Complete merges outside any lock, after every journal is replayed
	// — the same path the completing upload would have run.
	for _, j := range finalize {
		m.finalizeDistributed(j)
	}
	return nil
}

// recoverJob replays one journal into a registered job. complete marks
// a job whose every shard landed pre-crash; the caller finishes its
// merge. The returned error is only for unreadable journal I/O —
// damaged content becomes a failed job, never an error.
func (m *jobMgr) recoverJob(id string) (j *job, complete bool, err error) {
	rep, err := m.wal.readWAL(id)
	if err != nil {
		return nil, false, err
	}
	if rep.tornTail {
		// A crash tore the final append. Nothing torn was ever
		// acknowledged (fsync-before-ack), so dropping it is safe.
		m.met.journalTorn.Inc()
		m.logger.Warn("dropped torn journal tail", "job", id)
	}
	if len(rep.stale) > 0 {
		// Segments below the replay base: a renamed checkpoint made them
		// redundant before the crash could unlink them (the mid-swap
		// window). Finish the unlink the compactor started.
		m.logger.Info("tidying segments superseded by checkpoint",
			"job", id, "segments", len(rep.stale))
		for _, p := range rep.stale {
			_ = os.Remove(p)
		}
		m.wal.syncDir()
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.bumpNextIDLocked(id)

	// The replay base's first record carries everything the plan rebuild
	// needs: a submission record (canonical spec) or a checkpoint record
	// (spec inside the snapshot, plus the summarized state to seed).
	var (
		spec campaign.Spec
		key  string
		plan []campaign.ShardInfo
		cp   *cpState
	)
	var cause error
	parseSpecPlan := func(raw []byte, what string) {
		parsed, perr := campaign.ParseSpec(raw)
		if perr != nil {
			cause = fmt.Errorf("journal %s record: %w", what, perr)
			return
		}
		spec = parsed.Normalized()
		cfg, cerr := spec.Config()
		if cerr != nil {
			cause = fmt.Errorf("journal %s record: %w", what, cerr)
			return
		}
		plan = cfg.Shards()
		if key == "" || len(plan) == 0 {
			cause = fmt.Errorf("journal %s record: empty key or plan", what)
		}
	}
	switch {
	case len(rep.records) == 0 || rep.records[0].Job != id:
		cause = fmt.Errorf("journal truncated: no submission record for %s", id)
	case rep.records[0].Type == walSubmit:
		key = rep.records[0].Key
		parseSpecPlan(rep.records[0].Spec, "submission")
	case rep.records[0].Type == walCheckpoint:
		st, derr := decodeCheckpoint(rep.records[0].Snap)
		if derr != nil {
			cause = fmt.Errorf("journal %s: %w", id, derr)
		} else {
			cp = st
			key = st.Key
			parseSpecPlan(st.Spec, "checkpoint")
			if cause == nil && len(st.Shards) != len(plan) {
				cause = fmt.Errorf("journal checkpoint record: %d shards, plan has %d",
					len(st.Shards), len(plan))
			}
		}
	default:
		cause = fmt.Errorf("journal truncated: no submission record for %s", id)
	}
	if cause == nil && rep.corrupt != nil {
		cause = rep.corrupt
	}

	j = m.registerRecoveredLocked(id, key, spec, plan)
	if cause == nil && cp != nil {
		m.applyCheckpointLocked(j, cp)
	}
	if cause == nil {
		cause = m.replayLocked(j, rep.records[1:])
	}
	if cause == nil {
		if _, dup := m.active[j.key]; dup {
			cause = fmt.Errorf("journal replay: a second journal already recovered key %.12s", j.key)
		}
	}

	switch {
	case cause != nil:
		// Surfaced as job_failed on every artifact route; the journal
		// file stays on disk as evidence (and so the failure survives
		// further restarts).
		j.state = JobFailed
		j.err = cause.Error()
		j.finished = m.now()
		m.met.recoveryFailed.Inc()
		m.met.journal.Append(telemetry.EventJobFailed, &j.id, &j.err, -1, -1)
		m.logger.Error("journal replay failed", "job", id, "error", cause)
		return j, false, nil

	case m.store.Has(j.key):
		// The run is filed — the crash hit between the store's atomic
		// rename and journal removal. Nothing left to do but tidy.
		j.state = JobDone
		j.finished = m.now()
		j.wires = nil
		for i := range j.shards {
			j.shards[i].State = "done"
		}
		j.shardsDone = len(j.shards)
		j.tracesDone = j.tracesTotal
		_ = m.wal.remove(id)
		m.met.recoveryDone.Inc()
		return j, false, nil
	}

	// The job is live again: it owns its cache key, counts as running,
	// and keeps journaling into its reopened file.
	m.active[j.key] = j
	w, werr := m.wal.openAppend(id)
	if werr != nil {
		m.logger.Error("journal reopen", "job", id, "error", werr)
	} else {
		j.wal = w
	}
	m.met.jobsRunning.Add(1)
	m.met.journal.Append(telemetry.EventJobRunning, &j.id, nil, -1, -1)

	if j.shardsDone == len(j.shards) {
		// Every shard landed pre-crash; only the merge is missing.
		j.finalizing = true
		m.met.recoveryCompleted.Inc()
		return j, true, nil
	}
	// Pending shards will be claimed and executed: this process runs
	// (part of) a campaign.
	m.openShards += len(j.shards) - j.shardsDone
	m.stats.RunsStarted++
	m.met.jobsStarted.Inc()
	m.met.recoveryResumed.Inc()
	return j, false, nil
}

// applyCheckpointLocked seeds a freshly registered job with a
// checkpoint's summarized state: shard states, the full lease table
// (primary and speculative tokens, seq high-water, grant timestamps),
// accepted wires, and the duration statistics feeding speculation.
// Tail records replay on top, idempotently. Callers hold m.mu.
func (m *jobMgr) applyCheckpointLocked(j *job, st *cpState) {
	j.durEWMA = st.DurEWMA
	j.durMax = st.DurMax
	j.durCount = st.DurCount
	for i := range st.Shards {
		cs := &st.Shards[i]
		sh, l := &j.shards[i], &j.leases[i]
		l.seq = cs.Seq
		l.token = cs.Token
		l.worker = cs.Worker
		l.expires = cs.Expires
		l.granted = cs.Granted
		l.batchN = cs.BatchN
		l.doneToken = cs.DoneToken
		l.specToken = cs.SpecToken
		l.specWorker = cs.SpecWorker
		l.specExpires = cs.SpecExpires
		switch {
		case cs.Wire != nil:
			j.wires[i] = cs.Wire
			sh.State = "done"
			sh.Worker = cs.Worker
			sh.Events = cs.Wire.Stats.Events
			sh.ElapsedSeconds = cs.Wire.Stats.Elapsed.Seconds()
			j.shardsDone++
			j.tracesDone += sh.Traces
			m.met.recoveryShards.Inc()
		case cs.State == "leased":
			sh.State = "leased"
			sh.Worker = cs.Worker
		}
	}
}

// replayLocked applies the post-submission records to a freshly
// registered job. A record inconsistent with the plan is corruption;
// duplicates (the crash-between-journal-and-ack retry) replay
// first-wins, exactly like the live accept path.
func (m *jobMgr) replayLocked(j *job, recs []walRecord) error {
	for _, rec := range recs {
		switch rec.Type {
		case walLease:
			if rec.Idx < 0 || rec.Idx >= len(j.shards) {
				return fmt.Errorf("journal replay: lease record for shard %d outside plan of %d",
					rec.Idx, len(j.shards))
			}
			sh, l := &j.shards[rec.Idx], &j.leases[rec.Idx]
			if sh.State == "done" {
				continue
			}
			switch rec.Event {
			case walGrant:
				sh.State = "leased"
				sh.Worker = rec.Worker
				l.token = rec.Token
				l.worker = rec.Worker
				l.expires = rec.Expires
				l.granted = rec.Time
				l.batchN = rec.BatchN
				if rec.Seq > l.seq {
					l.seq = rec.Seq
				}
			case walExpire:
				// Mirror the live eviction (evictLeaseLocked): a live
				// speculative twin at expiry was promoted to primary, not
				// returned to the pool.
				if l.specToken != "" {
					l.token, l.worker, l.expires = l.specToken, l.specWorker, l.specExpires
					l.granted, l.batchN = rec.Time, 1
					l.specToken, l.specWorker, l.specExpires = "", "", time.Time{}
					sh.Worker = l.worker
				} else {
					sh.State = "pending"
					sh.Worker = ""
					l.token, l.worker = "", ""
				}
			case walSpecGrant:
				l.specToken = rec.Token
				l.specWorker = rec.Worker
				l.specExpires = rec.Expires
				if rec.Seq > l.seq {
					l.seq = rec.Seq
				}
			case walSpecExpire:
				l.specToken, l.specWorker, l.specExpires = "", "", time.Time{}
			}
		case walResult:
			if rec.Idx < 0 || rec.Idx >= len(j.shards) {
				return fmt.Errorf("journal replay: result record for shard %d outside plan of %d",
					rec.Idx, len(j.shards))
			}
			if rec.Wire == nil {
				return fmt.Errorf("journal replay: result record for shard %d has no payload", rec.Idx)
			}
			if j.wires[rec.Idx] != nil {
				continue // duplicate append from a retried upload; first wins
			}
			sh, l := &j.shards[rec.Idx], &j.leases[rec.Idx]
			j.wires[rec.Idx] = rec.Wire
			l.doneToken = rec.Token
			sh.State = "done"
			sh.Worker = rec.Worker
			sh.Events = rec.Wire.Stats.Events
			sh.ElapsedSeconds = rec.Wire.Stats.Elapsed.Seconds()
			j.shardsDone++
			j.tracesDone += sh.Traces
			m.met.recoveryShards.Inc()
		case walFailed:
			return fmt.Errorf("recovered terminal failure: %s", rec.Error)
		case walSubmit:
			return fmt.Errorf("journal replay: second submission record")
		default:
			// Unknown record types are skipped, not fatal: a newer
			// process may have journaled kinds this binary predates.
		}
	}
	return nil
}

// registerRecoveredLocked builds and registers a recovered distributed
// job skeleton (state running, all shards pending — replay refines
// it). Callers hold m.mu.
func (m *jobMgr) registerRecoveredLocked(id, key string, spec campaign.Spec, plan []campaign.ShardInfo) *job {
	j := &job{
		id:        id,
		key:       key,
		spec:      spec,
		state:     JobRunning,
		execution: campaign.ExecutionDistributed,
		pos:       len(m.order),
		submitted: m.now(),
		started:   m.now(),
		shards:    make([]ShardProgress, len(plan)),
		leases:    make([]shardLease, len(plan)),
		wires:     make([]*campaign.ShardResultWire, len(plan)),
	}
	for i, sh := range plan {
		j.shards[i] = ShardProgress{ShardInfo: sh, State: "pending"}
		j.tracesTotal += sh.Traces
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j)
	m.stats.Jobs++
	m.stats.Recovered++
	return j
}

// bumpNextIDLocked keeps fresh job IDs above every recovered one, so a
// new job can never collide with (and truncate) a recovered journal.
func (m *jobMgr) bumpNextIDLocked(id string) {
	var n int
	if _, err := fmt.Sscanf(id, "j-%d", &n); err == nil && n > m.nextID {
		m.nextID = n
	}
}
