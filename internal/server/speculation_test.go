package server_test

// Straggler-speculation tests: a leased shard that outlives the job's
// typical duration is re-exposed as a speculative twin WITHOUT
// revoking the primary lease; the first upload wins and the loser acks
// "duplicate". All timing is stepped through the fake clock.

import (
	"context"
	"strings"
	"testing"
	"time"
)

// metricValue pulls one sample line out of the Prometheus text
// exposition, matching on the full series name including labels.
func metricValue(t *testing.T, text, series string) string {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// TestSpeculationRaceFirstUploadWins drives the full race: worker A
// straggles on a shard, worker B receives a speculative twin, B's
// upload is accepted, and A's late original upload acks "duplicate" —
// never an error, never a second merge.
func TestSpeculationRaceFirstUploadWins(t *testing.T) {
	_, client, fc := newLeaseServer(t)
	ctx := context.Background()

	job, _, err := client.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}

	// A's first shard establishes the duration history speculation
	// needs; the forced Elapsed makes the EWMA deterministic.
	first, err := client.Claim(ctx, job.ID, "wA", 1)
	if err != nil {
		t.Fatal(err)
	}
	wires := execWires(t, distSpec, first.SpecHash)
	for _, w := range wires {
		w.Stats.Elapsed = 50 * time.Millisecond
	}
	s0 := first.Shards[0]
	if ack, err := client.PushShardResult(ctx, job.ID, s0.Index, "wA", s0.Lease, wires[s0.Index]); err != nil || ack.Status != "accepted" {
		t.Fatalf("seed upload = %v %v, want accepted", ack, err)
	}

	// A claims one more shard and straggles: 10s elapsed dwarfs the
	// speculate-after threshold (3 × 50ms × batch 1) but stays well
	// inside A's 30s lease.
	straggle, err := client.Claim(ctx, job.ID, "wA", 1)
	if err != nil {
		t.Fatal(err)
	}
	sA := straggle.Shards[0]
	fc.Advance(10 * time.Second)

	// B's claim drains the pending pool and then re-exposes A's shard
	// as exactly one speculative twin.
	claimB, err := client.Claim(ctx, job.ID, "wB", 50)
	if err != nil {
		t.Fatal(err)
	}
	var spec *struct {
		index int
		lease string
	}
	regular := 0
	for _, s := range claimB.Shards {
		if s.Speculative {
			if spec != nil {
				t.Fatalf("claim B granted more than one speculative shard")
			}
			spec = &struct {
				index int
				lease string
			}{s.Index, s.Lease}
		} else {
			regular++
		}
	}
	if spec == nil || spec.index != sA.Index {
		t.Fatalf("claim B speculative = %+v, want twin of shard %d", spec, sA.Index)
	}
	if want := job.ShardsTotal - 2; regular != want {
		t.Fatalf("claim B regular shards = %d, want %d", regular, want)
	}

	// The twin token heartbeats like any lease.
	hb, err := client.Heartbeat(ctx, job.ID, spec.index, "wB", spec.lease)
	if err != nil {
		t.Fatal(err)
	}
	if !hb.ExpiresAt.After(fc.Now()) {
		t.Fatalf("spec heartbeat expires %v, want after now", hb.ExpiresAt)
	}

	// B wins the race; A's original lease is still live, and its upload
	// must ack duplicate — the work was identical bytes.
	if ack, err := client.PushShardResult(ctx, job.ID, spec.index, "wB", spec.lease, wires[spec.index]); err != nil || ack.Status != "accepted" {
		t.Fatalf("speculative upload = %v %v, want accepted", ack, err)
	}
	if ack, err := client.PushShardResult(ctx, job.ID, sA.Index, "wA", sA.Lease, wires[sA.Index]); err != nil || ack.Status != "duplicate" {
		t.Fatalf("straggler upload = %v %v, want duplicate", ack, err)
	}

	// Drain the rest and check byte identity end to end.
	for _, s := range claimB.Shards {
		if s.Speculative {
			continue
		}
		if ack, err := client.PushShardResult(ctx, job.ID, s.Index, "wB", s.Lease, wires[s.Index]); err != nil || ack.Status != "accepted" {
			t.Fatalf("drain upload %d = %v %v, want accepted", s.Index, ack, err)
		}
	}
	wantDatasetMatch(t, client, job.ID)

	// The scoreboard charged the straggler with the loss, and the
	// metrics narrate the race.
	workers, err := client.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workers {
		if w.ID == "wA" && w.SpeculationLosses != 1 {
			t.Fatalf("wA speculation losses = %d, want 1", w.SpeculationLosses)
		}
	}
	text, err := client.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, text, `repro_speculation_total{event="issued"}`); got != "1" {
		t.Fatalf("speculation issued = %q, want 1", got)
	}
	if got := metricValue(t, text, `repro_speculation_total{event="won"}`); got != "1" {
		t.Fatalf("speculation won = %q, want 1", got)
	}
}

// TestSpeculationRequiresHistory: with no completed shard there is no
// "typical duration", so no amount of elapsed time triggers a twin.
func TestSpeculationRequiresHistory(t *testing.T) {
	_, client, fc := newLeaseServer(t)
	ctx := context.Background()

	job, _, err := client.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Claim(ctx, job.ID, "wA", 1); err != nil {
		t.Fatal(err)
	}
	fc.Advance(20 * time.Second) // long elapsed, lease still live
	claimB, err := client.Claim(ctx, job.ID, "wB", 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range claimB.Shards {
		if s.Speculative {
			t.Fatalf("shard %d speculative with zero duration history", s.Index)
		}
	}
	if want := job.ShardsTotal - 1; len(claimB.Shards) != want {
		t.Fatalf("claim B = %d shards, want %d pending", len(claimB.Shards), want)
	}
}

// TestSpeculationSurvivesRestart is the recovery leg: the speculative
// grant is journaled, so after a crash the twin token still uploads
// "accepted" on the restarted coordinator and the straggler's original
// still acks "duplicate".
func TestSpeculationSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	fc := newFakeClock()
	ctx := context.Background()

	srv1, ts1, client1 := startCrashServer(t, dir, fc)
	_ = srv1
	job, _, err := client1.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	first, err := client1.Claim(ctx, job.ID, "wA", 1)
	if err != nil {
		t.Fatal(err)
	}
	wires := execWires(t, distSpec, first.SpecHash)
	for _, w := range wires {
		w.Stats.Elapsed = 50 * time.Millisecond
	}
	s0 := first.Shards[0]
	if ack, err := client1.PushShardResult(ctx, job.ID, s0.Index, "wA", s0.Lease, wires[s0.Index]); err != nil || ack.Status != "accepted" {
		t.Fatalf("seed upload = %v %v, want accepted", ack, err)
	}
	straggle, err := client1.Claim(ctx, job.ID, "wA", 1)
	if err != nil {
		t.Fatal(err)
	}
	sA := straggle.Shards[0]
	fc.Advance(10 * time.Second)
	claimB, err := client1.Claim(ctx, job.ID, "wB", 50)
	if err != nil {
		t.Fatal(err)
	}
	var specIdx int
	specLease := ""
	for _, s := range claimB.Shards {
		if s.Speculative {
			specIdx, specLease = s.Index, s.Lease
		}
	}
	if specLease == "" || specIdx != sA.Index {
		t.Fatalf("no speculative twin of shard %d in claim B", sA.Index)
	}

	// Crash with the race in flight; both tokens were journaled.
	ts1.Close()
	_, _, client2 := startCrashServer(t, dir, fc)

	if ack, err := client2.PushShardResult(ctx, job.ID, specIdx, "wB", specLease, wires[specIdx]); err != nil || ack.Status != "accepted" {
		t.Fatalf("post-restart speculative upload = %v %v, want accepted", ack, err)
	}
	if ack, err := client2.PushShardResult(ctx, job.ID, sA.Index, "wA", sA.Lease, wires[sA.Index]); err != nil || ack.Status != "duplicate" {
		t.Fatalf("post-restart straggler upload = %v %v, want duplicate", ack, err)
	}
	// B's pre-crash regular leases were journaled too: drain under the
	// original tokens, then check byte identity across the crash.
	for _, s := range claimB.Shards {
		if s.Speculative {
			continue
		}
		if ack, err := client2.PushShardResult(ctx, job.ID, s.Index, "wB", s.Lease, wires[s.Index]); err != nil || ack.Status != "accepted" {
			t.Fatalf("post-restart drain %d = %v %v, want accepted", s.Index, ack, err)
		}
	}
	wantDatasetMatch(t, client2, job.ID)
}

// TestAdaptiveClaimSizing: once the EWMA says shards are slow relative
// to the lease TTL, a greedy claim is capped so the batch fits inside
// one TTL. 20s shards against a 30s TTL cap every batch at one shard.
func TestAdaptiveClaimSizing(t *testing.T) {
	_, client, _ := newLeaseServer(t)
	ctx := context.Background()

	job, _, err := client.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	first, err := client.Claim(ctx, job.ID, "wA", 1)
	if err != nil {
		t.Fatal(err)
	}
	wires := execWires(t, distSpec, first.SpecHash)
	for _, w := range wires {
		w.Stats.Elapsed = 20 * time.Second
	}
	s0 := first.Shards[0]
	if ack, err := client.PushShardResult(ctx, job.ID, s0.Index, "wA", s0.Lease, wires[s0.Index]); err != nil || ack.Status != "accepted" {
		t.Fatalf("seed upload = %v %v, want accepted", ack, err)
	}
	greedy, err := client.Claim(ctx, job.ID, "wA", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(greedy.Shards) != 1 {
		t.Fatalf("greedy claim = %d shards, want adaptive cap of 1", len(greedy.Shards))
	}
	text, err := client.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, text, "repro_claims_capped_total"); got != "1" {
		t.Fatalf("claims capped = %q, want 1", got)
	}
}
