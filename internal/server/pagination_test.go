package server_test

// Pagination contract tests for GET /v1/jobs and GET /v1/runs: stable
// ordering, limit/cursor resumption, Link rel="next" headers, and the
// envelope codes for bad paging parameters.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/apiclient"
	"repro/internal/server"
)

// newPagingServer starts a coordinator whose jobs never run: every
// submission is a distributed job that sits "running" with pending
// shards, so listings are deterministic and instant.
func newPagingServer(t *testing.T) (*server.Server, *httptest.Server, *apiclient.Client) {
	t.Helper()
	srv, err := server.New(server.Config{DataDir: t.TempDir(), Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts, apiclient.New(ts.URL)
}

func submitN(t *testing.T, client *apiclient.Client, n int) []string {
	t.Helper()
	ids := make([]string, n)
	for i := range ids {
		spec := fmt.Sprintf(`{"spec": 1, "scale": "small", "traces": 1, "seed": %d, "stride": 0,
			"execution": "distributed"}`, 1000+i)
		job, _, err := client.SubmitRaw(context.Background(), []byte(spec))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = job.ID
	}
	return ids
}

func TestJobsPagination(t *testing.T) {
	_, ts, client := newPagingServer(t)
	ctx := context.Background()
	ids := submitN(t, client, 5)

	// Page 1: first two jobs in submission order, with a resume cursor.
	page, err := client.Jobs(ctx, apiclient.JobsOptions{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 2 || page.Jobs[0].ID != ids[0] || page.Jobs[1].ID != ids[1] {
		t.Fatalf("page 1 = %+v, want %v", page.Jobs, ids[:2])
	}
	if page.NextCursor != ids[1] {
		t.Fatalf("page 1 cursor = %q, want %q", page.NextCursor, ids[1])
	}

	// The same page over raw HTTP carries a Link rel="next" header.
	resp, err := http.Get(ts.URL + "/v1/jobs?limit=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	link := resp.Header.Get("Link")
	if !strings.Contains(link, "cursor="+ids[1]) || !strings.Contains(link, `rel="next"`) {
		t.Fatalf("Link header = %q", link)
	}

	// Resume to the end.
	page, err = client.Jobs(ctx, apiclient.JobsOptions{Limit: 2, Cursor: page.NextCursor})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 2 || page.Jobs[0].ID != ids[2] || page.Jobs[1].ID != ids[3] {
		t.Fatalf("page 2 = %+v", page.Jobs)
	}
	page, err = client.Jobs(ctx, apiclient.JobsOptions{Limit: 2, Cursor: page.NextCursor})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 1 || page.Jobs[0].ID != ids[4] || page.NextCursor != "" {
		t.Fatalf("final page = %+v next %q, want [%s] and no cursor", page.Jobs, page.NextCursor, ids[4])
	}

	// A state filter that matches everything pages identically; one
	// that matches nothing is empty but well-formed.
	page, err = client.Jobs(ctx, apiclient.JobsOptions{State: "running"})
	if err != nil || len(page.Jobs) != 5 {
		t.Fatalf("state=running page = %d jobs, %v", len(page.Jobs), err)
	}
	page, err = client.Jobs(ctx, apiclient.JobsOptions{State: "failed"})
	if err != nil || len(page.Jobs) != 0 {
		t.Fatalf("state=failed page = %+v, %v", page.Jobs, err)
	}

	// Bad paging parameters report stable envelope codes.
	_, err = client.Jobs(ctx, apiclient.JobsOptions{Cursor: "j-404404"})
	wantCode(t, err, 400, "cursor_invalid")
	_, err = client.Jobs(ctx, apiclient.JobsOptions{State: "bogus"})
	wantCode(t, err, 400, "bad_request")
	resp, err = http.Get(ts.URL + "/v1/jobs?limit=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("limit=banana status = %d, want 400", resp.StatusCode)
	}
}

func TestRunsPagination(t *testing.T) {
	srv, _, client := newPagingServer(t)
	ctx := context.Background()

	// File fabricated runs straight into the store; the listing must
	// come back sorted regardless of insertion order.
	keys := []string{"cc44", "aa11", "bb33", "bb22"}
	for _, k := range keys {
		meta := server.RunMeta{Key: k, CompletedAt: time.Now().UTC()}
		if err := srv.Store().Put(k, []byte(`{}`), meta, []byte("{}\n")); err != nil {
			t.Fatal(err)
		}
	}

	page, err := client.Runs(ctx, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"aa11", "bb22", "bb33"}; len(page.Runs) != 3 ||
		page.Runs[0] != want[0] || page.Runs[1] != want[1] || page.Runs[2] != want[2] {
		t.Fatalf("runs page 1 = %v, want %v", page.Runs, want)
	}
	if page.NextCursor != "bb33" {
		t.Fatalf("runs cursor = %q, want bb33", page.NextCursor)
	}
	page, err = client.Runs(ctx, 3, page.NextCursor)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Runs) != 1 || page.Runs[0] != "cc44" || page.NextCursor != "" {
		t.Fatalf("runs page 2 = %+v", page)
	}

	// Run cursors are positional, not existential: a pruned key still
	// resumes from the right place.
	page, err = client.Runs(ctx, 10, "bb25")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Runs) != 2 || page.Runs[0] != "bb33" {
		t.Fatalf("lenient cursor page = %v", page.Runs)
	}
}
