package server

import (
	"log/slog"
	"net/http"
	"time"
)

// statusRecorder captures the response status for logging and metrics.
// Handlers that never call WriteHeader implicitly send 200.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func codeClass(status int) string {
	switch {
	case status < 200:
		return "1xx"
	case status < 300:
		return "2xx"
	case status < 400:
		return "3xx"
	case status < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// instrument wraps one route's handler with the observability
// middleware: request counter and latency histogram labelled by the
// route pattern (captured here at registration — the mux's match isn't
// visible to an outer wrapper), and one structured log line per
// request carrying method, path, status, duration and — on job routes —
// the job id, so a job's requests grep together across the log.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.httpInflight.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		elapsed := time.Since(start)
		s.metrics.httpInflight.Add(-1)

		reqs, lat := s.metrics.requestInstruments(route, codeClass(rec.status))
		reqs.Inc()
		lat.Observe(elapsed.Seconds())

		attrs := []slog.Attr{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Duration("duration", elapsed),
		}
		if id := r.PathValue("id"); id != "" {
			attrs = append(attrs, slog.String("job", id))
		}
		level := slog.LevelInfo
		if rec.status >= 500 {
			level = slog.LevelError
		}
		s.logger.LogAttrs(r.Context(), level, "request", attrs...)
	}
}
