package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/campaign"
)

// The coordinator's write-ahead journal: the durable half of the
// distributed job state that leases.go keeps in memory. Everything the
// control plane promises a worker — "your submission is accepted",
// "your lease is granted", and above all "your shard result is
// accepted" — is appended to a per-job journal file and fsync'd
// BEFORE the HTTP response carrying that promise is written. A crashed
// coordinator therefore owns every acknowledged byte: replaying the
// journals at startup reconstructs each running distributed job, its
// accepted-shard set (full ShardResultWire payloads), and its lease
// table, so only the genuinely pending shards are re-exposed for
// claiming and no acknowledged work is ever re-executed.
//
// Layout: the journal lives beside the content-addressed store fan-out
// under <data dir>/journal/ — a non-2-hex-char name, so OpenStore's
// re-index skips it by construction. One append-only file per
// distributed job:
//
//	<data dir>/journal/<jobID>.wal
//
// Each record is one line:
//
//	w1 <crc32-hex8> <compact JSON>\n
//
// where the checksum is CRC-32 (IEEE) of exactly the JSON bytes. The
// prefix names the format version; the checksum turns "did this line
// land whole?" into a yes/no question, which is what makes the replay
// semantics clean:
//
//   - A damaged FINAL line is a torn tail — the crash interrupted an
//     append whose record was never acknowledged (the fsync-before-ack
//     discipline guarantees this). It is dropped, counted, and the job
//     still recovers.
//   - A damaged line with valid records AFTER it is real corruption —
//     the disk lied. The job is surfaced as failed with code
//     job_failed; it never panics the coordinator and never merges
//     doubtful bytes.
//
// The journal records only distributed jobs. In-process jobs need no
// durability: their submission is re-sendable, their run is atomic at
// the store layer (Put's temp-dir rename), and a crash mid-run simply
// re-simulates — determinism makes the retry byte-identical.
//
// Lifecycle: the journal file is created (submit record, fsync'd)
// before the 202; grant/expiry records track the lease table (grants
// fsync'd before the claim response, expiries lazily — they are
// re-derivable from the clock); each accepted result is fsync'd before
// its 200 (see shardResultLocked). When the merged run lands in the
// store the file is deleted — the store entry, itself crash-atomic, is
// now the durable record. A failed job keeps its journal with a
// terminal "failed" record so restarts re-surface the failure instead
// of re-running a poisoned merge.

// walFormatPrefix versions the on-disk line format.
const walFormatPrefix = "w1"

// walRecord is one journal line. Type discriminates; the other fields
// are a union over the record types:
//
//	submit: job, key, spec (canonical bytes), time
//	lease:  idx, event ("grant"|"expire"), worker, seq, token, expires
//	result: idx, worker, token, wire (full shard payload)
//	failed: error, time
type walRecord struct {
	Type string `json:"t"`

	Job  string          `json:"job,omitempty"`
	Key  string          `json:"key,omitempty"`
	Spec json.RawMessage `json:"spec,omitempty"`
	Time time.Time       `json:"time,omitzero"`

	Idx     int       `json:"idx,omitempty"`
	Event   string    `json:"event,omitempty"`
	Worker  string    `json:"worker,omitempty"`
	Seq     int       `json:"seq,omitempty"`
	Token   string    `json:"token,omitempty"`
	Expires time.Time `json:"expires,omitzero"`

	Wire *campaign.ShardResultWire `json:"wire,omitempty"`

	Error string `json:"error,omitempty"`
}

const (
	walSubmit = "submit"
	walLease  = "lease"
	walResult = "result"
	walFailed = "failed"

	walGrant  = "grant"
	walExpire = "expire"
)

const (
	walSuffix           = ".wal"
	cleanShutdownMarker = "clean-shutdown"
)

// walDir manages the journal directory. It is not itself locked: all
// mutation happens under mgr.mu (appends) or before serving starts
// (replay), matching the lease table it shadows.
type walDir struct {
	dir string
}

// openWALDir creates (if needed) the journal directory under the store
// root.
func openWALDir(root string) (*walDir, error) {
	dir := filepath.Join(root, "journal")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: journal: %w", err)
	}
	return &walDir{dir: dir}, nil
}

func (d *walDir) path(jobID string) string {
	return filepath.Join(d.dir, jobID+walSuffix)
}

// syncDir fsyncs the journal directory so file creations and removals
// are themselves durable. Best-effort: not every filesystem supports
// directory fsync, and the record-level fsync already carries the
// correctness-critical promises.
func (d *walDir) syncDir() {
	if f, err := os.Open(d.dir); err == nil {
		_ = f.Sync()
		f.Close()
	}
}

// create opens a fresh journal for a job. Truncating an existing file
// is deliberate: job IDs restart per-process only above the recovered
// high-water mark (see recover), so a name collision means a stale
// file from a deleted job.
func (d *walDir) create(jobID string) (*jobWAL, error) {
	f, err := os.OpenFile(d.path(jobID), os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: journal: %w", err)
	}
	d.syncDir()
	return &jobWAL{f: f}, nil
}

// openAppend reopens a recovered job's journal for continued appends.
func (d *walDir) openAppend(jobID string) (*jobWAL, error) {
	f, err := os.OpenFile(d.path(jobID), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: journal: %w", err)
	}
	return &jobWAL{f: f}, nil
}

// remove deletes a job's journal (after its run landed in the store,
// or when a failed job is garbage-collected).
func (d *walDir) remove(jobID string) error {
	if err := os.Remove(d.path(jobID)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	d.syncDir()
	return nil
}

// jobIDs lists the job IDs with journals on disk, sorted.
func (d *walDir) jobIDs() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("server: journal: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), walSuffix); ok && !e.IsDir() {
			ids = append(ids, name)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// markCleanShutdown journals that this process exited deliberately:
// leases were drained, nothing was torn. The marker is informational —
// recovery replays the same way either way — but it lets the next
// startup log "clean restart" vs "recovering from crash" truthfully.
func (d *walDir) markCleanShutdown(at time.Time) error {
	p := filepath.Join(d.dir, cleanShutdownMarker)
	if err := os.WriteFile(p, []byte(at.UTC().Format(time.RFC3339Nano)+"\n"), 0o644); err != nil {
		return err
	}
	d.syncDir()
	return nil
}

// consumeCleanShutdown reports and removes the clean-shutdown marker.
func (d *walDir) consumeCleanShutdown() bool {
	p := filepath.Join(d.dir, cleanShutdownMarker)
	if _, err := os.Stat(p); err != nil {
		return false
	}
	_ = os.Remove(p)
	d.syncDir()
	return true
}

// jobWAL is one job's open journal file. Appends are serialized by
// mgr.mu, like the in-memory state they shadow.
type jobWAL struct {
	f *os.File
}

// append frames, checksums and writes one record, returning the bytes
// written. It does NOT sync; callers batch appends and sync once
// before releasing the promise the records carry.
func (w *jobWAL) append(rec *walRecord) (int, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("server: journal: marshal %s record: %w", rec.Type, err)
	}
	var line bytes.Buffer
	line.Grow(len(body) + 16)
	fmt.Fprintf(&line, "%s %08x ", walFormatPrefix, crc32.ChecksumIEEE(body))
	line.Write(body)
	line.WriteByte('\n')
	n, err := w.f.Write(line.Bytes())
	if err != nil {
		return n, fmt.Errorf("server: journal: append: %w", err)
	}
	return n, nil
}

// sync makes every append so far durable.
func (w *jobWAL) sync() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("server: journal: sync: %w", err)
	}
	return nil
}

func (w *jobWAL) close() {
	if w != nil && w.f != nil {
		_ = w.f.Close()
	}
}

// walReplay is one journal's parsed content.
type walReplay struct {
	records []walRecord
	// tornTail marks a damaged final line: a crash mid-append of a
	// record nobody was ever promised. Dropped, not fatal.
	tornTail bool
	// corrupt is non-nil when a damaged line has valid records after it
	// — disk corruption, not a torn append. The job must fail.
	corrupt error
}

// readWAL parses one job's journal, classifying damage per the
// torn-tail vs mid-file-corruption rules above.
func (d *walDir) readWAL(jobID string) (walReplay, error) {
	data, err := os.ReadFile(d.path(jobID))
	if err != nil {
		return walReplay{}, fmt.Errorf("server: journal: %w", err)
	}
	var rep walReplay
	lines := bytes.Split(data, []byte("\n"))
	for i, line := range lines {
		if len(line) == 0 {
			continue // the split artifact after the final newline (or empty file)
		}
		rec, perr := parseWALLine(line)
		if perr != nil {
			// Damage is a torn tail iff nothing valid follows it.
			for _, rest := range lines[i+1:] {
				if len(rest) > 0 {
					rep.corrupt = fmt.Errorf("journal %s%s: line %d: %w (valid records follow — mid-file corruption)",
						jobID, walSuffix, i+1, perr)
					return rep, nil
				}
			}
			rep.tornTail = true
			return rep, nil
		}
		rep.records = append(rep.records, rec)
	}
	return rep, nil
}

// parseWALLine validates one line's framing and checksum and returns
// its record.
func parseWALLine(line []byte) (walRecord, error) {
	var rec walRecord
	rest, ok := bytes.CutPrefix(line, []byte(walFormatPrefix+" "))
	if !ok {
		return rec, fmt.Errorf("bad frame prefix")
	}
	if len(rest) < 9 || rest[8] != ' ' {
		return rec, fmt.Errorf("bad checksum frame")
	}
	var want uint32
	if _, err := fmt.Sscanf(string(rest[:8]), "%08x", &want); err != nil {
		return rec, fmt.Errorf("bad checksum: %v", err)
	}
	body := rest[9:]
	if got := crc32.ChecksumIEEE(body); got != want {
		return rec, fmt.Errorf("checksum mismatch: line says %08x, content is %08x", want, got)
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		return rec, fmt.Errorf("checksum valid but record unparseable: %v", err)
	}
	if rec.Type == "" {
		return rec, fmt.Errorf("record has no type")
	}
	return rec, nil
}
