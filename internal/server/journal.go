package server

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
)

// The coordinator's write-ahead journal: the durable half of the
// distributed job state that leases.go keeps in memory. Everything the
// control plane promises a worker — "your submission is accepted",
// "your lease is granted", and above all "your shard result is
// accepted" — is appended to a per-job journal and fsync'd BEFORE the
// HTTP response carrying that promise is written. A crashed
// coordinator therefore owns every acknowledged byte: replaying the
// journals at startup reconstructs each running distributed job, its
// accepted-shard set (full ShardResultWire payloads), and its lease
// table, so only the genuinely pending shards are re-exposed for
// claiming and no acknowledged work is ever re-executed.
//
// Layout: the journal lives beside the content-addressed store fan-out
// under <data dir>/journal/ — a non-2-hex-char name, so OpenStore's
// re-index skips it by construction. A job's journal is a chain of
// append-only SEGMENTS:
//
//	<data dir>/journal/<jobID>.wal        segment 1 (opens with the submit record)
//	<data dir>/journal/<jobID>.<n>.wal    segment n ≥ 2
//
// Appends always go to the highest-numbered segment (the active one).
// When the active segment exceeds the configured byte cap it is sealed
// and a fresh active segment is opened two numbers up; the number in
// between is reserved for a CHECKPOINT segment the background
// compactor then writes — a single record carrying a gzip-compressed
// snapshot of the job's entire replayable state (accepted wires, lease
// table, duration statistics). Once the checkpoint is durably renamed
// into place, every lower-numbered segment is redundant and unlinked,
// so a long-lived coordinator's journal stays O(pending work) instead
// of O(history). Recovery replays the highest segment that starts with
// a submit or checkpoint record, plus every segment after it; a crash
// mid-compaction therefore leaves a journal that reads as either the
// old chain (checkpoint never renamed) or the new one (renamed; stale
// chain tidied at recovery) — never a mix, never neither.
//
// Each record is one line:
//
//	w1 <crc32-hex8> <compact JSON>\n
//
// where the checksum is CRC-32 (IEEE) of exactly the JSON bytes. The
// prefix names the format version; the checksum turns "did this line
// land whole?" into a yes/no question, which is what makes the replay
// semantics clean:
//
//   - A damaged FINAL line of the FINAL segment is a torn tail — the
//     crash interrupted an append whose record was never acknowledged
//     (the fsync-before-ack discipline guarantees this; sealed
//     segments were fully synced before rolling). It is dropped,
//     counted, and the job still recovers.
//   - A damaged line anywhere else is real corruption — the disk lied.
//     The job is surfaced as failed with code job_failed; it never
//     panics the coordinator and never merges doubtful bytes.
//
// The journal records only distributed jobs. In-process jobs need no
// durability: their submission is re-sendable, their run is atomic at
// the store layer (Put's temp-dir rename), and a crash mid-run simply
// re-simulates — determinism makes the retry byte-identical.
//
// Lifecycle: the journal is created (submit record, fsync'd) before
// the 202; grant/expiry records track the lease table (grants fsync'd
// before the claim response, expiries lazily — they are re-derivable
// from the clock); each accepted result is fsync'd before its 200 (see
// shardResultLocked). When the merged run lands in the store every
// segment is deleted — the store entry, itself crash-atomic, is now
// the durable record. A failed job keeps its journal with a terminal
// "failed" record so restarts re-surface the failure instead of
// re-running a poisoned merge.

// walFormatPrefix versions the on-disk line format.
const walFormatPrefix = "w1"

// walRecord is one journal line. Type discriminates; the other fields
// are a union over the record types:
//
//	submit:     job, key, spec (canonical bytes), time
//	lease:      idx, event ("grant"|"expire"|"spec-grant"|"spec-expire"),
//	            worker, seq, token, expires, batch (grant batch size)
//	result:     idx, worker, token, wire (full shard payload)
//	failed:     error, time
//	checkpoint: job, key, snap (gzip-compressed cpState JSON), time
type walRecord struct {
	Type string `json:"t"`

	Job  string          `json:"job,omitempty"`
	Key  string          `json:"key,omitempty"`
	Spec json.RawMessage `json:"spec,omitempty"`
	Time time.Time       `json:"time,omitzero"`

	Idx     int       `json:"idx,omitempty"`
	Event   string    `json:"event,omitempty"`
	Worker  string    `json:"worker,omitempty"`
	Seq     int       `json:"seq,omitempty"`
	Token   string    `json:"token,omitempty"`
	Expires time.Time `json:"expires,omitzero"`
	// BatchN is the number of shards granted in the same claim as this
	// grant — the straggler detector scales its patience by it, since a
	// worker executes its batch serially.
	BatchN int `json:"batch,omitempty"`

	Wire *campaign.ShardResultWire `json:"wire,omitempty"`

	// Snap is a checkpoint record's gzip-compressed cpState JSON
	// (base64 on the wire via encoding/json's []byte convention).
	Snap []byte `json:"snap,omitempty"`

	Error string `json:"error,omitempty"`
}

const (
	walSubmit     = "submit"
	walLease      = "lease"
	walResult     = "result"
	walFailed     = "failed"
	walCheckpoint = "checkpoint"

	walGrant      = "grant"
	walExpire     = "expire"
	walSpecGrant  = "spec-grant"
	walSpecExpire = "spec-expire"
)

const (
	walSuffix           = ".wal"
	walTempSuffix       = ".tmp"
	cleanShutdownMarker = "clean-shutdown"
	// defaultJournalSegmentBytes caps the active segment before a roll;
	// Config.JournalSegmentBytes overrides.
	defaultJournalSegmentBytes = 1 << 20
)

// cpState is a checkpoint record's payload: everything replay needs to
// reconstruct the job without the records the checkpoint supersedes.
// It may reflect records appended to the new active segment after the
// seal (the snapshot is taken later, under the manager lock); replay
// of those tail records on top is idempotent by the same rules the
// live paths use (results dedup first-wins, grants overwrite).
type cpState struct {
	Key    string          `json:"key"`
	Spec   json.RawMessage `json:"spec"`
	Shards []cpShard       `json:"shards"`
	// Shard-duration statistics feeding speculation and adaptive claim
	// sizing (leases.go) — preserved so a restarted coordinator keeps
	// speculating without re-learning.
	DurEWMA  float64 `json:"dur_ewma,omitempty"`
	DurMax   float64 `json:"dur_max,omitempty"`
	DurCount int     `json:"dur_count,omitempty"`
}

// cpShard is one shard's state inside a checkpoint.
type cpShard struct {
	State       string                    `json:"state"` // pending | leased | done
	Worker      string                    `json:"worker,omitempty"`
	Seq         int                       `json:"seq,omitempty"`
	Token       string                    `json:"token,omitempty"`
	Expires     time.Time                 `json:"expires,omitzero"`
	Granted     time.Time                 `json:"granted,omitzero"`
	BatchN      int                       `json:"batch,omitempty"`
	DoneToken   string                    `json:"done_token,omitempty"`
	SpecToken   string                    `json:"spec_token,omitempty"`
	SpecWorker  string                    `json:"spec_worker,omitempty"`
	SpecExpires time.Time                 `json:"spec_expires,omitzero"`
	Wire        *campaign.ShardResultWire `json:"wire,omitempty"`
}

// encodeCheckpoint gzips a snapshot's JSON. The accepted wires inside
// are highly repetitive JSON, which is what makes a checkpoint far
// smaller than the record chain it replaces.
func encodeCheckpoint(st *cpState) ([]byte, error) {
	body, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("server: journal: marshal checkpoint: %w", err)
	}
	var buf bytes.Buffer
	gz, _ := gzip.NewWriterLevel(&buf, gzip.BestCompression)
	if _, err := gz.Write(body); err != nil {
		return nil, fmt.Errorf("server: journal: compress checkpoint: %w", err)
	}
	if err := gz.Close(); err != nil {
		return nil, fmt.Errorf("server: journal: compress checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeCheckpoint(snap []byte) (*cpState, error) {
	gz, err := gzip.NewReader(bytes.NewReader(snap))
	if err != nil {
		return nil, fmt.Errorf("checkpoint snapshot: %w", err)
	}
	body, err := io.ReadAll(gz)
	if err != nil {
		return nil, fmt.Errorf("checkpoint snapshot: %w", err)
	}
	var st cpState
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("checkpoint snapshot: %w", err)
	}
	return &st, nil
}

// walDir manages the journal directory. It is not itself locked: all
// mutation happens under mgr.mu (appends, rolls) or on the single
// compactor goroutine (checkpoint writes of already-sealed state), or
// before serving starts (replay).
type walDir struct {
	dir string
	// segmentCap is the active-segment byte threshold that triggers a
	// seal-and-compact; zero means the default.
	segmentCap int64
}

// openWALDir creates (if needed) the journal directory under the store
// root.
func openWALDir(root string) (*walDir, error) {
	dir := filepath.Join(root, "journal")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: journal: %w", err)
	}
	return &walDir{dir: dir}, nil
}

func (d *walDir) capBytes() int64 {
	if d.segmentCap > 0 {
		return d.segmentCap
	}
	return defaultJournalSegmentBytes
}

// segPath names one segment. Segment 1 keeps the bare <jobID>.wal name
// for continuity with single-file journals written by earlier builds.
func (d *walDir) segPath(jobID string, seq int) string {
	if seq <= 1 {
		return filepath.Join(d.dir, jobID+walSuffix)
	}
	return filepath.Join(d.dir, fmt.Sprintf("%s.%d%s", jobID, seq, walSuffix))
}

// walSegment is one on-disk segment of a job's journal chain.
type walSegment struct {
	seq  int
	path string
}

// parseSegName splits a journal file name into (jobID, seq); ok is
// false for non-segment files (the clean-shutdown marker, temp files).
func parseSegName(name string) (jobID string, seq int, ok bool) {
	stem, found := strings.CutSuffix(name, walSuffix)
	if !found || stem == "" {
		return "", 0, false
	}
	if dot := strings.LastIndexByte(stem, '.'); dot > 0 {
		if n, err := strconv.Atoi(stem[dot+1:]); err == nil && n >= 2 {
			return stem[:dot], n, true
		}
	}
	return stem, 1, true
}

// segments lists a job's on-disk segments in ascending order.
func (d *walDir) segments(jobID string) ([]walSegment, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("server: journal: %w", err)
	}
	var segs []walSegment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		id, seq, ok := parseSegName(e.Name())
		if ok && id == jobID {
			segs = append(segs, walSegment{seq: seq, path: filepath.Join(d.dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// syncDir fsyncs the journal directory so file creations and removals
// are themselves durable. Best-effort: not every filesystem supports
// directory fsync, and the record-level fsync already carries the
// correctness-critical promises.
func (d *walDir) syncDir() {
	if f, err := os.Open(d.dir); err == nil {
		_ = f.Sync()
		f.Close()
	}
}

// create opens a fresh journal (segment 1) for a job. Truncating an
// existing file is deliberate: job IDs restart per-process only above
// the recovered high-water mark (see recover), so a name collision
// means a stale file from a deleted job.
func (d *walDir) create(jobID string) (*jobWAL, error) {
	f, err := os.OpenFile(d.segPath(jobID, 1), os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: journal: %w", err)
	}
	d.syncDir()
	return &jobWAL{f: f, seq: 1}, nil
}

// openAppend reopens a recovered job's highest segment for continued
// appends.
func (d *walDir) openAppend(jobID string) (*jobWAL, error) {
	segs, err := d.segments(jobID)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("server: journal: no segments for %s", jobID)
	}
	active := segs[len(segs)-1]
	f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: journal: %w", err)
	}
	size := int64(0)
	if st, err := f.Stat(); err == nil {
		size = st.Size()
	}
	return &jobWAL{f: f, seq: active.seq, size: size}, nil
}

// roll seals a job's active segment and opens a fresh one at newSeq.
// The sealed file needs no further writes and is closed; everything in
// it was already synced by the append-then-sync discipline.
func (d *walDir) roll(jobID string, w *jobWAL, newSeq int) error {
	f, err := os.OpenFile(d.segPath(jobID, newSeq), os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("server: journal: roll: %w", err)
	}
	d.syncDir()
	_ = w.f.Close()
	w.f = f
	w.seq = newSeq
	w.size = 0
	return nil
}

// writeCheckpointSegment durably materializes a checkpoint as segment
// seq: the record is written to a temp file, fsync'd, then atomically
// renamed into place. Until the rename the journal reads as the old
// chain; after it, as checkpoint+tail.
func (d *walDir) writeCheckpointSegment(jobID string, seq int, rec *walRecord) (int, error) {
	final := d.segPath(jobID, seq)
	tmp := final + walTempSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("server: journal: checkpoint: %w", err)
	}
	w := &jobWAL{f: f}
	n, err := w.append(rec)
	if err == nil {
		err = w.sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return 0, fmt.Errorf("server: journal: checkpoint: %w", err)
	}
	d.syncDir()
	return n, nil
}

// removeSegmentsBelow unlinks every segment of the job numbered below
// seq — the chain a freshly renamed checkpoint supersedes.
func (d *walDir) removeSegmentsBelow(jobID string, seq int) error {
	segs, err := d.segments(jobID)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s.seq >= seq {
			continue
		}
		if err := os.Remove(s.path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	d.syncDir()
	return nil
}

// remove deletes a job's entire journal chain (after its run landed in
// the store, or when a failed job is garbage-collected).
func (d *walDir) remove(jobID string) error {
	segs, err := d.segments(jobID)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if err := os.Remove(s.path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	d.syncDir()
	return nil
}

// jobIDs lists the job IDs with journals on disk, sorted.
func (d *walDir) jobIDs() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("server: journal: %w", err)
	}
	seen := make(map[string]bool)
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if id, _, ok := parseSegName(e.Name()); ok && !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// tidyTemp removes leftover checkpoint temp files — a crash before the
// rename abandoned them, and the journal reads correctly without them.
func (d *walDir) tidyTemp() {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), walTempSuffix) {
			_ = os.Remove(filepath.Join(d.dir, e.Name()))
		}
	}
}

// markCleanShutdown journals that this process exited deliberately:
// leases were drained, nothing was torn. The marker is informational —
// recovery replays the same way either way — but it lets the next
// startup log "clean restart" vs "recovering from crash" truthfully.
func (d *walDir) markCleanShutdown(at time.Time) error {
	p := filepath.Join(d.dir, cleanShutdownMarker)
	if err := os.WriteFile(p, []byte(at.UTC().Format(time.RFC3339Nano)+"\n"), 0o644); err != nil {
		return err
	}
	d.syncDir()
	return nil
}

// consumeCleanShutdown reports and removes the clean-shutdown marker.
func (d *walDir) consumeCleanShutdown() bool {
	p := filepath.Join(d.dir, cleanShutdownMarker)
	if _, err := os.Stat(p); err != nil {
		return false
	}
	_ = os.Remove(p)
	d.syncDir()
	return true
}

// jobWAL is one job's open active segment. Appends are serialized by
// mgr.mu, like the in-memory state they shadow.
type jobWAL struct {
	f *os.File
	// seq numbers the active segment; size tracks its bytes so the
	// manager knows when to seal it.
	seq  int
	size int64
}

// append frames, checksums and writes one record, returning the bytes
// written. It does NOT sync; callers batch appends and sync once
// before releasing the promise the records carry.
func (w *jobWAL) append(rec *walRecord) (int, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("server: journal: marshal %s record: %w", rec.Type, err)
	}
	var line bytes.Buffer
	line.Grow(len(body) + 16)
	fmt.Fprintf(&line, "%s %08x ", walFormatPrefix, crc32.ChecksumIEEE(body))
	line.Write(body)
	line.WriteByte('\n')
	n, err := w.f.Write(line.Bytes())
	if err != nil {
		return n, fmt.Errorf("server: journal: append: %w", err)
	}
	w.size += int64(n)
	return n, nil
}

// sync makes every append so far durable.
func (w *jobWAL) sync() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("server: journal: sync: %w", err)
	}
	return nil
}

func (w *jobWAL) close() {
	if w != nil && w.f != nil {
		_ = w.f.Close()
	}
}

// walReplay is one journal chain's parsed content.
type walReplay struct {
	records []walRecord
	// tornTail marks a damaged final line of the final segment: a crash
	// mid-append of a record nobody was ever promised. Dropped, not
	// fatal.
	tornTail bool
	// corrupt is non-nil when a damaged line has valid records after it
	// — disk corruption, not a torn append. The job must fail.
	corrupt error
	// stale lists segments below the replay base (a renamed checkpoint
	// made them redundant before the crash could unlink them); recovery
	// tidies them.
	stale []string
}

// readWAL parses one job's journal chain, classifying damage per the
// torn-tail vs mid-file-corruption rules above, and selects the replay
// base: the highest segment opening with a submit or checkpoint
// record. Segments below the base are superseded — listed for tidying,
// never replayed.
func (d *walDir) readWAL(jobID string) (walReplay, error) {
	segs, err := d.segments(jobID)
	if err != nil {
		return walReplay{}, err
	}
	if len(segs) == 0 {
		return walReplay{}, fmt.Errorf("server: journal: %s: %w", jobID, os.ErrNotExist)
	}
	var rep walReplay
	perSeg := make([][]walRecord, len(segs))
scan:
	for si, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return walReplay{}, fmt.Errorf("server: journal: %w", err)
		}
		lines := bytes.Split(data, []byte("\n"))
		for i, line := range lines {
			if len(line) == 0 {
				continue // the split artifact after the final newline (or empty file)
			}
			rec, perr := parseWALLine(line)
			if perr != nil {
				// Damage is a torn tail iff it is the last content of the
				// last segment; sealed segments were fully synced, so
				// damage anywhere else is the disk lying.
				torn := si == len(segs)-1
				if torn {
					for _, rest := range lines[i+1:] {
						if len(rest) > 0 {
							torn = false
							break
						}
					}
				}
				if !torn {
					rep.corrupt = fmt.Errorf("journal %s: line %d: %w (valid records follow — mid-file corruption)",
						filepath.Base(seg.path), i+1, perr)
					return rep, nil
				}
				rep.tornTail = true
				break scan
			}
			perSeg[si] = append(perSeg[si], rec)
		}
	}
	base := 0
	for i := len(segs) - 1; i >= 0; i-- {
		if len(perSeg[i]) > 0 {
			t := perSeg[i][0].Type
			if t == walSubmit || t == walCheckpoint {
				base = i
				break
			}
		}
	}
	for i := 0; i < base; i++ {
		rep.stale = append(rep.stale, segs[i].path)
	}
	for i := base; i < len(segs); i++ {
		rep.records = append(rep.records, perSeg[i]...)
	}
	return rep, nil
}

// parseWALLine validates one line's framing and checksum and returns
// its record.
func parseWALLine(line []byte) (walRecord, error) {
	var rec walRecord
	rest, ok := bytes.CutPrefix(line, []byte(walFormatPrefix+" "))
	if !ok {
		return rec, fmt.Errorf("bad frame prefix")
	}
	if len(rest) < 9 || rest[8] != ' ' {
		return rec, fmt.Errorf("bad checksum frame")
	}
	var want uint32
	if _, err := fmt.Sscanf(string(rest[:8]), "%08x", &want); err != nil {
		return rec, fmt.Errorf("bad checksum: %v", err)
	}
	body := rest[9:]
	if got := crc32.ChecksumIEEE(body); got != want {
		return rec, fmt.Errorf("checksum mismatch: line says %08x, content is %08x", want, got)
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		return rec, fmt.Errorf("checksum valid but record unparseable: %v", err)
	}
	if rec.Type == "" {
		return rec, fmt.Errorf("record has no type")
	}
	return rec, nil
}
