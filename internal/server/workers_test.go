package server_test

// Worker health scoreboard tests: strikes from lease expiries
// quarantine a worker (claims refused 429 + Retry-After), the window
// lapses into probation, and an accepted upload restores full health.
// Plus the submit-side admission watermark.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/apiclient"
	"repro/internal/server"
)

// newTunedServer is newLeaseServer with config overrides applied
// before New.
func newTunedServer(t *testing.T, mod func(*server.Config)) (*apiclient.Client, *fakeClock) {
	t.Helper()
	fc := newFakeClock()
	cfg := server.Config{
		DataDir:  t.TempDir(),
		Jobs:     1,
		LeaseTTL: 30 * time.Second,
		Clock:    fc.Now,
	}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return apiclient.New(ts.URL), fc
}

// findWorker pulls one scoreboard row by ID.
func findWorker(t *testing.T, client *apiclient.Client, id string) apiclient.Worker {
	t.Helper()
	workers, err := client.Workers(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workers {
		if w.ID == id {
			return w
		}
	}
	t.Fatalf("worker %s not on scoreboard (%d rows)", id, len(workers))
	return apiclient.Worker{}
}

// TestWorkerQuarantineLifecycle walks the full state machine: three
// lease expiries quarantine, the window lapses into probation, and an
// accepted upload readmits with strikes cleared.
func TestWorkerQuarantineLifecycle(t *testing.T) {
	_, client, fc := newLeaseServer(t)
	ctx := context.Background()

	job, _, err := client.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}

	// wBad abandons three leases; the sweep on wGood's next claim
	// charges all three strikes at once.
	claim, err := client.Claim(ctx, job.ID, "wBad", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(claim.Shards) != 3 {
		t.Fatalf("claim = %d shards, want 3", len(claim.Shards))
	}
	fc.Advance(31 * time.Second)
	if _, err := client.Claim(ctx, job.ID, "wGood", 1); err != nil {
		t.Fatal(err)
	}

	_, err = client.Claim(ctx, job.ID, "wBad", 1)
	wantCode(t, err, http.StatusTooManyRequests, "worker_quarantined")
	if ae := err.(*apiclient.APIError); ae.RetryAfter <= 0 {
		t.Fatalf("quarantine Retry-After = %d, want positive", ae.RetryAfter)
	}
	row := findWorker(t, client, "wBad")
	if row.State != "quarantined" || row.LeaseExpiries != 3 || row.QuarantinedUntil == nil {
		t.Fatalf("wBad = %+v, want quarantined with 3 lease expiries", row)
	}

	// Window lapses (4 lease TTLs): the next claim is admitted on
	// probation, and its accepted upload restores full health.
	fc.Advance(4*30*time.Second + time.Second)
	probe, err := client.Claim(ctx, job.ID, "wBad", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(probe.Shards) != 1 {
		t.Fatalf("probation claim = %d shards, want 1", len(probe.Shards))
	}
	if row := findWorker(t, client, "wBad"); row.State != "probation" {
		t.Fatalf("wBad state = %s, want probation", row.State)
	}
	wires := execWires(t, distSpec, probe.SpecHash)
	s := probe.Shards[0]
	if ack, err := client.PushShardResult(ctx, job.ID, s.Index, "wBad", s.Lease, wires[s.Index]); err != nil || ack.Status != "accepted" {
		t.Fatalf("probation upload = %v %v, want accepted", ack, err)
	}
	if row := findWorker(t, client, "wBad"); row.State != "healthy" || row.Strikes != 0 {
		t.Fatalf("wBad after probation upload = %+v, want healthy with 0 strikes", row)
	}
}

// TestProbationStrikeRequarantines: a strike earned while on probation
// sends the worker straight back to quarantine — probation is one
// chance, not a clean slate.
func TestProbationStrikeRequarantines(t *testing.T) {
	_, client, fc := newLeaseServer(t)
	ctx := context.Background()

	job, _, err := client.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Claim(ctx, job.ID, "wBad", 3); err != nil {
		t.Fatal(err)
	}
	fc.Advance(31 * time.Second)
	if _, err := client.Claim(ctx, job.ID, "wGood", 1); err != nil {
		t.Fatal(err)
	}
	_, err = client.Claim(ctx, job.ID, "wBad", 1)
	wantCode(t, err, http.StatusTooManyRequests, "worker_quarantined")

	// Probation claim... then wBad lets that lease lapse too.
	fc.Advance(4*30*time.Second + time.Second)
	if _, err := client.Claim(ctx, job.ID, "wBad", 1); err != nil {
		t.Fatal(err)
	}
	fc.Advance(31 * time.Second)
	if _, err := client.Claim(ctx, job.ID, "wGood", 1); err != nil {
		t.Fatal(err)
	}
	_, err = client.Claim(ctx, job.ID, "wBad", 1)
	wantCode(t, err, http.StatusTooManyRequests, "worker_quarantined")
}

// TestSubmitAdmissionControl: past the open-shard watermark, brand-new
// runs shed with 429 overloaded + Retry-After, while joins of an
// already-running spec are still served — dedup never sheds.
func TestSubmitAdmissionControl(t *testing.T) {
	client, _ := newTunedServer(t, func(cfg *server.Config) {
		cfg.MaxOpenShards = 5
	})
	ctx := context.Background()

	job, created, err := client.SubmitRaw(ctx, []byte(distSpec))
	if err != nil || !created {
		t.Fatalf("first submit = created %v err %v", created, err)
	}

	// Same spec: joined despite the load.
	if _, created, err := client.SubmitRaw(ctx, []byte(distSpec)); err != nil || created {
		t.Fatalf("resubmit = created %v err %v, want join", created, err)
	}

	// Different spec: shed.
	other := `{"spec": 1, "scale": "small", "traces": 1, "seed": 2016, "stride": 0,
	  "execution": "distributed"}`
	_, _, err = client.SubmitRaw(ctx, []byte(other))
	wantCode(t, err, http.StatusTooManyRequests, "overloaded")
	if ae := err.(*apiclient.APIError); ae.RetryAfter <= 0 {
		t.Fatalf("overloaded Retry-After = %d, want positive", ae.RetryAfter)
	}

	// Drain the job; completion releases the open shards and the next
	// submit is admitted.
	claim, err := client.Claim(ctx, job.ID, "w1", 50)
	if err != nil {
		t.Fatal(err)
	}
	wires := execWires(t, distSpec, claim.SpecHash)
	for _, s := range claim.Shards {
		if ack, err := client.PushShardResult(ctx, job.ID, s.Index, "w1", s.Lease, wires[s.Index]); err != nil || ack.Status != "accepted" {
			t.Fatalf("upload %d = %v %v, want accepted", s.Index, ack, err)
		}
	}
	if _, created, err := client.SubmitRaw(ctx, []byte(other)); err != nil || !created {
		t.Fatalf("post-drain submit = created %v err %v, want created", created, err)
	}
}
