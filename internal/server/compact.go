package server

import (
	"repro/internal/failpoint"
)

// Journal compaction: the seal-then-checkpoint protocol that keeps a
// long-lived coordinator's journal O(pending work) instead of
// O(history).
//
// The fast path (maybeSealLocked) runs under mgr.mu right after a
// synced append batch: when the active segment is past the byte cap it
// ROLLS from segment s to segment s+2, reserving s+1 for a checkpoint,
// and queues a request for the single compactor goroutine. The slow
// path (compactJob) snapshots the job's entire replayable state under
// the lock, then — off the lock — gzips it, writes it to a temp file,
// fsyncs, and atomically renames it into place as segment s+1. Only
// after the rename are the superseded segments (≤ s) unlinked.
//
// Crash windows, by construction:
//
//   - before the rename: the checkpoint exists only as a temp file;
//     the journal reads as the complete old chain. Recovery tidies the
//     temp file and replays as if compaction never started.
//   - after the rename, before the unlinks (the CompactMidSwap
//     failpoint): both the old chain and the checkpoint are on disk;
//     recovery picks the highest submit/checkpoint base — the
//     checkpoint — and tidies the stale chain below it.
//   - after the unlinks: the journal is checkpoint + tail, the steady
//     state.
//
// Never both replayed, never neither available.

// defaultMaxOpenShards is the admission watermark over queued jobs plus
// running distributed shards; Config.MaxOpenShards overrides.
const defaultMaxOpenShards = 4096

// maxCompactBacklog bounds the compactor queue; when it is full a seal
// simply skips queueing — the next seal retries, and an uncompacted
// journal is only larger, never wrong.
const maxCompactBacklog = 64

// compactReq asks the compactor to materialize the checkpoint segment
// a seal reserved.
type compactReq struct {
	jobID string
	cpSeq int
}

// maybeSealLocked rolls a job's active journal segment once it exceeds
// the byte cap and queues the reserved checkpoint for the compactor.
// Callers hold m.mu and have already synced their appends (a sealed
// segment must be fully durable).
func (m *jobMgr) maybeSealLocked(j *job) {
	if j.wal == nil || m.wal == nil || j.compacting {
		return
	}
	if j.wal.size < m.wal.capBytes() {
		return
	}
	sealed := j.wal.seq
	if err := m.wal.roll(j.id, j.wal, sealed+2); err != nil {
		m.logger.Error("journal seal", "job", j.id, "error", err)
		return
	}
	j.compacting = true
	select {
	case m.compactCh <- compactReq{jobID: j.id, cpSeq: sealed + 1}:
	default:
		// Backlogged compactor: leave the sealed chain in place. The next
		// seal reserves a higher checkpoint number that supersedes this
		// one too.
		j.compacting = false
		m.logger.Warn("journal compactor backlogged; seal left uncompacted", "job", j.id)
	}
}

// compactJob writes one reserved checkpoint segment and unlinks the
// chain it supersedes. Runs on the compactor goroutine.
func (m *jobMgr) compactJob(req compactReq) {
	m.mu.Lock()
	j := m.jobs[req.jobID]
	if j == nil || j.wal == nil {
		// The job finished or failed between seal and compaction; its
		// journal was already removed or terminally closed.
		if j != nil {
			j.compacting = false
		}
		m.mu.Unlock()
		return
	}
	snap, err := m.snapshotLocked(j)
	now := m.now()
	m.mu.Unlock()
	if err != nil {
		m.clearCompacting(req.jobID)
		m.logger.Error("journal checkpoint snapshot", "job", req.jobID, "error", err)
		return
	}
	enc, err := encodeCheckpoint(snap)
	if err != nil {
		m.clearCompacting(req.jobID)
		m.logger.Error("journal checkpoint encode", "job", req.jobID, "error", err)
		return
	}
	n, err := m.wal.writeCheckpointSegment(req.jobID, req.cpSeq, &walRecord{
		Type: walCheckpoint, Job: req.jobID, Key: snap.Key, Snap: enc, Time: now,
	})
	if err != nil {
		m.clearCompacting(req.jobID)
		m.logger.Error("journal checkpoint write", "job", req.jobID, "error", err)
		return
	}
	// The crash-mid-swap window: checkpoint renamed into place, old
	// chain not yet unlinked. Env-armed, the process dies here; a test
	// hook error skips the unlinks, leaving exactly the both-on-disk
	// state recovery must resolve.
	if err := failpoint.Check(failpoint.CompactMidSwap); err != nil {
		m.clearCompacting(req.jobID)
		m.logger.Error("failpoint abort mid-compaction", "job", req.jobID, "error", err)
		return
	}
	if err := m.wal.removeSegmentsBelow(req.jobID, req.cpSeq); err != nil {
		m.logger.Error("journal compaction unlink", "job", req.jobID, "error", err)
	}
	m.met.journalCompactions.Inc()
	m.met.journalCheckpointBytes.Add(uint64(n))
	m.mu.Lock()
	if j := m.jobs[req.jobID]; j != nil {
		j.compacting = false
		if j.wal == nil {
			// The job completed while the checkpoint was being written: its
			// journal chain was removed, and the fresh checkpoint segment
			// must not survive as an orphan that recovery would resurrect.
			if err := m.wal.remove(req.jobID); err != nil {
				m.logger.Error("journal remove after late checkpoint", "job", req.jobID, "error", err)
			}
		}
	}
	m.mu.Unlock()
	m.logger.Info("journal compacted", "job", req.jobID,
		"checkpoint_seq", req.cpSeq, "checkpoint_bytes", n)
}

func (m *jobMgr) clearCompacting(jobID string) {
	m.mu.Lock()
	if j := m.jobs[jobID]; j != nil {
		j.compacting = false
	}
	m.mu.Unlock()
}

// snapshotLocked captures a job's full replayable state as a
// checkpoint payload. Callers hold m.mu. The snapshot may include
// records already appended to the post-seal active segment; replaying
// that tail on top is idempotent (results dedup first-wins, grants
// overwrite).
func (m *jobMgr) snapshotLocked(j *job) (*cpState, error) {
	specBytes, err := j.spec.Canonical()
	if err != nil {
		return nil, err
	}
	st := &cpState{
		Key:      j.key,
		Spec:     specBytes,
		Shards:   make([]cpShard, len(j.shards)),
		DurEWMA:  j.durEWMA,
		DurMax:   j.durMax,
		DurCount: j.durCount,
	}
	for i := range j.shards {
		sh := &j.shards[i]
		l := &j.leases[i]
		st.Shards[i] = cpShard{
			State:       sh.State,
			Worker:      sh.Worker,
			Seq:         l.seq,
			Token:       l.token,
			Expires:     l.expires,
			Granted:     l.granted,
			BatchN:      l.batchN,
			DoneToken:   l.doneToken,
			SpecToken:   l.specToken,
			SpecWorker:  l.specWorker,
			SpecExpires: l.specExpires,
			Wire:        j.wires[i],
		}
	}
	return st, nil
}
