package server

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/campaign"
	"repro/internal/failpoint"
	"repro/internal/telemetry"
)

// The shard lease table: how a distributed job hands its (vantage,
// slice) shards to remote workers. The state machine per shard is
//
//	pending ──claim──▶ leased ──result──▶ done
//	   ▲                  │
//	   └────eviction──────┘
//
// A lease is valid until evicted. Eviction happens when the TTL has
// passed AND the control plane notices — at a claim sweep, or on a
// heartbeat/upload arriving for a lapsed lease. Uploads are accepted
// iff the presented token is the shard's current (un-evicted) lease;
// because shard execution is deterministic, a slow worker whose lease
// lapsed but was never re-issued still uploads the correct bytes, so
// such uploads are accepted rather than wasted. Once a shard is done,
// re-uploads under the winning token are idempotent successes and
// anything else is stale_result — first writer wins. The spec-hash
// guard rejects uploads computed for a different spec before any of
// this, so a confused worker can never poison a job's merge.
//
// All lease state lives inside the job and is guarded by mgr.mu; time
// comes from mgr.now, an injected monotonic clock, so expiry tests
// never sleep.

// defaultLeaseTTL is the lease lifetime granted to workers when the
// server config does not override it.
const defaultLeaseTTL = 30 * time.Second

// shardLease is one shard's lease slot (meaningful while the shard is
// "leased", plus the doneToken once it is "done").
type shardLease struct {
	token   string
	worker  string
	expires time.Time
	// seq counts issuances for this shard; a grant with seq > 1 is a
	// re-issue after an eviction.
	seq int
	// doneToken is the token whose upload won the shard; duplicate
	// uploads presenting it are idempotent successes.
	doneToken string
}

// ShardClaim is one leased shard in a claim response.
type ShardClaim struct {
	// Index is the shard's position in the job's canonical plan — the
	// {shard} the heartbeat and result routes address.
	Index int `json:"index"`
	campaign.ShardInfo
	// Lease is the opaque token the worker must present on heartbeat
	// and upload; ExpiresAt is its deadline on the coordinator's clock.
	Lease     string    `json:"lease"`
	ExpiresAt time.Time `json:"expires_at"`
}

// ClaimResponse is POST /v1/jobs/{id}/shards/claim's body. It carries
// everything a worker needs to execute without further reads: the
// job's canonical spec (compile the blueprint locally), its cache key
// (stamp uploads for the spec-hash guard), and the leased batch. An
// empty batch with state "running" means every remaining shard is
// leased elsewhere — back off and re-claim; state "done"/"failed"
// means drain.
type ClaimResponse struct {
	Job             string        `json:"job"`
	State           JobState      `json:"state"`
	SpecHash        string        `json:"spec_hash"`
	Spec            campaign.Spec `json:"spec"`
	LeaseTTLSeconds float64       `json:"lease_ttl_seconds"`
	ShardsTotal     int           `json:"shards_total"`
	ShardsDone      int           `json:"shards_done"`
	Shards          []ShardClaim  `json:"shards"`
}

// HeartbeatResponse acknowledges a lease extension.
type HeartbeatResponse struct {
	Job       string    `json:"job"`
	Index     int       `json:"index"`
	ExpiresAt time.Time `json:"expires_at"`
}

// ResultResponse acknowledges a shard upload. Status is "accepted" for
// the winning upload and "duplicate" for an idempotent re-send.
type ResultResponse struct {
	Job         string   `json:"job"`
	Index       int      `json:"index"`
	Status      string   `json:"status"`
	ShardsDone  int      `json:"shards_done"`
	ShardsTotal int      `json:"shards_total"`
	State       JobState `json:"state"`
}

// distributedJobLocked resolves a worker-protocol job reference;
// callers hold m.mu.
func (m *jobMgr) distributedJobLocked(jobID string) (*job, error) {
	j, ok := m.jobs[jobID]
	if !ok {
		return nil, faultf(http.StatusNotFound, codeJobNotFound, "no such job %q", jobID)
	}
	if j.execution != campaign.ExecutionDistributed {
		return nil, faultf(http.StatusConflict, codeJobNotDistributed,
			"job %s executes in-process; its shards cannot be claimed", jobID)
	}
	return j, nil
}

// internWorkerLocked returns a heap-stable pointer to the worker's
// name for allocation-free journal appends; callers hold m.mu.
func (m *jobMgr) internWorkerLocked(worker string) *string {
	if p, ok := m.workerNames[worker]; ok {
		return p
	}
	p := &worker
	m.workerNames[worker] = p
	return p
}

// sweepExpiredLocked evicts every lapsed lease in the job — shards
// return to "pending" and the eviction is counted and journaled.
// Callers hold m.mu.
func (m *jobMgr) sweepExpiredLocked(j *job, now time.Time) {
	for i := range j.shards {
		sh := &j.shards[i]
		if sh.State != "leased" || j.leases[i].expires.After(now) {
			continue
		}
		m.evictLeaseLocked(j, i)
	}
}

// evictLeaseLocked returns one leased shard to the pending pool.
func (m *jobMgr) evictLeaseLocked(j *job, i int) {
	sh := &j.shards[i]
	l := &j.leases[i]
	sh.State = "pending"
	sh.Worker = ""
	// Expiry records are appended without an fsync: nothing is promised
	// to anyone by an eviction, and a lost record merely means recovery
	// sees the shard as leased with a lapsed deadline — which the first
	// post-restart claim sweep evicts again.
	_ = m.walAppend(j, &walRecord{Type: walLease, Idx: i, Event: walExpire, Time: m.now()})
	m.met.leaseExpiries.Inc()
	m.met.journal.Append(telemetry.EventLeaseExpired, &j.id,
		m.internWorkerLocked(l.worker), int32(sh.Shard), int32(sh.Slice))
	m.logger.Info("lease expired", "job", j.id, "shard", i, "worker", l.worker)
}

// Claim leases up to max pending shards of a distributed job to one
// worker. Every claim first sweeps lapsed leases back to the pool, so
// a crashed worker's shards are re-issued as soon as any live worker
// asks for work.
func (m *jobMgr) Claim(jobID, worker string, max int) (ClaimResponse, error) {
	if max < 1 {
		max = 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	j, err := m.distributedJobLocked(jobID)
	if err != nil {
		return ClaimResponse{}, err
	}
	if m.draining {
		// The drain window refuses new leases (workers back off per
		// Retry-After) but keeps accepting heartbeats and uploads for
		// leases already out — in-flight work lands, nothing new starts.
		return ClaimResponse{}, faultRetryf(http.StatusServiceUnavailable, codeUnavailable,
			drainRetryAfterSeconds, "server: draining for shutdown; no new leases")
	}
	resp := ClaimResponse{
		Job:             j.id,
		SpecHash:        j.key,
		Spec:            j.spec,
		LeaseTTLSeconds: m.leaseTTL.Seconds(),
	}
	now := m.now()
	m.sweepExpiredLocked(j, now)
	if j.state == JobRunning {
		wp := m.internWorkerLocked(worker)
		for i := range j.shards {
			if len(resp.Shards) == max {
				break
			}
			sh := &j.shards[i]
			if sh.State != "pending" {
				continue
			}
			l := &j.leases[i]
			l.seq++
			l.token = fmt.Sprintf("%s.%d.%d", j.id, i, l.seq)
			l.worker = worker
			l.expires = now.Add(m.leaseTTL)
			sh.State = "leased"
			sh.Worker = worker
			m.met.leaseGrants.Inc()
			if l.seq > 1 {
				m.met.leaseReissues.Inc()
			}
			m.met.journal.Append(telemetry.EventShardLeased, &j.id, wp,
				int32(sh.Shard), int32(sh.Slice))
			resp.Shards = append(resp.Shards, ShardClaim{
				Index:     i,
				ShardInfo: sh.ShardInfo,
				Lease:     l.token,
				ExpiresAt: l.expires,
			})
		}
		// Journal the batch's grants — token, seq, holder, deadline —
		// and sync once before the tokens leave the building. Restoring
		// grants at recovery keeps the per-shard seq monotonic across
		// restarts (a re-grant can never mint a token string an earlier
		// process already handed out) and lets a pre-crash worker's
		// upload land under its old token instead of re-executing.
		// Failure here is logged, not fatal: a lost grant record only
		// costs a post-restart re-execution, never correctness.
		if len(resp.Shards) > 0 && j.wal != nil {
			for _, sc := range resp.Shards {
				if err := m.walAppend(j, &walRecord{
					Type: walLease, Idx: sc.Index, Event: walGrant, Worker: worker,
					Seq: j.leases[sc.Index].seq, Token: sc.Lease, Expires: sc.ExpiresAt,
					Time: now,
				}); err != nil {
					m.logger.Error("journal lease grant", "job", j.id, "shard", sc.Index, "error", err)
					break
				}
			}
			if err := m.walSync(j); err != nil {
				m.logger.Error("journal lease grants", "job", j.id, "error", err)
			}
		}
	}
	resp.State = j.state
	resp.ShardsTotal = len(j.shards)
	resp.ShardsDone = j.shardsDone
	return resp, nil
}

// Heartbeat extends exactly one unexpired lease by a full TTL. A
// heartbeat for a lapsed lease evicts it on the spot and reports
// lease_expired — the worker must re-claim, it cannot resurrect the
// old token.
func (m *jobMgr) Heartbeat(jobID string, idx int, token string) (HeartbeatResponse, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, err := m.distributedJobLocked(jobID)
	if err != nil {
		return HeartbeatResponse{}, err
	}
	if idx < 0 || idx >= len(j.shards) {
		return HeartbeatResponse{}, faultf(http.StatusNotFound, codeShardNotFound,
			"job %s has no shard %d (plan has %d)", jobID, idx, len(j.shards))
	}
	sh := &j.shards[idx]
	l := &j.leases[idx]
	if sh.State != "leased" || l.token != token {
		return HeartbeatResponse{}, faultf(http.StatusConflict, codeLeaseExpired,
			"lease is not current for shard %d of job %s", idx, jobID)
	}
	now := m.now()
	if !l.expires.After(now) {
		m.evictLeaseLocked(j, idx)
		return HeartbeatResponse{}, faultf(http.StatusConflict, codeLeaseExpired,
			"lease for shard %d of job %s expired %s ago", idx, jobID, now.Sub(l.expires))
	}
	l.expires = now.Add(m.leaseTTL)
	return HeartbeatResponse{Job: j.id, Index: idx, ExpiresAt: l.expires}, nil
}

// ShardResult accepts one shard's uploaded result. First writer wins;
// a duplicate of the winning upload is an idempotent success; a result
// computed for a different spec, a mismatched shard, or an evicted
// lease never reaches the merge. The accepted upload that completes
// the plan triggers the canonical merge and files the run.
func (m *jobMgr) ShardResult(jobID string, idx int, worker, token string, wire *campaign.ShardResultWire) (ResultResponse, error) {
	m.mu.Lock()
	j, err := m.distributedJobLocked(jobID)
	if err != nil {
		m.mu.Unlock()
		return ResultResponse{}, err
	}
	resp, finalize, err := m.shardResultLocked(j, idx, worker, token, wire)
	m.mu.Unlock()
	if err != nil {
		return ResultResponse{}, err
	}
	if finalize {
		// Synchronous: the upload that completes the plan pays for the
		// merge, so when its 200 arrives the artifacts are served.
		m.finalizeDistributed(j)
		resp.State = JobDone
		if v, ok := m.Get(jobID); ok {
			resp.State = v.State // failed merges surface too
		}
	}
	return resp, nil
}

func (m *jobMgr) shardResultLocked(j *job, idx int, worker, token string, wire *campaign.ShardResultWire) (ResultResponse, bool, error) {
	if idx < 0 || idx >= len(j.shards) {
		return ResultResponse{}, false, faultf(http.StatusNotFound, codeShardNotFound,
			"job %s has no shard %d (plan has %d)", j.id, idx, len(j.shards))
	}
	sh := &j.shards[idx]
	l := &j.leases[idx]
	if wire.Version != campaign.ShardWireVersion {
		return ResultResponse{}, false, faultf(http.StatusBadRequest, codeResultInvalid,
			"shard result has wire version %d (this server speaks %d)",
			wire.Version, campaign.ShardWireVersion)
	}
	if wire.SpecHash != j.key {
		m.met.resultsStale.Inc()
		return ResultResponse{}, false, faultf(http.StatusConflict, codeStaleResult,
			"result computed for spec %.12s, job %s wants %.12s", wire.SpecHash, j.id, j.key)
	}
	if wire.Shard != sh.Shard || wire.Slice != sh.Slice {
		return ResultResponse{}, false, faultf(http.StatusBadRequest, codeResultInvalid,
			"payload is for shard (%d,%d) but was posted to (%d,%d)",
			wire.Shard, wire.Slice, sh.Shard, sh.Slice)
	}
	resp := ResultResponse{Job: j.id, Index: idx, ShardsTotal: len(j.shards)}
	if sh.State == "done" {
		if token != "" && token == l.doneToken {
			m.met.resultsDuplicate.Inc()
			resp.Status = "duplicate"
			resp.ShardsDone = j.shardsDone
			resp.State = j.state
			return resp, false, nil
		}
		m.met.resultsStale.Inc()
		return ResultResponse{}, false, faultf(http.StatusConflict, codeStaleResult,
			"shard %d of job %s already has a result from %s", idx, j.id, sh.Worker)
	}
	if sh.State != "leased" || l.token != token {
		// Pending (evicted) or leased to a successor: the uploader lost
		// its lease and someone else owns — or will own — the shard.
		m.met.resultsStale.Inc()
		return ResultResponse{}, false, faultf(http.StatusConflict, codeStaleResult,
			"lease is not current for shard %d of job %s", idx, j.id)
	}
	// Accept. Note no expiry check: a lapsed lease that was never
	// evicted is still the shard's current lease, and determinism
	// makes the slow worker's bytes as good as anyone's.
	//
	// WAL discipline: the accept is durable before it is visible. The
	// full wire payload is journaled and fsync'd here, before any
	// in-memory state changes and before the 200 — so a crash at any
	// later instant leaves a coordinator that still owns this result.
	// A journal failure refuses the upload (500, internal); the worker
	// retries and the re-journaled duplicate replays first-wins.
	if j.wal != nil {
		if err := m.walAppend(j, &walRecord{
			Type: walResult, Idx: idx, Worker: worker, Token: token, Wire: wire, Time: m.now(),
		}); err != nil {
			return ResultResponse{}, false, faultf(http.StatusInternalServerError, codeInternal,
				"server: journal shard result: %v", err)
		}
		if err := m.walSync(j); err != nil {
			return ResultResponse{}, false, faultf(http.StatusInternalServerError, codeInternal,
				"server: journal shard result: %v", err)
		}
	}
	if err := failpoint.Check(failpoint.AcceptResultAfterJournal); err != nil {
		// Hook-simulated crash: the result is journaled but the worker
		// gets an error instead of its ack — the crash-between-journal-
		// and-ack window. Its retry appends a duplicate journal record,
		// which replay deduplicates.
		return ResultResponse{}, false, faultf(http.StatusInternalServerError, codeInternal,
			"failpoint %s: %v", failpoint.AcceptResultAfterJournal, err)
	}
	j.wires[idx] = wire
	l.doneToken = token
	sh.State = "done"
	sh.Worker = worker
	sh.Events = wire.Stats.Events
	sh.ElapsedSeconds = wire.Stats.Elapsed.Seconds()
	j.shardsDone++
	j.tracesDone += sh.Traces
	m.met.resultsAccepted.Inc()
	m.met.workerShardSeconds(worker).Observe(wire.Stats.Elapsed.Seconds())
	m.met.journal.Append(telemetry.EventShardDone, &j.id,
		m.internWorkerLocked(worker), int32(sh.Shard), int32(sh.Slice))
	resp.Status = "accepted"
	resp.ShardsDone = j.shardsDone
	resp.State = j.state
	finalize := j.shardsDone == len(j.shards) && !j.finalizing
	if finalize {
		j.finalizing = true
	}
	return resp, finalize, nil
}

// finalizeDistributed merges a completed distributed job's uploaded
// shard results in canonical order and files the run — the same
// filing path the in-process runner uses, so the stored artifacts are
// indistinguishable.
func (m *jobMgr) finalizeDistributed(j *job) {
	if err := failpoint.Check(failpoint.FinalizeBeforeStore); err != nil {
		// Hook-simulated crash between the last accepted shard and the
		// store write: leave the job exactly as a dead process would —
		// finalizing latched, journal complete on disk, store entry
		// absent. Only restart recovery on this data dir finishes it.
		m.logger.Error("failpoint abort before finalize", "job", j.id, "error", err)
		return
	}
	res, err := campaign.MergeWire(j.wires)
	if err != nil {
		m.failJob(j, err, false)
		return
	}
	wall := m.now().Sub(j.started)
	n, err := m.fileRun(j, res, wall)
	if err != nil {
		m.failJob(j, err, false)
		return
	}
	m.mu.Lock()
	j.state = JobDone
	j.finished = m.now()
	j.wires = nil // uploaded shard data is merged and filed; release it
	delete(m.active, j.key)
	if j.wal != nil {
		// The crash-atomic store entry is now the durable record; the
		// journal has nothing left to protect.
		j.wal.close()
		j.wal = nil
		if err := m.wal.remove(j.id); err != nil {
			m.logger.Error("journal remove", "job", j.id, "error", err)
		}
	}
	m.mu.Unlock()
	m.met.jobsDone.Inc()
	m.met.jobsRunning.Add(-1)
	m.met.journal.Append(telemetry.EventJobDone, &j.id, nil, -1, -1)
	m.logger.Info("job done", "job", j.id, "key", j.key[:12],
		"execution", "distributed", "dataset_bytes", n, "wall_seconds", wall.Seconds())
}
