package server

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/campaign"
	"repro/internal/failpoint"
	"repro/internal/telemetry"
)

// The shard lease table: how a distributed job hands its (vantage,
// slice) shards to remote workers. The state machine per shard is
//
//	pending ──claim──▶ leased ──result──▶ done
//	   ▲                  │
//	   └────eviction──────┘
//
// A lease is valid until evicted. Eviction happens when the TTL has
// passed AND the control plane notices — at a claim sweep, or on a
// heartbeat/upload arriving for a lapsed lease. Uploads are accepted
// iff the presented token is the shard's current (un-evicted) lease;
// because shard execution is deterministic, a slow worker whose lease
// lapsed but was never re-issued still uploads the correct bytes, so
// such uploads are accepted rather than wasted. Once a shard is done,
// re-uploads under the winning token are idempotent successes and
// anything else is stale_result — first writer wins. The spec-hash
// guard rejects uploads computed for a different spec before any of
// this, so a confused worker can never poison a job's merge.
//
// All lease state lives inside the job and is guarded by mgr.mu; time
// comes from mgr.now, an injected monotonic clock, so expiry tests
// never sleep.

// defaultLeaseTTL is the lease lifetime granted to workers when the
// server config does not override it.
const defaultLeaseTTL = 30 * time.Second

// defaultSpeculateAfter is the straggler threshold as a multiple of
// the job's observed typical (EWMA) shard duration, scaled by the
// straggler's claim batch size (a worker executes its batch serially,
// so a batch of k legitimately needs ~k typical durations before its
// last shard even starts). A leased shard is never speculated before
// the slowest successful shard's duration has passed.
const defaultSpeculateAfter = 3.0

// durEWMAAlpha weights the newest shard duration into the job's
// running estimate.
const durEWMAAlpha = 0.3

// shardLease is one shard's lease slot (meaningful while the shard is
// "leased", plus the doneToken once it is "done").
type shardLease struct {
	token   string
	worker  string
	expires time.Time
	// granted is when the current primary lease was issued and batchN
	// how many shards were granted alongside it — together the
	// straggler detector's inputs.
	granted time.Time
	batchN  int
	// seq counts token issuances for this shard (primary and
	// speculative); a grant with seq > 1 is a re-issue or twin.
	seq int
	// doneToken is the token whose upload won the shard; duplicate
	// uploads presenting it are idempotent successes.
	doneToken string
	// Speculative twin lease (straggler re-issue): a second live token
	// for the same shard, held by a different worker, racing the
	// primary. Whichever upload lands first wins; determinism makes the
	// bytes identical either way. Empty specToken means no twin.
	specToken   string
	specWorker  string
	specExpires time.Time
}

// ShardClaim is one leased shard in a claim response.
type ShardClaim struct {
	// Index is the shard's position in the job's canonical plan — the
	// {shard} the heartbeat and result routes address.
	Index int `json:"index"`
	campaign.ShardInfo
	// Lease is the opaque token the worker must present on heartbeat
	// and upload; ExpiresAt is its deadline on the coordinator's clock.
	Lease     string    `json:"lease"`
	ExpiresAt time.Time `json:"expires_at"`
	// Speculative marks a straggler re-issue: another worker still
	// holds a live lease on this shard, and the first upload wins.
	Speculative bool `json:"speculative,omitempty"`
}

// ClaimResponse is POST /v1/jobs/{id}/shards/claim's body. It carries
// everything a worker needs to execute without further reads: the
// job's canonical spec (compile the blueprint locally), its cache key
// (stamp uploads for the spec-hash guard), and the leased batch. An
// empty batch with state "running" means every remaining shard is
// leased elsewhere — back off and re-claim; state "done"/"failed"
// means drain.
type ClaimResponse struct {
	Job             string        `json:"job"`
	State           JobState      `json:"state"`
	SpecHash        string        `json:"spec_hash"`
	Spec            campaign.Spec `json:"spec"`
	LeaseTTLSeconds float64       `json:"lease_ttl_seconds"`
	ShardsTotal     int           `json:"shards_total"`
	ShardsDone      int           `json:"shards_done"`
	Shards          []ShardClaim  `json:"shards"`
}

// HeartbeatResponse acknowledges a lease extension.
type HeartbeatResponse struct {
	Job       string    `json:"job"`
	Index     int       `json:"index"`
	ExpiresAt time.Time `json:"expires_at"`
}

// ResultResponse acknowledges a shard upload. Status is "accepted" for
// the winning upload and "duplicate" for an idempotent re-send.
type ResultResponse struct {
	Job         string   `json:"job"`
	Index       int      `json:"index"`
	Status      string   `json:"status"`
	ShardsDone  int      `json:"shards_done"`
	ShardsTotal int      `json:"shards_total"`
	State       JobState `json:"state"`
}

// distributedJobLocked resolves a worker-protocol job reference;
// callers hold m.mu.
func (m *jobMgr) distributedJobLocked(jobID string) (*job, error) {
	j, ok := m.jobs[jobID]
	if !ok {
		return nil, faultf(http.StatusNotFound, codeJobNotFound, "no such job %q", jobID)
	}
	if j.execution != campaign.ExecutionDistributed {
		return nil, faultf(http.StatusConflict, codeJobNotDistributed,
			"job %s executes in-process; its shards cannot be claimed", jobID)
	}
	return j, nil
}

// internWorkerLocked returns a heap-stable pointer to the worker's
// name for allocation-free journal appends; callers hold m.mu.
func (m *jobMgr) internWorkerLocked(worker string) *string {
	if p, ok := m.workerNames[worker]; ok {
		return p
	}
	p := &worker
	m.workerNames[worker] = p
	return p
}

// sweepExpiredLocked evicts every lapsed lease in the job — shards
// return to "pending" (or their speculative twin is promoted) and the
// eviction is counted, journaled, and held against the lapsed worker.
// Callers hold m.mu.
func (m *jobMgr) sweepExpiredLocked(j *job, now time.Time) {
	for i := range j.shards {
		sh := &j.shards[i]
		if sh.State != "leased" {
			continue
		}
		l := &j.leases[i]
		// A lapsed speculative twin expires first, so a dead twin is
		// never promoted by the primary eviction below.
		if l.specToken != "" && !l.specExpires.After(now) {
			m.expireSpecLocked(j, i)
		}
		if !l.expires.After(now) {
			m.evictLeaseLocked(j, i)
		}
	}
}

// expireSpecLocked drops one lapsed speculative twin; the primary
// lease is untouched.
func (m *jobMgr) expireSpecLocked(j *job, i int) {
	l := &j.leases[i]
	_ = m.walAppend(j, &walRecord{Type: walLease, Idx: i, Event: walSpecExpire, Time: m.now()})
	m.met.leaseExpiries.Inc()
	m.strikeLocked(l.specWorker, "lease-expiry")
	m.logger.Info("speculative lease expired", "job", j.id, "shard", i, "worker", l.specWorker)
	l.specToken, l.specWorker, l.specExpires = "", "", time.Time{}
}

// evictLeaseLocked removes one shard's lapsed primary lease. With a
// live speculative twin the twin is promoted to primary — the shard
// stays leased to the speculating worker; otherwise the shard returns
// to the pending pool. Either way the lapsed holder takes a strike.
func (m *jobMgr) evictLeaseLocked(j *job, i int) {
	sh := &j.shards[i]
	l := &j.leases[i]
	expired := l.worker
	// Expiry records are appended without an fsync: nothing is promised
	// to anyone by an eviction, and a lost record merely means recovery
	// sees the shard as leased with a lapsed deadline — which the first
	// post-restart claim sweep evicts again. Replay mirrors the
	// promotion below (see replayLocked), so the journal needs no
	// separate promote record.
	_ = m.walAppend(j, &walRecord{Type: walLease, Idx: i, Event: walExpire, Time: m.now()})
	m.met.leaseExpiries.Inc()
	m.met.journal.Append(telemetry.EventLeaseExpired, &j.id,
		m.internWorkerLocked(expired), int32(sh.Shard), int32(sh.Slice))
	if l.specToken != "" {
		l.token, l.worker, l.expires = l.specToken, l.specWorker, l.specExpires
		l.granted, l.batchN = m.now(), 1
		l.specToken, l.specWorker, l.specExpires = "", "", time.Time{}
		sh.Worker = l.worker
		m.logger.Info("lease expired; speculative twin promoted",
			"job", j.id, "shard", i, "worker", expired, "promoted", l.worker)
	} else {
		sh.State = "pending"
		sh.Worker = ""
		m.logger.Info("lease expired", "job", j.id, "shard", i, "worker", expired)
	}
	m.strikeLocked(expired, "lease-expiry")
}

// speculationDueLocked reports whether a leased shard has straggled
// past the point where re-exposing it is cheaper than waiting: elapsed
// time since its grant exceeds speculate-after × EWMA × batch size,
// and also the slowest successful shard so far. Requires at least one
// completed shard — there is no "typical duration" before that.
func (m *jobMgr) speculationDueLocked(j *job, i int, now time.Time) bool {
	if m.speculateAfter <= 0 || j.durCount == 0 || j.durEWMA <= 0 {
		return false
	}
	l := &j.leases[i]
	if l.granted.IsZero() {
		return false
	}
	batch := l.batchN
	if batch < 1 {
		batch = 1
	}
	threshold := m.speculateAfter * j.durEWMA * float64(batch)
	if threshold < j.durMax {
		threshold = j.durMax
	}
	return now.Sub(l.granted).Seconds() > threshold
}

// Claim leases up to max pending shards of a distributed job to one
// worker. Every claim first sweeps lapsed leases back to the pool, so
// a crashed worker's shards are re-issued as soon as any live worker
// asks for work.
func (m *jobMgr) Claim(jobID, worker string, max int) (ClaimResponse, error) {
	if max < 1 {
		max = 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	j, err := m.distributedJobLocked(jobID)
	if err != nil {
		return ClaimResponse{}, err
	}
	if m.draining {
		// The drain window refuses new leases (workers back off per
		// Retry-After) but keeps accepting heartbeats and uploads for
		// leases already out — in-flight work lands, nothing new starts.
		return ClaimResponse{}, faultRetryf(http.StatusServiceUnavailable, codeUnavailable,
			drainRetryAfterSeconds, "server: draining for shutdown; no new leases")
	}
	resp := ClaimResponse{
		Job:             j.id,
		SpecHash:        j.key,
		Spec:            j.spec,
		LeaseTTLSeconds: m.leaseTTL.Seconds(),
	}
	now := m.now()
	m.sweepExpiredLocked(j, now)
	// Health gate AFTER the sweep: strikes the sweep just charged this
	// worker count against this very claim.
	if err := m.admitClaimLocked(worker); err != nil {
		return ClaimResponse{}, err
	}
	if j.state == JobRunning {
		// Adaptive batch sizing: a worker executes its batch serially
		// while only the executing shard's lease is heartbeat-extended,
		// so the batch must fit comfortably inside one TTL — slow shards
		// mean smaller batches, not mid-work expiries.
		if j.durCount > 0 && j.durEWMA > 0 {
			limit := int(m.leaseTTL.Seconds() / (2 * j.durEWMA))
			if limit < 1 {
				limit = 1
			}
			if limit < max {
				max = limit
				m.met.claimsCapped.Inc()
			}
		}
		wp := m.internWorkerLocked(worker)
		var granted []int
		for i := range j.shards {
			if len(resp.Shards) == max {
				break
			}
			sh := &j.shards[i]
			if sh.State != "pending" {
				continue
			}
			l := &j.leases[i]
			l.seq++
			l.token = fmt.Sprintf("%s.%d.%d", j.id, i, l.seq)
			l.worker = worker
			l.expires = now.Add(m.leaseTTL)
			l.granted = now
			sh.State = "leased"
			sh.Worker = worker
			m.met.leaseGrants.Inc()
			if l.seq > 1 {
				m.met.leaseReissues.Inc()
			}
			m.met.journal.Append(telemetry.EventShardLeased, &j.id, wp,
				int32(sh.Shard), int32(sh.Slice))
			resp.Shards = append(resp.Shards, ShardClaim{
				Index:     i,
				ShardInfo: sh.ShardInfo,
				Lease:     l.token,
				ExpiresAt: l.expires,
			})
			granted = append(granted, i)
		}
		for _, i := range granted {
			j.leases[i].batchN = len(granted)
		}
		// Straggler speculation: with the pending pool drained, re-expose
		// leased shards whose holders have straggled past the threshold.
		// The primary lease is NOT revoked — this worker races it with a
		// twin token, first upload wins, and determinism makes either
		// winner's bytes correct.
		for i := range j.shards {
			if len(resp.Shards) == max {
				break
			}
			sh := &j.shards[i]
			if sh.State != "leased" {
				continue
			}
			l := &j.leases[i]
			if l.worker == worker || l.specToken != "" || !m.speculationDueLocked(j, i, now) {
				continue
			}
			l.seq++
			l.specToken = fmt.Sprintf("%s.%d.%d", j.id, i, l.seq)
			l.specWorker = worker
			l.specExpires = now.Add(m.leaseTTL)
			m.met.leaseGrants.Inc()
			m.met.specIssued.Inc()
			m.met.journal.Append(telemetry.EventShardLeased, &j.id, wp,
				int32(sh.Shard), int32(sh.Slice))
			m.logger.Info("speculative lease issued", "job", j.id, "shard", i,
				"straggler", l.worker, "speculator", worker)
			resp.Shards = append(resp.Shards, ShardClaim{
				Index:       i,
				ShardInfo:   sh.ShardInfo,
				Lease:       l.specToken,
				ExpiresAt:   l.specExpires,
				Speculative: true,
			})
		}
		// Journal the batch's grants — token, seq, holder, deadline —
		// and sync once before the tokens leave the building. Restoring
		// grants at recovery keeps the per-shard seq monotonic across
		// restarts (a re-grant can never mint a token string an earlier
		// process already handed out) and lets a pre-crash worker's
		// upload land under its old token instead of re-executing;
		// restoring spec-grants keeps the post-restart race honest (the
		// original upload still acks "duplicate", never stale).
		// Failure here is logged, not fatal: a lost grant record only
		// costs a post-restart re-execution, never correctness.
		if len(resp.Shards) > 0 && j.wal != nil {
			for _, sc := range resp.Shards {
				rec := &walRecord{
					Type: walLease, Idx: sc.Index, Event: walGrant, Worker: worker,
					Seq: j.leases[sc.Index].seq, Token: sc.Lease, Expires: sc.ExpiresAt,
					Time: now,
				}
				if sc.Speculative {
					rec.Event = walSpecGrant
				} else {
					rec.BatchN = j.leases[sc.Index].batchN
				}
				if err := m.walAppend(j, rec); err != nil {
					m.logger.Error("journal lease grant", "job", j.id, "shard", sc.Index, "error", err)
					break
				}
			}
			if err := m.walSync(j); err != nil {
				m.logger.Error("journal lease grants", "job", j.id, "error", err)
			}
			m.maybeSealLocked(j)
		}
	}
	resp.State = j.state
	resp.ShardsTotal = len(j.shards)
	resp.ShardsDone = j.shardsDone
	return resp, nil
}

// Heartbeat extends exactly one unexpired lease by a full TTL. A
// heartbeat for a lapsed lease evicts it on the spot and reports
// lease_expired — the worker must re-claim, it cannot resurrect the
// old token.
func (m *jobMgr) Heartbeat(jobID string, idx int, token string) (HeartbeatResponse, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, err := m.distributedJobLocked(jobID)
	if err != nil {
		return HeartbeatResponse{}, err
	}
	if idx < 0 || idx >= len(j.shards) {
		return HeartbeatResponse{}, faultf(http.StatusNotFound, codeShardNotFound,
			"job %s has no shard %d (plan has %d)", jobID, idx, len(j.shards))
	}
	sh := &j.shards[idx]
	l := &j.leases[idx]
	if sh.State != "leased" || (l.token != token && (l.specToken == "" || l.specToken != token)) {
		return HeartbeatResponse{}, faultf(http.StatusConflict, codeLeaseExpired,
			"lease is not current for shard %d of job %s", idx, jobID)
	}
	now := m.now()
	if token == l.specToken && l.specToken != "" && token != l.token {
		// A speculative twin heartbeats its own deadline; the primary's
		// lease is untouched either way.
		if !l.specExpires.After(now) {
			expired := now.Sub(l.specExpires)
			m.expireSpecLocked(j, idx)
			return HeartbeatResponse{}, faultf(http.StatusConflict, codeLeaseExpired,
				"lease for shard %d of job %s expired %s ago", idx, jobID, expired)
		}
		l.specExpires = now.Add(m.leaseTTL)
		return HeartbeatResponse{Job: j.id, Index: idx, ExpiresAt: l.specExpires}, nil
	}
	if !l.expires.After(now) {
		m.evictLeaseLocked(j, idx)
		return HeartbeatResponse{}, faultf(http.StatusConflict, codeLeaseExpired,
			"lease for shard %d of job %s expired %s ago", idx, jobID, now.Sub(l.expires))
	}
	l.expires = now.Add(m.leaseTTL)
	return HeartbeatResponse{Job: j.id, Index: idx, ExpiresAt: l.expires}, nil
}

// ShardResult accepts one shard's uploaded result. First writer wins;
// a duplicate of the winning upload is an idempotent success; a result
// computed for a different spec, a mismatched shard, or an evicted
// lease never reaches the merge. The accepted upload that completes
// the plan triggers the canonical merge and files the run.
func (m *jobMgr) ShardResult(jobID string, idx int, worker, token string, wire *campaign.ShardResultWire) (ResultResponse, error) {
	m.mu.Lock()
	j, err := m.distributedJobLocked(jobID)
	if err != nil {
		m.mu.Unlock()
		return ResultResponse{}, err
	}
	resp, finalize, err := m.shardResultLocked(j, idx, worker, token, wire)
	m.mu.Unlock()
	if err != nil {
		return ResultResponse{}, err
	}
	if finalize {
		// Synchronous: the upload that completes the plan pays for the
		// merge, so when its 200 arrives the artifacts are served.
		m.finalizeDistributed(j)
		resp.State = JobDone
		if v, ok := m.Get(jobID); ok {
			resp.State = v.State // failed merges surface too
		}
	}
	return resp, nil
}

func (m *jobMgr) shardResultLocked(j *job, idx int, worker, token string, wire *campaign.ShardResultWire) (ResultResponse, bool, error) {
	if idx < 0 || idx >= len(j.shards) {
		return ResultResponse{}, false, faultf(http.StatusNotFound, codeShardNotFound,
			"job %s has no shard %d (plan has %d)", j.id, idx, len(j.shards))
	}
	sh := &j.shards[idx]
	l := &j.leases[idx]
	if wire.Version != campaign.ShardWireVersion {
		return ResultResponse{}, false, faultf(http.StatusBadRequest, codeResultInvalid,
			"shard result has wire version %d (this server speaks %d)",
			wire.Version, campaign.ShardWireVersion)
	}
	if wire.SpecHash != j.key {
		m.met.resultsStale.Inc()
		return ResultResponse{}, false, faultf(http.StatusConflict, codeStaleResult,
			"result computed for spec %.12s, job %s wants %.12s", wire.SpecHash, j.id, j.key)
	}
	if wire.Shard != sh.Shard || wire.Slice != sh.Slice {
		return ResultResponse{}, false, faultf(http.StatusBadRequest, codeResultInvalid,
			"payload is for shard (%d,%d) but was posted to (%d,%d)",
			wire.Shard, wire.Slice, sh.Shard, sh.Slice)
	}
	resp := ResultResponse{Job: j.id, Index: idx, ShardsTotal: len(j.shards)}
	if sh.State == "done" {
		// Idempotent duplicates: the winning token, and either side of a
		// settled speculation race (the tokens are left in place when the
		// shard completes exactly so the loser's in-flight upload acks
		// "duplicate" — its bytes were identical, its work wasted but
		// harmless).
		if token != "" && (token == l.doneToken || token == l.token || token == l.specToken) {
			m.met.resultsDuplicate.Inc()
			resp.Status = "duplicate"
			resp.ShardsDone = j.shardsDone
			resp.State = j.state
			return resp, false, nil
		}
		m.met.resultsStale.Inc()
		m.strikeLocked(worker, "stale-upload")
		return ResultResponse{}, false, faultf(http.StatusConflict, codeStaleResult,
			"shard %d of job %s already has a result from %s", idx, j.id, sh.Worker)
	}
	speculative := l.specToken != "" && token == l.specToken && token != l.token
	if sh.State != "leased" || (l.token != token && !speculative) {
		// Pending (evicted) or leased to a successor: the uploader lost
		// its lease and someone else owns — or will own — the shard.
		m.met.resultsStale.Inc()
		m.strikeLocked(worker, "stale-upload")
		return ResultResponse{}, false, faultf(http.StatusConflict, codeStaleResult,
			"lease is not current for shard %d of job %s", idx, j.id)
	}
	// Accept. Note no expiry check: a lapsed lease that was never
	// evicted is still the shard's current lease, and determinism
	// makes the slow worker's bytes as good as anyone's.
	//
	// WAL discipline: the accept is durable before it is visible. The
	// full wire payload is journaled and fsync'd here, before any
	// in-memory state changes and before the 200 — so a crash at any
	// later instant leaves a coordinator that still owns this result.
	// A journal failure refuses the upload (500, internal); the worker
	// retries and the re-journaled duplicate replays first-wins.
	if j.wal != nil {
		if err := m.walAppend(j, &walRecord{
			Type: walResult, Idx: idx, Worker: worker, Token: token, Wire: wire, Time: m.now(),
		}); err != nil {
			return ResultResponse{}, false, faultf(http.StatusInternalServerError, codeInternal,
				"server: journal shard result: %v", err)
		}
		if err := m.walSync(j); err != nil {
			return ResultResponse{}, false, faultf(http.StatusInternalServerError, codeInternal,
				"server: journal shard result: %v", err)
		}
		m.maybeSealLocked(j)
	}
	if err := failpoint.Check(failpoint.AcceptResultAfterJournal); err != nil {
		// Hook-simulated crash: the result is journaled but the worker
		// gets an error instead of its ack — the crash-between-journal-
		// and-ack window. Its retry appends a duplicate journal record,
		// which replay deduplicates.
		return ResultResponse{}, false, faultf(http.StatusInternalServerError, codeInternal,
			"failpoint %s: %v", failpoint.AcceptResultAfterJournal, err)
	}
	j.wires[idx] = wire
	l.doneToken = token
	sh.State = "done"
	sh.Worker = worker
	sh.Events = wire.Stats.Events
	sh.ElapsedSeconds = wire.Stats.Elapsed.Seconds()
	j.shardsDone++
	j.tracesDone += sh.Traces
	// Settle the speculation race, if one was open: the winning side's
	// counter ticks and the loser takes a speculation-loss strike — this
	// is the signal that catches a wedged-but-heartbeating worker, whose
	// leases never lapse but whose twins beat every upload.
	if l.specToken != "" {
		if speculative {
			m.met.specWon.Inc()
			m.strikeLocked(l.worker, "speculation-loss")
			m.logger.Info("speculation won", "job", j.id, "shard", idx,
				"winner", worker, "straggler", l.worker)
		} else {
			m.met.specWasted.Inc()
			m.strikeLocked(l.specWorker, "speculation-loss")
		}
	}
	m.creditLocked(worker)
	// Fold the shard's duration into the job's straggler baseline.
	if d := wire.Stats.Elapsed.Seconds(); d > 0 {
		if j.durCount == 0 {
			j.durEWMA = d
		} else {
			j.durEWMA = durEWMAAlpha*d + (1-durEWMAAlpha)*j.durEWMA
		}
		if d > j.durMax {
			j.durMax = d
		}
	}
	j.durCount++
	if m.openShards > 0 {
		m.openShards--
	}
	m.met.resultsAccepted.Inc()
	m.met.workerShardSeconds(worker).Observe(wire.Stats.Elapsed.Seconds())
	m.met.journal.Append(telemetry.EventShardDone, &j.id,
		m.internWorkerLocked(worker), int32(sh.Shard), int32(sh.Slice))
	resp.Status = "accepted"
	resp.ShardsDone = j.shardsDone
	resp.State = j.state
	finalize := j.shardsDone == len(j.shards) && !j.finalizing
	if finalize {
		j.finalizing = true
	}
	return resp, finalize, nil
}

// finalizeDistributed merges a completed distributed job's uploaded
// shard results in canonical order and files the run — the same
// filing path the in-process runner uses, so the stored artifacts are
// indistinguishable.
func (m *jobMgr) finalizeDistributed(j *job) {
	if err := failpoint.Check(failpoint.FinalizeBeforeStore); err != nil {
		// Hook-simulated crash between the last accepted shard and the
		// store write: leave the job exactly as a dead process would —
		// finalizing latched, journal complete on disk, store entry
		// absent. Only restart recovery on this data dir finishes it.
		m.logger.Error("failpoint abort before finalize", "job", j.id, "error", err)
		return
	}
	res, err := campaign.MergeWire(j.wires)
	if err != nil {
		m.failJob(j, err, false)
		return
	}
	wall := m.now().Sub(j.started)
	n, err := m.fileRun(j, res, wall)
	if err != nil {
		m.failJob(j, err, false)
		return
	}
	m.mu.Lock()
	j.state = JobDone
	j.finished = m.now()
	j.wires = nil // uploaded shard data is merged and filed; release it
	delete(m.active, j.key)
	if j.wal != nil {
		// The crash-atomic store entry is now the durable record; the
		// journal has nothing left to protect.
		j.wal.close()
		j.wal = nil
		if err := m.wal.remove(j.id); err != nil {
			m.logger.Error("journal remove", "job", j.id, "error", err)
		}
	}
	m.mu.Unlock()
	m.met.jobsDone.Inc()
	m.met.jobsRunning.Add(-1)
	m.met.journal.Append(telemetry.EventJobDone, &j.id, nil, -1, -1)
	m.logger.Info("job done", "job", j.id, "key", j.key[:12],
		"execution", "distributed", "dataset_bytes", n, "wall_seconds", wall.Seconds())
}
