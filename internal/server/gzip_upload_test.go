package server_test

// Compressed shard-result uploads: the worker gzips its wire payloads
// by default, the server decodes transparently, and uncompressed
// uploads keep working — the negotiation is per-request, invisible to
// the merge, and byte-neutral to the dataset.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"testing"
)

func TestGzipAndIdentityUploadsInterchangeable(t *testing.T) {
	_, client, _ := newLeaseServer(t)
	ctx := context.Background()

	job, _, err := client.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	claim, err := client.Claim(ctx, job.ID, "w1", 1000)
	if err != nil {
		t.Fatal(err)
	}
	wires := execWires(t, distSpec, claim.SpecHash)

	// Shard 0 rides the default (gzip) path, the rest go uncompressed;
	// the server must not care.
	plain := client.WithUploadCompression(false)
	for i, sh := range claim.Shards {
		c := client
		if i > 0 {
			c = plain
		}
		ack, err := c.PushShardResult(ctx, job.ID, sh.Index, "w1", sh.Lease, wires[sh.Index])
		if err != nil || ack.Status != "accepted" {
			t.Fatalf("upload shard %d = %+v, %v", sh.Index, ack, err)
		}
	}
	wantDatasetMatch(t, client, job.ID)

	text, err := client.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`repro_shard_result_uploads_total{encoding="gzip"} 1`,
		fmt.Sprintf(`repro_shard_result_uploads_total{encoding="identity"} %d`, len(claim.Shards)-1),
	} {
		if !contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestGzipUploadRejectsGarbage: a Content-Encoding: gzip body that is
// not gzip is a 400 bad_request, not a 500 or a hang.
func TestGzipUploadRejectsGarbage(t *testing.T) {
	_, ts, client := startCrashServer(t, t.TempDir(), newFakeClock())
	ctx := context.Background()

	job, _, err := client.SubmitRaw(ctx, []byte(distSpec))
	if err != nil {
		t.Fatal(err)
	}
	claim, err := client.Claim(ctx, job.ID, "w1", 1000)
	if err != nil {
		t.Fatal(err)
	}

	url := fmt.Sprintf("%s/v1/jobs/%s/shards/%d/result", ts.URL, job.ID, claim.Shards[0].Index)
	req, err := http.NewRequest("POST", url, bytes.NewReader([]byte("this is not gzip")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("garbage gzip upload = %d, want 400", resp.StatusCode)
	}

	// The shard is still serviceable after the bad upload.
	wires := execWires(t, distSpec, claim.SpecHash)
	for _, sh := range claim.Shards {
		ack, err := client.PushShardResult(ctx, job.ID, sh.Index, "w1", sh.Lease, wires[sh.Index])
		if err != nil || ack.Status != "accepted" {
			t.Fatalf("upload after rejected garbage = %+v, %v", ack, err)
		}
	}
	wantDatasetMatch(t, client, job.ID)
}
