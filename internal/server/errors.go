package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/campaign"
)

// Every v1 error response shares one envelope:
//
//	{"error": {"code": "...", "message": "...", "fields": [...]}}
//
// The code is the machine-readable contract — stable strings a client
// branches on — while the message is advisory prose that may change
// between releases. Validation errors additionally carry the offending
// spec fields so a client can fix a submission in one round trip. The
// full code table lives in DESIGN.md §13.

// The stable v1 error codes.
const (
	codeBadRequest        = "bad_request"         // malformed body, unparseable parameter
	codeSpecInvalid       = "spec_invalid"        // spec failed validation; fields populated
	codeJobNotFound       = "job_not_found"       // unknown job ID
	codeRunNotFound       = "run_not_found"       // unknown cached-run key
	codeShardNotFound     = "shard_not_found"     // shard index outside the job's plan
	codeJobNotDone        = "job_not_done"        // artifacts requested before completion
	codeJobFailed         = "job_failed"          // artifacts requested from a failed job
	codeJobNotDistributed = "job_not_distributed" // worker call against an in-process job
	codeLeaseExpired      = "lease_expired"       // heartbeat on a lapsed or superseded lease
	codeStaleResult       = "stale_result"        // upload under an evicted lease or wrong spec hash
	codeResultInvalid     = "result_invalid"      // upload payload inconsistent with the claimed shard
	codeCursorInvalid     = "cursor_invalid"      // pagination cursor does not resolve
	codeQueueFull         = "queue_full"          // job queue at capacity
	codeUnavailable       = "unavailable"         // shutting down
	codeWorkerQuarantined = "worker_quarantined"  // claims refused: worker past the strike threshold
	codeOverloaded        = "overloaded"          // submission shed: open work past the admission watermark
	codeInternal          = "internal"            // unclassified server-side failure
)

// ErrorDetail is the envelope's payload.
type ErrorDetail struct {
	Code    string                `json:"code"`
	Message string                `json:"message"`
	Fields  []campaign.FieldError `json:"fields,omitempty"`
}

// ErrorBody is the uniform v1 error response body.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// apiFault is an error that knows its HTTP status and stable code; it
// crosses the job-manager/handler boundary so lease and pagination
// logic can classify failures where they are detected.
type apiFault struct {
	status int
	code   string
	msg    string
	fields []campaign.FieldError
	// retryAfter, when positive, is emitted as a Retry-After header (in
	// seconds) — the server telling well-behaved workers how long to
	// back off before re-sending (drain, queue_full).
	retryAfter int
}

func (f *apiFault) Error() string { return f.msg }

// faultf builds an apiFault with a formatted message.
func faultf(status int, code, format string, args ...any) *apiFault {
	return &apiFault{status: status, code: code, msg: fmt.Sprintf(format, args...)}
}

// faultRetryf builds an apiFault that advertises a Retry-After hint.
func faultRetryf(status int, code string, retryAfter int, format string, args ...any) *apiFault {
	f := faultf(status, code, format, args...)
	f.retryAfter = retryAfter
	return f
}

// writeFault renders any error in the unified envelope: apiFaults
// carry their own status and code, spec validation failures are 400
// spec_invalid with field detail, and anything unclassified is a 500.
func writeFault(w http.ResponseWriter, err error) {
	var f *apiFault
	if errors.As(err, &f) {
		if f.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(f.retryAfter))
		}
		writeJSON(w, f.status, ErrorBody{Error: ErrorDetail{
			Code: f.code, Message: f.msg, Fields: f.fields,
		}})
		return
	}
	var verr *campaign.ValidationError
	if errors.As(err, &verr) {
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: ErrorDetail{
			Code: codeSpecInvalid, Message: verr.Error(), Fields: verr.Fields,
		}})
		return
	}
	writeJSON(w, http.StatusInternalServerError, ErrorBody{Error: ErrorDetail{
		Code: codeInternal, Message: err.Error(),
	}})
}
