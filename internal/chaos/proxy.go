// Package chaos is an in-process fault-injecting HTTP proxy for the
// worker↔coordinator path. Tests park it between an apiclient and a
// real coordinator to exercise the worker's retry/backoff machinery
// against the failures the tentpole cares about: dropped connections,
// long delays, and duplicated requests (the "ambiguous failure" where
// a request executes but its response is lost, forcing an idempotent
// re-send).
//
// Faults fire on deterministic request counters, not randomness —
// "drop every 3rd request" reproduces exactly, run after run, which is
// what a determinism-obsessed test suite wants from its chaos.
package chaos

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy forwards requests to Target, injecting faults by request
// count. The zero fault configuration forwards everything untouched.
type Proxy struct {
	// Target is the coordinator base URL the proxy forwards to.
	Target *url.URL

	// DropEvery > 0 severs every Nth request (counting from 1) without
	// forwarding it: the client sees a closed connection, never a
	// response — a transient network error by the worker's taxonomy.
	DropEvery int
	// DelayEvery > 0 sleeps Delay before forwarding every Nth request,
	// simulating a slow network or overloaded coordinator; long enough
	// delays trip the client's per-request timeout.
	DelayEvery int
	Delay      time.Duration
	// DupEvery > 0 forwards every Nth request twice, back to back, and
	// returns the FIRST response. The coordinator sees the retry of an
	// already-applied request; the dedup/doneToken path must absorb it.
	// Only effective for requests with replayable bodies (the proxy
	// buffers them), which covers the whole JSON API.
	DupEvery int

	count atomic.Int64

	initOnce sync.Once
	rp       *httputil.ReverseProxy
}

func (p *Proxy) init() {
	p.initOnce.Do(func() {
		p.rp = &httputil.ReverseProxy{
			Rewrite: func(r *httputil.ProxyRequest) {
				r.SetURL(p.Target)
			},
		}
	})
}

// nth reports whether the 1-based request number n lands on the every
// cycle; every <= 0 disables the fault.
func nth(n int64, every int) bool {
	return every > 0 && n%int64(every) == 0
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.init()
	n := p.count.Add(1)

	if nth(n, p.DropEvery) {
		// Sever the connection so the client gets a transport error,
		// not an HTTP status. Fall back to a bare 502 on transports
		// that cannot hijack (HTTP/2); httptest's default is HTTP/1.1.
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		w.WriteHeader(http.StatusBadGateway)
		return
	}

	if nth(n, p.DelayEvery) && p.Delay > 0 {
		select {
		case <-time.After(p.Delay):
		case <-r.Context().Done():
			return
		}
	}

	if nth(n, p.DupEvery) && r.Body != nil {
		body, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		// Shadow send first: the coordinator applies the request once,
		// then sees our "retry". The client only ever hears the shadow
		// response below if we surfaced it — it doesn't; it gets the
		// second (duplicate-disposition) response, which is exactly the
		// ambiguous-failure shape: applied once, acked as duplicate.
		shadow := r.Clone(r.Context())
		shadow.Body = io.NopCloser(bytes.NewReader(body))
		shadow.ContentLength = int64(len(body))
		rec := &discardResponseWriter{header: make(http.Header)}
		p.rp.ServeHTTP(rec, shadow)

		r.Body = io.NopCloser(bytes.NewReader(body))
		r.ContentLength = int64(len(body))
	}

	p.rp.ServeHTTP(w, r)
}

// Requests returns how many requests the proxy has seen.
func (p *Proxy) Requests() int64 { return p.count.Load() }

// discardResponseWriter swallows the shadow request's response.
type discardResponseWriter struct {
	header http.Header
}

func (d *discardResponseWriter) Header() http.Header         { return d.header }
func (d *discardResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (d *discardResponseWriter) WriteHeader(int)             {}
