// Package ntp implements the subset of the Network Time Protocol (RFC
// 5905) that the measurement study exercises: the 48-byte client/server
// packet format, a stratum-2 server responder, and the probing client
// with the paper's retransmission schedule (one-second timeout, up to
// five retransmissions).
//
// The codec is pure and the server's response logic is a function from
// request to response, so the same code serves both the simulated pool
// hosts and the real-socket server in cmd/ntpd.
package ntp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// PacketLen is the length of an NTP packet without extensions.
const PacketLen = 48

// Mode is the NTP association mode.
type Mode uint8

// Modes used by the client/server exchange.
const (
	ModeClient Mode = 3
	ModeServer Mode = 4
)

// Errors returned by the codec and client.
var (
	ErrTruncated = errors.New("ntp: packet too short")
	ErrBadMode   = errors.New("ntp: unexpected mode")
)

// Packet is a decoded NTP header.
type Packet struct {
	LI        uint8 // leap indicator (2 bits)
	Version   uint8 // protocol version (3 bits); we speak version 4
	Mode      Mode  // association mode (3 bits)
	Stratum   uint8
	Poll      int8
	Precision int8
	RootDelay uint32 // NTP short format
	RootDisp  uint32 // NTP short format
	RefID     uint32
	RefTime   uint64 // NTP timestamp format (seconds<<32 | fraction)
	OriginTS  uint64
	RecvTS    uint64
	XmitTS    uint64
}

// Marshal appends the 48-byte wire form to b.
func (p *Packet) Marshal(b []byte) []byte {
	off := len(b)
	b = append(b, make([]byte, PacketLen)...)
	w := b[off:]
	w[0] = p.LI<<6 | (p.Version&0x7)<<3 | uint8(p.Mode)&0x7
	w[1] = p.Stratum
	w[2] = uint8(p.Poll)
	w[3] = uint8(p.Precision)
	binary.BigEndian.PutUint32(w[4:], p.RootDelay)
	binary.BigEndian.PutUint32(w[8:], p.RootDisp)
	binary.BigEndian.PutUint32(w[12:], p.RefID)
	binary.BigEndian.PutUint64(w[16:], p.RefTime)
	binary.BigEndian.PutUint64(w[24:], p.OriginTS)
	binary.BigEndian.PutUint64(w[32:], p.RecvTS)
	binary.BigEndian.PutUint64(w[40:], p.XmitTS)
	return b
}

// Parse decodes an NTP packet. Trailing bytes (extensions, MACs) are
// ignored, as RFC 5905 permits for basic processing.
func Parse(data []byte) (Packet, error) {
	var p Packet
	if len(data) < PacketLen {
		return p, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	p.LI = data[0] >> 6
	p.Version = (data[0] >> 3) & 0x7
	p.Mode = Mode(data[0] & 0x7)
	p.Stratum = data[1]
	p.Poll = int8(data[2])
	p.Precision = int8(data[3])
	p.RootDelay = binary.BigEndian.Uint32(data[4:])
	p.RootDisp = binary.BigEndian.Uint32(data[8:])
	p.RefID = binary.BigEndian.Uint32(data[12:])
	p.RefTime = binary.BigEndian.Uint64(data[16:])
	p.OriginTS = binary.BigEndian.Uint64(data[24:])
	p.RecvTS = binary.BigEndian.Uint64(data[32:])
	p.XmitTS = binary.BigEndian.Uint64(data[40:])
	return p, nil
}

// ntpEpochOffset is the offset between the NTP era-0 epoch (1900-01-01)
// and the Unix epoch, in seconds.
const ntpEpochOffset = 2208988800

// TimestampFromTime converts wall-clock time to NTP timestamp format.
func TimestampFromTime(t time.Time) uint64 {
	secs := uint64(t.Unix()) + ntpEpochOffset
	frac := uint64(t.Nanosecond()) << 32 / 1_000_000_000
	return secs<<32 | frac
}

// TimeFromTimestamp converts an NTP timestamp to wall-clock time (era 0).
func TimeFromTimestamp(ts uint64) time.Time {
	secs := int64(ts>>32) - ntpEpochOffset
	nanos := (ts & 0xFFFFFFFF) * 1_000_000_000 >> 32
	return time.Unix(secs, int64(nanos))
}

// simEpoch anchors simulated virtual time to a fixed wall-clock instant
// so that simulated NTP timestamps are plausible 2015-era values. The
// study's first trace batch began in April 2015.
var simEpoch = time.Date(2015, time.April, 13, 9, 0, 0, 0, time.UTC)

// TimestampFromSim converts virtual time to an NTP timestamp.
func TimestampFromSim(d time.Duration) uint64 {
	return TimestampFromTime(simEpoch.Add(d))
}

// NewRequest builds a client request carrying xmit as its transmit
// timestamp (which doubles as the anti-spoofing nonce the client checks
// in the response's origin field).
func NewRequest(xmit uint64) Packet {
	return Packet{
		Version:   4,
		Mode:      ModeClient,
		Poll:      6,
		Precision: -20,
		XmitTS:    xmit,
	}
}

// Respond computes the server reply to a client request per RFC 5905:
// the client's transmit timestamp is echoed as origin, and the server
// stamps receive and transmit times. It returns ErrBadMode for non-client
// requests, which real pool servers ignore.
func Respond(req Packet, stratum uint8, refID uint32, recv, xmit uint64) (Packet, error) {
	if req.Mode != ModeClient {
		return Packet{}, fmt.Errorf("%w: %d", ErrBadMode, req.Mode)
	}
	return Packet{
		Version:   req.Version,
		Mode:      ModeServer,
		Stratum:   stratum,
		Poll:      req.Poll,
		Precision: -23,
		RootDelay: 0x0001_0000 >> 12, // ~16ms in NTP short format
		RootDisp:  0x0000_0400,
		RefID:     refID,
		RefTime:   recv &^ 0xFFFF, // coarse alignment, as servers report
		OriginTS:  req.XmitTS,
		RecvTS:    recv,
		XmitTS:    xmit,
	}, nil
}

// ValidateResponse checks that a reply corresponds to the request the
// client sent: server mode and echoed origin timestamp.
func ValidateResponse(req, resp Packet) error {
	if resp.Mode != ModeServer {
		return fmt.Errorf("%w: got %d, want server", ErrBadMode, resp.Mode)
	}
	if resp.OriginTS != req.XmitTS {
		return fmt.Errorf("ntp: origin timestamp mismatch (got %#x, want %#x)",
			resp.OriginTS, req.XmitTS)
	}
	return nil
}
