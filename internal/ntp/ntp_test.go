package ntp

import (
	"testing"
	"testing/quick"
	"time"
)

func TestPacketRoundTrip(t *testing.T) {
	p := Packet{
		LI: 0, Version: 4, Mode: ModeClient,
		Stratum: 2, Poll: 6, Precision: -20,
		RootDelay: 0x1234, RootDisp: 0x5678, RefID: 0xC0A80101,
		RefTime: 0xDD00000011111111, OriginTS: 1, RecvTS: 2, XmitTS: 3,
	}
	wire := p.Marshal(nil)
	if len(wire) != PacketLen {
		t.Fatalf("wire length = %d", len(wire))
	}
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestParseTruncated(t *testing.T) {
	if _, err := Parse(make([]byte, 47)); err == nil {
		t.Error("short packet accepted")
	}
}

func TestParseIgnoresTrailingBytes(t *testing.T) {
	p := NewRequest(42)
	wire := append(p.Marshal(nil), 0xAA, 0xBB)
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.XmitTS != 42 {
		t.Error("trailing bytes corrupted parse")
	}
}

func TestPacketRoundTripProperty(t *testing.T) {
	f := func(li, ver, mode, stratum uint8, poll, prec int8, rd, rdisp, rid uint32, rt, ot, rcv, xmt uint64) bool {
		p := Packet{
			LI: li & 0x3, Version: ver & 0x7, Mode: Mode(mode & 0x7),
			Stratum: stratum, Poll: poll, Precision: prec,
			RootDelay: rd, RootDisp: rdisp, RefID: rid,
			RefTime: rt, OriginTS: ot, RecvTS: rcv, XmitTS: xmt,
		}
		got, err := Parse(p.Marshal(nil))
		return err == nil && got == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTimestampConversion(t *testing.T) {
	ref := time.Date(2015, time.April, 25, 12, 30, 45, 500_000_000, time.UTC)
	ts := TimestampFromTime(ref)
	back := TimeFromTimestamp(ts)
	if diff := back.Sub(ref); diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("round trip error %v", diff)
	}
	// NTP era check: seconds field must exceed the 1900→2015 offset.
	if ts>>32 <= ntpEpochOffset {
		t.Error("timestamp not in NTP era")
	}
}

func TestTimestampMonotoneInSimTime(t *testing.T) {
	a := TimestampFromSim(0)
	b := TimestampFromSim(time.Second)
	c := TimestampFromSim(2 * time.Second)
	if !(a < b && b < c) {
		t.Errorf("timestamps not monotone: %d %d %d", a, b, c)
	}
	if b-a != 1<<32 {
		t.Errorf("one second != 2^32 fraction units: %d", b-a)
	}
}

func TestRespond(t *testing.T) {
	req := NewRequest(0xABCDEF)
	resp, err := Respond(req, 2, 0x7F000001, 100, 101)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Mode != ModeServer {
		t.Errorf("mode = %d", resp.Mode)
	}
	if resp.OriginTS != 0xABCDEF {
		t.Errorf("origin = %#x, must echo client xmit", resp.OriginTS)
	}
	if resp.RecvTS != 100 || resp.XmitTS != 101 {
		t.Errorf("timestamps = %d,%d", resp.RecvTS, resp.XmitTS)
	}
	if resp.Stratum != 2 {
		t.Errorf("stratum = %d", resp.Stratum)
	}
	if err := ValidateResponse(req, resp); err != nil {
		t.Errorf("valid response rejected: %v", err)
	}
}

func TestRespondRejectsNonClient(t *testing.T) {
	req := NewRequest(1)
	req.Mode = ModeServer
	if _, err := Respond(req, 2, 0, 0, 0); err == nil {
		t.Error("server-mode request answered")
	}
}

func TestValidateResponseRejects(t *testing.T) {
	req := NewRequest(7)
	good, _ := Respond(req, 2, 0, 1, 2)

	bad := good
	bad.OriginTS = 8
	if err := ValidateResponse(req, bad); err == nil {
		t.Error("wrong origin accepted")
	}
	bad = good
	bad.Mode = ModeClient
	if err := ValidateResponse(req, bad); err == nil {
		t.Error("client mode accepted as response")
	}
}

func TestNewRequestShape(t *testing.T) {
	req := NewRequest(99)
	if req.Mode != ModeClient || req.Version != 4 {
		t.Errorf("request = %+v", req)
	}
	wire := req.Marshal(nil)
	// First byte: LI=0, VN=4, Mode=3 → 0x23.
	if wire[0] != 0x23 {
		t.Errorf("first byte = %#02x, want 0x23", wire[0])
	}
}
