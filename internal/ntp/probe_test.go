package ntp

import (
	"net"
	"testing"
	"time"

	"repro/internal/ecn"
	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/packet"
)

// probeFixture wires client — r1 — r2 — server with an NTP server bound.
type probeFixture struct {
	sim            *netsim.Sim
	net            *netsim.Network
	client, server *netsim.Host
	r1, r2         *netsim.Router
	ntpd           *Server
}

func newProbeFixture(t *testing.T, seed int64) *probeFixture {
	t.Helper()
	sim := netsim.NewSim(seed)
	n := netsim.NewNetwork(sim)
	r1 := n.AddRouter("r1", packet.AddrFrom4(10, 255, 0, 1), 64500)
	r2 := n.AddRouter("r2", packet.AddrFrom4(10, 255, 1, 1), 64501)
	n.Connect(r1, r2, 5*time.Millisecond, 0)
	client, _ := n.AddHost("client", packet.AddrFrom4(10, 0, 0, 1))
	server, _ := n.AddHost("server", packet.AddrFrom4(10, 0, 1, 1))
	n.Attach(client, r1, time.Millisecond, 0)
	n.Attach(server, r2, time.Millisecond, 0)
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(0x0A000101)
	if err := srv.AttachSim(server); err != nil {
		t.Fatal(err)
	}
	return &probeFixture{sim: sim, net: n, client: client, server: server, r1: r1, r2: r2, ntpd: srv}
}

func TestProbeReachable(t *testing.T) {
	f := newProbeFixture(t, 1)
	var got ProbeResult
	Probe(f.client, f.server.Addr(), ProbeConfig{ECN: ecn.ECT0}, func(r ProbeResult) { got = r })
	f.sim.Run()

	if !got.Reachable {
		t.Fatal("server unreachable on clean path")
	}
	if got.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", got.Attempts)
	}
	// RTT = 2 × (1ms + 5ms + 1ms) = 14ms.
	if got.RTT != 14*time.Millisecond {
		t.Errorf("RTT = %v, want 14ms", got.RTT)
	}
	if got.ResponseECN != ecn.NotECT {
		t.Errorf("response ECN = %v; NTP servers reply not-ECT", got.ResponseECN)
	}
	if got.Response.Stratum != 2 {
		t.Errorf("response stratum = %d", got.Response.Stratum)
	}
	if f.ntpd.Served != 1 {
		t.Errorf("server answered %d requests", f.ntpd.Served)
	}
}

func TestProbeOfflineServerUnreachable(t *testing.T) {
	f := newProbeFixture(t, 2)
	f.server.SetOnline(false)
	var got ProbeResult
	start := f.sim.Now()
	Probe(f.client, f.server.Addr(), ProbeConfig{}, func(r ProbeResult) { got = r })
	f.sim.Run()

	if got.Reachable {
		t.Fatal("offline server reported reachable")
	}
	if got.Attempts != 1+DefaultRetransmissions {
		t.Errorf("attempts = %d, want %d", got.Attempts, 1+DefaultRetransmissions)
	}
	elapsed := f.sim.Now() - start
	want := time.Duration(1+DefaultRetransmissions) * DefaultTimeout
	if elapsed != want {
		t.Errorf("probe took %v, want %v", elapsed, want)
	}
}

func TestProbeRecoversAfterLoss(t *testing.T) {
	f := newProbeFixture(t, 3)
	// 70% loss on the client access link: some attempts die, but six
	// tries nearly always get through.
	f.client.Uplink().SetLossBoth(0.7)
	reached := 0
	const probes = 40
	doneCount := 0
	var launch func(i int)
	launch = func(i int) {
		if i == probes {
			return
		}
		Probe(f.client, f.server.Addr(), ProbeConfig{}, func(r ProbeResult) {
			doneCount++
			if r.Reachable {
				reached++
			}
			launch(i + 1)
		})
	}
	launch(0)
	f.sim.Run()
	if doneCount != probes {
		t.Fatalf("completed %d probes, want %d", doneCount, probes)
	}
	// P(attempt succeeds) = 0.3^2 = 0.09 → P(all 6 fail) ≈ 0.57. Expect
	// roughly 40%±σ reachable; anything far outside signals broken retry.
	if reached < 8 || reached > 30 {
		t.Errorf("reached %d/40 under 70%% loss; retransmission logic suspect", reached)
	}
}

func TestProbeRetransmitTimestampsDistinct(t *testing.T) {
	// The server replies only to the *second* request (the first is
	// lost), and the probe must still match the response.
	f := newProbeFixture(t, 4)
	drop := true
	f.server.UnbindUDP(Port)
	f.server.BindUDP(Port, func(host *netsim.Host, ip packet.IPv4Header, udp packet.UDPHeader, payload []byte) {
		if drop {
			drop = false
			return
		}
		req, err := Parse(payload)
		if err != nil {
			t.Fatalf("server parse: %v", err)
		}
		now := TimestampFromSim(host.Sim().Now())
		resp, _ := Respond(req, 2, 0, now, now)
		host.SendUDP(ip.Src, udp.DstPort, udp.SrcPort, 64, ecn.NotECT, resp.Marshal(nil))
	})

	var got ProbeResult
	Probe(f.client, f.server.Addr(), ProbeConfig{}, func(r ProbeResult) { got = r })
	f.sim.Run()
	if !got.Reachable {
		t.Fatal("response to retransmission not accepted")
	}
	if got.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", got.Attempts)
	}
}

func TestProbeIgnoresForgedResponse(t *testing.T) {
	f := newProbeFixture(t, 5)
	// A different host sprays forged server-mode packets at the client's
	// probable ephemeral ports. Origin timestamps won't match, so the
	// probe must ignore them and time out.
	forger, _ := f.net.AddHost("forger", packet.AddrFrom4(10, 0, 2, 2))
	f.net.Attach(forger, f.r1, time.Millisecond, 0)
	f.net.ComputeRoutes()
	f.server.SetOnline(false)

	var got ProbeResult
	Probe(f.client, f.server.Addr(), ProbeConfig{Retransmissions: -1}, func(r ProbeResult) { got = r })
	forgedPkt := Packet{Mode: ModeServer, Version: 4, OriginTS: 0xBAD}
	forged := forgedPkt.Marshal(nil)
	for p := uint16(49153); p < 49160; p++ {
		forger.SendUDP(f.client.Addr(), Port, p, 64, ecn.NotECT, forged)
	}
	f.sim.Run()
	if got.Reachable {
		t.Error("forged response accepted")
	}
}

func TestProbeECTBlockedByFirewall(t *testing.T) {
	f := newProbeFixture(t, 6)
	f.r2.AddPolicy(&middlebox.ECTUDPDropper{})

	var notECT, ect ProbeResult
	Probe(f.client, f.server.Addr(), ProbeConfig{ECN: ecn.NotECT}, func(r ProbeResult) {
		notECT = r
		Probe(f.client, f.server.Addr(), ProbeConfig{ECN: ecn.ECT0}, func(r2 ProbeResult) { ect = r2 })
	})
	f.sim.Run()

	if !notECT.Reachable {
		t.Error("not-ECT probe blocked")
	}
	if ect.Reachable {
		t.Error("ECT(0) probe passed an ECT-UDP firewall")
	}
}

// Real-socket integration: the same codec and responder over loopback UDP.
func TestServePacketConnLoopback(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer pc.Close()

	srv := NewServer(0x7F000001)
	errc := make(chan error, 1)
	go func() { errc <- srv.ServePacketConn(pc, func() uint64 { return TimestampFromTime(time.Now()) }) }()

	client, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	req := NewRequest(TimestampFromTime(time.Now()))
	if _, err := client.Write(req.Marshal(nil)); err != nil {
		t.Fatal(err)
	}
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1024)
	n, err := client.Read(buf)
	if err != nil {
		t.Fatalf("no NTP reply over loopback: %v", err)
	}
	resp, err := Parse(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateResponse(req, resp); err != nil {
		t.Fatalf("invalid reply: %v", err)
	}
	pc.Close()
	<-errc // server loop exits on closed socket
}
