package ntp

import (
	"net"

	"repro/internal/netsim"
	"repro/internal/packet"
)

// Port is the well-known NTP UDP port.
const Port = 123

// Server is a stratum-2 pool-style NTP responder. The zero value is not
// usable; construct with NewServer.
type Server struct {
	Stratum uint8
	RefID   uint32

	// Served counts requests answered (for tests and campaign stats).
	Served uint64
}

// NewServer returns a responder with pool-typical parameters.
func NewServer(refID uint32) *Server {
	return &Server{Stratum: 2, RefID: refID}
}

// AttachSim binds the server to UDP port 123 on a simulated host. The
// response is sent not-ECT: NTP servers do not use ECN in normal
// operation, which is why the paper can only probe the forward path.
func (s *Server) AttachSim(h *netsim.Host) error {
	_, err := h.BindUDP(Port, func(host *netsim.Host, ip packet.IPv4Header, udp packet.UDPHeader, payload []byte) {
		req, err := Parse(payload)
		if err != nil {
			return
		}
		now := TimestampFromSim(host.Sim().Now())
		resp, err := Respond(req, s.Stratum, s.RefID, now, now)
		if err != nil {
			return // non-client modes are ignored, as real servers do
		}
		s.Served++
		var scratch [PacketLen]byte // SendUDP copies into its pooled buffer
		// Fixed-size NTP responses cannot fail to serialize.
		_ = host.SendUDP(ip.Src, udp.DstPort, udp.SrcPort, 64, 0 /* not-ECT */, resp.Marshal(scratch[:0]))
	})
	return err
}

// ServePacketConn answers NTP requests on a real UDP socket until the
// connection is closed or a read fails. It backs cmd/ntpd, demonstrating
// that the codec is wire-compatible with actual NTP clients.
func (s *Server) ServePacketConn(pc net.PacketConn, now func() uint64) error {
	buf := make([]byte, 1024)
	for {
		n, addr, err := pc.ReadFrom(buf)
		if err != nil {
			return err
		}
		req, err := Parse(buf[:n])
		if err != nil {
			continue
		}
		ts := now()
		resp, err := Respond(req, s.Stratum, s.RefID, ts, ts)
		if err != nil {
			continue
		}
		s.Served++
		if _, err := pc.WriteTo(resp.Marshal(nil), addr); err != nil {
			return err
		}
	}
}
