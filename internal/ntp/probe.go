package ntp

import (
	"sync"
	"time"

	"repro/internal/ecn"
	"repro/internal/netsim"
	"repro/internal/packet"
)

// Probe parameters from Section 3 of the paper: an NTP request is sent
// and, if no response arrives within one second, retransmitted up to five
// times before the server is declared unreachable.
const (
	DefaultTimeout         = time.Second
	DefaultRetransmissions = 5
)

// ProbeConfig controls one reachability probe.
type ProbeConfig struct {
	// ECN is the codepoint to mark the request packets with: the study
	// compares not-ECT against ECT(0).
	ECN ecn.Codepoint
	// Timeout per attempt; DefaultTimeout when zero.
	Timeout time.Duration
	// Retransmissions after the initial request. Zero selects the
	// paper's default of five; a negative value disables retransmission
	// (single attempt).
	Retransmissions int
	// TTL for request packets; 64 when zero.
	TTL uint8
}

func (c ProbeConfig) withDefaults() ProbeConfig {
	if c.Timeout == 0 {
		c.Timeout = DefaultTimeout
	}
	if c.Retransmissions == 0 {
		c.Retransmissions = DefaultRetransmissions
	} else if c.Retransmissions < 0 {
		c.Retransmissions = 0
	}
	if c.TTL == 0 {
		c.TTL = 64
	}
	return c
}

// ProbeResult reports the outcome of a reachability probe.
type ProbeResult struct {
	Server    packet.Addr
	ECN       ecn.Codepoint // codepoint the requests carried
	Reachable bool
	Attempts  int           // requests transmitted
	RTT       time.Duration // of the successful exchange
	// ResponseECN is the codepoint observed on the response packet. The
	// paper could not probe the return path (servers send not-ECT); the
	// field exists so the simulator's ground truth can be checked.
	ResponseECN ecn.Codepoint
	Response    Packet
}

// Probe performs the paper's UDP reachability measurement from a
// simulated host against one NTP server, invoking done exactly once. It
// drives itself on the host's simulator; the caller must run the
// simulation for progress.
//
// The probe state lives in one pooled struct with callbacks bound once
// per shell: probes are the campaign's innermost loop, so a probe's
// steady-state cost is zero allocations rather than a closure per
// concern.
func Probe(h *netsim.Host, server packet.Addr, cfg ProbeConfig, done func(ProbeResult)) {
	p := probePool.Get().(*probeRun)
	if p.attemptFn == nil {
		p.attemptFn = p.attempt
		p.datagramFn = p.onDatagram
	}
	p.h = h
	p.cfg = cfg.withDefaults()
	p.done = done
	p.res = ProbeResult{Server: server, ECN: cfg.ECN}
	p.timer = netsim.Timer{}
	p.finished = false
	p.sent = p.sentArr[:0]

	var err error
	p.port, err = h.BindUDP(0, p.datagramFn)
	if err != nil {
		p.release()
		done(ProbeResult{Server: server, ECN: cfg.ECN})
		return
	}
	p.attempt()
}

var probePool = sync.Pool{New: func() any { return new(probeRun) }}

// probeRun is the state of one in-flight reachability probe.
type probeRun struct {
	h        *netsim.Host
	cfg      ProbeConfig
	done     func(ProbeResult)
	res      ProbeResult
	port     uint16
	timer    netsim.Timer
	finished bool
	// sent records (transmit timestamp, send time) per attempt, backed
	// by an inline array sized for the default retransmission budget. A
	// response is accepted if its origin matches ANY attempt: the paper
	// marks a server reachable "if an NTP response is received after
	// any request".
	sent       []sentAttempt
	sentArr    [8]sentAttempt
	attemptFn  func()
	datagramFn func(*netsim.Host, packet.IPv4Header, packet.UDPHeader, []byte)
}

// release scrubs the shell and returns it to the pool. Callers must not
// touch p afterwards.
func (p *probeRun) release() {
	p.h = nil
	p.done = nil
	p.sent = nil
	probePool.Put(p)
}

func (p *probeRun) finish() {
	if p.finished {
		return
	}
	p.finished = true
	p.timer.Stop()
	p.h.UnbindUDP(p.port)
	done, res := p.done, p.res
	// Last touch: done may start the next probe, reusing this shell —
	// the stopped timer and unbound port cannot reach it again.
	p.release()
	done(res)
}

func (p *probeRun) onDatagram(host *netsim.Host, ip packet.IPv4Header, udp packet.UDPHeader, payload []byte) {
	if p.finished || ip.Src != p.res.Server {
		return
	}
	resp, perr := Parse(payload)
	if perr != nil || resp.Mode != ModeServer {
		return
	}
	for _, s := range p.sent {
		if resp.OriginTS == s.xmitTS {
			p.res.Reachable = true
			p.res.RTT = p.h.Sim().Now() - s.at
			p.res.ResponseECN = ip.ECN()
			p.res.Response = resp
			p.finish()
			return
		}
	}
}

func (p *probeRun) attempt() {
	if p.finished {
		return
	}
	if p.res.Attempts > p.cfg.Retransmissions {
		p.finish() // all attempts timed out: unreachable
		return
	}
	p.res.Attempts++
	sim := p.h.Sim()
	now := sim.Now()
	// Perturb the timestamp fraction by the attempt number so each
	// retransmission is distinguishable even when the virtual clock
	// has not advanced.
	ts := TimestampFromSim(now) | uint64(p.res.Attempts)
	p.sent = append(p.sent, sentAttempt{xmitTS: ts, at: now})
	req := NewRequest(ts)
	// Marshal into a stack scratch buffer: SendUDP copies the payload
	// into its pooled wire buffer, so the request never escapes.
	var scratch [PacketLen]byte
	// Send errors cannot occur for fixed-size NTP requests; if one
	// did, the timeout path retries regardless.
	_ = p.h.SendUDP(p.res.Server, p.port, Port, p.cfg.TTL, p.cfg.ECN, req.Marshal(scratch[:0]))
	p.timer = sim.After(p.cfg.Timeout, p.attemptFn)
}

// sentAttempt pairs a request's transmit timestamp with its send time.
type sentAttempt struct {
	xmitTS uint64
	at     time.Duration
}
