package ntp

import (
	"time"

	"repro/internal/ecn"
	"repro/internal/netsim"
	"repro/internal/packet"
)

// Probe parameters from Section 3 of the paper: an NTP request is sent
// and, if no response arrives within one second, retransmitted up to five
// times before the server is declared unreachable.
const (
	DefaultTimeout         = time.Second
	DefaultRetransmissions = 5
)

// ProbeConfig controls one reachability probe.
type ProbeConfig struct {
	// ECN is the codepoint to mark the request packets with: the study
	// compares not-ECT against ECT(0).
	ECN ecn.Codepoint
	// Timeout per attempt; DefaultTimeout when zero.
	Timeout time.Duration
	// Retransmissions after the initial request. Zero selects the
	// paper's default of five; a negative value disables retransmission
	// (single attempt).
	Retransmissions int
	// TTL for request packets; 64 when zero.
	TTL uint8
}

func (c ProbeConfig) withDefaults() ProbeConfig {
	if c.Timeout == 0 {
		c.Timeout = DefaultTimeout
	}
	if c.Retransmissions == 0 {
		c.Retransmissions = DefaultRetransmissions
	} else if c.Retransmissions < 0 {
		c.Retransmissions = 0
	}
	if c.TTL == 0 {
		c.TTL = 64
	}
	return c
}

// ProbeResult reports the outcome of a reachability probe.
type ProbeResult struct {
	Server    packet.Addr
	ECN       ecn.Codepoint // codepoint the requests carried
	Reachable bool
	Attempts  int           // requests transmitted
	RTT       time.Duration // of the successful exchange
	// ResponseECN is the codepoint observed on the response packet. The
	// paper could not probe the return path (servers send not-ECT); the
	// field exists so the simulator's ground truth can be checked.
	ResponseECN ecn.Codepoint
	Response    Packet
}

// Probe performs the paper's UDP reachability measurement from a
// simulated host against one NTP server, invoking done exactly once. It
// drives itself on the host's simulator; the caller must run the
// simulation for progress.
func Probe(h *netsim.Host, server packet.Addr, cfg ProbeConfig, done func(ProbeResult)) {
	cfg = cfg.withDefaults()
	sim := h.Sim()

	res := ProbeResult{Server: server, ECN: cfg.ECN}
	var (
		port     uint16
		timer    *netsim.Timer
		finished bool
		// sent records (transmit timestamp, send time) per attempt. A
		// response is accepted if its origin matches ANY attempt: the
		// paper marks a server reachable "if an NTP response is received
		// after any request".
		sent []sentAttempt
	)

	finish := func() {
		if finished {
			return
		}
		finished = true
		if timer != nil {
			timer.Stop()
		}
		h.UnbindUDP(port)
		done(res)
	}

	var attempt func()

	var err error
	port, err = h.BindUDP(0, func(host *netsim.Host, ip packet.IPv4Header, udp packet.UDPHeader, payload []byte) {
		if finished || ip.Src != server {
			return
		}
		resp, perr := Parse(payload)
		if perr != nil || resp.Mode != ModeServer {
			return
		}
		for _, s := range sent {
			if resp.OriginTS == s.xmitTS {
				res.Reachable = true
				res.RTT = sim.Now() - s.at
				res.ResponseECN = ip.ECN()
				res.Response = resp
				finish()
				return
			}
		}
	})
	if err != nil {
		done(res)
		return
	}

	attempt = func() {
		if finished {
			return
		}
		if res.Attempts > cfg.Retransmissions {
			finish() // all attempts timed out: unreachable
			return
		}
		res.Attempts++
		now := sim.Now()
		// Perturb the timestamp fraction by the attempt number so each
		// retransmission is distinguishable even when the virtual clock
		// has not advanced.
		ts := TimestampFromSim(now) | uint64(res.Attempts)
		sent = append(sent, sentAttempt{xmitTS: ts, at: now})
		req := NewRequest(ts)
		// Send errors cannot occur for fixed-size NTP requests; if one
		// did, the timeout path retries regardless.
		_ = h.SendUDP(server, port, Port, cfg.TTL, cfg.ECN, req.Marshal(nil))
		timer = sim.After(cfg.Timeout, attempt)
	}
	attempt()
}

// sentAttempt pairs a request's transmit timestamp with its send time.
type sentAttempt struct {
	xmitTS uint64
	at     time.Duration
}
