package ntp

import (
	"testing"
	"time"

	"repro/internal/ecn"
	"repro/internal/netsim"
	"repro/internal/packet"
)

func BenchmarkPacketMarshal(b *testing.B) {
	p := NewRequest(0x1234567890)
	buf := make([]byte, 0, PacketLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = p.Marshal(buf[:0])
	}
}

func BenchmarkPacketParse(b *testing.B) {
	p := NewRequest(42)
	wire := p.Marshal(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProbeRoundTrip measures the paper's UDP measurement unit: one
// NTP reachability probe across a two-router path.
func BenchmarkProbeRoundTrip(b *testing.B) {
	sim := netsim.NewSim(1)
	n := netsim.NewNetwork(sim)
	r1 := n.AddRouter("r1", packet.AddrFrom4(10, 255, 0, 1), 64500)
	r2 := n.AddRouter("r2", packet.AddrFrom4(10, 255, 1, 1), 64501)
	n.Connect(r1, r2, time.Microsecond, 0)
	client, _ := n.AddHost("client", packet.AddrFrom4(10, 0, 0, 1))
	server, _ := n.AddHost("server", packet.AddrFrom4(10, 0, 1, 1))
	n.Attach(client, r1, time.Microsecond, 0)
	n.Attach(server, r2, time.Microsecond, 0)
	if err := n.ComputeRoutes(); err != nil {
		b.Fatal(err)
	}
	if err := NewServer(1).AttachSim(server); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reached := false
		Probe(client, server.Addr(), ProbeConfig{ECN: ecn.ECT0}, func(r ProbeResult) {
			reached = r.Reachable
		})
		sim.Run()
		if !reached {
			b.Fatal("probe failed")
		}
	}
}
