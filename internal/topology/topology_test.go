package topology

import (
	"testing"
	"time"

	"repro/internal/ecn"
	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/ntp"
	"repro/internal/packet"
)

func buildSmall(t *testing.T, seed int64) *World {
	t.Helper()
	sim := netsim.NewSim(seed)
	w, err := Build(sim, SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildSmallStructure(t *testing.T) {
	w := buildSmall(t, 1)
	if len(w.Servers) != 120 {
		t.Errorf("servers = %d", len(w.Servers))
	}
	if len(w.Vantages) != 13 {
		t.Errorf("vantages = %d, want the paper's 13", len(w.Vantages))
	}
	if w.DNSAddr.IsZero() {
		t.Error("no DNS directory")
	}
	if w.ASN.ASCount() < 20 {
		t.Errorf("only %d ASes", w.ASN.ASCount())
	}
	if len(w.BleachRouters) != 4 { // 2 border + 1 interior + 1 sometimes
		t.Errorf("bleach routers = %d", len(w.BleachRouters))
	}
}

func TestRegionDistribution(t *testing.T) {
	w := buildSmall(t, 2)
	counts := w.Geo.RegionCounts(w.ServerAddrs())
	cfg := SmallConfig()
	for region, want := range cfg.RegionServers {
		got := counts[region]
		if region == geo.Unknown {
			// Unknown servers have no geo record and fall into Unknown
			// via the lookup miss path.
			continue
		}
		if got != want {
			t.Errorf("region %s: %d servers, want %d", region, got, want)
		}
	}
	if counts[geo.Unknown] != cfg.RegionServers[geo.Unknown] {
		t.Errorf("unknown = %d, want %d", counts[geo.Unknown], cfg.RegionServers[geo.Unknown])
	}
}

func TestEveryServerReachableFromEveryVantage(t *testing.T) {
	w := buildSmall(t, 3)
	for _, v := range w.Vantages {
		for i, s := range w.Servers {
			if i%7 != 0 { // sample: full cross-product is slow in -race
				continue
			}
			if _, err := w.Net.PathRouters(v.Host, s.Addr); err != nil {
				t.Fatalf("%s cannot reach %s: %v", v.Name, s.Addr, err)
			}
		}
	}
}

func TestPathLengthsRealistic(t *testing.T) {
	w := buildSmall(t, 4)
	min, max := 1000, 0
	for _, v := range w.Vantages {
		for i, s := range w.Servers {
			if i%11 != 0 {
				continue
			}
			path, err := w.Net.PathRouters(v.Host, s.Addr)
			if err != nil {
				t.Fatal(err)
			}
			if len(path) < min {
				min = len(path)
			}
			if len(path) > max {
				max = len(path)
			}
		}
	}
	if min < 5 || max > 20 {
		t.Errorf("path lengths [%d, %d]; want Internet-like 5–20", min, max)
	}
}

func TestNTPServersAnswer(t *testing.T) {
	w := buildSmall(t, 5)
	v := w.Vantages[0]
	reached := 0
	var probeNext func(i int)
	probeNext = func(i int) {
		if i >= 10 {
			return
		}
		ntp.Probe(v.Host, w.Servers[i].Addr, ntp.ProbeConfig{ECN: ecn.ECT0}, func(r ntp.ProbeResult) {
			if r.Reachable {
				reached++
			}
			probeNext(i + 1)
		})
	}
	probeNext(0)
	w.Sim.Run()
	if reached != 10 {
		t.Errorf("reached %d of 10 servers (all online, clean links)", reached)
	}
}

func TestFirewalledServerGroundTruth(t *testing.T) {
	w := buildSmall(t, 6)
	cfg := SmallConfig()
	var ect, notect, scopedNot, scopedEct, flaky int
	for _, s := range w.Servers {
		if s.ECTUDPFirewalled {
			ect++
		}
		if s.NotECTFirewalled {
			notect++
		}
		if s.ScopedNotECT {
			scopedNot++
		}
		if s.ScopedECT {
			scopedEct++
		}
		if s.Flaky {
			flaky++
		}
	}
	if ect != cfg.ECTUDPFirewalledServers || notect != cfg.NotECTFirewalledServers ||
		scopedNot != cfg.SourceScopedNotECTServers || scopedEct != cfg.SourceScopedECTServers ||
		flaky != cfg.FlakyServers {
		t.Errorf("special counts = %d/%d/%d/%d/%d", ect, notect, scopedNot, scopedEct, flaky)
	}
}

func TestECTFirewallBlocksOnlyECT(t *testing.T) {
	w := buildSmall(t, 7)
	var target *Server
	for _, s := range w.Servers {
		if s.ECTUDPFirewalled {
			target = s
			break
		}
	}
	if target == nil {
		t.Fatal("no firewalled server")
	}
	v := w.Vantages[0]
	var notECT, ect ntp.ProbeResult
	ntp.Probe(v.Host, target.Addr, ntp.ProbeConfig{ECN: ecn.NotECT}, func(r ntp.ProbeResult) {
		notECT = r
		ntp.Probe(v.Host, target.Addr, ntp.ProbeConfig{ECN: ecn.ECT0}, func(r2 ntp.ProbeResult) { ect = r2 })
	})
	w.Sim.Run()
	if !notECT.Reachable {
		t.Error("not-ECT probe blocked by ECT firewall")
	}
	if ect.Reachable {
		t.Error("ECT(0) probe passed the site firewall")
	}
}

func TestNotECTFirewallAsymmetry(t *testing.T) {
	// The Figure 3b server: unreachable with not-ECT UDP but reachable
	// with ECT(0) — which requires the site firewall to pass the
	// server's own (not-ECT) replies.
	w := buildSmall(t, 14)
	var target *Server
	for _, s := range w.Servers {
		if s.NotECTFirewalled {
			target = s
			break
		}
	}
	if target == nil {
		t.Fatal("no not-ECT-firewalled server")
	}
	v := w.Vantages[0]
	var plain, ect ntp.ProbeResult
	ntp.Probe(v.Host, target.Addr, ntp.ProbeConfig{ECN: ecn.NotECT}, func(r ntp.ProbeResult) {
		plain = r
		ntp.Probe(v.Host, target.Addr, ntp.ProbeConfig{ECN: ecn.ECT0}, func(r2 ntp.ProbeResult) { ect = r2 })
	})
	w.Sim.Run()
	if plain.Reachable {
		t.Error("not-ECT probe passed a drop-not-ECT firewall")
	}
	if !ect.Reachable {
		t.Error("ECT(0) probe blocked; reply direction must pass the site firewall")
	}
}

func TestScopedECTFirewallOnlyAffectsScopedVantages(t *testing.T) {
	w := buildSmall(t, 8)
	var target *Server
	for _, s := range w.Servers {
		if s.ScopedECT {
			target = s
			break
		}
	}
	if target == nil {
		t.Fatal("no scoped server")
	}
	inScope, _ := w.VantageByName("EC2 Sao Paulo")
	outScope, _ := w.VantageByName("EC2 California")

	var fromIn, fromOut ntp.ProbeResult
	ntp.Probe(inScope.Host, target.Addr, ntp.ProbeConfig{ECN: ecn.ECT0}, func(r ntp.ProbeResult) {
		fromIn = r
		ntp.Probe(outScope.Host, target.Addr, ntp.ProbeConfig{ECN: ecn.ECT0}, func(r2 ntp.ProbeResult) { fromOut = r2 })
	})
	w.Sim.Run()
	if fromIn.Reachable {
		t.Error("scoped firewall passed ECT from in-scope vantage")
	}
	if !fromOut.Reachable {
		t.Error("scoped firewall blocked ECT from out-of-scope vantage")
	}
}

func TestWebServerFractions(t *testing.T) {
	sim := netsim.NewSim(9)
	cfg := DefaultConfig() // statistics need the full population
	w, err := Build(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	web, webECN := 0, 0
	for _, s := range w.Servers {
		if s.Web {
			web++
			if s.WebECN {
				webECN++
			}
		}
	}
	webFrac := float64(web) / float64(len(w.Servers))
	if webFrac < cfg.WebServerFraction-0.03 || webFrac > cfg.WebServerFraction+0.03 {
		t.Errorf("web fraction = %.3f, want ≈ %.3f", webFrac, cfg.WebServerFraction)
	}
	ecnFrac := float64(webECN) / float64(web)
	if ecnFrac < cfg.TCPECNFraction-0.04 || ecnFrac > cfg.TCPECNFraction+0.04 {
		t.Errorf("ECN fraction = %.3f, want ≈ %.3f", ecnFrac, cfg.TCPECNFraction)
	}
}

func TestApplyTraceConditions(t *testing.T) {
	w := buildSmall(t, 10)
	v := w.Vantages[0]
	rng := w.Sim.RNG()
	w.ApplyTraceConditions(v, Batch1, rng)
	online1 := 0
	for _, s := range w.Servers {
		if s.Host.Online() {
			online1++
		}
	}
	if online1 == 0 || online1 == len(w.Servers) {
		t.Errorf("batch1 online = %d of %d; churn not applied", online1, len(w.Servers))
	}
	// Vantage access loss must be within [base, base+jitter].
	loss := v.Host.Uplink().Loss(v.Host)
	if loss < v.BaseLoss || loss > v.BaseLoss+v.LossJitter+1e-9 {
		t.Errorf("vantage loss = %v, want in [%v, %v]", loss, v.BaseLoss, v.BaseLoss+v.LossJitter)
	}
	// Batch 2 should, on average over several rolls, have fewer online.
	sum1, sum2 := 0, 0
	for i := 0; i < 10; i++ {
		w.ApplyTraceConditions(v, Batch1, rng)
		for _, s := range w.Servers {
			if s.Host.Online() {
				sum1++
			}
		}
		w.ApplyTraceConditions(v, Batch2, rng)
		for _, s := range w.Servers {
			if s.Host.Online() {
				sum2++
			}
		}
	}
	if sum2 >= sum1 {
		t.Errorf("batch2 online (%d) not below batch1 (%d) across 10 rolls", sum2, sum1)
	}
}

func TestDeterministicBuild(t *testing.T) {
	a := buildSmall(t, 42)
	b := buildSmall(t, 42)
	if len(a.Servers) != len(b.Servers) {
		t.Fatal("server counts differ")
	}
	for i := range a.Servers {
		sa, sb := a.Servers[i], b.Servers[i]
		if sa.Addr != sb.Addr || sa.Web != sb.Web || sa.WebECN != sb.WebECN ||
			sa.ECTUDPFirewalled != sb.ECTUDPFirewalled || sa.Flaky != sb.Flaky {
			t.Fatalf("server %d differs between identical seeds", i)
		}
	}
	if len(a.BleachRouters) != len(b.BleachRouters) {
		t.Error("bleach placement differs")
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	sim := netsim.NewSim(1)
	cfg := SmallConfig()
	cfg.Servers = 10 // region counts no longer sum
	if _, err := Build(sim, cfg); err == nil {
		t.Error("bad region sum accepted")
	}
	cfg = SmallConfig()
	cfg.FlakyServers = cfg.Servers
	if _, err := Build(sim, cfg); err == nil {
		t.Error("overfull special population accepted")
	}
}

func TestDNSDirectoryCoversPool(t *testing.T) {
	w := buildSmall(t, 11)
	if got := w.Directory.ZoneSize("pool.ntp.org"); got != len(w.Servers) {
		t.Errorf("apex zone = %d, want %d", got, len(w.Servers))
	}
	// Spot-check a country zone exists.
	total := 0
	for _, z := range w.CountryZones {
		total += w.Directory.ZoneSize(z + ".pool.ntp.org")
	}
	if total == 0 {
		t.Error("no country zone members")
	}
}

func TestASBoundaryGroundTruth(t *testing.T) {
	w := buildSmall(t, 12)
	// Bleach routers marked "border" must have their stub's transit
	// neighbour in a different AS; "interior" in the same AS.
	routers := w.Net.Routers()
	for id, kind := range w.BleachRouters {
		r := routers[id]
		if kind == "interior" || kind == "sometimes-interior" {
			continue
		}
		// Border routers: at least one neighbour with a different ASN.
		// (Verified indirectly through the ASN table.)
		info, ok := w.ASN.Lookup(r.Addr())
		if !ok {
			t.Errorf("bleach router %s unmapped", r.Addr())
			continue
		}
		_ = info
	}
}

func TestVantageLossCalibrationOrder(t *testing.T) {
	w := buildSmall(t, 13)
	get := func(name string) *Vantage {
		v, ok := w.VantageByName(name)
		if !ok {
			t.Fatalf("vantage %q missing", name)
		}
		return v
	}
	mcq := get("McQuistin home")
	perkins := get("Perkins home")
	wireless := get("U. Glasgow wireless")
	wired := get("U. Glasgow wired")
	if !(mcq.BaseLoss > wireless.BaseLoss && wireless.BaseLoss > perkins.BaseLoss && perkins.BaseLoss > wired.BaseLoss) {
		t.Error("vantage loss ordering violates the paper's observations")
	}
}

func TestBuildTime(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale build in -short mode")
	}
	sim := netsim.NewSim(99)
	start := time.Now()
	w, err := Build(sim, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if len(w.Servers) != 2500 {
		t.Errorf("servers = %d", len(w.Servers))
	}
	if elapsed > 30*time.Second {
		t.Errorf("full build took %v", elapsed)
	}
	t.Logf("full world: %s in %v", w, elapsed)
	_ = packet.Addr{}
}
