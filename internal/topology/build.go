package topology

import (
	"fmt"
	"sort"

	"repro/internal/aqm"
	"repro/internal/asn"
	"repro/internal/dnspool"
	"repro/internal/geo"
	"repro/internal/httpmin"
	"repro/internal/iptable"
	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/ntp"
	"repro/internal/packet"
	"repro/internal/tcpsim"
)

// Address plan: each autonomous system i owns the /16 at 16.0.0.0 +
// i<<16. Within an AS, routers live in .1.0/24 and hosts in .2.0/24.
// The space is synthetic — the simulation owns the whole address plane.
const addrBase = uint32(16) << 24

func asPrefix(asIdx int) iptable.Prefix {
	return iptable.MakePrefix(packet.AddrFromUint32(addrBase+uint32(asIdx)<<16), 16)
}

func routerAddr(asIdx, r int) packet.Addr {
	return packet.AddrFromUint32(addrBase + uint32(asIdx)<<16 + 0x0100 + uint32(r))
}

func hostAddr(asIdx, h int) packet.Addr {
	return packet.AddrFromUint32(addrBase + uint32(asIdx)<<16 + 0x0200 + uint32(h))
}

func hostSubnet(asIdx int) iptable.Prefix {
	return iptable.MakePrefix(packet.AddrFromUint32(addrBase+uint32(asIdx)<<16+0x0200), 24)
}

// builder carries generation state.
type builder struct {
	cfg Config
	sim *netsim.Sim
	w   *World

	// rec, when non-nil, captures every stochastic build decision so a
	// Blueprint can replay the construction without consuming RNG state.
	rec *decisionTrace
	// rep, when non-nil, substitutes recorded decisions for fresh draws
	// (Blueprint.Instantiate); repPos is the roll read cursor.
	rep    *decisionTrace
	repPos int
	// shared, when non-nil, provides the frozen read-only world parts
	// (geo, ASN, DNS membership, routes); the builder then skips
	// regenerating them.
	shared *sharedParts

	nextAS int
	// tier-1 core routers per tier-1 AS.
	tier1 [][]*netsim.Router
	// transits per region: each entry is the downstream border router.
	transitDown map[geo.Region][]*netsim.Router
	transitIdx  map[geo.Region]int
	// transitCoreDown collects each transit AS's core↔down link, the
	// placement site of the congested-transit scenario's bottlenecks.
	transitCoreDown []transitLink

	stubs []*stubInfo
}

// transitLink remembers a transit-internal link and its endpoints so
// bottlenecks can name directions.
type transitLink struct {
	link       *netsim.Link
	core, down *netsim.Router
}

// stubInfo remembers a generated edge network.
type stubInfo struct {
	asIdx    int
	region   geo.Region
	country  string
	border   *netsim.Router
	access   *netsim.Router
	servers  []*Server
	hasQuirk bool // hosts a firewalled/scoped server: excluded from bleaching
}

// Build generates a world on the given simulator, drawing every
// stochastic choice from the simulator's PRNG. For campaigns that build
// one world per shard, Compile + Blueprint.Instantiate produce identical
// worlds while paying the generation and routing cost once.
func Build(sim *netsim.Sim, cfg Config) (*World, error) {
	return newBuilder(sim, cfg).run()
}

func newBuilder(sim *netsim.Sim, cfg Config) *builder {
	return &builder{
		cfg: cfg,
		sim: sim,
		w: &World{
			Cfg:           cfg,
			Sim:           sim,
			Net:           netsim.NewNetwork(sim),
			Geo:           &geo.DB{},
			ASN:           asn.NewTable(),
			Directory:     dnspool.NewDirectory(),
			BleachRouters: make(map[int]string),
			byAddr:        make(map[packet.Addr]*Server),
		},
		transitDown: make(map[geo.Region][]*netsim.Router),
		transitIdx:  make(map[geo.Region]int),
	}
}

func (b *builder) run() (*World, error) {
	if err := validate(b.cfg); err != nil {
		return nil, err
	}
	if b.shared != nil {
		// Replay over a frozen blueprint: the read-only lookups are
		// shared as-is (the builder consults ASN during construction, so
		// they install up front); the DNS directory is cloned because
		// its round-robin cursors are per-simulation state.
		b.w.Geo = b.shared.geo
		b.w.ASN = b.shared.asn
		b.w.Directory = b.shared.dir.Clone()
		b.w.CountryZones = b.shared.zones
	}

	b.buildTier1s()
	b.buildTransits()
	if err := b.buildStubsAndServers(); err != nil {
		return nil, err
	}
	if err := b.buildVantages(); err != nil {
		return nil, err
	}
	if err := b.buildDNS(); err != nil {
		return nil, err
	}
	b.placeFirewalls()
	b.placeBleachers()
	b.assignServerRoles()
	if err := b.placeBottlenecks(); err != nil {
		return nil, err
	}

	if b.shared != nil {
		if err := b.w.Net.ImportRoutes(b.shared.routes); err != nil {
			return nil, err
		}
	} else if err := b.w.Net.ComputeRoutes(); err != nil {
		return nil, err
	}
	return b.w, nil
}

// drawPerm returns the firewall-placement permutation: a fresh draw from
// the simulation PRNG (recorded when compiling a blueprint), or the
// recorded one on replay.
func (b *builder) drawPerm(n int) []int {
	if b.rep != nil {
		return b.rep.perm
	}
	perm := b.sim.RNG().Perm(n)
	if b.rec != nil {
		b.rec.perm = perm
	}
	return perm
}

// drawFloat returns the next role-assignment roll, fresh or replayed.
func (b *builder) drawFloat() float64 {
	if b.rep != nil {
		v := b.rep.rolls[b.repPos]
		b.repPos++
		return v
	}
	v := b.sim.RNG().Float64()
	if b.rec != nil {
		b.rec.rolls = append(b.rec.rolls, v)
	}
	return v
}

func validate(cfg Config) error {
	total := 0
	for _, n := range cfg.RegionServers {
		total += n
	}
	if total != cfg.Servers {
		return fmt.Errorf("topology: region counts sum to %d, want %d", total, cfg.Servers)
	}
	special := cfg.ECTUDPFirewalledServers + cfg.NotECTFirewalledServers +
		cfg.SourceScopedNotECTServers + cfg.SourceScopedECTServers + cfg.FlakyServers
	if special > cfg.Servers/2 {
		return fmt.Errorf("topology: %d special servers exceed half the pool", special)
	}
	if (cfg.CongestedVantageAccess || cfg.CongestedTransit) && cfg.BottleneckRate <= 0 {
		return fmt.Errorf("topology: congested placement requires BottleneckRate > 0")
	}
	return nil
}

// allocAS reserves the next AS index and registers its prefix. On
// blueprint replay the shared ASN table already holds the entry.
func (b *builder) allocAS(name string, tier int) (int, asn.ASN) {
	idx := b.nextAS
	b.nextAS++
	number := asn.ASN(1000 + idx)
	if b.shared == nil {
		b.w.ASN.Add(asPrefix(idx), asn.Info{ASN: number, Name: name, Tier: tier})
	}
	return idx, number
}

// regionsInOrder iterates regions deterministically (map order is not).
func (b *builder) regionsInOrder() []geo.Region {
	var out []geo.Region
	for _, r := range geo.Regions() {
		if b.cfg.RegionServers[r] > 0 {
			out = append(out, r)
		}
	}
	return out
}

// buildTier1s creates the core clique: Tier1Count ASes of four routers
// each, rings internally, full-mesh peering externally.
func (b *builder) buildTier1s() {
	for t := 0; t < b.cfg.Tier1Count; t++ {
		asIdx, number := b.allocAS(fmt.Sprintf("tier1-%d", t), 1)
		var rs []*netsim.Router
		for r := 0; r < 4; r++ {
			rs = append(rs, b.w.Net.AddRouter(
				fmt.Sprintf("t1-%d-r%d", t, r), routerAddr(asIdx, r), uint32(number)))
		}
		for r := 0; r < 4; r++ {
			b.w.Net.Connect(rs[r], rs[(r+1)%4], b.cfg.CoreDelay/4, 0)
		}
		b.tier1 = append(b.tier1, rs)
	}
	for a := 0; a < len(b.tier1); a++ {
		for c := a + 1; c < len(b.tier1); c++ {
			b.w.Net.Connect(b.tier1[a][c%4], b.tier1[c][a%4], b.cfg.CoreDelay, 0)
		}
	}
}

// buildTransits creates regional transit ASes, enough for the region's
// stubs, each dual-homed to two tier-1s.
func (b *builder) buildTransits() {
	for _, region := range b.regionsInOrder() {
		stubs := (b.cfg.RegionServers[region] + b.cfg.ServersPerStub - 1) / b.cfg.ServersPerStub
		transits := (stubs + b.cfg.StubsPerTransit - 1) / b.cfg.StubsPerTransit
		for t := 0; t < transits; t++ {
			asIdx, number := b.allocAS(fmt.Sprintf("transit-%s-%d", regionSlug(region), t), 2)
			up := b.w.Net.AddRouter(fmt.Sprintf("tr-%d-up", asIdx), routerAddr(asIdx, 0), uint32(number))
			core := b.w.Net.AddRouter(fmt.Sprintf("tr-%d-core", asIdx), routerAddr(asIdx, 1), uint32(number))
			down := b.w.Net.AddRouter(fmt.Sprintf("tr-%d-down", asIdx), routerAddr(asIdx, 2), uint32(number))
			b.w.Net.Connect(up, core, b.cfg.TransitDelay/2, 0)
			coreDown := b.w.Net.Connect(core, down, b.cfg.TransitDelay/2, 0)
			b.transitCoreDown = append(b.transitCoreDown, transitLink{link: coreDown, core: core, down: down})
			// Dual-home to two tier-1s, spread deterministically.
			t1a := b.tier1[asIdx%len(b.tier1)]
			t1b := b.tier1[(asIdx+1)%len(b.tier1)]
			b.w.Net.Connect(up, t1a[asIdx%4], b.cfg.TransitDelay, 0)
			b.w.Net.Connect(up, t1b[(asIdx+2)%4], b.cfg.TransitDelay, 0)
			b.transitDown[region] = append(b.transitDown[region], down)
		}
	}
}

// nextTransit cycles a region's transits for stub homing.
func (b *builder) nextTransit(region geo.Region) *netsim.Router {
	list := b.transitDown[region]
	i := b.transitIdx[region]
	b.transitIdx[region] = i + 1
	return list[i%len(list)]
}

// buildStubsAndServers creates edge networks and their pool servers, and
// registers geo / DNS entries.
func (b *builder) buildStubsAndServers() error {
	for _, region := range b.regionsInOrder() {
		remaining := b.cfg.RegionServers[region]
		countries := regionCountries[region]
		stubNum := 0
		for remaining > 0 {
			n := b.cfg.ServersPerStub
			if n > remaining {
				n = remaining
			}
			remaining -= n
			country := countries[stubNum%len(countries)]
			if err := b.buildStub(region, country, stubNum, n); err != nil {
				return err
			}
			stubNum++
		}
	}
	return nil
}

func (b *builder) buildStub(region geo.Region, country string, stubNum, nServers int) error {
	asIdx, number := b.allocAS(fmt.Sprintf("stub-%s-%d", regionSlug(region), stubNum), 3)
	border := b.w.Net.AddRouter(fmt.Sprintf("st-%d-border", asIdx), routerAddr(asIdx, 0), uint32(number))
	access := b.w.Net.AddRouter(fmt.Sprintf("st-%d-access", asIdx), routerAddr(asIdx, 1), uint32(number))
	b.w.Net.Connect(border, access, b.cfg.EdgeDelay/2, 0)
	b.w.Net.Connect(border, b.nextTransit(region), b.cfg.EdgeDelay, 0)

	if region != geo.Unknown && b.shared == nil {
		coords := regionCoords[region]
		b.w.Geo.Add(hostSubnet(asIdx), geo.Location{
			Region:  region,
			Country: countryCode(country),
			City:    fmt.Sprintf("%s-%d", regionSlug(region), stubNum),
			Lat:     coords[0] + float64(stubNum%7) - 3,
			Lon:     coords[1] + float64(stubNum%11) - 5,
		})
	}

	stub := &stubInfo{asIdx: asIdx, region: region, country: country, border: border, access: access}
	for i := 0; i < nServers; i++ {
		addr := hostAddr(asIdx, i)
		host, err := b.w.Net.AddHost(fmt.Sprintf("ntp-%s", addr), addr)
		if err != nil {
			return err
		}
		if _, err := b.w.Net.Attach(host, access, b.cfg.AccessDelay, 0); err != nil {
			return err
		}
		srv := &Server{
			Host:    host,
			Addr:    addr,
			Region:  region,
			Country: countryCode(country),
			NTP:     ntp.NewServer(addr.Uint32()),
		}
		if err := srv.NTP.AttachSim(host); err != nil {
			return err
		}
		// Pool DNS registration: country zone plus region zone. The
		// cloned blueprint directory already carries the membership.
		if b.shared == nil {
			var zones []string
			if country != "" {
				zones = append(zones, country)
			}
			if z, ok := regionZone[region]; ok {
				zones = append(zones, z)
			}
			b.w.Directory.AddServer(addr, zones...)
		}
		b.w.Servers = append(b.w.Servers, srv)
		b.w.byAddr[addr] = srv
		stub.servers = append(stub.servers, srv)
	}
	b.stubs = append(b.stubs, stub)
	return nil
}

// vantageSpec describes one of the paper's 13 locations.
type vantageSpec struct {
	name   string
	kind   VantageKind
	region geo.Region
	// base loss and jitter calibrate the access network (DESIGN.md §6):
	// McQuistin's home shows heavy access congestion; the Glasgow
	// wireless network is noisy; EC2 is clean.
	baseLoss, lossJitter float64
}

// vantageSpecs lists the locations in the paper's Table 2 order (homes,
// campus, then EC2 alphabetically by the paper's labels).
var vantageSpecs = []vantageSpec{
	{"Perkins home", KindHome, geo.Europe, 0.010, 0.010},
	{"McQuistin home", KindHome, geo.Europe, 0.395, 0.025},
	{"U. Glasgow wired", KindCampusWired, geo.Europe, 0.004, 0.004},
	{"U. Glasgow wireless", KindCampusWireless, geo.Europe, 0.180, 0.200},
	{"EC2 California", KindCloud, geo.NorthAmerica, 0.002, 0.002},
	{"EC2 Frankfurt", KindCloud, geo.Europe, 0.002, 0.002},
	{"EC2 Ireland", KindCloud, geo.Europe, 0.002, 0.002},
	{"EC2 Oregon", KindCloud, geo.NorthAmerica, 0.002, 0.002},
	{"EC2 Sao Paulo", KindCloud, geo.SouthAmerica, 0.002, 0.002},
	{"EC2 Singapore", KindCloud, geo.Asia, 0.002, 0.002},
	{"EC2 Sydney", KindCloud, geo.Australia, 0.002, 0.002},
	{"EC2 Tokyo", KindCloud, geo.Asia, 0.002, 0.002},
	{"EC2 Virginia", KindCloud, geo.NorthAmerica, 0.002, 0.002},
}

// scopedECTVantages are the cloud locations whose sources trigger the
// source-scoped ECT-UDP firewalls (chosen to match Table 2's higher
// counts at Sao Paulo/Virginia/Oregon/Frankfurt/Sydney).
var scopedECTVantages = map[string]bool{
	"EC2 Sao Paulo": true, "EC2 Virginia": true, "EC2 Oregon": true,
	"EC2 Frankfurt": true, "EC2 Sydney": true,
}

// VantageNames lists the 13 vantage points in the paper's Table 2 order
// without building a world. The sharded campaign engine partitions its
// probe plan on this order, so shard numbering is stable across runs.
func VantageNames() []string {
	out := make([]string, len(vantageSpecs))
	for i, spec := range vantageSpecs {
		out[i] = spec.name
	}
	return out
}

// buildVantages creates the measurement hosts: home ISP eyeball ASes, a
// campus AS with wired and wireless access, and nine cloud-region ASes.
func (b *builder) buildVantages() error {
	// The campus AS is shared by the two Glasgow vantages.
	var campusBorder *netsim.Router
	var campusASIdx int

	for _, spec := range vantageSpecs {
		var attachTo *netsim.Router
		var asIdx int
		switch spec.kind {
		case KindHome:
			idx, number := b.allocAS("isp-"+slug(spec.name), 0)
			border := b.w.Net.AddRouter(fmt.Sprintf("isp-%d-border", idx), routerAddr(idx, 0), uint32(number))
			access := b.w.Net.AddRouter(fmt.Sprintf("isp-%d-access", idx), routerAddr(idx, 1), uint32(number))
			b.w.Net.Connect(border, access, b.cfg.EdgeDelay, 0)
			b.w.Net.Connect(border, b.nextTransit(spec.region), b.cfg.EdgeDelay, 0)
			attachTo, asIdx = access, idx
		case KindCampusWired, KindCampusWireless:
			if campusBorder == nil {
				idx, number := b.allocAS("campus-glasgow", 0)
				campusASIdx = idx
				campusBorder = b.w.Net.AddRouter(fmt.Sprintf("campus-%d-border", idx), routerAddr(idx, 0), uint32(number))
				b.w.Net.Connect(campusBorder, b.nextTransit(geo.Europe), b.cfg.EdgeDelay, 0)
			}
			r := 1
			if spec.kind == KindCampusWireless {
				r = 2
			}
			num, _ := b.w.ASN.Lookup(routerAddr(campusASIdx, 0))
			access := b.w.Net.AddRouter(fmt.Sprintf("campus-%d-r%d", campusASIdx, r), routerAddr(campusASIdx, r), uint32(num.ASN))
			b.w.Net.Connect(campusBorder, access, b.cfg.EdgeDelay/2, 0)
			attachTo, asIdx = access, campusASIdx
		case KindCloud:
			idx, number := b.allocAS("cloud-"+slug(spec.name), 0)
			border := b.w.Net.AddRouter(fmt.Sprintf("cloud-%d-border", idx), routerAddr(idx, 0), uint32(number))
			access := b.w.Net.AddRouter(fmt.Sprintf("cloud-%d-access", idx), routerAddr(idx, 1), uint32(number))
			b.w.Net.Connect(border, access, b.cfg.AccessDelay, 0)
			// Clouds peer directly with two tier-1s.
			b.w.Net.Connect(border, b.tier1[idx%len(b.tier1)][idx%4], b.cfg.TransitDelay, 0)
			b.w.Net.Connect(border, b.tier1[(idx+2)%len(b.tier1)][(idx+1)%4], b.cfg.TransitDelay, 0)
			attachTo, asIdx = access, idx
		}

		hostIdxInAS := 0
		if spec.kind == KindCampusWireless {
			hostIdxInAS = 1 // wired host took slot 0
		}
		addr := hostAddr(asIdx, hostIdxInAS)
		host, err := b.w.Net.AddHost("vp-"+slug(spec.name), addr)
		if err != nil {
			return err
		}
		if _, err := b.w.Net.Attach(host, attachTo, b.cfg.AccessDelay, 0); err != nil {
			return err
		}
		b.w.Vantages = append(b.w.Vantages, &Vantage{
			Name:       spec.name,
			Kind:       spec.kind,
			Region:     spec.region,
			Host:       host,
			Stack:      tcpsim.NewStack(host),
			BaseLoss:   spec.baseLoss,
			LossJitter: spec.lossJitter,
		})
	}
	return nil
}

// buildDNS creates the pool directory host in an infrastructure AS homed
// to two tier-1s.
func (b *builder) buildDNS() error {
	idx, number := b.allocAS("pool-infra", 0)
	border := b.w.Net.AddRouter(fmt.Sprintf("infra-%d-border", idx), routerAddr(idx, 0), uint32(number))
	b.w.Net.Connect(border, b.tier1[0][0], b.cfg.TransitDelay, 0)
	b.w.Net.Connect(border, b.tier1[1][1], b.cfg.TransitDelay, 0)
	addr := hostAddr(idx, 0)
	host, err := b.w.Net.AddHost("pool-dns", addr)
	if err != nil {
		return err
	}
	if _, err := b.w.Net.Attach(host, border, b.cfg.AccessDelay, 0); err != nil {
		return err
	}
	if err := b.w.Directory.AttachSim(host); err != nil {
		return err
	}
	b.w.DNSAddr = addr

	if b.shared != nil {
		return nil // CountryZones installed from the blueprint
	}
	zoneSet := map[string]bool{}
	for _, region := range b.regionsInOrder() {
		for _, c := range regionCountries[region] {
			if c != "" {
				zoneSet[c] = true
			}
		}
		if z, ok := regionZone[region]; ok {
			zoneSet[z] = true
		}
	}
	for z := range zoneSet {
		b.w.CountryZones = append(b.w.CountryZones, z)
	}
	sort.Strings(b.w.CountryZones)
	return nil
}

// cloudPrefixes returns the host subnets of the named cloud vantages.
func (b *builder) cloudPrefixes(names map[string]bool) []iptable.Prefix {
	var out []iptable.Prefix
	for _, v := range b.w.Vantages {
		if v.Kind == KindCloud && names[v.Name] {
			a := v.Host.Addr().Uint32()
			out = append(out, iptable.MakePrefix(packet.AddrFromUint32(a), 16))
		}
	}
	return out
}

// allCloudPrefixes covers every EC2 vantage.
func (b *builder) allCloudPrefixes() []iptable.Prefix {
	names := map[string]bool{}
	for _, v := range b.w.Vantages {
		if v.Kind == KindCloud {
			names[v.Name] = true
		}
	}
	return b.cloudPrefixes(names)
}

// placeFirewalls selects the special servers and inserts their dedicated
// site-firewall routers.
func (b *builder) placeFirewalls() {
	perm := b.drawPerm(len(b.w.Servers))
	take := func(n int) []*Server {
		out := make([]*Server, 0, n)
		for len(out) < n && len(perm) > 0 {
			s := b.w.Servers[perm[0]]
			perm = perm[1:]
			out = append(out, s)
		}
		return out
	}

	for _, s := range take(b.cfg.ECTUDPFirewalledServers) {
		s.ECTUDPFirewalled = true
		b.insertSiteFirewall(s, &middlebox.ECTUDPDropper{})
	}
	for _, s := range take(b.cfg.NotECTFirewalledServers) {
		s.NotECTFirewalled = true
		b.insertSiteFirewall(s, &middlebox.NotECTUDPDropper{})
	}
	scopedAll := b.allCloudPrefixes()
	for _, s := range take(b.cfg.SourceScopedNotECTServers) {
		s.ScopedNotECT = true
		b.insertSiteFirewall(s, &middlebox.ScopedBySource{
			Prefixes: scopedAll, Inner: &middlebox.NotECTUDPDropper{}})
	}
	scopedSome := b.cloudPrefixes(scopedECTVantages)
	for _, s := range take(b.cfg.SourceScopedECTServers) {
		s.ScopedECT = true
		b.insertSiteFirewall(s, &middlebox.ScopedBySource{
			Prefixes: scopedSome, Inner: &middlebox.ECTUDPDropper{}})
	}
	for _, s := range take(b.cfg.FlakyServers) {
		s.Flaky = true
		b.markQuirk(s)
	}
}

// insertSiteFirewall re-homes a server behind a dedicated firewall
// router carrying the given policy, modelling a site middlebox one hop
// in front of the destination — where the paper concluded the ECT drops
// live ("the same set of servers ... from every location, suggesting the
// packets are dropped near to the destination"). The policy is scoped to
// traffic destined to the server: site firewalls filter inbound, and the
// server's own replies must pass.
func (b *builder) insertSiteFirewall(s *Server, policy netsim.Policy) {
	policy = &middlebox.ScopedByDest{
		Prefixes: []iptable.Prefix{iptable.MakePrefix(s.Addr, 32)},
		Inner:    policy,
	}
	stub := b.stubOf(s)
	// The firewall router joins the stub's AS, numbered after existing
	// routers (slot 2+i).
	info, _ := b.w.ASN.Lookup(s.Addr)
	slot := 2
	for {
		taken := false
		addr := routerAddr(stub.asIdx, slot)
		for _, r := range b.w.Net.Routers() {
			if r.Addr() == addr {
				taken = true
				break
			}
		}
		if !taken {
			break
		}
		slot++
	}
	fw := b.w.Net.AddRouter(fmt.Sprintf("fw-%s", s.Addr), routerAddr(stub.asIdx, slot), uint32(info.ASN))
	fw.AddPolicy(policy)
	b.w.Net.Connect(stub.access, fw, b.cfg.AccessDelay/2, 0)
	b.rehome(s, fw)
	b.markQuirk(s)
}

// rehome moves a server's access link behind the given firewall router.
func (b *builder) rehome(s *Server, to *netsim.Router) {
	if _, err := b.w.Net.ReplaceAttachment(s.Host, to, b.cfg.AccessDelay); err != nil {
		// Attachment state is builder-controlled; failure here is a
		// programming error worth failing loudly on.
		panic(err)
	}
}

func (b *builder) markQuirk(s *Server) {
	if stub := b.stubOf(s); stub != nil {
		stub.hasQuirk = true
	}
}

func (b *builder) stubOf(s *Server) *stubInfo {
	for _, st := range b.stubs {
		if asPrefix(st.asIdx).Contains(s.Addr) {
			return st
		}
	}
	return nil
}

// placeBleachers attaches ECN bleaching policies to stub routers:
// border placements create AS-boundary strip locations, interior ones do
// not, and "sometimes" placements flap.
func (b *builder) placeBleachers() {
	var clean []*stubInfo
	for _, st := range b.stubs {
		if !st.hasQuirk && st.region != geo.Unknown {
			clean = append(clean, st)
		}
	}
	// Deterministic spread: step through clean stubs at a stride so the
	// bleached edges scatter across regions; collisions skip forward to
	// the next unused stub.
	want := b.cfg.BleachedBorderStubs + b.cfg.BleachedInteriorStubs + b.cfg.SometimesBleachedStubs
	if want > len(clean) {
		want = len(clean)
	}
	stride := len(clean)/(want+1) + 1
	used := make(map[*stubInfo]bool, want)
	cursor := 0
	pick := func(int) *stubInfo {
		for tries := 0; tries < len(clean); tries++ {
			st := clean[(cursor*stride+tries)%len(clean)]
			if !used[st] {
				used[st] = true
				cursor++
				return st
			}
		}
		return nil
	}

	n := 0
	mark := func(st *stubInfo, r *netsim.Router, kind string, prob float64) {
		r.AddPolicy(&middlebox.ECNBleacher{Probability: prob, RNG: b.sim.RNG()})
		b.w.BleachRouters[r.ID()] = kind
		st.hasQuirk = true
		for _, s := range st.servers {
			s.BleachedPath = true
		}
	}
	for i := 0; i < b.cfg.BleachedBorderStubs; i, n = i+1, n+1 {
		if st := pick(n); st != nil {
			mark(st, st.border, "border", 1)
		}
	}
	for i := 0; i < b.cfg.BleachedInteriorStubs; i, n = i+1, n+1 {
		if st := pick(n); st != nil {
			mark(st, st.access, "interior", 1)
		}
	}
	for i := 0; i < b.cfg.SometimesBleachedStubs; i, n = i+1, n+1 {
		st := pick(n)
		if st == nil {
			continue
		}
		if i%2 == 0 {
			mark(st, st.border, "sometimes-border", 0.5)
		} else {
			mark(st, st.access, "sometimes-interior", 0.5)
		}
	}
}

// assignServerRoles rolls web-server presence and TCP ECN capability.
// Sites that firewall ECT UDP are given a lower ECN-negotiation rate —
// plausibly the same conservative administration — which produces Table
// 2's per-location counts while leaving the overall correlation weak
// (most UDP-ECT-blocked servers still negotiate ECN over TCP).
func (b *builder) assignServerRoles() {
	for _, s := range b.w.Servers {
		if b.drawFloat() >= b.cfg.WebServerFraction {
			continue
		}
		s.Web = true
		ecnFrac := b.cfg.TCPECNFraction
		if s.ECTUDPFirewalled || s.ScopedECT {
			ecnFrac = b.cfg.FirewalledTCPECNFraction
		}
		s.WebECN = b.drawFloat() < ecnFrac
		s.Stack = tcpsim.NewStack(s.Host)
		// Pool web servers redirect to www.pool.ntp.org.
		l, err := httpmin.Serve(s.Stack, httpmin.Port, s.WebECN, httpmin.PoolHandler)
		if err != nil {
			continue // ports are builder-controlled; cannot happen
		}
		if s.WebECN && b.drawFloat() < b.cfg.BrokenECEFraction {
			s.BrokenECE = true
			l.BrokenECE = true
		}
	}
}

// placeBottlenecks attaches the congestion substrate: bandwidth-limited
// AQM queues on the link directions the Congested* knobs select. The
// queues draw marking randomness from the simulation PRNG lazily, so an
// uncongested configuration consumes no additional PRNG state and
// regenerates byte-identical worlds.
func (b *builder) placeBottlenecks() error {
	cfg := b.cfg
	if !cfg.CongestedVantageAccess && !cfg.CongestedTransit {
		return nil
	}
	qlen := cfg.BottleneckQueueLen
	if qlen <= 0 {
		qlen = 50
	}
	shape := func(link *netsim.Link, from netsim.Node, vantage, label string) error {
		q, err := aqm.New(cfg.BottleneckAQM, qlen, b.sim.RNG())
		if err != nil {
			return err
		}
		link.SetBottleneck(from, cfg.BottleneckRate, cfg.BottleneckUtilization, q)
		b.w.Bottlenecks = append(b.w.Bottlenecks, &Bottleneck{
			Vantage:     vantage,
			Label:       label,
			Link:        link,
			Queue:       q,
			Utilization: cfg.BottleneckUtilization,
		})
		return nil
	}

	if cfg.CongestedVantageAccess {
		for _, v := range b.w.Vantages {
			link := v.Host.Uplink()
			router := link.Peer(v.Host)
			if err := shape(link, v.Host, v.Name, v.Name+"/up"); err != nil {
				return err
			}
			if err := shape(link, router, v.Name, v.Name+"/down"); err != nil {
				return err
			}
		}
	}
	if cfg.CongestedTransit {
		for _, tl := range b.transitCoreDown {
			if err := shape(tl.link, tl.core, "", tl.core.Label()+"/fwd"); err != nil {
				return err
			}
			if err := shape(tl.link, tl.down, "", tl.down.Label()+"/rev"); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- small helpers -------------------------------------------------------

func regionSlug(r geo.Region) string { return slug(string(r)) }

func slug(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			out = append(out, c)
		case c >= 'A' && c <= 'Z':
			out = append(out, c+'a'-'A')
		case c == ' ' || c == '.' || c == '-':
			if len(out) > 0 && out[len(out)-1] != '-' {
				out = append(out, '-')
			}
		}
	}
	return string(out)
}

func countryCode(zone string) string {
	if zone == "" {
		return "??"
	}
	out := []byte(zone)
	for i := range out {
		if out[i] >= 'a' && out[i] <= 'z' {
			out[i] -= 'a' - 'A'
		}
	}
	return string(out)
}
