package topology

import (
	"fmt"
	"math/rand"

	"repro/internal/aqm"
	"repro/internal/asn"
	"repro/internal/dnspool"
	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/ntp"
	"repro/internal/packet"
	"repro/internal/tcpsim"
)

// Server is one NTP pool member and its ground truth.
type Server struct {
	Host    *netsim.Host
	Addr    packet.Addr
	Region  geo.Region
	Country string

	NTP *ntp.Server
	// Web/WebECN: runs a web server / negotiates ECN over TCP.
	Web    bool
	WebECN bool
	// BrokenECE: negotiates ECN but never echoes congestion (the
	// Kühlewind "negotiate but unusable" population).
	BrokenECE bool
	Stack     *tcpsim.Stack // nil unless Web

	// Middlebox ground truth.
	ECTUDPFirewalled bool // site firewall drops ECT-marked UDP
	NotECTFirewalled bool // site firewall drops not-ECT UDP
	ScopedNotECT     bool // drops not-ECT UDP from cloud sources only
	ScopedECT        bool // drops ECT UDP from some cloud sources only
	Flaky            bool // congestion-prone access link
	BleachedPath     bool // sits behind a bleaching stub router
}

// VantageKind distinguishes the access-network loss models.
type VantageKind uint8

// Vantage kinds.
const (
	KindHome VantageKind = iota
	KindCampusWired
	KindCampusWireless
	KindCloud
)

// Vantage is one of the study's 13 measurement locations.
type Vantage struct {
	Name   string
	Kind   VantageKind
	Region geo.Region
	Host   *netsim.Host
	Stack  *tcpsim.Stack

	// BaseLoss and LossJitter parameterise the per-trace access-link
	// loss draw: loss = BaseLoss + U(0, LossJitter).
	BaseLoss   float64
	LossJitter float64
}

// World is a generated Internet plus its ground truth and lookups.
type World struct {
	Cfg Config
	Sim *netsim.Sim
	Net *netsim.Network

	Geo *geo.DB
	ASN *asn.Table

	Servers  []*Server
	Vantages []*Vantage

	// Pool DNS.
	Directory *dnspool.Directory
	DNSAddr   packet.Addr
	// CountryZones lists the sub-zone labels in use (for discovery).
	CountryZones []string

	// BleachRouters records where ECN bleaching happens (ground truth
	// for validating the Figure 4 inference). Keyed by router ID.
	BleachRouters map[int]string // id → "border" | "interior" | "sometimes-*"

	// Bottlenecks lists the congestion substrate's shaped link
	// directions and their AQM queues — the ground truth the CE-mark
	// report compares receiver-side observations against. Empty in an
	// uncongested world.
	Bottlenecks []*Bottleneck

	byAddr map[packet.Addr]*Server
}

// Bottleneck is one bandwidth-limited link direction of the congestion
// substrate and the AQM queue managing it.
type Bottleneck struct {
	// Vantage names the vantage whose access link this is; empty for
	// transit bottlenecks.
	Vantage string
	// Label describes the placement for reports, e.g.
	// "EC2 Tokyo/down" or "tr-7/fwd".
	Label string
	// Link is the shaped link; Queue its AQM discipline instance.
	Link  *netsim.Link
	Queue aqm.Queue
	// Utilization is the configured background load fraction.
	Utilization float64
}

// ServerAddrs returns the pool membership in creation order.
func (w *World) ServerAddrs() []packet.Addr {
	out := make([]packet.Addr, len(w.Servers))
	for i, s := range w.Servers {
		out[i] = s.Addr
	}
	return out
}

// ServerByAddr resolves ground truth for an address.
func (w *World) ServerByAddr(a packet.Addr) (*Server, bool) {
	s, ok := w.byAddr[a]
	return s, ok
}

// VantageByName finds a vantage point by its paper name.
func (w *World) VantageByName(name string) (*Vantage, bool) {
	for _, v := range w.Vantages {
		if v.Name == name {
			return v, true
		}
	}
	return nil, false
}

// Batch identifies which measurement batch a trace belongs to; the pool
// churned between them.
type Batch int

// The two collection batches (April/May and July/August 2015).
const (
	Batch1 Batch = 1
	Batch2 Batch = 2
)

// ApplyTraceConditions rolls the per-trace state: pool churn (which
// servers are online), flaky-server congestion, and the vantage's
// access-link loss draw. Call before running each trace; rng must be the
// simulation's PRNG for reproducibility.
func (w *World) ApplyTraceConditions(v *Vantage, batch Batch, rng *rand.Rand) {
	onlineProb := w.Cfg.OnlineProbBatch1
	if batch == Batch2 {
		onlineProb = w.Cfg.OnlineProbBatch2
	}
	for _, s := range w.Servers {
		online := rng.Float64() < onlineProb
		s.Host.SetOnline(online)
		if s.Flaky {
			loss := 0.0
			if online && rng.Float64() < w.Cfg.FlakyCongestionProb {
				loss = w.Cfg.FlakyCongestionLoss
			}
			s.Host.Uplink().SetLossBoth(loss)
		}
	}
	for _, vp := range w.Vantages {
		loss := vp.BaseLoss
		if vp == v {
			loss = vp.BaseLoss + rng.Float64()*vp.LossJitter
		}
		vp.Host.Uplink().SetLossBoth(loss)
	}
}

// ResetTransientState returns every piece of per-trace mutable world
// state to its canonical baseline: all hosts online, access-link loss
// cleared, AQM queue control state reset. The sharded campaign engine
// calls it (before ApplyTraceConditions) at each trace boundary and
// before the traceroute sweep, so a measurement phase's behaviour is a
// function of its own seed and traffic alone — never of which phases
// happened to run earlier in the same simulator. That history-freedom is
// what makes the merged dataset byte-identical however the campaign is
// sliced into shards.
func (w *World) ResetTransientState() {
	for _, s := range w.Servers {
		s.Host.SetOnline(true)
		s.Host.Uplink().SetLossBoth(0)
	}
	for _, v := range w.Vantages {
		v.Host.Uplink().SetLossBoth(0)
	}
	for _, bn := range w.Bottlenecks {
		bn.Queue.ResetTransient()
	}
}

func (w *World) String() string {
	return fmt.Sprintf("topology.World{%d servers, %d vantages, %d routers, %d ASes}",
		len(w.Servers), len(w.Vantages), len(w.Net.Routers()), w.ASN.ASCount())
}
