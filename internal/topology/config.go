// Package topology generates the simulated Internet the measurement
// campaign runs over: a tiered AS graph (tier-1 core, regional transit,
// stub edge networks), 2500 NTP pool servers distributed per the paper's
// Table 1, the 13 vantage points of Section 3, the pool's DNS directory,
// and the calibrated population of middleboxes whose behaviour the study
// set out to measure.
//
// Every stochastic choice draws from the simulation's seeded PRNG, so a
// (seed, Config) pair denotes exactly one world. The calibration
// constants in DefaultConfig are chosen so the generated world reproduces
// the paper's observed shapes (see DESIGN.md §6); each is a plain field
// that ablation benchmarks can vary.
package topology

import (
	"time"

	"repro/internal/geo"
)

// Config parameterises world generation.
type Config struct {
	// Servers is the NTP pool size (paper: 2500).
	Servers int
	// RegionServers fixes the per-region server counts; the default is
	// the paper's Table 1. Values must sum to Servers.
	RegionServers map[geo.Region]int

	// ServersPerStub controls edge network size (default 10).
	ServersPerStub int
	// Tier1Count is the number of core ASes (default 5).
	Tier1Count int
	// StubsPerTransit controls how many edge networks home to one
	// transit AS (default 7).
	StubsPerTransit int

	// ECTUDPFirewalledServers is the count of servers behind site
	// firewalls that silently drop ECT-marked UDP — the paper's
	// persistent differential-reachability population ("between 9 and
	// 14, depending on the location"). Default 11.
	ECTUDPFirewalledServers int
	// NotECTFirewalledServers is the count behind TOS-whitelisting
	// firewalls dropping not-ECT UDP (Figure 3b's persistent spike).
	// Default 1.
	NotECTFirewalledServers int
	// SourceScopedNotECTServers is the count whose not-ECT drops apply
	// only to cloud-vantage sources (the Phoenix Public Library pair).
	// Default 2.
	SourceScopedNotECTServers int
	// SourceScopedECTServers is the count of servers whose site firewall
	// drops ECT UDP only from a subset of cloud sources, giving those
	// vantages a few extra persistently unreachable servers (the paper's
	// per-location spread of 9–14). Default 3.
	SourceScopedECTServers int

	// BleachedBorderStubs / BleachedInteriorStubs are the counts of edge
	// networks whose ingress (border) or interior router bleaches the
	// ECN field of all transit traffic; SometimesBleachedStubs bleach
	// with probability 0.5 (the "125 hops only sometimes strip"
	// population). Defaults 5 / 2 / 2 — about 60% of strip locations at
	// AS boundaries, per §4.2's 59.1%.
	BleachedBorderStubs    int
	BleachedInteriorStubs  int
	SometimesBleachedStubs int

	// WebServerFraction is the share of pool hosts running a web server.
	// The paper reached 1334 of the ~2253 live hosts over TCP → 0.592.
	WebServerFraction float64
	// TCPECNFraction is the share of web servers willing to negotiate
	// ECN (paper: 82.0%).
	TCPECNFraction float64
	// FirewalledTCPECNFraction is the (lower) negotiation rate of sites
	// whose firewalls drop ECT UDP, producing Table 2's second column
	// while keeping the overall correlation weak. Default 0.55.
	FirewalledTCPECNFraction float64
	// BrokenECEFraction is the share of ECN-negotiating web servers
	// that never echo ECE for CE-marked segments — Kühlewind et al.
	// measured ≈10% of negotiating hosts as unusable this way. Exercised
	// by the ECN-usability extension experiment. Default 0.10.
	BrokenECEFraction float64

	// FlakyServers is the count of servers with congestion-prone access
	// links, the source of transient differential reachability (the
	// paper found ~4× more transiently than persistently unreachable
	// servers). Default 45.
	FlakyServers int
	// FlakyCongestionProb is the per-trace probability a flaky server's
	// access link is congested (default 0.25).
	FlakyCongestionProb float64
	// FlakyCongestionLoss is the loss rate while congested (default 0.65).
	FlakyCongestionLoss float64

	// OnlineProbBatch1/2 model pool churn between the April/May and
	// July/August trace batches (later traces show lower reachability).
	OnlineProbBatch1 float64
	OnlineProbBatch2 float64

	// Link delays.
	CoreDelay, TransitDelay, EdgeDelay, AccessDelay time.Duration

	// --- Congestion substrate (DESIGN.md §7) ---
	// The fields below place bandwidth-limited, AQM-managed bottlenecks
	// in the generated world. All zero (the default) leaves every link
	// an infinite-rate pipe: no queue ever builds, no router ever marks
	// CE, and generated worlds are byte-identical to the pre-substrate
	// behaviour.

	// BottleneckRate is the serialization rate of every placed
	// bottleneck, in bytes per second. Required (>0) when any
	// Congested* placement is enabled.
	BottleneckRate float64
	// BottleneckQueueLen is each bottleneck's buffer in packets
	// (default 50).
	BottleneckQueueLen int
	// BottleneckAQM names the queueing discipline at bottlenecks:
	// "droptail", "red" (the default — CE-marks ECT packets and drops
	// not-ECT per RFC 3168), or "codel".
	BottleneckAQM string
	// BottleneckUtilization is the phantom cross-traffic offered load
	// as a fraction of BottleneckRate; it sets the congestion operating
	// point the CE-mark report is monotone in.
	BottleneckUtilization float64
	// CongestedVantageAccess bottlenecks both directions of every
	// vantage access link — the campaign's congested-edge scenario.
	CongestedVantageAccess bool
	// CongestedTransit bottlenecks both directions of every transit
	// AS's core↔down link — the congested-transit scenario, where the
	// marking router sits mid-path like the paper's hypothesised AQM
	// deployments.
	CongestedTransit bool
}

// DefaultConfig returns the paper-scale calibration.
func DefaultConfig() Config {
	return Config{
		Servers: 2500,
		RegionServers: map[geo.Region]int{
			geo.Africa:       22,
			geo.Asia:         190,
			geo.Australia:    68,
			geo.Europe:       1664,
			geo.NorthAmerica: 522,
			geo.SouthAmerica: 32,
			geo.Unknown:      2,
		},
		ServersPerStub:  10,
		Tier1Count:      5,
		StubsPerTransit: 7,

		ECTUDPFirewalledServers:   11,
		NotECTFirewalledServers:   1,
		SourceScopedNotECTServers: 2,
		SourceScopedECTServers:    3,

		BleachedBorderStubs:    5,
		BleachedInteriorStubs:  2,
		SometimesBleachedStubs: 2,

		WebServerFraction:        0.592,
		TCPECNFraction:           0.82,
		FirewalledTCPECNFraction: 0.55,
		BrokenECEFraction:        0.10,

		FlakyServers:        45,
		FlakyCongestionProb: 0.25,
		FlakyCongestionLoss: 0.65,

		OnlineProbBatch1: 0.925,
		OnlineProbBatch2: 0.895,

		CoreDelay:    8 * time.Millisecond,
		TransitDelay: 4 * time.Millisecond,
		EdgeDelay:    2 * time.Millisecond,
		AccessDelay:  time.Millisecond,
	}
}

// SmallConfig returns a reduced world for unit tests: same structure,
// two orders of magnitude fewer hosts.
func SmallConfig() Config {
	c := DefaultConfig()
	c.Servers = 120
	c.RegionServers = map[geo.Region]int{
		geo.Europe:       60,
		geo.NorthAmerica: 30,
		geo.Asia:         16,
		geo.Australia:    6,
		geo.SouthAmerica: 4,
		geo.Africa:       2,
		geo.Unknown:      2,
	}
	c.ECTUDPFirewalledServers = 4
	c.NotECTFirewalledServers = 1
	c.SourceScopedNotECTServers = 1
	c.BleachedBorderStubs = 2
	c.BleachedInteriorStubs = 1
	c.SometimesBleachedStubs = 1
	c.FlakyServers = 6
	return c
}

// regionCountries assigns plausible countries (and pool DNS sub-zones)
// per region; stubs cycle through their region's list.
var regionCountries = map[geo.Region][]string{
	geo.Africa:       {"za", "ke", "eg"},
	geo.Asia:         {"jp", "sg", "cn", "in", "kr", "hk"},
	geo.Australia:    {"au", "nz"},
	geo.Europe:       {"gb", "de", "fr", "nl", "se", "ch", "it", "es", "pl", "fi"},
	geo.NorthAmerica: {"us", "ca", "mx"},
	geo.SouthAmerica: {"br", "ar", "cl"},
	geo.Unknown:      {""},
}

// regionZone is the pool's region-level DNS sub-zone for each region.
var regionZone = map[geo.Region]string{
	geo.Africa:       "africa",
	geo.Asia:         "asia",
	geo.Australia:    "oceania",
	geo.Europe:       "europe",
	geo.NorthAmerica: "north-america",
	geo.SouthAmerica: "south-america",
}

// regionCoords places regions on the map for Figure 1 rendering.
var regionCoords = map[geo.Region][2]float64{
	geo.Africa:       {0.0, 25.0},
	geo.Asia:         {30.0, 110.0},
	geo.Australia:    {-27.0, 140.0},
	geo.Europe:       {50.0, 10.0},
	geo.NorthAmerica: {40.0, -95.0},
	geo.SouthAmerica: {-15.0, -55.0},
	geo.Unknown:      {0.0, 0.0},
}
