package topology

import (
	"testing"
	"time"

	"repro/internal/ecn"
	"repro/internal/netsim"
	"repro/internal/ntp"
)

// TestBlueprintMatchesBuild is the blueprint's core guarantee: a world
// instantiated from a compiled blueprint is indistinguishable from one
// Build generates directly with the same (seed, config) — same servers,
// same ground truth, same routing, same DNS membership.
func TestBlueprintMatchesBuild(t *testing.T) {
	const seed = 2015
	cfg := SmallConfig()

	direct, err := Build(netsim.NewSim(seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := Compile(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := bp.Instantiate(netsim.NewSim(seed))
	if err != nil {
		t.Fatal(err)
	}

	if len(inst.Servers) != len(direct.Servers) {
		t.Fatalf("servers: %d vs %d", len(inst.Servers), len(direct.Servers))
	}
	for i, s := range inst.Servers {
		d := direct.Servers[i]
		if s.Addr != d.Addr || s.Region != d.Region || s.Country != d.Country ||
			s.ECTUDPFirewalled != d.ECTUDPFirewalled || s.NotECTFirewalled != d.NotECTFirewalled ||
			s.ScopedNotECT != d.ScopedNotECT || s.ScopedECT != d.ScopedECT ||
			s.Flaky != d.Flaky || s.BleachedPath != d.BleachedPath ||
			s.Web != d.Web || s.WebECN != d.WebECN || s.BrokenECE != d.BrokenECE {
			t.Fatalf("server %d ground truth diverges:\nblueprint %+v\ndirect    %+v", i, *s, *d)
		}
	}
	if len(inst.Vantages) != len(direct.Vantages) {
		t.Fatalf("vantages: %d vs %d", len(inst.Vantages), len(direct.Vantages))
	}
	for i, v := range inst.Vantages {
		d := direct.Vantages[i]
		if v.Name != d.Name || v.Host.Addr() != d.Host.Addr() ||
			v.BaseLoss != d.BaseLoss || v.LossJitter != d.LossJitter {
			t.Fatalf("vantage %d diverges: %q vs %q", i, v.Name, d.Name)
		}
	}
	if got, want := len(inst.Net.Routers()), len(direct.Net.Routers()); got != want {
		t.Fatalf("routers: %d vs %d", got, want)
	}
	for i, r := range inst.Net.Routers() {
		d := direct.Net.Routers()[i]
		if r.Addr() != d.Addr() || r.Label() != d.Label() {
			t.Fatalf("router %d: %s/%s vs %s/%s", i, r.Label(), r.Addr(), d.Label(), d.Addr())
		}
	}
	if len(inst.BleachRouters) != len(direct.BleachRouters) {
		t.Fatalf("bleach routers: %d vs %d", len(inst.BleachRouters), len(direct.BleachRouters))
	}
	for id, kind := range direct.BleachRouters {
		if inst.BleachRouters[id] != kind {
			t.Fatalf("bleach router %d: %q vs %q", id, inst.BleachRouters[id], kind)
		}
	}
	// Routing ground truth: identical router paths vantage → server.
	for _, v := range inst.Vantages {
		dv, _ := direct.VantageByName(v.Name)
		for _, s := range []int{0, len(inst.Servers) / 2, len(inst.Servers) - 1} {
			a, errA := inst.Net.PathRouters(v.Host, inst.Servers[s].Addr)
			b, errB := direct.Net.PathRouters(dv.Host, direct.Servers[s].Addr)
			if (errA != nil) != (errB != nil) || len(a) != len(b) {
				t.Fatalf("%s → server %d: path %d/%v vs %d/%v", v.Name, s, len(a), errA, len(b), errB)
			}
			for i := range a {
				if a[i].Addr() != b[i].Addr() {
					t.Fatalf("%s → server %d hop %d: %s vs %s", v.Name, s, i, a[i].Addr(), b[i].Addr())
				}
			}
		}
	}
	// DNS membership: same zones, same sizes.
	zd, zi := direct.Directory.Zones(), inst.Directory.Zones()
	if len(zd) != len(zi) {
		t.Fatalf("zones: %d vs %d", len(zi), len(zd))
	}
	for i := range zd {
		if zd[i] != zi[i] || direct.Directory.ZoneSize(zd[i]) != inst.Directory.ZoneSize(zi[i]) {
			t.Fatalf("zone %q: size %d vs %d", zd[i], inst.Directory.ZoneSize(zi[i]), direct.Directory.ZoneSize(zd[i]))
		}
	}
}

// TestBlueprintInstancesAreIndependent: two instances of one blueprint
// must not leak simulation state into each other — traffic in one leaves
// the other's clocks, counters and DNS cursors untouched.
func TestBlueprintInstancesAreIndependent(t *testing.T) {
	bp, err := Compile(SmallConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	simA, simB := netsim.NewSim(7), netsim.NewSim(7)
	wa, err := bp.Instantiate(simA)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := bp.Instantiate(simB)
	if err != nil {
		t.Fatal(err)
	}

	// Drive NTP traffic in A only.
	v := wa.Vantages[0]
	got := 0
	for i := 0; i < 5; i++ {
		ntp.Probe(v.Host, wa.Servers[i].Addr, ntp.ProbeConfig{ECN: ecn.ECT0}, func(r ntp.ProbeResult) {
			if r.Reachable {
				got++
			}
		})
	}
	simA.Run()
	if got == 0 {
		t.Fatal("no NTP responses in instance A")
	}
	if simB.Now() != 0 || simB.Executed() != 0 {
		t.Errorf("instance B simulator moved: now=%v executed=%d", simB.Now(), simB.Executed())
	}
	if wb.Vantages[0].Host.Sent != 0 {
		t.Errorf("instance B vantage sent %d packets", wb.Vantages[0].Host.Sent)
	}
	if n := wb.Servers[0].Host.Received; n != 0 {
		t.Errorf("instance B server received %d packets", n)
	}
	// Resolving in A must not advance B's round-robin cursor.
	a1, _ := wa.Directory.Resolve("pool.ntp.org")
	b1, _ := wb.Directory.Resolve("pool.ntp.org")
	if len(a1) == 0 || len(b1) == 0 {
		t.Fatal("empty resolution")
	}
	for i := range a1 {
		if a1[i] != b1[i] {
			t.Errorf("first resolution differs: %v vs %v", a1, b1)
		}
	}
}

// TestBlueprintInstantiateFast: instantiation must skip the expensive
// generation steps — at small scale it should be far under the direct
// build, and consume no simulator PRNG state.
func TestBlueprintInstantiateFast(t *testing.T) {
	bp, err := Compile(SmallConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.NewSim(3)
	before := sim.RNG().Uint64()
	sim.Reseed(3)
	start := time.Now()
	if _, err := bp.Instantiate(sim); err != nil {
		t.Fatal(err)
	}
	t.Logf("instantiate: %v", time.Since(start))
	after := sim.RNG().Uint64()
	if before != after {
		t.Error("Instantiate consumed simulator PRNG state")
	}
}
