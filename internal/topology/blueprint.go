package topology

import (
	"fmt"

	"repro/internal/asn"
	"repro/internal/dnspool"
	"repro/internal/geo"
	"repro/internal/netsim"
)

// Blueprint is a compiled, frozen world: the (seed, Config) pair's
// generation run captured once, so that any number of simulations can
// instantiate structurally identical worlds without re-drawing the
// stochastic build decisions or re-computing routes.
//
// The sharded campaign engine is the customer: before blueprints, every
// shard rebuilt the full world — regenerating the same middlebox
// placement from the same seed and re-running the all-pairs BFS whose
// output is identical across shards. A Blueprint splits the world into
// its immutable skeleton, built once and shared read-only:
//
//   - the recorded stochastic decisions (firewall placement permutation,
//     server role rolls), replayed instead of re-drawn;
//   - the forwarding tables (netsim.RouteTable — by far the largest
//     per-shard allocation, O(routers²));
//   - the geo and ASN databases and the pool DNS zone membership;
//
// and the cheap per-simulation overlay that Instantiate still builds
// fresh for every shard: hosts, routers, links, queues, protocol stacks
// — everything owning mutable state (clocks, counters, queue contents,
// PRNG draws) that concurrent shards must not share.
//
// A Blueprint is immutable after Compile and safe for concurrent
// Instantiate calls.
type Blueprint struct {
	cfg    Config
	seed   int64
	trace  decisionTrace
	shared sharedParts
}

// decisionTrace records the stochastic choices of one generation run.
type decisionTrace struct {
	perm  []int     // firewall placement permutation
	rolls []float64 // server role draws, in consumption order
}

// sharedParts is the read-only world skeleton every instance references.
type sharedParts struct {
	geo    *geo.DB
	asn    *asn.Table
	dir    *dnspool.Directory // membership template; cloned per instance
	zones  []string
	routes *netsim.RouteTable
}

// Compile generates the (seed, cfg) world once on a throwaway simulator,
// recording its decisions and freezing its shareable parts.
func Compile(cfg Config, seed int64) (*Blueprint, error) {
	bp := &Blueprint{cfg: cfg, seed: seed}
	b := newBuilder(netsim.NewSim(seed), cfg)
	b.rec = &bp.trace
	w, err := b.run()
	if err != nil {
		return nil, fmt.Errorf("topology: compile: %w", err)
	}
	routes, err := w.Net.ExportRoutes()
	if err != nil {
		return nil, fmt.Errorf("topology: compile: %w", err)
	}
	bp.shared = sharedParts{
		geo:    w.Geo,
		asn:    w.ASN,
		dir:    w.Directory,
		zones:  w.CountryZones,
		routes: routes,
	}
	return bp, nil
}

// Config returns the compiled world configuration.
func (bp *Blueprint) Config() Config { return bp.cfg }

// Seed returns the generation seed the blueprint was compiled from.
func (bp *Blueprint) Seed() int64 { return bp.seed }

// Instantiate builds a world on sim from the frozen blueprint: the same
// construction sequence as Build with the same seed, but with recorded
// decisions replayed (consuming none of sim's PRNG state) and the
// skeleton shared. The returned world is fully private to sim except for
// the read-only shared parts.
func (bp *Blueprint) Instantiate(sim *netsim.Sim) (*World, error) {
	b := newBuilder(sim, bp.cfg)
	b.rep = &bp.trace
	b.shared = &bp.shared
	w, err := b.run()
	if err != nil {
		return nil, fmt.Errorf("topology: instantiate: %w", err)
	}
	return w, nil
}
