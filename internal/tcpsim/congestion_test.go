package tcpsim

import (
	"testing"

	"repro/internal/middlebox"
)

// bulkServer installs a listener that sends a large response on accept,
// so the congestion window actually binds. It returns a handle to the
// accepted server-side connection for sender-state inspection.
func bulkServer(t *testing.T, f *fixture, port uint16, size int) **Conn {
	t.Helper()
	var server *Conn
	_, err := f.ss.Listen(port, true, func(c *Conn) {
		server = c
		c.Write(make([]byte, size))
		c.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	return &server
}

// TestECEHalvesWindowAndSetsCWR: CE marks on the data path must travel
// the full RFC 3168 feedback loop — receiver echoes ECE, sender halves
// its window and answers CWR.
func TestECEHalvesWindowAndSetsCWR(t *testing.T) {
	f := newFixture(t, 3)
	// Every ECT data segment from the server is CE-marked in transit.
	f.r2.AddPolicy(&middlebox.CEMarker{Probability: 1})
	serverRef := bulkServer(t, f, 80, 40*MSS)

	var clientConn *Conn
	got := 0
	f.cs.Dial(f.server.Addr(), 80, DialConfig{RequestECN: true}, func(c *Conn, err error) {
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		if !c.ECNNegotiated() {
			t.Fatal("ECN not negotiated")
		}
		clientConn = c
		c.OnData(func(b []byte) { got += len(b) })
	})
	f.sim.Run()
	server := *serverRef

	if got != 40*MSS {
		t.Fatalf("received %d bytes, want %d", got, 40*MSS)
	}
	if clientConn.CEMarksSeen == 0 {
		t.Fatal("client saw no CE marks")
	}
	if server == nil {
		t.Fatal("server connection not found")
	}
	if server.ECESeen == 0 {
		t.Fatal("server saw no ECE echoes")
	}
	if server.CwndReductions == 0 {
		t.Fatal("server never reduced its congestion window")
	}
	if server.CWRSent == 0 {
		t.Fatal("server never answered ECE with CWR")
	}
	if server.Cwnd() >= initialCwnd {
		t.Fatalf("server cwnd %d did not shrink below initial %d", server.Cwnd(), initialCwnd)
	}
	// The reduction is once-per-window, not once-per-ECE.
	if server.CwndReductions >= server.ECESeen && server.ECESeen > 3 {
		t.Fatalf("reductions (%d) should be rarer than ECE echoes (%d)",
			server.CwndReductions, server.ECESeen)
	}
}

// TestCleanPathKeepsInitialWindow: without congestion the window only
// grows, and small transfers never see a reduction — the property that
// keeps uncongested campaign datasets byte-identical to the
// pre-congestion stack.
func TestCleanPathKeepsInitialWindow(t *testing.T) {
	f := newFixture(t, 4)
	serverRef := bulkServer(t, f, 80, 4*MSS)
	done := false
	f.cs.Dial(f.server.Addr(), 80, DialConfig{RequestECN: true}, func(c *Conn, err error) {
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		c.OnClose(func(error) { done = true })
	})
	f.sim.Run()
	server := *serverRef
	if !done {
		t.Fatal("transfer did not complete")
	}
	if server == nil {
		t.Fatal("server connection not found")
	}
	if server.CwndReductions != 0 || server.CWRSent != 0 {
		t.Fatalf("clean path saw reductions=%d cwr=%d", server.CwndReductions, server.CWRSent)
	}
	if server.Cwnd() < initialCwnd {
		t.Fatalf("clean-path cwnd %d below initial %d", server.Cwnd(), initialCwnd)
	}
}
