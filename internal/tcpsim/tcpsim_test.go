package tcpsim

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/ecn"
	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/packet"
)

// fixture wires client — r1 — r2 — server with TCP stacks on both hosts.
type fixture struct {
	sim            *netsim.Sim
	net            *netsim.Network
	client, server *netsim.Host
	cs, ss         *Stack
	r1, r2         *netsim.Router
}

func newFixture(t *testing.T, seed int64) *fixture {
	t.Helper()
	sim := netsim.NewSim(seed)
	n := netsim.NewNetwork(sim)
	r1 := n.AddRouter("r1", packet.AddrFrom4(10, 255, 0, 1), 64500)
	r2 := n.AddRouter("r2", packet.AddrFrom4(10, 255, 1, 1), 64501)
	n.Connect(r1, r2, 5*time.Millisecond, 0)
	client, _ := n.AddHost("client", packet.AddrFrom4(10, 0, 0, 1))
	server, _ := n.AddHost("server", packet.AddrFrom4(10, 0, 1, 1))
	n.Attach(client, r1, time.Millisecond, 0)
	n.Attach(server, r2, time.Millisecond, 0)
	if err := n.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	return &fixture{
		sim: sim, net: n, client: client, server: server,
		cs: NewStack(client), ss: NewStack(server),
		r1: r1, r2: r2,
	}
}

// echoServer installs a listener that records received bytes and echoes
// them back. It closes its side once the client half-closes (the stack
// auto-answers FINs), so clients drive the teardown.
func echoServer(t *testing.T, f *fixture, port uint16, ecnCapable bool) *[]byte {
	t.Helper()
	var got []byte
	_, err := f.ss.Listen(port, ecnCapable, func(c *Conn) {
		c.OnData(func(b []byte) {
			got = append(got, b...)
			c.Write(b)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return &got
}

func TestHandshakeAndEcho(t *testing.T) {
	f := newFixture(t, 1)
	serverGot := echoServer(t, f, 80, false)

	var clientGot []byte
	var closeErr error
	closed := false
	f.cs.Dial(f.server.Addr(), 80, DialConfig{}, func(c *Conn, err error) {
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		if c.ECNNegotiated() {
			t.Error("ECN negotiated without being requested")
		}
		c.OnData(func(b []byte) {
			clientGot = append(clientGot, b...)
			c.Close()
		})
		c.OnClose(func(err error) { closed, closeErr = true, err })
		c.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	})
	f.sim.Run()

	if string(*serverGot) != "GET / HTTP/1.1\r\n\r\n" {
		t.Errorf("server got %q", *serverGot)
	}
	if string(clientGot) != "GET / HTTP/1.1\r\n\r\n" {
		t.Errorf("client got %q", clientGot)
	}
	if !closed || closeErr != nil {
		t.Errorf("close: %v %v", closed, closeErr)
	}
	if len(f.cs.conns) != 0 || len(f.ss.conns) != 0 {
		t.Errorf("connections leaked: %d client, %d server", len(f.cs.conns), len(f.ss.conns))
	}
}

func TestECNNegotiationSuccess(t *testing.T) {
	f := newFixture(t, 2)
	echoServer(t, f, 80, true)

	var negotiated bool
	f.cs.Dial(f.server.Addr(), 80, DialConfig{RequestECN: true}, func(c *Conn, err error) {
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		negotiated = c.ECNNegotiated()
		c.Close()
	})
	f.sim.Run()
	if !negotiated {
		t.Error("ECN-capable server did not negotiate")
	}
}

func TestECNNegotiationRefused(t *testing.T) {
	f := newFixture(t, 3)
	echoServer(t, f, 80, false) // server not ECN-capable

	var negotiated, connected bool
	f.cs.Dial(f.server.Addr(), 80, DialConfig{RequestECN: true}, func(c *Conn, err error) {
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		connected = true
		negotiated = c.ECNNegotiated()
		c.Close()
	})
	f.sim.Run()
	if !connected {
		t.Fatal("connection failed entirely")
	}
	if negotiated {
		t.Error("negotiated ECN with an unwilling server")
	}
}

func TestECNNotRequestedNotNegotiated(t *testing.T) {
	f := newFixture(t, 4)
	echoServer(t, f, 80, true) // willing server

	var negotiated bool
	f.cs.Dial(f.server.Addr(), 80, DialConfig{}, func(c *Conn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		negotiated = c.ECNNegotiated()
		c.Close()
	})
	f.sim.Run()
	if negotiated {
		t.Error("server negotiated ECN on a plain SYN")
	}
}

func TestSYNACKWireFlags(t *testing.T) {
	// Verify on the wire that negotiation produces an ECN-setup SYN-ACK
	// and data segments are ECT(0) — the exact observables of §4.3.
	f := newFixture(t, 5)
	echoServer(t, f, 80, true)

	var synAckECNSetup, sawECT0Data bool
	f.client.AddTap(func(dir netsim.TapDirection, at time.Duration, wire []byte) {
		if dir != netsim.TapIn {
			return
		}
		d, err := packet.Decode(wire)
		if err != nil || d.TCP == nil {
			return
		}
		if d.TCP.Has(packet.TCPSyn | packet.TCPAck) {
			synAckECNSetup = d.TCP.IsECNSetupSYNACK()
		}
		if len(d.Payload) > 0 && d.IP.ECN() == ecn.ECT0 {
			sawECT0Data = true
		}
	})

	f.cs.Dial(f.server.Addr(), 80, DialConfig{RequestECN: true}, func(c *Conn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		c.Write([]byte("hello"))
		c.Close()
	})
	f.sim.Run()
	if !synAckECNSetup {
		t.Error("SYN-ACK was not an ECN-setup SYN-ACK")
	}
	if !sawECT0Data {
		t.Error("no ECT(0)-marked data segments observed")
	}
}

func TestConnectionRefusedByRST(t *testing.T) {
	f := newFixture(t, 6)
	// No listener on port 80: host answers with RST.
	var dialErr error
	start := f.sim.Now()
	f.cs.Dial(f.server.Addr(), 80, DialConfig{}, func(c *Conn, err error) { dialErr = err })
	f.sim.Run()
	if dialErr != ErrRefused {
		t.Errorf("dial err = %v, want ErrRefused", dialErr)
	}
	if f.sim.Now()-start > 100*time.Millisecond {
		t.Errorf("refusal took %v; RST should be fast", f.sim.Now()-start)
	}
	if f.ss.RSTsSent != 1 {
		t.Errorf("server sent %d RSTs", f.ss.RSTsSent)
	}
}

func TestDialTimeoutOfflineHost(t *testing.T) {
	f := newFixture(t, 7)
	f.server.SetOnline(false)
	var dialErr error
	f.cs.Dial(f.server.Addr(), 80, DialConfig{}, func(c *Conn, err error) { dialErr = err })
	f.sim.Run()
	if dialErr != ErrTimeout {
		t.Errorf("dial err = %v, want ErrTimeout", dialErr)
	}
	// 6 retries: 1+2+4+8+16+32+64 = 127s total.
	if f.sim.Now() < 120*time.Second || f.sim.Now() > 135*time.Second {
		t.Errorf("timeout took %v", f.sim.Now())
	}
}

func TestLossRecovery(t *testing.T) {
	f := newFixture(t, 8)
	serverGot := echoServer(t, f, 80, true)
	// 30% loss both ways on the inter-router link.
	var interLink *netsim.Link
	for _, l := range []*netsim.Link{} {
		_ = l
	}
	// The r1-r2 link is the only router-router link; grab via path stats:
	// simplest is to recreate it — instead, set loss on both access links.
	f.client.Uplink().SetLossBoth(0.2)
	f.server.Uplink().SetLossBoth(0.2)
	_ = interLink

	payload := bytes.Repeat([]byte("0123456789abcdef"), 600) // ~9.4KB, 7 segments
	var clientGot []byte
	done := false
	f.cs.Dial(f.server.Addr(), 80, DialConfig{RequestECN: true, SYNRetries: 8}, func(c *Conn, err error) {
		if err != nil {
			t.Fatalf("dial under loss: %v", err)
		}
		c.OnData(func(b []byte) {
			clientGot = append(clientGot, b...)
			if len(clientGot) == len(payload) {
				c.Close()
			}
		})
		c.OnClose(func(err error) { done = true })
		c.Write(payload)
	})
	f.sim.Run()

	if !bytes.Equal(*serverGot, payload) {
		t.Fatalf("server received %d bytes, want %d (in order)", len(*serverGot), len(payload))
	}
	if !bytes.Equal(clientGot, payload) {
		t.Fatalf("client received %d echoed bytes, want %d", len(clientGot), len(payload))
	}
	if !done {
		t.Error("connection did not close cleanly")
	}
}

func TestSegmentationAtMSS(t *testing.T) {
	f := newFixture(t, 9)
	echoServer(t, f, 80, false)

	maxSeg := 0
	f.client.AddTap(func(dir netsim.TapDirection, at time.Duration, wire []byte) {
		d, err := packet.Decode(wire)
		if err == nil && d.TCP != nil && len(d.Payload) > maxSeg {
			maxSeg = len(d.Payload)
		}
	})
	big := make([]byte, 4*MSS+123)
	f.cs.Dial(f.server.Addr(), 80, DialConfig{}, func(c *Conn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		c.Write(big)
		c.Close()
	})
	f.sim.Run()
	if maxSeg != MSS {
		t.Errorf("max segment = %d, want %d", maxSeg, MSS)
	}
}

func TestRetransmissionsAreNotECT(t *testing.T) {
	f := newFixture(t, 10)
	echoServer(t, f, 80, true)
	// Drop everything the client sends for a window, forcing data
	// retransmission, then heal the link.
	var rtxECN []ecn.Codepoint
	seenSeqs := map[uint32]int{}
	f.client.AddTap(func(dir netsim.TapDirection, at time.Duration, wire []byte) {
		if dir != netsim.TapOut {
			return
		}
		d, err := packet.Decode(wire)
		if err != nil || d.TCP == nil || len(d.Payload) == 0 {
			return
		}
		seenSeqs[d.TCP.Seq]++
		if seenSeqs[d.TCP.Seq] > 1 {
			rtxECN = append(rtxECN, d.IP.ECN())
		}
	})

	f.cs.Dial(f.server.Addr(), 80, DialConfig{RequestECN: true}, func(c *Conn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		// Break the forward path after the handshake; first transmission
		// is lost, retransmission follows on a healed path.
		f.client.Uplink().SetLoss(f.client, 1.0)
		c.Write([]byte("data lost once"))
		f.sim.After(1500*time.Millisecond, func() {
			f.client.Uplink().SetLoss(f.client, 0)
		})
		c.Close()
	})
	f.sim.Run()

	if len(rtxECN) == 0 {
		t.Fatal("no retransmissions observed")
	}
	for _, cp := range rtxECN {
		if cp != ecn.NotECT {
			t.Errorf("retransmission marked %v; RFC 3168 requires not-ECT", cp)
		}
	}
}

func TestCEMarkingEchoedWithECE(t *testing.T) {
	f := newFixture(t, 11)
	// Router marks all ECT packets CE: the receiver must echo ECE, and
	// the sender must eventually set CWR.
	f.r1.AddPolicy(&middlebox.CEMarker{Probability: 1})

	var serverConn *Conn
	f.ss.Listen(80, true, func(c *Conn) {
		serverConn = c
		// Echo without closing: the client sends two chunks, and the
		// second must carry CWR in response to the ECE echoes elicited
		// by the first.
		c.OnData(func(b []byte) { c.Write(b) })
	})

	sawECE, sawCWR := false, false
	f.server.AddTap(func(dir netsim.TapDirection, at time.Duration, wire []byte) {
		d, err := packet.Decode(wire)
		if err != nil || d.TCP == nil {
			return
		}
		if dir == netsim.TapOut && d.TCP.Flags&packet.TCPEce != 0 && d.TCP.Flags&packet.TCPSyn == 0 {
			sawECE = true
		}
		if dir == netsim.TapIn && d.TCP.Flags&packet.TCPCwr != 0 && d.TCP.Flags&packet.TCPSyn == 0 {
			sawCWR = true
		}
	})

	f.cs.Dial(f.server.Addr(), 80, DialConfig{RequestECN: true}, func(c *Conn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		c.OnData(func(b []byte) {})
		// Two writes so a CWR-bearing data segment follows the ECE echo.
		c.Write([]byte("first"))
		f.sim.After(100*time.Millisecond, func() {
			c.Write([]byte("second"))
			c.Close()
		})
	})
	f.sim.Run()

	if serverConn == nil {
		t.Fatal("no server connection")
	}
	if serverConn.CEMarksSeen == 0 {
		t.Error("server saw no CE marks despite CE-marking router")
	}
	if !sawECE {
		t.Error("receiver did not echo ECE")
	}
	if !sawCWR {
		t.Error("sender never set CWR")
	}
}

func TestListenerDuplicatePort(t *testing.T) {
	f := newFixture(t, 12)
	if _, err := f.ss.Listen(80, false, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ss.Listen(80, false, nil); err == nil {
		t.Error("duplicate listen accepted")
	}
}

func TestListenerClose(t *testing.T) {
	f := newFixture(t, 13)
	l, _ := f.ss.Listen(80, false, nil)
	l.Close()
	var dialErr error
	f.cs.Dial(f.server.Addr(), 80, DialConfig{}, func(c *Conn, err error) { dialErr = err })
	f.sim.Run()
	if dialErr != ErrRefused {
		t.Errorf("dial after listener close = %v, want ErrRefused", dialErr)
	}
}

func TestAbortSendsRST(t *testing.T) {
	f := newFixture(t, 14)
	var serverClosed error
	f.ss.Listen(80, false, func(c *Conn) {
		c.OnClose(func(err error) { serverClosed = err })
	})
	f.cs.Dial(f.server.Addr(), 80, DialConfig{}, func(c *Conn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		f.sim.After(50*time.Millisecond, c.Abort)
	})
	f.sim.Run()
	if serverClosed != ErrReset {
		t.Errorf("server close err = %v, want ErrReset", serverClosed)
	}
}

func TestSimultaneousConnections(t *testing.T) {
	f := newFixture(t, 15)
	echoServer(t, f, 80, true)
	const conns = 20
	completed := 0
	for i := 0; i < conns; i++ {
		i := i
		f.cs.Dial(f.server.Addr(), 80, DialConfig{RequestECN: i%2 == 0}, func(c *Conn, err error) {
			if err != nil {
				t.Errorf("conn %d: %v", i, err)
				return
			}
			c.OnData(func(b []byte) { c.Close() })
			c.OnClose(func(err error) {
				if err == nil {
					completed++
				}
			})
			c.Write([]byte{byte(i)})
		})
	}
	f.sim.Run()
	if completed != conns {
		t.Errorf("completed %d of %d connections", completed, conns)
	}
}

func TestECNSetupSYNIsNotECTMarked(t *testing.T) {
	// RFC 3168 §6.1.1: the SYN itself must not be ECT-marked (footnote 1
	// of the paper relies on this).
	f := newFixture(t, 16)
	echoServer(t, f, 80, true)
	var synECN ecn.Codepoint = 0xF
	f.client.AddTap(func(dir netsim.TapDirection, at time.Duration, wire []byte) {
		d, err := packet.Decode(wire)
		if err == nil && d.TCP != nil && d.TCP.Flags&packet.TCPSyn != 0 && dir == netsim.TapOut {
			synECN = d.IP.ECN()
		}
	})
	f.cs.Dial(f.server.Addr(), 80, DialConfig{RequestECN: true}, func(c *Conn, err error) {
		if err == nil {
			c.Close()
		}
	})
	f.sim.Run()
	if synECN != ecn.NotECT {
		t.Errorf("ECN-setup SYN marked %v, must be not-ECT", synECN)
	}
}
