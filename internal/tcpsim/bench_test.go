package tcpsim

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
)

// BenchmarkHandshakeAndExchange measures a complete connect → request →
// response → close cycle with ECN negotiation, the unit of the paper's
// TCP measurement.
func BenchmarkHandshakeAndExchange(b *testing.B) {
	sim := netsim.NewSim(1)
	n := netsim.NewNetwork(sim)
	r := n.AddRouter("r", packet.AddrFrom4(10, 255, 0, 1), 64500)
	client, _ := n.AddHost("client", packet.AddrFrom4(10, 0, 0, 1))
	server, _ := n.AddHost("server", packet.AddrFrom4(10, 0, 1, 1))
	n.Attach(client, r, time.Microsecond, 0)
	n.Attach(server, r, time.Microsecond, 0)
	if err := n.ComputeRoutes(); err != nil {
		b.Fatal(err)
	}
	cs, ss := NewStack(client), NewStack(server)
	ss.Listen(80, true, func(c *Conn) {
		c.OnData(func(data []byte) { c.Write(data) })
	})

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		completed := false
		cs.Dial(server.Addr(), 80, DialConfig{RequestECN: true}, func(c *Conn, err error) {
			if err != nil {
				b.Fatal(err)
			}
			c.OnData(func([]byte) { c.Close() })
			c.OnClose(func(error) { completed = true })
			c.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
		})
		sim.Run()
		if !completed {
			b.Fatal("exchange did not complete")
		}
	}
}
