package tcpsim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
)

// Sequence-number comparison properties (wraparound arithmetic).
func TestSeqComparisonProperties(t *testing.T) {
	// Antisymmetry: a<b implies !(b<a); reflexivity of LEQ.
	f := func(a, b uint32) bool {
		if seqLT(a, b) && seqLT(b, a) {
			return false
		}
		if !seqLEQ(a, a) {
			return false
		}
		// Consistency: LT implies LEQ.
		if seqLT(a, b) && !seqLEQ(a, b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSeqWraparound(t *testing.T) {
	// Near the wrap point, "later" sequence numbers compare greater.
	if !seqLT(0xFFFFFF00, 0x00000010) {
		t.Error("wraparound comparison broken")
	}
	if seqLEQ(0x00000010, 0xFFFFFF00) {
		t.Error("wrapped LEQ inverted")
	}
}

func TestSimultaneousClose(t *testing.T) {
	f := newFixture(t, 30)
	var serverConn *Conn
	serverClosed, clientClosed := false, false
	f.ss.Listen(80, false, func(c *Conn) {
		serverConn = c
		c.OnClose(func(err error) { serverClosed = err == nil })
	})
	f.cs.Dial(f.server.Addr(), 80, DialConfig{}, func(c *Conn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		c.OnClose(func(err error) { clientClosed = err == nil })
		// Let the handshake settle, then both sides close in the same
		// instant: the FIN packets cross on the wire.
		f.sim.After(50*time.Millisecond, func() {
			c.Close()
			serverConn.Close()
		})
	})
	f.sim.Run()
	if !clientClosed || !serverClosed {
		t.Errorf("simultaneous close: client=%v server=%v", clientClosed, serverClosed)
	}
	if len(f.cs.conns) != 0 || len(f.ss.conns) != 0 {
		t.Errorf("leaked connections: %d/%d", len(f.cs.conns), len(f.ss.conns))
	}
}

func TestDuplicateSYNGetsSYNACKAgain(t *testing.T) {
	f := newFixture(t, 31)
	f.ss.Listen(80, true, nil)

	synacks := 0
	f.client.AddTap(func(dir netsim.TapDirection, at time.Duration, wire []byte) {
		if dir != netsim.TapIn {
			return
		}
		d, err := packet.Decode(wire)
		if err == nil && d.TCP != nil && d.TCP.Has(packet.TCPSyn|packet.TCPAck) {
			synacks++
		}
	})

	// Craft a raw SYN twice from the same 4-tuple (bypassing Dial so the
	// client stack won't ACK and complete the handshake).
	syn := &packet.TCPHeader{SrcPort: 50001, DstPort: 80, Seq: 1000, Flags: packet.TCPSyn}
	wire1, _ := packet.BuildTCP(f.client.Addr(), f.server.Addr(), syn, 64, 0, 1, nil)
	wire2, _ := packet.BuildTCP(f.client.Addr(), f.server.Addr(), syn, 64, 0, 2, nil)
	f.client.SendRaw(wire1)
	f.sim.RunUntil(f.sim.Now() + 100*time.Millisecond)
	f.client.SendRaw(wire2)
	f.sim.RunUntil(f.sim.Now() + 100*time.Millisecond)

	if synacks < 2 {
		t.Errorf("SYN-ACKs = %d; duplicate SYN must be re-answered", synacks)
	}
}

func TestWriteAfterCloseDropped(t *testing.T) {
	f := newFixture(t, 32)
	echoServer(t, f, 80, false)
	f.cs.Dial(f.server.Addr(), 80, DialConfig{}, func(c *Conn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		c.Close()
		c.Write([]byte("too late")) // must be silently ignored
	})
	f.sim.Run()
	// The segment must never appear: echo server saw nothing.
}

func TestStackCountersAdvance(t *testing.T) {
	f := newFixture(t, 33)
	echoServer(t, f, 80, false)
	f.cs.Dial(f.server.Addr(), 80, DialConfig{}, func(c *Conn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		c.OnData(func([]byte) { c.Close() })
		c.Write([]byte("x"))
	})
	f.sim.Run()
	if f.cs.SegmentsOut == 0 || f.cs.SegmentsIn == 0 {
		t.Errorf("client counters: out=%d in=%d", f.cs.SegmentsOut, f.cs.SegmentsIn)
	}
	if f.ss.SegmentsIn == 0 {
		t.Errorf("server counters: in=%d", f.ss.SegmentsIn)
	}
}

func TestConnAccessors(t *testing.T) {
	f := newFixture(t, 34)
	echoServer(t, f, 80, true)
	f.cs.Dial(f.server.Addr(), 80, DialConfig{RequestECN: true}, func(c *Conn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		if c.RemoteAddr() != f.server.Addr() {
			t.Errorf("RemoteAddr = %v", c.RemoteAddr())
		}
		if c.LocalPort() < 49152 {
			t.Errorf("LocalPort = %d", c.LocalPort())
		}
		if c.State() != "ESTABLISHED" {
			t.Errorf("State = %q", c.State())
		}
		c.Close()
	})
	f.sim.Run()
}

func TestBrokenECEListenerIgnoresCE(t *testing.T) {
	// Covered end-to-end by the core extension test; here the unit
	// behaviour: a broken listener's connection records CE but never
	// echoes ECE.
	f := newFixture(t, 35)
	l, _ := f.ss.Listen(80, true, func(c *Conn) {
		c.OnData(func(b []byte) { c.Write(b) })
	})
	l.BrokenECE = true

	sawECE := false
	f.client.AddTap(func(dir netsim.TapDirection, at time.Duration, wire []byte) {
		if dir != netsim.TapIn {
			return
		}
		d, err := packet.Decode(wire)
		if err == nil && d.TCP != nil && d.TCP.Flags&packet.TCPEce != 0 && d.TCP.Flags&packet.TCPSyn == 0 {
			sawECE = true
		}
	})
	f.cs.Dial(f.server.Addr(), 80, DialConfig{RequestECN: true, MarkCE: true}, func(c *Conn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		c.OnData(func([]byte) { c.Close() })
		c.Write([]byte("ce-marked probe"))
	})
	f.sim.Run()
	if sawECE {
		t.Error("broken-ECE server echoed ECE")
	}
}

func TestMarkCEWireCodepoint(t *testing.T) {
	f := newFixture(t, 36)
	echoServer(t, f, 80, true)
	sawCE := false
	f.client.AddTap(func(dir netsim.TapDirection, at time.Duration, wire []byte) {
		if dir != netsim.TapOut {
			return
		}
		d, err := packet.Decode(wire)
		if err == nil && d.TCP != nil && len(d.Payload) > 0 {
			if cp := d.IP.ECN(); cp == 3 { // ecn.CE
				sawCE = true
			}
		}
	})
	f.cs.Dial(f.server.Addr(), 80, DialConfig{RequestECN: true, MarkCE: true}, func(c *Conn, err error) {
		if err != nil {
			t.Fatal(err)
		}
		c.OnData(func([]byte) { c.Close() })
		c.Write([]byte("probe"))
	})
	f.sim.Run()
	if !sawCE {
		t.Error("MarkCE data segment not CE-marked on the wire")
	}
}
